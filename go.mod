module identitybox

go 1.22
