// Command chirpd runs a Chirp file server: a personal file server for
// grid computing that any ordinary user can deploy, exporting
// ACL-protected space and remote execution inside identity boxes.
//
// Usage:
//
//	chirpd [-addr host:port] [-owner name] [-root-acl "pattern rights;..."]
//	       [-catalog addr] [-name label] [-metrics host:port]
//	       [-req-timeout d] [-drain d] [-v]
//
// -req-timeout bounds the wire I/O of each request once its command
// line arrives, so a stalled client cannot pin a session goroutine.
// On SIGINT the server drains gracefully: in-flight RPCs finish, new
// connections are refused, and after -drain stragglers are severed.
//
// -metrics serves the server's telemetry over HTTP: Prometheus text
// exposition at /metrics (JSON with ?format=json), expvar at
// /debug/vars, and pprof under /debug/pprof/. The same counters are
// also reachable over the Chirp wire ("chirp stats" / "chirp metrics").
//
// The exported file system is a fresh in-memory volume; a handful of
// demo programs (echo, sum, sim) are pre-registered for remote exec.
// Authentication methods offered: unix and hostname (GSI requires
// sharing a CA with clients; see examples/gridjob for an end-to-end GSI
// deployment in one process).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"time"

	"identitybox/internal/acl"
	"identitybox/internal/auth"
	"identitybox/internal/chirp"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9094", "listen address")
	owner := flag.String("owner", "chirp", "local account the server runs as")
	rootACL := flag.String("root-acl", "unix:* rwlax; hostname:* rl", "semicolon-separated root ACL entries")
	catalog := flag.String("catalog", "", "catalog address for heartbeats")
	name := flag.String("name", "", "advertised server name")
	state := flag.String("state", "", "snapshot file: loaded at startup, saved at shutdown")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	reqTimeout := flag.Duration("req-timeout", 30*time.Second, "per-request wire deadline after the command line arrives (0: none)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain budget before severing sessions")
	verbose := flag.Bool("v", false, "log every request")
	flag.Parse()

	a, err := parseACLFlag(*rootACL)
	if err != nil {
		log.Fatalf("chirpd: -root-acl: %v", err)
	}

	fs := vfs.New(*owner)
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			loaded, lerr := vfs.Load(f)
			f.Close()
			if lerr != nil {
				log.Fatalf("chirpd: loading %s: %v", *state, lerr)
			}
			fs = loaded
			fmt.Printf("chirpd: restored state from %s\n", *state)
		}
	}
	k := kernel.New(fs, vclock.Default())
	registerDemoPrograms(k)

	reg := obs.NewRegistry()
	opts := chirp.ServerOptions{
		Name:        *name,
		Owner:       *owner,
		RootACL:     a,
		CatalogAddr: *catalog,
		Metrics:     reg,
		Verifiers: map[auth.Method]auth.Verifier{
			auth.MethodUnix:     &auth.UnixVerifier{},
			auth.MethodHostname: &auth.HostnameVerifier{},
		},
		RequestTimeout: *reqTimeout,
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	srv, err := chirp.NewServer(k, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	if *metricsAddr != "" {
		reg.PublishExpvar("chirpd")
		// The default mux already carries expvar and pprof handlers.
		http.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("chirpd: metrics server: %v", err)
			}
		}()
		fmt.Printf("chirpd: metrics on http://%s/metrics\n", *metricsAddr)
	}
	fmt.Printf("chirpd: serving on %s as %s (root ACL: %s)\n", srv.Addr(), *owner,
		strings.ReplaceAll(strings.TrimSpace(a.String()), "\n", "; "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("chirpd: draining (in-flight RPCs finish, new connections refused)")
	if err := srv.Shutdown(*drain); err != nil {
		log.Printf("chirpd: %v", err)
	}
	if *state != "" {
		f, err := os.Create(*state)
		if err != nil {
			log.Fatalf("chirpd: saving state: %v", err)
		}
		if err := fs.Save(f); err != nil {
			f.Close()
			log.Fatalf("chirpd: saving state: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("chirpd: saving state: %v", err)
		}
		fmt.Printf("chirpd: state saved to %s\n", *state)
	}
}

func parseACLFlag(s string) (*acl.ACL, error) {
	return acl.Parse(strings.ReplaceAll(s, ";", "\n"))
}

// registerDemoPrograms installs a few programs that staged executables
// can dispatch to with "#!prog <name>".
func registerDemoPrograms(k *kernel.Kernel) {
	k.RegisterProgram("echo", func(p *kernel.Proc, args []string) int {
		out := strings.Join(args, " ") + "\n"
		if err := p.WriteFile("echo.out", []byte(out), 0o644); err != nil {
			return 1
		}
		return 0
	})
	k.RegisterProgram("sum", func(p *kernel.Proc, args []string) int {
		data, err := p.ReadFile("input.dat")
		if err != nil {
			return 1
		}
		var sum uint64
		for _, b := range data {
			sum += uint64(b)
		}
		if err := p.WriteFile("sum.out", []byte(fmt.Sprintf("%d\n", sum)), 0o644); err != nil {
			return 2
		}
		return 0
	})
	k.RegisterProgram("sim", func(p *kernel.Proc, args []string) int {
		in, err := p.ReadFile("input.dat")
		if err != nil {
			return 1
		}
		out := make([]byte, len(in))
		for i, b := range in {
			out[i] = b ^ 0x5a
		}
		p.Compute(1e6) // a second of virtual computation
		if err := p.WriteFile("out.dat", out, 0o644); err != nil {
			return 2
		}
		return 0
	})
}
