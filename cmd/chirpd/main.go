// Command chirpd runs a Chirp file server: a personal file server for
// grid computing that any ordinary user can deploy, exporting
// ACL-protected space and remote execution inside identity boxes.
//
// Usage:
//
//	chirpd [-addr host:port] [-owner name] [-root-acl "pattern rights;..."]
//	       [-catalog addr] [-name label] [-state dir] [-metrics host:port]
//	       [-compact-every d] [-fsync n] [-commit-window d] [-commit-batch n]
//	       [-wal-shards n] [-wal-segment-bytes n]
//	       [-replicate] [-replica-of addr] [-lease-ttl d]
//	       [-req-timeout d] [-drain d] [-window n] [-max-inflight bytes]
//	       [-workers n] [-trace-spans n] [-trace-log file] [-trace-slow d]
//	       [-v]
//
// -state names a durable state directory: every mutation is journaled
// to a checksummed write-ahead log (fsynced per -fsync) and compacted
// into snapshots every -compact-every and at shutdown, so a crash — a
// kill -9 at any byte of the log — recovers to the exact pre-crash
// state, tokened-request dedupe table included. Without -state the
// volume is volatile. Log appends are group-committed: concurrent
// mutations coalesce into one write and one fsync per group
// (-commit-window bounds how long a group waits for company,
// -commit-batch how many records it may hold), and a mutating request
// is acknowledged on the wire only after its group is durable. The log
// is written as bounded, checksummed segments rotated at
// -wal-segment-bytes and pruned once a snapshot (and every follower)
// has passed them, and the commit pipeline is sharded per top-level
// subtree (-wal-shards committers; a global LSN keeps total commit
// order), so writers under independent subtrees never serialize on one
// fsync queue and recovery replays shards in parallel.
//
// -replicate turns a stateful server into a replica-set member: every
// committed WAL group is published to subscribed followers, mutating
// replies wait (semi-sync, bounded) for a follower acknowledgement,
// and with -catalog and -name the server contends for the set's write
// lease (-lease-ttl the term). -replica-of starts this server as a
// follower of the named primary instead (implies -replicate): it
// bootstraps from the primary's WAL tail or snapshot, applies the
// replicated stream into its own -state, serves reads (with waitlsn
// read barriers), refuses writes with ENOTPRIMARY, and stands for
// election when its stream breaks — winning promotes it to primary
// within roughly one lease TTL, with tokened retries exactly-once
// across the switch because the dedupe journal replicates with the
// WAL. A fenced former primary refuses writes until restarted as a
// follower of the new one.
//
// -req-timeout bounds the wire I/O of each request once its command
// line arrives, so a stalled client cannot pin a session goroutine.
// On SIGINT the server drains gracefully: in-flight RPCs finish, new
// connections are refused, and after -drain stragglers are severed.
// A second SIGINT during the drain escalates: the drain is abandoned
// and every session severed immediately (the escalation is logged).
//
// Sessions negotiate the v2 tagged protocol when the client supports
// it: requests are multiplexed out of order under a per-session credit
// window. -window and -max-inflight cap the window the server grants
// (tags and bytes in flight); -workers sizes the concurrent lane that
// serves non-conflicting requests. Old lock-step v1 clients are served
// unchanged.
//
// -metrics serves the server's telemetry over HTTP: Prometheus text
// exposition at /metrics (JSON with ?format=json), expvar at
// /debug/vars, pprof under /debug/pprof/, and recent request traces at
// /debug/traces (one trace with ?trace=<hexid>, JSON with
// ?format=json). The same counters are also reachable over the Chirp
// wire ("chirp stats" / "chirp metrics").
//
// Request tracing is on by default: v2 clients that ask for the
// "trace" capability get per-request server spans — lane queue wait,
// handler, WAL group-commit and durability-barrier timing, reply
// flush — retained in a bounded ring (-trace-spans) and fetchable by
// trace ID over the wire ("chirp trace"). -trace-slow with -trace-log
// appends every traced request at least that slow to a JSONL file
// (0 logs every traced request). -trace-spans 0 disables tracing
// entirely; untraced requests never pay for any of this.
//
// The exported file system is a fresh in-memory volume; a handful of
// demo programs (echo, sum, sim) are pre-registered for remote exec.
// Authentication methods offered: unix and hostname (GSI requires
// sharing a CA with clients; see examples/gridjob for an end-to-end GSI
// deployment in one process).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"identitybox/internal/acl"
	"identitybox/internal/admission"
	"identitybox/internal/auth"
	"identitybox/internal/chirp"
	"identitybox/internal/core"
	"identitybox/internal/durable"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/replica"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9094", "listen address")
	owner := flag.String("owner", "chirp", "local account the server runs as")
	rootACL := flag.String("root-acl", "unix:* rwlax; hostname:* rl", "semicolon-separated root ACL entries")
	catalog := flag.String("catalog", "", "catalog address for heartbeats")
	name := flag.String("name", "", "advertised server name")
	state := flag.String("state", "", "durable state directory (WAL + snapshots); empty: volatile volume")
	compactEvery := flag.Duration("compact-every", time.Minute, "snapshot compaction interval with -state (0: compact only at shutdown)")
	fsyncEvery := flag.Int("fsync", 1, "fsync the WAL every N records with -state (1: every record; 0: never, the OS decides)")
	commitWindow := flag.Duration("commit-window", 0, "group-commit coalescing window with -state (0: the built-in default; negative: flush eagerly)")
	commitBatch := flag.Int("commit-batch", 0, "max records per commit group with -state (0: the built-in default)")
	walShards := flag.Int("wal-shards", 8, "commit-pipeline shards, one committer per top-level subtree hash bucket with -state (1: the single-shard pipeline)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "rotate WAL segments at this size with -state (0: the built-in default)")
	replicate := flag.Bool("replicate", false, "publish the WAL to followers and contend for the write lease (needs -state)")
	replicaOf := flag.String("replica-of", "", "start as a follower streaming from this primary (implies -replicate)")
	leaseTTL := flag.Duration("lease-ttl", 3*time.Second, "write-lease term; failover completes within roughly one TTL")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/traces on this address")
	traceSpans := flag.Int("trace-spans", obs.DefaultSpanCapacity, "retained request spans (0: disable request tracing)")
	traceLog := flag.String("trace-log", "", "append slow traced requests to this JSONL file")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond, "log traced requests at least this slow to -trace-log (0: log every traced request)")
	reqTimeout := flag.Duration("req-timeout", 30*time.Second, "per-request wire deadline after the command line arrives (0: none)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain budget before severing sessions")
	window := flag.Int("window", 0, "per-session v2 credit window, tags in flight (0: the built-in default)")
	maxInflight := flag.Int64("max-inflight", 0, "per-session v2 in-flight byte budget (0: the built-in default)")
	workers := flag.Int("workers", 0, "concurrent-lane workers per v2 session (0: the built-in default)")
	admitQueue := flag.Int("admit-queue", 0, "bounded admit-queue depth for overload protection (0: admission control off)")
	admitBytes := flag.Int64("admit-bytes", 0, "queued request payload byte budget with -admit-queue (0: the built-in default)")
	execSlots := flag.Int("exec-slots", 0, "concurrent execution slots with -admit-queue (0: the built-in default)")
	fairShare := flag.Float64("fair-share", 0, "per-principal fair-share multiplier with -admit-queue (0: the built-in default)")
	dedupeBytes := flag.Int64("dedupe-bytes", 0, "request-dedupe table byte bound (0: the built-in default)")
	verbose := flag.Bool("v", false, "log every request")
	flag.Parse()

	a, err := parseACLFlag(*rootACL)
	if err != nil {
		log.Fatalf("chirpd: -root-acl: %v", err)
	}

	reg := obs.NewRegistry()
	// One span ring shared by the Chirp server and the durable store, so
	// a trace's server spans and WAL group-commit spans land together.
	var spans *obs.SpanRing
	if *traceSpans > 0 {
		spans = obs.NewSpanRing(*traceSpans)
	}
	if *replicaOf != "" {
		*replicate = true
		if *replicaOf == *addr {
			log.Fatalf("chirpd: -replica-of must name another server")
		}
	}
	if *replicate && *state == "" {
		log.Fatalf("chirpd: replication (-replicate / -replica-of) needs -state")
	}
	if *replicate && *catalog != "" && *name == "" {
		log.Fatalf("chirpd: lease contention needs -name (the replica-set name)")
	}
	if *leaseTTL <= 0 {
		*leaseTTL = 3 * time.Second
	}

	// The publisher exists before the store so the group-commit pipeline
	// can ship into it from its first group; Bind below closes the loop.
	var pub *replica.Publisher
	if *replicate {
		pub = replica.NewPublisher(reg, 0)
	}
	fs := vfs.New(*owner)
	var store *durable.Store
	if *state != "" {
		syncN := *fsyncEvery
		if syncN <= 0 {
			syncN = -1
		}
		dopts := durable.Options{
			Owner:        *owner,
			SyncEveryN:   syncN,
			CommitWindow: *commitWindow,
			CommitBatch:  *commitBatch,
			Metrics:      reg,
			Spans:        spans,
			Logf:         log.Printf,
			ReplicaMode:  *replicaOf != "",
			Shards:       *walShards,
			SegmentBytes: *walSegmentBytes,
		}
		if pub != nil {
			dopts.OnShip = pub.Ship
			// A sealed segment stays on disk until the slowest follower
			// has acked past it, so Subscribe can serve the tail without
			// a snapshot transfer.
			dopts.RetainLSN = pub.MinAcked
		}
		store, err = durable.Open(*state, dopts)
		if err != nil {
			log.Fatalf("chirpd: recovering %s: %v", *state, err)
		}
		fs = store.FS()
		fmt.Printf("chirpd: recovered state from %s (%s)\n", *state, store.Recovery())
	}
	if pub != nil {
		pub.Bind(store)
	}

	// A follower bootstraps BEFORE the kernel is built: loading a
	// primary snapshot replaces the store's file-system tree, which is
	// only legal while nothing else holds the pointer.
	clientAuths := []auth.Authenticator{&auth.UnixClient{User: *owner}, &auth.HostnameClient{}}
	var firstStream *chirp.ReplicaSession
	if *replicaOf != "" {
		rs, err := chirp.DialReplica(*replicaOf, clientAuths, store.AppliedLSN(), *leaseTTL+5*time.Second)
		if err != nil {
			log.Fatalf("chirpd: bootstrapping from primary %s: %v", *replicaOf, err)
		}
		rs.IdleTimeout = *leaseTTL
		if rs.Snap != nil {
			if err := store.LoadReplicaSnapshot(rs.Snap); err != nil {
				log.Fatalf("chirpd: loading snapshot from %s: %v", *replicaOf, err)
			}
			fs = store.FS()
			fmt.Printf("chirpd: bootstrapped from %s snapshot (lsn %d, epoch %d)\n", *replicaOf, rs.SnapLSN, rs.Epoch)
		} else {
			fmt.Printf("chirpd: following %s from lsn %d (epoch %d)\n", *replicaOf, store.AppliedLSN(), rs.Epoch)
		}
		firstStream = rs
	}
	k := kernel.New(fs, vclock.Default())
	registerDemoPrograms(k)

	// The replication node runs this server's role: lease renewal as a
	// primary, stream-apply and election as a follower. It is created
	// before the server (whose options point at it) but can only reseed
	// the server's dedupe table once the server exists, hence srvSlot.
	var node *replica.Node
	var srvSlot atomic.Pointer[chirp.Server]
	if *replicate {
		dial := func(target string, fromLSN uint64) (replica.Stream, error) {
			if s := firstStream; s != nil {
				firstStream = nil
				return s, nil
			}
			rs, err := chirp.DialReplica(target, clientAuths, fromLSN, *leaseTTL)
			if err != nil {
				return nil, err
			}
			rs.IdleTimeout = *leaseTTL
			if rs.Snap != nil {
				// A snapshot would replace the file-system tree, which is
				// impossible under a live kernel: this follower fell behind
				// the primary's compacted WAL and must re-bootstrap.
				rs.Close()
				return nil, fmt.Errorf("primary %s demands a snapshot bootstrap; restart this follower with a fresh -state", target)
			}
			return rs, nil
		}
		node, err = replica.Start(replica.Config{
			Name:        *name,
			Addr:        *addr,
			CatalogAddr: *catalog,
			TTL:         *leaseTTL,
			Store:       store,
			Publisher:   pub,
			PrimaryAddr: *replicaOf,
			Dial:        dial,
			OnPromote: func(epoch uint64) {
				if s := srvSlot.Load(); s != nil {
					s.ReseedDedupe(store.DedupeEntries())
				}
				log.Printf("chirpd: *** PROMOTED: now the primary for %q at epoch %d (applied lsn %d) ***", *name, epoch, store.AppliedLSN())
			},
			OnFenced: func(epoch uint64, holder string) {
				log.Printf("chirpd: *** FENCED at epoch %d: lease held by %s; refusing writes (restart with -replica-of %s to rejoin) ***", epoch, holder, holder)
			},
			Logf:    log.Printf,
			Metrics: reg,
		})
		if err != nil {
			log.Fatalf("chirpd: starting replication: %v", err)
		}
	}

	opts := chirp.ServerOptions{
		Name:        *name,
		Owner:       *owner,
		RootACL:     a,
		CatalogAddr: *catalog,
		Metrics:     reg,
		Verifiers: map[auth.Method]auth.Verifier{
			auth.MethodUnix:     &auth.UnixVerifier{},
			auth.MethodHostname: &auth.HostnameVerifier{},
		},
		RequestTimeout:   *reqTimeout,
		Window:           *window,
		MaxInflightBytes: *maxInflight,
		Workers:          *workers,
		Spans:            spans,
		TraceSlow:        *traceSlow,
		DedupeMaxBytes:   *dedupeBytes,
	}
	if *admitQueue > 0 {
		opts.Admission = admission.New(admission.Options{
			MaxQueue:  *admitQueue,
			MaxBytes:  *admitBytes,
			ExecSlots: *execSlots,
			FairShare: *fairShare,
			Metrics:   reg,
		})
	}
	var slowLog *core.JSONLSink
	if *traceLog != "" && spans != nil {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("chirpd: -trace-log: %v", err)
		}
		slowLog = core.NewFileJSONLSink(f, false)
		slowLog.SetAutoFlush(16)
		opts.TraceLog = slowLog
	}
	if store != nil {
		opts.DedupeJournal = store
		opts.DedupeSeed = store.DedupeEntries()
		// Mutating replies wait for their commit group: an acknowledged
		// op is on disk before the client hears "ok".
		opts.Durability = store
	}
	if *catalog != "" {
		// Periodic heartbeats keep the catalog's last-seen ages inside
		// its staleness budget; a replica-set member refreshes on the
		// lease cadence so role/epoch/lsn views stay current.
		opts.HeartbeatEvery = time.Minute
	}
	if node != nil {
		opts.Repl = pub
		opts.Role = node
		// The node folds the semi-sync follower wait into the durability
		// barrier and dedupe journal, so an acked mutation exists on a
		// follower (when one is subscribed) before the client hears "ok".
		opts.Durability = node
		opts.DedupeJournal = node
		if *catalog != "" {
			opts.HeartbeatEvery = *leaseTTL / 3
		}
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	srv, err := chirp.NewServer(k, opts)
	if err != nil {
		log.Fatal(err)
	}
	srvSlot.Store(srv)
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	if *metricsAddr != "" {
		reg.PublishExpvar("chirpd")
		// The default mux already carries expvar and pprof handlers.
		http.Handle("/metrics", reg.Handler())
		http.Handle("/debug/traces", obs.TracesHandler(spans))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("chirpd: metrics server: %v", err)
			}
		}()
		fmt.Printf("chirpd: metrics on http://%s/metrics\n", *metricsAddr)
	}
	fmt.Printf("chirpd: serving on %s as %s (root ACL: %s)\n", srv.Addr(), *owner,
		strings.ReplaceAll(strings.TrimSpace(a.String()), "\n", "; "))
	if node != nil {
		role, epoch := node.Role()
		fmt.Printf("chirpd: replication role %s, epoch %d, lease ttl %s\n", role, epoch, *leaseTTL)
	}

	// Periodic snapshot compaction keeps the WAL (and recovery time)
	// bounded. The final compaction happens at shutdown below.
	compactDone := make(chan struct{})
	if store != nil && *compactEvery > 0 {
		ticker := time.NewTicker(*compactEvery)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := store.Compact(); err != nil {
						log.Printf("chirpd: compaction: %v", err)
					}
				case <-compactDone:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("chirpd: draining (in-flight RPCs finish, new connections refused; interrupt again to force)")
	drained := make(chan error, 1)
	go func() { drained <- srv.Shutdown(*drain) }()
	select {
	case err := <-drained:
		if err != nil {
			log.Printf("chirpd: %v", err)
		}
	case <-sig:
		log.Printf("chirpd: second interrupt during drain: forcing immediate shutdown, severing all sessions")
		srv.Close()
		<-drained
	}
	close(compactDone)
	if node != nil {
		node.Stop()
	}
	if pub != nil {
		pub.Close()
	}
	if slowLog != nil {
		if err := slowLog.Close(); err != nil {
			log.Printf("chirpd: closing trace log: %v", err)
		}
	}
	if store != nil {
		if err := store.Compact(); err != nil {
			log.Printf("chirpd: final compaction: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Printf("chirpd: closing state: %v", err)
		}
		fmt.Printf("chirpd: state compacted to %s\n", *state)
	}
}

func parseACLFlag(s string) (*acl.ACL, error) {
	return acl.Parse(strings.ReplaceAll(s, ";", "\n"))
}

// registerDemoPrograms installs a few programs that staged executables
// can dispatch to with "#!prog <name>".
func registerDemoPrograms(k *kernel.Kernel) {
	k.RegisterProgram("echo", func(p *kernel.Proc, args []string) int {
		out := strings.Join(args, " ") + "\n"
		if err := p.WriteFile("echo.out", []byte(out), 0o644); err != nil {
			return 1
		}
		return 0
	})
	k.RegisterProgram("sum", func(p *kernel.Proc, args []string) int {
		data, err := p.ReadFile("input.dat")
		if err != nil {
			return 1
		}
		var sum uint64
		for _, b := range data {
			sum += uint64(b)
		}
		if err := p.WriteFile("sum.out", []byte(fmt.Sprintf("%d\n", sum)), 0o644); err != nil {
			return 2
		}
		return 0
	})
	k.RegisterProgram("sim", func(p *kernel.Proc, args []string) int {
		in, err := p.ReadFile("input.dat")
		if err != nil {
			return 1
		}
		out := make([]byte, len(in))
		for i, b := range in {
			out[i] = b ^ 0x5a
		}
		p.Compute(1e6) // a second of virtual computation
		if err := p.WriteFile("out.dat", out, 0o644); err != nil {
			return 2
		}
		return 0
	})
}
