// Command identbox is the library analogue of "parrot identity_box
// <name> <command>": it runs a workload inside an identity box on a
// freshly booted simulated machine and reports what happened, including
// the forensic audit trail.
//
// Usage:
//
//	identbox -identity NAME [-app amanda|blast|cms|hf|ibis|make|snoop]
//	         [-script FILE | -trace FILE] [-scale f] [-audit n] [-compare]
//	         [-metrics host:port|-]
//
// -metrics exposes the box's telemetry: with an address, the registry
// (plus expvar and pprof) is served over HTTP after the run; with "-",
// the Prometheus text exposition is printed to stdout. The per-class
// syscall latency histograms cover the Figure 5(a) categories.
//
// The "snoop" app is a hostile probe that tries to read the supervising
// user's files, demonstrating containment; the others are the paper's
// Figure 5(b) applications. -script runs a shell script (see
// internal/shell) inside the box; -trace replays a captured syscall
// trace (see internal/workload). -compare also runs the workload
// unmodified and prints the overhead.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"

	"identitybox/internal/core"
	"identitybox/internal/harness"
	"identitybox/internal/identity"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/shell"
	"identitybox/internal/workload"
)

func main() {
	ident := flag.String("identity", "globus:/O=UnivNowhere/CN=Fred", "identity to attach to the box")
	app := flag.String("app", "snoop", "workload: amanda, blast, cms, hf, ibis, make, or snoop")
	script := flag.String("script", "", "shell script file to run inside the box")
	trace := flag.String("trace", "", "syscall trace file to replay inside the box")
	scale := flag.Float64("scale", 0.01, "workload scale factor")
	auditN := flag.Int("audit", 10, "audit-log lines to print (0 disables)")
	compare := flag.Bool("compare", false, "also run unmodified and report overhead")
	record := flag.String("record", "", "record the workload's syscalls (run unmodified) to this trace file and exit")
	metricsAddr := flag.String("metrics", "", `serve telemetry over HTTP on this address after the run ("-": print to stdout)`)
	flag.Parse()

	p := identity.Principal(*ident)
	if !p.Valid() {
		log.Fatalf("identbox: invalid identity %q", *ident)
	}

	w, err := harness.NewWorld()
	if err != nil {
		log.Fatal(err)
	}
	// Give the world something worth protecting.
	fs := w.K.FS()
	fs.MkdirAll("/home/dthain", 0o755, "dthain")
	fs.WriteFile("/home/dthain/secret", []byte("supervisor's private key material"), 0o600, "dthain")

	prog, name, homeCwd := selectProgram(*app, *script, *trace, *scale)

	if *record != "" {
		tr, st := workload.Record(w.K, "dthain", workload.BenchRoot, prog)
		if st.Code != 0 {
			log.Fatalf("identbox: recorded run exited %d", st.Code)
		}
		if err := os.WriteFile(*record, []byte(tr.Render()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %s: %d syscalls -> %s\n", name, tr.Syscalls(), *record)
		return
	}

	reg := obs.NewRegistry()
	box, err := core.New(w.K, "dthain", p, core.Options{Metrics: reg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identity box for %s (home %s), running %s\n", p, box.Home(), name)
	cwd := workload.BenchRoot
	if homeCwd {
		cwd = box.Home()
	}
	st := box.RunAt(cwd, prog)
	fmt.Printf("exit code %d, %d syscalls, virtual runtime %v\n", st.Code, st.Syscalls, st.Runtime)
	stats := box.Stats()
	fmt.Printf("policy: %d syscalls trapped, %d ACL checks, %d denials\n",
		stats.Syscalls, stats.ACLChecks, stats.Denials)

	if *auditN > 0 {
		audit := box.Audit()
		fmt.Printf("audit trail (last %d of %d):\n", min(*auditN, len(audit)), len(audit))
		start := len(audit) - *auditN
		if start < 0 {
			start = 0
		}
		for _, rec := range audit[start:] {
			flag := " "
			if rec.Denied {
				flag = "!"
			}
			fmt.Printf("  %s pid=%d %s\n", flag, rec.PID, rec.Call)
		}
	}

	if *compare {
		nw, err := harness.NewWorld()
		if err != nil {
			log.Fatal(err)
		}
		nst := nw.RunNative(prog)
		fmt.Printf("unmodified runtime %v; overhead %+.1f%%\n", nst.Runtime,
			(st.Runtime.Seconds()-nst.Runtime.Seconds())/nst.Runtime.Seconds()*100)
	}

	switch *metricsAddr {
	case "":
	case "-":
		fmt.Println()
		fmt.Print(reg.Text())
	default:
		reg.PublishExpvar("identbox")
		http.Handle("/metrics", reg.Handler())
		fmt.Printf("serving metrics on http://%s/metrics (interrupt to exit)\n", *metricsAddr)
		if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
			log.Fatal(err)
		}
	}
}

func selectProgram(app, script, trace string, scale float64) (prog kernel.Program, name string, homeCwd bool) {
	switch {
	case script != "":
		text, err := os.ReadFile(script)
		if err != nil {
			log.Fatalf("identbox: %v", err)
		}
		sh := shell.New(os.Stdout)
		sh.Echo = true
		return sh.Program(string(text)), "shell script " + script, true
	case trace != "":
		text, err := os.ReadFile(trace)
		if err != nil {
			log.Fatalf("identbox: %v", err)
		}
		tr, err := workload.ParseTrace(string(text))
		if err != nil {
			log.Fatalf("identbox: %v", err)
		}
		return tr.Program(), fmt.Sprintf("trace %s (%d calls)", trace, tr.Syscalls()), false
	case app == "snoop":
		return snoop, "snoop (hostile probe)", true
	default:
		a, ok := workload.AppByName(app)
		if !ok {
			log.Fatalf("identbox: unknown app %q", app)
		}
		return a.Scaled(scale).Program(), fmt.Sprintf("%s (scale %g)", a.Name, scale), false
	}
}

// snoop behaves like untrusted code fetched from the web: it looks
// around, tries to steal the supervisor's file, and writes a trophy in
// its own home.
func snoop(p *kernel.Proc, _ []string) int {
	fmt.Printf("  snoop: I am %q (pid %d)\n", p.GetUserName(), p.Getpid())
	if data, err := p.ReadFile("/home/dthain/secret"); err != nil {
		fmt.Printf("  snoop: reading /home/dthain/secret: %v\n", err)
	} else {
		fmt.Printf("  snoop: STOLE %q\n", data)
	}
	if ents, err := p.ReadDir("/"); err == nil {
		fmt.Printf("  snoop: / has %d entries\n", len(ents))
	}
	if err := p.WriteFile("trophy.txt", []byte("kilroy was here"), 0o644); err != nil {
		fmt.Printf("  snoop: writing trophy: %v\n", err)
		return 1
	}
	fmt.Printf("  snoop: wrote trophy.txt in my home\n")
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
