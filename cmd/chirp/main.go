// Command chirp is the client tool for Chirp servers.
//
// Usage:
//
//	chirp -addr host:port [-user name] <command> [args...]
//
// Commands:
//
//	whoami                      show the principal the server recorded
//	ls <dir>                    list a directory
//	put <local> <remote>        upload a host file
//	get <remote> [local]        download (prints to stdout without local)
//	cat <remote>                print a remote file
//	mkdir <dir>                 create a directory (reserve-right aware)
//	rm <path>                   remove a file
//	rmdir <dir>                 remove a directory
//	mv <old> <new>              rename
//	stat <path>                 show metadata
//	getacl <dir>                print a directory's ACL
//	setacl <dir> <pattern> <rights>   grant rights (requires 'a')
//	exec <cwd> <path> [args...] run a staged program in an identity box
//	stage <prog> <remote>       stage an executable dispatching to a
//	                            server-registered program name
//	stats                       show the server's live counters
//	metrics                     dump the server's metric registry
//	                            (Prometheus text exposition)
//	ping [n]                    n whoami round trips (default 5) plus
//	                            the negotiated protocol version, window
//	                            state, client retry/breaker counters and
//	                            the server's fault-tolerance series
//	trace [hexid]               without an id: run a traced mkdir+rmdir
//	                            probe and print the full span chain —
//	                            client submit/send/await next to the
//	                            server's lane queue, handler, WAL
//	                            group-commit, durability barrier and
//	                            reply phases. With an id: fetch the
//	                            server's retained spans for that trace
//	                            (the probe needs write access at /)
//
// Authentication: -user sends a unix assertion; with -user "" the
// hostname method is used.
//
// Fault tolerance: -timeout bounds each wire exchange, -retries caps
// transparent retries of idempotent calls (0 disables the retry and
// redial machinery entirely).
//
// Protocol: v2 tagged multiplexing is negotiated by default. -window
// and -max-inflight request smaller credit-window caps (the server's
// caps still bound them); -proto 1 pins the classic lock-step protocol.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"identitybox/internal/acl"
	"identitybox/internal/auth"
	"identitybox/internal/chirp"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9094", "server address")
	user := flag.String("user", "", "unix user to authenticate as (empty: hostname method)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-call deadline on each wire exchange (0: none)")
	retries := flag.Int("retries", 3, "max transparent retries for idempotent calls (0: disable retries)")
	window := flag.Int("window", 0, "requested v2 credit window, tags in flight (0: the built-in default)")
	maxInflight := flag.Int64("max-inflight", 0, "requested v2 in-flight byte budget (0: the built-in default)")
	proto := flag.Int("proto", 0, "pin the protocol version (1: classic lock-step; 0: negotiate)")
	deadlineBudget := flag.Duration("deadline-budget", 0, "wall-clock budget per logical call, retries included; propagated so the server sheds expired work (0: none)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var auths []auth.Authenticator
	if *user != "" {
		auths = append(auths, &auth.UnixClient{User: *user})
	}
	auths = append(auths, &auth.HostnameClient{})

	opts := chirp.ClientOptions{Timeout: *timeout, MaxRetries: *retries,
		Window: *window, MaxInflightBytes: *maxInflight, Protocol: *proto,
		DeadlineBudget: *deadlineBudget}
	if *retries <= 0 {
		opts.DisableRetries = true
	}
	if args[0] == "trace" {
		// Only the trace subcommand asks for the trace capability: the
		// other commands keep the untraced wire format.
		traceRing = obs.NewSpanRing(256)
		opts.Spans = traceRing
	}
	cl, err := chirp.DialOpts(*addr, auths, opts)
	if err != nil {
		log.Fatalf("chirp: %v", err)
	}
	defer cl.Close()

	if err := dispatch(cl, args[0], args[1:]); err != nil {
		log.Fatalf("chirp: %s: %v", args[0], err)
	}
}

func dispatch(cl *chirp.Client, cmd string, args []string) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("want %d arguments", n)
		}
		return nil
	}
	switch cmd {
	case "whoami":
		p, err := cl.Whoami()
		if err != nil {
			return err
		}
		fmt.Println(p)
		return nil
	case "ls":
		if err := need(1); err != nil {
			return err
		}
		ents, err := cl.ReadDir(args[0])
		if err != nil {
			return err
		}
		for _, e := range ents {
			fmt.Printf("%-8s %s\n", e.Type, e.Name)
		}
		return nil
	case "put":
		if err := need(2); err != nil {
			return err
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		return cl.PutFile(args[1], data, 0o644)
	case "get":
		if err := need(1); err != nil {
			return err
		}
		data, err := cl.GetFile(args[0])
		if err != nil {
			return err
		}
		if len(args) > 1 {
			return os.WriteFile(args[1], data, 0o644)
		}
		os.Stdout.Write(data)
		return nil
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		data, err := cl.GetFile(args[0])
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return nil
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return cl.Mkdir(args[0], 0o755)
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return cl.Unlink(args[0])
	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		return cl.Rmdir(args[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return cl.Rename(args[0], args[1])
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		st, err := cl.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("ino %d  type %s  mode %o  owner %s  nlink %d  size %d\n",
			st.Ino, st.Type, st.Mode, st.Owner, st.Nlink, st.Size)
		return nil
	case "getacl":
		if err := need(1); err != nil {
			return err
		}
		text, err := cl.GetACL(args[0])
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "setacl":
		if err := need(3); err != nil {
			return err
		}
		text, err := cl.GetACL(args[0])
		if err != nil {
			return err
		}
		a, err := acl.Parse(text)
		if err != nil {
			return err
		}
		e, err := acl.ParseEntry(args[1] + " " + args[2])
		if err != nil {
			return err
		}
		a.Set(e.Pattern, e.Rights, e.ReserveRights)
		return cl.SetACL(args[0], a.String())
	case "exec":
		if err := need(2); err != nil {
			return err
		}
		res, err := cl.Exec(args[0], args[1], args[2:]...)
		if err != nil {
			return err
		}
		fmt.Printf("exit %d (virtual runtime %.3fs)\n", res.Code, res.RuntimeSeconds)
		return nil
	case "stage":
		if err := need(2); err != nil {
			return err
		}
		return cl.PutFile(args[1], kernel.ExecutableBytes(args[0]), 0o755)
	case "stats":
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("server    %s\n", st.Name)
		fmt.Printf("conns     %d\n", st.Conns)
		fmt.Printf("sessions  %d\n", st.Sessions)
		fmt.Printf("requests  %d\n", st.Requests)
		fmt.Printf("errors    %d\n", st.Errors)
		fmt.Printf("rx bytes  %d\n", st.RxBytes)
		fmt.Printf("tx bytes  %d\n", st.TxBytes)
		if st.Role != "" {
			fmt.Printf("role      %s (epoch %d, applied lsn %d)\n", st.Role, st.Epoch, st.AppliedLSN)
		}
		fmt.Printf("this session: %d fds, %d grants\n", st.FDs, st.Grants)
		return nil
	case "metrics":
		text, err := cl.Metrics()
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "ping":
		n := 5
		if len(args) > 0 {
			v, err := strconv.Atoi(args[0])
			if err != nil || v < 1 {
				return fmt.Errorf("bad round-trip count %q", args[0])
			}
			n = v
		}
		return ping(cl, n)
	case "trace":
		if len(args) > 0 {
			return traceFetch(cl, args[0])
		}
		return traceProbe(cl)
	default:
		return fmt.Errorf("unknown command")
	}
}

// traceRing holds the client-side spans of the trace subcommand's own
// calls; set in main before dialing so negotiation asks for the trace
// capability.
var traceRing *obs.SpanRing

// traceProbe runs one traced mutating round trip (mkdir + rmdir of a
// scratch directory) under a forced trace ID and prints every span the
// trace produced on both ends, in start order: the client's
// submit/send/await phases interleaved with the server's lane queue,
// handler, WAL group-commit, durability barrier and reply timings.
func traceProbe(cl *chirp.Client) error {
	if ws := cl.WindowStats(); !ws.Traced {
		return fmt.Errorf("tracing not negotiated (v%d session; the server must run with tracing enabled and speak v2)", ws.Protocol)
	}
	id := obs.NewTraceID()
	cl.SetTrace(id)
	dir := "/.traceprobe-" + obs.FormatTraceID(id)[:8]
	if err := cl.Mkdir(dir, 0o755); err != nil {
		cl.SetTrace(0)
		return fmt.Errorf("probe mkdir %s: %w (the probe needs write access at /)", dir, err)
	}
	if err := cl.Rmdir(dir); err != nil {
		cl.SetTrace(0)
		return fmt.Errorf("probe rmdir %s: %w", dir, err)
	}
	cl.SetTrace(0) // the span fetch below gets its own trace ID
	spans := traceRing.Trace(id)
	server, err := cl.TraceSpans(id)
	if err != nil {
		return fmt.Errorf("fetching server spans: %w", err)
	}
	spans = append(spans, server...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	fmt.Printf("trace %s (%d spans)\n", obs.FormatTraceID(id), len(spans))
	for _, s := range spans {
		obs.WriteSpan(os.Stdout, s)
	}
	return nil
}

// traceFetch prints the server's retained spans for one trace ID.
func traceFetch(cl *chirp.Client, arg string) error {
	id, err := obs.ParseTraceID(arg)
	if err != nil || id == 0 {
		return fmt.Errorf("bad trace id %q", arg)
	}
	spans, err := cl.TraceSpans(id)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans retained for %s (rotated out, or never traced)", obs.FormatTraceID(id))
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	fmt.Printf("trace %s (%d spans)\n", obs.FormatTraceID(id), len(spans))
	for _, s := range spans {
		obs.WriteSpan(os.Stdout, s)
	}
	return nil
}

// ping measures whoami round trips and reports the fault-tolerance
// counters on both ends: the client's retry/redial/breaker registry and
// the server's dedupe/draining series from the metrics RPC.
func ping(cl *chirp.Client, n int) error {
	var min, max, total time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := cl.Whoami(); err != nil {
			return fmt.Errorf("round trip %d: %w", i+1, err)
		}
		rtt := time.Since(start)
		total += rtt
		if min == 0 || rtt < min {
			min = rtt
		}
		if rtt > max {
			max = rtt
		}
	}
	fmt.Printf("%d round trips: min %v  avg %v  max %v\n", n, min, total/time.Duration(n), max)
	ws := cl.WindowStats()
	if ws.Protocol == chirp.ProtocolV2 {
		fmt.Printf("protocol: v%d  window %d tags / %d bytes  in flight %d  stalls %d\n",
			ws.Protocol, ws.Window, ws.MaxInflightBytes, ws.InFlight, ws.Stalls)
	} else {
		fmt.Printf("protocol: v%d (lock-step)\n", ws.Protocol)
	}
	if st, err := cl.Stats(); err == nil && st.Role != "" {
		fmt.Printf("role: %s  epoch %d  applied lsn %d\n", st.Role, st.Epoch, st.AppliedLSN)
	}
	fmt.Printf("breaker: %s\n", cl.Breaker().State())
	fmt.Print("client counters:\n")
	for _, line := range strings.Split(cl.LocalMetrics().Text(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			fmt.Printf("  %s\n", line)
		}
	}
	text, err := cl.Metrics()
	if err != nil {
		return err
	}
	fmt.Print("server fault-tolerance counters:\n")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "chirp_dedupe_") || strings.HasPrefix(line, "chirp_draining") {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}
