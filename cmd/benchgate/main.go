// Command benchgate gates benchmark regressions: it parses `go test
// -bench` output from stdin and compares it against a committed JSON
// baseline.
//
// Usage:
//
//	go test -bench ... -benchmem | benchgate -baseline BENCH_baseline.json
//	go test -bench ... -benchmem | benchgate -baseline BENCH_baseline.json -update
//
// The gate is asymmetric by design: allocations per op are near-
// deterministic across machines, so they are held to a tight tolerance
// (-alloc-tolerance ratio plus a 2-alloc absolute slack), while ns/op
// varies wildly between developer machines and CI runners, so it only
// fails beyond a loose ratio (-ns-tolerance). A benchmark present in
// the baseline but missing from the input fails the gate (renames must
// update the baseline); new benchmarks are reported but pass. -update
// rewrites the baseline from the input instead of comparing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches one result line: name, iteration count, then
// value/unit pairs ("123 ns/op", "45 B/op", "6 allocs/op", ...).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// procSuffix is the -GOMAXPROCS tail go test appends to benchmark
// names; stripping it keeps baselines portable across core counts.
var procSuffix = regexp.MustCompile(`-\d+$`)

func parse(r *bufio.Scanner) (map[string]entry, []string, error) {
	sums := map[string]entry{}
	counts := map[string]int{}
	var order []string
	for r.Scan() {
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[2])
		e := sums[name]
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp += v
			case "allocs/op":
				e.AllocsPerOp += v
			}
		}
		if counts[name] == 0 {
			order = append(order, name)
		}
		counts[name]++
		sums[name] = e
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	for name, n := range counts { // average repeated runs (-count > 1)
		e := sums[name]
		e.NsPerOp /= float64(n)
		e.AllocsPerOp /= float64(n)
		sums[name] = e
	}
	return sums, order, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
	update := flag.Bool("update", false, "rewrite the baseline from stdin instead of comparing")
	nsTol := flag.Float64("ns-tolerance", 10.0, "fail when ns/op exceeds baseline by this ratio")
	allocTol := flag.Float64("alloc-tolerance", 1.25, "fail when allocs/op exceeds baseline by this ratio (plus 2 allocs absolute slack)")
	flag.Parse()

	got, order, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: reading stdin: %v\n", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d entries to %s\n", len(got), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v (run with -update to create it)\n", err)
		os.Exit(2)
	}
	base := map[string]entry{}
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	var failures []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		g, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in results (renamed? update the baseline)", name))
			continue
		}
		status := "ok"
		if g.AllocsPerOp > b.AllocsPerOp**allocTol+2 {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.1f exceeds baseline %.1f (tolerance ×%.2f+2)",
				name, g.AllocsPerOp, b.AllocsPerOp, *allocTol))
			status = "FAIL allocs"
		}
		if b.NsPerOp > 0 && g.NsPerOp > b.NsPerOp**nsTol {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f exceeds baseline %.0f (tolerance ×%.1f)",
				name, g.NsPerOp, b.NsPerOp, *nsTol))
			status = "FAIL ns"
		}
		fmt.Printf("%-60s ns/op %10.0f (base %10.0f)  allocs/op %8.1f (base %8.1f)  %s\n",
			name, g.NsPerOp, b.NsPerOp, g.AllocsPerOp, b.AllocsPerOp, status)
	}
	for _, name := range order {
		if _, ok := base[name]; !ok {
			fmt.Printf("%-60s new benchmark, not gated (add with -update)\n", name)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within tolerance\n", len(names))
}
