// Command benchfig regenerates the paper's tables and figures from the
// library's experiment harness.
//
// Usage:
//
//	benchfig [-fig 1|4|5a|5b|all] [-scale f] [-metrics file]
//	         [-cpuprofile file] [-memprofile file]
//
// -scale shrinks the Figure 5(b) workloads (1.0 = paper-sized runs;
// overhead percentages are scale-invariant). -metrics dumps the
// telemetry collected during the Figure 5(a) runs (per-class latency
// histograms and box counters) as Prometheus text exposition to the
// given file, or to stdout with "-". Instrumentation charges no
// virtual time, so the figures are bit-identical with or without it.
// -cpuprofile and -memprofile write pprof profiles covering the whole
// run (CI attaches them to bench-regression artifacts).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"identitybox/internal/harness"
	"identitybox/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 1, 4, 5a, 5b, burden, all")
	scale := flag.Float64("scale", 0.05, "workload scale factor for figure 5(b)")
	metrics := flag.String("metrics", "", `dump figure 5(a) telemetry to this file ("-" for stdout)`)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("benchfig: -cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("benchfig: starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("benchfig: -memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("benchfig: writing heap profile: %v", err)
			}
		}()
	}

	switch *fig {
	case "1":
		figure1()
	case "4":
		figure4()
	case "5a":
		figure5a(*metrics)
	case "5b":
		figure5b(*scale)
	case "burden":
		burden()
	case "sens":
		sensitivity(*scale)
	case "intensity":
		intensity()
	case "all":
		figure1()
		fmt.Println()
		figure4()
		fmt.Println()
		figure5a(*metrics)
		fmt.Println()
		figure5b(*scale)
		fmt.Println()
		burden()
		fmt.Println()
		sensitivity(*scale)
		fmt.Println()
		intensity()
	default:
		fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func burden() {
	counts := []int{1, 10, 50, 100}
	rows, err := harness.RunBurdenScaling(counts)
	if err != nil {
		log.Fatalf("burden: %v", err)
	}
	fmt.Print(harness.RenderBurdenScaling(rows, counts))
}

func sensitivity(scale float64) {
	rows, err := harness.RunSensitivity([]float64{0.5, 1.0, 2.0}, scale/10)
	if err != nil {
		log.Fatalf("sensitivity: %v", err)
	}
	fmt.Print(harness.RenderSensitivity(rows))
}

func intensity() {
	rows, err := harness.RunOverheadVsIntensity([]float64{100, 1000, 5000, 15000, 40000})
	if err != nil {
		log.Fatalf("intensity: %v", err)
	}
	fmt.Print(harness.RenderIntensity(rows))
}

func figure1() {
	rows, err := harness.RunFigure1()
	if err != nil {
		log.Fatalf("figure 1: %v", err)
	}
	fmt.Print(harness.RenderFigure1(rows))
}

func figure4() {
	res, err := harness.RunFigure4()
	if err != nil {
		log.Fatalf("figure 4: %v", err)
	}
	fmt.Println("Figure 4: system-call trapping mechanism (one boxed stat)")
	fmt.Printf("  context switches per trapped call: %d\n", res.ContextSwitches)
	fmt.Printf("  native cost:  %v\n", res.NativeCost)
	fmt.Printf("  boxed cost:   %v (%.1fx)\n", res.BoxedCost, float64(res.BoxedCost)/float64(res.NativeCost))
	fmt.Printf("  audit record: %s\n", res.AuditLine)
}

func figure5a(metricsOut string) {
	var reg *obs.Registry
	if metricsOut != "" {
		reg = obs.NewRegistry()
	}
	rows, err := harness.RunFigure5aObserved(reg)
	if err != nil {
		log.Fatalf("figure 5a: %v", err)
	}
	fmt.Print(harness.RenderFigure5a(rows))
	if reg == nil {
		return
	}
	text := reg.Text()
	if metricsOut == "-" {
		fmt.Println()
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(metricsOut, []byte(text), 0o644); err != nil {
		log.Fatalf("metrics dump: %v", err)
	}
}

func figure5b(scale float64) {
	fmt.Printf("(workloads scaled by %g; overhead percentages are scale-invariant)\n", scale)
	rows, err := harness.RunFigure5b(scale)
	if err != nil {
		log.Fatalf("figure 5b: %v", err)
	}
	fmt.Print(harness.RenderFigure5b(rows))
}
