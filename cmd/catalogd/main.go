// Command catalogd runs a Chirp catalog: servers report themselves via
// UDP heartbeats, and clients list the available servers via TCP.
//
// Usage:
//
//	catalogd [-addr host:port]           run a catalog
//	catalogd -query host:port            list servers known to a catalog
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"identitybox/internal/chirp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9097", "listen address (UDP heartbeats + TCP queries)")
	query := flag.String("query", "", "query an existing catalog and exit")
	flag.Parse()

	if *query != "" {
		entries, err := chirp.QueryCatalog(*query)
		if err != nil {
			log.Fatalf("catalogd: query: %v", err)
		}
		for _, e := range entries {
			fmt.Printf("%-20s %-22s owner=%s\n", e.Name, e.Addr, e.Owner)
		}
		return
	}

	cat := chirp.NewCatalog()
	if err := cat.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogd: listening on %s (udp heartbeats, tcp queries)\n", cat.Addr())

	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-ticker.C:
			fmt.Printf("catalogd: %d live servers\n", len(cat.Entries()))
		case <-sig:
			fmt.Println("catalogd: shutting down")
			cat.Close()
			return
		}
	}
}
