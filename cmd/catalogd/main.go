// Command catalogd runs a Chirp catalog: servers report themselves via
// UDP heartbeats, and clients list the available servers via TCP.
//
// Usage:
//
//	catalogd [-addr host:port] [-metrics host:port]   run a catalog
//	catalogd -query host:port                         list servers known to a catalog
//
// -metrics serves the catalog's telemetry over HTTP: Prometheus text
// exposition at /metrics (JSON with ?format=json), expvar at
// /debug/vars, and pprof under /debug/pprof/ — the same layout chirpd
// uses, so one scrape config covers both daemons.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"time"

	"identitybox/internal/chirp"
	"identitybox/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9097", "listen address (UDP heartbeats + TCP queries)")
	query := flag.String("query", "", "query an existing catalog and exit")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	flag.Parse()

	if *query != "" {
		entries, err := chirp.QueryCatalog(*query)
		if err != nil {
			log.Fatalf("catalogd: query: %v", err)
		}
		for _, e := range entries {
			fmt.Printf("%-20s %-22s owner=%s\n", e.Name, e.Addr, e.Owner)
		}
		return
	}

	cat := chirp.NewCatalog()
	reg := obs.NewRegistry()
	cat.SetMetrics(reg)
	if err := cat.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogd: listening on %s (udp heartbeats, tcp queries)\n", cat.Addr())
	if *metricsAddr != "" {
		reg.PublishExpvar("catalogd")
		// The default mux already carries expvar and pprof handlers.
		http.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("catalogd: metrics server: %v", err)
			}
		}()
		fmt.Printf("catalogd: metrics on http://%s/metrics\n", *metricsAddr)
	}

	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-ticker.C:
			fmt.Printf("catalogd: %d live servers\n", len(cat.Entries()))
		case <-sig:
			fmt.Println("catalogd: shutting down")
			cat.Close()
			return
		}
	}
}
