// Command catalogd runs a Chirp catalog: servers report themselves via
// UDP heartbeats, and clients list the available servers via TCP.
//
// Usage:
//
//	catalogd [-addr host:port] [-metrics host:port]   run a catalog
//	         [-lease-ttl d] [-expiry d]
//	catalogd -query host:port                         list servers known to a catalog
//
// The catalog also arbitrates write leases for replica sets: servers
// named alike contend for one lease per name over the same UDP socket
// the heartbeats use. -lease-ttl sets the lease term (the failover
// latency bound); -expiry drops servers not heard from within that
// window from query answers.
//
// -metrics serves the catalog's telemetry over HTTP: Prometheus text
// exposition at /metrics (JSON with ?format=json), expvar at
// /debug/vars, and pprof under /debug/pprof/ — the same layout chirpd
// uses, so one scrape config covers both daemons.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"time"

	"identitybox/internal/chirp"
	"identitybox/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9097", "listen address (UDP heartbeats + TCP queries)")
	query := flag.String("query", "", "query an existing catalog and exit")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	leaseTTL := flag.Duration("lease-ttl", 3*time.Second, "write-lease term for replica sets (bounds failover latency)")
	expiry := flag.Duration("expiry", 15*time.Minute, "drop servers not heard from within this window")
	flag.Parse()

	if *query != "" {
		entries, err := chirp.QueryCatalog(*query)
		if err != nil {
			log.Fatalf("catalogd: query: %v", err)
		}
		for _, e := range entries {
			line := fmt.Sprintf("%-20s %-22s owner=%-10s age=%s", e.Name, e.Addr, e.Owner, e.Age.Round(time.Millisecond))
			if e.Role != "" {
				line += fmt.Sprintf(" role=%s epoch=%d lsn=%d", e.Role, e.Epoch, e.LSN)
			}
			fmt.Println(line)
		}
		return
	}

	cat := chirp.NewCatalog()
	if *leaseTTL > 0 {
		cat.LeaseTTL = *leaseTTL
	}
	if *expiry > 0 {
		cat.Expiry = *expiry
	}
	reg := obs.NewRegistry()
	cat.SetMetrics(reg)
	if err := cat.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogd: listening on %s (udp heartbeats, tcp queries)\n", cat.Addr())
	if *metricsAddr != "" {
		reg.PublishExpvar("catalogd")
		// The default mux already carries expvar and pprof handlers.
		http.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("catalogd: metrics server: %v", err)
			}
		}()
		fmt.Printf("catalogd: metrics on http://%s/metrics\n", *metricsAddr)
	}

	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-ticker.C:
			fmt.Printf("catalogd: %d live servers\n", len(cat.Entries()))
		case <-sig:
			fmt.Println("catalogd: shutting down")
			cat.Close()
			return
		}
	}
}
