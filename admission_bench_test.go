package identitybox

// BenchmarkAdmissionOverhead pins the cost the overload-protection
// path adds to an unsaturated request: admission ticketing, the fair
// scheduler's fast path, and the deadline capability token on the
// wire. The disabled variant is the pre-admission hot path; the gate
// in BENCH_baseline.json keeps both from regressing.

import (
	"testing"
	"time"

	"identitybox/internal/acl"
	"identitybox/internal/admission"
	"identitybox/internal/auth"
	"identitybox/internal/chirp"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

func BenchmarkAdmissionOverhead(b *testing.B) {
	for _, v := range []struct {
		name     string
		admitted bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(v.name, func(b *testing.B) {
			k := kernel.New(vfs.New("owner"), vclock.Default())
			rootACL := &acl.ACL{}
			rootACL.Set("unix:admin", acl.All, acl.None)
			sopts := chirp.ServerOptions{
				Owner:     "owner",
				RootACL:   rootACL,
				Verifiers: map[auth.Method]auth.Verifier{auth.MethodUnix: &auth.UnixVerifier{}},
			}
			copts := chirp.ClientOptions{}
			if v.admitted {
				sopts.Admission = admission.New(admission.Options{})
				copts.DeadlineBudget = time.Minute
			}
			srv, err := chirp.NewServer(k, sopts)
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			cl, err := chirp.DialOpts(srv.Addr(),
				[]auth.Authenticator{&auth.UnixClient{User: "admin"}}, copts)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			// stat is a Normal-class command: it pays the full admit,
			// fair-dispatch, and release cycle (whoami would ride the
			// exempt control class and measure nothing).
			for i := 0; i < b.N; i++ {
				if _, err := cl.Stat("/"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
