package replica

import (
	"bytes"
	"testing"
	"time"

	"identitybox/internal/durable"
)

// BenchmarkReplicationLag measures the semi-synchronous replication
// round trip: one durable write on the primary, shipped through the
// publisher, applied by a follower store, and acknowledged back —
// ns/op is the full write-to-follower-ack latency a client pays for a
// mutating reply on a replicated volume.
func BenchmarkReplicationLag(b *testing.B) {
	pub := NewPublisher(nil, time.Second)
	store, err := durable.Open(b.TempDir(), durable.Options{Owner: "owner", SyncEveryN: 1, OnShip: pub.Ship})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	pub.Bind(store)

	follower, err := durable.Open(b.TempDir(), durable.Options{Owner: "owner", SyncEveryN: 1, ReplicaMode: true})
	if err != nil {
		b.Fatal(err)
	}
	defer follower.Close()

	sub, catchup, snap, _, err := pub.Subscribe(store.DurableLSN())
	if err != nil {
		b.Fatal(err)
	}
	if catchup != nil || snap != nil {
		b.Fatal("fresh subscription wanted catch-up")
	}
	applied := make(chan struct{})
	go func() {
		defer close(applied)
		for batch := range sub.C {
			if _, err := follower.ApplyReplicated(batch.Epoch, batch.First, batch.Last, batch.Frames); err != nil {
				b.Errorf("apply: %v", err)
				return
			}
			sub.Ack(follower.AppliedLSN())
		}
	}()

	payload := bytes.Repeat([]byte("x"), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.FS().WriteFile("/bench.dat", payload, 0o644, "owner"); err != nil {
			b.Fatal(err)
		}
		if err := store.Barrier(); err != nil {
			b.Fatal(err)
		}
		if err := pub.WaitShipped(store.DurableLSN()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sub.Close()
	<-applied
}
