// Package replica implements primary→follower replication of the
// durable store's write-ahead log, with lease-based failover.
//
// The primary's group-commit pipeline hands every committed group's raw
// frames to a Publisher (durable.Options.OnShip), which fans them out
// to subscribed followers in commit order. A follower applies each
// batch into its own durable.Store (epoch-fenced and gap-checked by
// ApplyReplicated) and acknowledges the batch's last LSN; the primary's
// mutating replies wait for at least one follower acknowledgement
// (semi-synchronous, see Publisher.WaitShipped), so an acknowledged
// mutation is on a follower before the client hears "ok" — the property
// that makes promote-on-failure lossless for acked writes.
//
// Failover is coordinated by a TTL'd lease on the catalog: the primary
// renews it on a heartbeat cadence; when renewals stop, the catalog
// runs a short election among claiming followers and grants the next
// epoch to the highest applied LSN. The epoch number fences the old
// primary — its stale-epoch batches and writes are refused everywhere —
// so a partition heal cannot split-brain the volume.
//
// This package deliberately knows nothing about the Chirp wire
// protocol: the follower's stream arrives through the Stream interface
// (implemented by chirp.ReplicaSession), and the lease protocol is
// plain UDP datagrams to the catalog. Package chirp imports replica,
// never the reverse.
package replica

import "time"

// Batch is one shipped commit group: the encoded WAL frames exactly as
// the primary wrote them, bound to the epoch the primary held when it
// shipped and the contiguous LSN range the frames cover.
type Batch struct {
	Epoch   uint64
	First   uint64
	Last    uint64
	Records int
	Frames  []byte
}

// Stream is a follower's view of the primary's replication feed. Next
// blocks for the next batch (an error means the stream is dead and the
// follower should re-dial or stand for election); Ack reports the
// follower's applied horizon back to the primary, releasing semi-sync
// waiters there.
type Stream interface {
	Next() (Batch, error)
	Ack(lsn uint64) error
	Close() error
}

// Node roles. A node is a primary (holds the lease, accepts writes and
// replicates them), a follower (applies the primary's stream, serves
// bounded-staleness reads), or fenced (a former primary whose lease a
// newer epoch superseded; it refuses writes until restarted).
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
	RoleFenced   = "fenced"
)

// Replication metric families.
const (
	MetricGroupsShipped = "repl_groups_shipped_total"
	MetricBytesShipped  = "repl_bytes_shipped_total"
	MetricSyncTimeouts  = "repl_sync_timeouts_total"
	MetricSubOverflows  = "repl_subscriber_overflows_total"
	MetricSubscribers   = "repl_subscribers"
	MetricLag           = "repl_lag_records"
	MetricAppliedLSN    = "repl_applied_lsn"
	MetricPromotions    = "repl_promotions_total"
)

// DefaultSyncTimeout bounds how long a semi-sync barrier waits for a
// follower acknowledgement before degrading to local durability only.
const DefaultSyncTimeout = 2 * time.Second
