package replica

import (
	"errors"
	"sync"
	"time"

	"identitybox/internal/durable"
	"identitybox/internal/obs"
)

// Config wires a Node into its process.
type Config struct {
	// Name is the replica-set name — the catalog name every member
	// advertises, and the lease all of them contend for.
	Name string
	// Addr is this server's advertised Chirp address (the lease
	// identity: grants and denials name holders by it).
	Addr string
	// CatalogAddr is the catalog's UDP endpoint (leases ride the same
	// socket as heartbeats). Empty disables leasing: the node keeps its
	// starting role forever (a solo primary, or a follower that never
	// stands for election).
	CatalogAddr string
	// TTL is the lease term. The primary renews every TTL/3; a follower
	// whose stream died claims on the same cadence, so writes resume
	// within roughly one TTL of a primary failure. 0 means 3s.
	TTL time.Duration
	// Store is this node's durable store (replica mode for followers).
	Store *durable.Store
	// Publisher fans committed groups out to followers; required (a
	// follower's publisher idles until promotion).
	Publisher *Publisher
	// PrimaryAddr is the upstream to stream from when starting as a
	// follower (the -replica-of flag). Updated by lease denials, which
	// name the current holder.
	PrimaryAddr string
	// Dial opens a replication stream to a primary from the given
	// applied LSN. Required for followers (chirp.DialReplica wrapped to
	// this shape); nil on a solo primary.
	Dial func(addr string, fromLSN uint64) (Stream, error)
	// OnPromote, when set, runs after a successful promotion (the store
	// already accepts writes under the new epoch): the server reseeds
	// its dedupe table from the replicated journal here.
	OnPromote func(epoch uint64)
	// OnFenced, when set, runs when a lease denial fences this primary.
	OnFenced func(epoch uint64, holder string)
	// SyncTimeout bounds the semi-sync wait in Barrier/AppendDedupe
	// (the publisher's own timeout; recorded here only for docs).
	// Logf receives one line per role transition and stream fault.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the node's gauges and counters.
	Metrics *obs.Registry
}

// Node runs one server's replication role: primary (renewing the
// lease, semi-sync shipping), follower (applying the stream, standing
// for election when it breaks), or fenced (a deposed primary refusing
// writes). It implements the chirp server's Durability and
// DedupeJournal extension points so mutating acknowledgements pick up
// the semi-sync wait transparently.
type Node struct {
	cfg   Config
	lease *LeaseClient

	mu          sync.Mutex
	role        string
	epoch       uint64
	primaryAddr string

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	promotions *obs.Counter
}

// Start brings the node up in the role its store recovered: replica
// mode means follower, anything else primary. The background loops
// (lease renewal, stream apply) run until Stop.
func Start(cfg Config) (*Node, error) {
	if cfg.Store == nil || cfg.Publisher == nil {
		return nil, errors.New("replica: node needs a store and a publisher")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * time.Second
	}
	n := &Node{
		cfg:         cfg,
		role:        RolePrimary,
		epoch:       cfg.Store.Epoch(),
		primaryAddr: cfg.Addr,
		stop:        make(chan struct{}),
	}
	if cfg.Store.IsReplica() {
		n.role = RoleFollower
		n.primaryAddr = cfg.PrimaryAddr
	}
	if cfg.CatalogAddr != "" {
		n.lease = &LeaseClient{
			CatalogAddr: cfg.CatalogAddr,
			Name:        cfg.Name,
			Addr:        cfg.Addr,
			// A claim may wait out the catalog's election window (TTL/4),
			// so give it the whole TTL before calling the catalog lost.
			Timeout: cfg.TTL,
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg.Help(MetricPromotions, "Follower promotions to primary on this node.")
	reg.Help(MetricAppliedLSN, "Highest LSN applied to this node's state (sampled at read).")
	n.promotions = reg.Counter(MetricPromotions)
	reg.GaugeFunc(MetricAppliedLSN, func() int64 { return int64(cfg.Store.AppliedLSN()) })

	if n.role == RoleFollower {
		if cfg.Dial == nil {
			return nil, errors.New("replica: follower needs a Dial function")
		}
		n.wg.Add(1)
		go n.followerLoop()
	} else {
		n.wg.Add(1)
		go n.primaryLoop()
	}
	return n, nil
}

// Stop ends the background loops. The node keeps answering role
// queries (for a clean server shutdown) but no longer renews or
// claims.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Role reports the node's role and fencing epoch (chirp.RoleSource).
func (n *Node) Role() (string, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.epoch
}

// AppliedLSN reports the highest LSN applied to this node's state
// (chirp.RoleSource).
func (n *Node) AppliedLSN() uint64 { return n.cfg.Store.AppliedLSN() }

// WaitApplied blocks until this node's state reflects lsn, for
// bounded-staleness reads against a follower (chirp.RoleSource). On a
// primary it returns immediately — the state is authoritative.
func (n *Node) WaitApplied(lsn uint64, timeout time.Duration) error {
	return n.cfg.Store.WaitApplied(lsn, timeout)
}

// PrimaryAddr reports where writes should go: this node's own address
// when primary, the last-known lease holder otherwise
// (chirp.RoleSource; servers put it in not-primary error replies so
// clients can re-target).
func (n *Node) PrimaryAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primaryAddr
}

// Barrier implements the chirp server's Durability hook: local
// durability first, then the semi-sync wait — the reply may reach the
// wire only once the mutation's group is on stable storage here AND
// acknowledged by a follower (when one is subscribed).
func (n *Node) Barrier() error {
	if err := n.cfg.Store.Barrier(); err != nil {
		return err
	}
	return n.cfg.Publisher.WaitShipped(n.cfg.Store.DurableLSN())
}

// BarrierTraced is Barrier for traced requests: the durable store's
// timing plus the semi-sync wait folded into the reported wait.
func (n *Node) BarrierTraced() (wait, commit time.Duration, err error) {
	start := time.Now()
	wait, commit, err = n.cfg.Store.BarrierTraced()
	if err != nil {
		return wait, commit, err
	}
	err = n.cfg.Publisher.WaitShipped(n.cfg.Store.DurableLSN())
	return time.Since(start), commit, err
}

// AppendDedupe implements the chirp server's DedupeJournal hook: the
// tokened reply is journaled (locally durable — the store waits) and
// then semi-sync shipped, so the dedupe entry exists on the follower
// before the client can see the answer. That is what keeps tokened
// retries exactly-once ACROSS a promotion: the promoted follower's
// dedupe table already holds every acknowledged reply.
func (n *Node) AppendDedupe(key string, reply []string) error {
	if err := n.cfg.Store.AppendDedupe(key, reply); err != nil {
		return err
	}
	return n.cfg.Publisher.WaitShipped(n.cfg.Store.DurableLSN())
}

// --- primary ------------------------------------------------------------

// primaryLoop claims the lease immediately, then renews every TTL/3.
// A denial naming a higher epoch fences this node: it stops accepting
// writes (Role reports fenced; the server refuses mutating commands)
// and keeps claiming only to track who the holder is.
func (n *Node) primaryLoop() {
	defer n.wg.Done()
	if n.lease == nil {
		return // no catalog: static solo primary
	}
	n.claimAsPrimary()
	t := time.NewTicker(n.cfg.TTL / 3)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.claimAsPrimary()
		}
	}
}

// claimAsPrimary sends one claim/renewal and folds the answer into the
// node's state.
func (n *Node) claimAsPrimary() {
	n.mu.Lock()
	epoch := n.epoch
	fenced := n.role == RoleFenced
	n.mu.Unlock()
	res, err := n.lease.Claim(n.cfg.Store.AppliedLSN(), epoch)
	if err != nil {
		n.logf("replica: lease renewal: %v", err)
		return
	}
	if res.Granted {
		if fenced {
			// A deposed primary must not resume on a re-grant: its log may
			// have diverged from the epoch that fenced it. Operators
			// restart it as a follower (-replica-of the new primary).
			n.logf("replica: fenced node offered epoch %d; refusing (restart as follower to rejoin)", res.Epoch)
			return
		}
		if res.Epoch > epoch {
			if err := n.cfg.Store.SetEpochDurable(res.Epoch); err != nil {
				n.logf("replica: persisting epoch %d: %v", res.Epoch, err)
				return
			}
			n.cfg.Publisher.SetEpoch(res.Epoch)
			n.mu.Lock()
			n.epoch = res.Epoch
			n.mu.Unlock()
			n.logf("replica: holding lease %q at epoch %d", n.cfg.Name, res.Epoch)
		}
		return
	}
	// Denied: someone else holds the lease. A higher epoch is the fence.
	n.mu.Lock()
	if res.Epoch > n.epoch || (res.Holder != "" && res.Holder != n.cfg.Addr) {
		if n.role == RolePrimary {
			n.role = RoleFenced
			n.mu.Unlock()
			n.logf("replica: fenced at epoch %d (lease held by %s)", res.Epoch, res.Holder)
			if n.cfg.OnFenced != nil {
				n.cfg.OnFenced(res.Epoch, res.Holder)
			}
			n.mu.Lock()
		}
		n.epoch = res.Epoch
		n.primaryAddr = res.Holder
	}
	n.mu.Unlock()
}

// --- follower -----------------------------------------------------------

// followerLoop streams from the primary and applies every batch; when
// the stream dies it stands for election, promoting on a grant and
// re-targeting the new holder on a denial.
func (n *Node) followerLoop() {
	defer n.wg.Done()
	retry := n.cfg.TTL / 4
	if retry <= 0 {
		retry = 100 * time.Millisecond
	}
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		n.mu.Lock()
		upstream := n.primaryAddr
		n.mu.Unlock()
		if upstream != "" && upstream != n.cfg.Addr {
			n.streamFrom(upstream)
		}
		select {
		case <-n.stop:
			return
		default:
		}
		if n.standForElection() {
			n.wg.Add(1)
			go n.primaryLoop()
			return
		}
		select {
		case <-n.stop:
			return
		case <-time.After(retry):
		}
	}
}

// streamFrom applies the primary's feed until it breaks.
func (n *Node) streamFrom(addr string) {
	stream, err := n.cfg.Dial(addr, n.cfg.Store.AppliedLSN())
	if err != nil {
		n.logf("replica: streaming from %s: %v", addr, err)
		return
	}
	defer stream.Close()
	n.logf("replica: following %s from lsn %d", addr, n.cfg.Store.AppliedLSN())
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		b, err := stream.Next()
		if err != nil {
			n.logf("replica: stream from %s ended: %v", addr, err)
			return
		}
		if _, err := n.cfg.Store.ApplyReplicated(b.Epoch, b.First, b.Last, b.Frames); err != nil {
			n.logf("replica: applying batch [%d,%d] epoch %d: %v", b.First, b.Last, b.Epoch, err)
			if errors.Is(err, durable.ErrStaleEpoch) {
				// The stream's source is a fenced primary; drop it and let
				// the election machinery find the real one.
				return
			}
			if errors.Is(err, durable.ErrReplicaGap) {
				return // resubscribe from the applied LSN
			}
			continue
		}
		if err := stream.Ack(n.cfg.Store.AppliedLSN()); err != nil {
			n.logf("replica: acking %s: %v", addr, err)
			return
		}
	}
}

// standForElection claims the lease once. A grant promotes this node:
// the store starts accepting writes under the new epoch (continuing
// the primary's LSN sequence), the publisher stamps the new term, and
// OnPromote lets the server reseed its dedupe table. A denial names
// the winner, which becomes the new upstream. Reports whether this
// node is now the primary.
func (n *Node) standForElection() bool {
	if n.lease == nil {
		return false
	}
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	res, err := n.lease.Claim(n.cfg.Store.AppliedLSN(), epoch)
	if err != nil {
		n.logf("replica: election claim: %v", err)
		return false
	}
	if !res.Granted {
		n.mu.Lock()
		if res.Epoch > n.epoch {
			n.epoch = res.Epoch
		}
		if res.Holder != "" {
			n.primaryAddr = res.Holder
		}
		n.mu.Unlock()
		return false
	}
	if err := n.cfg.Store.Promote(res.Epoch); err != nil {
		n.logf("replica: promotion to epoch %d failed: %v", res.Epoch, err)
		return false
	}
	n.cfg.Publisher.SetEpoch(res.Epoch)
	n.mu.Lock()
	n.role = RolePrimary
	n.epoch = res.Epoch
	n.primaryAddr = n.cfg.Addr
	n.mu.Unlock()
	n.promotions.Inc()
	n.logf("replica: promoted to primary at epoch %d (applied lsn %d)", res.Epoch, n.cfg.Store.AppliedLSN())
	if n.cfg.OnPromote != nil {
		n.cfg.OnPromote(res.Epoch)
	}
	return true
}
