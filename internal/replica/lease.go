package replica

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// The lease protocol is four UDP datagrams on the catalog's heartbeat
// socket:
//
//	claim:  lease <name> <addr> <lsn> <epoch>
//	grant:  grant <epoch> <ttlms>
//	deny:   deny <epoch> <holder>
//
// Replies carry no name — each claim rides its own UDP exchange, so
// the socket correlates them. Claim names and addresses are Go-quoted
// like every other catalog string; the deny holder is a bare host:port.
//
// A claim doubles as a renewal: the current holder extends its lease
// and is granted its existing epoch; anyone else is denied while the
// lease is live. When the lease has expired, the catalog opens a short
// election window, collects claims, and grants the NEXT epoch to the
// claimant with the highest applied LSN — so the follower that lost
// the least takes over, and the epoch number fences whoever held the
// lease before.

// ErrLeaseTimeout means no grant or deny arrived within the claim
// deadline — the catalog is unreachable or still electing.
var ErrLeaseTimeout = errors.New("replica: lease claim timed out")

// LeaseResult is the catalog's answer to one claim.
type LeaseResult struct {
	Granted bool
	Epoch   uint64        // granted term, or the term that fences us
	TTL     time.Duration // grant only: how long the lease runs
	Holder  string        // deny only: who holds the lease
}

// LeaseClient claims and renews one named lease with a catalog over
// UDP. It is stateless per call; the node drives the cadence.
type LeaseClient struct {
	CatalogAddr string
	Name        string // replica-set name (the catalog name the servers share)
	Addr        string // this server's advertised address (the lease identity)
	Timeout     time.Duration
}

// Claim asks for (or renews) the lease, reporting this node's applied
// LSN and current epoch. One datagram out, one back, bounded by
// Timeout; the catalog may sit on the reply for its election window, so
// the timeout must comfortably exceed it (the node uses the lease TTL).
func (lc *LeaseClient) Claim(lsn, epoch uint64) (LeaseResult, error) {
	conn, err := net.Dial("udp", lc.CatalogAddr)
	if err != nil {
		return LeaseResult{}, err
	}
	defer conn.Close()
	timeout := lc.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	if _, err := fmt.Fprintf(conn, "lease %s %s %d %d\n",
		strconv.Quote(lc.Name), strconv.Quote(lc.Addr), lsn, epoch); err != nil {
		return LeaseResult{}, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return LeaseResult{}, err
	}
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return LeaseResult{}, ErrLeaseTimeout
		}
		return LeaseResult{}, err
	}
	return parseLeaseReply(strings.TrimSpace(string(buf[:n])))
}

// parseLeaseReply decodes a grant or deny datagram.
func parseLeaseReply(line string) (LeaseResult, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return LeaseResult{}, fmt.Errorf("replica: malformed lease reply %q", line)
	}
	epoch, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return LeaseResult{}, fmt.Errorf("replica: bad lease epoch %q", fields[1])
	}
	switch fields[0] {
	case "grant":
		ms, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || ms < 0 {
			return LeaseResult{}, fmt.Errorf("replica: bad lease ttl %q", fields[2])
		}
		return LeaseResult{Granted: true, Epoch: epoch, TTL: time.Duration(ms) * time.Millisecond}, nil
	case "deny":
		return LeaseResult{Granted: false, Epoch: epoch, Holder: fields[2]}, nil
	default:
		return LeaseResult{}, fmt.Errorf("replica: malformed lease reply %q", line)
	}
}
