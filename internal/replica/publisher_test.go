package replica

import (
	"fmt"
	"testing"
	"time"

	"identitybox/internal/durable"
	"identitybox/internal/obs"
)

// openPrimary opens a fresh primary store wired to pub.
func openPrimary(t *testing.T, pub *Publisher) *durable.Store {
	t.Helper()
	opts := durable.Options{Owner: "owner", SyncEveryN: 1}
	if pub != nil {
		opts.OnShip = pub.Ship
	}
	store, err := durable.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if pub != nil {
		pub.Bind(store)
	}
	return store
}

// openFollower opens a fresh replica-mode store.
func openFollower(t *testing.T) *durable.Store {
	t.Helper()
	store, err := durable.Open(t.TempDir(), durable.Options{Owner: "owner", SyncEveryN: 1, ReplicaMode: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// mutate journals one write through the store's file system and waits
// for durability, so the commit group has shipped by return.
func mutate(t *testing.T, store *durable.Store, path string) {
	t.Helper()
	if err := store.FS().WriteFile(path, []byte("payload"), 0o644, "owner"); err != nil {
		t.Fatal(err)
	}
	if err := store.Barrier(); err != nil {
		t.Fatal(err)
	}
}

// TestPublisherFanOutAndAck: a shipped group reaches the subscriber in
// commit order, and its ack releases the semi-sync wait.
func TestPublisherFanOutAndAck(t *testing.T) {
	reg := obs.NewRegistry()
	pub := NewPublisher(reg, time.Second)
	store := openPrimary(t, pub)

	sub, catchup, snap, _, err := pub.Subscribe(store.DurableLSN())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if catchup != nil || snap != nil {
		t.Fatalf("subscribe from the durable horizon returned catch-up %v / snapshot %d bytes", catchup, len(snap))
	}

	mutate(t, store, "/a")
	select {
	case b := <-sub.C:
		if b.Records < 1 || b.First == 0 || b.Last < b.First {
			t.Fatalf("bad batch %+v", b)
		}
		// Semi-sync: the wait must not release before the ack.
		done := make(chan error, 1)
		go func() { done <- pub.WaitShipped(b.Last) }()
		select {
		case <-done:
			t.Fatal("WaitShipped released before the follower acked")
		case <-time.After(20 * time.Millisecond):
		}
		sub.Ack(b.Last)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no batch shipped")
	}
	if got := reg.Counter(MetricGroupsShipped).Value(); got < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricGroupsShipped, got)
	}
}

// TestWaitShippedDegrades: no subscribers means immediate return, and a
// stalled follower degrades the wait to local durability after the sync
// timeout — counted, never an error.
func TestWaitShippedDegrades(t *testing.T) {
	reg := obs.NewRegistry()
	pub := NewPublisher(reg, 30*time.Millisecond)
	store := openPrimary(t, pub)

	if err := pub.WaitShipped(99); err != nil {
		t.Fatalf("WaitShipped with no subscribers = %v", err)
	}
	if got := reg.Counter(MetricSyncTimeouts).Value(); got != 0 {
		t.Fatalf("no-subscriber wait counted as a timeout")
	}

	sub, _, _, _, err := pub.Subscribe(store.DurableLSN())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	start := time.Now()
	if err := pub.WaitShipped(99); err != nil {
		t.Fatalf("timed-out wait = %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("wait returned before the sync timeout with an unacked subscriber")
	}
	if got := reg.Counter(MetricSyncTimeouts).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricSyncTimeouts, got)
	}
}

// TestSubscriberOverflowCutLoose: a follower that stops draining is
// dropped with a channel close (the gap signal) instead of buffering
// the primary's stream without bound.
func TestSubscriberOverflowCutLoose(t *testing.T) {
	reg := obs.NewRegistry()
	pub := NewPublisher(reg, time.Second)
	store := openPrimary(t, pub)
	sub, _, _, _, err := pub.Subscribe(store.DurableLSN())
	if err != nil {
		t.Fatal(err)
	}
	// Never drain: the buffer holds subChanDepth batches, so shipping one
	// more cuts the subscriber loose.
	for i := 0; i <= subChanDepth; i++ {
		pub.Ship(uint64(i+1), uint64(i+1), 1, []byte("x"))
	}
	drained := 0
	for range sub.C {
		drained++
	}
	if drained != subChanDepth {
		t.Fatalf("drained %d buffered batches, want %d", drained, subChanDepth)
	}
	if got := reg.Counter(MetricSubOverflows).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricSubOverflows, got)
	}
	if pub.Subscribers() != 0 {
		t.Fatalf("overflowed subscriber still registered")
	}
}

// TestSubscribeCatchUpTail: a follower subscribing from behind receives
// the WAL tail it missed and replays it into an identical store.
func TestSubscribeCatchUpTail(t *testing.T) {
	pub := NewPublisher(nil, time.Second)
	store := openPrimary(t, pub)
	for i := 0; i < 3; i++ {
		mutate(t, store, fmt.Sprintf("/f%d", i))
	}
	sub, catchup, snap, _, err := pub.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if snap != nil {
		t.Fatalf("uncompacted log answered with a snapshot")
	}
	if catchup == nil || catchup.Records < 3 {
		t.Fatalf("catch-up = %+v, want >= 3 records", catchup)
	}
	follower := openFollower(t)
	if _, err := follower.ApplyReplicated(catchup.Epoch, catchup.First, catchup.Last, catchup.Frames); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := follower.FS().Stat(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatalf("replayed tree missing /f%d: %v", i, err)
		}
	}
	if follower.AppliedLSN() != catchup.Last {
		t.Fatalf("applied lsn %d, want %d", follower.AppliedLSN(), catchup.Last)
	}
}

// TestSubscribeCatchUpSnapshot: once compaction truncates the history a
// follower needs, Subscribe answers with a bootstrap snapshot instead.
func TestSubscribeCatchUpSnapshot(t *testing.T) {
	pub := NewPublisher(nil, time.Second)
	store := openPrimary(t, pub)
	mutate(t, store, "/pre")
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	sub, catchup, snap, snapLSN, err := pub.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if catchup != nil {
		t.Fatalf("compacted log still answered with a tail")
	}
	if snap == nil || snapLSN == 0 {
		t.Fatalf("no snapshot for a follower behind the compacted log (lsn %d)", snapLSN)
	}
	follower := openFollower(t)
	if err := follower.LoadReplicaSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := follower.FS().Stat("/pre"); err != nil {
		t.Fatalf("bootstrapped tree missing /pre: %v", err)
	}
	if follower.AppliedLSN() != snapLSN {
		t.Fatalf("applied lsn %d, want %d", follower.AppliedLSN(), snapLSN)
	}
}

// TestSetEpochMonotone: the stamped epoch never moves backwards.
func TestSetEpochMonotone(t *testing.T) {
	pub := NewPublisher(nil, time.Second)
	pub.SetEpoch(5)
	pub.SetEpoch(3)
	if got := pub.Epoch(); got != 5 {
		t.Fatalf("epoch = %d, want 5", got)
	}
}

// TestParseLeaseReply covers the three-field grant/deny grammar and its
// malformed rejections.
func TestParseLeaseReply(t *testing.T) {
	res, err := parseLeaseReply("grant 7 3000")
	if err != nil || !res.Granted || res.Epoch != 7 || res.TTL != 3*time.Second {
		t.Fatalf("grant = %+v, %v", res, err)
	}
	res, err = parseLeaseReply("deny 9 127.0.0.1:9094")
	if err != nil || res.Granted || res.Epoch != 9 || res.Holder != "127.0.0.1:9094" {
		t.Fatalf("deny = %+v, %v", res, err)
	}
	for _, bad := range []string{"", "grant 7", "grant x 3000", "grant 7 -1", "nope 1 2", "deny 9 a b"} {
		if _, err := parseLeaseReply(bad); err == nil {
			t.Errorf("parseLeaseReply(%q) accepted", bad)
		}
	}
}

// TestSoloPrimaryNodeBarrier: a node without catalog or followers is a
// static primary whose barrier degrades to local durability.
func TestSoloPrimaryNodeBarrier(t *testing.T) {
	reg := obs.NewRegistry()
	pub := NewPublisher(reg, time.Second)
	store := openPrimary(t, pub)
	n, err := Start(Config{Name: "solo", Addr: "127.0.0.1:1", Store: store, Publisher: pub, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if role, _ := n.Role(); role != RolePrimary {
		t.Fatalf("role = %s, want primary", role)
	}
	if err := store.FS().WriteFile("/solo", []byte("x"), 0o644, "owner"); err != nil {
		t.Fatal(err)
	}
	if err := n.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := n.AppendDedupe("k", []string{"ok"}); err != nil {
		t.Fatal(err)
	}
	if n.AppliedLSN() == 0 {
		t.Fatal("applied lsn still 0 after a durable mutation")
	}
	if got := reg.Gauge(MetricAppliedLSN).Value(); got != int64(n.AppliedLSN()) {
		t.Fatalf("%s gauge = %d, want %d", MetricAppliedLSN, got, n.AppliedLSN())
	}
}
