package replica

import (
	"errors"
	"math"
	"sync"
	"time"

	"identitybox/internal/durable"
	"identitybox/internal/obs"
)

// subChanDepth is each subscriber's buffered-batch budget. A follower
// that falls further behind than this (its apply loop stalled, its link
// dead but not yet detected) is cut loose with a gap signal and must
// resubscribe from its applied LSN, rather than buffering the primary's
// write stream without bound.
const subChanDepth = 64

// ErrPublisherClosed is returned by Subscribe after Close.
var ErrPublisherClosed = errors.New("replica: publisher closed")

// Publisher is the primary side of replication: it receives every
// committed group from the durable store's group-commit pipeline (wire
// its Ship method to durable.Options.OnShip) and fans the raw frames
// out to subscribed followers in commit order. It also implements the
// semi-sync wait: WaitShipped parks until some follower has
// acknowledged a given LSN, so a mutating reply can require its commit
// group to exist on a second machine before reaching the wire.
//
// Create the Publisher first, open the store with OnShip: pub.Ship,
// then Bind the store — the committer never ships before
// StartGroupCommit, so the late bind is safe.
type Publisher struct {
	mu     sync.Mutex
	store  *durable.Store
	subs   map[int64]*subscriber
	nextID int64
	closed bool

	// ackCh is closed and replaced whenever a follower acknowledgement
	// (or a subscriber departure) may unblock a WaitShipped waiter.
	ackCh chan struct{}

	// epoch is the fencing term stamped on every shipped batch header.
	// The node updates it after SetEpochDurable/Promote; Ship must not
	// read it from the store — the committer goroutine calls Ship, and
	// store.Epoch takes the store mutex that WALTailSince holds while
	// waiting for the committer (a lock cycle).
	epoch uint64

	syncTimeout time.Duration

	groups    *obs.Counter
	bytes     *obs.Counter
	timeouts  *obs.Counter
	overflows *obs.Counter
	subsGauge *obs.Gauge
}

// subscriber is one follower's fan-out endpoint.
type subscriber struct {
	id    int64
	ch    chan Batch
	acked uint64
	gone  bool
}

// NewPublisher creates a publisher recording into reg (nil for a
// private registry). syncTimeout bounds WaitShipped (0 means
// DefaultSyncTimeout).
func NewPublisher(reg *obs.Registry, syncTimeout time.Duration) *Publisher {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if syncTimeout <= 0 {
		syncTimeout = DefaultSyncTimeout
	}
	reg.Help(MetricGroupsShipped, "Commit groups shipped to followers.")
	reg.Help(MetricBytesShipped, "WAL frame bytes shipped to followers.")
	reg.Help(MetricSyncTimeouts, "Semi-sync barriers that timed out waiting for a follower ack (degraded to local durability).")
	reg.Help(MetricSubOverflows, "Subscribers dropped for falling too far behind the ship stream.")
	reg.Help(MetricSubscribers, "Followers currently subscribed.")
	reg.Help(MetricLag, "Records the slowest subscribed follower trails the durable horizon (sampled at read).")
	p := &Publisher{
		subs:        make(map[int64]*subscriber),
		ackCh:       make(chan struct{}),
		syncTimeout: syncTimeout,
		groups:      reg.Counter(MetricGroupsShipped),
		bytes:       reg.Counter(MetricBytesShipped),
		timeouts:    reg.Counter(MetricSyncTimeouts),
		overflows:   reg.Counter(MetricSubOverflows),
		subsGauge:   reg.Gauge(MetricSubscribers),
	}
	reg.GaugeFunc(MetricLag, p.lag)
	return p
}

// Bind attaches the durable store whose groups this publisher ships.
// Call once, before the store starts committing (in practice: right
// after durable.Open, whose Options.OnShip already points at Ship).
func (p *Publisher) Bind(store *durable.Store) {
	p.mu.Lock()
	p.store = store
	p.epoch = store.Epoch()
	p.mu.Unlock()
}

// SetEpoch updates the fencing term stamped on subsequent batch
// headers. The node calls it after SetEpochDurable/Promote; the epoch
// record itself rides the replicated stream, so a header briefly one
// term behind is harmless (followers adopt the higher of header and
// record).
func (p *Publisher) SetEpoch(epoch uint64) {
	p.mu.Lock()
	if epoch > p.epoch {
		p.epoch = epoch
	}
	p.mu.Unlock()
}

// Epoch reports the term currently stamped on shipped batches.
func (p *Publisher) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Ship is the durable.Options.OnShip hook: one committed group, called
// by the committer outside the WAL lock, in commit order. Ownership of
// frames rests here; every subscriber sees the same shared buffer and
// must treat it as read-only (followers decode, never mutate).
func (p *Publisher) Ship(first, last uint64, records int, frames []byte) {
	p.groups.Inc()
	p.bytes.Add(int64(len(frames)))
	p.mu.Lock()
	b := Batch{Epoch: p.epoch, First: first, Last: last, Records: records, Frames: frames}
	for id, sub := range p.subs {
		select {
		case sub.ch <- b:
		default:
			// The follower is not draining; cut it loose with a gap
			// signal (channel close) so it resubscribes from its applied
			// LSN instead of buffering without bound.
			p.overflows.Inc()
			sub.gone = true
			close(sub.ch)
			delete(p.subs, id)
			p.subsGauge.Dec()
		}
	}
	p.wakeAckedLocked()
	p.mu.Unlock()
}

// wakeAckedLocked releases WaitShipped waiters to re-check state.
func (p *Publisher) wakeAckedLocked() {
	close(p.ackCh)
	p.ackCh = make(chan struct{})
}

// Subscription is one follower's registration with the publisher. C
// delivers batches in commit order; it is closed when the follower
// fell too far behind (resubscribe from the applied LSN) or the
// publisher shut down.
type Subscription struct {
	C   <-chan Batch
	id  int64
	pub *Publisher
}

// Ack reports the follower's applied horizon, releasing semi-sync
// waiters at or below lsn.
func (sub *Subscription) Ack(lsn uint64) {
	p := sub.pub
	p.mu.Lock()
	if s, ok := p.subs[sub.id]; ok && lsn > s.acked {
		s.acked = lsn
		p.wakeAckedLocked()
	}
	p.mu.Unlock()
}

// Close removes the subscription.
func (sub *Subscription) Close() {
	p := sub.pub
	p.mu.Lock()
	if s, ok := p.subs[sub.id]; ok && !s.gone {
		s.gone = true
		close(s.ch)
		delete(p.subs, sub.id)
		p.subsGauge.Dec()
		p.wakeAckedLocked()
	}
	p.mu.Unlock()
}

// Subscribe registers a follower whose applied horizon is fromLSN and
// computes its catch-up: the WAL tail past fromLSN when the log still
// holds it (catchup non-nil when non-empty), or a full snapshot when
// compaction already truncated that history (snapshot non-nil; the
// follower bootstraps from it at snapLSN and receives the stream from
// there). Registration happens before the catch-up is computed, so no
// group can fall between them; any overlap between the catch-up and
// already-buffered live batches is dropped idempotently by the
// follower's ApplyReplicated.
func (p *Publisher) Subscribe(fromLSN uint64) (sub *Subscription, catchup *Batch, snapshot []byte, snapLSN uint64, err error) {
	p.mu.Lock()
	if p.closed || p.store == nil {
		p.mu.Unlock()
		return nil, nil, nil, 0, ErrPublisherClosed
	}
	store := p.store
	id := p.nextID
	p.nextID++
	s := &subscriber{id: id, ch: make(chan Batch, subChanDepth), acked: fromLSN}
	p.subs[id] = s
	p.subsGauge.Inc()
	sub = &Subscription{C: s.ch, id: id, pub: p}
	p.mu.Unlock()

	frames, first, last, records, terr := store.WALTailSince(fromLSN)
	if terr != nil {
		if !errors.Is(terr, durable.ErrReplicaGap) {
			sub.Close()
			return nil, nil, nil, 0, terr
		}
		blob, lsn, _, serr := store.ReplSnapshot()
		if serr != nil {
			sub.Close()
			return nil, nil, nil, 0, serr
		}
		return sub, nil, blob, lsn, nil
	}
	if records > 0 {
		catchup = &Batch{Epoch: p.Epoch(), First: first, Last: last, Records: records, Frames: frames}
	}
	return sub, catchup, nil, 0, nil
}

// Subscribers reports how many followers are currently attached.
func (p *Publisher) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// MaxAcked reports the highest LSN any subscribed follower has
// acknowledged (0 with no subscribers).
func (p *Publisher) MaxAcked() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var max uint64
	for _, s := range p.subs {
		if s.acked > max {
			max = s.acked
		}
	}
	return max
}

// MinAcked reports the lowest LSN any subscribed follower has
// acknowledged — the retention horizon for WAL segment pruning: a
// sealed segment whose records a follower has not yet acked must stay
// on disk so Subscribe can serve the tail without forcing a full
// snapshot transfer. With no subscribers it returns MaxUint64 (nothing
// holds retention back). Wire it to durable.Options.RetainLSN.
func (p *Publisher) MinAcked() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	min := uint64(math.MaxUint64)
	for _, s := range p.subs {
		if s.acked < min {
			min = s.acked
		}
	}
	return min
}

// WaitShipped blocks until some follower has acknowledged lsn — the
// semi-synchronous half of the acked ⇒ on-a-follower guarantee. With no
// subscribers it returns immediately: a lone primary degrades to
// local-durability-only rather than refusing service (the availability
// half of the design; the chaos suite exercises the replicated half).
// A timeout likewise degrades to async — counted, so the operator can
// see the guarantee thinning — rather than failing the write.
func (p *Publisher) WaitShipped(lsn uint64) error {
	var deadline *time.Timer
	for {
		p.mu.Lock()
		if p.closed || len(p.subs) == 0 {
			p.mu.Unlock()
			return nil
		}
		for _, s := range p.subs {
			if s.acked >= lsn {
				p.mu.Unlock()
				return nil
			}
		}
		ch := p.ackCh
		p.mu.Unlock()
		if deadline == nil {
			deadline = time.NewTimer(p.syncTimeout)
			defer deadline.Stop()
		}
		select {
		case <-ch:
		case <-deadline.C:
			p.timeouts.Inc()
			return nil
		}
	}
}

// lag samples how many records the slowest subscribed follower trails
// the primary's durable horizon (the MetricLag gauge; 0 when nothing is
// subscribed).
func (p *Publisher) lag() int64 {
	p.mu.Lock()
	store := p.store
	minAcked := uint64(0)
	first := true
	for _, s := range p.subs {
		if first || s.acked < minAcked {
			minAcked = s.acked
			first = false
		}
	}
	p.mu.Unlock()
	if first || store == nil {
		return 0
	}
	durableLSN := store.DurableLSN()
	if durableLSN <= minAcked {
		return 0
	}
	return int64(durableLSN - minAcked)
}

// Close detaches every subscriber and refuses new ones.
func (p *Publisher) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for id, s := range p.subs {
			s.gone = true
			close(s.ch)
			delete(p.subs, id)
		}
		p.subsGauge.Set(0)
		p.wakeAckedLocked()
	}
	p.mu.Unlock()
}
