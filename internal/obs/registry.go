package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a named-metric table. Metrics are created on first use
// (get-or-create), so instrumented code never checks registration
// state, and several subsystems may share one registry — identical
// names aggregate into the same metric.
//
// Names follow the Prometheus convention, optionally with an inline
// label block: `chirp_requests_total{cmd="open"}`. Series sharing the
// part before '{' form one family in the text exposition.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // keyed by family name
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// With renders a one-label series name: With("x_total", "cmd", "open")
// is `x_total{cmd="open"}`.
func With(name, label, value string) string {
	return name + "{" + label + "=" + strconv.Quote(value) + "}"
}

// Help records a family's help text, shown as a # HELP line in the text
// exposition.
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc returns the named gauge bound to a sampling function:
// every read — Value, Snapshot, the text exposition — reports what fn
// returns at that moment. Rebinding an existing gauge replaces its
// sampler. fn must be safe for concurrent use and must not block.
func (r *Registry) GaugeFunc(name string, fn func() int64) *Gauge {
	g := r.Gauge(name)
	g.SetFunc(fn)
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds if needed (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// --- snapshot -----------------------------------------------------------

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per-bucket; last is +Inf
	P50    float64   `json:"p50"`
	P99    float64   `json:"p99"`
	P999   float64   `json:"p999"`
	// Exemplars maps bucket index -> the trace ID (hex) of the most
	// recent traced observation in that bucket; omitted when none.
	Exemplars map[int]string `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of every metric, JSON-encodable.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: h.Bounds(),
			Counts: h.BucketCounts(),
			P50:    h.Quantile(0.5),
			P99:    h.Quantile(0.99),
			P999:   h.Quantile(0.999),
		}
		for i, ex := range h.Exemplars() {
			if ex != nil {
				if hs.Exemplars == nil {
					hs.Exemplars = make(map[int]string)
				}
				hs.Exemplars[i] = FormatTraceID(ex.Trace)
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (r *Registry) JSON() []byte {
	out, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return []byte("{}") // unreachable: Snapshot holds only encodable types
	}
	return out
}

// PublishExpvar exposes the registry's snapshot under the given expvar
// name (/debug/vars). Publishing the same name twice is a no-op rather
// than the expvar panic, so daemons can call it unconditionally.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// --- text exposition ----------------------------------------------------

// splitName separates a series name into its family and label block:
// `a_total{cmd="x"}` -> (`a_total`, `cmd="x"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// series renders family+suffix with merged labels, e.g.
// series("lat", "_bucket", `class="stat"`, `le="8"`).
func series(family, suffix string, labels ...string) string {
	var kept []string
	for _, l := range labels {
		if l != "" {
			kept = append(kept, l)
		}
	}
	if len(kept) == 0 {
		return family + suffix
	}
	return family + suffix + "{" + strings.Join(kept, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeExemplar appends an OpenMetrics-style exemplar annotation to a
// bucket line: ` # {trace_id="<hex>"} <value>`. Nil exemplars write
// nothing, so untraced registries keep the classic format.
func writeExemplar(b *strings.Builder, ex *Exemplar) {
	if ex == nil {
		return
	}
	b.WriteString(` # {trace_id="`)
	b.WriteString(FormatTraceID(ex.Trace))
	b.WriteString(`"} `)
	b.WriteString(formatFloat(ex.Value))
}

// Text renders the registry in the Prometheus text exposition format.
// Families are emitted in sorted order, series sorted within a family,
// so the output is deterministic (the golden test depends on it).
func (r *Registry) Text() string {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	hists := make(map[string]*Histogram, len(r.hists))
	help := make(map[string]string, len(r.help))
	for k, v := range r.counters {
		counters[k] = v
	}
	for k, v := range r.gauges {
		gauges[k] = v
	}
	for k, v := range r.hists {
		hists[k] = v
	}
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	// Group series by family, remembering each family's kind.
	type family struct {
		kind  string // "counter", "gauge", "histogram"
		names []string
	}
	families := make(map[string]*family)
	add := func(name, kind string) {
		fam, _ := splitName(name)
		f := families[fam]
		if f == nil {
			f = &family{kind: kind}
			families[fam] = f
		}
		f.names = append(f.names, name)
	}
	for name := range counters {
		add(name, "counter")
	}
	for name := range gauges {
		add(name, "gauge")
	}
	for name := range hists {
		add(name, "histogram")
	}
	famNames := make([]string, 0, len(families))
	for fam := range families {
		famNames = append(famNames, fam)
	}
	sort.Strings(famNames)

	var b strings.Builder
	for _, fam := range famNames {
		f := families[fam]
		sort.Strings(f.names)
		if h := help[fam]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, f.kind)
		for _, name := range f.names {
			_, labels := splitName(name)
			switch f.kind {
			case "counter":
				fmt.Fprintf(&b, "%s %d\n", series(fam, "", labels), counters[name].Value())
			case "gauge":
				fmt.Fprintf(&b, "%s %d\n", series(fam, "", labels), gauges[name].Value())
			case "histogram":
				h := hists[name]
				bounds := h.Bounds()
				counts := h.BucketCounts()
				exemplars := h.Exemplars()
				var cum int64
				for i, bound := range bounds {
					cum += counts[i]
					le := `le="` + formatFloat(bound) + `"`
					b.WriteString(series(fam, "_bucket", labels, le))
					fmt.Fprintf(&b, " %d", cum)
					writeExemplar(&b, exemplars[i])
					b.WriteByte('\n')
				}
				cum += counts[len(counts)-1]
				b.WriteString(series(fam, "_bucket", labels, `le="+Inf"`))
				fmt.Fprintf(&b, " %d", cum)
				writeExemplar(&b, exemplars[len(exemplars)-1])
				b.WriteByte('\n')
				fmt.Fprintf(&b, "%s %s\n", series(fam, "_sum", labels), formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s %d\n", series(fam, "_count", labels), h.Count())
				for _, q := range [...]struct {
					label string
					p     float64
				}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}} {
					fmt.Fprintf(&b, "%s %s\n",
						series(fam, "_quantile", labels, `quantile="`+q.label+`"`),
						formatFloat(h.Quantile(q.p)))
				}
			}
		}
	}
	return b.String()
}
