// Package obs is the repository's dependency-free telemetry kit:
// atomic counters and gauges, fixed-bucket histograms, a named-metric
// registry with a Prometheus-style text exposition and a JSON snapshot,
// and a lightweight event tracer for the Figure-4 protocol phases.
//
// Everything here is deliberately observational: no function in this
// package ever charges virtual time, so instrumenting the identity box,
// the kernel tracer or the Chirp server cannot perturb any deterministic
// virtual-time figure. Histogram bounds are expressed in virtual-time
// ticks (microseconds of the vclock), which keeps bucket counts exactly
// reproducible run-to-run.
//
// All types are safe for concurrent use; the hot paths (Counter.Add,
// Histogram.Observe) are lock-free.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative deltas are ignored: counters
// are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that may move both ways
// (live connections, open descriptors). A gauge may instead be backed
// by a sampling function (Registry.GaugeFunc): derived values like a
// replication lag — primary LSN minus follower-acked LSN — are then
// computed at read time instead of being pushed on every event.
type Gauge struct {
	v  atomic.Int64
	fn atomic.Pointer[func() int64]
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (either direction).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetFunc binds the gauge to a sampler: Value (and every exposition)
// reports what fn returns at that moment. Set/Add/Inc/Dec still move
// the stored value, but it stays shadowed until SetFunc(nil) unbinds.
// fn must be safe for concurrent use and must not block.
func (g *Gauge) SetFunc(fn func() int64) {
	if fn == nil {
		g.fn.Store(nil)
		return
	}
	g.fn.Store(&fn)
}

// Value reports the current value (the sampler's, when bound).
func (g *Gauge) Value() int64 {
	if fn := g.fn.Load(); fn != nil {
		return (*fn)()
	}
	return g.v.Load()
}
