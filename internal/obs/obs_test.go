package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters are monotone: negative deltas are ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-4)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	// le semantics: 0.5,1 -> le=1; 5,10 -> le=10; 50 -> le=100; 1000 -> +Inf
	want := []int64{2, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-1066.5) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	if math.Abs(h.Mean()-1066.5/6) > 1e-9 {
		t.Fatalf("mean = %g", h.Mean())
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram([]float64{100, 1, 10})
	b := h.Bounds()
	if b[0] != 1 || b[1] != 10 || b[2] != 100 {
		t.Fatalf("bounds = %v", b)
	}
}

// TestRegistryConcurrent hammers get-or-create and recording from many
// goroutines; run under -race this proves the lock discipline.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("shared_total").Inc()
				reg.Gauge("depth").Add(1)
				reg.Histogram("lat_us", LatencyBuckets()).Observe(float64(i))
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := reg.Histogram("lat_us", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(3)
	reg.Gauge("g").Set(-2)
	reg.Histogram("h_us", []float64{1, 2}).Observe(1.5)
	var snap Snapshot
	if err := json.Unmarshal(reg.JSON(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a_total"] != 3 || snap.Gauges["g"] != -2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	h := snap.Histograms["h_us"]
	if h.Count != 1 || h.Sum != 1.5 || len(h.Counts) != 3 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
}

func TestWithRendersLabel(t *testing.T) {
	if got := With("x_total", "cmd", "open"); got != `x_total{cmd="open"}` {
		t.Fatalf("With = %q", got)
	}
}

func TestTraceRingAndCounts(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Phase: PhasePeek, Bytes: i})
	}
	tr.Emit(Event{Phase: PhaseACLCheck, Path: "/data"})
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest first, and Seq is monotone.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq out of order: %v", evs)
		}
	}
	if evs[len(evs)-1].Phase != PhaseACLCheck {
		t.Fatalf("last event = %v", evs[len(evs)-1])
	}
	if tr.PhaseCount(PhasePeek) != 6 {
		t.Fatalf("peek count = %d (rotated events must still count)", tr.PhaseCount(PhasePeek))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Emit(Event{Phase: PhaseNative}) // must not panic
	if tr.Events() != nil || tr.Len() != 0 || tr.PhaseCount(PhaseNative) != 0 {
		t.Fatal("nil trace must be inert")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Event{Phase: PhaseTrapEntry})
				_ = tr.Events()
			}
		}()
	}
	wg.Wait()
	if tr.PhaseCount(PhaseTrapEntry) != 1600 {
		t.Fatalf("count = %d", tr.PhaseCount(PhaseTrapEntry))
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for _, ph := range Phases() {
		name := ph.String()
		if name == "" || strings.Contains(name, "?") {
			t.Fatalf("phase %d has no name", ph)
		}
		if seen[name] {
			t.Fatalf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 12, At: 6.9, PID: 1, Sys: "stat", Path: "/data", Phase: PhaseACLCheck}
	s := e.String()
	for _, want := range []string{"#12", "pid=1", "stat", "acl_check", "/data"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}

// --- instrumentation overhead ---------------------------------------------

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets())
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkRegistryCounterLookup(b *testing.B) {
	reg := NewRegistry()
	name := With("box_syscalls_total", "class", "stat")
	for i := 0; i < b.N; i++ {
		reg.Counter(name).Inc()
	}
}

func BenchmarkTraceEmit(b *testing.B) {
	tr := NewTrace(DefaultTraceCapacity)
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Phase: PhaseTrapEntry, PID: 1, Sys: "stat"})
	}
}

func TestGaugeFuncSamplesAtReadTime(t *testing.T) {
	r := NewRegistry()
	var lsn int64 = 7
	g := r.GaugeFunc("applied_lsn", func() int64 { return lsn })
	if got := g.Value(); got != 7 {
		t.Fatalf("sampled gauge = %d, want 7", got)
	}
	lsn = 42
	if got := g.Value(); got != 42 {
		t.Fatalf("sampled gauge after source moved = %d, want 42", got)
	}
	// The sampler shadows pushed values and shows up in the exposition.
	g.Set(5)
	if got := g.Value(); got != 42 {
		t.Fatalf("Set leaked through the sampler: %d", got)
	}
	if text := r.Text(); !strings.Contains(text, "applied_lsn 42") {
		t.Fatalf("exposition missing sampled value:\n%s", text)
	}
	// Rebinding replaces the sampler; unbinding restores pushed values.
	r.GaugeFunc("applied_lsn", func() int64 { return -1 })
	if got := g.Value(); got != -1 {
		t.Fatalf("rebound gauge = %d, want -1", got)
	}
	g.SetFunc(nil)
	if got := g.Value(); got != 5 {
		t.Fatalf("unbound gauge = %d, want the pushed 5", got)
	}
}
