package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestTextExpositionGolden locks the exact exposition format: family
// grouping, HELP/TYPE lines, sorted series, cumulative histogram
// buckets with a trailing +Inf, and _sum/_count lines.
func TestTextExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Help("box_syscalls_total", "System calls trapped by the identity box.")
	reg.Help("box_syscall_latency_us", "Full cost of one trapped call in virtual microseconds.")
	reg.Counter("box_syscalls_total").Add(7)
	reg.Counter(With("chirp_requests_total", "cmd", "open")).Add(3)
	reg.Counter(With("chirp_requests_total", "cmd", "stat")).Add(2)
	reg.Gauge("chirp_open_conns").Set(1)
	h := reg.Histogram(With("box_syscall_latency_us", "class", "stat"), []float64{4, 8, 16})
	for _, v := range []float64{3.5, 6.9, 6.9, 120} {
		h.Observe(v)
	}

	got := reg.Text()
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
