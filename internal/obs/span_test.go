package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanRingNilSafe: every SpanRing method must be a no-op on a nil
// receiver, so call sites carry no guards.
func TestSpanRingNilSafe(t *testing.T) {
	var r *SpanRing
	r.Record(Span{Trace: 1, Name: "x"}) // must not panic
	if got := r.Spans(); got != nil {
		t.Errorf("nil ring Spans() = %v, want nil", got)
	}
	if got := r.Trace(1); got != nil {
		t.Errorf("nil ring Trace() = %v, want nil", got)
	}
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Errorf("nil ring Len/Dropped = %d/%d, want 0/0", r.Len(), r.Dropped())
	}
	if id := r.NextSpanID(); id == 0 {
		t.Error("nil ring NextSpanID() = 0")
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := NewSpanRing(4)
	for i := 1; i <= 6; i++ {
		r.Record(Span{Trace: uint64(i), Name: "s"})
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("len = %d, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(i + 3); s.Trace != want {
			t.Errorf("span %d trace = %d, want %d (oldest first)", i, s.Trace, want)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	if got := r.Trace(4); len(got) != 1 {
		t.Errorf("Trace(4) = %d spans, want 1", len(got))
	}
}

// TestSpanRingConcurrent drives the ring from many goroutines; the race
// detector is the real assertion.
func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := NewTraceID()
				r.Record(Span{Trace: id, ID: r.NextSpanID(), Name: "w", Start: time.Now()})
				_ = r.Trace(id)
				_ = r.Len()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("Len = %d, want 64", r.Len())
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %016x", id)
		}
		seen[id] = true
		s := FormatTraceID(id)
		if len(s) != 16 {
			t.Fatalf("FormatTraceID(%d) = %q, want 16 hex digits", id, s)
		}
		back, err := ParseTraceID(s)
		if err != nil || back != id {
			t.Fatalf("round trip %016x -> %q -> %016x (%v)", id, s, back, err)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	// 10 observations uniformly in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %v, want 10 (rank at the first bucket's upper bound)", q)
	}
	if q := h.Quantile(0.75); q != 15 {
		t.Errorf("p75 = %v, want 15 (midway through the second bucket)", q)
	}
	if q := h.Quantile(1); q != 20 {
		t.Errorf("p100 = %v, want 20", q)
	}
	// +Inf bucket clamps to the highest finite bound.
	h.Observe(1000)
	if q := h.Quantile(0.999); q != 40 {
		t.Errorf("p999 with +Inf mass = %v, want 40", q)
	}
	// Empty histogram.
	if q := NewHistogram(nil).Quantile(0.5); q != 0 {
		t.Errorf("empty p50 = %v, want 0", q)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.ObserveExemplar(5, 0xabc) // first bucket
	h.ObserveExemplar(99, 0xdef)
	h.Observe(15) // untraced: no exemplar for bucket 1
	ex := h.Exemplars()
	if ex[0] == nil || ex[0].Trace != 0xabc || ex[0].Value != 5 {
		t.Errorf("bucket 0 exemplar = %+v", ex[0])
	}
	if ex[1] != nil {
		t.Errorf("bucket 1 exemplar = %+v, want nil", ex[1])
	}
	if ex[2] == nil || ex[2].Trace != 0xdef {
		t.Errorf("+Inf exemplar = %+v", ex[2])
	}
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}

	reg := NewRegistry()
	rh := reg.Histogram("lat_us", []float64{10, 20})
	rh.ObserveExemplar(5, 0xabc)
	text := reg.Text()
	if !strings.Contains(text, `lat_us_bucket{le="10"} 1 # {trace_id="0000000000000abc"} 5`) {
		t.Errorf("exemplar annotation missing from exposition:\n%s", text)
	}
	if !strings.Contains(text, `lat_us_quantile{quantile="0.99"}`) {
		t.Errorf("quantile series missing from exposition:\n%s", text)
	}
	snap := reg.Snapshot().Histograms["lat_us"]
	if snap.Exemplars[0] != "0000000000000abc" {
		t.Errorf("snapshot exemplars = %v", snap.Exemplars)
	}
	if snap.P50 == 0 {
		t.Errorf("snapshot p50 = 0, want > 0")
	}
}
