package obs

import "net/http"

// Handler serves the registry over HTTP: the Prometheus text exposition
// by default, the JSON snapshot with ?format=json. Daemons mount it at
// /metrics next to expvar (/debug/vars) and pprof (/debug/pprof).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			w.Write(r.JSON())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write([]byte(r.Text()))
	})
}
