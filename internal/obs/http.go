package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// Handler serves the registry over HTTP: the Prometheus text exposition
// by default, the JSON snapshot with ?format=json. Daemons mount it at
// /metrics next to expvar (/debug/vars) and pprof (/debug/pprof).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			w.Write(r.JSON())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write([]byte(r.Text()))
	})
}

// TracesHandler serves a span ring over HTTP: a human-readable listing
// of recent traces by default, the raw spans as JSON with ?format=json,
// and a single trace with ?trace=<hexid>. Daemons mount it at
// /debug/traces next to /metrics. A nil ring serves an empty listing.
func TracesHandler(ring *SpanRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := ring.Spans()
		if t := req.URL.Query().Get("trace"); t != "" {
			id, err := ParseTraceID(t)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			var kept []Span
			for _, s := range spans {
				if s.Trace == id {
					kept = append(kept, s)
				}
			}
			spans = kept
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Group by trace, most recent trace last, spans in ring order.
		order := make([]uint64, 0, 16)
		byTrace := make(map[uint64][]Span)
		for _, s := range spans {
			if _, ok := byTrace[s.Trace]; !ok {
				order = append(order, s.Trace)
			}
			byTrace[s.Trace] = append(byTrace[s.Trace], s)
		}
		fmt.Fprintf(w, "%d spans, %d traces (dropped %d)\n", len(spans), len(order), ring.Dropped())
		for _, id := range order {
			group := byTrace[id]
			sort.SliceStable(group, func(i, j int) bool { return group[i].Start.Before(group[j].Start) })
			fmt.Fprintf(w, "\ntrace %s\n", FormatTraceID(id))
			for _, s := range group {
				WriteSpan(w, s)
			}
		}
	})
}

// WriteSpan renders one span (and its phases, indented) as text. The
// format is shared by the HTTP view and the chirp CLI.
func WriteSpan(w interface{ Write([]byte) (int, error) }, s Span) {
	name := s.Name
	if s.Cmd != "" {
		name += " " + s.Cmd
	}
	errSuffix := ""
	if s.Err != "" {
		errSuffix = "  err=" + s.Err
	}
	fmt.Fprintf(w, "  %-28s %s  +%v%s\n", name, s.Start.Format("15:04:05.000000"), s.Dur, errSuffix)
	for _, ph := range s.Phases {
		fmt.Fprintf(w, "    %-26s @%-12v %v\n", ph.Name, ph.Offset, ph.Dur)
	}
}
