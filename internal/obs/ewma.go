package obs

import (
	"math"
	"sync/atomic"
)

// EWMA is a lock-free exponentially-weighted moving average. It is the
// cheap estimator behind admission control's retry-after hints: one
// float64 updated by CAS, readable from any goroutine without
// coordination. A zero alpha disables smoothing (every observation
// replaces the value).
type EWMA struct {
	alpha float64
	bits  atomic.Uint64
	seen  atomic.Bool
}

// NewEWMA returns an EWMA that weights each new observation by alpha
// (0 < alpha <= 1). Typical values: 0.1 for a slow estimator, 0.5 for
// a reactive one.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average.
func (e *EWMA) Observe(v float64) {
	if e.seen.CompareAndSwap(false, true) {
		e.bits.Store(math.Float64bits(v))
		return
	}
	for {
		old := e.bits.Load()
		next := math.Float64frombits(old)*(1-e.alpha) + v*e.alpha
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 {
	if !e.seen.Load() {
		return 0
	}
	return math.Float64frombits(e.bits.Load())
}
