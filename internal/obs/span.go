package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-tracing half of the package: spans are
// wall-clock timings of one request's passage through a process,
// correlated across processes by a shared trace ID. Like every other
// obs facility, span recording never touches the virtual clock — a
// traced run is tick-identical to an untraced one.

// DefaultSpanCapacity bounds a process's span ring when the creator
// does not choose.
const DefaultSpanCapacity = 4096

// A Span is one timed unit of work attributed to a trace: a client
// call, a server request, a WAL group commit. Start and Dur are wall
// clock (time.Time / time.Duration), never virtual ticks. Phases
// subdivide the span; their offsets are relative to Start.
type Span struct {
	Trace  uint64        `json:"-"`
	TraceS string        `json:"trace"` // %016x form, for JSON consumers
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"` // "client", "server", "wal.commit", "box.<class>"
	Cmd    string        `json:"cmd,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Phases []SpanPhase   `json:"phases,omitempty"`
	Err    string        `json:"err,omitempty"`
}

// SpanPhase is one timed sub-step inside a span.
type SpanPhase struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"off_ns"` // from Span.Start
	Dur    time.Duration `json:"dur_ns"`
}

// Phase appends a phase covering [off, off+dur) and returns the span
// for chaining.
func (s *Span) Phase(name string, off, dur time.Duration) *Span {
	s.Phases = append(s.Phases, SpanPhase{Name: name, Offset: off, Dur: dur})
	return s
}

// SpanRing is a bounded in-memory store of completed spans, oldest
// evicted first. A nil *SpanRing is a valid no-op recorder, so call
// sites need no guards — the disabled path is one nil check.
type SpanRing struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	dropped int64
	ids     atomic.Uint64 // span-ID allocator
}

// NewSpanRing creates a ring holding up to capacity completed spans
// (minimum 1; 0 or negative uses DefaultSpanCapacity).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRing{buf: make([]Span, capacity)}
}

// NextSpanID allocates a process-unique span ID. Nil-safe: a nil ring
// still hands out IDs from a shared fallback counter.
func (r *SpanRing) NextSpanID() uint64 {
	if r == nil {
		return fallbackIDs.Add(1)
	}
	return r.ids.Add(1)
}

var fallbackIDs atomic.Uint64

// Record stores one completed span. Nil-safe and safe for concurrent
// use. The span's TraceS field is derived here so recorders never
// format IDs on their own.
func (r *SpanRing) Record(s Span) {
	if r == nil {
		return
	}
	s.TraceS = FormatTraceID(s.Trace)
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Spans returns the retained spans, oldest first. Nil-safe (empty).
func (r *SpanRing) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Trace returns the retained spans carrying the given trace ID, oldest
// first. Nil-safe (empty).
func (r *SpanRing) Trace(id uint64) []Span {
	if r == nil || id == 0 {
		return nil
	}
	var out []Span
	for _, s := range r.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// Len reports how many spans are retained. Nil-safe (0).
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped reports how many spans were evicted to make room. Nil-safe.
func (r *SpanRing) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// --- trace IDs ----------------------------------------------------------

var traceSeq atomic.Uint64

func init() {
	// Seed the trace-ID sequence from the wall clock once, so separate
	// processes started in the same second diverge. Collisions are
	// harmless (a trace view shows a few foreign spans), so a strong
	// RNG is not needed and the hot path stays a single atomic add.
	traceSeq.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID returns a fresh non-zero trace ID: a splitmix64 of a
// process-wide sequence seeded from the wall clock. Zero is reserved
// to mean "untraced".
func NewTraceID() uint64 {
	for {
		z := traceSeq.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// FormatTraceID renders an ID in the canonical 16-hex-digit wire form.
func FormatTraceID(id uint64) string {
	var b [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseTraceID parses the wire form produced by FormatTraceID (any
// hex string up to 16 digits is accepted).
func ParseTraceID(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}
