package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram of float64 observations
// (virtual-time ticks, byte counts). Bucket bounds are upper bounds with
// "less than or equal" semantics, matching the Prometheus `le` label; an
// implicit +Inf bucket catches everything beyond the last bound.
// Observations are lock-free.
type Histogram struct {
	bounds  []float64 // ascending, immutable after construction
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// LatencyBuckets is the default bound set for virtual-microsecond
// syscall latencies: geometric from sub-microsecond (native getpid) to
// tens of milliseconds (process spawn).
func LatencyBuckets() []float64 {
	return []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}
}

// NewHistogram creates a histogram with the given ascending upper
// bounds. The slice is copied. Nil or empty bounds yield a single +Inf
// bucket (a count/sum pair).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) means +Inf
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean reports Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the configured upper bounds (without the implicit
// +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns a snapshot of per-bucket (non-cumulative)
// counts; the final element is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}
