package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram of float64 observations
// (virtual-time ticks, byte counts). Bucket bounds are upper bounds with
// "less than or equal" semantics, matching the Prometheus `le` label; an
// implicit +Inf bucket catches everything beyond the last bound.
// Observations are lock-free.
type Histogram struct {
	bounds  []float64 // ascending, immutable after construction
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated

	// exemplars holds the most recent traced observation per bucket
	// (best effort, last write wins). Only ObserveExemplar touches it,
	// so the untraced Observe path stays allocation-free.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one bucket of a histogram to a trace that landed in
// it, in the OpenMetrics sense: a dashboard showing a latency bucket
// can jump straight to a representative trace.
type Exemplar struct {
	Trace uint64  // trace ID (0 never stored)
	Value float64 // the observed value
}

// LatencyBuckets is the default bound set for virtual-microsecond
// syscall latencies: geometric from sub-microsecond (native getpid) to
// tens of milliseconds (process spawn).
func LatencyBuckets() []float64 {
	return []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}
}

// NewHistogram creates a histogram with the given ascending upper
// bounds. The slice is copied. Nil or empty bounds yield a single +Inf
// bucket (a count/sum pair).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		buckets:   make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) means +Inf
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// ObserveExemplar records one value and stamps the bucket it lands in
// with the trace that produced it, so the exposition can link latency
// buckets to trace IDs. A zero trace degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, trace uint64) {
	if trace != 0 {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&Exemplar{Trace: trace, Value: v})
	}
	h.Observe(v)
}

// Exemplars returns the current per-bucket exemplars; entries are nil
// for buckets no traced observation has landed in. The final element
// is the +Inf bucket.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Quantile estimates the p-quantile (0 <= p <= 1) of the observed
// distribution, interpolating linearly within the bucket the rank
// falls in — the same estimate Prometheus's histogram_quantile gives.
// The +Inf bucket reports the highest finite bound (there is nothing
// to interpolate toward). An empty histogram reports 0.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum int64
	for i := range h.bounds {
		n := h.buckets[i].Load()
		if float64(cum+n) >= rank && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (h.bounds[i]-lower)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	// Rank falls in the +Inf bucket: report the largest finite bound.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean reports Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the configured upper bounds (without the implicit
// +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns a snapshot of per-bucket (non-cumulative)
// counts; the final element is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}
