package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Phase identifies one stage of the Figure-4 trapping protocol, as seen
// from the supervisor: the entry stop, the policy check, each data
// movement mechanism, and the three ways a trapped call completes
// (nullified, native, or rewritten onto the I/O channel).
type Phase uint8

const (
	PhaseTrapEntry      Phase = iota // child stopped at syscall entry
	PhaseACLCheck                    // supervisor evaluated an ACL
	PhasePeek                        // bytes peeked out of the child
	PhasePoke                        // bytes poked into the child
	PhaseChannelStage                // bulk data staged into the I/O channel
	PhaseChannelCollect              // bulk data collected from the I/O channel
	PhaseNullified                   // call completed by nullification (getpid rewrite)
	PhaseNative                      // call completed natively by the kernel
	PhaseChannelRead                 // call completed as a rewritten channel pread
	PhaseChannelWrite                // call completed as a rewritten channel pwrite

	phaseCount // keep last
)

var phaseNames = [...]string{
	PhaseTrapEntry:      "trap_entry",
	PhaseACLCheck:       "acl_check",
	PhasePeek:           "peek",
	PhasePoke:           "poke",
	PhaseChannelStage:   "channel_stage",
	PhaseChannelCollect: "channel_collect",
	PhaseNullified:      "nullified",
	PhaseNative:         "native",
	PhaseChannelRead:    "channel_read",
	PhaseChannelWrite:   "channel_write",
}

// Phases lists every phase in protocol order.
func Phases() []Phase {
	out := make([]Phase, phaseCount)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// String names the phase, e.g. "acl_check".
func (ph Phase) String() string {
	if int(ph) < len(phaseNames) {
		return phaseNames[ph]
	}
	return "phase?"
}

// Event is one phase occurrence during one trapped system call.
type Event struct {
	Seq   uint64  // emission order, monotone per Trace
	At    float64 // process virtual clock at emission, in ticks (µs)
	PID   int
	Sys   string // syscall name ("" for events emitted outside a frame)
	Path  string // path involved, when the phase has one
	Bytes int    // bytes moved, for data-movement phases
	Phase Phase
}

// String renders the event for logs: "#12 @6.90us pid=1 stat acl_check /data".
func (e Event) String() string {
	s := fmt.Sprintf("#%d @%.2fus pid=%d %s %s", e.Seq, e.At, e.PID, e.Sys, e.Phase)
	if e.Bytes > 0 {
		s += fmt.Sprintf(" %dB", e.Bytes)
	}
	if e.Path != "" {
		s += " " + e.Path
	}
	return s
}

// Trace is a bounded in-memory span/event recorder for the Figure-4
// protocol phases. Events land in a ring (newest overwrite oldest);
// per-phase totals are kept forever. All methods are safe on a nil
// *Trace, so instrumented code needs no enabled-checks.
type Trace struct {
	mu     sync.Mutex
	seq    uint64
	ring   []Event
	next   int
	full   bool
	counts [phaseCount]atomic.Int64
}

// DefaultTraceCapacity bounds the event ring when NewTrace is given no
// explicit capacity.
const DefaultTraceCapacity = 4096

// NewTrace creates a tracer holding up to capacity events (0 means
// DefaultTraceCapacity).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{ring: make([]Event, capacity)}
}

// Emit records one event. Emit on a nil Trace is a no-op.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	if int(e.Phase) < int(phaseCount) {
		t.counts[e.Phase].Add(1)
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// PhaseCount reports how many events of the phase were ever emitted
// (including any that have rotated out of the ring).
func (t *Trace) PhaseCount(ph Phase) int64 {
	if t == nil || int(ph) >= int(phaseCount) {
		return 0
	}
	return t.counts[ph].Load()
}

// Len reports how many events are currently retained.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}
