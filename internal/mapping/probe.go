package mapping

import (
	"errors"
	"fmt"

	"identitybox/internal/identity"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

func defaultModel() vclock.CostModel { return vclock.Default() }

// Tri is a three-valued property: some Figure-1 cells are "fixed" —
// true within a group and false across groups.
type Tri int

// Tri values.
const (
	No Tri = iota
	Yes
	Fixed
)

func (t Tri) String() string {
	switch t {
	case Yes:
		return "yes"
	case Fixed:
		return "fixed"
	default:
		return "no"
	}
}

// triOf combines a within-organization and a cross-organization
// measurement into one cell.
func triOf(within, across bool) Tri {
	switch {
	case within && across:
		return Yes
	case !within && !across:
		return No
	default:
		return Fixed
	}
}

// Measured is one empirically determined row of Figure 1.
type Measured struct {
	Method        string
	RequiresRoot  bool
	ProtectsOwner bool
	Privacy       Tri
	Sharing       Tri
	Return        bool
	AdminBurden   string
	AdminActions  int // manual interventions to admit the probe users
	Users         int
}

// probe principals: A and B belong to the same organization; C comes
// from another, so group methods place C in a different group.
var (
	probeA = identity.Principal("globus:/O=UnivNowhere/CN=Alice")
	probeB = identity.Principal("globus:/O=UnivNowhere/CN=Bob")
	probeC = identity.Principal("globus:/O=Elsewhere/CN=Carol")
)

// ProbeUsers returns n distinct principals from alternating
// organizations, used to measure admission burden.
func ProbeUsers(n int) []identity.Principal {
	out := make([]identity.Principal, 0, n)
	for i := 0; i < n; i++ {
		org := "UnivNowhere"
		if i%2 == 1 {
			org = "Elsewhere"
		}
		out = append(out, identity.Principal(fmt.Sprintf("globus:/O=%s/CN=User%d", org, i)))
	}
	return out
}

// StandardGroups is the group configuration used by the probes: one
// group per organization, as Grid3 assigns one account per experiment.
func StandardGroups() []GroupRule {
	return []GroupRule{
		{Pattern: "globus:/O=UnivNowhere/*", Account: "grp_nowhere"},
		{Pattern: "globus:/O=Elsewhere/*", Account: "grp_elsewhere"},
	}
}

// write stores contents at path (relative to the session home when not
// absolute) through ordinary syscalls, with owner-only permissions.
func write(s Session, path string, contents string) error {
	st := s.Run(func(p *kernel.Proc, _ []string) int {
		if err := p.WriteFile(path, []byte(contents), 0o600); err != nil {
			return 1
		}
		return 0
	})
	if st.Code != 0 {
		return fmt.Errorf("mapping: write %s failed", path)
	}
	return nil
}

// canRead reports whether the session can read back the expected
// contents at path.
func canRead(s Session, path, want string) bool {
	st := s.Run(func(p *kernel.Proc, _ []string) int {
		data, err := p.ReadFile(path)
		if err != nil || string(data) != want {
			return 1
		}
		return 0
	})
	return st.Code == 0
}

// Probe measures the Figure-1 properties of a mapper on a fresh world.
// The mapper must have been constructed over w.
func Probe(m Mapper, w *World, burdenUsers []identity.Principal) (Measured, error) {
	out := Measured{
		Method:       m.Name(),
		RequiresRoot: m.RequiresRoot(),
		AdminBurden:  m.DeclaredBurden(),
		Users:        len(burdenUsers),
	}

	// 1. Admission burden: admit every probe user once, and snapshot
	// the intervention count before the scenario logins below add
	// their own.
	for _, u := range burdenUsers {
		s, err := m.Login(u)
		if err != nil {
			return out, fmt.Errorf("admitting %s: %w", u, err)
		}
		s.End()
	}
	out.AdminActions = m.AdminActions()

	// 2. Protecting the owner: a visitor tries to read the owner's
	// private file.
	sa, err := m.Login(probeA)
	if err != nil {
		return out, err
	}
	out.ProtectsOwner = !canRead(sa, w.OwnerSecretPath(), "the owner's private data")

	// 3. Privacy: Alice stores a private file; Bob (same org) and
	// Carol (other org) try to read it.
	privatePath := vfs.Join(sa.Home(), "private.txt")
	if err := write(sa, privatePath, "alice private"); err != nil {
		return out, err
	}
	sb, err := m.Login(probeB)
	if err != nil {
		return out, err
	}
	sc, err := m.Login(probeC)
	if err != nil {
		return out, err
	}
	privacyWithin := !canRead(sb, privatePath, "alice private")
	privacyAcross := !canRead(sc, privatePath, "alice private")
	out.Privacy = triOf(privacyWithin, privacyAcross)

	// 4. Sharing: Alice deliberately grants Bob (same org) and Carol
	// (other org) access to a file, by their grid identities.
	sharedPath := vfs.Join(sa.Home(), "shared.txt")
	if err := write(sa, sharedPath, "alice shared"); err != nil {
		return out, err
	}
	shareTo := func(to identity.Principal, reader Session) bool {
		if err := m.Share(sa, sharedPath, to); err != nil {
			if errors.Is(err, ErrNoSharing) {
				return false
			}
			return false
		}
		return canRead(reader, sharedPath, "alice shared")
	}
	sharingWithin := shareTo(probeB, sb)
	sharingAcross := shareTo(probeC, sc)
	out.Sharing = triOf(sharingWithin, sharingAcross)
	sb.End()
	sc.End()

	// 5. Return: Alice stores data, logs out, logs back in later and
	// looks for it. (Another user cycles through in between, as on a
	// busy site, which is what defeats pool accounts.)
	returnPath := vfs.Join(sa.Home(), "comeback.txt")
	if err := write(sa, returnPath, "see you soon"); err != nil {
		return out, err
	}
	sa.End()
	interloper, err := m.Login(probeC)
	if err != nil {
		return out, err
	}
	interloper.End()
	sa2, err := m.Login(probeA)
	if err != nil {
		return out, err
	}
	// The user returns to wherever the method now places them and asks
	// for the file stored last time, at its recorded absolute path.
	out.Return = canRead(sa2, returnPath, "see you soon")
	sa2.End()
	return out, nil
}

// AllMappers constructs the seven Figure-1 methods over fresh worlds
// and returns (mapper, world) pairs in row order.
func AllMappers(owner string) (ms []Mapper, ws []*World, err error) {
	mk := func(f func(w *World) Mapper) error {
		w, err := NewWorld(owner)
		if err != nil {
			return err
		}
		ms = append(ms, f(w))
		ws = append(ws, w)
		return nil
	}
	steps := []func(w *World) Mapper{
		func(w *World) Mapper { return &SingleMapper{W: w} },
		func(w *World) Mapper { return &UntrustedMapper{W: w} },
		func(w *World) Mapper { return NewPrivateMapper(w) },
		func(w *World) Mapper { return NewGroupMapper(w, StandardGroups()) },
		func(w *World) Mapper { return &AnonymousMapper{W: w} },
		func(w *World) Mapper { return NewPoolMapper(w, 8) },
		func(w *World) Mapper { return &BoxMapper{W: w} },
	}
	for _, f := range steps {
		if err := mk(f); err != nil {
			return nil, nil, err
		}
	}
	return ms, ws, nil
}

// PaperRow is the value Figure 1 reports for a method.
type PaperRow struct {
	Method        string
	RequiresRoot  bool
	ProtectsOwner bool
	Privacy       Tri
	Sharing       Tri
	Return        bool
	AdminBurden   string
}

// PaperFigure1 encodes the published table for comparison.
func PaperFigure1() []PaperRow {
	return []PaperRow{
		{"single", false, false, No, Yes, true, "-"},
		{"untrusted", true, true, No, Yes, true, "-"},
		{"private", true, true, Yes, No, true, "per user"},
		{"group", true, true, Fixed, Fixed, true, "per group"},
		{"anonymous", true, true, Yes, No, false, "-"},
		{"pool", true, true, Yes, No, false, "per pool"},
		{"identity box", false, true, Yes, Yes, true, "-"},
	}
}
