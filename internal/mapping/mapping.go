// Package mapping implements the identity-mapping methods compared in
// Figure 1 of the paper: the six pre-existing ways grid sites admit
// visiting users (single account, untrusted account, private accounts
// with a gridmap file, group accounts, anonymous accounts, account
// pools) and the identity box, all behind one Mapper interface.
//
// Each mapper admits a grid principal to a local system, yielding a
// Session that can run programs. The experiment harness then *measures*
// the Figure-1 properties instead of asserting them: does the method
// protect the resource owner, give visitors privacy, let them share
// deliberately, let them return to stored data, and how many manual
// administrator interventions did admitting N users take?
package mapping

import (
	"fmt"
	"sync"

	"identitybox/internal/core"
	"identitybox/internal/identity"
	"identitybox/internal/kernel"
	"identitybox/internal/vfs"
)

// Session is one visiting user's login under some mapping method.
type Session interface {
	// Principal is the grid identity this session was created for.
	Principal() identity.Principal
	// Account is the local account the session runs under ("" when the
	// method does not surface one, as in the identity box).
	Account() string
	// Run executes a program in the session's context.
	Run(prog kernel.Program, args ...string) kernel.ExitStatus
	// Home is the directory the user is expected to work in.
	Home() string
	// End logs the session out. Anonymous and pool accounts reclaim
	// the local account here.
	End()
}

// Mapper admits grid users to a local system by some method.
type Mapper interface {
	// Name is the Figure-1 row label.
	Name() string
	// RequiresRoot reports whether operating this method needs
	// superuser privilege (account creation, setuid).
	RequiresRoot() bool
	// DeclaredBurden is the Figure-1 administrative-burden label.
	DeclaredBurden() string
	// Login admits a principal and starts a session.
	Login(p identity.Principal) (Session, error)
	// Share asks the method to grant `to` (a grid identity) access to
	// path, on behalf of the session owner — and to no one else.
	// Methods with no mechanism for this return an error.
	Share(s Session, path string, to identity.Principal) error
	// AdminActions counts manual administrator interventions so far.
	AdminActions() int
}

// World is the host system the mappers operate on: a kernel owned by a
// service owner with a private file, plus account/home bookkeeping.
type World struct {
	K     *kernel.Kernel
	Owner string // the service owner's local account

	mu       sync.Mutex
	accounts map[string]bool
}

// NewWorld builds a host with the service owner's private data in
// place.
func NewWorld(owner string) (*World, error) {
	fs := vfs.New(kernel.RootAccount)
	k := kernel.New(fs, defaultModel())
	w := &World{K: k, Owner: owner, accounts: map[string]bool{owner: true, kernel.RootAccount: true}}
	if err := fs.MkdirAll("/home/"+owner, 0o755, owner); err != nil {
		return nil, err
	}
	if err := fs.WriteFile("/home/"+owner+"/secret", []byte("the owner's private data"), 0o600, owner); err != nil {
		return nil, err
	}
	if err := fs.MkdirAll("/tmp", 0o777, kernel.RootAccount); err != nil {
		return nil, err
	}
	if err := fs.MkdirAll("/etc", 0o755, kernel.RootAccount); err != nil {
		return nil, err
	}
	if err := fs.WriteFile("/etc/passwd", []byte(owner+":x:1000:1000::/home/"+owner+":/bin/sh\n"), 0o644, kernel.RootAccount); err != nil {
		return nil, err
	}
	return w, nil
}

// OwnerSecretPath is where the owner's private file lives.
func (w *World) OwnerSecretPath() string { return "/home/" + w.Owner + "/secret" }

// createAccount registers a local account and its home directory: the
// operation only root can perform on a real system.
func (w *World) createAccount(name string, homeMode uint32) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.accounts[name] {
		return nil
	}
	w.accounts[name] = true
	return w.K.FS().MkdirAll("/home/"+name, homeMode, name)
}

// retireAccount removes an account from the database, leaving its files
// behind owned by a dead uid (exactly the anonymous-account failure
// mode the paper describes).
func (w *World) retireAccount(name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.accounts, name)
}

// accountExists reports whether the local account is live.
func (w *World) accountExists(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.accounts[name]
}

// unixSession is a login bound to a plain local account.
type unixSession struct {
	w       *World
	p       identity.Principal
	account string
	home    string
	onEnd   func()
}

func (s *unixSession) Principal() identity.Principal { return s.p }
func (s *unixSession) Account() string               { return s.account }
func (s *unixSession) Home() string                  { return s.home }

func (s *unixSession) Run(prog kernel.Program, args ...string) kernel.ExitStatus {
	return s.w.K.Run(kernel.ProcSpec{Account: s.account, Cwd: s.home}, prog, args...)
}

func (s *unixSession) End() {
	if s.onEnd != nil {
		s.onEnd()
	}
}

// ErrNoSharing is returned by methods with no controlled-sharing
// mechanism.
var ErrNoSharing = fmt.Errorf("mapping: method cannot express controlled sharing")

// --- 1. Single account ---------------------------------------------------

// SingleMapper runs every visitor in the service owner's own account:
// no privilege required, no protection, everything shared (the personal
// GASS server configuration).
type SingleMapper struct {
	W *World
}

// Name implements Mapper.
func (m *SingleMapper) Name() string { return "single" }

// RequiresRoot implements Mapper.
func (m *SingleMapper) RequiresRoot() bool { return false }

// DeclaredBurden implements Mapper.
func (m *SingleMapper) DeclaredBurden() string { return "-" }

// AdminActions implements Mapper.
func (m *SingleMapper) AdminActions() int { return 0 }

// Login implements Mapper.
func (m *SingleMapper) Login(p identity.Principal) (Session, error) {
	return &unixSession{w: m.W, p: p, account: m.W.Owner, home: "/home/" + m.W.Owner}, nil
}

// Share implements Mapper: everyone in the account already sees
// everything, so sharing trivially succeeds.
func (m *SingleMapper) Share(_ Session, _ string, _ identity.Principal) error { return nil }

// --- 2. Untrusted account ------------------------------------------------

// UntrustedMapper runs every visitor as "nobody": the WWW/FTP model.
// Creating and using the special account requires root.
type UntrustedMapper struct {
	W     *World
	setup bool
}

// Name implements Mapper.
func (m *UntrustedMapper) Name() string { return "untrusted" }

// RequiresRoot implements Mapper.
func (m *UntrustedMapper) RequiresRoot() bool { return true }

// DeclaredBurden implements Mapper.
func (m *UntrustedMapper) DeclaredBurden() string { return "-" }

// AdminActions implements Mapper.
func (m *UntrustedMapper) AdminActions() int { return 0 }

// Login implements Mapper.
func (m *UntrustedMapper) Login(p identity.Principal) (Session, error) {
	if !m.setup {
		// One-time creation of the nobody account (root, but not a
		// per-user burden).
		if err := m.W.createAccount("nobody", 0o777); err != nil {
			return nil, err
		}
		m.setup = true
	}
	return &unixSession{w: m.W, p: p, account: "nobody", home: "/home/nobody"}, nil
}

// Share implements Mapper: one shared account — trivially shared.
func (m *UntrustedMapper) Share(_ Session, _ string, _ identity.Principal) error { return nil }

// --- 3. Private accounts (gridmap) ----------------------------------------

// PrivateMapper gives every grid user a distinct local account, mapped
// through a gridmap file maintained by the administrator — the I-WAY
// model. Every new user costs one manual root intervention.
type PrivateMapper struct {
	W       *World
	gridmap map[identity.Principal]string
	actions int
	seq     int
}

// NewPrivateMapper creates an empty gridmap.
func NewPrivateMapper(w *World) *PrivateMapper {
	return &PrivateMapper{W: w, gridmap: make(map[identity.Principal]string)}
}

// Name implements Mapper.
func (m *PrivateMapper) Name() string { return "private" }

// RequiresRoot implements Mapper.
func (m *PrivateMapper) RequiresRoot() bool { return true }

// DeclaredBurden implements Mapper.
func (m *PrivateMapper) DeclaredBurden() string { return "per user" }

// AdminActions implements Mapper.
func (m *PrivateMapper) AdminActions() int { return m.actions }

// Login implements Mapper.
func (m *PrivateMapper) Login(p identity.Principal) (Session, error) {
	account, ok := m.gridmap[p]
	if !ok {
		// The administrator must create an account and edit the
		// gridmap: one manual action per new user.
		m.actions++
		m.seq++
		account = fmt.Sprintf("user%d", m.seq)
		if err := m.W.createAccount(account, 0o700); err != nil {
			return nil, err
		}
		m.gridmap[p] = account
	}
	return &unixSession{w: m.W, p: p, account: account, home: "/home/" + account}, nil
}

// Share implements Mapper: Unix accounts give no way to grant access to
// one specific *grid identity* — the mapping to a local account is the
// administrator's private business, and mode bits can only open a file
// to everyone.
func (m *PrivateMapper) Share(_ Session, _ string, _ identity.Principal) error {
	return ErrNoSharing
}

// --- 4. Group accounts -----------------------------------------------------

// GroupMapper maps users to a shared account per collaboration, chosen
// by matching the principal against configured patterns — the Grid3
// model. Privacy and sharing become fixed properties of the grouping.
type GroupMapper struct {
	W *World
	// Groups maps an identity pattern to a group account name.
	Groups  []GroupRule
	actions int
	created map[string]bool
}

// GroupRule assigns principals matching Pattern to Account.
type GroupRule struct {
	Pattern string
	Account string
}

// NewGroupMapper creates a mapper with the given group rules.
func NewGroupMapper(w *World, rules []GroupRule) *GroupMapper {
	return &GroupMapper{W: w, Groups: rules, created: make(map[string]bool)}
}

// Name implements Mapper.
func (m *GroupMapper) Name() string { return "group" }

// RequiresRoot implements Mapper.
func (m *GroupMapper) RequiresRoot() bool { return true }

// DeclaredBurden implements Mapper.
func (m *GroupMapper) DeclaredBurden() string { return "per group" }

// AdminActions implements Mapper.
func (m *GroupMapper) AdminActions() int { return m.actions }

// Login implements Mapper.
func (m *GroupMapper) Login(p identity.Principal) (Session, error) {
	for _, rule := range m.Groups {
		if identity.Match(rule.Pattern, p) {
			if !m.created[rule.Account] {
				// One root intervention per group.
				m.actions++
				if err := m.W.createAccount(rule.Account, 0o770); err != nil {
					return nil, err
				}
				m.created[rule.Account] = true
			}
			return &unixSession{w: m.W, p: p, account: rule.Account, home: "/home/" + rule.Account}, nil
		}
	}
	return nil, fmt.Errorf("mapping: no group admits %q", p)
}

// Share implements Mapper: sharing is fixed by the grouping — within a
// group everything is already shared; across groups there is no
// mechanism.
func (m *GroupMapper) Share(s Session, _ string, to identity.Principal) error {
	for _, rule := range m.Groups {
		if identity.Match(rule.Pattern, to) {
			if rule.Account == s.Account() {
				return nil // same group: already shared
			}
			return ErrNoSharing // different group: no mechanism
		}
	}
	return ErrNoSharing
}

// --- 5. Anonymous accounts --------------------------------------------------

// AnonymousMapper creates a fresh throwaway account for every login and
// destroys it at logout — Condor on Windows NT. No admin involvement,
// but an ID has no meaning after the job completes, so there is no
// return to stored data.
type AnonymousMapper struct {
	W   *World
	seq int
}

// Name implements Mapper.
func (m *AnonymousMapper) Name() string { return "anonymous" }

// RequiresRoot implements Mapper.
func (m *AnonymousMapper) RequiresRoot() bool { return true }

// DeclaredBurden implements Mapper.
func (m *AnonymousMapper) DeclaredBurden() string { return "-" }

// AdminActions implements Mapper.
func (m *AnonymousMapper) AdminActions() int { return 0 }

// Login implements Mapper.
func (m *AnonymousMapper) Login(p identity.Principal) (Session, error) {
	m.seq++
	account := fmt.Sprintf("anon%d", m.seq)
	if err := m.W.createAccount(account, 0o700); err != nil {
		return nil, err
	}
	s := &unixSession{w: m.W, p: p, account: account, home: "/home/" + account}
	s.onEnd = func() { m.W.retireAccount(account) }
	return s, nil
}

// Share implements Mapper: the peer's transient account name is
// unknowable in advance.
func (m *AnonymousMapper) Share(_ Session, _ string, _ identity.Principal) error {
	return ErrNoSharing
}

// --- 6. Account pool ----------------------------------------------------------

// PoolMapper assigns accounts from a fixed pool (grid0..gridN) on the
// fly and returns them at logout — the Globus/Legion model. A given
// user might be grid9 today and grid33 tomorrow, so there is no return.
type PoolMapper struct {
	W       *World
	size    int
	free    []string
	actions int
	setup   bool
}

// NewPoolMapper creates a pool of the given size (one admin action to
// create the whole pool on first use).
func NewPoolMapper(w *World, size int) *PoolMapper {
	return &PoolMapper{W: w, size: size}
}

// Name implements Mapper.
func (m *PoolMapper) Name() string { return "pool" }

// RequiresRoot implements Mapper.
func (m *PoolMapper) RequiresRoot() bool { return true }

// DeclaredBurden implements Mapper.
func (m *PoolMapper) DeclaredBurden() string { return "per pool" }

// AdminActions implements Mapper.
func (m *PoolMapper) AdminActions() int { return m.actions }

// Login implements Mapper.
func (m *PoolMapper) Login(p identity.Principal) (Session, error) {
	if !m.setup {
		// The administrator creates the whole pool once.
		m.actions++
		for i := 0; i < m.size; i++ {
			name := fmt.Sprintf("grid%d", i)
			if err := m.W.createAccount(name, 0o700); err != nil {
				return nil, err
			}
			m.free = append(m.free, name)
		}
		m.setup = true
	}
	if len(m.free) == 0 {
		return nil, fmt.Errorf("mapping: account pool exhausted")
	}
	account := m.free[0]
	m.free = m.free[1:]
	s := &unixSession{w: m.W, p: p, account: account, home: "/home/" + account}
	s.onEnd = func() {
		// Returned to the *back* of the free list, so the next login by
		// the same user usually lands on a different account.
		m.free = append(m.free, account)
	}
	return s, nil
}

// Share implements Mapper: pool assignments are transient.
func (m *PoolMapper) Share(_ Session, _ string, _ identity.Principal) error {
	return ErrNoSharing
}

// --- 7. Identity box -----------------------------------------------------------

// BoxMapper admits users into identity boxes supervised by the service
// owner: no privilege, no admin actions, named protection domains
// created on the fly.
type BoxMapper struct {
	W *World
}

// Name implements Mapper.
func (m *BoxMapper) Name() string { return "identity box" }

// RequiresRoot implements Mapper.
func (m *BoxMapper) RequiresRoot() bool { return false }

// DeclaredBurden implements Mapper.
func (m *BoxMapper) DeclaredBurden() string { return "-" }

// AdminActions implements Mapper.
func (m *BoxMapper) AdminActions() int { return 0 }

type boxSession struct {
	p   identity.Principal
	box *core.Box
}

func (s *boxSession) Principal() identity.Principal { return s.p }
func (s *boxSession) Account() string               { return "" }
func (s *boxSession) Home() string                  { return s.box.Home() }
func (s *boxSession) Run(prog kernel.Program, args ...string) kernel.ExitStatus {
	return s.box.Run(prog, args...)
}
func (s *boxSession) End() {}

// Login implements Mapper.
func (m *BoxMapper) Login(p identity.Principal) (Session, error) {
	box, err := core.New(m.W.K, m.W.Owner, p, core.Options{})
	if err != nil {
		return nil, err
	}
	return &boxSession{p: p, box: box}, nil
}

// Share implements Mapper: the owner grants access by editing the ACL
// with the peer's own grid identity — exactly one principal gains
// access.
func (m *BoxMapper) Share(s Session, path string, to identity.Principal) error {
	bs, ok := s.(*boxSession)
	if !ok {
		return fmt.Errorf("mapping: not a box session")
	}
	st := bs.box.Run(func(p *kernel.Proc, _ []string) int {
		text, err := p.GetACL(vfs.Dir(path))
		if err != nil {
			return 1
		}
		if err := p.SetACL(vfs.Dir(path), text+to.String()+" rl\n"); err != nil {
			return 1
		}
		return 0
	})
	if st.Code != 0 {
		return fmt.Errorf("mapping: ACL edit failed")
	}
	return nil
}
