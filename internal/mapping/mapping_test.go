package mapping

import (
	"fmt"
	"math/rand"
	"testing"

	"identitybox/internal/identity"
	"identitybox/internal/kernel"
)

func world(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld("svcowner")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestFigure1Table is the headline reproduction: every measured row
// must match the published table.
func TestFigure1Table(t *testing.T) {
	mappers, worlds, err := AllMappers("svcowner")
	if err != nil {
		t.Fatal(err)
	}
	users := ProbeUsers(20)
	paper := PaperFigure1()
	for i, m := range mappers {
		got, err := Probe(m, worlds[i], users)
		if err != nil {
			t.Fatalf("%s: probe: %v", m.Name(), err)
		}
		want := paper[i]
		if got.Method != want.Method {
			t.Fatalf("row %d method = %q, want %q", i, got.Method, want.Method)
		}
		if got.RequiresRoot != want.RequiresRoot {
			t.Errorf("%s: requires root = %v, paper says %v", got.Method, got.RequiresRoot, want.RequiresRoot)
		}
		if got.ProtectsOwner != want.ProtectsOwner {
			t.Errorf("%s: protects owner = %v, paper says %v", got.Method, got.ProtectsOwner, want.ProtectsOwner)
		}
		if got.Privacy != want.Privacy {
			t.Errorf("%s: privacy = %v, paper says %v", got.Method, got.Privacy, want.Privacy)
		}
		if got.Sharing != want.Sharing {
			t.Errorf("%s: sharing = %v, paper says %v", got.Method, got.Sharing, want.Sharing)
		}
		if got.Return != want.Return {
			t.Errorf("%s: return = %v, paper says %v", got.Method, got.Return, want.Return)
		}
		if got.AdminBurden != want.AdminBurden {
			t.Errorf("%s: burden = %q, paper says %q", got.Method, got.AdminBurden, want.AdminBurden)
		}
	}
}

func TestAdminActionScaling(t *testing.T) {
	// Private accounts cost one admin action per user; groups one per
	// group; pools one per pool; the box and anonymous none.
	users := ProbeUsers(20)
	cases := []struct {
		make    func(w *World) Mapper
		actions int
	}{
		{func(w *World) Mapper { return NewPrivateMapper(w) }, 20},
		{func(w *World) Mapper { return NewGroupMapper(w, StandardGroups()) }, 2},
		{func(w *World) Mapper { return NewPoolMapper(w, 30) }, 1},
		{func(w *World) Mapper { return &AnonymousMapper{W: w} }, 0},
		{func(w *World) Mapper { return &BoxMapper{W: w} }, 0},
		{func(w *World) Mapper { return &SingleMapper{W: w} }, 0},
	}
	for _, c := range cases {
		w := world(t)
		m := c.make(w)
		for _, u := range users {
			s, err := m.Login(u)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			s.End()
		}
		if got := m.AdminActions(); got != c.actions {
			t.Errorf("%s: admin actions for 20 users = %d, want %d", m.Name(), got, c.actions)
		}
	}
}

func TestPrivateMapperStableMapping(t *testing.T) {
	w := world(t)
	m := NewPrivateMapper(w)
	s1, err := m.Login(probeA)
	if err != nil {
		t.Fatal(err)
	}
	acct := s1.Account()
	s1.End()
	s2, err := m.Login(probeA)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Account() != acct {
		t.Fatalf("gridmap remapped %q -> %q", acct, s2.Account())
	}
	// Second login costs no new admin action.
	if m.AdminActions() != 1 {
		t.Fatalf("admin actions = %d, want 1", m.AdminActions())
	}
}

func TestPoolExhaustionAndRecycling(t *testing.T) {
	w := world(t)
	m := NewPoolMapper(w, 2)
	s1, err := m.Login(probeA)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Login(probeB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Login(probeC); err == nil {
		t.Fatal("exhausted pool still admitted a user")
	}
	a1 := s1.Account()
	s1.End()
	s3, err := m.Login(probeC)
	if err != nil {
		t.Fatalf("freed slot not reusable: %v", err)
	}
	if s3.Account() != a1 {
		t.Fatalf("recycled account = %q, want %q", s3.Account(), a1)
	}
	s2.End()
	s3.End()
}

func TestAnonymousAccountsAreFresh(t *testing.T) {
	w := world(t)
	m := &AnonymousMapper{W: w}
	s1, _ := m.Login(probeA)
	s2, _ := m.Login(probeA)
	if s1.Account() == s2.Account() {
		t.Fatal("anonymous accounts must be fresh per login")
	}
	acct := s1.Account()
	s1.End()
	if w.accountExists(acct) {
		t.Fatal("anonymous account not retired at logout")
	}
}

func TestGroupMapperPlacement(t *testing.T) {
	w := world(t)
	m := NewGroupMapper(w, StandardGroups())
	sa, err := m.Login(probeA)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := m.Login(probeB)
	sc, _ := m.Login(probeC)
	if sa.Account() != sb.Account() {
		t.Error("same-org users should share a group account")
	}
	if sa.Account() == sc.Account() {
		t.Error("cross-org users should be in different groups")
	}
	if _, err := m.Login("kerberos:nobody@unknown.org"); err == nil {
		t.Error("user matching no group should be refused")
	}
}

func TestBoxMapperControlledSharing(t *testing.T) {
	w := world(t)
	m := &BoxMapper{W: w}
	sa, err := m.Login(probeA)
	if err != nil {
		t.Fatal(err)
	}
	path := sa.Home() + "/doc.txt"
	if err := write(sa, path, "payload"); err != nil {
		t.Fatal(err)
	}
	if err := m.Share(sa, path, probeB); err != nil {
		t.Fatal(err)
	}
	sb, _ := m.Login(probeB)
	if !canRead(sb, path, "payload") {
		t.Error("granted peer cannot read")
	}
	// Sharing is *controlled*: Carol was not granted and stays out.
	sc, _ := m.Login(probeC)
	if canRead(sc, path, "payload") {
		t.Error("ungranted peer can read: sharing is not controlled")
	}
}

func TestSingleMapperDoesNotProtectOwner(t *testing.T) {
	w := world(t)
	m := &SingleMapper{W: w}
	s, _ := m.Login(probeA)
	if !canRead(s, w.OwnerSecretPath(), "the owner's private data") {
		t.Fatal("single-account visitor should see the owner's files (that is the method's flaw)")
	}
}

func TestUntrustedMapperProtectsOwnerButNoPrivacy(t *testing.T) {
	w := world(t)
	m := &UntrustedMapper{W: w}
	sa, err := m.Login(probeA)
	if err != nil {
		t.Fatal(err)
	}
	if canRead(sa, w.OwnerSecretPath(), "the owner's private data") {
		t.Error("nobody should not read the owner's 0600 file")
	}
	if err := write(sa, sa.Home()+"/af.txt", "a's"); err != nil {
		t.Fatal(err)
	}
	sb, _ := m.Login(probeB)
	if !canRead(sb, sa.Home()+"/af.txt", "a's") {
		t.Error("shared nobody account should expose files between users")
	}
}

func TestProbeUsersDistinct(t *testing.T) {
	users := ProbeUsers(50)
	seen := map[identity.Principal]bool{}
	for _, u := range users {
		if seen[u] {
			t.Fatalf("duplicate probe user %s", u)
		}
		seen[u] = true
		if !u.Valid() {
			t.Fatalf("invalid probe user %s", u)
		}
	}
}

func TestWorldBootstrap(t *testing.T) {
	w := world(t)
	st := w.K.Run(kernel.ProcSpec{Account: "svcowner"}, func(p *kernel.Proc, _ []string) int {
		data, err := p.ReadFile(w.OwnerSecretPath())
		if err != nil || len(data) == 0 {
			return 1
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatal("owner cannot read own secret")
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("acct%d", i)
		if err := w.createAccount(name, 0o700); err != nil {
			t.Fatal(err)
		}
		if !w.accountExists(name) {
			t.Fatal("account not registered")
		}
	}
}

func TestPoolNeverDoubleAssignsProperty(t *testing.T) {
	// Under any random login/logout sequence, no two live sessions
	// share a local account.
	w := world(t)
	m := NewPoolMapper(w, 4)
	r := rand.New(rand.NewSource(5))
	var live []Session
	for step := 0; step < 500; step++ {
		if len(live) > 0 && (r.Intn(2) == 0 || len(live) == 4) {
			i := r.Intn(len(live))
			live[i].End()
			live = append(live[:i], live[i+1:]...)
			continue
		}
		s, err := m.Login(ProbeUsers(50)[r.Intn(50)])
		if err != nil {
			continue // pool exhausted
		}
		live = append(live, s)
		seen := map[string]bool{}
		for _, l := range live {
			if seen[l.Account()] {
				t.Fatalf("step %d: account %q assigned twice", step, l.Account())
			}
			seen[l.Account()] = true
		}
	}
}
