package durable

import (
	"fmt"
	"testing"

	"identitybox/internal/faultdisk"
	"identitybox/internal/vfs"
)

// faultOpts binds a faulted disk into store options.
func faultOpts(d *faultdisk.Disk) Options {
	return Options{OpenAppend: func(path string) (File, error) { return d.OpenAppend(path) }}
}

// scriptedOps is a deterministic workload; each step mutates the store's
// FS and, in parallel, a reference FS, returning an error only on the
// live side (the reference must always succeed).
func scriptedOps() []func(fs *vfs.FS) error {
	ops := []func(fs *vfs.FS) error{
		func(fs *vfs.FS) error { return fs.Mkdir("/work", 0o755, "alice") },
	}
	for i := 0; i < 10; i++ {
		i := i
		ops = append(ops,
			func(fs *vfs.FS) error {
				_, err := fs.Create(fmt.Sprintf("/work/f%d", i), 0o644, "alice")
				return err
			},
			func(fs *vfs.FS) error {
				_, err := fs.WriteAt(fmt.Sprintf("/work/f%d", i), []byte(fmt.Sprintf("payload %d", i)), 0)
				return err
			},
		)
	}
	return ops
}

// prefixDumps replays the scripted workload on a clean FS, recording the
// canonical dump after every step. Index k is the state after k ops.
func prefixDumps(t *testing.T, ops []func(fs *vfs.FS) error) []string {
	t.Helper()
	ref := vfs.New("chirp")
	dumps := []string{dumpFS(t, ref)}
	for _, op := range ops {
		if err := op(ref); err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, dumpFS(t, ref))
	}
	return dumps
}

// assertIsPrefix checks the recovered dump equals some prefix state and
// returns its index.
func assertIsPrefix(t *testing.T, got string, dumps []string) int {
	t.Helper()
	for k, d := range dumps {
		if got == d {
			return k
		}
	}
	t.Fatalf("recovered state matches no prefix of the history:\n%s", got)
	return -1
}

// TestTornWriteRecoversToPrefix: a torn sector write mid-record leaves a
// partial frame; recovery truncates it and lands exactly one op short.
func TestTornWriteRecoversToPrefix(t *testing.T) {
	ops := scriptedOps()
	dumps := prefixDumps(t, ops)
	d := faultdisk.New(3, faultdisk.Rule{AfterWrites: 9, Action: faultdisk.TornWrite})
	dir := t.TempDir()
	s := openStore(t, dir, faultOpts(d))
	applied := 0
	for _, op := range ops {
		if err := op(s.FS()); err != nil {
			t.Fatal(err) // in-memory mutations keep succeeding
		}
		s.Barrier() // one record per group: write/sync counts match op counts
		applied++
		if d.Crashed() {
			break
		}
	}
	if !d.Crashed() {
		t.Fatal("schedule never fired")
	}
	if s.Err() == nil {
		t.Fatal("degraded WAL not reported after disk crash")
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	k := assertIsPrefix(t, dumpFS(t, s2.FS()), dumps)
	// With one-record groups fsynced per op, the torn record is the
	// only possible loss.
	if k != applied-1 {
		t.Fatalf("recovered to prefix %d, want %d (only the torn record lost)", k, applied-1)
	}
	ri := s2.Recovery()
	if !ri.Torn || ri.TruncatedBytes == 0 {
		t.Fatalf("torn tail not detected: %s", ri)
	}
}

// TestDroppedFsyncLosesOnlyUnsyncedTail: a lying fsync acknowledges a
// record that power loss then destroys; recovery still lands on a clean
// earlier prefix.
func TestDroppedFsyncLosesOnlyUnsyncedTail(t *testing.T) {
	ops := scriptedOps()
	dumps := prefixDumps(t, ops)
	const dropAt = 12
	d := faultdisk.New(5, faultdisk.Rule{AfterSyncs: dropAt, Action: faultdisk.DropSync})
	dir := t.TempDir()
	s := openStore(t, dir, faultOpts(d))
	for _, op := range ops[:dropAt] { // the dropAt'th op's sync is the lie
		if err := op(s.FS()); err != nil {
			t.Fatal(err)
		}
		s.Barrier() // one record per group so sync #dropAt is op #dropAt's
	}
	d.Crash() // power loss before anything else flushes the dirty record

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	k := assertIsPrefix(t, dumpFS(t, s2.FS()), dumps)
	if k != dropAt-1 {
		t.Fatalf("recovered to prefix %d, want %d (acked-but-unsynced record lost)", k, dropAt-1)
	}
}

// TestBitFlipDetectedByChecksum: a silently corrupted record must never
// be applied; recovery truncates at it, keeping the prefix before it.
func TestBitFlipDetectedByChecksum(t *testing.T) {
	ops := scriptedOps()
	dumps := prefixDumps(t, ops)
	const flipAt = 7
	d := faultdisk.New(11, faultdisk.Rule{AfterWrites: flipAt, Action: faultdisk.BitFlip})
	dir := t.TempDir()
	s := openStore(t, dir, faultOpts(d))
	for _, op := range ops {
		if err := op(s.FS()); err != nil {
			t.Fatal(err)
		}
		s.Barrier() // one record per group so write #flipAt is op #flipAt's
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	ri := s2.Recovery()
	if !ri.Torn {
		t.Fatalf("flipped bit not detected: %s", ri)
	}
	k := assertIsPrefix(t, dumpFS(t, s2.FS()), dumps)
	if k != flipAt-1 {
		t.Fatalf("recovered to prefix %d, want %d (everything from the corrupt record on discarded)", k, flipAt-1)
	}
}

// TestShortWriteThenRecovery: a short write leaves a partial frame and a
// sticky WAL error; the synced records before it survive.
func TestShortWriteThenRecovery(t *testing.T) {
	ops := scriptedOps()
	dumps := prefixDumps(t, ops)
	const shortAt = 15
	d := faultdisk.New(13, faultdisk.Rule{AfterWrites: shortAt, Action: faultdisk.ShortWrite})
	dir := t.TempDir()
	s := openStore(t, dir, faultOpts(d))
	for _, op := range ops {
		if err := op(s.FS()); err != nil {
			t.Fatal(err)
		}
		s.Barrier() // one record per group so write #shortAt is op #shortAt's
	}
	if s.Err() == nil {
		t.Fatal("short write did not degrade the WAL")
	}
	d.Crash() // lose the half-buffered frame

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if k := assertIsPrefix(t, dumpFS(t, s2.FS()), dumps); k != shortAt-1 {
		t.Fatalf("recovered to prefix %d, want %d", k, shortAt-1)
	}
}
