package durable

import (
	"fmt"
	"math"
	"os"
	"sync"

	"identitybox/internal/vfs"
)

// Recovery over a segmented, sharded log.
//
// Within one era (one journal shard count — see segment.go), each
// shard's segment chain is an independent, LSN-monotonic stream, and
// replay runs one worker per stream. Records at or below the snapshot
// LSN are skipped, so recovery cost is proportional to the delta since
// the last snapshot, not to history length. The only inter-stream
// ordering edges are cross-shard records (rename/link across
// subtrees), which appear in both affected streams under one LSN:
// workers rendezvous there — each publishes its progress, the
// lower-shard worker applies the record once both streams have reached
// it, the other waits for the application — so every pair of dependent
// mutations replays in LSN order while independent subtrees replay
// fully in parallel.
//
// A cross record found in only one stream is a half-committed cross
// write, possible only at the very tail of both affected shards (the
// commit protocol holds both journal locks until the record is durable
// in both logs, so neither shard can hold a later mutation). It is
// applied: recovered state remains a prefix of history extended by at
// most that unacked tail record, and the log, WALTailSince and the
// recovered tree stay consistent with each other.
//
// If segments from multiple eras hold records (the shard count changed
// across a restart, before a compaction pruned the old era), per-chain
// streams from different eras interleave arbitrarily, so replay falls
// back to a fully sequential merge of every record by LSN — always
// correct, just not parallel.

// logFile is one decoded on-disk log file.
type logFile struct {
	ref        segmentRef
	recs       []Record
	size       int64
	validBytes int64 // offset just past the last valid record
	torn       bool
	maxLSN     uint64
}

func decodeLogFile(ref segmentRef) (*logFile, error) {
	data, err := os.ReadFile(ref.path)
	if err != nil {
		return nil, fmt.Errorf("durable: reading %s: %w", ref.path, err)
	}
	lf := &logFile{ref: ref, size: int64(len(data))}
	lf.recs, lf.validBytes, lf.torn = DecodeAll(data)
	for _, rec := range lf.recs {
		if rec.LSN > lf.maxLSN {
			lf.maxLSN = rec.LSN
		}
	}
	return lf, nil
}

// recoverLog scans the state directory's log files, replays everything
// past the snapshot LSN, truncates torn tails, and registers every
// pre-existing file as a sealed segment. It returns the highest LSN
// seen and, per current-era shard, the sequence number the next active
// segment should use.
func (s *Store) recoverLog() (maxLSN uint64, nextSeq []int, err error) {
	segs, err := scanSegments(s.dir)
	if err != nil {
		return 0, nil, fmt.Errorf("durable: scanning log: %w", err)
	}
	s.recovery.Segments = len(segs)
	nextSeq = make([]int, s.shards)

	// Read and decode every file concurrently: checksum verification
	// and body parsing dominate recovery, and the files are independent.
	files := make([]*logFile, len(segs))
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	for i := range segs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			files[i], errs[i] = decodeLogFile(segs[i])
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, nil, e
		}
	}

	for i, lf := range files {
		// A torn record in the final segment of a chain is the crash
		// point: truncate it away. Mid-chain, it is a degraded segment a
		// compaction already sealed (its lost records are snapshot-
		// covered): skip the garbage, keep reading the chain.
		final := i+1 == len(files) ||
			files[i+1].ref.shards != lf.ref.shards || files[i+1].ref.shard != lf.ref.shard
		if lf.torn {
			discarded := lf.size - lf.validBytes
			if final {
				s.recovery.Torn = true
				s.recovery.TruncatedBytes += discarded
				s.metrics.truncated.Add(discarded)
				s.logf("durable: torn tail in %s: truncating %d bytes at offset %d", lf.ref.path, discarded, lf.validBytes)
				if err := os.Truncate(lf.ref.path, lf.validBytes); err != nil {
					return 0, nil, fmt.Errorf("durable: truncating torn tail: %w", err)
				}
				lf.size = lf.validBytes
			} else {
				s.logf("durable: %d unreadable trailing bytes in sealed segment %s (snapshot-covered); ignoring", discarded, lf.ref.path)
			}
		}
		if lf.maxLSN > maxLSN {
			maxLSN = lf.maxLSN
		}
		s.sealed = append(s.sealed, sealedSeg{path: lf.ref.path, lastLSN: lf.maxLSN, size: lf.size})
		if lf.ref.shards == s.shards && lf.ref.shard < s.shards && lf.ref.seq >= nextSeq[lf.ref.shard] {
			nextSeq[lf.ref.shard] = lf.ref.seq + 1
		}
	}

	// Pick the replay strategy: parallel per-shard streams when every
	// record on disk belongs to one era, sequential merge otherwise.
	eraCount := 0
	mixed := false
	for _, lf := range files {
		if len(lf.recs) == 0 {
			continue
		}
		if eraCount == 0 {
			eraCount = lf.ref.shards
		} else if eraCount != lf.ref.shards {
			mixed = true
		}
	}
	switch {
	case eraCount == 0:
		// No records anywhere.
	case mixed:
		s.logf("durable: log holds segments from multiple shard-count eras; using sequential replay")
		s.replaySequential(files)
	default:
		streams := make([][]Record, eraCount)
		for _, lf := range files {
			if lf.ref.shards == eraCount && len(lf.recs) > 0 {
				streams[lf.ref.shard] = append(streams[lf.ref.shard], lf.recs...)
			}
		}
		s.replayParallel(streams)
	}
	return maxLSN, nextSeq, nil
}

// replaySequential merges every record from every file into one
// LSN-sorted sequence (collapsing cross-shard duplicates) and applies
// it in order. The always-correct fallback for mixed-era logs.
func (s *Store) replaySequential(files []*logFile) {
	var all []Record
	occ := make(map[uint64]int)
	for _, lf := range files {
		all = append(all, lf.recs...)
		for _, rec := range lf.recs {
			if rec.Flags&FlagCrossShard != 0 {
				occ[rec.LSN]++
			}
		}
	}
	half := make(map[uint64]bool)
	for lsn, n := range occ {
		if n == 1 {
			s.recovery.HalfCross++
			half[lsn] = true
		}
	}
	sortDedupeByLSN(&all)
	for _, rec := range all {
		if rec.LSN <= s.snapLSN {
			s.recovery.Skipped++
			s.metrics.skipped.Inc()
			continue
		}
		s.applyRecoveredRecord(rec, half[rec.LSN])
	}
}

// replayTally is one replay worker's private counters, summed into
// RecoveryInfo after the workers join.
type replayTally struct{ replayed, skipped, unapplied, halfCross int }

// crossCoord is the rendezvous point for cross-shard records during
// parallel replay. reached[i] is the LSN stream i is currently
// processing (MaxUint64 once done); done marks cross LSNs already
// applied. Every wait is preceded by a publish of the waiter's own
// progress, and waits are ordered by LSN, so no cycle can form.
type crossCoord struct {
	mu      sync.Mutex
	cond    *sync.Cond
	reached []uint64
	occ     map[uint64]int
	done    map[uint64]bool
}

// replayParallel runs one worker per shard stream.
func (s *Store) replayParallel(streams [][]Record) {
	n := len(streams)
	if n == 1 {
		for _, rec := range streams[0] {
			if rec.LSN <= s.snapLSN {
				s.recovery.Skipped++
				s.metrics.skipped.Inc()
				continue
			}
			s.applyRecoveredRecord(rec, false)
		}
		return
	}

	cc := &crossCoord{
		reached: make([]uint64, n),
		occ:     make(map[uint64]int),
		done:    make(map[uint64]bool),
	}
	cc.cond = sync.NewCond(&cc.mu)
	for _, stream := range streams {
		for _, rec := range stream {
			if rec.Flags&FlagCrossShard != 0 && rec.LSN > s.snapLSN {
				cc.occ[rec.LSN]++
			}
		}
	}

	tallies := make([]replayTally, n)
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := &tallies[i]
			for _, rec := range streams[i] {
				if rec.LSN <= s.snapLSN {
					t.skipped++
					continue
				}
				if rec.Flags&FlagCrossShard != 0 {
					if !s.replayCross(cc, i, n, rec, t) {
						continue
					}
				} else if rec.IsMutation() {
					if err := s.applyRecord(rec); err != nil {
						t.unapplied++
						s.logf("durable: replaying lsn %d (%s %s): %v", rec.LSN, vfs.MutOp(rec.Type), rec.Mut.Path, err)
						continue
					}
				} else {
					// Dedupe and epoch records mutate shared maps; apply
					// them under the coordinator lock.
					cc.mu.Lock()
					s.applyRecord(rec)
					cc.mu.Unlock()
				}
				t.replayed++
			}
			cc.mu.Lock()
			cc.reached[i] = math.MaxUint64
			cc.cond.Broadcast()
			cc.mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, t := range tallies {
		s.recovery.Replayed += t.replayed
		s.recovery.Skipped += t.skipped
		s.recovery.Unapplied += t.unapplied
		s.recovery.HalfCross += t.halfCross
	}
	s.metrics.replayed.Add(int64(s.recovery.Replayed))
	s.metrics.skipped.Add(int64(s.recovery.Skipped))
}

// replayCross coordinates one cross-shard record in stream i. Returns
// true if this worker applied the record (and should count it
// replayed), false if the partner stream owns or already handled it.
func (s *Store) replayCross(cc *crossCoord, i, n int, rec Record, t *replayTally) bool {
	a := vfs.ShardOf(rec.Mut.Path, n)
	b := vfs.ShardOf(rec.Mut.Path2, n)
	lo := a
	if b < lo {
		lo = b
	}
	partner := a + b - i

	cc.mu.Lock()
	cc.reached[i] = rec.LSN
	cc.cond.Broadcast()
	if cc.done[rec.LSN] {
		cc.mu.Unlock()
		return false
	}
	paired := cc.occ[rec.LSN] == 2
	if paired && i != lo {
		// The lower-shard worker applies; wait for it so this stream's
		// later records cannot overtake the cross record.
		for !cc.done[rec.LSN] {
			cc.cond.Wait()
		}
		cc.mu.Unlock()
		return false
	}
	if !paired {
		t.halfCross++
		s.logf("durable: cross-shard record lsn %d present in one shard only (half-committed tail); applying", rec.LSN)
	}
	// Applier: wait until the partner stream has caught up to this LSN,
	// so everything the cross record depends on is already applied.
	for partner != i && cc.reached[partner] < rec.LSN {
		cc.cond.Wait()
	}
	cc.mu.Unlock()

	if err := s.applyRecord(rec); err != nil {
		if paired {
			t.unapplied++
			s.logf("durable: replaying cross lsn %d (%s %s -> %s): %v", rec.LSN, vfs.MutOp(rec.Type), rec.Mut.Path, rec.Mut.Path2, err)
		} else {
			// An unpaired cross record is by construction unacked — the
			// appender holds both journal locks until both copies are
			// durable — so its prerequisites may be unacked too, lost
			// with the other shard's tail. Dropping it loses nothing a
			// client was promised; it is counted in HalfCross, not as
			// an Unapplied alarm.
			s.logf("durable: half-committed cross lsn %d (%s %s -> %s) not applicable (%v); dropped", rec.LSN, vfs.MutOp(rec.Type), rec.Mut.Path, rec.Mut.Path2, err)
		}
	}

	cc.mu.Lock()
	cc.done[rec.LSN] = true
	cc.cond.Broadcast()
	cc.mu.Unlock()
	return true
}

// applyRecoveredRecord applies one record during single-threaded
// replay, keeping the recovery tallies. halfCross marks a cross-shard
// record present in one chain only: such a record is necessarily
// unacked (see RecordMutation), so an apply failure is dropped
// without raising the Unapplied alarm.
func (s *Store) applyRecoveredRecord(rec Record, halfCross bool) {
	if err := s.applyRecord(rec); err != nil {
		if halfCross {
			s.logf("durable: half-committed cross lsn %d (%s %s -> %s) not applicable (%v); dropped", rec.LSN, vfs.MutOp(rec.Type), rec.Mut.Path, rec.Mut.Path2, err)
			return
		}
		// Should not happen for a log this store wrote: the same
		// sequence applied cleanly before the crash. Count it, keep
		// going — dropping one record must not drop the rest.
		s.recovery.Unapplied++
		s.logf("durable: replaying lsn %d (%s %s): %v", rec.LSN, vfs.MutOp(rec.Type), rec.Mut.Path, err)
		return
	}
	s.recovery.Replayed++
	s.metrics.replayed.Inc()
}

// applyRecord replays one record onto the recovering state.
func (s *Store) applyRecord(rec Record) error {
	if rec.Type == DedupeType {
		s.dedupe[rec.DedupeKey] = rec.DedupeReply
		return nil
	}
	if rec.Type == EpochType {
		if rec.Epoch > s.epoch {
			s.epoch = rec.Epoch
		}
		return nil
	}
	m := rec.Mut
	switch m.Op {
	case vfs.MutMkdir:
		return s.fs.Mkdir(m.Path, m.Mode, m.Owner)
	case vfs.MutCreate:
		_, err := s.fs.Create(m.Path, m.Mode, m.Owner)
		return err
	case vfs.MutWrite:
		_, err := s.fs.WriteAt(m.Path, m.Data, m.Off)
		return err
	case vfs.MutTruncate:
		return s.fs.Truncate(m.Path, m.Size)
	case vfs.MutUnlink:
		return s.fs.Unlink(m.Path)
	case vfs.MutRmdir:
		return s.fs.Rmdir(m.Path)
	case vfs.MutSymlink:
		return s.fs.Symlink(m.Path2, m.Path, m.Owner)
	case vfs.MutLink:
		return s.fs.Link(m.Path, m.Path2)
	case vfs.MutRename:
		return s.fs.Rename(m.Path, m.Path2)
	case vfs.MutChmod:
		return s.fs.Chmod(m.Path, m.Mode)
	case vfs.MutChown:
		return s.fs.Chown(m.Path, m.Owner, m.Group)
	default:
		return fmt.Errorf("durable: unknown mutation op %d", m.Op)
	}
}
