package durable

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
)

// shipSeq resequences committed records from a sharded store into the
// single contiguous LSN stream the replication layer ships. Each
// shard's committer emits groups in its own commit order; group LSNs
// from different shards interleave, so the sequencer splits every
// group into record frames, buffers them by LSN, and emits maximal
// contiguous runs from the cursor onward. Emission happens under the
// sequencer lock so downstream sees runs in strict LSN order.
//
// Two sharding artifacts are erased here so a follower's log stays a
// clean single-shard history:
//
//   - A cross-shard record is committed by both of its shards and
//     would arrive twice; the second copy is dropped.
//   - Its FlagCrossShard bit is cleared (checksum recomputed): on the
//     follower the record lives in one log with no partner copy, and a
//     flagged-but-unpaired record is exactly what follower recovery
//     would discard as a half-committed cross write.
//
// A gap that never fills — a degraded shard dropped the LSN — parks
// the stream; compaction covers the hole with a snapshot and calls
// skipTo to resume past it.
type shipSeq struct {
	mu   sync.Mutex
	next uint64 // next LSN to emit
	buf  map[uint64][]byte
	sink func(first, last uint64, records int, frames []byte)
}

func newShipSeq(next uint64, sink func(first, last uint64, records int, frames []byte)) *shipSeq {
	return &shipSeq{next: next, buf: make(map[uint64][]byte), sink: sink}
}

// frameLSNFlags peeks one frame's LSN and flags without a full decode.
// flagsOff is the byte offset of the flags field within frame (-1 for
// a version-1 record, which has none).
func frameLSNFlags(frame []byte) (lsn uint64, flags uint8, flagsOff int, ok bool) {
	body := frame[frameHeaderLen:]
	if len(body) < 3 {
		return 0, 0, 0, false
	}
	off := 2 // version, type
	flagsOff = -1
	if body[0] >= 2 {
		flagsOff = frameHeaderLen + off
		flags = body[off]
		off++
	}
	lsn, n := binary.Uvarint(body[off:])
	if n <= 0 {
		return 0, 0, 0, false
	}
	return lsn, flags, flagsOff, true
}

// ingest accepts one committed group's frames (any shard), buffers the
// new records and emits whatever became contiguous. The frames buffer
// is only read, never retained.
func (s *shipSeq) ingest(frames []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for off := 0; off+frameHeaderLen <= len(frames); {
		n := int(binary.LittleEndian.Uint32(frames[off : off+4]))
		end := off + frameHeaderLen + n
		if n > maxBodyLen || end > len(frames) {
			break // committer never writes torn groups; defensive only
		}
		frame := frames[off:end]
		off = end
		lsn, flags, flagsOff, ok := frameLSNFlags(frame)
		if !ok || lsn < s.next {
			continue // malformed (cannot happen) or duplicate cross copy
		}
		if _, dup := s.buf[lsn]; dup {
			continue // cross-shard partner already buffered
		}
		cp := append([]byte(nil), frame...)
		if flags&FlagCrossShard != 0 {
			cp[flagsOff] &^= FlagCrossShard
			binary.LittleEndian.PutUint32(cp[4:8], crc32.ChecksumIEEE(cp[frameHeaderLen:]))
		}
		s.buf[lsn] = cp
	}
	s.flushLocked()
}

// skipTo advances the cursor past lsn (dropping anything buffered at
// or below it) and emits what became contiguous. Compaction calls this
// after a snapshot covered every allocated LSN, unsticking a stream
// parked on a degraded shard's hole.
func (s *shipSeq) skipTo(lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for l := range s.buf {
		if l <= lsn {
			delete(s.buf, l)
		}
	}
	if s.next <= lsn {
		s.next = lsn + 1
	}
	s.flushLocked()
}

// flushLocked emits the maximal contiguous run starting at the cursor
// as one downstream group. Caller holds mu; the out-call happens under
// it so runs reach the sink in LSN order.
func (s *shipSeq) flushLocked() {
	first := s.next
	count := 0
	var out []byte
	for {
		frame, ok := s.buf[s.next]
		if !ok {
			break
		}
		delete(s.buf, s.next)
		out = append(out, frame...)
		count++
		s.next++
	}
	if count > 0 {
		s.sink(first, s.next-1, count, out)
	}
}
