package durable

import (
	"errors"
	"io"
	"time"
)

// Defaults for the group-commit pipeline. A 200µs window is roughly the
// cost of one fsync on a local SSD: waiting that long for stragglers
// can halve the fsync count without a visible latency step, and the
// committer only waits at all when the previous group showed there is
// actual concurrency (see commitGroup).
const (
	DefaultCommitWindow = 200 * time.Microsecond
	DefaultCommitBatch  = 128
)

// maxRecycledBatch caps the group buffer kept for reuse, so one huge
// write burst does not pin megabytes forever.
const maxRecycledBatch = 4 << 20

// GroupConfig tunes the group-commit pipeline started by
// WAL.StartGroupCommit.
type GroupConfig struct {
	// Window is how long the committer waits for more records to join a
	// group once load is detected. 0 disables the adaptive wait: groups
	// are whatever accumulated while the previous write+fsync ran.
	Window time.Duration
	// MaxBatch flushes a group as soon as it holds this many records,
	// regardless of Window. Defaults to DefaultCommitBatch.
	MaxBatch int
	// OnGroup, if set, observes every committed group: record count,
	// frame bytes written, and wall time from write start to durable.
	// Called outside the WAL lock.
	OnGroup func(records, bytes int, latency time.Duration)
	// OnError, if set, observes the sticky failure that degraded the
	// pipeline (reported once per degradation). Called outside the WAL
	// lock; waiters get the same error from WaitDurable.
	OnError func(err error)
	// OnTraceCommit, if set, observes every committed record whose
	// mutation carried a request-tracing ID (vfs.Mutation.Trace): the
	// trace, the record's LSN, how long it queued before the group
	// started, and the group's write+fsync latency. Called outside the
	// WAL lock, after the group is durable. When unset, Append never
	// looks at traces and the pipeline carries no per-record state.
	OnTraceCommit func(trace, lsn uint64, queued, commit time.Duration)
	// OnShip, if set, receives every committed group's raw frame bytes
	// for replication: the first and last LSN in the group, the record
	// count, and the encoded frames exactly as written to the log.
	// Called outside the WAL lock, after the group is durable, in
	// commit order. Ownership of the frames buffer transfers to the
	// hook (the committer skips buffer recycling for shipped groups),
	// so the replication layer may retain or fan it out without a copy.
	OnShip func(first, last uint64, records int, frames []byte)
}

// tracedRec remembers one queued record that carries a trace ID, so the
// committer can attribute the group's latency back to the request.
type tracedRec struct {
	trace uint64
	lsn   uint64
	enq   time.Time
}

// groupState is the committer side of a group-commit WAL. Fields are
// guarded by WAL.mu except the channels, which are owned as commented.
type groupState struct {
	window        time.Duration
	maxBatch      int
	onGroup       func(records, bytes int, latency time.Duration)
	onError       func(err error)
	onTraceCommit func(trace, lsn uint64, queued, commit time.Duration)
	onShip        func(first, last uint64, records int, frames []byte)

	queue   []byte      // encoded frames waiting for the committer
	queued  int         // records in queue
	traced  []tracedRec // queued records carrying a trace ID
	lastLSN uint64      // LSN of the last queued record
	recycle []byte      // spare buffer the committer hands back after a write

	// firstQueued is the first LSN in queue (0 when empty);
	// inflightFirst the first LSN of the batch the committer has claimed
	// but not yet made durable (0 when none). Together with WAL.lost
	// they form the shard's pending floor (see WAL.pendingFloor), which
	// caps the store's global durable horizon.
	firstQueued   uint64
	inflightFirst uint64

	durable uint64 // highest LSN on stable storage (per sync policy)
	// advanceCh is closed and replaced whenever durable advances or the
	// pipeline degrades, waking every WaitDurable parked on it.
	advanceCh chan struct{}
	lastGroup int // size of the previous group, the load signal

	errNotified bool // OnError already fired for the current degradation

	// kick (cap 1) wakes the committer when work arrives; full (cap 1)
	// cuts an in-progress batch window short when the queue fills or
	// the WAL closes. Both are signal channels: send never blocks.
	kick chan struct{}
	full chan struct{}

	stopping bool
	done     chan struct{} // closed when the committer goroutine exits
}

// StartGroupCommit switches the WAL from synchronous appends to the
// group-commit pipeline and spawns the committer goroutine. Call it
// once, before the WAL is shared between goroutines. The sync policy
// carries over at group granularity: SyncEveryN==1 fsyncs every group
// (appends are durable when WaitDurable returns), k>1 every k records,
// 0 never (WaitDurable then only confirms the write was issued).
func (w *WAL) StartGroupCommit(cfg GroupConfig) {
	if w.gc != nil {
		panic("durable: StartGroupCommit called twice")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultCommitBatch
	}
	g := &groupState{
		window:        cfg.Window,
		maxBatch:      cfg.MaxBatch,
		onGroup:       cfg.OnGroup,
		onError:       cfg.OnError,
		onTraceCommit: cfg.OnTraceCommit,
		onShip:        cfg.OnShip,
		advanceCh:     make(chan struct{}),
		kick:          make(chan struct{}, 1),
		full:          make(chan struct{}, 1),
		done:          make(chan struct{}),
	}
	w.mu.Lock()
	g.durable = w.lastLSN
	w.gc = g
	w.mu.Unlock()
	go w.commitLoop(g)
}

// wake nudges the committer. full additionally cuts short any batch
// window it is sleeping in.
func (g *groupState) wake(full bool) {
	select {
	case g.kick <- struct{}{}:
	default:
	}
	if full {
		select {
		case g.full <- struct{}{}:
		default:
		}
	}
}

// advanceLocked publishes a durability change (progress or failure) to
// every parked waiter. Caller holds WAL.mu.
func (g *groupState) advanceLocked() {
	close(g.advanceCh)
	g.advanceCh = make(chan struct{})
}

// commitLoop drains the queue group by group until Close stops it.
func (w *WAL) commitLoop(g *groupState) {
	defer close(g.done)
	for {
		<-g.kick
		for w.commitGroup(g) {
		}
		w.mu.Lock()
		stop := g.stopping && g.queued == 0
		w.mu.Unlock()
		if stop {
			return
		}
	}
}

// commitGroup claims everything queued, commits it with one write and
// at most one fsync, and advances the durable horizon. Returns false
// when the queue was empty (nothing claimed).
func (w *WAL) commitGroup(g *groupState) bool {
	w.mu.Lock()
	if w.err != nil && g.queued > 0 {
		// Degraded: the log must not grow past the failure. Fail the
		// queued records' waiters rather than stranding them; the
		// dropped LSNs pin the store's durable horizon via w.lost.
		w.noteLostLocked(g.firstQueued)
		g.queue = g.queue[:0]
		g.queued = 0
		g.traced = g.traced[:0]
		g.firstQueued = 0
		g.advanceLocked()
		w.mu.Unlock()
		return false
	}
	if g.queued == 0 {
		w.mu.Unlock()
		return false
	}

	// Adaptive window: when the previous group or the current queue
	// shows real concurrency, wait briefly for stragglers so one fsync
	// covers more of them. A lone low-rate writer (queued==1 after an
	// idle group) flushes immediately — batching it would only add
	// latency with nobody to share the fsync.
	if g.window > 0 && !g.stopping && g.queued < g.maxBatch && g.queued < g.lastGroup {
		select { // discard a wake token from before this group formed
		case <-g.full:
		default:
		}
		w.mu.Unlock()
		t := time.NewTimer(g.window)
		select {
		case <-t.C:
		case <-g.full:
			t.Stop()
		}
		w.mu.Lock()
		if g.queued == 0 || w.err != nil { // degraded or drained meanwhile
			w.mu.Unlock()
			return true
		}
	}

	// Claim the batch. The committer hands the recycled buffer back so
	// the steady state ping-pongs two buffers with zero allocation.
	batch := g.queue
	count := g.queued
	first := g.firstQueued
	last := g.lastLSN
	traced := g.traced
	if g.recycle != nil {
		g.queue = g.recycle[:0]
		g.recycle = nil
	} else {
		g.queue = nil
	}
	g.queued = 0
	g.traced = nil
	g.inflightFirst = first
	g.firstQueued = 0
	f := w.f
	onAppend, onSync := w.onAppend, w.onSync
	w.mu.Unlock()

	start := time.Now()
	n, err := f.Write(batch)
	if err == nil && n < len(batch) {
		err = io.ErrShortWrite
	}

	w.mu.Lock()
	w.size += int64(n)
	needSync := false
	if err == nil {
		w.pending += count
		needSync = w.syncEveryN > 0 && w.pending >= w.syncEveryN
	}
	if needSync {
		w.mu.Unlock()
		err = f.Sync()
		w.mu.Lock()
	}

	synced := false
	var notifyErr error
	if err != nil {
		if w.err == nil {
			w.err = err
		}
		if !g.errNotified {
			g.errNotified = true
			notifyErr = w.err
		}
		// Both the failed batch and anything queued behind it are lost.
		w.noteLostLocked(first)
		w.noteLostLocked(g.firstQueued)
		g.inflightFirst = 0
		g.queue = g.queue[:0]
		g.queued = 0
		g.traced = g.traced[:0]
		g.firstQueued = 0
		g.advanceLocked()
	} else {
		if needSync {
			w.pending = 0
			synced = true
		}
		if g.durable < last {
			g.durable = last
		}
		g.inflightFirst = 0
		g.lastGroup = count
		// A shipped batch is handed to OnShip, which takes ownership of
		// the buffer; only unshipped batches go back in the recycle slot.
		if g.onShip == nil && g.recycle == nil && cap(batch) <= maxRecycledBatch {
			g.recycle = batch[:0]
		}
		g.advanceLocked()
		w.maybeRotateLocked()
	}
	w.mu.Unlock()

	if err != nil {
		if notifyErr != nil && g.onError != nil {
			g.onError(notifyErr)
		}
		return false
	}
	if onAppend != nil {
		onAppend(count, len(batch))
	}
	if synced && onSync != nil {
		onSync()
	}
	commitLat := time.Since(start)
	if g.onShip != nil {
		// first/last bound the group's LSNs. On a single-shard store
		// they are contiguous; on a sharded store other shards' LSNs may
		// interleave, and the ship sequencer reorders per record.
		g.onShip(first, last, count, batch)
	}
	if g.onGroup != nil {
		g.onGroup(count, len(batch), commitLat)
	}
	if g.onTraceCommit != nil {
		for _, t := range traced {
			g.onTraceCommit(t.trace, t.lsn, start.Sub(t.enq), commitLat)
		}
	}
	return true
}

// WaitDurable blocks until the record with the given LSN is durable per
// the sync policy, or the pipeline has degraded. In synchronous mode it
// just reports the sticky error: Append already committed inline.
//
// The durable horizon is checked before the sticky error so a record
// that made it to disk reports success even if a later group failed.
func (w *WAL) WaitDurable(lsn uint64) error {
	w.mu.Lock()
	g := w.gc
	if g == nil {
		err := w.err
		w.mu.Unlock()
		if errors.Is(err, ErrWALClosed) {
			return nil
		}
		return err
	}
	for {
		if g.durable >= lsn {
			w.mu.Unlock()
			return nil
		}
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		ch := g.advanceCh
		w.mu.Unlock()
		<-ch
		w.mu.Lock()
	}
}

// Barrier blocks until every record appended to this shard before the
// call is durable per the sync policy (or reports the degradation
// error).
func (w *WAL) Barrier() error {
	w.mu.Lock()
	target := w.lastLSN
	w.mu.Unlock()
	return w.WaitDurable(target)
}
