// Package durable makes a Chirp server's state survive crashes. It
// pairs a checksummed, length-prefixed write-ahead log — journaling
// every VFS namespace mutation, data write, ACL edit and tokened-reply
// dedupe entry — with periodic snapshot compaction (full tree image,
// atomic rename-into-place, WAL reset past the snapshot LSN). Recovery
// loads the newest snapshot, replays the WAL after its LSN, and
// truncates any torn or corrupt tail at the last valid record, so a
// crash at any byte of the log yields a state that is an exact prefix
// of the mutation history: no partial record is ever applied, and in
// particular no ACL is ever widened by one.
//
// Replay charges zero virtual ticks: it drives the VFS directly, below
// the kernel's cost model, so a recovered server's virtual clock
// position comes from the snapshot image, not from re-running history.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"identitybox/internal/vfs"
)

// Record types. Values 1..11 coincide with vfs.MutOp; DedupeType is the
// one record kind that is not a file-system mutation. Stable on disk:
// never renumber.
const (
	// DedupeType journals a tokened request's reply so retried
	// mutations stay exactly-once across a restart.
	DedupeType uint8 = 12
	// EpochType journals a replication epoch change: written when a
	// store becomes primary (first lease grant, or promotion after the
	// old primary's lease expired). The record rides the same LSN
	// sequence as mutations, so followers learn epochs from the
	// replicated stream itself and recovery restores the fence.
	EpochType uint8 = 13
)

// recVersion is the record-format version written into every record. A
// reader rejects versions it does not understand (treated as a torn
// tail, truncating the log there), so the format can evolve. Version 2
// added a flags byte after the type; version-1 records (pre-segment
// logs) decode without one.
const (
	recVersion       = 2
	legacyRecVersion = 1
)

// Record flag bits (version 2+).
const (
	// FlagCrossShard marks a record that spans two journal shards (a
	// rename or link whose paths live in different top-level subtrees).
	// The record is appended to both shards' logs under the same LSN;
	// recovery applies it once, and treats a copy whose partner never
	// reached disk as uncommitted (see the cross-shard commit protocol
	// in DESIGN.md §15).
	FlagCrossShard uint8 = 1 << 0
)

// maxBodyLen bounds a single record body (a data write is capped at
// 4 MiB by the Chirp wire protocol; 8 MiB leaves headroom for framing
// and paths) so a corrupt length prefix cannot force a huge allocation.
const maxBodyLen = 8 << 20

// frameHeaderLen is the fixed per-record prefix: u32 body length then
// u32 CRC32 (IEEE) of the body.
const frameHeaderLen = 8

// Record is one WAL entry: either a VFS mutation or a dedupe entry.
type Record struct {
	LSN   uint64
	Type  uint8 // vfs.MutOp value, or DedupeType
	Flags uint8 // FlagCrossShard et al (version 2+)

	// Mut holds the mutation for types 1..11. Data is an owned copy.
	Mut vfs.Mutation

	// DedupeKey/DedupeReply hold the dedupe entry for DedupeType.
	DedupeKey   string
	DedupeReply []string

	// Epoch holds the new replication epoch for EpochType.
	Epoch uint64
}

// IsMutation reports whether the record is a VFS mutation.
func (r Record) IsMutation() bool { return r.Type >= 1 && r.Type <= 11 }

// ErrTorn marks a log tail that could not be decoded: a short frame, a
// checksum mismatch, an unknown version or type, or a malformed body.
// Replay treats it as the crash point and truncates the log there.
var ErrTorn = errors.New("durable: torn or corrupt record")

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes appends a length-prefixed byte slice.
func appendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// bodyPool recycles encode scratch across EncodeRecord calls so the
// framer does not allocate a fresh body buffer per record. Buffers that
// grew past maxPooledBody are dropped rather than pinned in the pool.
var bodyPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

const maxPooledBody = 1 << 20

// EncodeRecord appends the framed wire form of rec to dst and returns
// the extended slice.
func EncodeRecord(dst []byte, rec Record) []byte {
	bp := bodyPool.Get().(*[]byte)
	body := (*bp)[:0]
	body = append(body, recVersion, rec.Type, rec.Flags)
	body = binary.AppendUvarint(body, rec.LSN)
	switch {
	case rec.IsMutation():
		m := rec.Mut
		body = appendString(body, m.Path)
		body = appendString(body, m.Path2)
		body = binary.AppendUvarint(body, uint64(m.Mode))
		body = appendString(body, m.Owner)
		body = appendString(body, m.Group)
		body = binary.AppendVarint(body, m.Off)
		body = binary.AppendVarint(body, m.Size)
		body = appendBytes(body, m.Data)
	case rec.Type == DedupeType:
		body = appendString(body, rec.DedupeKey)
		body = binary.AppendUvarint(body, uint64(len(rec.DedupeReply)))
		for _, f := range rec.DedupeReply {
			body = appendString(body, f)
		}
	case rec.Type == EpochType:
		body = binary.AppendUvarint(body, rec.Epoch)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	dst = append(dst, body...)
	if cap(body) <= maxPooledBody {
		*bp = body
		bodyPool.Put(bp)
	}
	return dst
}

// bodyReader walks a record body with bounds checking; any overrun
// flips err, and every accessor returns a zero value thereafter.
type bodyReader struct {
	b   []byte
	off int
	err bool
}

func (r *bodyReader) byte() byte {
	if r.err || r.off >= len(r.b) {
		r.err = true
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *bodyReader) uvarint() uint64 {
	if r.err {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.off += n
	return v
}

func (r *bodyReader) varint() int64 {
	if r.err {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.off += n
	return v
}

func (r *bodyReader) bytes() []byte {
	n := r.uvarint()
	if r.err || n > uint64(len(r.b)-r.off) {
		r.err = true
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

func (r *bodyReader) string() string { return string(r.bytes()) }

// decodeBody parses one record body (already checksum-verified).
func decodeBody(body []byte) (Record, error) {
	r := bodyReader{b: body}
	ver := r.byte()
	typ := r.byte()
	if r.err || (ver != recVersion && ver != legacyRecVersion) {
		return Record{}, fmt.Errorf("%w: version %d", ErrTorn, ver)
	}
	rec := Record{Type: typ}
	if ver >= 2 {
		rec.Flags = r.byte()
	}
	rec.LSN = r.uvarint()
	switch {
	case rec.IsMutation():
		rec.Mut.Op = vfs.MutOp(typ)
		rec.Mut.Path = r.string()
		rec.Mut.Path2 = r.string()
		rec.Mut.Mode = uint32(r.uvarint())
		rec.Mut.Owner = r.string()
		rec.Mut.Group = r.string()
		rec.Mut.Off = r.varint()
		rec.Mut.Size = r.varint()
		rec.Mut.Data = append([]byte(nil), r.bytes()...)
	case typ == DedupeType:
		rec.DedupeKey = r.string()
		n := r.uvarint()
		if n > uint64(len(body)) { // each field takes >= 1 byte
			return Record{}, fmt.Errorf("%w: dedupe field count %d", ErrTorn, n)
		}
		rec.DedupeReply = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			rec.DedupeReply = append(rec.DedupeReply, r.string())
		}
	case typ == EpochType:
		rec.Epoch = r.uvarint()
	default:
		return Record{}, fmt.Errorf("%w: unknown type %d", ErrTorn, typ)
	}
	if r.err {
		return Record{}, fmt.Errorf("%w: truncated body", ErrTorn)
	}
	if r.off != len(body) {
		return Record{}, fmt.Errorf("%w: %d trailing body bytes", ErrTorn, len(body)-r.off)
	}
	return rec, nil
}

// DecodeRecord parses the first framed record in b. It returns the
// record and the number of bytes consumed. Any defect — short frame,
// bad checksum, bad version, malformed body — returns an error wrapping
// ErrTorn and consumes nothing; DecodeRecord never panics on arbitrary
// input, and never returns a record whose checksum did not verify.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, fmt.Errorf("%w: short frame header", ErrTorn)
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if n > maxBodyLen {
		return Record{}, 0, fmt.Errorf("%w: body length %d exceeds limit", ErrTorn, n)
	}
	if uint64(len(b)-frameHeaderLen) < uint64(n) {
		return Record{}, 0, fmt.Errorf("%w: short body", ErrTorn)
	}
	body := b[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.ChecksumIEEE(body) != sum {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrTorn)
	}
	rec, err := decodeBody(body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderLen + int(n), nil
}

// DecodeAll parses records until the log ends or turns torn. It returns
// the decoded records, the byte offset just past the last valid record
// (the truncation point for a torn log), and whether a torn tail was
// found. It never fails: a fully unreadable log is simply zero records.
func DecodeAll(b []byte) (recs []Record, validBytes int64, torn bool) {
	off := 0
	for off < len(b) {
		rec, n, err := DecodeRecord(b[off:])
		if err != nil {
			return recs, int64(off), true
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), false
}
