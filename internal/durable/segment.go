package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment naming: the WAL is a chain of bounded files per shard,
//
//	wal.c08.s03.000017.seg
//	     │    │   └── sequence number within the shard's chain
//	     │    └────── shard index
//	     └─────────── journal shard count of the era that wrote it
//
// The shard count is baked into the name because the rendezvous
// mapping from subtree to shard is a pure function of that count: all
// segments carrying the same count split records identically, so their
// per-shard chains can be replayed as independent LSN-sorted streams.
// If a restart changes -wal-shards, old-era and new-era segments
// coexist until the next compaction prunes the old era; recovery
// detects the mixed eras and falls back to a fully sequential merged
// replay, which is always correct. The legacy single file ("wal.log",
// pre-segmentation) reads as era count 1, shard 0, sequence -1 so old
// state dirs upgrade in place.

// segmentFileName names one WAL segment.
func segmentFileName(shards, shard, seq int) string {
	return fmt.Sprintf("wal.c%02d.s%02d.%06d.seg", shards, shard, seq)
}

// segmentRef locates one on-disk log file.
type segmentRef struct {
	path   string
	shards int // era's journal shard count
	shard  int
	seq    int // -1 for the legacy wal.log
}

// parseSegmentName decodes a segment file name produced by
// segmentFileName. The %02d/%06d widths are minimums (for lexical
// sorting in directory listings), so the fields parse as plain
// decimals.
func parseSegmentName(name string) (shards, shard, seq int, ok bool) {
	rest, found := strings.CutPrefix(name, "wal.c")
	if !found {
		return 0, 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, ".seg")
	if !found {
		return 0, 0, 0, false
	}
	parts := strings.Split(rest, ".")
	if len(parts) != 3 || len(parts[1]) < 2 || parts[1][0] != 's' {
		return 0, 0, 0, false
	}
	var err error
	if shards, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, 0, false
	}
	if shard, err = strconv.Atoi(parts[1][1:]); err != nil {
		return 0, 0, 0, false
	}
	if seq, err = strconv.Atoi(parts[2]); err != nil {
		return 0, 0, 0, false
	}
	if shards < 1 || shard < 0 || shard >= shards || seq < 0 {
		return 0, 0, 0, false
	}
	return shards, shard, seq, true
}

// scanSegments lists every WAL log file in dir — the legacy wal.log
// (if present) plus all segments — sorted by (era count, shard, seq),
// which within one era orders each shard's chain by ascending LSN.
func scanSegments(dir string) ([]segmentRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentRef
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if name == WALName {
			segs = append(segs, segmentRef{path: filepath.Join(dir, name), shards: 1, shard: 0, seq: -1})
			continue
		}
		if shards, shard, seq, ok := parseSegmentName(name); ok {
			segs = append(segs, segmentRef{path: filepath.Join(dir, name), shards: shards, shard: shard, seq: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		a, b := segs[i], segs[j]
		if a.shards != b.shards {
			return a.shards < b.shards
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.seq < b.seq
	})
	return segs, nil
}

// LogBytes reads and concatenates every WAL log file in a state
// directory in (era, shard, chain) order. On a single-shard store this
// is the full log in LSN order — what crash-injection tests cut apart
// byte by byte. Exported for tests; the store itself reads segments
// individually.
func LogBytes(dir string) ([]byte, error) {
	segs, err := scanSegments(dir)
	if err != nil {
		return nil, err
	}
	var all []byte
	for _, seg := range segs {
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		all = append(all, b...)
	}
	return all, nil
}

// ReadLogRecords decodes every valid record in a state directory's
// log files and returns them sorted by LSN with cross-shard duplicates
// collapsed. Torn tails are skipped, not errors. Exported for tests.
func ReadLogRecords(dir string) ([]Record, error) {
	segs, err := scanSegments(dir)
	if err != nil {
		return nil, err
	}
	var all []Record
	for _, seg := range segs {
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		recs, _, _ := DecodeAll(b)
		all = append(all, recs...)
	}
	sortDedupeByLSN(&all)
	return all, nil
}

// sortDedupeByLSN sorts records by LSN and collapses equal-LSN
// duplicates (the two copies of a cross-shard record).
func sortDedupeByLSN(recs *[]Record) {
	rs := *recs
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].LSN < rs[j].LSN })
	out := rs[:0]
	for _, r := range rs {
		if len(out) > 0 && out[len(out)-1].LSN == r.LSN {
			continue
		}
		out = append(out, r)
	}
	*recs = out
}

// TailSegmentPath reports the path of the active (highest-sequence)
// log file of shard 0 — on a single-shard store, the file a new record
// would land in. Exported for tests that corrupt or truncate the live
// tail.
func TailSegmentPath(dir string) (string, error) {
	segs, err := scanSegments(dir)
	if err != nil {
		return "", err
	}
	best := ""
	bestKey := [2]int{-1, -2}
	for _, seg := range segs {
		if seg.shard != 0 {
			continue
		}
		key := [2]int{seg.shards, seg.seq}
		if key[0] > bestKey[0] || (key[0] == bestKey[0] && key[1] > bestKey[1]) {
			best, bestKey = seg.path, key
		}
	}
	if best == "" {
		return "", os.ErrNotExist
	}
	return best, nil
}
