package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"identitybox/internal/vfs"
)

func sampleRecords() []Record {
	return []Record{
		{Type: uint8(vfs.MutMkdir), Mut: vfs.Mutation{Op: vfs.MutMkdir, Path: "/work", Mode: 0o755, Owner: "chirp"}},
		{Type: uint8(vfs.MutCreate), Mut: vfs.Mutation{Op: vfs.MutCreate, Path: "/work/f", Mode: 0o644, Owner: "chirp"}},
		{Type: uint8(vfs.MutWrite), Mut: vfs.Mutation{Op: vfs.MutWrite, Path: "/work/f", Off: 3, Data: []byte("hello wal")}},
		{Type: uint8(vfs.MutTruncate), Mut: vfs.Mutation{Op: vfs.MutTruncate, Path: "/work/f", Size: 4}},
		{Type: uint8(vfs.MutRename), Mut: vfs.Mutation{Op: vfs.MutRename, Path: "/work/f", Path2: "/work/g"}},
		{Type: uint8(vfs.MutChown), Mut: vfs.Mutation{Op: vfs.MutChown, Path: "/work/g", Owner: "alice", Group: "grid"}},
		{Type: DedupeType, DedupeKey: "unix:alice\x00tok-1", DedupeReply: []string{"ok", "0", "1.5"}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var log []byte
	recs := sampleRecords()
	for i := range recs {
		recs[i].LSN = uint64(i + 1)
		log = EncodeRecord(log, recs[i])
	}
	got, valid, torn := DecodeAll(log)
	if torn {
		t.Fatal("clean log reported torn")
	}
	if valid != int64(len(log)) {
		t.Fatalf("validBytes = %d, want %d", valid, len(log))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		want := recs[i]
		if rec.LSN != want.LSN || rec.Type != want.Type {
			t.Errorf("record %d header = (%d,%d), want (%d,%d)", i, rec.LSN, rec.Type, want.LSN, want.Type)
		}
		if rec.IsMutation() {
			if rec.Mut.Path != want.Mut.Path || rec.Mut.Path2 != want.Mut.Path2 ||
				rec.Mut.Mode != want.Mut.Mode || rec.Mut.Owner != want.Mut.Owner ||
				rec.Mut.Group != want.Mut.Group || rec.Mut.Off != want.Mut.Off ||
				rec.Mut.Size != want.Mut.Size || !bytes.Equal(rec.Mut.Data, want.Mut.Data) {
				t.Errorf("record %d = %+v, want %+v", i, rec.Mut, want.Mut)
			}
		} else {
			if rec.DedupeKey != want.DedupeKey || len(rec.DedupeReply) != len(want.DedupeReply) {
				t.Errorf("record %d dedupe = %+v, want %+v", i, rec, want)
			}
		}
	}
}

// TestTornTailTruncation cuts a valid log at every byte offset and
// checks the decoder always yields an exact record-prefix, never a
// partial or corrupt record.
func TestTornTailTruncation(t *testing.T) {
	var log []byte
	var ends []int64 // byte offset of each record's end
	recs := sampleRecords()
	for i := range recs {
		recs[i].LSN = uint64(i + 1)
		log = EncodeRecord(log, recs[i])
		ends = append(ends, int64(len(log)))
	}
	for cut := 0; cut <= len(log); cut++ {
		got, valid, torn := DecodeAll(log[:cut])
		// The decode must stop exactly at the last record boundary <= cut.
		wantRecs := 0
		var wantValid int64
		for i, e := range ends {
			if e <= int64(cut) {
				wantRecs = i + 1
				wantValid = e
			}
		}
		if len(got) != wantRecs || valid != wantValid {
			t.Fatalf("cut %d: decoded %d records to offset %d, want %d to %d",
				cut, len(got), valid, wantRecs, wantValid)
		}
		wantTorn := int64(cut) != wantValid
		if torn != wantTorn {
			t.Fatalf("cut %d: torn = %v, want %v", cut, torn, wantTorn)
		}
	}
}

// TestCorruptRecordRejected flips one byte in each record's body and
// checks the checksum catches it (truncating the log there).
func TestCorruptRecordRejected(t *testing.T) {
	rec := Record{LSN: 1, Type: uint8(vfs.MutWrite),
		Mut: vfs.Mutation{Op: vfs.MutWrite, Path: "/f", Data: []byte("payload")}}
	clean := EncodeRecord(nil, rec)
	for i := frameHeaderLen; i < len(clean); i++ {
		bad := append([]byte(nil), clean...)
		bad[i] ^= 0x40
		if _, _, err := DecodeRecord(bad); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		} else if !errors.Is(err, ErrTorn) {
			t.Fatalf("bit flip at byte %d: error %v does not wrap ErrTorn", i, err)
		}
	}
}

func TestUnknownVersionAndTypeRejected(t *testing.T) {
	body := []byte{recVersion + 1, uint8(vfs.MutMkdir), 1}
	frame := frameBody(body)
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrTorn) {
		t.Fatalf("future version accepted: %v", err)
	}
	body = []byte{recVersion, 200, 1}
	frame = frameBody(body)
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrTorn) {
		t.Fatalf("unknown type accepted: %v", err)
	}
}

// frameBody wraps a raw body with a valid length+checksum header.
func frameBody(body []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	return append(hdr[:], body...)
}

func TestOversizedLengthPrefixRejected(t *testing.T) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxBodyLen+1)
	if _, _, err := DecodeRecord(hdr[:]); !errors.Is(err, ErrTorn) {
		t.Fatalf("oversized length accepted: %v", err)
	}
}

func TestWALAppendAssignsLSNsAndSyncs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	f, err := defaultOpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWAL(f, 1, 0, 1)
	var syncs int
	w.onSync = func() { syncs++ }
	for i := 0; i < 5; i++ {
		lsn, err := w.Append(Record{Type: uint8(vfs.MutMkdir),
			Mut: vfs.Mutation{Op: vfs.MutMkdir, Path: "/d", Mode: 0o755, Owner: "o"}})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if syncs != 5 {
		t.Fatalf("syncs = %d, want 5 (policy: every record)", syncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, torn := DecodeAll(data)
	if torn || len(recs) != 5 {
		t.Fatalf("decoded %d records (torn=%v), want 5 clean", len(recs), torn)
	}
	if recs[4].LSN != 5 {
		t.Fatalf("last lsn = %d, want 5", recs[4].LSN)
	}
}

// failingFile fails writes after a threshold, to exercise sticky errors.
type failingFile struct {
	writes    int
	failAfter int
}

func (f *failingFile) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.failAfter {
		return 0, errors.New("disk gone")
	}
	return len(p), nil
}
func (f *failingFile) Sync() error  { return nil }
func (f *failingFile) Close() error { return nil }

func TestWALStickyError(t *testing.T) {
	w := NewWAL(&failingFile{failAfter: 2}, 1, 0, 1)
	mk := Record{Type: uint8(vfs.MutMkdir), Mut: vfs.Mutation{Op: vfs.MutMkdir, Path: "/d"}}
	if _, err := w.Append(mk); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(mk); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(mk); err == nil {
		t.Fatal("append past the failure succeeded")
	}
	if w.Err() == nil {
		t.Fatal("sticky error not reported")
	}
	if _, err := w.Append(mk); err == nil {
		t.Fatal("append after sticky error succeeded")
	}
}
