package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"identitybox/internal/obs"
	"identitybox/internal/vfs"
)

// dumpFS walks a file system into a canonical textual image: one line
// per path carrying type, mode, owner, group and content (or link
// target). Two file systems are state-equal iff their dumps match.
func dumpFS(t *testing.T, fs *vfs.FS) string {
	t.Helper()
	var lines []string
	var walk func(path string)
	walk = func(path string) {
		st, err := fs.Lstat(path)
		if err != nil {
			t.Fatalf("lstat %s: %v", path, err)
		}
		line := fmt.Sprintf("%s type=%d mode=%o owner=%s group=%s", path, st.Type, st.Mode, st.Owner, st.Group)
		switch {
		case st.IsDir():
			ents, err := fs.ReadDir(path)
			if err != nil {
				t.Fatalf("readdir %s: %v", path, err)
			}
			lines = append(lines, line)
			for _, e := range ents {
				walk(vfs.Join(path, e.Name))
			}
			return
		case st.Type == vfs.TypeSymlink:
			target, err := fs.Readlink(path)
			if err != nil {
				t.Fatalf("readlink %s: %v", path, err)
			}
			line += " -> " + target
		default:
			data, err := fs.ReadFile(path)
			if err != nil {
				t.Fatalf("read %s: %v", path, err)
			}
			line += fmt.Sprintf(" size=%d content=%q", st.Size, data)
		}
		lines = append(lines, line)
	}
	walk("/")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// mutate applies a representative mix of every journaled mutation kind.
func mutate(t *testing.T, fs *vfs.FS) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.Mkdir("/work", 0o755, "alice"))
	must(fs.WriteFile("/work/sim.exe", []byte("#!bin"), 0o755, "alice"))
	must(fs.WriteFile("/work/input.dat", []byte("particles=100"), 0o644, "alice"))
	must(fs.Truncate("/work/input.dat", 9))
	must(fs.Symlink("sim.exe", "/work/run", "alice"))
	must(fs.Link("/work/input.dat", "/work/input.bak"))
	must(fs.Rename("/work/input.bak", "/work/input.old"))
	must(fs.Chmod("/work/sim.exe", 0o700))
	must(fs.Chown("/work/input.dat", "bob", "grid"))
	must(fs.Mkdir("/tmp", 0o777, "alice"))
	must(fs.WriteFile("/tmp/junk", []byte("x"), 0o644, "alice"))
	must(fs.Unlink("/tmp/junk"))
	must(fs.Rmdir("/tmp"))
	h, err := fs.OpenHandle("/work/sim.exe")
	must(err)
	_, err = h.WriteAt([]byte("!!"), 1)
	must(err)
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReopenReplaysWAL: mutate, close, reopen — pure log replay (no
// snapshot) must reproduce the state byte for byte.
func TestReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	mutate(t, s.FS())
	before := dumpFS(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatalf("state diverged after replay:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	ri := s2.Recovery()
	if ri.Replayed == 0 || ri.Skipped != 0 || ri.Unapplied != 0 || ri.Torn {
		t.Fatalf("unexpected recovery: %s", ri)
	}
}

// TestCompactionThenReplay: compact mid-history; recovery must load the
// snapshot and replay only the post-snapshot records.
func TestCompactionThenReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	mutate(t, s.FS())
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() != 0 {
		t.Fatalf("wal size %d after compaction, want 0", s.WALSize())
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatalf("no snapshot published: %v", err)
	}
	// Post-compaction mutations land in the fresh log.
	if err := s.FS().WriteFile("/work/out.dat", []byte("result"), 0o644, "alice"); err != nil {
		t.Fatal(err)
	}
	before := dumpFS(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatalf("state diverged after snapshot+replay:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	ri := s2.Recovery()
	if ri.SnapshotLSN == 0 {
		t.Fatal("snapshot LSN not recovered")
	}
	// Only the records after the snapshot should have been applied
	// (WriteFile journals as create + write + truncate).
	if ri.Replayed == 0 || ri.Replayed > 3 || ri.Skipped != 0 || ri.Unapplied != 0 {
		t.Fatalf("unexpected recovery: %s", ri)
	}
}

// TestCrashBetweenSnapshotAndWALReset simulates a crash in the
// compaction window after the snapshot rename but before the log reset:
// the new snapshot coexists with the full stale log, and replay must
// skip every record the snapshot already covers (applying none twice).
func TestCrashBetweenSnapshotAndWALReset(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	mutate(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	staleLog, err := LogBytes(dir)
	if err != nil {
		t.Fatal(err)
	}

	s = openStore(t, dir, Options{})
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	before := dumpFS(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Put the pre-compaction log back: snapshot.img now covers all of it.
	if err := os.WriteFile(filepath.Join(dir, WALName), staleLog, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatalf("state diverged:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	ri := s2.Recovery()
	if ri.Skipped == 0 || ri.Replayed != 0 || ri.Unapplied != 0 {
		t.Fatalf("stale records not skipped: %s", ri)
	}
	// Link count would betray a double apply; mutate created one hard link.
	st, err := s2.FS().Stat("/work/input.dat")
	if err != nil {
		t.Fatal(err)
	}
	if st.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2 (double replay?)", st.Nlink)
	}
}

// TestLeftoverSnapshotTmpIgnored: a crash mid-compaction leaves
// snapshot.tmp; Open must discard it and recover from the log.
func TestLeftoverSnapshotTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	mutate(t, s.FS())
	before := dumpFS(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotTmp), []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatal("state diverged with leftover snapshot.tmp")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("snapshot.tmp not cleaned up")
	}
}

// TestTornTailTruncatedOnDisk: garbage appended to the log (a torn
// write) is discarded at recovery and physically truncated, so the
// next recovery is clean.
func TestTornTailTruncatedOnDisk(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	mutate(t, s.FS())
	before := dumpFS(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath, err := TailSegmentPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xfe, 0xed}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, dir, Options{})
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatal("state diverged after torn tail")
	}
	ri := s2.Recovery()
	if !ri.Torn || ri.TruncatedBytes != 4 {
		t.Fatalf("torn tail not reported: %s", ri)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3 := openStore(t, dir, Options{})
	defer s3.Close()
	if ri := s3.Recovery(); ri.Torn {
		t.Fatalf("torn tail persisted across recoveries: %s", ri)
	}
}

// TestDedupePersistence: tokened replies survive both pure replay and
// snapshot compaction.
func TestDedupePersistence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if err := s.AppendDedupe("unix:alice\x00tok-1", []string{"ok", "42"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDedupe("unix:bob\x00tok-2", []string{"err", "denied"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	got := s2.DedupeEntries()
	if len(got) != 2 || got["unix:alice\x00tok-1"][1] != "42" {
		t.Fatalf("dedupe table after replay = %v", got)
	}
	if s2.Recovery().DedupeEntries != 2 {
		t.Fatalf("recovery reports %d dedupe entries, want 2", s2.Recovery().DedupeEntries)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// After compaction the WAL is empty; entries must come from the snapshot.
	s3 := openStore(t, dir, Options{})
	defer s3.Close()
	got = s3.DedupeEntries()
	if len(got) != 2 || got["unix:bob\x00tok-2"][0] != "err" {
		t.Fatalf("dedupe table after compaction = %v", got)
	}
}

// TestMetricsWiring: the store's counters move when it journals,
// recovers and compacts.
func TestMetricsWiring(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openStore(t, dir, Options{Metrics: reg})
	mutate(t, s.FS())
	if err := s.Barrier(); err != nil { // drain the commit pipeline so counters settle
		t.Fatal(err)
	}
	if got := reg.Counter(MetricWALRecords).Value(); got == 0 {
		t.Fatal("wal record counter did not move")
	}
	if got := reg.Counter(MetricWALFsyncs).Value(); got == 0 {
		t.Fatal("fsync counter did not move (default policy is every record)")
	}
	if got := reg.Gauge(MetricWALSize).Value(); got != s.WALSize() {
		t.Fatalf("size gauge %d != wal size %d", got, s.WALSize())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricCompactions).Value(); got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	if got := reg.Gauge(MetricWALSize).Value(); got != 0 {
		t.Fatalf("size gauge %d after compaction, want 0", got)
	}
	if got := reg.Gauge(MetricSnapshotBytes).Value(); got == 0 {
		t.Fatal("snapshot size gauge did not move")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	s2 := openStore(t, dir, Options{Metrics: reg2})
	defer s2.Close()
	if got := reg2.Counter(MetricRecoveries).Value(); got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
}

// TestDegradedWALSurvivesViaCompaction: when appends start failing the
// store keeps serving (absorbing the error), reports it via Err, and a
// successful compaction restores durability.
func TestDegradedWALSurvivesViaCompaction(t *testing.T) {
	dir := t.TempDir()
	var fail atomic.Bool // read by the committer goroutine
	opts := Options{OpenAppend: func(path string) (File, error) {
		f, err := defaultOpenAppend(path)
		if err != nil {
			return nil, err
		}
		return &gateFile{f: f, fail: &fail}, nil
	}}
	s := openStore(t, dir, opts)
	if err := s.FS().Mkdir("/a", 0o755, "u"); err != nil {
		t.Fatal(err)
	}
	if err := s.Barrier(); err != nil { // /a committed before the gate drops
		t.Fatal(err)
	}
	fail.Store(true)
	// The in-memory mutation must still succeed; the append error is absorbed.
	if err := s.FS().Mkdir("/b", 0o755, "u"); err != nil {
		t.Fatal(err)
	}
	if s.Err() == nil {
		t.Fatal("degraded WAL not reported")
	}
	fail.Store(false)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatalf("compaction did not clear degradation: %v", s.Err())
	}
	before := dumpFS(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatal("state lost across degradation + compaction")
	}
	if !s2.FS().Exists("/b") {
		t.Fatal("mutation made during degradation lost despite compaction")
	}
}

// gateFile fails writes while fail is set.
type gateFile struct {
	f    File
	fail *atomic.Bool
}

func (g *gateFile) Write(p []byte) (int, error) {
	if g.fail.Load() {
		return 0, errors.New("injected write failure")
	}
	return g.f.Write(p)
}
func (g *gateFile) Sync() error  { return g.f.Sync() }
func (g *gateFile) Close() error { return g.f.Close() }
