package durable

import (
	"bytes"
	"testing"

	"identitybox/internal/vfs"
)

// FuzzWALDecode feeds arbitrary bytes to the record decoder and checks
// its two safety properties: it never panics, and any record it does
// yield re-encodes to a frame whose checksum verifies (i.e. the decoder
// never fabricates a record that would fail its own checksum).
func FuzzWALDecode(f *testing.F) {
	// Seed with valid frames, truncations and corruptions of them.
	var log []byte
	for i, rec := range []Record{
		{LSN: 1, Type: uint8(vfs.MutMkdir), Mut: vfs.Mutation{Op: vfs.MutMkdir, Path: "/d", Mode: 0o755, Owner: "o"}},
		{LSN: 2, Type: uint8(vfs.MutWrite), Mut: vfs.Mutation{Op: vfs.MutWrite, Path: "/d/f", Off: 7, Data: []byte("abc")}},
		{LSN: 3, Type: DedupeType, DedupeKey: "p\x00tok", DedupeReply: []string{"ok", "1"}},
	} {
		log = EncodeRecord(log, rec)
		f.Add(append([]byte(nil), log...))
		f.Add(append([]byte(nil), log[:len(log)-1-i]...))
	}
	flipped := append([]byte(nil), log...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, torn := DecodeAll(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("validBytes %d out of range [0,%d]", valid, len(data))
		}
		if !torn && valid != int64(len(data)) {
			t.Fatalf("clean decode consumed %d of %d bytes", valid, len(data))
		}
		// Every decoded record must survive an encode/decode round trip:
		// the decoder may only emit records that pass their checksum, so
		// re-encoding must produce a frame the decoder accepts again.
		// (Byte equality with the source is not required — varints have
		// non-minimal encodings the decoder tolerates.)
		for _, rec := range recs {
			frame := EncodeRecord(nil, rec)
			again, n, err := DecodeRecord(frame)
			if err != nil || n != len(frame) {
				t.Fatalf("re-decode of %+v failed: %v (n=%d)", rec, err, n)
			}
			if again.LSN != rec.LSN || again.Type != rec.Type ||
				again.Mut.Path != rec.Mut.Path || again.Mut.Path2 != rec.Mut.Path2 ||
				again.Mut.Off != rec.Mut.Off || again.Mut.Size != rec.Mut.Size ||
				!bytes.Equal(again.Mut.Data, rec.Mut.Data) ||
				again.DedupeKey != rec.DedupeKey || len(again.DedupeReply) != len(rec.DedupeReply) {
				t.Fatalf("round trip changed record: %+v -> %+v", rec, again)
			}
		}
	})
}
