package durable

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"time"

	"identitybox/internal/vfs"
)

// Replication errors. ErrStaleEpoch is the fencing signal: a batch (or
// subscription) from a primary whose epoch a newer lease has
// superseded. ErrReplicaGap means the follower missed groups and must
// resubscribe from its applied LSN.
var (
	ErrStaleEpoch = errors.New("durable: stale replication epoch")
	ErrNotReplica = errors.New("durable: store is not in replica mode")
	ErrReplicaGap = errors.New("durable: replication gap")
)

// Epoch reports the replication fencing term this store last saw.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// IsReplica reports whether the store is (still) a replication
// follower.
func (s *Store) IsReplica() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica
}

// AppliedLSN reports the highest LSN applied to the in-memory state: a
// follower's replication horizon, or (on a primary) the last journaled
// mutation.
func (s *Store) AppliedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replica {
		return s.lastApplied
	}
	return s.alloc.Load()
}

// SetEpochDurable advances the store's epoch, journaling an epoch
// record and waiting for it to reach stable storage. A primary calls
// this when it first wins (or re-wins) the lease; the record ships to
// followers like any other, so the whole cluster learns the term from
// the replicated stream. Epochs never regress: a stale or equal value
// is a no-op.
func (s *Store) SetEpochDurable(epoch uint64) error {
	s.mu.Lock()
	if epoch <= s.epoch {
		s.mu.Unlock()
		return nil
	}
	s.epoch = epoch
	w := s.wals[0] // epoch records ride shard 0's log
	lsn, err := w.Append(Record{Type: EpochType, Epoch: epoch})
	s.mu.Unlock()
	if err != nil {
		s.metrics.appendErrs.Inc()
		return err
	}
	return w.WaitDurable(lsn)
}

// ApplyReplicated applies one shipped commit group to a follower:
// epoch-fenced, gap-checked, written to the follower's own WAL under
// the primary's LSNs (and fsynced per the sync policy) before the
// records touch the in-memory state, so the follower's acknowledgement
// means the group would survive its own crash. Batches at or below the
// applied horizon are skipped idempotently (a resubscribe overlaps the
// live stream by design); partial overlaps apply only the new suffix.
// It returns how many records were newly applied.
func (s *Store) ApplyReplicated(epoch, first, last uint64, frames []byte) (applied int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.replica {
		return 0, ErrNotReplica
	}
	if epoch < s.epoch {
		return 0, fmt.Errorf("%w: batch epoch %d, follower epoch %d", ErrStaleEpoch, epoch, s.epoch)
	}
	if epoch > s.epoch {
		// The stream's source won a newer lease; adopt its term so an
		// older primary resurfacing after a partition is fenced even
		// before this batch's epoch record is applied.
		s.epoch = epoch
	}
	if last <= s.lastApplied {
		return 0, nil // already applied (stream overlap after resubscribe)
	}
	if first > s.lastApplied+1 {
		return 0, fmt.Errorf("%w: batch starts at lsn %d, applied horizon %d", ErrReplicaGap, first, s.lastApplied)
	}
	recs, valid, torn := DecodeAll(frames)
	if torn || int64(len(frames)) != valid {
		return 0, fmt.Errorf("%w: undecodable replicated batch", ErrTorn)
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if recs[0].LSN != first || recs[len(recs)-1].LSN != last {
		return 0, fmt.Errorf("durable: replicated batch lsns [%d,%d] disagree with header [%d,%d]",
			recs[0].LSN, recs[len(recs)-1].LSN, first, last)
	}

	// Drop the already-applied prefix of a partially overlapping batch,
	// re-encoding the suffix so the local log never holds duplicates.
	durableFrames := frames
	if first <= s.lastApplied {
		keep := recs[:0]
		for _, rec := range recs {
			if rec.LSN > s.lastApplied {
				keep = append(keep, rec)
			}
		}
		recs = keep
		durableFrames = durableFrames[:0:0]
		for _, rec := range recs {
			durableFrames = EncodeRecord(durableFrames, rec)
		}
	}
	// A follower's whole history lives in shard 0's chain, regardless
	// of its Shards option: the primary already serialized the stream,
	// and keeping it in one chain preserves its order on disk. The
	// other shards' chains stay empty until Promote.
	if err := s.wals[0].AppendFrames(durableFrames, last, len(recs)); err != nil {
		s.metrics.appendErrs.Inc()
		return 0, err
	}
	for _, rec := range recs {
		if err := s.applyRecord(rec); err != nil {
			// The primary applied this same sequence; a failure here is
			// a replica bug, not a reason to drop the rest of the group.
			s.logf("durable: applying replicated lsn %d (%s %s): %v", rec.LSN, vfs.MutOp(rec.Type), rec.Mut.Path, err)
			continue
		}
		applied++
	}
	s.lastApplied = last
	close(s.appliedCh)
	s.appliedCh = make(chan struct{})
	return applied, nil
}

// WaitApplied blocks until the follower's applied horizon reaches lsn,
// the timeout passes, or the store stops being a replica (promotion
// makes the local state authoritative, satisfying any freshness
// demand). This is the bounded-staleness read barrier: a client that
// saw the primary acknowledge LSN n can demand a follower read reflect
// it.
func (s *Store) WaitApplied(lsn uint64, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		if !s.replica || s.lastApplied >= lsn {
			s.mu.Unlock()
			return nil
		}
		ch := s.appliedCh
		applied := s.lastApplied
		s.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return fmt.Errorf("durable: applied horizon %d short of demanded lsn %d after %v", applied, lsn, timeout)
		}
	}
}

// ReplSnapshot serializes the current state for bootstrapping a
// follower that is too far behind the log: the same image Compact
// publishes, bound to the LSN and epoch it covers. Taken under
// quiesce + barrier so the image is a clean prefix of history.
func (s *Store) ReplSnapshot() (blob []byte, lsn, epoch uint64, err error) {
	err = s.fs.Quiesce(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, w := range s.wals {
			w.Barrier()
		}
		lsn = s.alloc.Load()
		epoch = s.epoch
		var img bytes.Buffer
		if err := s.fs.Save(&img); err != nil {
			return fmt.Errorf("durable: serializing tree: %w", err)
		}
		snap := snapFile{Version: snapFileVersion, LSN: lsn, Epoch: s.epoch, Dedupe: s.dedupe, FS: img.Bytes()}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
			return fmt.Errorf("durable: encoding snapshot: %w", err)
		}
		blob = buf.Bytes()
		return nil
	})
	return blob, lsn, epoch, err
}

// LoadReplicaSnapshot bootstraps a follower from a primary's
// ReplSnapshot image: the in-memory state, dedupe table, epoch and
// applied horizon are replaced wholesale, the image is persisted as
// this store's own snapshot, and the local log is reset. Only valid in
// replica mode, and only before the recovered file system has been
// shared (the *vfs.FS pointer changes); callers bootstrap first, then
// build the kernel and server on top.
func (s *Store) LoadReplicaSnapshot(blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.replica {
		return ErrNotReplica
	}
	var snap snapFile
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&snap); err != nil {
		return fmt.Errorf("durable: decoding replica snapshot: %w", err)
	}
	if snap.Version != snapFileVersion {
		return fmt.Errorf("durable: unsupported replica snapshot version %d", snap.Version)
	}
	if snap.Epoch < s.epoch {
		return fmt.Errorf("%w: snapshot epoch %d, follower epoch %d", ErrStaleEpoch, snap.Epoch, s.epoch)
	}
	fs, err := vfs.Load(bytes.NewReader(snap.FS))
	if err != nil {
		return fmt.Errorf("durable: replica snapshot image: %w", err)
	}
	if err := s.publishSnapshotLocked(blob, snap.LSN); err != nil {
		return err
	}
	// Local history before the bootstrap point is superseded: seal the
	// active segments, jump the LSN cursor to the snapshot's position,
	// and prune everything the snapshot covers.
	for _, w := range s.wals {
		if err := w.resetForCompact(); err != nil {
			s.logf("durable: sealing wal shard after replica bootstrap: %v", err)
		}
	}
	s.alloc.Store(snap.LSN)
	s.pruneLocked()
	s.fs = fs
	s.dedupe = make(map[string][]string, len(snap.Dedupe))
	for k, v := range snap.Dedupe {
		s.dedupe[k] = v
	}
	s.epoch = snap.Epoch
	s.lastApplied = snap.LSN
	close(s.appliedCh)
	s.appliedCh = make(chan struct{})
	return nil
}

// WALTailSince re-encodes every logged record past lsn, for catching a
// subscribing follower up from the primary's own log. It reads the
// whole segment set — sealed and active across every shard — merges by
// LSN (collapsing cross-shard duplicates and stripping their flag, so
// the follower's log looks single-shard) and demands the result be
// gap-free from lsn+1: a missing prefix means compaction pruned that
// history, a hole means a degraded shard lost records; either way the
// follower needs ReplSnapshot instead. Segments held back by
// Options.RetainLSN make this succeed even for LSNs older than the
// snapshot. Holding s.mu excludes every append source, and the
// barriers idle the committers, so the read sees a complete log.
func (s *Store) WALTailSince(lsn uint64) (frames []byte, first, last uint64, records int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.wals {
		w.Barrier()
	}
	segs, err := scanSegments(s.dir)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("durable: scanning log: %w", err)
	}
	var recs []Record
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // pruned between scan and read
			}
			return nil, 0, 0, 0, fmt.Errorf("durable: reading %s: %w", seg.path, err)
		}
		fileRecs, _, _ := DecodeAll(data)
		for _, rec := range fileRecs {
			if rec.LSN > lsn {
				recs = append(recs, rec)
			}
		}
	}
	sortDedupeByLSN(&recs)
	if len(recs) == 0 {
		if lsn >= s.alloc.Load() {
			return nil, 0, 0, 0, nil // follower is fully caught up
		}
		return nil, 0, 0, 0, fmt.Errorf("%w: history past lsn %d already pruned", ErrReplicaGap, lsn)
	}
	if recs[0].LSN != lsn+1 {
		return nil, 0, 0, 0, fmt.Errorf("%w: tail starts at lsn %d, follower needs %d", ErrReplicaGap, recs[0].LSN, lsn+1)
	}
	for i, rec := range recs {
		if rec.LSN != recs[0].LSN+uint64(i) {
			return nil, 0, 0, 0, fmt.Errorf("%w: hole before lsn %d (degraded shard)", ErrReplicaGap, rec.LSN)
		}
		rec.Flags &^= FlagCrossShard
		frames = EncodeRecord(frames, rec)
	}
	return frames, recs[0].LSN, recs[len(recs)-1].LSN, len(recs), nil
}

// Promote turns a follower into a primary under a new epoch: the
// group-commit pipeline starts (appends resume at the applied horizon
// plus one — the LSN sequence continues unbroken from the old
// primary's history), the epoch record is journaled and made durable,
// and the file system is journaled from here on. The caller flips its
// serving role only after Promote returns, so no write can land before
// the fence is on disk.
func (s *Store) Promote(epoch uint64) error {
	s.mu.Lock()
	if !s.replica {
		s.mu.Unlock()
		return ErrNotReplica
	}
	if epoch <= s.epoch {
		s.mu.Unlock()
		return fmt.Errorf("%w: promotion epoch %d not past follower epoch %d", ErrStaleEpoch, epoch, s.epoch)
	}
	s.replica = false
	if !s.opts.DisableGroupCommit {
		cfg := s.gcCfg
		cfg.OnShip = s.wireShip(cfg.OnShip, s.alloc.Load()+1)
		for _, w := range s.wals {
			w.StartGroupCommit(cfg)
		}
	}
	// Promotion satisfies any parked freshness demand: the local state
	// is authoritative now.
	close(s.appliedCh)
	s.appliedCh = make(chan struct{})
	s.mu.Unlock()
	if err := s.SetEpochDurable(epoch); err != nil {
		return err
	}
	s.fs.SetJournalSharded(s, s.shards)
	return nil
}
