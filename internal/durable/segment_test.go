package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"identitybox/internal/faultdisk"
	"identitybox/internal/obs"
	"identitybox/internal/vfs"
)

// TestParseSegmentName: the era-tagged segment naming round-trips and
// rejects everything else in a state directory.
func TestParseSegmentName(t *testing.T) {
	for _, tc := range []struct{ shards, shard, seq int }{
		{1, 0, 0}, {8, 7, 42}, {16, 3, 123456}, {100, 99, 7},
	} {
		name := segmentFileName(tc.shards, tc.shard, tc.seq)
		shards, shard, seq, ok := parseSegmentName(name)
		if !ok || shards != tc.shards || shard != tc.shard || seq != tc.seq {
			t.Fatalf("parse(%q) = %d/%d/%d ok=%v, want %v", name, shards, shard, seq, ok, tc)
		}
	}
	for _, bad := range []string{
		WALName, SnapshotName, "wal.c01.s00.seg", "wal.c00.s00.000000.seg",
		"wal.c02.s02.000000.seg", "wal.c01.s00.000000.tmp", "wal.cxx.s00.000000.seg",
		"wal.c01.s-1.000000.seg", "wal.c01.s00.00000x.seg",
	} {
		if _, _, _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parse(%q) accepted", bad)
		}
	}
}

// TestSegmentRotationAndChainRecovery: a tiny rotation threshold forces
// the log into many segments; recovery must replay the whole chain back
// into the identical state.
func TestSegmentRotationAndChainRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentBytes: 512})
	if err := s.FS().Mkdir("/d", 0o755, "alice"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		path := fmt.Sprintf("/d/f%d", i)
		if err := s.FS().WriteFile(path, []byte(strings.Repeat("x", 64)), 0o644, "alice"); err != nil {
			t.Fatal(err)
		}
		// Ack each op, as a server would: the rotation bound is enforced
		// per committed group, so an unacked burst lands as one group.
		if err := s.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Segments(); got < 3 {
		t.Fatalf("only %d segments after %d writes at a 512-byte limit", got, 64)
	}
	before := dumpFS(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatal("state diverged after multi-segment replay")
	}
	ri := s2.Recovery()
	if ri.Segments < 3 || ri.Unapplied != 0 || ri.Torn {
		t.Fatalf("unexpected recovery: %s", ri)
	}
}

// TestCompactionPrunesSegments: after a compaction every sealed segment
// is covered by the snapshot and must leave the disk, with the gauges
// following.
func TestCompactionPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openStore(t, dir, Options{SegmentBytes: 512, Metrics: reg})
	mutate(t, s.FS())
	for i := 0; i < 32; i++ {
		if err := s.FS().WriteFile(fmt.Sprintf("/work/p%d", i), []byte(strings.Repeat("y", 64)), 0o644, "alice"); err != nil {
			t.Fatal(err)
		}
		if err := s.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	sealedBefore := s.Segments() - 1 // minus the active segment
	if sealedBefore < 2 {
		t.Fatalf("want several sealed segments before compaction, have %d", sealedBefore)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Segments(); got != 1 {
		t.Fatalf("%d segments survive compaction, want 1 (the active)", got)
	}
	if got := s.WALSize(); got != 0 {
		t.Fatalf("wal size %d after compaction, want 0", got)
	}
	if got := reg.Counter(MetricSegsPruned).Value(); got < int64(sealedBefore) {
		t.Fatalf("pruned counter %d, want at least %d", got, sealedBefore)
	}
	if got := reg.Gauge(MetricWALSegments).Value(); got != 1 {
		t.Fatalf("segments gauge %d, want 1", got)
	}
	if got := reg.Gauge(MetricWALLiveBytes).Value(); got != 0 {
		t.Fatalf("live-bytes gauge %d, want 0", got)
	}
	// On disk: exactly one (fresh, empty) segment plus the snapshot.
	var segFiles []string
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, _, _, ok := parseSegmentName(e.Name()); ok || e.Name() == WALName {
			segFiles = append(segFiles, e.Name())
		}
	}
	if len(segFiles) != 1 {
		t.Fatalf("log files on disk after compaction: %v", segFiles)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicationHoldsSegments is the WAL disk-leak fix from the other
// side: a lagging subscriber's acked horizon (RetainLSN) must hold
// sealed segments on disk past a compaction, so the follower can be
// served a log tail instead of a full snapshot — and once the
// subscriber catches up, the next compaction reclaims the disk.
func TestReplicationHoldsSegments(t *testing.T) {
	dir := t.TempDir()
	var retain atomic.Uint64
	retain.Store(3) // a follower stuck at LSN 3
	s := openStore(t, dir, Options{
		SegmentBytes: 256,
		RetainLSN:    retain.Load,
	})
	if err := s.FS().Mkdir("/d", 0o755, "alice"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if err := s.FS().WriteFile(fmt.Sprintf("/d/f%d", i), []byte(strings.Repeat("z", 48)), 0o644, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Segments(); got < 2 {
		t.Fatalf("segments past the subscriber's ack were pruned: %d files left", got)
	}
	if s.WALSize() == 0 {
		t.Fatal("all log bytes pruned despite a lagging subscriber")
	}

	// The held segments must still serve the follower's catch-up tail:
	// contiguous records from LSN 4 on, even though the snapshot is far
	// ahead of them.
	_, first, last, records, err := s.WALTailSince(3)
	if err != nil {
		t.Fatalf("tail for the lagging subscriber: %v", err)
	}
	if first != 4 || records == 0 || last < s.Recovery().SnapshotLSN {
		t.Fatalf("tail = [%d..%d] %d records", first, last, records)
	}

	// Subscriber catches up: the next compaction reclaims everything.
	retain.Store(last)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Segments(); got != 1 {
		t.Fatalf("%d segments after the subscriber caught up, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryReplaysOnlyDelta: recovery work must be proportional to
// the mutations since the last snapshot, not to history length — the
// pre-snapshot segments are pruned, and nothing is skipped record by
// record.
func TestRecoveryReplaysOnlyDelta(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentBytes: 512})
	for i := 0; i < 200; i++ {
		if err := s.FS().Mkdir(fmt.Sprintf("/pre%d", i), 0o755, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	const delta = 7
	for i := 0; i < delta; i++ {
		if err := s.FS().Mkdir(fmt.Sprintf("/post%d", i), 0o755, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	before := dumpFS(t, s.FS())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatal("state diverged")
	}
	ri := s2.Recovery()
	if ri.Replayed != delta {
		t.Fatalf("replayed %d records, want exactly the %d-record delta (%s)", ri.Replayed, delta, ri)
	}
	if ri.Skipped != 0 {
		t.Fatalf("recovery re-read %d pre-snapshot records; they should be pruned (%s)", ri.Skipped, ri)
	}
}

// crossPair finds two top-level names owned by different shards at the
// given shard count.
func crossPair(t *testing.T, shards int) (a, b string) {
	t.Helper()
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			a, b = fmt.Sprintf("/s%d", i), fmt.Sprintf("/s%d", j)
			if vfs.ShardOf(a, shards) != vfs.ShardOf(b, shards) {
				return a, b
			}
		}
	}
	t.Fatal("no cross-shard pair found")
	return "", ""
}

// TestShardedStoreRecoverAndMatch: a sharded store's parallel recovery
// — including cross-shard renames and links rendezvousing between
// shard streams — rebuilds the exact live state; reopening at a
// different shard count exercises the mixed-era sequential fallback.
func TestShardedStoreRecoverAndMatch(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	s := openStore(t, dir, Options{Shards: shards, SegmentBytes: 512})
	a, b := crossPair(t, shards)
	fs := s.FS()
	var wg sync.WaitGroup
	for g := 0; g < shards*2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			root := fmt.Sprintf("/t%d", g)
			if err := fs.Mkdir(root, 0o755, "alice"); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				if err := fs.WriteFile(fmt.Sprintf("%s/f%d", root, i), []byte(fmt.Sprintf("g%d i%d", g, i)), 0o644, "alice"); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.Mkdir(a, 0o755, "alice"))
	must(fs.Mkdir(b, 0o755, "alice"))
	must(fs.WriteFile(a+"/x", []byte("cross"), 0o644, "alice"))
	must(fs.Rename(a+"/x", b+"/x"))    // cross-shard rename
	must(fs.Link(b+"/x", a+"/x.link")) // cross-shard link
	must(fs.WriteFile(b+"/after", []byte("post-cross"), 0o644, "alice"))
	before := dumpFS(t, fs)
	must(s.Close())

	s2 := openStore(t, dir, Options{Shards: shards, SegmentBytes: 512})
	if got := dumpFS(t, s2.FS()); got != before {
		t.Fatal("parallel sharded replay diverged from live state")
	}
	ri := s2.Recovery()
	if ri.Unapplied != 0 || ri.HalfCross != 0 || ri.Torn {
		t.Fatalf("unexpected recovery: %s", ri)
	}
	st, err := s2.FS().Stat(b + "/x")
	must(err)
	if st.Nlink != 2 {
		t.Fatalf("cross-shard link replayed %d times (nlink %d)", st.Nlink-1, st.Nlink)
	}
	must(s2.FS().Mkdir("/era2", 0o755, "alice"))
	must(s2.Close())

	// Reopen at a different shard count: era-4 and era-2 segments now
	// coexist, forcing the sequential merged replay.
	s3 := openStore(t, dir, Options{Shards: 2})
	defer s3.Close()
	if !s3.FS().Exists("/era2") || !s3.FS().Exists(b+"/x") {
		t.Fatal("mixed-era sequential replay lost state")
	}
	if ri := s3.Recovery(); ri.Unapplied != 0 {
		t.Fatalf("mixed-era recovery: %s", ri)
	}
}

// TestHalfCommittedCrossRecordApplied: a crash after a cross-shard
// record reached one shard's log but not the other leaves a
// half-committed record at the tail. Recovery must apply it — the
// recovered state is history plus at most that unacked tail — and
// report it.
func TestHalfCommittedCrossRecordApplied(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	a, b := crossPair(t, shards)
	lo := vfs.ShardOf(a, shards)
	if vfs.ShardOf(b, shards) < lo {
		lo = vfs.ShardOf(b, shards)
	}

	// Hand-craft the two shard logs: three complete records, then a
	// cross-shard rename present only in the lower shard's chain.
	recs := []Record{
		{LSN: 1, Type: uint8(vfs.MutMkdir), Mut: vfs.Mutation{Op: vfs.MutMkdir, Path: a, Mode: 0o755, Owner: "alice"}},
		{LSN: 2, Type: uint8(vfs.MutMkdir), Mut: vfs.Mutation{Op: vfs.MutMkdir, Path: b, Mode: 0o755, Owner: "alice"}},
		{LSN: 3, Type: uint8(vfs.MutCreate), Mut: vfs.Mutation{Op: vfs.MutCreate, Path: a + "/x", Mode: 0o644, Owner: "alice"}},
		{LSN: 4, Flags: FlagCrossShard, Type: uint8(vfs.MutRename), Mut: vfs.Mutation{Op: vfs.MutRename, Path: a + "/x", Path2: b + "/x"}},
	}
	logs := make([][]byte, shards)
	for _, rec := range recs {
		if rec.Flags&FlagCrossShard != 0 {
			logs[lo] = EncodeRecord(logs[lo], rec) // the partner's copy is lost
			continue
		}
		sh := vfs.ShardOf(rec.Mut.Path, shards)
		logs[sh] = EncodeRecord(logs[sh], rec)
	}
	for sh, data := range logs {
		if err := os.WriteFile(filepath.Join(dir, segmentFileName(shards, sh, 0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := openStore(t, dir, Options{Shards: shards, Owner: "alice"})
	defer s.Close()
	ri := s.Recovery()
	if ri.HalfCross != 1 {
		t.Fatalf("half-committed cross record not detected: %s", ri)
	}
	if ri.Unapplied != 0 {
		t.Fatalf("recovery: %s", ri)
	}
	if !s.FS().Exists(b+"/x") || s.FS().Exists(a+"/x") {
		t.Fatal("half-committed cross rename not applied")
	}
	if lsn := s.alloc.Load(); lsn != 4 {
		t.Fatalf("allocator resumed at %d, want 4", lsn)
	}
}

// TestLegacyWALUpgraded: a pre-segmentation state directory (a single
// wal.log) recovers unchanged, new appends land in era-tagged segments,
// and the first compaction prunes the legacy file away.
func TestLegacyWALUpgraded(t *testing.T) {
	dir := t.TempDir()
	var legacy []byte
	legacy = EncodeRecord(legacy, Record{LSN: 1, Type: uint8(vfs.MutMkdir), Mut: vfs.Mutation{Op: vfs.MutMkdir, Path: "/old", Mode: 0o755, Owner: "alice"}})
	legacy = EncodeRecord(legacy, Record{LSN: 2, Type: uint8(vfs.MutCreate), Mut: vfs.Mutation{Op: vfs.MutCreate, Path: "/old/f", Mode: 0o644, Owner: "alice"}})
	if err := os.WriteFile(filepath.Join(dir, WALName), legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	s := openStore(t, dir, Options{Shards: 4, Owner: "alice"})
	defer s.Close()
	if !s.FS().Exists("/old/f") {
		t.Fatal("legacy wal.log not replayed")
	}
	if err := s.FS().Mkdir("/new", 0o755, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, WALName)); !os.IsNotExist(err) {
		t.Fatal("legacy wal.log survived compaction")
	}
}

// TestShipSeqResequences: the replication resequencer must reorder
// shard-interleaved groups into one contiguous LSN stream, drop
// cross-shard duplicates, and strip the cross flag from shipped frames
// (followers replay a linear history).
func TestShipSeqResequences(t *testing.T) {
	frame := func(lsn uint64, flags uint8) []byte {
		return EncodeRecord(nil, Record{LSN: lsn, Flags: flags, Type: DedupeType, DedupeKey: fmt.Sprintf("k%d", lsn)})
	}
	var mu sync.Mutex
	var got []Record
	var calls int
	seq := newShipSeq(1, func(first, last uint64, records int, frames []byte) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		recs, _, torn := DecodeAll(frames)
		if torn {
			t.Error("resequenced stream torn")
		}
		if int(last-first+1) != records || len(recs) != records {
			t.Errorf("batch [%d..%d] carries %d records, decoded %d", first, last, records, len(recs))
		}
		got = append(got, recs...)
	})

	seq.ingest(frame(2, 0))                         // buffered: waiting on 1
	seq.ingest(frame(4, FlagCrossShard))            // shard A's copy
	seq.ingest(append(frame(1, 0), frame(3, 0)...)) // releases 1..4
	seq.ingest(frame(4, FlagCrossShard))            // shard B's duplicate: dropped
	seq.ingest(frame(5, 0))

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("shipped %d records, want 5", len(got))
	}
	for i, rec := range got {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("shipped record %d has lsn %d: stream not resequenced", i, rec.LSN)
		}
		if rec.Flags&FlagCrossShard != 0 {
			t.Fatalf("cross-shard flag leaked into the shipped stream at lsn %d", rec.LSN)
		}
	}
	if calls >= 5 {
		t.Fatalf("%d sink calls for 5 records: no batching happened", calls)
	}
}

// TestShardedAckedSurvivesCrashAcrossSegments: the sharded pipeline
// under a disk that dies mid-stream, with segments small enough that
// the crash can land around rotation points. Writers on disjoint
// subtrees ack each op with BarrierPath; a cross-shard renamer acks
// with the full Barrier. Whatever was acked must survive recovery.
func TestShardedAckedSurvivesCrashAcrossSegments(t *testing.T) {
	for crashAt := 2; crashAt <= 26; crashAt += 4 {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crash-write-%d", crashAt), func(t *testing.T) {
			d := faultdisk.New(int64(7000+crashAt), faultdisk.Rule{AfterWrites: crashAt, Action: faultdisk.Crash})
			dir := t.TempDir()
			opts := faultOpts(d)
			opts.Shards = 4
			opts.SegmentBytes = 256
			s := openStore(t, dir, opts)

			const writers = 4
			var mu sync.Mutex
			acked := map[string]string{}
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					root := fmt.Sprintf("/w%d", g)
					if err := s.FS().Mkdir(root, 0o755, "alice"); err != nil {
						t.Error(err)
						return
					}
					if err := s.BarrierPath(root); err != nil {
						return
					}
					for i := 0; i < 16; i++ {
						path := fmt.Sprintf("%s/f%d", root, i)
						content := fmt.Sprintf("payload %d/%d %s", g, i, strings.Repeat("q", 40))
						if _, err := s.FS().Create(path, 0o644, "alice"); err != nil {
							t.Error(err)
							return
						}
						if _, err := s.FS().WriteAt(path, []byte(content), 0); err != nil {
							t.Error(err)
							return
						}
						if err := s.BarrierPath(path); err != nil {
							return // crash: never acked
						}
						mu.Lock()
						acked[path] = content
						mu.Unlock()
					}
				}(g)
			}
			// One goroutine stirs in cross-shard renames, acked only by
			// the full barrier (both shards durable).
			wg.Add(1)
			go func() {
				defer wg.Done()
				a, b := crossPair(t, 4)
				if err := s.FS().Mkdir(a, 0o755, "alice"); err != nil {
					t.Error(err)
					return
				}
				if err := s.FS().Mkdir(b, 0o755, "alice"); err != nil {
					t.Error(err)
					return
				}
				if err := s.Barrier(); err != nil {
					return
				}
				for i := 0; i < 8; i++ {
					src := fmt.Sprintf("%s/x%d", a, i)
					dst := fmt.Sprintf("%s/x%d", b, i)
					content := fmt.Sprintf("cross %d", i)
					if _, err := s.FS().Create(src, 0o644, "alice"); err != nil {
						t.Error(err)
						return
					}
					if _, err := s.FS().WriteAt(src, []byte(content), 0); err != nil {
						t.Error(err)
						return
					}
					if err := s.FS().Rename(src, dst); err != nil {
						t.Error(err)
						return
					}
					if err := s.Barrier(); err != nil {
						return
					}
					mu.Lock()
					acked[dst] = content
					mu.Unlock()
				}
			}()
			wg.Wait()
			if !d.Crashed() {
				t.Fatal("crash rule never fired")
			}
			s.Close()

			s2 := openStore(t, dir, Options{Shards: 4})
			defer s2.Close()
			ri := s2.Recovery()
			if ri.Unapplied != 0 {
				t.Fatalf("replay failed for %d records: %s", ri.Unapplied, ri)
			}
			for path, content := range acked {
				got, err := s2.FS().ReadFile(path)
				if err != nil {
					t.Fatalf("acked op lost: %s: %v (%s)", path, err, ri)
				}
				if string(got) != content {
					t.Fatalf("acked op corrupted: %s = %q, want %q", path, got, content)
				}
			}
		})
	}
}
