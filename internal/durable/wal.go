package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// File is the slice of an append-only log file the WAL writer needs.
// *os.File satisfies it; faultdisk wraps one to inject storage faults.
// In group-commit mode the committer goroutine may issue a Write while
// another goroutine issues a Sync, so implementations must tolerate
// concurrent calls (*os.File and faultdisk.File both do).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// WAL appends framed records to a log. It is safe for concurrent use
// and runs in one of two modes:
//
//   - Synchronous (the default): Append frames, writes and syncs the
//     record inline, under the WAL lock. Durable when Append returns.
//   - Group commit (after StartGroupCommit): Append encodes the record
//     into an in-memory queue under a short lock and returns; a
//     dedicated committer goroutine coalesces queued frames into one
//     write + one fsync per group. Callers that need durability park
//     on WaitDurable or Barrier.
//
// A WAL is one shard of a store's commit pipeline: records draw their
// LSNs from a shared atomic allocator (so the total order spans
// shards) but queue, commit and fsync independently per shard. With a
// rotator attached the log is a chain of bounded segment files,
// rotated once the active segment reaches the configured size; without
// one (NewWAL) it is a single file, the pre-segment behavior tests
// still exercise.
//
// Either way the first write or sync error is sticky: the WAL stops
// accepting appends and reports the error from then on, because a log
// with a hole in it must not keep growing — recovery would stop at the
// hole and silently drop everything after it.
type WAL struct {
	mu sync.Mutex
	f  File
	// alloc is the global LSN allocator (holds the last allocated LSN),
	// shared by every shard of a store; Add(1) under mu keeps each
	// shard's queue LSN-monotonic while the union stays a total order.
	alloc   *atomic.Uint64
	lastLSN uint64 // last LSN appended to THIS shard's log
	size    int64  // active segment length in bytes
	pending int    // records written since the last sync
	// syncEveryN: 1 syncs after every record (or, in group mode, every
	// group — the only settings with no loss window), k>1 syncs every k
	// records, 0 never syncs (the OS decides when bytes reach the
	// platter).
	syncEveryN int
	err        error
	// lost is the lowest LSN this shard accepted but then dropped to a
	// degradation (failed write, dropped queue); 0 when none. It pins
	// the store's global durable horizon below the hole until
	// compaction covers it.
	lost uint64

	// scratch is the synchronous-mode frame encode buffer, reused
	// across appends under mu so the framer does not allocate per
	// record.
	scratch []byte
	// lastFrameLen/lastSynced carry writeSyncLocked's results (frame
	// bytes written; whether it fsynced) to the callers that emit the
	// observer hooks after unlocking. Guarded by mu.
	lastFrameLen int
	lastSynced   bool

	// observers, optional. Emitted after mu is released so a slow sink
	// cannot extend the commit critical section.
	onAppend func(records, bytes int)
	onSync   func()

	rot *rotator    // nil: single-file WAL, never rotates
	gc  *groupState // non-nil once StartGroupCommit has been called
}

// rotator carries a shard WAL's segment-chain state. Guarded by WAL.mu.
type rotator struct {
	dir    string
	shards int // journal shard count stamped into segment names
	shard  int
	seq    int   // sequence number of the active segment
	limit  int64 // rotate once the active segment reaches this size
	open   func(path string) (File, error)
	// onSeal observes every sealed segment (rotated-away active), with
	// the path, the highest LSN it can contain and its size. Called
	// with WAL.mu held; must not call back into the WAL.
	onSeal func(path string, lastLSN uint64, size int64)
}

// NewWAL wraps an open log file positioned at its end, as a
// single-file, self-allocating WAL (its own LSN counter, no segment
// rotation). nextLSN is the LSN the next appended record receives;
// size is the file's current length (for the size gauge).
func NewWAL(f File, nextLSN uint64, size int64, syncEveryN int) *WAL {
	alloc := new(atomic.Uint64)
	alloc.Store(nextLSN - 1)
	return &WAL{f: f, alloc: alloc, lastLSN: nextLSN - 1, size: size, syncEveryN: syncEveryN}
}

// newShardWAL wraps the active segment file of one store shard,
// drawing LSNs from the store's shared allocator and rotating through
// rot's segment chain.
func newShardWAL(f File, alloc *atomic.Uint64, syncEveryN int, rot *rotator) *WAL {
	return &WAL{f: f, alloc: alloc, lastLSN: alloc.Load(), syncEveryN: syncEveryN, rot: rot}
}

// ErrWALClosed is reported by appends after Close.
var ErrWALClosed = errors.New("durable: wal closed")

// Append frames rec (assigning it the next LSN from the shared
// allocator) and commits it per the WAL's mode: written and synced
// inline in synchronous mode, queued for the committer in group-commit
// mode. It returns the assigned LSN.
func (w *WAL) Append(rec Record) (uint64, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	rec.LSN = w.alloc.Add(1)
	w.lastLSN = rec.LSN
	if g := w.gc; g != nil {
		w.enqueueLocked(g, rec)
		full := g.queued >= g.maxBatch || g.queued >= g.lastGroup
		w.mu.Unlock()
		g.wake(full)
		return rec.LSN, nil
	}

	// Synchronous mode: frame, write and sync inline.
	if err := w.writeSyncLocked(rec); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	nb := w.lastFrameLen
	synced := w.lastSynced
	onAppend, onSync := w.onAppend, w.onSync
	w.maybeRotateLocked()
	w.mu.Unlock()
	if onAppend != nil {
		onAppend(1, nb)
	}
	if synced && onSync != nil {
		onSync()
	}
	return rec.LSN, nil
}

// enqueueLocked queues one record for the committer. Caller holds mu.
func (w *WAL) enqueueLocked(g *groupState, rec Record) {
	if g.queued == 0 {
		g.firstQueued = rec.LSN
	}
	g.queue = EncodeRecord(g.queue, rec)
	g.queued++
	g.lastLSN = rec.LSN
	if g.onTraceCommit != nil && rec.Mut.Trace != 0 {
		g.traced = append(g.traced, tracedRec{trace: rec.Mut.Trace, lsn: rec.LSN, enq: time.Now()})
	}
}

// writeSyncLocked frames, writes and (per policy) syncs one record
// inline. On failure the sticky error is set and rec.LSN recorded as
// lost. Caller holds mu; results land in lastFrameLen/lastSynced.
func (w *WAL) writeSyncLocked(rec Record) error {
	w.scratch = EncodeRecord(w.scratch[:0], rec)
	frame := w.scratch
	nb := len(frame)
	n, err := w.f.Write(frame)
	w.size += int64(n)
	if err == nil && n < nb {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = err
		w.noteLostLocked(rec.LSN)
		return err
	}
	w.pending++
	w.lastSynced = false
	if w.syncEveryN > 0 && w.pending >= w.syncEveryN {
		if err := w.f.Sync(); err != nil {
			w.err = err
			w.noteLostLocked(rec.LSN)
			return err
		}
		w.pending = 0
		w.lastSynced = true
	}
	w.lastFrameLen = nb
	return nil
}

// noteLostLocked records the lowest LSN dropped to a degradation.
func (w *WAL) noteLostLocked(lsn uint64) {
	if lsn != 0 && (w.lost == 0 || lsn < w.lost) {
		w.lost = lsn
	}
}

// appendCross appends one record to two shard logs under a single LSN,
// setting FlagCrossShard on both copies. The caller passes the shards
// in canonical (increasing-index) order and already holds both
// journal-shard locks; both WAL locks are taken here in the same order
// so allocation and enqueueing are atomic with respect to each shard's
// other appends. In group-commit mode the caller must then WaitDurable
// the returned LSN on BOTH shards before releasing the journal locks —
// that synchronous commit is what guarantees no later record in either
// shard exists until the cross record is durable everywhere (see
// DESIGN.md §15). In synchronous mode both copies are durable on
// return.
func appendCross(lo, hi *WAL, rec Record) (uint64, error) {
	if lo == hi {
		return lo.Append(rec)
	}
	lo.mu.Lock()
	hi.mu.Lock()
	if lo.err != nil {
		err := lo.err
		hi.mu.Unlock()
		lo.mu.Unlock()
		return 0, err
	}
	if hi.err != nil {
		err := hi.err
		hi.mu.Unlock()
		lo.mu.Unlock()
		return 0, err
	}
	rec.Flags |= FlagCrossShard
	rec.LSN = lo.alloc.Add(1) // shared allocator: one LSN for both copies
	lo.lastLSN = rec.LSN
	hi.lastLSN = rec.LSN

	if lo.gc != nil || hi.gc != nil {
		// Group mode: enqueue in both shards; the trace (if any) is
		// attributed once, on the lower shard.
		lo.enqueueLocked(lo.gc, rec)
		hiRec := rec
		hiRec.Mut.Trace = 0
		hi.enqueueLocked(hi.gc, hiRec)
		loFull := lo.gc.queued >= lo.gc.maxBatch || lo.gc.queued >= lo.gc.lastGroup
		hiFull := hi.gc.queued >= hi.gc.maxBatch || hi.gc.queued >= hi.gc.lastGroup
		hi.mu.Unlock()
		lo.mu.Unlock()
		lo.gc.wake(loFull)
		hi.gc.wake(hiFull)
		return rec.LSN, nil
	}

	// Synchronous mode: commit inline on both shards, lower first.
	var firstErr error
	var emit [2]func()
	for i, w := range [2]*WAL{lo, hi} {
		if err := w.writeSyncLocked(rec); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		nb, synced := w.lastFrameLen, w.lastSynced
		onAppend, onSync := w.onAppend, w.onSync
		w.maybeRotateLocked()
		emit[i] = func() {
			if onAppend != nil {
				onAppend(1, nb)
			}
			if synced && onSync != nil {
				onSync()
			}
		}
	}
	hi.mu.Unlock()
	lo.mu.Unlock()
	for _, fn := range emit {
		if fn != nil {
			fn()
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return rec.LSN, nil
}

// AppendFrames writes a batch of pre-encoded record frames — a
// replicated commit group shipped from a primary — and advances the
// LSN cursor to lastLSN+1. The frames carry the primary's LSNs, so the
// follower's log is byte-for-byte a prefix-preserving copy of the
// primary's history and promotion continues the same sequence. Only
// valid in synchronous mode (a replica never runs the group-commit
// pipeline; its groups were formed on the primary). The batch syncs
// per the sync policy, counting one pending record per replicated
// record.
func (w *WAL) AppendFrames(frames []byte, lastLSN uint64, records int) error {
	w.mu.Lock()
	if w.gc != nil {
		w.mu.Unlock()
		return errors.New("durable: AppendFrames on a group-commit wal")
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	n, err := w.f.Write(frames)
	w.size += int64(n)
	if err == nil && n < len(frames) {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = err
		w.noteLostLocked(lastLSN - uint64(records) + 1)
		w.mu.Unlock()
		return err
	}
	w.alloc.Store(lastLSN)
	w.lastLSN = lastLSN
	w.pending += records
	synced := false
	if w.syncEveryN > 0 && w.pending >= w.syncEveryN {
		if err := w.f.Sync(); err != nil {
			w.err = err
			w.noteLostLocked(lastLSN - uint64(records) + 1)
			w.mu.Unlock()
			return err
		}
		w.pending = 0
		synced = true
	}
	onAppend, onSync := w.onAppend, w.onSync
	w.maybeRotateLocked()
	w.mu.Unlock()
	if onAppend != nil {
		onAppend(records, len(frames))
	}
	if synced && onSync != nil {
		onSync()
	}
	return nil
}

// DurableLSN reports the highest LSN known durable per the sync policy:
// the group-commit horizon, or (synchronous mode) the last appended
// record, which was committed inline.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.gc != nil {
		return w.gc.durable
	}
	return w.lastLSN
}

// pendingFloor reports the lowest LSN this shard has accepted but not
// yet made durable — queued, in-flight, or lost to a degradation — or
// 0 when everything accepted is durable. The store's global durable
// horizon is min over shards of (floor-1).
func (w *WAL) pendingFloor() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	floor := w.lost
	if g := w.gc; g != nil {
		for _, f := range [2]uint64{g.inflightFirst, g.firstQueued} {
			if f != 0 && (floor == 0 || f < floor) {
				floor = f
			}
		}
	}
	return floor
}

// Sync forces outstanding records to stable storage. In group-commit
// mode it first waits for the pipeline to drain.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.gc != nil {
		target := w.lastLSN
		w.mu.Unlock()
		if err := w.WaitDurable(target); err != nil {
			return err
		}
		w.mu.Lock()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	synced, err := w.syncPendingLocked()
	onSync := w.onSync
	w.mu.Unlock()
	if synced && onSync != nil {
		onSync()
	}
	return err
}

// syncPendingLocked fsyncs if records are pending. The caller holds mu
// and emits the onSync hook after unlocking when synced is true.
func (w *WAL) syncPendingLocked() (synced bool, err error) {
	if w.pending == 0 {
		return false, nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return false, err
	}
	w.pending = 0
	return true, nil
}

// NextLSN reports the LSN the next append (to any shard sharing this
// WAL's allocator) will receive.
func (w *WAL) NextLSN() uint64 {
	return w.alloc.Load() + 1
}

// LastLSN reports the last LSN appended to this shard's log.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// Size reports the active segment's length in bytes. In group-commit
// mode it counts committed groups only; Barrier first for an exact
// figure.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Err reports the sticky error, if the WAL has failed.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.err, ErrWALClosed) {
		return nil
	}
	return w.err
}

// Close stops the committer (draining the queue), syncs and closes the
// log file. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if g := w.gc; g != nil && !g.stopping {
		g.stopping = true
		w.mu.Unlock()
		g.wake(true) // kick the committer and cut any batch window short
		<-g.done
		w.mu.Lock()
	}
	if w.err != nil {
		w.f.Close()
		err := w.err
		w.mu.Unlock()
		return err
	}
	synced, err := w.syncPendingLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.err = ErrWALClosed
	onSync := w.onSync
	w.mu.Unlock()
	if synced && err == nil && onSync != nil {
		onSync()
	}
	return err
}

// maybeRotateLocked seals the active segment and opens the next one
// once the active segment reached the rotation limit. Called with mu
// held at a point where no write is in flight (synchronous appends
// hold mu across the write; in group mode only the committer writes,
// and it rotates between groups). Rotation is rare — once per
// segment-size bytes — so the file operations run under mu.
func (w *WAL) maybeRotateLocked() {
	if w.rot == nil || w.err != nil || w.size < w.rot.limit {
		return
	}
	w.rotateLocked()
}

// rotateLocked seals the active segment (fsync), opens the next
// segment in the chain, fsyncs the directory so the new entry is
// durable before any record lands in it, and hands the sealed segment
// to the rotator's onSeal observer. On any failure the WAL degrades
// (sticky error) rather than continuing into an uncertain chain.
func (w *WAL) rotateLocked() {
	rot := w.rot
	if w.pending > 0 {
		if err := w.f.Sync(); err != nil {
			w.err = err
			return
		}
		w.pending = 0
	}
	next := rot.seq + 1
	path := filepath.Join(rot.dir, segmentFileName(rot.shards, rot.shard, next))
	f, err := rot.open(path)
	if err != nil {
		w.err = err
		return
	}
	syncDir(rot.dir)
	old := w.f
	oldPath := filepath.Join(rot.dir, segmentFileName(rot.shards, rot.shard, rot.seq))
	oldSize := w.size
	w.f = f
	w.size = 0
	rot.seq = next
	if rot.onSeal != nil {
		rot.onSeal(oldPath, w.lastLSN, oldSize)
	}
	old.Close()
}

// resetForCompact rotates the shard onto a fresh segment after a
// snapshot covered everything appended so far, clearing any degraded
// state: the sealed (possibly failed) segment becomes immediately
// prunable, queued-but-unwritten records are dropped (the snapshot
// carries their effects), and the durable horizon jumps to the shard's
// last accepted LSN, releasing any waiter a degraded pipeline
// stranded. The caller must have excluded all appends (quiesce + store
// lock) and drained the committer (Barrier).
func (w *WAL) resetForCompact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.rot == nil {
		return nil
	}
	if w.err != nil || w.size > 0 {
		hadErr := w.err
		w.err = nil // allow the rotate; restored on failure below
		w.rotateLocked()
		if w.err != nil {
			if hadErr != nil {
				w.err = hadErr
			}
			return w.err
		}
	}
	w.err = nil
	w.lost = 0
	if g := w.gc; g != nil {
		g.queue = g.queue[:0]
		g.queued = 0
		g.traced = g.traced[:0]
		g.firstQueued = 0
		g.inflightFirst = 0
		g.durable = w.lastLSN
		g.errNotified = false
		g.advanceLocked()
	}
	return nil
}

// syncDir fsyncs a directory so a just-created file's directory entry
// is durable. Best-effort: filesystems that refuse directory fsync are
// no worse off than before.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
