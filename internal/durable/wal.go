package durable

import (
	"errors"
	"io"
	"sync"
	"time"
)

// File is the slice of an append-only log file the WAL writer needs.
// *os.File satisfies it; faultdisk wraps one to inject storage faults.
// In group-commit mode the committer goroutine may issue a Write while
// another goroutine issues a Sync, so implementations must tolerate
// concurrent calls (*os.File and faultdisk.File both do).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// WAL appends framed records to a log file. It is safe for concurrent
// use and runs in one of two modes:
//
//   - Synchronous (the default): Append frames, writes and syncs the
//     record inline, under the WAL lock. Durable when Append returns.
//   - Group commit (after StartGroupCommit): Append encodes the record
//     into an in-memory queue under a short lock and returns; a
//     dedicated committer goroutine coalesces queued frames into one
//     write + one fsync per group. Callers that need durability park
//     on WaitDurable or Barrier.
//
// Either way the first write or sync error is sticky: the WAL stops
// accepting appends and reports the error from then on, because a log
// with a hole in it must not keep growing — recovery would stop at the
// hole and silently drop everything after it.
type WAL struct {
	mu      sync.Mutex
	f       File
	nextLSN uint64
	size    int64
	pending int // records written since the last sync
	// syncEveryN: 1 syncs after every record (or, in group mode, every
	// group — the only settings with no loss window), k>1 syncs every k
	// records, 0 never syncs (the OS decides when bytes reach the
	// platter).
	syncEveryN int
	err        error

	// scratch is the synchronous-mode frame encode buffer, reused
	// across appends under mu so the framer does not allocate per
	// record.
	scratch []byte

	// observers, optional. Emitted after mu is released so a slow sink
	// cannot extend the commit critical section.
	onAppend func(records, bytes int)
	onSync   func()

	gc *groupState // non-nil once StartGroupCommit has been called
}

// NewWAL wraps an open log file positioned at its end. nextLSN is the
// LSN the next appended record receives; size is the file's current
// length (for the size gauge).
func NewWAL(f File, nextLSN uint64, size int64, syncEveryN int) *WAL {
	return &WAL{f: f, nextLSN: nextLSN, size: size, syncEveryN: syncEveryN}
}

// ErrWALClosed is reported by appends after Close.
var ErrWALClosed = errors.New("durable: wal closed")

// Append frames rec (assigning it the next LSN) and commits it per the
// WAL's mode: written and synced inline in synchronous mode, queued for
// the committer in group-commit mode. It returns the assigned LSN.
func (w *WAL) Append(rec Record) (uint64, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	rec.LSN = w.nextLSN
	if g := w.gc; g != nil {
		w.nextLSN++
		g.queue = EncodeRecord(g.queue, rec)
		g.queued++
		g.lastLSN = rec.LSN
		if g.onTraceCommit != nil && rec.Mut.Trace != 0 {
			g.traced = append(g.traced, tracedRec{trace: rec.Mut.Trace, lsn: rec.LSN, enq: time.Now()})
		}
		// Cut a batch window short when the queue fills, or when the
		// cohort the previous group evidenced has fully arrived —
		// waiting longer would add latency with no one left to join.
		full := g.queued >= g.maxBatch || g.queued >= g.lastGroup
		w.mu.Unlock()
		g.wake(full)
		return rec.LSN, nil
	}

	// Synchronous mode: frame, write and sync inline.
	w.scratch = EncodeRecord(w.scratch[:0], rec)
	frame := w.scratch
	nb := len(frame)
	n, err := w.f.Write(frame)
	w.size += int64(n)
	if err == nil && n < nb {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = err
		w.mu.Unlock()
		return 0, err
	}
	w.nextLSN++
	w.pending++
	synced := false
	if w.syncEveryN > 0 && w.pending >= w.syncEveryN {
		if err := w.f.Sync(); err != nil {
			w.err = err
			w.mu.Unlock()
			return 0, err
		}
		w.pending = 0
		synced = true
	}
	onAppend, onSync := w.onAppend, w.onSync
	w.mu.Unlock()
	if onAppend != nil {
		onAppend(1, nb)
	}
	if synced && onSync != nil {
		onSync()
	}
	return rec.LSN, nil
}

// AppendFrames writes a batch of pre-encoded record frames — a
// replicated commit group shipped from a primary — and advances the
// LSN cursor to lastLSN+1. The frames carry the primary's LSNs, so the
// follower's log is byte-for-byte a prefix-preserving copy of the
// primary's history and promotion continues the same sequence. Only
// valid in synchronous mode (a replica never runs the group-commit
// pipeline; its groups were formed on the primary). The batch syncs
// per the sync policy, counting one pending record per replicated
// record.
func (w *WAL) AppendFrames(frames []byte, lastLSN uint64, records int) error {
	w.mu.Lock()
	if w.gc != nil {
		w.mu.Unlock()
		return errors.New("durable: AppendFrames on a group-commit wal")
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	n, err := w.f.Write(frames)
	w.size += int64(n)
	if err == nil && n < len(frames) {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = err
		w.mu.Unlock()
		return err
	}
	w.nextLSN = lastLSN + 1
	w.pending += records
	synced := false
	if w.syncEveryN > 0 && w.pending >= w.syncEveryN {
		if err := w.f.Sync(); err != nil {
			w.err = err
			w.mu.Unlock()
			return err
		}
		w.pending = 0
		synced = true
	}
	onAppend, onSync := w.onAppend, w.onSync
	w.mu.Unlock()
	if onAppend != nil {
		onAppend(records, len(frames))
	}
	if synced && onSync != nil {
		onSync()
	}
	return nil
}

// DurableLSN reports the highest LSN known durable per the sync policy:
// the group-commit horizon, or (synchronous mode) the last appended
// record, which was committed inline.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.gc != nil {
		return w.gc.durable
	}
	return w.nextLSN - 1
}

// Sync forces outstanding records to stable storage. In group-commit
// mode it first waits for the pipeline to drain.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.gc != nil {
		target := w.nextLSN - 1
		w.mu.Unlock()
		if err := w.WaitDurable(target); err != nil {
			return err
		}
		w.mu.Lock()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	synced, err := w.syncPendingLocked()
	onSync := w.onSync
	w.mu.Unlock()
	if synced && onSync != nil {
		onSync()
	}
	return err
}

// syncPendingLocked fsyncs if records are pending. The caller holds mu
// and emits the onSync hook after unlocking when synced is true.
func (w *WAL) syncPendingLocked() (synced bool, err error) {
	if w.pending == 0 {
		return false, nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return false, err
	}
	w.pending = 0
	return true, nil
}

// NextLSN reports the LSN the next append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Size reports the log file's length in bytes. In group-commit mode it
// counts committed groups only; Barrier first for an exact figure.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Err reports the sticky error, if the WAL has failed.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.err, ErrWALClosed) {
		return nil
	}
	return w.err
}

// Close stops the committer (draining the queue), syncs and closes the
// log file. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if g := w.gc; g != nil && !g.stopping {
		g.stopping = true
		w.mu.Unlock()
		g.wake(true) // kick the committer and cut any batch window short
		<-g.done
		w.mu.Lock()
	}
	if w.err != nil {
		w.f.Close()
		err := w.err
		w.mu.Unlock()
		return err
	}
	synced, err := w.syncPendingLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.err = ErrWALClosed
	onSync := w.onSync
	w.mu.Unlock()
	if synced && err == nil && onSync != nil {
		onSync()
	}
	return err
}

// swapFile atomically replaces the underlying file (after compaction
// truncated the log) and resets size/pending. LSNs keep counting up:
// records in the fresh log carry LSNs above the snapshot's, which is
// what lets recovery skip duplicates if a crash lands between snapshot
// publication and log reset. In group-commit mode the caller must have
// drained the pipeline (Barrier) with further appends excluded; the
// durable horizon jumps to the snapshot LSN, releasing any waiter a
// degraded pipeline stranded — the snapshot now carries its mutation.
func (w *WAL) swapFile(f File) error {
	w.mu.Lock()
	old := w.f
	w.f = f
	w.size = 0
	w.pending = 0
	w.err = nil
	if g := w.gc; g != nil {
		g.queue = g.queue[:0]
		g.queued = 0
		g.traced = g.traced[:0]
		g.durable = w.nextLSN - 1
		g.errNotified = false
		g.advanceLocked()
	}
	w.mu.Unlock()
	return old.Close()
}
