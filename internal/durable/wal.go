package durable

import (
	"errors"
	"io"
	"sync"
)

// File is the slice of an append-only log file the WAL writer needs.
// *os.File satisfies it; faultdisk wraps one to inject storage faults.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// WAL appends framed records to a log file. It is safe for concurrent
// use; appends are serialized (they target one file) and synced
// according to the policy. The first write or sync error is sticky:
// the WAL stops accepting appends and reports the error from then on,
// because a log with a hole in it must not keep growing — recovery
// would stop at the hole and silently drop everything after it.
type WAL struct {
	mu      sync.Mutex
	f       File
	nextLSN uint64
	size    int64
	pending int // records appended since the last sync
	// syncEveryN: 1 syncs after every record (the default and the only
	// setting with no loss window), k>1 syncs every k records, 0 never
	// syncs (the OS decides when bytes reach the platter).
	syncEveryN int
	err        error

	// observers, optional
	onAppend func(bytes int)
	onSync   func()
}

// NewWAL wraps an open log file positioned at its end. nextLSN is the
// LSN the next appended record receives; size is the file's current
// length (for the size gauge).
func NewWAL(f File, nextLSN uint64, size int64, syncEveryN int) *WAL {
	return &WAL{f: f, nextLSN: nextLSN, size: size, syncEveryN: syncEveryN}
}

// ErrWALClosed is reported by appends after Close.
var ErrWALClosed = errors.New("durable: wal closed")

// Append frames rec (assigning it the next LSN), writes it, and syncs
// per policy. It returns the assigned LSN.
func (w *WAL) Append(rec Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	rec.LSN = w.nextLSN
	frame := EncodeRecord(nil, rec)
	n, err := w.f.Write(frame)
	w.size += int64(n)
	if err == nil && n < len(frame) {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = err
		return 0, err
	}
	w.nextLSN++
	w.pending++
	if w.onAppend != nil {
		w.onAppend(len(frame))
	}
	if w.syncEveryN > 0 && w.pending >= w.syncEveryN {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	return rec.LSN, nil
}

// Sync forces outstanding records to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	w.pending = 0
	if w.onSync != nil {
		w.onSync()
	}
	return nil
}

// NextLSN reports the LSN the next append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Size reports the log file's length in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Err reports the sticky error, if the WAL has failed.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.err, ErrWALClosed) {
		return nil
	}
	return w.err
}

// Close syncs and closes the log file. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.err = ErrWALClosed
	return err
}

// swapFile atomically replaces the underlying file (after compaction
// truncated the log) and resets size/pending. LSNs keep counting up:
// records in the fresh log carry LSNs above the snapshot's, which is
// what lets recovery skip duplicates if a crash lands between snapshot
// publication and log reset.
func (w *WAL) swapFile(f File) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.f
	w.f = f
	w.size = 0
	w.pending = 0
	w.err = nil
	return old.Close()
}
