package durable

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"identitybox/internal/obs"
	"identitybox/internal/vfs"
)

// File names inside a state directory.
const (
	WALName      = "wal.log"
	SnapshotName = "snapshot.img"
	snapshotTmp  = "snapshot.tmp"
)

// Metric names exported by every store.
const (
	MetricWALRecords     = "durable_wal_records_total"
	MetricWALBytes       = "durable_wal_bytes_total"
	MetricWALFsyncs      = "durable_wal_fsyncs_total"
	MetricWALAppendErrs  = "durable_wal_append_errors_total"
	MetricWALSize        = "durable_wal_size_bytes"
	MetricReplayRecords  = "durable_replay_records_total"
	MetricReplaySkipped  = "durable_replay_skipped_total"
	MetricTruncatedBytes = "durable_replay_truncated_bytes_total"
	MetricCompactions    = "durable_snapshot_compactions_total"
	MetricSnapshotBytes  = "durable_snapshot_bytes"
	MetricRecoveries     = "durable_recoveries_total"
	// Group-commit pipeline metrics.
	MetricCommitGroups    = "durable_commit_groups_total"
	MetricCommitGroupRecs = "durable_commit_group_records"
	MetricCommitLatencyUs = "durable_commit_latency_us"
)

// Histogram bucket bounds for the group-commit metrics.
var (
	groupRecsBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	commitLatBuckets = []float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000}
)

// Options configure a store.
type Options struct {
	// Owner owns the root of a freshly initialized file system (when the
	// state directory holds no snapshot and no log).
	Owner string
	// SyncEveryN is the fsync cadence: 1 (the default) syncs after every
	// record — every commit group, with group commit on — k>1 every k
	// records, and a negative value never syncs.
	SyncEveryN int
	// CommitWindow is the group-commit batch window: under load the
	// committer waits this long for stragglers before flushing, so one
	// fsync covers the whole group. 0 uses DefaultCommitWindow; a
	// negative value disables the wait (groups are whatever accumulated
	// during the previous flush).
	CommitWindow time.Duration
	// CommitBatch flushes a group as soon as it reaches this many
	// records regardless of the window. 0 uses DefaultCommitBatch.
	CommitBatch int
	// DisableGroupCommit falls back to the synchronous WAL: every
	// mutation writes and fsyncs inline under the journal lock. The
	// pre-pipeline behavior, kept for baseline benchmarks and tests.
	DisableGroupCommit bool
	// Metrics, when set, receives the store's counters and gauges.
	Metrics *obs.Registry
	// Spans, when set, receives one "wal.commit" span per committed
	// mutation that carried a request-tracing ID (vfs.Mutation.Trace),
	// with queue and write+fsync phases. Nil disables trace tracking in
	// the commit pipeline entirely.
	Spans *obs.SpanRing
	// OpenAppend opens the WAL file for appending; tests inject
	// faultdisk files here. The default opens an ordinary os file.
	OpenAppend func(path string) (File, error)
	// Logf, when set, receives recovery and degradation notices.
	Logf func(format string, args ...any)
	// ReplicaMode opens the store as a replication follower: the file
	// system is not journaled (mutations arrive pre-encoded from the
	// primary via ApplyReplicated, which writes them to this store's own
	// WAL under the primary's LSNs), and the group-commit pipeline stays
	// off until Promote turns the follower into a primary.
	ReplicaMode bool
	// OnShip, when set on a primary, receives every durable commit
	// group's raw frames for replication fan-out (see
	// GroupConfig.OnShip). Requires the group-commit pipeline; ignored
	// with DisableGroupCommit. On a replica it takes effect at Promote.
	OnShip func(first, last uint64, records int, frames []byte)
}

// RecoveryInfo describes what Open found and did.
type RecoveryInfo struct {
	SnapshotLSN    uint64 // LSN the loaded snapshot covers (0: none)
	Replayed       int    // WAL records applied
	Skipped        int    // records at or below the snapshot LSN
	Unapplied      int    // records whose replay failed (should be 0)
	TruncatedBytes int64  // torn-tail bytes discarded from the log
	Torn           bool   // whether a torn tail was found
	DedupeEntries  int    // tokened replies carried across the restart
}

func (ri RecoveryInfo) String() string {
	return fmt.Sprintf("snapshot lsn %d, %d replayed, %d skipped, %d unapplied, %d torn bytes truncated, %d dedupe entries",
		ri.SnapshotLSN, ri.Replayed, ri.Skipped, ri.Unapplied, ri.TruncatedBytes, ri.DedupeEntries)
}

// storeMetrics caches the store's metric handles.
type storeMetrics struct {
	records     *obs.Counter
	bytes       *obs.Counter
	fsyncs      *obs.Counter
	appendErrs  *obs.Counter
	walSize     *obs.Gauge
	replayed    *obs.Counter
	skipped     *obs.Counter
	truncated   *obs.Counter
	compactions *obs.Counter
	snapBytes   *obs.Gauge
	recoveries  *obs.Counter
	groups      *obs.Counter
	groupRecs   *obs.Histogram
	commitLat   *obs.Histogram
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	reg.Help(MetricWALRecords, "Records appended to the write-ahead log.")
	reg.Help(MetricWALBytes, "Bytes appended to the write-ahead log.")
	reg.Help(MetricWALFsyncs, "fsync calls issued for the write-ahead log.")
	reg.Help(MetricWALAppendErrs, "Append or sync failures (durability degraded until the next compaction).")
	reg.Help(MetricWALSize, "Current write-ahead log length in bytes.")
	reg.Help(MetricReplayRecords, "WAL records applied during recoveries.")
	reg.Help(MetricReplaySkipped, "WAL records skipped during recoveries (already covered by the snapshot).")
	reg.Help(MetricTruncatedBytes, "Torn-tail bytes truncated from the log during recoveries.")
	reg.Help(MetricCompactions, "Snapshot compactions completed.")
	reg.Help(MetricSnapshotBytes, "Size of the last published snapshot in bytes.")
	reg.Help(MetricRecoveries, "Recoveries performed (1 per Open).")
	reg.Help(MetricCommitGroups, "Commit groups flushed by the group-commit pipeline.")
	reg.Help(MetricCommitGroupRecs, "Records coalesced per commit group.")
	reg.Help(MetricCommitLatencyUs, "Group commit latency (write start to durable) in microseconds.")
	return &storeMetrics{
		records:     reg.Counter(MetricWALRecords),
		bytes:       reg.Counter(MetricWALBytes),
		fsyncs:      reg.Counter(MetricWALFsyncs),
		appendErrs:  reg.Counter(MetricWALAppendErrs),
		walSize:     reg.Gauge(MetricWALSize),
		replayed:    reg.Counter(MetricReplayRecords),
		skipped:     reg.Counter(MetricReplaySkipped),
		truncated:   reg.Counter(MetricTruncatedBytes),
		compactions: reg.Counter(MetricCompactions),
		snapBytes:   reg.Gauge(MetricSnapshotBytes),
		recoveries:  reg.Counter(MetricRecoveries),
		groups:      reg.Counter(MetricCommitGroups),
		groupRecs:   reg.Histogram(MetricCommitGroupRecs, groupRecsBuckets),
		commitLat:   reg.Histogram(MetricCommitLatencyUs, commitLatBuckets),
	}
}

// snapFile is the serialized snapshot: the VFS image from vfs.Save plus
// the dedupe table, bound to the log position they cover. Epoch is the
// replication fencing term at snapshot time (0 on pre-replication
// snapshots, which gob decodes as the zero value).
type snapFile struct {
	Version int
	LSN     uint64
	Epoch   uint64
	Dedupe  map[string][]string
	FS      []byte
}

const snapFileVersion = 1

// Store binds a vfs.FS to a state directory: it journals every
// mutation to the WAL (implementing vfs.Journal), persists tokened
// replies for exactly-once retries, and compacts the log into
// snapshots. Create one with Open, which also performs recovery.
type Store struct {
	dir  string
	fs   *vfs.FS
	opts Options

	mu      sync.Mutex // guards wal swaps, dedupe, snapLSN, replica state
	wal     *WAL
	dedupe  map[string][]string
	snapLSN uint64

	// Replication state. epoch is the fencing term this store last saw
	// (recovered from the snapshot and epoch records, advanced by
	// SetEpochDurable on a primary and by replicated epoch records on a
	// follower). replica marks follower mode until Promote; lastApplied
	// is the follower's applied-LSN horizon, and appliedCh is closed and
	// replaced whenever it advances, waking WaitApplied parkers.
	epoch       uint64
	replica     bool
	lastApplied uint64
	appliedCh   chan struct{}
	gcCfg       GroupConfig // saved for Promote (replica mode defers StartGroupCommit)

	metrics  *storeMetrics
	recovery RecoveryInfo
	logf     func(format string, args ...any)

	// lastCommitLat is the most recent group's write+fsync latency in
	// nanoseconds, published by the commit pipeline for BarrierTraced.
	lastCommitLat atomic.Int64
}

func defaultOpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Open recovers the state directory and returns the store bound to the
// recovered file system: it loads the newest snapshot (if any), replays
// the WAL past the snapshot's LSN, truncates any torn tail at the last
// valid record, and attaches itself as the file system's journal so
// every further mutation is logged.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Owner == "" {
		opts.Owner = "chirp"
	}
	if opts.SyncEveryN == 0 {
		opts.SyncEveryN = 1
	}
	if opts.OpenAppend == nil {
		opts.OpenAppend = defaultOpenAppend
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: state dir: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		dedupe:    make(map[string][]string),
		replica:   opts.ReplicaMode,
		appliedCh: make(chan struct{}),
		metrics:   newStoreMetrics(reg),
		logf:      opts.Logf,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}

	// A crash may have left a half-written snapshot.tmp; it was never
	// renamed into place, so it is garbage.
	os.Remove(filepath.Join(dir, snapshotTmp))

	// 1. Snapshot, if one has been published.
	fs, err := s.loadSnapshot()
	if err != nil {
		return nil, err
	}
	if fs == nil {
		fs = vfs.New(opts.Owner)
	}
	s.fs = fs
	s.recovery.SnapshotLSN = s.snapLSN

	// 2. WAL replay past the snapshot LSN, truncating a torn tail.
	lastLSN, err := s.replayWAL()
	if err != nil {
		return nil, err
	}

	// 3. Open the log for appending and attach as the journal.
	nextLSN := lastLSN + 1
	if s.snapLSN >= lastLSN {
		nextLSN = s.snapLSN + 1
	}
	walPath := filepath.Join(dir, WALName)
	f, err := opts.OpenAppend(walPath)
	if err != nil {
		return nil, fmt.Errorf("durable: opening wal: %w", err)
	}
	var size int64
	if st, err := os.Stat(walPath); err == nil {
		size = st.Size()
	}
	syncN := opts.SyncEveryN
	if syncN < 0 {
		syncN = 0
	}
	s.wal = NewWAL(f, nextLSN, size, syncN)
	s.wal.onAppend = func(recs, n int) {
		s.metrics.records.Add(int64(recs))
		s.metrics.bytes.Add(int64(n))
		s.metrics.walSize.Add(int64(n))
	}
	s.wal.onSync = func() { s.metrics.fsyncs.Inc() }
	if !opts.DisableGroupCommit {
		window := opts.CommitWindow
		switch {
		case window == 0:
			window = DefaultCommitWindow
		case window < 0:
			window = 0
		}
		cfg := GroupConfig{
			Window:   window,
			MaxBatch: opts.CommitBatch,
			OnGroup: func(records, _ int, latency time.Duration) {
				s.lastCommitLat.Store(int64(latency))
				s.metrics.groups.Inc()
				s.metrics.groupRecs.Observe(float64(records))
				s.metrics.commitLat.Observe(float64(latency.Microseconds()))
			},
			OnError: func(err error) {
				s.metrics.appendErrs.Inc()
				s.logf("durable: wal append failed, durability degraded until compaction: %v", err)
			},
			OnShip: opts.OnShip,
		}
		if spans := opts.Spans; spans != nil {
			cfg.OnTraceCommit = func(trace, lsn uint64, queued, commit time.Duration) {
				sp := obs.Span{
					Trace: trace,
					ID:    spans.NextSpanID(),
					Name:  "wal.commit",
					Cmd:   fmt.Sprintf("lsn %d", lsn),
					Start: time.Now().Add(-(queued + commit)),
					Dur:   queued + commit,
				}
				sp.Phase("queue", 0, queued)
				sp.Phase("write+fsync", queued, commit)
				spans.Record(sp)
			}
		}
		s.gcCfg = cfg
		if !s.replica {
			s.wal.StartGroupCommit(cfg)
		}
	}
	s.metrics.walSize.Set(size)
	s.metrics.recoveries.Inc()
	s.recovery.DedupeEntries = len(s.dedupe)
	if s.replica {
		// A follower applies pre-encoded records from the primary; its
		// own file system is never journaled, and its applied horizon
		// resumes where the recovered log ended.
		s.lastApplied = nextLSN - 1
		return s, nil
	}
	fs.SetJournal(s)
	return s, nil
}

// loadSnapshot reads snapshot.img if present, returning the rebuilt
// file system (nil when no snapshot exists) and filling dedupe/snapLSN.
func (s *Store) loadSnapshot() (*vfs.FS, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, SnapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: reading snapshot: %w", err)
	}
	var snap snapFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("durable: decoding snapshot: %w", err)
	}
	if snap.Version != snapFileVersion {
		return nil, fmt.Errorf("durable: unsupported snapshot version %d", snap.Version)
	}
	fs, err := vfs.Load(bytes.NewReader(snap.FS))
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot image: %w", err)
	}
	for k, v := range snap.Dedupe {
		s.dedupe[k] = v
	}
	s.snapLSN = snap.LSN
	s.epoch = snap.Epoch
	s.metrics.snapBytes.Set(int64(len(data)))
	return fs, nil
}

// replayWAL applies logged records past the snapshot LSN and truncates
// any torn tail. It returns the highest LSN seen in the log.
func (s *Store) replayWAL() (uint64, error) {
	walPath := filepath.Join(s.dir, WALName)
	data, err := os.ReadFile(walPath)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("durable: reading wal: %w", err)
	}
	recs, validBytes, torn := DecodeAll(data)
	var lastLSN uint64
	for _, rec := range recs {
		lastLSN = rec.LSN
		if rec.LSN <= s.snapLSN {
			s.recovery.Skipped++
			s.metrics.skipped.Inc()
			continue
		}
		if err := s.applyRecord(rec); err != nil {
			// Should not happen for a log this store wrote: the same
			// sequence applied cleanly before the crash. Count it, keep
			// going — dropping one record must not drop the rest.
			s.recovery.Unapplied++
			s.logf("durable: replaying lsn %d (%s %s): %v", rec.LSN, vfs.MutOp(rec.Type), rec.Mut.Path, err)
			continue
		}
		s.recovery.Replayed++
		s.metrics.replayed.Inc()
	}
	if torn {
		discarded := int64(len(data)) - validBytes
		s.recovery.Torn = true
		s.recovery.TruncatedBytes = discarded
		s.metrics.truncated.Add(discarded)
		s.logf("durable: torn wal tail: truncating %d bytes at offset %d", discarded, validBytes)
		if err := os.Truncate(walPath, validBytes); err != nil {
			return 0, fmt.Errorf("durable: truncating torn tail: %w", err)
		}
	}
	return lastLSN, nil
}

// applyRecord replays one record onto the recovering state.
func (s *Store) applyRecord(rec Record) error {
	if rec.Type == DedupeType {
		s.dedupe[rec.DedupeKey] = rec.DedupeReply
		return nil
	}
	if rec.Type == EpochType {
		if rec.Epoch > s.epoch {
			s.epoch = rec.Epoch
		}
		return nil
	}
	m := rec.Mut
	switch m.Op {
	case vfs.MutMkdir:
		return s.fs.Mkdir(m.Path, m.Mode, m.Owner)
	case vfs.MutCreate:
		_, err := s.fs.Create(m.Path, m.Mode, m.Owner)
		return err
	case vfs.MutWrite:
		_, err := s.fs.WriteAt(m.Path, m.Data, m.Off)
		return err
	case vfs.MutTruncate:
		return s.fs.Truncate(m.Path, m.Size)
	case vfs.MutUnlink:
		return s.fs.Unlink(m.Path)
	case vfs.MutRmdir:
		return s.fs.Rmdir(m.Path)
	case vfs.MutSymlink:
		return s.fs.Symlink(m.Path2, m.Path, m.Owner)
	case vfs.MutLink:
		return s.fs.Link(m.Path, m.Path2)
	case vfs.MutRename:
		return s.fs.Rename(m.Path, m.Path2)
	case vfs.MutChmod:
		return s.fs.Chmod(m.Path, m.Mode)
	case vfs.MutChown:
		return s.fs.Chown(m.Path, m.Owner, m.Group)
	default:
		return fmt.Errorf("durable: unknown mutation op %d", m.Op)
	}
}

// FS returns the recovered file system the store journals for.
func (s *Store) FS() *vfs.FS { return s.fs }

// Recovery reports what the Open recovery pass found.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// Err reports the WAL's sticky failure, if appends have started
// failing; nil means the log is healthy. It first drains the commit
// pipeline so the verdict covers every mutation already issued.
func (s *Store) Err() error {
	s.wal.Barrier() // surface in-flight failures; error also lands in Err
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Err()
}

// Barrier blocks until every mutation recorded before the call is
// durable per the sync policy, or reports the degradation error. This
// is the acked ⇒ durable contract: acknowledge an operation to a
// client only after Barrier returns nil.
func (s *Store) Barrier() error {
	return s.wal.Barrier()
}

// BarrierTraced is Barrier plus the timing a traced request wants: how
// long this caller waited for durability, and the write+fsync latency
// of the most recent commit group (the one that, in the common case,
// made the caller's mutations durable). The commit latency is a
// best-effort attribution — under concurrency a later group may have
// published since — which is fine for observability.
func (s *Store) BarrierTraced() (wait, commitLat time.Duration, err error) {
	start := time.Now()
	err = s.wal.Barrier()
	return time.Since(start), time.Duration(s.lastCommitLat.Load()), err
}

// RecordMutation implements vfs.Journal: it appends the mutation to the
// WAL. Called with the FS journal lock held, so records land in commit
// order. With group commit on, this only encodes the record into the
// commit queue — no disk I/O happens under the journal lock; the
// committer writes and fsyncs the group, and anyone needing durability
// parks on Barrier. Append failures are absorbed (the in-memory state
// is already committed): they flip the sticky error, bump the
// degradation metric, and surface through Err/Barrier and the log.
func (s *Store) RecordMutation(m vfs.Mutation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hadErr := s.wal.Err() != nil
	if _, err := s.wal.Append(Record{Type: uint8(m.Op), Mut: m}); err != nil {
		s.metrics.appendErrs.Inc()
		if !hadErr {
			s.logf("durable: wal append failed, durability degraded until compaction: %v", err)
		}
	}
}

// AppendDedupe persists one tokened reply so a retry after a restart is
// answered from the table instead of re-executed. Key is the server's
// opaque principal+token key. It returns only once the entry is durable
// per the sync policy: the caller sends the reply on the wire after
// this, so a crash can never have acknowledged what the log lost. The
// durability wait happens outside s.mu — holding it would serialize
// every concurrent mutator behind this entry's group fsync.
func (s *Store) AppendDedupe(key string, reply []string) error {
	s.mu.Lock()
	s.dedupe[key] = append([]string(nil), reply...)
	lsn, err := s.wal.Append(Record{Type: DedupeType, DedupeKey: key, DedupeReply: reply})
	s.mu.Unlock()
	if err != nil {
		s.metrics.appendErrs.Inc()
		return err
	}
	return s.wal.WaitDurable(lsn)
}

// DedupeEntries returns a copy of the recovered (and since appended)
// dedupe table, for seeding a server's in-memory table.
func (s *Store) DedupeEntries() map[string][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]string, len(s.dedupe))
	for k, v := range s.dedupe {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// WALSize reports the current log length in bytes.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Size()
}

// Compact publishes a snapshot and resets the log. The protocol:
//
//  1. quiesce journaled mutations (FS journal lock);
//  2. serialize the tree + dedupe table bound to the current LSN;
//  3. write snapshot.tmp, fsync it;
//  4. rename snapshot.tmp over snapshot.img (atomic publication) and
//     fsync the directory so the rename itself is durable;
//  5. truncate the WAL to zero and resume appending.
//
// A crash before (4) leaves the old snapshot + full log: recovery
// replays as if no compaction happened. A crash between (4) and (5)
// leaves the new snapshot + stale log: recovery skips every record at
// or below the snapshot LSN. Either way, no state is lost and nothing
// is applied twice. A successful compaction also clears a degraded
// WAL: the snapshot captures everything the log failed to.
func (s *Store) Compact() error {
	return s.fs.Quiesce(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()

		// Quiesce + s.mu exclude every append source, so this barrier
		// is final: once it returns the committer is provably idle and
		// the log file can be truncated and swapped underneath it. A
		// degraded pipeline returns an error here — ignored, because the
		// snapshot about to be taken captures everything the log lost.
		s.wal.Barrier()

		lsn := s.wal.NextLSN() - 1 // appends are excluded by s.mu + quiesce
		var img bytes.Buffer
		if err := s.fs.Save(&img); err != nil {
			return fmt.Errorf("durable: serializing tree: %w", err)
		}
		snap := snapFile{Version: snapFileVersion, LSN: lsn, Epoch: s.epoch, Dedupe: s.dedupe, FS: img.Bytes()}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
			return fmt.Errorf("durable: encoding snapshot: %w", err)
		}
		if err := s.publishSnapshotLocked(buf.Bytes(), lsn); err != nil {
			return err
		}
		s.metrics.compactions.Inc()
		return nil
	})
}

// publishSnapshotLocked atomically publishes an encoded snapshot and
// resets the log: snapshot.tmp written and fsynced, renamed over
// snapshot.img with a directory sync, then the WAL truncated and its
// file swapped. Caller holds s.mu with appends excluded (the commit
// pipeline, if running, barriered and idle).
func (s *Store) publishSnapshotLocked(encoded []byte, lsn uint64) error {
	tmpPath := filepath.Join(s.dir, snapshotTmp)
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot tmp: %w", err)
	}
	if _, err := tmp.Write(encoded); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, SnapshotName)); err != nil {
		return fmt.Errorf("durable: publishing snapshot: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}

	// The log's records are now all covered by the snapshot; reset it.
	walPath := filepath.Join(s.dir, WALName)
	if err := os.Truncate(walPath, 0); err != nil {
		return fmt.Errorf("durable: resetting wal: %w", err)
	}
	f, err := s.opts.OpenAppend(walPath)
	if err != nil {
		return fmt.Errorf("durable: reopening wal: %w", err)
	}
	if err := s.wal.swapFile(f); err != nil {
		s.logf("durable: closing old wal file: %v", err)
	}
	s.snapLSN = lsn
	s.metrics.snapBytes.Set(int64(len(encoded)))
	s.metrics.walSize.Set(0)
	return nil
}

// Close syncs and closes the log. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Close()
}
