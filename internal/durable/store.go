package durable

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"identitybox/internal/obs"
	"identitybox/internal/vfs"
)

// File names inside a state directory. WALName is the legacy
// single-file log (pre-segmentation); a store now writes bounded
// segments (see segment.go) but still reads and upgrades a wal.log in
// place.
const (
	WALName      = "wal.log"
	SnapshotName = "snapshot.img"
	snapshotTmp  = "snapshot.tmp"
)

// DefaultSegmentBytes is the segment rotation threshold when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 8 << 20

// Metric names exported by every store.
const (
	MetricWALRecords     = "durable_wal_records_total"
	MetricWALBytes       = "durable_wal_bytes_total"
	MetricWALFsyncs      = "durable_wal_fsyncs_total"
	MetricWALAppendErrs  = "durable_wal_append_errors_total"
	MetricWALSize        = "durable_wal_size_bytes"
	MetricWALLiveBytes   = "durable_wal_bytes"
	MetricWALSegments    = "durable_wal_segments"
	MetricSegsPruned     = "durable_segments_pruned_total"
	MetricReplayRecords  = "durable_replay_records_total"
	MetricReplaySkipped  = "durable_replay_skipped_total"
	MetricTruncatedBytes = "durable_replay_truncated_bytes_total"
	MetricCompactions    = "durable_snapshot_compactions_total"
	MetricSnapshotBytes  = "durable_snapshot_bytes"
	MetricRecoveries     = "durable_recoveries_total"
	// Group-commit pipeline metrics.
	MetricCommitGroups    = "durable_commit_groups_total"
	MetricCommitGroupRecs = "durable_commit_group_records"
	MetricCommitLatencyUs = "durable_commit_latency_us"
)

// Histogram bucket bounds for the group-commit metrics.
var (
	groupRecsBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	commitLatBuckets = []float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000}
)

// Options configure a store.
type Options struct {
	// Owner owns the root of a freshly initialized file system (when the
	// state directory holds no snapshot and no log).
	Owner string
	// SyncEveryN is the fsync cadence: 1 (the default) syncs after every
	// record — every commit group, with group commit on — k>1 every k
	// records, and a negative value never syncs.
	SyncEveryN int
	// Shards is the number of commit-pipeline shards: journal shard
	// locks, WAL segment chains and committer goroutines. Mutations in
	// different top-level subtrees commit through different shards in
	// parallel. 0 or 1 keeps the single-shard pipeline.
	Shards int
	// SegmentBytes rotates the active WAL segment once it reaches this
	// size. 0 uses DefaultSegmentBytes.
	SegmentBytes int64
	// RetainLSN, when set, is consulted at compaction: sealed segments
	// are pruned only up to min(snapshot LSN, RetainLSN()). The
	// replication layer uses it to hold segments until the slowest
	// subscriber has acked them, so a lagging follower can still be
	// served a log tail instead of a full snapshot.
	RetainLSN func() uint64
	// CommitWindow is the group-commit batch window: under load the
	// committer waits this long for stragglers before flushing, so one
	// fsync covers the whole group. 0 uses DefaultCommitWindow; a
	// negative value disables the wait (groups are whatever accumulated
	// during the previous flush).
	CommitWindow time.Duration
	// CommitBatch flushes a group as soon as it reaches this many
	// records regardless of the window. 0 uses DefaultCommitBatch.
	CommitBatch int
	// DisableGroupCommit falls back to the synchronous WAL: every
	// mutation writes and fsyncs inline under the journal lock. The
	// pre-pipeline behavior, kept for baseline benchmarks and tests.
	DisableGroupCommit bool
	// Metrics, when set, receives the store's counters and gauges.
	Metrics *obs.Registry
	// Spans, when set, receives one "wal.commit" span per committed
	// mutation that carried a request-tracing ID (vfs.Mutation.Trace),
	// with queue and write+fsync phases. Nil disables trace tracking in
	// the commit pipeline entirely.
	Spans *obs.SpanRing
	// OpenAppend opens WAL segment files for appending; tests inject
	// faultdisk files here. The default opens an ordinary os file.
	OpenAppend func(path string) (File, error)
	// Logf, when set, receives recovery and degradation notices.
	Logf func(format string, args ...any)
	// ReplicaMode opens the store as a replication follower: the file
	// system is not journaled (mutations arrive pre-encoded from the
	// primary via ApplyReplicated, which writes them to this store's own
	// WAL under the primary's LSNs), and the group-commit pipeline stays
	// off until Promote turns the follower into a primary.
	ReplicaMode bool
	// OnShip, when set on a primary, receives every durable commit
	// group's raw frames for replication fan-out (see
	// GroupConfig.OnShip). On a sharded store the groups pass through a
	// resequencer first, so OnShip always sees contiguous LSN runs in
	// order. Requires the group-commit pipeline; ignored with
	// DisableGroupCommit. On a replica it takes effect at Promote.
	OnShip func(first, last uint64, records int, frames []byte)
}

// RecoveryInfo describes what Open found and did.
type RecoveryInfo struct {
	SnapshotLSN    uint64 // LSN the loaded snapshot covers (0: none)
	Segments       int    // log files found (segments plus any legacy wal.log)
	Replayed       int    // WAL records applied
	Skipped        int    // records at or below the snapshot LSN
	Unapplied      int    // records whose replay failed (should be 0)
	TruncatedBytes int64  // torn-tail bytes discarded from the log
	Torn           bool   // whether a torn tail was found
	HalfCross      int    // cross-shard records found in only one shard's log
	DedupeEntries  int    // tokened replies carried across the restart
}

func (ri RecoveryInfo) String() string {
	return fmt.Sprintf("snapshot lsn %d, %d segments, %d replayed, %d skipped, %d unapplied, %d torn bytes truncated, %d half-committed cross records, %d dedupe entries",
		ri.SnapshotLSN, ri.Segments, ri.Replayed, ri.Skipped, ri.Unapplied, ri.TruncatedBytes, ri.HalfCross, ri.DedupeEntries)
}

// storeMetrics caches the store's metric handles.
type storeMetrics struct {
	records     *obs.Counter
	bytes       *obs.Counter
	fsyncs      *obs.Counter
	appendErrs  *obs.Counter
	walSize     *obs.Gauge
	walLive     *obs.Gauge
	walSegments *obs.Gauge
	segsPruned  *obs.Counter
	replayed    *obs.Counter
	skipped     *obs.Counter
	truncated   *obs.Counter
	compactions *obs.Counter
	snapBytes   *obs.Gauge
	recoveries  *obs.Counter
	groups      *obs.Counter
	groupRecs   *obs.Histogram
	commitLat   *obs.Histogram
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	reg.Help(MetricWALRecords, "Records appended to the write-ahead log.")
	reg.Help(MetricWALBytes, "Bytes appended to the write-ahead log.")
	reg.Help(MetricWALFsyncs, "fsync calls issued for the write-ahead log.")
	reg.Help(MetricWALAppendErrs, "Append or sync failures (durability degraded until the next compaction).")
	reg.Help(MetricWALSize, "Current write-ahead log length in bytes.")
	reg.Help(MetricWALLiveBytes, "Live write-ahead log bytes across all segments.")
	reg.Help(MetricWALSegments, "Live write-ahead log segment files (sealed plus active).")
	reg.Help(MetricSegsPruned, "WAL segments pruned after snapshot compaction.")
	reg.Help(MetricReplayRecords, "WAL records applied during recoveries.")
	reg.Help(MetricReplaySkipped, "WAL records skipped during recoveries (already covered by the snapshot).")
	reg.Help(MetricTruncatedBytes, "Torn-tail bytes truncated from the log during recoveries.")
	reg.Help(MetricCompactions, "Snapshot compactions completed.")
	reg.Help(MetricSnapshotBytes, "Size of the last published snapshot in bytes.")
	reg.Help(MetricRecoveries, "Recoveries performed (1 per Open).")
	reg.Help(MetricCommitGroups, "Commit groups flushed by the group-commit pipeline.")
	reg.Help(MetricCommitGroupRecs, "Records coalesced per commit group.")
	reg.Help(MetricCommitLatencyUs, "Group commit latency (write start to durable) in microseconds.")
	return &storeMetrics{
		records:     reg.Counter(MetricWALRecords),
		bytes:       reg.Counter(MetricWALBytes),
		fsyncs:      reg.Counter(MetricWALFsyncs),
		appendErrs:  reg.Counter(MetricWALAppendErrs),
		walSize:     reg.Gauge(MetricWALSize),
		walLive:     reg.Gauge(MetricWALLiveBytes),
		walSegments: reg.Gauge(MetricWALSegments),
		segsPruned:  reg.Counter(MetricSegsPruned),
		replayed:    reg.Counter(MetricReplayRecords),
		skipped:     reg.Counter(MetricReplaySkipped),
		truncated:   reg.Counter(MetricTruncatedBytes),
		compactions: reg.Counter(MetricCompactions),
		snapBytes:   reg.Gauge(MetricSnapshotBytes),
		recoveries:  reg.Counter(MetricRecoveries),
		groups:      reg.Counter(MetricCommitGroups),
		groupRecs:   reg.Histogram(MetricCommitGroupRecs, groupRecsBuckets),
		commitLat:   reg.Histogram(MetricCommitLatencyUs, commitLatBuckets),
	}
}

// snapFile is the serialized snapshot: the VFS image from vfs.Save plus
// the dedupe table, bound to the log position they cover. Epoch is the
// replication fencing term at snapshot time (0 on pre-replication
// snapshots, which gob decodes as the zero value).
type snapFile struct {
	Version int
	LSN     uint64
	Epoch   uint64
	Dedupe  map[string][]string
	FS      []byte
}

const snapFileVersion = 1

// sealedSeg is one sealed (no longer written) log file: a rotated-away
// segment, a compaction-reset active segment, or a pre-existing file
// found at Open. lastLSN is the highest LSN the file can contain; the
// file is prunable once a snapshot and every replication subscriber
// have passed it.
type sealedSeg struct {
	path    string
	lastLSN uint64
	size    int64
}

// Store binds a vfs.FS to a state directory: it journals every
// mutation to the WAL (implementing vfs.Journal), persists tokened
// replies for exactly-once retries, and compacts the log into
// snapshots. Create one with Open, which also performs recovery.
//
// The commit pipeline is sharded by top-level subtree (vfs.ShardOf):
// each shard has its own journal lock, segment chain and committer
// goroutine, while a single atomic allocator hands out LSNs so the
// union of all shards' records remains one totally ordered history.
type Store struct {
	dir  string
	fs   *vfs.FS
	opts Options

	mu      sync.Mutex // guards dedupe, snapLSN, replica state, compaction
	wals    []*WAL     // one per shard; immutable after Open
	alloc   atomic.Uint64
	shards  int
	dedupe  map[string][]string
	snapLSN uint64

	// sealed tracks sealed segments for pruning. Its own lock, ordered
	// after WAL.mu (rotation seals under the WAL lock).
	sealMu sync.Mutex
	sealed []sealedSeg

	// shipSeq resequences sharded commit groups into one LSN-ordered
	// stream for Options.OnShip; nil on single-shard stores (groups pass
	// through directly) and until Promote on replicas.
	shipSeq *shipSeq

	// Replication state. epoch is the fencing term this store last saw
	// (recovered from the snapshot and epoch records, advanced by
	// SetEpochDurable on a primary and by replicated epoch records on a
	// follower). replica marks follower mode until Promote; lastApplied
	// is the follower's applied-LSN horizon, and appliedCh is closed and
	// replaced whenever it advances, waking WaitApplied parkers.
	epoch       uint64
	replica     bool
	lastApplied uint64
	appliedCh   chan struct{}
	gcCfg       GroupConfig // saved for Promote (replica mode defers StartGroupCommit)

	metrics  *storeMetrics
	recovery RecoveryInfo
	logf     func(format string, args ...any)

	// lastCommitLat is the most recent group's write+fsync latency in
	// nanoseconds, published by the commit pipeline for BarrierTraced.
	lastCommitLat atomic.Int64
}

func defaultOpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Open recovers the state directory and returns the store bound to the
// recovered file system: it loads the newest snapshot (if any), replays
// the log segments past the snapshot's LSN — one worker per shard
// chain, rendezvousing on cross-shard records — truncates any torn
// tail at the last valid record, and attaches itself as the file
// system's journal so every further mutation is logged.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Owner == "" {
		opts.Owner = "chirp"
	}
	if opts.SyncEveryN == 0 {
		opts.SyncEveryN = 1
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.OpenAppend == nil {
		opts.OpenAppend = defaultOpenAppend
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: state dir: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		shards:    opts.Shards,
		dedupe:    make(map[string][]string),
		replica:   opts.ReplicaMode,
		appliedCh: make(chan struct{}),
		metrics:   newStoreMetrics(reg),
		logf:      opts.Logf,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}

	// A crash may have left a half-written snapshot.tmp; it was never
	// renamed into place, so it is garbage.
	os.Remove(filepath.Join(dir, snapshotTmp))

	// 1. Snapshot, if one has been published.
	fs, err := s.loadSnapshot()
	if err != nil {
		return nil, err
	}
	if fs == nil {
		fs = vfs.New(opts.Owner)
	}
	s.fs = fs
	s.recovery.SnapshotLSN = s.snapLSN

	// 2. Replay the log segments past the snapshot LSN, truncating any
	// torn tail. Everything found on disk becomes a sealed segment.
	maxLSN, nextSeq, err := s.recoverLog()
	if err != nil {
		return nil, err
	}

	// 3. Open a fresh active segment per shard and attach the journal.
	nextLSN := maxLSN + 1
	if s.snapLSN >= maxLSN {
		nextLSN = s.snapLSN + 1
	}
	s.alloc.Store(nextLSN - 1)
	syncN := opts.SyncEveryN
	if syncN < 0 {
		syncN = 0
	}
	onAppend := func(recs, n int) {
		s.metrics.records.Add(int64(recs))
		s.metrics.bytes.Add(int64(n))
		s.metrics.walSize.Add(int64(n))
		s.metrics.walLive.Add(int64(n))
	}
	onSync := func() { s.metrics.fsyncs.Inc() }
	s.wals = make([]*WAL, s.shards)
	for j := range s.wals {
		rot := &rotator{
			dir:    dir,
			shards: s.shards,
			shard:  j,
			seq:    nextSeq[j],
			limit:  opts.SegmentBytes,
			open:   opts.OpenAppend,
			onSeal: s.noteSealed,
		}
		f, err := opts.OpenAppend(filepath.Join(dir, segmentFileName(s.shards, j, rot.seq)))
		if err != nil {
			return nil, fmt.Errorf("durable: opening wal segment: %w", err)
		}
		w := newShardWAL(f, &s.alloc, syncN, rot)
		w.onAppend = onAppend
		w.onSync = onSync
		s.wals[j] = w
	}
	syncDir(dir)

	if !opts.DisableGroupCommit {
		window := opts.CommitWindow
		switch {
		case window == 0:
			window = DefaultCommitWindow
		case window < 0:
			window = 0
		}
		cfg := GroupConfig{
			Window:   window,
			MaxBatch: opts.CommitBatch,
			OnGroup: func(records, _ int, latency time.Duration) {
				s.lastCommitLat.Store(int64(latency))
				s.metrics.groups.Inc()
				s.metrics.groupRecs.Observe(float64(records))
				s.metrics.commitLat.Observe(float64(latency.Microseconds()))
			},
			OnError: func(err error) {
				s.metrics.appendErrs.Inc()
				s.logf("durable: wal append failed, durability degraded until compaction: %v", err)
			},
			OnShip: opts.OnShip,
		}
		if spans := opts.Spans; spans != nil {
			cfg.OnTraceCommit = func(trace, lsn uint64, queued, commit time.Duration) {
				sp := obs.Span{
					Trace: trace,
					ID:    spans.NextSpanID(),
					Name:  "wal.commit",
					Cmd:   fmt.Sprintf("lsn %d", lsn),
					Start: time.Now().Add(-(queued + commit)),
					Dur:   queued + commit,
				}
				sp.Phase("queue", 0, queued)
				sp.Phase("write+fsync", queued, commit)
				spans.Record(sp)
			}
		}
		s.gcCfg = cfg
		if !s.replica {
			cfg.OnShip = s.wireShip(cfg.OnShip, nextLSN)
			for _, w := range s.wals {
				w.StartGroupCommit(cfg)
			}
		}
	}
	var liveBytes int64
	s.sealMu.Lock()
	for _, seg := range s.sealed {
		liveBytes += seg.size
	}
	segCount := len(s.sealed) + s.shards
	s.sealMu.Unlock()
	s.metrics.walSize.Set(liveBytes)
	s.metrics.walLive.Set(liveBytes)
	s.metrics.walSegments.Set(int64(segCount))
	s.metrics.recoveries.Inc()
	s.recovery.DedupeEntries = len(s.dedupe)
	if s.replica {
		// A follower applies pre-encoded records from the primary; its
		// own file system is never journaled, and its applied horizon
		// resumes where the recovered log ended.
		s.lastApplied = nextLSN - 1
		return s, nil
	}
	fs.SetJournalSharded(s, s.shards)
	return s, nil
}

// wireShip adapts the OnShip hook to the shard count: single-shard
// groups already arrive in LSN order and pass through zero-copy;
// sharded groups go through the resequencer.
func (s *Store) wireShip(onShip func(first, last uint64, records int, frames []byte), nextLSN uint64) func(first, last uint64, records int, frames []byte) {
	if onShip == nil || s.shards == 1 {
		return onShip
	}
	seq := newShipSeq(nextLSN, onShip)
	s.shipSeq = seq
	return func(_, _ uint64, _ int, frames []byte) { seq.ingest(frames) }
}

// noteSealed records a sealed segment for later pruning. Called by the
// rotator with the sealing WAL's mu held.
func (s *Store) noteSealed(path string, lastLSN uint64, size int64) {
	s.sealMu.Lock()
	s.sealed = append(s.sealed, sealedSeg{path: path, lastLSN: lastLSN, size: size})
	s.sealMu.Unlock()
	s.metrics.walSegments.Inc()
}

// loadSnapshot reads snapshot.img if present, returning the rebuilt
// file system (nil when no snapshot exists) and filling dedupe/snapLSN.
func (s *Store) loadSnapshot() (*vfs.FS, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, SnapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: reading snapshot: %w", err)
	}
	var snap snapFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("durable: decoding snapshot: %w", err)
	}
	if snap.Version != snapFileVersion {
		return nil, fmt.Errorf("durable: unsupported snapshot version %d", snap.Version)
	}
	fs, err := vfs.Load(bytes.NewReader(snap.FS))
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot image: %w", err)
	}
	for k, v := range snap.Dedupe {
		s.dedupe[k] = v
	}
	s.snapLSN = snap.LSN
	s.epoch = snap.Epoch
	s.metrics.snapBytes.Set(int64(len(data)))
	return fs, nil
}

// FS returns the recovered file system the store journals for.
func (s *Store) FS() *vfs.FS { return s.fs }

// Recovery reports what the Open recovery pass found.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// Err reports the WAL's sticky failure, if appends have started
// failing; nil means the log is healthy. It first drains the commit
// pipeline so the verdict covers every mutation already issued.
func (s *Store) Err() error {
	for _, w := range s.wals {
		w.Barrier() // surface in-flight failures; error also lands in Err
	}
	for _, w := range s.wals {
		if err := w.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Barrier blocks until every mutation recorded before the call is
// durable per the sync policy, or reports the degradation error. This
// is the acked ⇒ durable contract: acknowledge an operation to a
// client only after Barrier returns nil.
func (s *Store) Barrier() error {
	var firstErr error
	for _, w := range s.wals {
		if err := w.Barrier(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// BarrierPath is Barrier scoped to the shard that commits path's
// subtree: it waits only for that shard's pipeline, leaving the other
// shards' in-flight groups alone. Callers that know all their
// mutations touched one subtree (the common case for a single request)
// get durability without cross-shard convoy.
func (s *Store) BarrierPath(path string) error {
	return s.wals[vfs.ShardOf(path, s.shards)].Barrier()
}

// BarrierTraced is Barrier plus the timing a traced request wants: how
// long this caller waited for durability, and the write+fsync latency
// of the most recent commit group (the one that, in the common case,
// made the caller's mutations durable). The commit latency is a
// best-effort attribution — under concurrency a later group may have
// published since — which is fine for observability.
func (s *Store) BarrierTraced() (wait, commitLat time.Duration, err error) {
	start := time.Now()
	err = s.Barrier()
	return time.Since(start), time.Duration(s.lastCommitLat.Load()), err
}

// RecordMutation implements vfs.Journal: it appends the mutation to
// the shard WAL owning the mutation's subtree. Called with the
// mutation's journal shard lock(s) held, so each shard's records land
// in commit order; no store-wide lock is taken, which is what lets
// disjoint subtrees commit in parallel. With group commit on, this
// only encodes the record into the shard's queue — no disk I/O under
// the journal lock. Append failures are absorbed (the in-memory state
// is already committed): they flip the shard's sticky error and
// surface through Err/Barrier and the log.
//
// A rename or link whose two paths map to different shards is a
// cross-shard commit: the record is appended to both shards' logs
// under one LSN and — still inside both journal locks — waited durable
// on both, so no later record in either shard can exist unless the
// cross record survives recovery (see DESIGN.md §15).
func (s *Store) RecordMutation(m vfs.Mutation) {
	rec := Record{Type: uint8(m.Op), Mut: m}
	if m.Op == vfs.MutRename || m.Op == vfs.MutLink {
		a, b := vfs.ShardOf(m.Path, s.shards), vfs.ShardOf(m.Path2, s.shards)
		if a != b {
			if a > b {
				a, b = b, a
			}
			lo, hi := s.wals[a], s.wals[b]
			hadErr := lo.Err() != nil || hi.Err() != nil
			lsn, err := appendCross(lo, hi, rec)
			if err == nil {
				err = lo.WaitDurable(lsn)
				if err2 := hi.WaitDurable(lsn); err == nil {
					err = err2
				}
			}
			if err != nil {
				s.metrics.appendErrs.Inc()
				if !hadErr {
					s.logf("durable: wal append failed, durability degraded until compaction: %v", err)
				}
			}
			return
		}
	}
	w := s.wals[vfs.ShardOf(m.Path, s.shards)]
	hadErr := w.Err() != nil
	if _, err := w.Append(rec); err != nil {
		s.metrics.appendErrs.Inc()
		if !hadErr {
			s.logf("durable: wal append failed, durability degraded until compaction: %v", err)
		}
	}
}

// AppendDedupe persists one tokened reply so a retry after a restart is
// answered from the table instead of re-executed. Key is the server's
// opaque principal+token key. It returns only once the entry is durable
// per the sync policy: the caller sends the reply on the wire after
// this, so a crash can never have acknowledged what the log lost. The
// append itself happens under s.mu — which is what keeps it ordered
// against compaction's log reset — but the durability wait happens
// outside, so concurrent mutators are not serialized behind this
// entry's group fsync.
func (s *Store) AppendDedupe(key string, reply []string) error {
	w := s.wals[vfs.ShardOfKey(key, s.shards)]
	s.mu.Lock()
	s.dedupe[key] = append([]string(nil), reply...)
	lsn, err := w.Append(Record{Type: DedupeType, DedupeKey: key, DedupeReply: reply})
	s.mu.Unlock()
	if err != nil {
		s.metrics.appendErrs.Inc()
		return err
	}
	return w.WaitDurable(lsn)
}

// DedupeEntries returns a copy of the recovered (and since appended)
// dedupe table, for seeding a server's in-memory table.
func (s *Store) DedupeEntries() map[string][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]string, len(s.dedupe))
	for k, v := range s.dedupe {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// WALSize reports the total live log length in bytes: sealed segments
// not yet pruned plus every shard's active segment.
func (s *Store) WALSize() int64 {
	var total int64
	s.sealMu.Lock()
	for _, seg := range s.sealed {
		total += seg.size
	}
	s.sealMu.Unlock()
	for _, w := range s.wals {
		total += w.Size()
	}
	return total
}

// Segments reports how many live log files the store holds (sealed
// plus one active per shard).
func (s *Store) Segments() int {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	return len(s.sealed) + len(s.wals)
}

// Compact publishes a snapshot and prunes the log. The protocol:
//
//  1. quiesce journaled mutations (all journal shard locks) and take
//     s.mu, excluding dedupe appends; barrier every shard so the
//     committers are provably idle;
//  2. serialize the tree + dedupe table bound to the current LSN;
//  3. write snapshot.tmp, fsync it;
//  4. rename snapshot.tmp over snapshot.img (atomic publication) and
//     fsync the directory so the rename itself is durable;
//  5. seal every shard's active segment (clearing any degraded state —
//     the snapshot captures everything a failed log lost) and prune
//     sealed segments up to min(snapshot LSN, RetainLSN()).
//
// A crash before (4) leaves the old snapshot + full log: recovery
// replays as if no compaction happened. A crash between (4) and (5)
// leaves the new snapshot + stale segments: recovery skips every
// record at or below the snapshot LSN. Either way, no state is lost
// and nothing is applied twice.
func (s *Store) Compact() error {
	return s.fs.Quiesce(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()

		// Quiesce + s.mu exclude every append source, so these barriers
		// are final: once they return the committers are provably idle
		// and the active segments can be sealed underneath them. A
		// degraded shard returns an error here — ignored, because the
		// snapshot about to be taken captures everything its log lost.
		for _, w := range s.wals {
			w.Barrier()
		}

		lsn := s.alloc.Load() // appends are excluded by s.mu + quiesce
		var img bytes.Buffer
		if err := s.fs.Save(&img); err != nil {
			return fmt.Errorf("durable: serializing tree: %w", err)
		}
		snap := snapFile{Version: snapFileVersion, LSN: lsn, Epoch: s.epoch, Dedupe: s.dedupe, FS: img.Bytes()}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
			return fmt.Errorf("durable: encoding snapshot: %w", err)
		}
		if err := s.publishSnapshotLocked(buf.Bytes(), lsn); err != nil {
			return err
		}
		for _, w := range s.wals {
			if err := w.resetForCompact(); err != nil {
				s.logf("durable: sealing wal shard after snapshot: %v", err)
			}
		}
		if s.shipSeq != nil {
			// Degraded shards may have dropped LSNs the sequencer is
			// still waiting on; the snapshot covers them, so skip ahead.
			s.shipSeq.skipTo(lsn)
		}
		s.pruneLocked()
		s.metrics.compactions.Inc()
		return nil
	})
}

// pruneLocked removes sealed segments whose records are all covered by
// the snapshot AND acked by every replication subscriber (RetainLSN).
// Caller holds s.mu.
func (s *Store) pruneLocked() {
	horizon := s.snapLSN
	if s.opts.RetainLSN != nil {
		if r := s.opts.RetainLSN(); r < horizon {
			horizon = r
		}
	}
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	kept := s.sealed[:0]
	for _, seg := range s.sealed {
		if seg.lastLSN > horizon {
			kept = append(kept, seg)
			continue
		}
		if err := os.Remove(seg.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.logf("durable: pruning %s: %v", seg.path, err)
			kept = append(kept, seg)
			continue
		}
		s.metrics.segsPruned.Inc()
		s.metrics.walSize.Add(-seg.size)
		s.metrics.walLive.Add(-seg.size)
		s.metrics.walSegments.Dec()
	}
	s.sealed = kept
}

// publishSnapshotLocked atomically publishes an encoded snapshot:
// snapshot.tmp written and fsynced, renamed over snapshot.img with a
// directory sync. Caller holds s.mu with appends excluded and handles
// the log (sealing, pruning) afterwards.
func (s *Store) publishSnapshotLocked(encoded []byte, lsn uint64) error {
	tmpPath := filepath.Join(s.dir, snapshotTmp)
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot tmp: %w", err)
	}
	if _, err := tmp.Write(encoded); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, SnapshotName)); err != nil {
		return fmt.Errorf("durable: publishing snapshot: %w", err)
	}
	syncDir(s.dir)
	s.snapLSN = lsn
	s.metrics.snapBytes.Set(int64(len(encoded)))
	return nil
}

// Close syncs and closes every shard's log. The store must not be used
// after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, w := range s.wals {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Horizon helpers shared by replication and admission control.

// DurableLSN reports the highest LSN through which the entire store is
// durable: every record at or below it, in every shard, is on stable
// storage. Computed as the allocator's position capped by each shard's
// lowest pending (queued, in-flight, or lost) LSN.
func (s *Store) DurableLSN() uint64 {
	horizon := s.alloc.Load()
	for _, w := range s.wals {
		if floor := w.pendingFloor(); floor != 0 && floor-1 < horizon {
			horizon = floor - 1
		}
	}
	return horizon
}
