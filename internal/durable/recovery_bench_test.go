package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// BenchmarkRecovery measures cold-start cost against history length,
// with and without a snapshot. The nosnap rows replay the full segment
// chain and scale with history; the snap rows carry the same histories
// compacted down to a fixed 50-record delta, so their cost must track
// the delta, not the history — the whole point of pruning segments
// below the snapshot LSN.
func BenchmarkRecovery(b *testing.B) {
	const delta = 50
	payload := []byte(strings.Repeat("r", 256))
	for _, history := range []int{1000, 4000} {
		for _, snap := range []string{"nosnap", "snap"} {
			b.Run(fmt.Sprintf("history=%d/%s", history, snap), func(b *testing.B) {
				dir := b.TempDir()
				s, err := Open(dir, Options{Owner: "alice"})
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < history; i++ {
					if err := s.FS().WriteFile(fmt.Sprintf("/f%d", i%128), payload, 0o644, "alice"); err != nil {
						b.Fatal(err)
					}
				}
				if snap == "snap" {
					if err := s.Compact(); err != nil {
						b.Fatal(err)
					}
					for i := 0; i < delta; i++ {
						if err := s.FS().WriteFile(fmt.Sprintf("/d%d", i), payload, 0o644, "alice"); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
				var replayed int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := Open(dir, Options{})
					if err != nil {
						b.Fatal(err)
					}
					replayed = s.Recovery().Replayed
					if err := s.Close(); err != nil {
						b.Fatal(err)
					}
					// Every Open starts a fresh (empty) active segment;
					// drop them outside the timer so iteration i does not
					// scan i segment files more than iteration 0 did.
					b.StopTimer()
					removeEmptySegments(b, dir)
					b.StartTimer()
				}
				b.ReportMetric(float64(replayed), "replayed/op")
			})
		}
	}
}

func removeEmptySegments(b *testing.B, dir string) {
	b.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range ents {
		if _, _, _, ok := parseSegmentName(e.Name()); !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			b.Fatal(err)
		}
		if info.Size() == 0 {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				b.Fatal(err)
			}
		}
	}
}
