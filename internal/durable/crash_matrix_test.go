package durable_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"identitybox/internal/acl"
	"identitybox/internal/auth"
	"identitybox/internal/chirp"
	"identitybox/internal/durable"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// startDurableServer opens (or recovers) the state directory and serves
// its file system over Chirp, with the store journaling every mutation
// and tokened reply. It returns the server, the store, and the count of
// sim executions on this incarnation's kernel.
func startDurableServer(t *testing.T, dir string) (*chirp.Server, *durable.Store, *atomic.Int64) {
	return startDurableServerOpts(t, dir, durable.Options{Owner: "owner"})
}

func startDurableServerOpts(t *testing.T, dir string, opts durable.Options) (*chirp.Server, *durable.Store, *atomic.Int64) {
	t.Helper()
	store, err := durable.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(store.FS(), vclock.Default())
	var execs atomic.Int64
	k.RegisterProgram("sim", func(p *kernel.Proc, args []string) int {
		execs.Add(1)
		in, err := p.ReadFile("input.dat")
		if err != nil {
			return 1
		}
		if err := p.WriteFile("out.dat", bytes.ToUpper(in), 0o644); err != nil {
			return 2
		}
		return 0
	})
	rootACL := &acl.ACL{}
	rootACL.Set("unix:admin", acl.All, acl.All)
	srv, err := chirp.NewServer(k, chirp.ServerOptions{
		Owner:         "owner",
		RootACL:       rootACL,
		Verifiers:     map[auth.Method]auth.Verifier{auth.MethodUnix: &auth.UnixVerifier{}},
		DedupeJournal: store,
		DedupeSeed:    store.DedupeEntries(),
		Durability:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); store.Close() })
	return srv, store, &execs
}

func adminDial(t *testing.T, srv *chirp.Server) *chirp.Client {
	t.Helper()
	cl, err := chirp.Dial(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// runFigure3 drives the Figure-3 workflow under base (normally "/work"):
// reserve the directory, edit its ACL (widen for a visitor, then narrow
// again), stage the simulation, execute it with a request token, and
// fetch the output. It returns the exec token.
func runFigure3(t *testing.T, cl *chirp.Client, base string) string {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cl.Mkdir(base, 0o755))
	wide := &acl.ACL{}
	wide.Set("unix:admin", acl.All, acl.All)
	wide.Set("unix:visitor", acl.Read|acl.List, acl.None)
	must(cl.SetACL(base, wide.String()))
	must(cl.PutFile(base+"/sim.exe", kernel.ExecutableBytes("sim"), 0o755))
	must(cl.PutFile(base+"/input.dat", []byte("signal data"), 0o644))
	narrow := &acl.ACL{}
	narrow.Set("unix:admin", acl.All, acl.All)
	must(cl.SetACL(base, narrow.String()))
	token := chirp.NewRequestToken()
	res, err := cl.ExecToken(token, base, base+"/sim.exe")
	must(err)
	if res.Code != 0 {
		t.Fatalf("sim exit code %d", res.Code)
	}
	out, err := cl.GetFile(base + "/out.dat")
	must(err)
	if string(out) != "SIGNAL DATA" {
		t.Fatalf("out.dat = %q", out)
	}
	return token
}

// dumpTree renders a file system into a canonical textual image (same
// scheme as the in-package tests, via the exported API only).
func dumpTree(t *testing.T, fs *vfs.FS) string {
	t.Helper()
	var lines []string
	var walk func(path string)
	walk = func(path string) {
		st, err := fs.Lstat(path)
		if err != nil {
			t.Fatalf("lstat %s: %v", path, err)
		}
		line := fmt.Sprintf("%s type=%d mode=%o owner=%s group=%s", path, st.Type, st.Mode, st.Owner, st.Group)
		switch {
		case st.IsDir():
			ents, err := fs.ReadDir(path)
			if err != nil {
				t.Fatalf("readdir %s: %v", path, err)
			}
			lines = append(lines, line)
			for _, e := range ents {
				walk(vfs.Join(path, e.Name))
			}
			return
		case st.Type == vfs.TypeSymlink:
			target, _ := fs.Readlink(path)
			line += " -> " + target
		default:
			data, err := fs.ReadFile(path)
			if err != nil {
				t.Fatalf("read %s: %v", path, err)
			}
			line += fmt.Sprintf(" content=%q", data)
		}
		lines = append(lines, line)
	}
	walk("/")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// applyMutation replays one journaled mutation through the public VFS
// API — an independent reimplementation of the store's replay, so the
// matrix does not trust the code under test to define its own oracle.
func applyMutation(t *testing.T, fs *vfs.FS, m vfs.Mutation) {
	t.Helper()
	var err error
	switch m.Op {
	case vfs.MutMkdir:
		err = fs.Mkdir(m.Path, m.Mode, m.Owner)
	case vfs.MutCreate:
		_, err = fs.Create(m.Path, m.Mode, m.Owner)
	case vfs.MutWrite:
		_, err = fs.WriteAt(m.Path, m.Data, m.Off)
	case vfs.MutTruncate:
		err = fs.Truncate(m.Path, m.Size)
	case vfs.MutUnlink:
		err = fs.Unlink(m.Path)
	case vfs.MutRmdir:
		err = fs.Rmdir(m.Path)
	case vfs.MutSymlink:
		err = fs.Symlink(m.Path2, m.Path, m.Owner)
	case vfs.MutLink:
		err = fs.Link(m.Path, m.Path2)
	case vfs.MutRename:
		err = fs.Rename(m.Path, m.Path2)
	case vfs.MutChmod:
		err = fs.Chmod(m.Path, m.Mode)
	case vfs.MutChown:
		err = fs.Chown(m.Path, m.Owner, m.Group)
	default:
		t.Fatalf("unknown op %d", m.Op)
	}
	if err != nil {
		t.Fatalf("reference replay of %v %s: %v", m.Op, m.Path, err)
	}
}

// collectACLs parses every ACL file in the tree, failing the test on
// any that does not parse (a partial ACL write must never survive
// recovery). It returns path -> canonical ACL text.
func collectACLs(t *testing.T, fs *vfs.FS) map[string]string {
	t.Helper()
	out := make(map[string]string)
	var walk func(path string)
	walk = func(path string) {
		ents, err := fs.ReadDir(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			child := vfs.Join(path, e.Name)
			if e.Type == vfs.TypeDir {
				walk(child)
				continue
			}
			if e.Name != acl.FileName {
				continue
			}
			data, err := fs.ReadFile(child)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := acl.Parse(string(data))
			if err != nil {
				t.Fatalf("ACL at %s does not parse after recovery: %v\n%q", child, err, data)
			}
			out[child] = parsed.String()
		}
	}
	walk("/")
	return out
}

// TestKillAtEveryWALOffset is the crash matrix: run the Figure-3
// workflow (plus ACL edits) against a durable server, then for every
// byte offset of the resulting WAL simulate a crash that preserved
// exactly that prefix, recover, and require the surviving state to be
// byte-identical to some prefix of the mutation history — in
// particular, every surviving ACL parses and matches a historical ACL
// state, so a partial record can never widen one.
func TestKillAtEveryWALOffset(t *testing.T) {
	liveDir := t.TempDir()
	srv, store, _ := startDurableServer(t, liveDir)
	cl := adminDial(t, srv)
	runFigure3(t, cl, "/work")
	cl.Close()
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	wal, err := durable.LogBytes(liveDir)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, torn := durable.DecodeAll(wal)
	if torn || len(recs) == 0 {
		t.Fatalf("workload log unusable: %d records, torn=%v", len(recs), torn)
	}
	t.Logf("workload produced %d WAL records, %d bytes", len(recs), len(wal))

	// Record end offsets, re-walking the frames independently.
	var ends []int
	off := 0
	for off < len(wal) {
		_, n, err := durable.DecodeRecord(wal[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
		ends = append(ends, off)
	}

	// Reference history: state dumps and ACL images after each record,
	// built through the public VFS API.
	ref := vfs.New("owner")
	dumps := []string{dumpTree(t, ref)}
	aclHistory := map[string]bool{} // every historical canonical ACL text
	for _, rec := range recs {
		if rec.IsMutation() {
			applyMutation(t, ref, rec.Mut)
		}
		dumps = append(dumps, dumpTree(t, ref))
		for _, text := range collectACLs(t, ref) {
			aclHistory[text] = true
		}
	}

	// The matrix: every byte offset is a crash point.
	cutDir := t.TempDir()
	for cut := 0; cut <= len(wal); cut++ {
		stateDir := filepath.Join(cutDir, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(stateDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(stateDir, durable.WALName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := durable.Open(stateDir, durable.Options{Owner: "owner"})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		k := 0
		for i, e := range ends {
			if e <= cut {
				k = i + 1
			}
		}
		if got := dumpTree(t, s.FS()); got != dumps[k] {
			t.Fatalf("cut %d: recovered state is not history prefix %d:\ngot:\n%s\nwant:\n%s", cut, k, got, dumps[k])
		}
		ri := s.Recovery()
		if ri.Unapplied != 0 {
			t.Fatalf("cut %d: %d records failed to replay: %s", cut, ri.Unapplied, ri)
		}
		wantTorn := cut != 0 && (k == 0 || ends[k-1] != cut)
		if ri.Torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v (%s)", cut, ri.Torn, wantTorn, ri)
		}
		// No ACL may survive in a state history never produced.
		for path, text := range collectACLs(t, s.FS()) {
			if !aclHistory[text] {
				t.Fatalf("cut %d: ACL at %s is not a historical state:\n%s", cut, path, text)
			}
		}
		s.Close()
		os.RemoveAll(stateDir)
	}
}

// TestRecoveredServerServesAndDedupes recovers from the full log of a
// killed server and proves (1) the Figure-3 outputs survived, (2) a
// retried exec token replays instead of re-executing, and (3) the
// recovered server completes a fresh workflow run.
func TestRecoveredServerServesAndDedupes(t *testing.T) {
	dir := t.TempDir()
	srv, store, execs := startDurableServer(t, dir)
	cl := adminDial(t, srv)
	token := runFigure3(t, cl, "/work")
	if execs.Load() != 1 {
		t.Fatalf("sim ran %d times, want 1", execs.Load())
	}
	// Kill without any orderly shutdown: the WAL (fsync-per-record) is
	// all that survives.
	cl.Close()
	srv.Close()
	store.Close()

	srv2, _, execs2 := startDurableServer(t, dir)
	cl2 := adminDial(t, srv2)
	// (1) The pre-crash output is still there.
	out, err := cl2.GetFile("/work/out.dat")
	if err != nil || string(out) != "SIGNAL DATA" {
		t.Fatalf("out.dat after recovery = %q, %v", out, err)
	}
	// (2) Retrying the same token must not re-execute.
	res, err := cl2.ExecToken(token, "/work", "/work/sim.exe")
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != 0 {
		t.Fatalf("replayed exec code = %d", res.Code)
	}
	if execs2.Load() != 0 {
		t.Fatalf("retried token re-executed %d times on the recovered server", execs2.Load())
	}
	// (3) A fresh workflow completes against the recovered server.
	runFigure3(t, cl2, "/rerun")
	if execs2.Load() != 1 {
		t.Fatalf("fresh workflow ran sim %d times, want 1", execs2.Load())
	}
}

// TestKillAtEverySegmentBoundary extends the crash matrix to the
// segmented log: the same workload runs with a rotation threshold small
// enough to spread its history over many segments, and a crash is
// simulated at every byte of every segment — full earlier segments on
// disk, the segment holding the crash point truncated there, later
// segments never created (exactly what a kill around a rotation
// leaves, including the boundaries themselves). Recovery must replay
// the surviving chain onto a history prefix, and no surviving ACL may
// widen.
func TestKillAtEverySegmentBoundary(t *testing.T) {
	liveDir := t.TempDir()
	srv, store, _ := startDurableServerOpts(t, liveDir, durable.Options{Owner: "owner", SegmentBytes: 192})
	cl := adminDial(t, srv)
	runFigure3(t, cl, "/work")
	cl.Close()
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	segPaths, err := filepath.Glob(filepath.Join(liveDir, "wal.c01.s00.*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segPaths) // fixed-width sequence numbers sort lexically
	if len(segPaths) < 3 {
		t.Fatalf("workload produced %d segments at a 192-byte limit; want a real chain", len(segPaths))
	}
	var chain [][]byte
	var wal []byte
	for _, p := range segPaths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, data)
		wal = append(wal, data...)
	}
	recs, _, torn := durable.DecodeAll(wal)
	if torn || len(recs) == 0 {
		t.Fatalf("workload log unusable: %d records, torn=%v", len(recs), torn)
	}
	t.Logf("workload produced %d records over %d segments, %d bytes", len(recs), len(chain), len(wal))

	// Record end offsets over the concatenated chain (rotation never
	// splits a record, so segment boundaries align with record ends).
	var ends []int
	off := 0
	for off < len(wal) {
		_, n, err := durable.DecodeRecord(wal[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
		ends = append(ends, off)
	}

	ref := vfs.New("owner")
	dumps := []string{dumpTree(t, ref)}
	aclHistory := map[string]bool{}
	for _, rec := range recs {
		if rec.IsMutation() {
			applyMutation(t, ref, rec.Mut)
		}
		dumps = append(dumps, dumpTree(t, ref))
		for _, text := range collectACLs(t, ref) {
			aclHistory[text] = true
		}
	}

	cutDir := t.TempDir()
	for cut := 0; cut <= len(wal); cut++ {
		stateDir := filepath.Join(cutDir, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(stateDir, 0o755); err != nil {
			t.Fatal(err)
		}
		// Materialize the crash image: whole segments below the cut, the
		// cut segment truncated, everything after it nonexistent.
		rem := cut
		for i, seg := range chain {
			if rem <= 0 {
				break
			}
			n := len(seg)
			if rem < n {
				n = rem
			}
			if err := os.WriteFile(filepath.Join(stateDir, filepath.Base(segPaths[i])), seg[:n], 0o644); err != nil {
				t.Fatal(err)
			}
			rem -= n
		}
		s, err := durable.Open(stateDir, durable.Options{Owner: "owner"})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		k := 0
		for i, e := range ends {
			if e <= cut {
				k = i + 1
			}
		}
		if got := dumpTree(t, s.FS()); got != dumps[k] {
			t.Fatalf("cut %d: recovered state is not history prefix %d:\ngot:\n%s\nwant:\n%s", cut, k, got, dumps[k])
		}
		ri := s.Recovery()
		if ri.Unapplied != 0 {
			t.Fatalf("cut %d: %d records failed to replay: %s", cut, ri.Unapplied, ri)
		}
		wantTorn := cut != 0 && (k == 0 || ends[k-1] != cut)
		if ri.Torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v (%s)", cut, ri.Torn, wantTorn, ri)
		}
		for path, text := range collectACLs(t, s.FS()) {
			if !aclHistory[text] {
				t.Fatalf("cut %d: ACL at %s is not a historical state:\n%s", cut, path, text)
			}
		}
		s.Close()
		os.RemoveAll(stateDir)
	}
}
