package durable

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"identitybox/internal/faultdisk"
	"identitybox/internal/vfs"
)

// TestGroupCommitLSNsMonotoneInCommitOrder: N goroutines mutate through
// the vfs concurrently; the log the committer wrote must carry every
// record with strictly contiguous LSNs in commit order, and replaying
// it must rebuild the exact final state.
func TestGroupCommitLSNsMonotoneInCommitOrder(t *testing.T) {
	const (
		writers = 8
		files   = 25
	)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			root := fmt.Sprintf("/w%d", g)
			if err := s.FS().Mkdir(root, 0o755, "alice"); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < files; i++ {
				path := fmt.Sprintf("%s/f%d", root, i)
				if _, err := s.FS().Create(path, 0o644, "alice"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.FS().WriteAt(path, []byte(fmt.Sprintf("g%d i%d", g, i)), 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	live := dumpFS(t, s.FS())
	if err := s.Close(); err != nil { // drains the pipeline
		t.Fatal(err)
	}

	data, err := LogBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, torn := DecodeAll(data)
	if torn {
		t.Fatal("clean shutdown left a torn log")
	}
	want := writers * (1 + 2*files)
	if len(recs) != want {
		t.Fatalf("log holds %d records, want %d", len(recs), want)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d: commit order not contiguous", i, rec.LSN)
		}
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	if got := dumpFS(t, s2.FS()); got != live {
		t.Fatal("replayed state differs from the live state the log recorded")
	}
}

// TestGroupCommitAckedSurvivesCrashAtGroupBoundary: concurrent writers
// acknowledge an op only after Barrier reports its group durable; a
// disk crash at an arbitrary group boundary may lose unacknowledged
// work, but never an acked op.
func TestGroupCommitAckedSurvivesCrashAtGroupBoundary(t *testing.T) {
	for crashAt := 1; crashAt <= 10; crashAt++ {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crash-write-%d", crashAt), func(t *testing.T) {
			d := faultdisk.New(int64(100+crashAt), faultdisk.Rule{AfterWrites: crashAt, Action: faultdisk.Crash})
			dir := t.TempDir()
			s := openStore(t, dir, faultOpts(d))

			const writers = 4
			var mu sync.Mutex
			acked := map[string]string{} // path -> content known durable
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						path := fmt.Sprintf("/g%d_%d", g, i)
						content := fmt.Sprintf("payload %d/%d", g, i)
						if _, err := s.FS().Create(path, 0o644, "alice"); err != nil {
							t.Error(err)
							return
						}
						if _, err := s.FS().WriteAt(path, []byte(content), 0); err != nil {
							t.Error(err)
							return
						}
						if err := s.Barrier(); err != nil {
							return // crash: this op was never acknowledged
						}
						mu.Lock()
						acked[path] = content
						mu.Unlock()
					}
				}(g)
			}
			wg.Wait()
			if !d.Crashed() {
				t.Fatal("crash rule never fired")
			}
			s.Close()

			s2 := openStore(t, dir, Options{})
			defer s2.Close()
			ri := s2.Recovery()
			if ri.Unapplied != 0 {
				t.Fatalf("replay failed for %d records: %s", ri.Unapplied, ri)
			}
			for path, content := range acked {
				got, err := s2.FS().ReadFile(path)
				if err != nil {
					t.Fatalf("acked op lost: %s: %v (%s)", path, err, ri)
				}
				if string(got) != content {
					t.Fatalf("acked op corrupted: %s = %q, want %q", path, got, content)
				}
			}
		})
	}
}

// blockFile parks the first Write until released, so a test can pile
// records into the commit queue while a group commit is in flight.
type blockFile struct {
	entered chan struct{}
	release chan struct{}
	first   atomic.Bool
}

func (f *blockFile) Write(p []byte) (int, error) {
	if f.first.CompareAndSwap(false, true) {
		close(f.entered)
		<-f.release
	}
	return len(p), nil
}
func (f *blockFile) Sync() error  { return nil }
func (f *blockFile) Close() error { return nil }

// TestGroupCommitCoalesces: records appended while a group commit is in
// flight all land in the next group — one write + one fsync for all of
// them, not one each.
func TestGroupCommitCoalesces(t *testing.T) {
	f := &blockFile{entered: make(chan struct{}), release: make(chan struct{})}
	w := NewWAL(f, 1, 0, 1)
	var mu sync.Mutex
	var groups []int
	w.StartGroupCommit(GroupConfig{OnGroup: func(recs, _ int, _ time.Duration) {
		mu.Lock()
		groups = append(groups, recs)
		mu.Unlock()
	}})
	rec := Record{Type: DedupeType, DedupeKey: "k", DedupeReply: []string{"ok"}}

	if _, err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	<-f.entered // the committer is mid-write on a 1-record group
	const backlog = 63
	for i := 0; i < backlog; i++ {
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	close(f.release)
	if err := w.Barrier(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(groups) != 2 || groups[0] != 1 || groups[1] != backlog {
		t.Fatalf("group sizes = %v, want [1 %d] (backlog not coalesced)", groups, backlog)
	}
	w.Close()
}

// TestWaitDurablePastErrorHorizon: a record that reached stable storage
// keeps reporting success even after a later group fails; records after
// the failure report the sticky error.
func TestWaitDurablePastErrorHorizon(t *testing.T) {
	dir := t.TempDir()
	f, err := defaultOpenAppend(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	var fail atomic.Bool
	w := NewWAL(&gateFile{f: f, fail: &fail}, 1, 0, 1)
	w.StartGroupCommit(GroupConfig{})
	rec := Record{Type: DedupeType, DedupeKey: "k", DedupeReply: []string{"ok"}}

	lsn1, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn1); err != nil {
		t.Fatal(err)
	}
	fail.Store(true)
	lsn2, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn2); err == nil {
		t.Fatal("failed group's waiter did not get the error")
	}
	if err := w.WaitDurable(lsn1); err != nil {
		t.Fatalf("already-durable record reports %v after a later failure", err)
	}
	if w.Err() == nil {
		t.Fatal("sticky error not reported")
	}
	w.Close()
}

// collectFile records everything written, for decoding after Close.
type collectFile struct{ buf []byte }

func (f *collectFile) Write(p []byte) (int, error) { f.buf = append(f.buf, p...); return len(p), nil }
func (f *collectFile) Sync() error                 { return nil }
func (f *collectFile) Close() error                { return nil }

// TestGroupCommitCloseDrainsQueue: Close must commit everything queued
// before the file is closed — no unacked-but-accepted record is simply
// dropped on shutdown.
func TestGroupCommitCloseDrainsQueue(t *testing.T) {
	f := &collectFile{}
	w := NewWAL(f, 1, 0, 1)
	w.StartGroupCommit(GroupConfig{Window: time.Millisecond})
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := w.Append(Record{Type: DedupeType, DedupeKey: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, torn := DecodeAll(f.buf)
	if torn {
		t.Fatal("close left a torn log")
	}
	if len(recs) != n {
		t.Fatalf("close drained %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, rec.LSN)
		}
	}
}

// BenchmarkGroupCommit measures durable append throughput with fsync
// enabled: group mode (commit pipeline, Append + WaitDurable) against
// the synchronous per-record-fsync baseline, at 1/4/16/64 writers. The
// recs/group metric shows how much coalescing the load produced; the
// 64-writer row checks that coalescing keeps per-op cost near the
// 16-writer row instead of collapsing under contention.
func BenchmarkGroupCommit(b *testing.B) {
	payload := make([]byte, 256)
	for _, writers := range []int{1, 4, 16, 64} {
		for _, mode := range []string{"group", "sync"} {
			b.Run(fmt.Sprintf("%s/writers=%d", mode, writers), func(b *testing.B) {
				f, err := defaultOpenAppend(filepath.Join(b.TempDir(), "wal"))
				if err != nil {
					b.Fatal(err)
				}
				w := NewWAL(f, 1, 0, 1)
				var groups, recs atomic.Int64
				if mode == "group" {
					w.StartGroupCommit(GroupConfig{
						Window: DefaultCommitWindow,
						OnGroup: func(r, _ int, _ time.Duration) {
							groups.Add(1)
							recs.Add(int64(r))
						},
					})
				}
				rec := Record{Type: uint8(vfs.MutWrite), Mut: vfs.Mutation{Op: vfs.MutWrite, Path: "/f", Data: payload}}
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < writers; g++ {
					n := b.N / writers
					if g < b.N%writers {
						n++
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							lsn, err := w.Append(rec)
							if err != nil {
								b.Error(err)
								return
							}
							if err := w.WaitDurable(lsn); err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
				wg.Wait()
				b.StopTimer()
				if g := groups.Load(); g > 0 {
					b.ReportMetric(float64(recs.Load())/float64(g), "recs/group")
				}
				w.Close()
			})
		}
	}
}

// simFile models one WAL segment on a bandwidth-limited device with an
// independent flush queue per segment chain (striped volumes, NVMe
// namespaces): a flush costs a fixed command latency plus the unsynced
// bytes at the device's sustained write bandwidth. The data itself
// stays in memory, which makes the benchmark deterministic — the host
// filesystem's journal (ext4 jbd2 serializes concurrent fsyncs
// device-wide) would otherwise measure the host, not the commit
// pipeline. Costs sit well above the scheduler's ~1ms sleep
// granularity so the model, not the timer, sets the floor.
type simFile struct {
	mu       sync.Mutex
	unsynced int
}

const (
	simSyncLatency = 2 * time.Millisecond // per-flush command cost
	simBytesPerUS  = 32                   // 32 MB/s sustained write bandwidth
)

func (f *simFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.unsynced += len(p)
	f.mu.Unlock()
	return len(p), nil
}

func (f *simFile) Sync() error {
	f.mu.Lock()
	n := f.unsynced
	f.unsynced = 0
	f.mu.Unlock()
	time.Sleep(simSyncLatency + time.Duration(n/simBytesPerUS)*time.Microsecond)
	return nil
}

func (f *simFile) Close() error { return nil }

// evenRoots picks writer subtrees that rendezvous-hash evenly across
// the shard count, so the benchmark measures pipeline scaling rather
// than the luck of the draw on a handful of names (real deployments
// have enough subtrees for the hash to even out).
func evenRoots(writers, shards int) []string {
	per := writers / shards
	count := make([]int, shards)
	roots := make([]string, 0, writers)
	for i := 0; len(roots) < writers; i++ {
		name := fmt.Sprintf("/w%d", i)
		if sh := vfs.ShardOf(name, shards); count[sh] < per {
			count[sh]++
			roots = append(roots, name)
		}
	}
	return roots
}

// BenchmarkGroupCommitStore measures the full store pipeline — vfs
// mutation + journal append + per-op durability barrier — with the
// commit pipeline unsharded vs sharded per top-level subtree, on the
// simulated device above. Writers stay on disjoint subtrees, so the
// sharded rows split the serial write+flush data plane across
// independent committer goroutines and segment chains; the acceptance
// bar is sharded ≥ 3× unsharded throughput at 16 writers, with the
// 64-writer per-op cost within 1.5× of the 16-writer row. The
// payload is sized so the flush cost is data-dominated — the regime
// where a single committer's serial data plane is the bottleneck;
// when a fixed per-flush latency dominates instead, unsharded group
// commit already amortizes it and sharding buys commit latency, not
// throughput.
func BenchmarkGroupCommitStore(b *testing.B) {
	payload := make([]byte, 64<<10)
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"store-unsharded", 1},
		{"store-sharded", 8},
	} {
		for _, writers := range []int{16, 64} {
			b.Run(fmt.Sprintf("%s/writers=%d", cfg.name, writers), func(b *testing.B) {
				dir := b.TempDir()
				s, err := Open(dir, Options{
					Owner:        "alice",
					Shards:       cfg.shards,
					CommitWindow: -1, // closed loop: groups form from queue pressure alone
					OpenAppend:   func(string) (File, error) { return &simFile{}, nil },
				})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				roots := evenRoots(writers, 8)
				paths := make([]string, writers)
				for g := 0; g < writers; g++ {
					if err := s.FS().Mkdir(roots[g], 0o755, "alice"); err != nil {
						b.Fatal(err)
					}
					paths[g] = roots[g] + "/f"
					if _, err := s.FS().Create(paths[g], 0o644, "alice"); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.Barrier(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < writers; g++ {
					n := b.N / writers
					if g < b.N%writers {
						n++
					}
					wg.Add(1)
					go func(g, n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if _, err := s.FS().WriteAt(paths[g], payload, 0); err != nil {
								b.Error(err)
								return
							}
							if err := s.BarrierPath(paths[g]); err != nil {
								b.Error(err)
								return
							}
						}
					}(g, n)
				}
				wg.Wait()
				b.StopTimer()
			})
		}
	}
}
