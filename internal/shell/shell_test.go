package shell

import (
	"strings"
	"testing"

	"identitybox/internal/acl"
	"identitybox/internal/core"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

func shellWorld(t *testing.T) *kernel.Kernel {
	t.Helper()
	fs := vfs.New(kernel.RootAccount)
	fs.Chmod("/", 0o777)
	fs.MkdirAll("/tmp", 0o777, kernel.RootAccount)
	return kernel.New(fs, vclock.Default())
}

// runScript executes a script natively as the given account, returning
// output and status.
func runScript(t *testing.T, k *kernel.Kernel, account, script string) (string, int) {
	t.Helper()
	var out strings.Builder
	sh := New(&out)
	st := k.Run(kernel.ProcSpec{Account: account}, sh.Program(script))
	return out.String(), st.Code
}

func TestEchoCatRoundTrip(t *testing.T) {
	k := shellWorld(t)
	out, code := runScript(t, k, "u", `
		echo hello world > f.txt
		cat f.txt
		echo again >> f.txt
		cat f.txt
	`)
	if code != 0 {
		t.Fatalf("status = %d, out:\n%s", code, out)
	}
	want := "hello world\nhello world\nagain\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestLsAndMkdir(t *testing.T) {
	k := shellWorld(t)
	out, code := runScript(t, k, "u", `
		mkdir d
		touch d/b d/a
		ls d
	`)
	if code != 0 {
		t.Fatalf("status = %d: %s", code, out)
	}
	if out != "a\nb\n" {
		t.Fatalf("ls out = %q", out)
	}
	out, _ = runScript(t, k, "u", "ls -l d")
	if !strings.Contains(out, "a") || !strings.Contains(out, "u") {
		t.Fatalf("ls -l out = %q", out)
	}
}

func TestCpMvRm(t *testing.T) {
	k := shellWorld(t)
	out, code := runScript(t, k, "u", `
		echo data > a
		cp a b
		mv b c
		cat c
		rm a c
		cat a
	`)
	if code != 1 {
		t.Fatalf("final cat of removed file should fail; out:\n%s", out)
	}
	if !strings.Contains(out, "data\n") || !strings.Contains(out, "No such file") {
		t.Fatalf("out = %q", out)
	}
}

func TestCdPwd(t *testing.T) {
	k := shellWorld(t)
	out, code := runScript(t, k, "u", `
		mkdir /w
		cd /w
		pwd
		echo x > rel
		stat /w/rel
	`)
	if code != 0 {
		t.Fatalf("status = %d: %s", code, out)
	}
	if !strings.Contains(out, "/w\n") {
		t.Fatalf("pwd missing: %q", out)
	}
}

func TestLnAndStat(t *testing.T) {
	k := shellWorld(t)
	out, code := runScript(t, k, "u", `
		echo x > orig
		ln orig hard
		ln -s orig soft
		stat hard
	`)
	if code != 0 {
		t.Fatalf("status = %d: %s", code, out)
	}
	if !strings.Contains(out, "Links: 2") {
		t.Fatalf("stat output = %q", out)
	}
}

func TestChmodDeniesAfter(t *testing.T) {
	k := shellWorld(t)
	runScript(t, k, "alice", "echo top > secret\nchmod 600 secret")
	out, code := runScript(t, k, "bob", "cat /secret")
	if code != 1 || !strings.Contains(out, "Permission denied") {
		t.Fatalf("bob's cat = %d, %q", code, out)
	}
}

func TestUnknownCommand(t *testing.T) {
	k := shellWorld(t)
	out, code := runScript(t, k, "u", "frobnicate")
	if code != 127 || !strings.Contains(out, "command not found") {
		t.Fatalf("= %d, %q", code, out)
	}
}

func TestStopOnError(t *testing.T) {
	k := shellWorld(t)
	var out strings.Builder
	sh := New(&out)
	sh.StopOnError = true
	st := k.Run(kernel.ProcSpec{Account: "u"}, sh.Program("cat missing\necho never"))
	if st.Code != 1 {
		t.Fatalf("status = %d", st.Code)
	}
	if strings.Contains(out.String(), "never") {
		t.Fatal("script continued past failure")
	}
}

func TestEchoPrompt(t *testing.T) {
	k := shellWorld(t)
	var out strings.Builder
	sh := New(&out)
	sh.Echo = true
	k.Run(kernel.ProcSpec{Account: "u"}, sh.Program("pwd"))
	if !strings.HasPrefix(out.String(), "% pwd\n") {
		t.Fatalf("transcript = %q", out.String())
	}
}

// TestFigure2ViaShell drives the Figure-2 session through the shell
// inside a real identity box — the closest this reproduction gets to
// the paper's screenshot.
func TestFigure2ViaShell(t *testing.T) {
	fs := vfs.New(kernel.RootAccount)
	k := kernel.New(fs, vclock.Default())
	fs.MkdirAll("/etc", 0o755, kernel.RootAccount)
	fs.WriteFile("/etc/passwd", []byte("dthain:x:1000:1000::/home/dthain:/bin/tcsh\n"), 0o644, kernel.RootAccount)
	fs.MkdirAll("/home/dthain", 0o755, "dthain")
	fs.WriteFile("/home/dthain/secret", []byte("private\n"), 0o600, "dthain")
	fs.MkdirAll("/tmp", 0o777, kernel.RootAccount)

	box, err := core.New(k, "dthain", "Freddy", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh := New(&out)
	st := box.Run(sh.Program(`
		whoami
		cat /home/dthain/secret
		echo freddy wuz here > mydata
		cat mydata
		getacl
	`))
	if st.Code != 1 && st.Code != 0 {
		t.Fatalf("status = %d", st.Code)
	}
	text := out.String()
	if !strings.Contains(text, "Freddy\n") {
		t.Errorf("whoami missing: %q", text)
	}
	if !strings.Contains(text, "cat: /home/dthain/secret: Permission denied") {
		t.Errorf("secret not denied: %q", text)
	}
	if !strings.Contains(text, "freddy wuz here") {
		t.Errorf("mydata missing: %q", text)
	}
	if !strings.Contains(text, "Freddy rwlax") {
		t.Errorf("home ACL missing: %q", text)
	}
}

// TestShellSharingScenario: Fred shares a directory with George through
// setacl, all via shell commands in two boxes.
func TestShellSharingScenario(t *testing.T) {
	fs := vfs.New(kernel.RootAccount)
	k := kernel.New(fs, vclock.Default())
	fs.MkdirAll("/tmp", 0o777, kernel.RootAccount)
	fs.MkdirAll("/proj", 0o700, "dthain")
	a := &acl.ACL{}
	a.Set("Fred", acl.All, acl.None)
	fs.WriteFile("/proj/"+acl.FileName, []byte(a.String()), 0o644, "dthain")

	fred, _ := core.New(k, "dthain", "Fred", core.Options{})
	var out1 strings.Builder
	st := fred.Run(New(&out1).Program(`
		cd /proj
		echo results > data.txt
		setacl /proj George rl
	`))
	if st.Code != 0 {
		t.Fatalf("fred's script failed: %s", out1.String())
	}

	george, _ := core.New(k, "dthain", "George", core.Options{})
	var out2 strings.Builder
	st = george.Run(New(&out2).Program(`
		cat /proj/data.txt
		echo sneaky > /proj/evil.txt
	`))
	if !strings.Contains(out2.String(), "results\n") {
		t.Errorf("george cannot read shared file: %q", out2.String())
	}
	if !strings.Contains(out2.String(), "Permission denied") {
		t.Errorf("george's write should be denied: %q", out2.String())
	}
	if st.Code != 1 {
		t.Errorf("final status = %d", st.Code)
	}
}
