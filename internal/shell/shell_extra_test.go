package shell

import (
	"strings"
	"testing"

	"identitybox/internal/kernel"
)

// Usage and error-path coverage for every command.

func out(t *testing.T, script string) (string, int) {
	t.Helper()
	k := shellWorld(t)
	return runScript(t, k, "u", script)
}

func TestUsageErrors(t *testing.T) {
	cases := []string{
		"cd",           // missing arg
		"cd a b",       // too many
		"cat",          // no files
		"cp one",       // one arg
		"mv one",       // one arg
		"rm",           // no files
		"mkdir",        // no dirs
		"ln onlyone",   // one arg
		"ln -s single", // one arg after flag
		"stat",         // no arg
		"chmod 644",    // missing file
		"chmod zz f",   // bad mode
		"setacl d p",   // missing rights
		"echo a >",     // dangling redirect
	}
	for _, c := range cases {
		o, code := out(t, c)
		if code == 0 {
			t.Errorf("%q succeeded; output %q", c, o)
		}
	}
}

func TestTrueFalseAndComments(t *testing.T) {
	o, code := out(t, "# comment only\ntrue\n\nfalse")
	if code != 1 || o != "" {
		t.Fatalf("= %d, %q", code, o)
	}
	if _, code := out(t, "true"); code != 0 {
		t.Fatal("true failed")
	}
}

func TestIdCommand(t *testing.T) {
	o, code := out(t, "id")
	if code != 0 || !strings.Contains(o, "uid=u") {
		t.Fatalf("id = %d, %q", code, o)
	}
}

func TestLnHardAndErrors(t *testing.T) {
	o, code := out(t, "echo x > f\nln f g\nstat g\nln missing h")
	if code != 1 {
		t.Fatalf("last ln should fail: %q", o)
	}
	if !strings.Contains(o, "Links: 2") {
		t.Fatalf("hard link stat missing: %q", o)
	}
}

func TestRmdirCommand(t *testing.T) {
	o, code := out(t, "mkdir d\nrmdir d\nrmdir d")
	if code != 1 || !strings.Contains(o, "No such file") {
		t.Fatalf("= %d, %q", code, o)
	}
}

func TestLsOfMissingDir(t *testing.T) {
	o, code := out(t, "ls /nope")
	if code != 1 || !strings.Contains(o, "No such file") {
		t.Fatalf("= %d, %q", code, o)
	}
}

func TestCpSourceMissing(t *testing.T) {
	_, code := out(t, "cp ghost dst")
	if code != 1 {
		t.Fatal("cp of missing source should fail")
	}
}

func TestSetaclGetaclNative(t *testing.T) {
	// Natively (no box), setacl works when the account owns the dir.
	o, code := out(t, `
		mkdir proj
		setacl proj Friend rl
		getacl proj
	`)
	if code != 0 {
		t.Fatalf("= %d, %q", code, o)
	}
	if !strings.Contains(o, "Friend rl") {
		t.Fatalf("getacl output = %q", o)
	}
	// Malformed rights are refused with a usage error.
	o, code = out(t, "mkdir p2\nsetacl p2 Friend zz")
	if code != 2 || !strings.Contains(o, "bad rights") {
		t.Fatalf("= %d, %q", code, o)
	}
}

func TestEchoAppendRedirect(t *testing.T) {
	o, code := out(t, "echo a > f\necho b >> f\ncat f")
	if code != 0 || o != "a\nb\n" {
		t.Fatalf("= %d, %q", code, o)
	}
}

func TestShellProgramExitStatus(t *testing.T) {
	k := shellWorld(t)
	var sb strings.Builder
	st := k.Run(kernel.ProcSpec{Account: "u"}, New(&sb).Program("false"))
	if st.Code != 1 {
		t.Fatalf("program status = %d", st.Code)
	}
}
