// Package shell implements a small command interpreter that runs as a
// simulated process, providing the coreutils-style programs the paper
// reports using daily under Parrot (cat, ls, cp, mv, rm, mkdir, ln,
// chmod, whoami, ...). It exists so examples and tests can drive an
// identity box the way Figure 2's interactive session does — through an
// actual shell issuing actual system calls — rather than through
// hand-written Go.
//
// Supported grammar, one command per line:
//
//	echo WORDS... [> FILE | >> FILE]
//	cat FILE...
//	ls [DIR]
//	cp SRC DST | mv SRC DST | rm FILE... | ln [-s] TARGET LINK
//	mkdir DIR... | rmdir DIR...
//	cd DIR | pwd | whoami | id
//	stat FILE | chmod MODE FILE | touch FILE
//	getacl [DIR] | setacl DIR PATTERN RIGHTS
//	true | false | # comment
//
// Each command's exit status follows Unix convention; Run returns the
// status of the last command (or the first failure when StopOnError).
package shell

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"identitybox/internal/acl"
	"identitybox/internal/kernel"
	"identitybox/internal/vfs"
)

// Shell interprets commands against a simulated process.
type Shell struct {
	// Out receives command output (stdout and stderr interleaved, as a
	// terminal would show them).
	Out io.Writer
	// Echo prints each command line with a "% " prompt before running
	// it, producing Figure-2-style transcripts.
	Echo bool
	// StopOnError aborts a script at the first failing command.
	StopOnError bool
}

// New creates a shell writing to out.
func New(out io.Writer) *Shell { return &Shell{Out: out} }

// Run executes a script line by line and returns the final status.
func (s *Shell) Run(p *kernel.Proc, script string) int {
	status := 0
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if s.Echo {
			fmt.Fprintf(s.Out, "%% %s\n", line)
		}
		status = s.Exec(p, line)
		if status != 0 && s.StopOnError {
			return status
		}
	}
	return status
}

// Exec runs a single command line.
func (s *Shell) Exec(p *kernel.Proc, line string) int {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "true":
		return 0
	case "false":
		return 1
	case "echo":
		return s.echo(p, args)
	case "cat":
		return s.cat(p, args)
	case "ls":
		return s.ls(p, args)
	case "cp":
		return s.cp(p, args)
	case "mv":
		return s.simple2(p, "mv", args, p.Rename)
	case "rm":
		return s.each(p, "rm", args, p.Unlink)
	case "mkdir":
		return s.each(p, "mkdir", args, func(d string) error { return p.Mkdir(d, 0o755) })
	case "rmdir":
		return s.each(p, "rmdir", args, p.Rmdir)
	case "ln":
		return s.ln(p, args)
	case "cd":
		if len(args) != 1 {
			return s.usage("cd DIR")
		}
		if err := p.Chdir(args[0]); err != nil {
			return s.fail("cd", args[0], err)
		}
		return 0
	case "pwd":
		fmt.Fprintln(s.Out, p.Getcwd())
		return 0
	case "whoami":
		fmt.Fprintln(s.Out, p.GetUserName())
		return 0
	case "id":
		fmt.Fprintf(s.Out, "uid=%s pid=%d\n", p.GetUserName(), p.Getpid())
		return 0
	case "stat":
		return s.stat(p, args)
	case "chmod":
		return s.chmod(p, args)
	case "touch":
		return s.each(p, "touch", args, func(f string) error {
			fd, err := p.Open(f, kernel.OWronly|kernel.OCreat, 0o644)
			if err != nil {
				return err
			}
			return p.Close(fd)
		})
	case "getacl":
		dir := "."
		if len(args) > 0 {
			dir = args[0]
		}
		text, err := p.GetACL(dir)
		if err != nil {
			return s.fail("getacl", dir, err)
		}
		fmt.Fprint(s.Out, text)
		return 0
	case "setacl":
		return s.setacl(p, args)
	default:
		fmt.Fprintf(s.Out, "%s: command not found\n", cmd)
		return 127
	}
}

func (s *Shell) usage(u string) int {
	fmt.Fprintf(s.Out, "usage: %s\n", u)
	return 2
}

// fail prints a Unix-style error message and returns status 1.
func (s *Shell) fail(cmd, arg string, err error) int {
	msg := err.Error()
	switch {
	case errors.Is(err, vfs.ErrPermission):
		msg = "Permission denied"
	case errors.Is(err, vfs.ErrNotExist):
		msg = "No such file or directory"
	case errors.Is(err, vfs.ErrIsDir):
		msg = "Is a directory"
	case errors.Is(err, vfs.ErrNotDir):
		msg = "Not a directory"
	case errors.Is(err, vfs.ErrNotEmpty):
		msg = "Directory not empty"
	case errors.Is(err, vfs.ErrExist):
		msg = "File exists"
	}
	fmt.Fprintf(s.Out, "%s: %s: %s\n", cmd, arg, msg)
	return 1
}

func (s *Shell) each(p *kernel.Proc, cmd string, args []string, f func(string) error) int {
	if len(args) == 0 {
		return s.usage(cmd + " FILE...")
	}
	status := 0
	for _, a := range args {
		if err := f(a); err != nil {
			status = s.fail(cmd, a, err)
		}
	}
	return status
}

func (s *Shell) simple2(p *kernel.Proc, cmd string, args []string, f func(a, b string) error) int {
	if len(args) != 2 {
		return s.usage(cmd + " SRC DST")
	}
	if err := f(args[0], args[1]); err != nil {
		return s.fail(cmd, args[0], err)
	}
	return 0
}

func (s *Shell) echo(p *kernel.Proc, args []string) int {
	// Detect > / >> redirection.
	mode := 0
	target := ""
	for i, a := range args {
		if a == ">" || a == ">>" {
			if i+1 >= len(args) {
				return s.usage("echo WORDS > FILE")
			}
			target = args[i+1]
			if a == ">>" {
				mode = kernel.OAppend
			}
			args = args[:i]
			break
		}
	}
	text := strings.Join(args, " ") + "\n"
	if target == "" {
		fmt.Fprint(s.Out, text)
		return 0
	}
	flags := kernel.OWronly | kernel.OCreat
	if mode == kernel.OAppend {
		flags |= kernel.OAppend
	} else {
		flags |= kernel.OTrunc
	}
	fd, err := p.Open(target, flags, 0o644)
	if err != nil {
		return s.fail("echo", target, err)
	}
	if _, err := p.Write(fd, []byte(text)); err != nil {
		p.Close(fd)
		return s.fail("echo", target, err)
	}
	if err := p.Close(fd); err != nil {
		return s.fail("echo", target, err)
	}
	return 0
}

func (s *Shell) cat(p *kernel.Proc, args []string) int {
	if len(args) == 0 {
		return s.usage("cat FILE...")
	}
	status := 0
	for _, f := range args {
		data, err := p.ReadFile(f)
		if err != nil {
			status = s.fail("cat", f, err)
			continue
		}
		s.Out.Write(data)
	}
	return status
}

func (s *Shell) ls(p *kernel.Proc, args []string) int {
	dir := "."
	long := false
	for _, a := range args {
		if a == "-l" {
			long = true
		} else {
			dir = a
		}
	}
	ents, err := p.ReadDir(dir)
	if err != nil {
		return s.fail("ls", dir, err)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		if long {
			// Keep the path relative when dir is relative, so the
			// process's cwd applies (vfs.Join would absolutize it).
			st, err := p.Lstat(strings.TrimSuffix(dir, "/") + "/" + e.Name)
			if err != nil {
				fmt.Fprintf(s.Out, "?????????? %s\n", e.Name)
				continue
			}
			fmt.Fprintf(s.Out, "%s %4o %-10s %8d %s\n", typeChar(st.Type), st.Mode, st.Owner, st.Size, e.Name)
		} else {
			fmt.Fprintln(s.Out, e.Name)
		}
	}
	return 0
}

func typeChar(t vfs.FileType) string {
	switch t {
	case vfs.TypeDir:
		return "d"
	case vfs.TypeSymlink:
		return "l"
	default:
		return "-"
	}
}

func (s *Shell) cp(p *kernel.Proc, args []string) int {
	if len(args) != 2 {
		return s.usage("cp SRC DST")
	}
	data, err := p.ReadFile(args[0])
	if err != nil {
		return s.fail("cp", args[0], err)
	}
	if err := p.WriteFile(args[1], data, 0o644); err != nil {
		return s.fail("cp", args[1], err)
	}
	return 0
}

func (s *Shell) ln(p *kernel.Proc, args []string) int {
	symlink := false
	if len(args) > 0 && args[0] == "-s" {
		symlink = true
		args = args[1:]
	}
	if len(args) != 2 {
		return s.usage("ln [-s] TARGET LINK")
	}
	var err error
	if symlink {
		err = p.Symlink(args[0], args[1])
	} else {
		err = p.Link(args[0], args[1])
	}
	if err != nil {
		return s.fail("ln", args[1], err)
	}
	return 0
}

func (s *Shell) stat(p *kernel.Proc, args []string) int {
	if len(args) != 1 {
		return s.usage("stat FILE")
	}
	st, err := p.Stat(args[0])
	if err != nil {
		return s.fail("stat", args[0], err)
	}
	fmt.Fprintf(s.Out, "  File: %s\n  Size: %d\n  Type: %s\n  Mode: %04o\n Owner: %s\n Links: %d\n",
		args[0], st.Size, st.Type, st.Mode, st.Owner, st.Nlink)
	return 0
}

func (s *Shell) chmod(p *kernel.Proc, args []string) int {
	if len(args) != 2 {
		return s.usage("chmod MODE FILE")
	}
	mode, err := strconv.ParseUint(args[0], 8, 32)
	if err != nil {
		return s.usage("chmod MODE FILE")
	}
	if err := p.Chmod(args[1], uint32(mode)); err != nil {
		return s.fail("chmod", args[1], err)
	}
	return 0
}

func (s *Shell) setacl(p *kernel.Proc, args []string) int {
	if len(args) != 3 {
		return s.usage("setacl DIR PATTERN RIGHTS")
	}
	dir, pattern, rights := args[0], args[1], args[2]
	text, err := p.GetACL(dir)
	if err != nil && !errors.Is(err, vfs.ErrNotExist) {
		return s.fail("setacl", dir, err)
	}
	a, perr := acl.Parse(text)
	if perr != nil {
		a = &acl.ACL{}
	}
	entry, eerr := acl.ParseEntry(pattern + " " + rights)
	if eerr != nil {
		fmt.Fprintf(s.Out, "setacl: bad rights %q: %v\n", rights, eerr)
		return 2
	}
	a.Set(entry.Pattern, entry.Rights, entry.ReserveRights)
	if err := p.SetACL(dir, a.String()); err != nil {
		return s.fail("setacl", dir, err)
	}
	return 0
}

// Program wraps a script as a kernel.Program, so a whole shell session
// can be spawned or boxed like any other executable.
func (s *Shell) Program(script string) kernel.Program {
	return func(p *kernel.Proc, _ []string) int {
		return s.Run(p, script)
	}
}
