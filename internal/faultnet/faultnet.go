// Package faultnet injects deterministic network faults for testing
// fault-tolerant protocols. An Injector wraps net.Conn, net.Listener or
// a dial function and applies a seeded schedule of faults — connection
// resets, silent drops, partial writes, read/write stalls and latency —
// triggered on the Nth connection, the Nth byte, or the Nth operation.
//
// Determinism is the point: the only randomness is a rand.Rand seeded
// by the caller (used for latency jitter), and every rule threshold is
// an explicit count, so a failing schedule replays exactly. Wall-clock
// sleeps are injected, but nothing here touches the virtual clock, so a
// faulted run charges the same virtual time as a clean one.
//
// Rules describe standing schedules ("every 3rd connection dies after
// 400 bytes written"); InjectOnce arms a one-shot fault against the
// next matching operation on any live connection, which is the
// convenient form for matrix tests ("kill the connection during the
// next write").
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is wrapped by every error the injector produces, so tests
// can tell injected faults from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Op selects which direction of traffic a rule applies to. The zero
// value matches both directions.
type Op int

const (
	OpEither Op = iota
	OpRead
	OpWrite
)

func (o Op) matches(dir Op) bool { return o == OpEither || o == dir }

// Action is what happens when a rule fires.
type Action int

const (
	// Reset fails the operation with an error and closes the underlying
	// connection (a peer reset).
	Reset Action = iota
	// Drop closes the underlying connection without failing the current
	// write (data silently lost mid-stream); subsequent operations fail.
	Drop
	// PartialWrite writes half the buffer, then resets. Only meaningful
	// for writes; on reads it behaves like Reset.
	PartialWrite
	// Stall sleeps for Delay before attempting the operation, once. With
	// a peer deadline set, the operation then fails; without one it
	// merely arrives late.
	Stall
	// Latency sleeps Delay plus seeded jitter (up to Jitter) before
	// every matching operation. Latency rules are recurring.
	Latency
	// Trickle shapes bandwidth slow-loris style: every matching
	// operation moves at most TrickleBytes bytes per tick, sleeping
	// Delay between ticks. A trickled write delivers the whole buffer,
	// chunk by chunk; a trickled read returns at most one chunk per
	// call. Trickle rules are recurring.
	Trickle
)

func (a Action) String() string {
	switch a {
	case Reset:
		return "reset"
	case Drop:
		return "drop"
	case PartialWrite:
		return "partial-write"
	case Stall:
		return "stall"
	case Latency:
		return "latency"
	case Trickle:
		return "trickle"
	}
	return "unknown"
}

// Rule is one standing fault in a schedule. All trigger fields are
// optional: a zero rule fires on the first operation of every
// connection. Counting is per connection.
type Rule struct {
	// Conn restricts the rule to the Nth accepted/dialed connection
	// (1-based). Zero means every connection.
	Conn int
	// EveryNth restricts the rule to connections whose 1-based index is
	// a multiple of N. Zero means no modulus restriction.
	EveryNth int
	// Op restricts the rule to reads or writes.
	Op Op
	// AfterBytes fires the rule once this many bytes have crossed in the
	// matching direction on the connection.
	AfterBytes int64
	// AfterOps fires the rule on the Nth matching operation (1-based).
	AfterOps int
	// Action is the fault to inject.
	Action Action
	// Delay is the sleep for Stall and Latency actions, and the
	// per-tick interval for Trickle.
	Delay time.Duration
	// Jitter adds up to this much seeded-random extra delay (Latency).
	Jitter time.Duration
	// TrickleBytes is the chunk a Trickle rule lets through per tick
	// (default 1 when the action is Trickle and this is zero).
	TrickleBytes int
}

func (r Rule) matchesConn(idx int) bool {
	if r.Conn != 0 && r.Conn != idx {
		return false
	}
	if r.EveryNth > 1 && idx%r.EveryNth != 0 {
		return false
	}
	return true
}

// oneShot reports whether the rule disarms after firing once on a
// connection. Latency and Trickle recur; everything else kills or
// delays once.
func (r Rule) oneShot() bool { return r.Action != Latency && r.Action != Trickle }

// Injector owns a fault schedule and wraps transports to apply it.
// It is safe for concurrent use by any number of wrapped connections.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []Rule
	armed   []*armedFault
	connSeq int
	conns   []*conn
	sleep   func(time.Duration) // tests swap this out to observe schedules
}

// armedFault is a one-shot fault against the next matching operation on
// any connection, armed at runtime by InjectOnce.
type armedFault struct {
	op     Op
	skip   int // matching ops to let through before firing
	action Action
	delay  time.Duration
}

// New creates an injector with a seeded jitter source and a standing
// schedule. The same seed and schedule replay identically.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), rules: rules, sleep: time.Sleep}
}

// InjectOnce arms a one-shot fault: the (skip+1)th operation matching
// op across all live wrapped connections suffers the action. Use it to
// place a fault "before/during/after" a specific request in tests.
func (i *Injector) InjectOnce(op Op, skip int, action Action, delay time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.armed = append(i.armed, &armedFault{op: op, skip: skip, action: action, delay: delay})
}

// ConnCount reports how many connections the injector has wrapped.
func (i *Injector) ConnCount() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.connSeq
}

// TotalWritten reports the bytes written across all wrapped connections
// so far — the number fault schedules key AfterBytes thresholds to.
func (i *Injector) TotalWritten() int64 {
	i.mu.Lock()
	conns := append([]*conn(nil), i.conns...)
	i.mu.Unlock()
	var total int64
	for _, c := range conns {
		c.mu.Lock()
		total += c.nWritten
		c.mu.Unlock()
	}
	return total
}

// Wrap applies the schedule to one connection.
func (i *Injector) Wrap(c net.Conn) net.Conn {
	i.mu.Lock()
	i.connSeq++
	idx := i.connSeq
	wc := &conn{Conn: c, inj: i, idx: idx, fired: make([]bool, len(i.rules))}
	i.conns = append(i.conns, wc)
	i.mu.Unlock()
	return wc
}

// Listener wraps a listener so every accepted connection is faulted.
func (i *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: i}
}

// Dialer returns a dial function (for chirp.ClientOptions.Dialer and
// friends) whose connections are faulted.
func (i *Injector) Dialer(network string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return i.Wrap(c), nil
	}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Wrap(c), nil
}

// conn is one faulted connection. Byte and op counters are per
// direction and consulted before each operation.
type conn struct {
	net.Conn
	inj *Injector
	idx int

	mu       sync.Mutex
	fired    []bool // per standing rule, for one-shot rules
	dead     bool
	nRead    int64
	nWritten int64
	rOps     int
	wOps     int
}

// verdict is the outcome of consulting the schedule before one op.
type verdict struct {
	sleep   time.Duration
	kill    bool          // close the underlying conn
	fail    bool          // return an injected error for this op
	half    bool          // partial write before failing
	trickle int           // max bytes this op may move per tick (0 = unshaped)
	tick    time.Duration // sleep between trickled chunks
	cause   Action        // for the error message
}

// decide consults armed faults then standing rules for one operation.
func (c *conn) decide(dir Op) verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	ops, bytes := c.rOps, c.nRead
	if dir == OpWrite {
		ops, bytes = c.wOps, c.nWritten
	}
	var v verdict

	c.inj.mu.Lock()
	// Armed one-shot faults fire first, in arming order.
	for n, a := range c.inj.armed {
		if !a.op.matches(dir) {
			continue
		}
		if a.skip > 0 {
			a.skip--
			continue
		}
		c.inj.armed = append(c.inj.armed[:n], c.inj.armed[n+1:]...)
		c.applyLocked(a.action, a.delay, 0, 0, &v)
		break
	}
	// Standing rules.
	for n, r := range c.inj.rules {
		if c.fired[n] || !r.matchesConn(c.idx) || !r.Op.matches(dir) {
			continue
		}
		if r.AfterBytes > 0 && bytes < r.AfterBytes {
			continue
		}
		if r.AfterOps > 0 && ops+1 < r.AfterOps {
			continue
		}
		if r.oneShot() {
			c.fired[n] = true
		}
		c.applyLocked(r.Action, r.Delay, r.Jitter, r.TrickleBytes, &v)
	}
	c.inj.mu.Unlock()

	if dir == OpWrite {
		c.wOps++
	} else {
		c.rOps++
	}
	return v
}

// applyLocked folds one firing action into the verdict. Caller holds
// both c.mu and c.inj.mu (the latter for the jitter rng).
func (c *conn) applyLocked(a Action, delay, jitter time.Duration, trickle int, v *verdict) {
	switch a {
	case Reset:
		v.kill, v.fail, v.cause = true, true, a
	case Drop:
		v.kill, v.cause = true, a
	case PartialWrite:
		v.kill, v.fail, v.half, v.cause = true, true, true, a
	case Stall:
		v.sleep += delay
	case Latency:
		d := delay
		if jitter > 0 {
			d += time.Duration(c.inj.rng.Int63n(int64(jitter) + 1))
		}
		v.sleep += d
	case Trickle:
		if trickle <= 0 {
			trickle = 1
		}
		v.trickle, v.tick = trickle, delay
		v.sleep += delay
	}
}

func (c *conn) injectedErr(what string, cause Action) error {
	return fmt.Errorf("%w: %s (%s, conn %d)", ErrInjected, cause, what, c.idx)
}

func (c *conn) kill() {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	c.Conn.Close()
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

func (c *conn) Read(p []byte) (int, error) {
	v := c.decide(OpRead)
	if v.sleep > 0 {
		c.inj.sleep(v.sleep)
	}
	if v.kill {
		c.kill()
		if v.fail {
			return 0, c.injectedErr("read", v.cause)
		}
	}
	if c.isDead() {
		return 0, c.injectedErr("read", Drop)
	}
	if v.trickle > 0 && len(p) > v.trickle {
		// Shaped read: at most one chunk per call (the per-tick sleep
		// already happened above), so the peer sees bytes dribble in.
		p = p[:v.trickle]
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.nRead += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	v := c.decide(OpWrite)
	if v.sleep > 0 {
		c.inj.sleep(v.sleep)
	}
	if v.kill {
		var n int
		if v.half && len(p) > 1 {
			n, _ = c.Conn.Write(p[:len(p)/2])
			c.mu.Lock()
			c.nWritten += int64(n)
			c.mu.Unlock()
		}
		c.kill()
		if v.fail {
			return n, c.injectedErr("write", v.cause)
		}
		// Drop: pretend the write succeeded; the bytes are gone.
		return len(p), nil
	}
	if c.isDead() {
		return 0, c.injectedErr("write", Drop)
	}
	if v.trickle > 0 && len(p) > v.trickle {
		// Shaped write: deliver the whole buffer chunk by chunk with a
		// tick-long sleep between chunks (the first tick already
		// happened above). The io.Writer contract holds — a short count
		// only ever accompanies an error.
		var n int
		for n < len(p) {
			if n > 0 {
				c.inj.sleep(v.tick)
			}
			end := n + v.trickle
			if end > len(p) {
				end = len(p)
			}
			m, err := c.Conn.Write(p[n:end])
			c.mu.Lock()
			c.nWritten += int64(m)
			c.mu.Unlock()
			n += m
			if err != nil {
				return n, err
			}
		}
		return n, nil
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.nWritten += int64(n)
	c.mu.Unlock()
	return n, err
}
