package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until EOF.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialFaulted(t *testing.T, inj *Injector, addr string) net.Conn {
	t.Helper()
	c, err := inj.Dialer("tcp")(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestFaultResetOnFirstWrite(t *testing.T) {
	ln := echoServer(t)
	inj := New(1, Rule{Op: OpWrite, Action: Reset})
	c := dialFaulted(t, inj, ln.Addr().String())
	_, err := c.Write([]byte("hello"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first write = %v, want injected reset", err)
	}
	// The connection is dead for good.
	if _, err := c.Write([]byte("again")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-reset write = %v, want injected error", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-reset read = %v, want injected error", err)
	}
}

func TestFaultAfterBytesThreshold(t *testing.T) {
	ln := echoServer(t)
	inj := New(1, Rule{Op: OpWrite, AfterBytes: 10, Action: Reset})
	c := dialFaulted(t, inj, ln.Addr().String())
	// Under the threshold: writes flow and echo back.
	if _, err := c.Write([]byte("0123456789")); err != nil {
		t.Fatalf("write under threshold: %v", err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	// 10 bytes have crossed; the next write dies.
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write past threshold = %v, want injected reset", err)
	}
}

func TestFaultAfterOps(t *testing.T) {
	ln := echoServer(t)
	inj := New(1, Rule{Op: OpWrite, AfterOps: 3, Action: Reset})
	c := dialFaulted(t, inj, ln.Addr().String())
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i+1, err)
		}
	}
	if _, err := c.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatal("3rd write should have been reset")
	}
}

func TestFaultEveryNthConnection(t *testing.T) {
	ln := echoServer(t)
	inj := New(1, Rule{EveryNth: 3, Op: OpWrite, Action: Reset})
	for i := 1; i <= 6; i++ {
		c := dialFaulted(t, inj, ln.Addr().String())
		_, err := c.Write([]byte("ping"))
		if i%3 == 0 {
			if !errors.Is(err, ErrInjected) {
				t.Errorf("conn %d: write = %v, want injected reset", i, err)
			}
		} else if err != nil {
			t.Errorf("conn %d: write = %v, want success", i, err)
		}
	}
	if inj.ConnCount() != 6 {
		t.Fatalf("ConnCount = %d, want 6", inj.ConnCount())
	}
}

func TestFaultPartialWrite(t *testing.T) {
	ln := echoServer(t)
	inj := New(1, Rule{Op: OpWrite, Action: PartialWrite})
	c := dialFaulted(t, inj, ln.Addr().String())
	n, err := c.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write err = %v, want injected", err)
	}
	if n != 5 {
		t.Fatalf("partial write n = %d, want 5", n)
	}
}

func TestFaultDropPretendsSuccess(t *testing.T) {
	ln := echoServer(t)
	inj := New(1, Rule{Op: OpWrite, Action: Drop})
	c := dialFaulted(t, inj, ln.Addr().String())
	n, err := c.Write([]byte("lost"))
	if err != nil || n != 4 {
		t.Fatalf("dropped write = %d, %v; want silent success", n, err)
	}
	// The connection died underneath; the next operation reports it.
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after drop = %v, want injected error", err)
	}
}

func TestFaultStallDelaysOnce(t *testing.T) {
	ln := echoServer(t)
	const delay = 50 * time.Millisecond
	inj := New(1, Rule{Op: OpWrite, Action: Stall, Delay: delay})
	c := dialFaulted(t, inj, ln.Addr().String())
	start := time.Now()
	if _, err := c.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("stalled write took %v, want >= %v", elapsed, delay)
	}
	// One-shot: the second write is immediate (bounded well under delay).
	start = time.Now()
	if _, err := c.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > delay {
		t.Fatalf("second write took %v, stall should not recur", elapsed)
	}
}

// TestFaultLatencyDeterministic replays the same seed twice and expects
// the injected delays to match exactly. The injector's sleep hook
// records the scheduled delays instead of sleeping, so the comparison
// is free of wall-clock noise.
func TestFaultLatencyDeterministic(t *testing.T) {
	ln := echoServer(t)
	sample := func(seed int64) []time.Duration {
		inj := New(seed, Rule{Op: OpWrite, Action: Latency, Delay: time.Millisecond, Jitter: 10 * time.Millisecond})
		var out []time.Duration
		inj.sleep = func(d time.Duration) { out = append(out, d) }
		c := dialFaulted(t, inj, ln.Addr().String())
		for i := 0; i < 5; i++ {
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	a, b := sample(42), sample(42)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("recorded %d and %d delays, want 5 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: %v vs %v, want deterministic schedule", i, a[i], b[i])
		}
		if a[i] < time.Millisecond || a[i] > 11*time.Millisecond {
			t.Fatalf("delay %d = %v, want within base+jitter bounds", i, a[i])
		}
	}
}

func TestFaultInjectOnceSkips(t *testing.T) {
	ln := echoServer(t)
	inj := New(1)
	c := dialFaulted(t, inj, ln.Addr().String())
	inj.InjectOnce(OpWrite, 2, Reset, 0)
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatalf("skipped write %d: %v", i+1, err)
		}
	}
	if _, err := c.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatal("armed fault did not fire after skips")
	}
}

func TestFaultListenerWrapsAccepted(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(1, Rule{Op: OpRead, Action: Reset})
	ln := inj.Listener(inner)
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Read(make([]byte, 4))
		done <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("data"))
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("server-side read = %v, want injected reset", err)
	}
	if inj.ConnCount() != 1 {
		t.Fatalf("ConnCount = %d, want 1", inj.ConnCount())
	}
}

func TestFaultTotalWrittenCounts(t *testing.T) {
	ln := echoServer(t)
	inj := New(1)
	c := dialFaulted(t, inj, ln.Addr().String())
	if _, err := c.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if got := inj.TotalWritten(); got != 10 {
		t.Fatalf("TotalWritten = %d, want 10", got)
	}
}

func TestTrickleShapesWrites(t *testing.T) {
	ln := echoServer(t)
	inj := New(1, Rule{Op: OpWrite, Action: Trickle, Delay: time.Millisecond, TrickleBytes: 4})
	var slept []time.Duration
	inj.sleep = func(d time.Duration) { slept = append(slept, d) }
	c := dialFaulted(t, inj, ln.Addr().String())

	msg := []byte("0123456789abcdef01") // 18 bytes -> 5 chunks of <=4
	n, err := c.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("trickled write = (%d, %v), want (%d, nil)", n, err, len(msg))
	}
	// One pre-op tick plus one tick between each of the 4 chunk gaps.
	if len(slept) != 5 {
		t.Fatalf("trickled write slept %d times (%v), want 5", len(slept), slept)
	}
	// The peer still receives every byte, in order.
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("reading echo: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

func TestTrickleLimitsReads(t *testing.T) {
	ln := echoServer(t)
	inj := New(1, Rule{Op: OpRead, Action: Trickle, Delay: time.Millisecond, TrickleBytes: 2})
	inj.sleep = func(time.Duration) {}
	c := dialFaulted(t, inj, ln.Addr().String())

	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	var got []byte
	for len(got) < 6 {
		n, err := c.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if n > 2 {
			t.Fatalf("trickled read returned %d bytes, want <=2 per call", n)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "abcdef" {
		t.Fatalf("read %q, want %q", got, "abcdef")
	}
}
