// Package faultdisk injects deterministic storage faults for testing
// crash consistency. A Disk wraps append-only log files behind a
// page-cache model: writes land in a dirty buffer and reach the backing
// file only on Sync, so a Crash discards exactly the bytes an operating
// system would lose at power failure. A seeded schedule of rules
// triggers faults on the Nth write, the Nth buffered byte or the Nth
// sync: short writes, torn sector writes (a prefix of the dirty bytes
// reaches the platter, then power dies), silently dropped fsyncs, bit
// flips and whole-disk crashes.
//
// Determinism is the point, same as faultnet: the only randomness is a
// rand.Rand seeded by the caller (used to pick torn-write split points
// and flipped bits), and every rule threshold is an explicit count, so
// a failing schedule replays exactly.
package faultdisk

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
)

// ErrInjected is wrapped by every error the injector produces, so tests
// can tell injected faults from real ones.
var ErrInjected = errors.New("faultdisk: injected fault")

// ErrCrashed is reported by every operation after the disk has crashed.
// It wraps ErrInjected.
var ErrCrashed = fmt.Errorf("%w: disk crashed", ErrInjected)

// Action is what happens when a rule fires.
type Action int

const (
	// ShortWrite buffers only half the payload and fails the write with
	// an injected error, like a disk running out of space mid-request.
	ShortWrite Action = iota
	// TornWrite accepts the payload, flushes a seeded-random prefix of
	// the dirty bytes to the backing file — deliberately not aligned to
	// any record boundary — and crashes the disk. The caller sees the
	// write succeed; the file ends mid-record.
	TornWrite
	// DropSync makes one Sync lie: it returns nil without flushing, the
	// classic misbehaving-fsync. A later crash then loses acknowledged
	// records.
	DropSync
	// BitFlip corrupts one seeded-random bit of the payload before
	// buffering it. The write succeeds; the corruption is silent until
	// something checksums the data.
	BitFlip
	// Crash discards every dirty byte on the disk and fails the current
	// and all subsequent operations with ErrCrashed.
	Crash
)

func (a Action) String() string {
	switch a {
	case ShortWrite:
		return "short-write"
	case TornWrite:
		return "torn-write"
	case DropSync:
		return "drop-sync"
	case BitFlip:
		return "bit-flip"
	case Crash:
		return "crash"
	}
	return "unknown"
}

// Op selects which operation kind a rule applies to; it is inferred
// from the Action (writes for ShortWrite/TornWrite/BitFlip, syncs for
// DropSync) except for Crash, which fires on whichever counter matches.
type op int

const (
	opWrite op = iota
	opSync
)

// Rule is one standing fault in a schedule. Counters are disk-global
// (summed across files), which is what crash-matrix tests want: "crash
// on the Nth record appended anywhere". All trigger fields are
// optional; a zero rule fires on the first matching operation.
type Rule struct {
	// AfterWrites fires the rule on the Nth write call (1-based).
	AfterWrites int
	// AfterBytes fires the rule once this many bytes have been accepted
	// into dirty buffers.
	AfterBytes int64
	// AfterSyncs fires the rule on the Nth Sync call (1-based).
	AfterSyncs int
	// Action is the fault to inject.
	Action Action
}

func (r Rule) wants(o op) bool {
	switch r.Action {
	case DropSync:
		return o == opSync
	case Crash:
		if r.AfterSyncs > 0 {
			return o == opSync
		}
		return o == opWrite
	default:
		return o == opWrite
	}
}

// Disk owns a fault schedule and opens faulted files. It is safe for
// concurrent use.
type Disk struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []Rule
	fired   []bool
	files   []*File
	crashed bool

	writes int
	syncs  int
	bytes  int64 // accepted into dirty buffers
}

// New creates a disk with a seeded schedule. The same seed and schedule
// replay identically.
func New(seed int64, rules ...Rule) *Disk {
	return &Disk{rng: rand.New(rand.NewSource(seed)), rules: rules, fired: make([]bool, len(rules))}
}

// OpenAppend opens path for appending behind the fault schedule. The
// signature matches durable.Options.OpenAppend's needs: the returned
// *File satisfies the durable.File interface.
func (d *Disk) OpenAppend(path string) (*File, error) {
	backing, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	f := &File{disk: d, backing: backing}
	d.mu.Lock()
	d.files = append(d.files, f)
	d.mu.Unlock()
	return f, nil
}

// Crash simulates power loss now: every dirty byte on the disk is
// discarded and all further operations fail with ErrCrashed.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashLocked()
}

func (d *Disk) crashLocked() {
	d.crashed = true
	for _, f := range d.files {
		f.dirty = nil
	}
}

// Crashed reports whether the disk has crashed.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Writes reports the number of write calls accepted so far — the
// counter Rule.AfterWrites thresholds key to.
func (d *Disk) Writes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// decide consults the schedule for one operation. Caller holds d.mu.
func (d *Disk) decideLocked(o op, payload int64) (Action, bool) {
	for n, r := range d.rules {
		if d.fired[n] || !r.wants(o) {
			continue
		}
		if r.AfterWrites > 0 && d.writes+1 < r.AfterWrites {
			continue
		}
		if r.AfterSyncs > 0 && d.syncs+1 < r.AfterSyncs {
			continue
		}
		if r.AfterBytes > 0 && d.bytes+payload < r.AfterBytes {
			continue
		}
		d.fired[n] = true
		return r.Action, true
	}
	return 0, false
}

// File is one faulted append-only file. Writes buffer in memory (the
// page cache); Sync flushes to the backing file and fsyncs it; Close
// flushes (an orderly shutdown gives the OS time to write back) and
// closes the backing file.
type File struct {
	disk    *Disk
	backing *os.File
	dirty   []byte
	closed  bool
}

func (f *File) Write(p []byte) (int, error) {
	d := f.disk
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed || f.closed {
		return 0, ErrCrashed
	}
	action, fire := d.decideLocked(opWrite, int64(len(p)))
	d.writes++
	if fire {
		switch action {
		case ShortWrite:
			n := len(p) / 2
			f.dirty = append(f.dirty, p[:n]...)
			d.bytes += int64(n)
			return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, n, len(p))
		case TornWrite:
			f.dirty = append(f.dirty, p...)
			d.bytes += int64(len(p))
			// A prefix of the dirty bytes reaches the platter; power dies.
			k := 0
			if len(f.dirty) > 0 {
				k = d.rng.Intn(len(f.dirty))
			}
			f.backing.Write(f.dirty[:k])
			f.backing.Sync()
			d.crashLocked()
			return len(p), nil
		case BitFlip:
			corrupt := append([]byte(nil), p...)
			if len(corrupt) > 0 {
				bit := d.rng.Intn(len(corrupt) * 8)
				corrupt[bit/8] ^= 1 << (bit % 8)
			}
			f.dirty = append(f.dirty, corrupt...)
			d.bytes += int64(len(p))
			return len(p), nil
		case Crash:
			d.crashLocked()
			return 0, ErrCrashed
		}
	}
	f.dirty = append(f.dirty, p...)
	d.bytes += int64(len(p))
	return len(p), nil
}

func (f *File) Sync() error {
	d := f.disk
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed || f.closed {
		return ErrCrashed
	}
	action, fire := d.decideLocked(opSync, 0)
	d.syncs++
	if fire {
		switch action {
		case DropSync:
			return nil // the lie: dirty bytes stay dirty
		case Crash:
			d.crashLocked()
			return ErrCrashed
		}
	}
	return f.flushLocked()
}

// flushLocked writes the dirty buffer through and fsyncs the backing
// file. Caller holds d.mu.
func (f *File) flushLocked() error {
	if len(f.dirty) > 0 {
		if _, err := f.backing.Write(f.dirty); err != nil {
			return err
		}
		f.dirty = nil
	}
	return f.backing.Sync()
}

func (f *File) Close() error {
	d := f.disk
	d.mu.Lock()
	defer d.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if d.crashed {
		f.backing.Close()
		return ErrCrashed
	}
	err := f.flushLocked()
	if cerr := f.backing.Close(); err == nil {
		err = cerr
	}
	return err
}
