package faultdisk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openOne(t *testing.T, d *Disk) (*File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "log")
	f, err := d.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	return f, path
}

func onDisk(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWritesReachDiskOnlyAfterSync(t *testing.T) {
	d := New(1)
	f, path := openOne(t, d)
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if got := onDisk(t, path); len(got) != 0 {
		t.Fatalf("bytes on disk before sync: %q", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if got := onDisk(t, path); string(got) != "hello " {
		t.Fatalf("disk = %q, want synced prefix only", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := onDisk(t, path); string(got) != "hello world" {
		t.Fatalf("disk after close = %q", got)
	}
}

func TestCrashDiscardsDirtyBytes(t *testing.T) {
	d := New(1)
	f, path := openOne(t, d)
	f.Write([]byte("durable."))
	f.Sync()
	f.Write([]byte("doomed"))
	d.Crash()
	if got := onDisk(t, path); string(got) != "durable." {
		t.Fatalf("disk after crash = %q, want synced bytes only", got)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write error = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash sync error = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash close error = %v", err)
	}
}

func TestCrashAtWriteN(t *testing.T) {
	d := New(1, Rule{AfterWrites: 3, Action: Crash})
	f, path := openOne(t, d)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("rec")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Write([]byte("rec")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("3rd write = %v, want crash", err)
	}
	if !d.Crashed() {
		t.Fatal("disk not crashed")
	}
	if got := onDisk(t, path); string(got) != "recrec" {
		t.Fatalf("disk = %q", got)
	}
}

func TestShortWrite(t *testing.T) {
	d := New(1, Rule{AfterWrites: 1, Action: ShortWrite})
	f, path := openOne(t, d)
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error = %v", err)
	}
	if n != 4 {
		t.Fatalf("short write accepted %d bytes, want 4", n)
	}
	// The truncated payload is still dirty data that can flush.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := onDisk(t, path); string(got) != "1234" {
		t.Fatalf("disk = %q", got)
	}
}

func TestTornWriteLeavesPrefixAndCrashes(t *testing.T) {
	d := New(7, Rule{AfterWrites: 3, Action: TornWrite})
	f, path := openOne(t, d)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 4)
	f.Write(payload)
	f.Write(payload)
	if _, err := f.Write(payload); err != nil {
		t.Fatalf("torn write must look successful to the caller: %v", err)
	}
	if !d.Crashed() {
		t.Fatal("torn write did not crash the disk")
	}
	got := onDisk(t, path)
	if len(got) >= 3*len(payload) {
		t.Fatalf("torn write flushed everything (%d bytes)", len(got))
	}
	all := bytes.Repeat(payload, 3)
	if !bytes.Equal(got, all[:len(got)]) {
		t.Fatal("flushed bytes are not a prefix of the dirty data")
	}
}

func TestTornWriteDeterministic(t *testing.T) {
	run := func() int {
		d := New(42, Rule{AfterWrites: 1, Action: TornWrite})
		f, path := openOne(t, d)
		f.Write(bytes.Repeat([]byte("x"), 1000))
		return len(onDisk(t, path))
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different torn prefixes: %d vs %d", a, b)
	}
}

func TestDropSyncLosesAcknowledgedData(t *testing.T) {
	d := New(1, Rule{AfterSyncs: 2, Action: DropSync})
	f, path := openOne(t, d)
	f.Write([]byte("first."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("second."))
	if err := f.Sync(); err != nil {
		t.Fatalf("dropped sync must lie and return nil: %v", err)
	}
	d.Crash()
	if got := onDisk(t, path); string(got) != "first." {
		t.Fatalf("disk = %q: the dropped sync's data survived a crash", got)
	}
}

func TestBitFlipCorruptsSilently(t *testing.T) {
	d := New(9, Rule{AfterWrites: 1, Action: BitFlip})
	f, path := openOne(t, d)
	payload := bytes.Repeat([]byte{0x00}, 64)
	if _, err := f.Write(payload); err != nil {
		t.Fatalf("bit flip must be silent: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got := onDisk(t, path)
	if bytes.Equal(got, payload) {
		t.Fatal("no bit was flipped")
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^payload[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diff)
	}
}

func TestAfterBytesThreshold(t *testing.T) {
	d := New(1, Rule{AfterBytes: 10, Action: Crash})
	f, _ := openOne(t, d)
	if _, err := f.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	// 5 + 5 >= 10: this write trips the threshold.
	if _, err := f.Write([]byte("67890")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write past byte threshold = %v, want crash", err)
	}
}

func TestCountersSpanFiles(t *testing.T) {
	d := New(1, Rule{AfterWrites: 2, Action: Crash})
	f1, _ := openOne(t, d)
	f2, _ := openOne(t, d)
	if _, err := f1.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("2nd write across files = %v, want crash", err)
	}
}
