package chirp

import "sync"

// dedupeTable remembers replies to tokened requests so a client retry
// whose first attempt actually executed is answered from memory instead
// of re-executed. Keys are principal+token (never raw tokens: one
// client must not replay another's reply). The table is server-wide
// rather than per-session because the whole point of a token is to
// survive the session dying mid-exchange — the retry arrives on a new
// connection. Capacity is bounded FIFO: the oldest entry is evicted
// when cap is reached, which is safe because tokens protect short
// retry windows, not long-term replay.
type dedupeTable struct {
	mu      sync.Mutex
	cap     int
	entries map[string][]string
	order   []string // insertion order for FIFO eviction
	hits    int64
}

func newDedupeTable(capacity int) *dedupeTable {
	if capacity <= 0 {
		capacity = 1024
	}
	return &dedupeTable{cap: capacity, entries: make(map[string][]string)}
}

func dedupeKey(principal, token string) string {
	return principal + "\x00" + token
}

// lookup returns the stored reply fields for a key, if any.
func (t *dedupeTable) lookup(key string) ([]string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.entries[key]
	if ok {
		t.hits++
	}
	return r, ok
}

// store records the reply for a key, evicting the oldest entry at cap.
// Re-storing an existing key refreshes the value without growing.
func (t *dedupeTable) store(key string, reply []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.entries[key]; !exists {
		if len(t.order) >= t.cap {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.entries, oldest)
		}
		t.order = append(t.order, key)
	}
	t.entries[key] = append([]string(nil), reply...)
}

func (t *dedupeTable) stats() (hits int64, size int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, len(t.entries)
}
