package chirp

import "sync"

// dedupeTable remembers replies to tokened requests so a client retry
// whose first attempt actually executed is answered from memory instead
// of re-executed. Keys are principal+token (never raw tokens: one
// client must not replay another's reply). The table is server-wide
// rather than per-session because the whole point of a token is to
// survive the session dying mid-exchange — the retry arrives on a new
// connection. Capacity is bounded FIFO in both entries and bytes: the
// oldest entry is evicted when either bound is reached, which is safe
// because tokens protect short retry windows, not long-term replay.
// The byte bound matters under principal churn — a parade of
// principals storing fat tokened replies must not grow the table
// without limit — though a single entry larger than the whole budget
// is still stored (dropping it would re-execute a retried mutation,
// breaking exactly-once; the next store evicts it).
type dedupeTable struct {
	mu        sync.Mutex
	cap       int
	maxBytes  int64
	entries   map[string]dedupeEntry
	order     []string // insertion order for FIFO eviction
	bytes     int64    // sum of entrySize over entries
	hits      int64
	evictions int64
}

type dedupeEntry struct {
	reply []string
	size  int64
}

func newDedupeTable(capacity int, maxBytes int64) *dedupeTable {
	if capacity <= 0 {
		capacity = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	return &dedupeTable{cap: capacity, maxBytes: maxBytes, entries: make(map[string]dedupeEntry)}
}

func dedupeKey(principal, token string) string {
	return principal + "\x00" + token
}

// entrySize approximates an entry's memory footprint: key plus reply
// field bytes plus a small fixed overhead per field and entry.
func entrySize(key string, reply []string) int64 {
	n := int64(len(key)) + 64
	for _, f := range reply {
		n += int64(len(f)) + 16
	}
	return n
}

// lookup returns the stored reply fields for a key, if any.
func (t *dedupeTable) lookup(key string) ([]string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if ok {
		t.hits++
	}
	return e.reply, ok
}

// store records the reply for a key, evicting oldest entries while
// either the entry cap or the byte budget is exceeded. Re-storing an
// existing key refreshes the value without growing the order list. It
// returns the number of entries evicted, so the caller can advance a
// monotonic metric without re-deriving deltas.
func (t *dedupeTable) store(key string, reply []string) (evicted int) {
	size := entrySize(key, reply)
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, exists := t.entries[key]; exists {
		t.bytes -= old.size
	} else {
		for len(t.order) > 0 && (len(t.order) >= t.cap || t.bytes+size > t.maxBytes) {
			oldest := t.order[0]
			t.order = t.order[1:]
			t.bytes -= t.entries[oldest].size
			delete(t.entries, oldest)
			t.evictions++
			evicted++
		}
		t.order = append(t.order, key)
	}
	t.entries[key] = dedupeEntry{reply: append([]string(nil), reply...), size: size}
	t.bytes += size
	return evicted
}

func (t *dedupeTable) stats() (hits int64, size int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, len(t.entries)
}

// byteStats reports the table's current footprint and lifetime
// evictions for the chirp_dedupe_bytes gauge and eviction counter.
func (t *dedupeTable) byteStats() (bytes int64, evictions int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes, t.evictions
}
