package chirp

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"time"

	"identitybox/internal/obs"
)

// Typed failures of the fault-tolerance layer.
var (
	// ErrRetryNotSafe is returned when a connection fails in the middle
	// of a non-idempotent exchange (pwrite on a live descriptor, exec
	// without a request token): the client cannot tell whether the
	// server applied the request, so it refuses to retry. Callers opt in
	// by supplying a request token the server dedupes (ExecToken), or by
	// restarting the whole logical operation (PutFile does this
	// internally).
	ErrRetryNotSafe = errors.New("chirp: connection failed mid-call; retry not safe for non-idempotent request")
	// ErrBreakerOpen is returned while the client's circuit breaker is
	// open: the server has failed repeatedly and calls fail fast until
	// the cooloff elapses.
	ErrBreakerOpen = errors.New("chirp: circuit breaker open, server considered down")
	// ErrClientClosed is returned for calls on a closed client.
	ErrClientClosed = errors.New("chirp: client closed")
	// ErrDegraded is returned by the failover driver for writes while
	// the primary is unavailable: reads fail over to replicas, writes
	// degrade with this typed error instead of hanging.
	ErrDegraded = errors.New("chirp: writes degraded, primary unavailable")
)

// Client-side metric names (ClientOptions.Metrics / Client.LocalMetrics).
const (
	MetricClientRetries      = "chirp_client_retries_total"
	MetricClientRedials      = "chirp_client_redials_total"
	MetricClientRetryUnsafe  = "chirp_client_retry_unsafe_total"
	MetricClientBreakerOpens = "chirp_client_breaker_opens_total"
	MetricClientBreakerState = "chirp_client_breaker_state"
	// v2 mux observability: tags currently awaiting replies, times a
	// submit had to wait for credit-window space, and in-flight
	// request+reply payload bytes.
	MetricClientTagsInFlight  = "chirp_client_tags_inflight"
	MetricClientWindowStalls  = "chirp_client_window_stalls_total"
	MetricClientInflightBytes = "chirp_client_inflight_bytes"
	// Negotiated v2 session limits, as gauges so operators can see the
	// effective window without running chirp ping: the min of what the
	// client advertised and what the server offered. Zero until a v2
	// session is established (or forever, on a v1 fallback).
	MetricClientWindow         = "chirp_client_negotiated_window"
	MetricClientMaxBytes       = "chirp_client_negotiated_max_bytes"
	MetricClientRequestLatency = "chirp_client_request_latency_us"
	// Overload-protection observability: EBUSY rejections received from
	// the server (each carries a retry-after hint the backoff honors) and
	// calls abandoned because the caller's deadline budget ran out —
	// either shed by the server with EDEADLINE or given up client-side
	// before a send or a retry sleep that could not fit in the budget.
	MetricClientBusy            = "chirp_client_busy_total"
	MetricClientDeadlineExpired = "chirp_client_deadline_expired_total"
)

// Server-side fault-tolerance metric names.
const (
	MetricDedupeHits        = "chirp_dedupe_hits_total"
	MetricDedupeEntries     = "chirp_dedupe_entries"
	MetricDedupeBytes       = "chirp_dedupe_bytes"
	MetricDedupeEvictions   = "chirp_dedupe_evictions_total"
	MetricDedupeJournalErrs = "chirp_dedupe_journal_errors_total"
	MetricDraining          = "chirp_draining"
	MetricBarrierErrs       = "chirp_commit_barrier_errors_total"
	MetricPayloadPoolHits   = "chirp_payload_pool_hits"
	MetricPayloadPoolMisses = "chirp_payload_pool_misses"
)

// Server-side v2 mux metric names.
const (
	MetricTagsInFlight       = "chirp_tags_inflight"
	MetricBackpressureStalls = "chirp_backpressure_stalls_total"
	MetricWindowOccupancy    = "chirp_window_occupancy"
	MetricV2Sessions         = "chirp_v2_sessions_total"
	// End-to-end server-side request latency (lane queue wait included),
	// in microseconds, with per-bucket trace-ID exemplars when the
	// request carried trace context.
	MetricRequestLatency = "chirp_request_latency_us"
)

// ClientOptions tune the client's fault-tolerance layer. The zero value
// gives sensible production defaults: retries enabled, no per-call
// deadline, a 5-failure breaker with a one-second cooloff.
type ClientOptions struct {
	// Timeout bounds each wire exchange (one request/response, payload
	// phases included) with a connection deadline. Zero means no
	// deadline. Redial and re-authentication are bounded by the same
	// timeout.
	Timeout time.Duration
	// MaxRetries is how many times a failed exchange is retried beyond
	// the first attempt (default 3). Only transport failures are
	// retried, and only for idempotent or tokened calls; error replies
	// from the server are always final.
	MaxRetries int
	// DisableRetries turns the retry/redial machinery off entirely: the
	// first transport failure surfaces to the caller, as the pre-fault-
	// tolerance client behaved.
	DisableRetries bool
	// RetryBase is the first backoff delay (default 50ms). Retry n
	// sleeps min(RetryBase<<n, RetryMax), half fixed and half seeded
	// jitter.
	RetryBase time.Duration
	// RetryMax caps the backoff (default 2s).
	RetryMax time.Duration
	// Seed makes the backoff jitter deterministic (default 1).
	Seed int64
	// BreakerThreshold is the consecutive transport failures that open
	// the circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooloff is how long the breaker stays open before letting
	// a probe through (default 1s).
	BreakerCooloff time.Duration
	// Metrics, when set, receives the client's retry/redial/breaker
	// counters. When nil the client keeps a private registry, reachable
	// via LocalMetrics.
	Metrics *obs.Registry
	// Dialer replaces net.Dial("tcp", addr) — the hook fault-injection
	// tests (and exotic transports) use.
	Dialer func(addr string) (net.Conn, error)
	// Sleep replaces time.Sleep for backoff waits, letting tests record
	// the schedule instead of waiting it out.
	Sleep func(time.Duration)
	// PipelineDepth, when > 1, lets GetFile and PutFile keep that many
	// chunk requests in flight on the session at once instead of waiting
	// out a round trip per chunk (on a v2 session each chunk is an
	// independently tagged call; on a v1 session transfers fall back to
	// one exchange at a time). A transport failure mid-transfer breaks
	// the connection and surfaces ErrRetryNotSafe so the whole transfer
	// restarts, exactly like the serial path. 0 or 1 means one request
	// at a time.
	PipelineDepth int
	// Protocol pins the wire protocol: ProtocolV1 forces the lock-step
	// line protocol, ProtocolV2 (or 0, the default) negotiates tagged
	// async multiplexing and falls back to v1 when the server answers
	// the version exchange with ENOSYS (an old server treats it as an
	// unknown command).
	Protocol int
	// Window is the credit window this client advertises during v2
	// negotiation: the most tags it will keep in flight on one session
	// (default DefaultWindow). The server advertises its own cap and the
	// minimum wins.
	Window int
	// MaxInflightBytes bounds the request+reply payload bytes in flight
	// on a v2 session (default DefaultMaxInflightBytes), so a deep
	// window of fat transfers cannot buffer unbounded memory. At least
	// one call is always admitted, whatever its size.
	MaxInflightBytes int64
	// Spans, when set, turns on request tracing: the client requests the
	// trace capability during v2 negotiation, stamps every tagged call
	// with a trace ID, and records one client-side span per call (with
	// submit-stall, write, and await phases) into this ring. Nil (the
	// default) keeps the wire format and the hot path exactly as before;
	// tracing never activates on a v1 session or against a server that
	// does not echo the capability.
	Spans *obs.SpanRing
	// DeadlineBudget, when > 0, bounds each logical call (all retries and
	// backoff sleeps included) by a wall-clock budget. The client requests
	// the deadline capability during v2 negotiation and stamps every
	// request line with the remaining budget in milliseconds; the server
	// sheds the request with EDEADLINE at any hop — admit queue, worker
	// dispatch, durability barrier — once the budget is gone, instead of
	// doing work whose caller has stopped waiting. The retry layer never
	// sleeps past the deadline and fails fast with ErrDeadline once it
	// expires. Against an old server (no capability echo) requests carry
	// no deadline on the wire but the client-side budget still applies.
	// Zero (the default) keeps calls unbounded, exactly as before.
	DeadlineBudget time.Duration
}

// withDefaults fills zero fields in place.
func (o *ClientOptions) withDefaults() {
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBase == 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax == 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooloff == 0 {
		o.BreakerCooloff = time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Protocol == 0 {
		o.Protocol = ProtocolV2
	}
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.MaxInflightBytes == 0 {
		o.MaxInflightBytes = DefaultMaxInflightBytes
	}
}

// callClass is the idempotency classification of one RPC, deciding what
// the retry layer may do when the connection dies mid-exchange.
type callClass int

const (
	// classIdempotent calls (whoami, stat, lstat, getdir, readlink,
	// getacl, setacl, mkdir, rmdir, unlink, truncate, open, assert, and
	// any tokened request) are re-sent transparently after a redial.
	classIdempotent callClass = iota
	// classMutating calls (pwrite/pread/fstat/close on a session-bound
	// descriptor, exec without a token, rename, link, symlink) surface
	// ErrRetryNotSafe instead: the request may or may not have been
	// applied, and blind re-execution could double-apply it or target a
	// descriptor that died with the session.
	classMutating
)

// clientMetrics caches the client's counter handles.
type clientMetrics struct {
	reg            *obs.Registry
	retries        *obs.Counter
	redials        *obs.Counter
	unsafe         *obs.Counter
	tagsInFlight   *obs.Gauge
	windowStalls   *obs.Counter
	inflightBytes  *obs.Gauge
	negWindow      *obs.Gauge
	negMaxBytes    *obs.Gauge
	requestLatency *obs.Histogram
	busy           *obs.Counter
	deadline       *obs.Counter
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	reg.Help(MetricClientRetries, "Exchanges re-sent after a transport failure.")
	reg.Help(MetricClientRedials, "Connections re-established (re-authentication included).")
	reg.Help(MetricClientRetryUnsafe, "Transport failures surfaced as ErrRetryNotSafe.")
	reg.Help(MetricClientTagsInFlight, "Tagged calls currently awaiting replies.")
	reg.Help(MetricClientWindowStalls, "Submits that waited for credit-window space.")
	reg.Help(MetricClientInflightBytes, "Request+reply payload bytes currently in flight.")
	reg.Help(MetricClientWindow, "Negotiated v2 credit window (0 before negotiation or on v1).")
	reg.Help(MetricClientMaxBytes, "Negotiated v2 in-flight byte budget (0 before negotiation or on v1).")
	reg.Help(MetricClientRequestLatency, "Client-observed tagged-call latency, submit to reply, in microseconds.")
	reg.Help(MetricClientBusy, "EBUSY overload rejections received (retried with the server's retry-after hint).")
	reg.Help(MetricClientDeadlineExpired, "Calls abandoned because the deadline budget ran out (server shed or client-side).")
	return &clientMetrics{
		reg:            reg,
		retries:        reg.Counter(MetricClientRetries),
		redials:        reg.Counter(MetricClientRedials),
		unsafe:         reg.Counter(MetricClientRetryUnsafe),
		tagsInFlight:   reg.Gauge(MetricClientTagsInFlight),
		windowStalls:   reg.Counter(MetricClientWindowStalls),
		inflightBytes:  reg.Gauge(MetricClientInflightBytes),
		negWindow:      reg.Gauge(MetricClientWindow),
		negMaxBytes:    reg.Gauge(MetricClientMaxBytes),
		requestLatency: reg.Histogram(MetricClientRequestLatency, requestLatencyBuckets()),
		busy:           reg.Counter(MetricClientBusy),
		deadline:       reg.Counter(MetricClientDeadlineExpired),
	}
}

// requestLatencyBuckets spans wall-clock RPC latencies: geometric from
// 10µs (loopback metadata call) to 4s (a transfer riding out a group
// commit under load). Shared by the client- and server-side request
// latency histograms so their quantiles compare directly.
func requestLatencyBuckets() []float64 {
	return []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
		25000, 50000, 100000, 250000, 500000, 1e6, 4e6}
}

// backoff computes the nth retry's delay (n is 1-based): capped
// exponential, half fixed plus half jitter from the seeded rng.
func backoff(rng *mrand.Rand, base, max time.Duration, n int) time.Duration {
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// NewRequestToken returns a fresh random idempotency token for tokened
// calls (ExecToken): 16 bytes of crypto randomness, hex-encoded, unique
// across client restarts.
func NewRequestToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("chirp: reading random token: %v", err)) // unreachable
	}
	return hex.EncodeToString(b[:])
}

// deadlineErr builds the terminal error for a call whose deadline
// budget ran out on the client side, preserving the last transport or
// server error (if any) for diagnosis.
func deadlineErr(budget time.Duration, lastErr error) error {
	if lastErr != nil {
		return fmt.Errorf("%w (budget %v): last error: %v", ErrDeadline, budget, lastErr)
	}
	return fmt.Errorf("%w (budget %v)", ErrDeadline, budget)
}

// isTransient reports whether an error is a transport-level failure (a
// candidate for retry or failover) rather than a definitive reply from
// a server. Remote error replies are final; everything else — dial
// errors, resets, deadline expiries, breaker trips — is transient.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	return !errors.As(err, &re)
}
