package chirp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"identitybox/internal/auth"
	"identitybox/internal/kernel"
)

// TestConcurrentClientsMixedOps runs N independent clients against one
// server, each doing a full mkdir/put/read/stat/rename/unlink cycle in
// its own reserved directory. Run with -race this exercises the
// server's per-connection sessions against the shared kernel and VFS.
func TestConcurrentClientsMixedOps(t *testing.T) {
	srv, _, ca := testServer(t)

	const clients = 6
	const iters = 15
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for n := 0; n < clients; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cred, err := ca.Issue(fmt.Sprintf("/O=UnivNowhere/CN=User%d", n))
			if err != nil {
				errs <- err
				return
			}
			cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			dir := fmt.Sprintf("/work%d", n)
			if err := cl.Mkdir(dir, 0o755); err != nil {
				errs <- fmt.Errorf("mkdir %s: %w", dir, err)
				return
			}
			for i := 0; i < iters; i++ {
				path := fmt.Sprintf("%s/f%d", dir, i)
				payload := bytes.Repeat([]byte{byte(n), byte(i)}, 200)
				if err := cl.PutFile(path, payload, 0o644); err != nil {
					errs <- fmt.Errorf("put %s: %w", path, err)
					return
				}
				got, err := cl.GetFile(path)
				if err != nil || !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("get %s: %d bytes, %v", path, len(got), err)
					return
				}
				st, err := cl.Stat(path)
				if err != nil || st.Size != int64(len(payload)) {
					errs <- fmt.Errorf("stat %s: %+v, %v", path, st, err)
					return
				}
				if _, err := cl.ReadDir(dir); err != nil {
					errs <- fmt.Errorf("readdir %s: %w", dir, err)
					return
				}
				moved := path + ".bak"
				if err := cl.Rename(path, moved); err != nil {
					errs <- fmt.Errorf("rename %s: %w", path, err)
					return
				}
				if err := cl.Unlink(moved); err != nil {
					errs <- fmt.Errorf("unlink %s: %w", moved, err)
					return
				}
			}
			errs <- nil
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if srv.RequestCount() == 0 {
		t.Fatal("server counted no requests")
	}
	if got := srv.SessionCount(); got < clients {
		t.Fatalf("server counted %d sessions, want >= %d", got, clients)
	}
}

// TestSharedClientConcurrentUse exercises one Client from many
// goroutines at once — the configuration the wire mutex exists for.
// Every RPC shape is covered, including the counted-payload exchanges
// (pread, pwrite, getacl) that must not interleave on the wire.
func TestSharedClientConcurrentUse(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Shared")

	if err := cl.Mkdir("/shared", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFile("/shared/common", bytes.Repeat([]byte("x"), 1024), 0o644); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := fmt.Sprintf("/shared/g%d", g)
			payload := bytes.Repeat([]byte{byte('a' + g)}, 300)
			if err := cl.PutFile(mine, payload, 0o644); err != nil {
				errs <- fmt.Errorf("put %s: %w", mine, err)
				return
			}
			fd, err := cl.Open(mine, kernel.ORdwr, 0o644)
			if err != nil {
				errs <- fmt.Errorf("open %s: %w", mine, err)
				return
			}
			buf := make([]byte, 300)
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					if _, err := cl.Pwrite(fd, payload[:100], int64(i%3)*50); err != nil {
						errs <- fmt.Errorf("pwrite: %w", err)
						return
					}
				case 1:
					if _, err := cl.Pread(fd, buf, 0); err != nil {
						errs <- fmt.Errorf("pread: %w", err)
						return
					}
					if buf[0] != byte('a'+g) {
						errs <- fmt.Errorf("goroutine %d read byte %q: wire exchanges interleaved", g, buf[0])
						return
					}
				case 2:
					if _, err := cl.GetACL("/shared"); err != nil {
						errs <- fmt.Errorf("getacl: %w", err)
						return
					}
				case 3:
					got, err := cl.GetFile("/shared/common")
					if err != nil || len(got) != 1024 || got[0] != 'x' {
						errs <- fmt.Errorf("getfile common: %d bytes, %v", len(got), err)
						return
					}
				default:
					if p, err := cl.Whoami(); err != nil || p != "globus:/O=UnivNowhere/CN=Shared" {
						errs <- fmt.Errorf("whoami = %q, %v", p, err)
						return
					}
					if _, err := cl.Stat(mine); err != nil {
						errs <- fmt.Errorf("stat %s: %w", mine, err)
						return
					}
				}
			}
			if err := cl.CloseFD(fd); err != nil {
				errs <- fmt.Errorf("closefd: %w", err)
				return
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every per-goroutine file must hold exactly its own byte pattern.
	for g := 0; g < goroutines; g++ {
		got, err := cl.GetFile(fmt.Sprintf("/shared/g%d", g))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range got {
			if c != byte('a'+g) {
				t.Fatalf("goroutine %d file corrupted: found %q", g, c)
			}
		}
	}
}
