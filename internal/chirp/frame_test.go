package chirp

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// TestFrameHeaderRoundTrip encodes and re-parses headers across the
// legal boundary values.
func TestFrameHeaderRoundTrip(t *testing.T) {
	cases := []frameHeader{
		{tag: 1, lineLen: 1, payloadLen: 0},
		{tag: 1, lineLen: MaxLine, payloadLen: MaxPayload},
		{tag: ^uint64(0), lineLen: 7, payloadLen: 42},
	}
	for _, want := range cases {
		var b [frameHeaderSize]byte
		putFrameHeader(b[:], want.tag, want.lineLen, want.payloadLen)
		got, err := parseFrameHeader(b[:])
		if err != nil {
			t.Fatalf("parse(%+v) = %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

// TestFrameHeaderRejections: every malformed header is refused with a
// protocol error before any allocation or read happens.
func TestFrameHeaderRejections(t *testing.T) {
	mk := func(tag uint64, lineLen, payloadLen uint32) []byte {
		b := make([]byte, frameHeaderSize)
		binary.BigEndian.PutUint64(b[0:8], tag)
		binary.BigEndian.PutUint32(b[8:12], lineLen)
		binary.BigEndian.PutUint32(b[12:16], payloadLen)
		return b
	}
	cases := []struct {
		name string
		raw  []byte
	}{
		{"short header", mk(1, 1, 0)[:frameHeaderSize-1]},
		{"zero tag", mk(0, 1, 0)},
		{"zero line length", mk(1, 0, 0)},
		{"line length over MaxLine", mk(1, MaxLine+1, 0)},
		{"payload over MaxPayload", mk(1, 1, MaxPayload+1)},
		{"huge payload length", mk(1, 1, ^uint32(0)>>1)},
	}
	for _, c := range cases {
		if _, err := parseFrameHeader(c.raw); err == nil ||
			!strings.Contains(err.Error(), "protocol error") {
			t.Errorf("%s: err = %v, want protocol error", c.name, err)
		}
	}
}

// TestQueueFrameValidation: the writer refuses frames the reader would
// reject, before anything hits the wire.
func TestQueueFrameValidation(t *testing.T) {
	var buf bytes.Buffer
	c := newCodec(&buf)
	defer c.release()
	if err := c.queueFrame(1, []string{"bad\nline"}, nil); err == nil {
		t.Error("embedded newline accepted")
	}
	if err := c.queueFrame(1, nil, nil); err == nil {
		t.Error("empty line accepted")
	}
	if err := c.queueFrame(1, []string{strings.Repeat("x", MaxLine+1)}, nil); err == nil {
		t.Error("oversized line accepted")
	}
	if err := c.queueFrame(1, []string{"ok"}, make([]byte, MaxPayload+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

// TestFrameWireRoundTrip queues frames through a codec and reads them
// back, payloads included, in order.
func TestFrameWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := newCodec(&buf)
	defer w.release()
	if err := w.queueFrame(7, []string{"pwrite", "1", "0", "5"}, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.queueFrame(8, []string{"whoami"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	r := newCodec(&buf)
	defer r.release()
	h, err := r.readFrameHeader()
	if err != nil || h.tag != 7 || h.payloadLen != 5 {
		t.Fatalf("frame 1 header = %+v, %v", h, err)
	}
	line, err := r.readFrameLine(h.lineLen)
	if err != nil || line != "pwrite 1 0 5" {
		t.Fatalf("frame 1 line = %q, %v", line, err)
	}
	body, err := r.readPayload(h.payloadLen)
	if err != nil || string(body) != "hello" {
		t.Fatalf("frame 1 payload = %q, %v", body, err)
	}
	h, err = r.readFrameHeader()
	if err != nil || h.tag != 8 || h.payloadLen != 0 {
		t.Fatalf("frame 2 header = %+v, %v", h, err)
	}
	if line, err = r.readFrameLine(h.lineLen); err != nil || line != "whoami" {
		t.Fatalf("frame 2 line = %q, %v", line, err)
	}
}

// FuzzFrameDecode throws arbitrary bytes at the v2 frame decoder: it
// must never panic, and any header it does accept stays within the
// validated bounds (so nothing downstream allocates beyond MaxLine +
// MaxPayload). Truncated input, zero tags and hostile lengths must all
// surface as errors before allocation.
func FuzzFrameDecode(f *testing.F) {
	// A valid frame, a truncated one, and hostile headers seed the corpus.
	var valid bytes.Buffer
	c := newCodec(&valid)
	c.queueFrame(3, []string{"stat", "/etc"}, []byte("body"))
	c.flush()
	c.release()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:frameHeaderSize-2])
	zeroTag := make([]byte, frameHeaderSize)
	binary.BigEndian.PutUint32(zeroTag[8:12], 4)
	f.Add(zeroTag)
	huge := make([]byte, frameHeaderSize)
	binary.BigEndian.PutUint64(huge[0:8], 9)
	binary.BigEndian.PutUint32(huge[8:12], ^uint32(0))
	binary.BigEndian.PutUint32(huge[12:16], ^uint32(0))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, raw []byte) {
		c := newCodec(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(raw), io.Discard})
		defer c.release()
		for {
			h, err := c.readFrameHeader()
			if err != nil {
				return // malformed or exhausted: rejected without panic
			}
			if h.tag == 0 || h.lineLen < 1 || h.lineLen > MaxLine ||
				h.payloadLen < 0 || h.payloadLen > MaxPayload {
				t.Fatalf("accepted out-of-bounds header %+v", h)
			}
			if _, err := c.readFrameLine(h.lineLen); err != nil {
				return
			}
			if _, err := c.readPayload(h.payloadLen); err != nil {
				return
			}
		}
	})
}
