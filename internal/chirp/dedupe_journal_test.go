package chirp

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"identitybox/internal/acl"
	"identitybox/internal/auth"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// memJournal is an in-memory DedupeJournal; failNext makes the next
// append fail once.
type memJournal struct {
	mu       sync.Mutex
	entries  map[string][]string
	failNext bool
}

func newMemJournal() *memJournal { return &memJournal{entries: make(map[string][]string)} }

func (j *memJournal) AppendDedupe(key string, reply []string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failNext {
		j.failNext = false
		return errors.New("journal full")
	}
	j.entries[key] = append([]string(nil), reply...)
	return nil
}

func (j *memJournal) snapshot() map[string][]string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]string, len(j.entries))
	for k, v := range j.entries {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// dedupeServer starts a server whose kernel counts sim executions, with
// the given journal, seed and registry.
func dedupeServer(t *testing.T, j DedupeJournal, seed map[string][]string, reg *obs.Registry, logf func(string, ...any)) (*Server, *atomic.Int64) {
	t.Helper()
	fs := vfs.New("owner")
	k := kernel.New(fs, vclock.Default())
	var execs atomic.Int64
	k.RegisterProgram("sim", func(p *kernel.Proc, args []string) int {
		execs.Add(1)
		return 0
	})
	if err := fs.WriteFile("/sim.exe", kernel.ExecutableBytes("sim"), 0o755, "owner"); err != nil {
		t.Fatal(err)
	}
	rootACL := &acl.ACL{}
	rootACL.Set("unix:admin", acl.All, acl.None)
	srv, err := NewServer(k, ServerOptions{
		Owner:         "owner",
		RootACL:       rootACL,
		Verifiers:     map[auth.Method]auth.Verifier{auth.MethodUnix: &auth.UnixVerifier{}},
		DedupeJournal: j,
		DedupeSeed:    seed,
		Metrics:       reg,
		Logf:          logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &execs
}

// TestDedupeJournalReceivesTokenedReplies: every tokened reply reaches
// the journal under the principal-scoped key.
func TestDedupeJournalReceivesTokenedReplies(t *testing.T) {
	j := newMemJournal()
	srv, _ := dedupeServer(t, j, nil, nil, nil)
	cl := adminClient(t, srv, ClientOptions{})
	token := NewRequestToken()
	if _, err := cl.ExecToken(token, "/", "/sim.exe"); err != nil {
		t.Fatal(err)
	}
	got := j.snapshot()
	key := dedupeKey("unix:admin", token)
	reply, ok := got[key]
	if !ok {
		t.Fatalf("journal has no entry for %q: %v", key, got)
	}
	if len(reply) == 0 || reply[0] != "ok" {
		t.Fatalf("journaled reply = %v", reply)
	}
}

// TestDedupeSeedAnswersRetryWithoutExecution is the exactly-once story
// across a restart: a retry of an already-journaled token against a
// freshly seeded server replays the reply and never runs the program.
func TestDedupeSeedAnswersRetryWithoutExecution(t *testing.T) {
	j := newMemJournal()
	srv1, execs1 := dedupeServer(t, j, nil, nil, nil)
	cl1 := adminClient(t, srv1, ClientOptions{})
	token := NewRequestToken()
	res1, err := cl1.ExecToken(token, "/", "/sim.exe")
	if err != nil {
		t.Fatal(err)
	}
	if execs1.Load() != 1 {
		t.Fatalf("first server ran sim %d times, want 1", execs1.Load())
	}

	// "Restart": a brand-new server seeded from the journal.
	srv2, execs2 := dedupeServer(t, nil, j.snapshot(), nil, nil)
	cl2 := adminClient(t, srv2, ClientOptions{})
	res2, err := cl2.ExecToken(token, "/", "/sim.exe")
	if err != nil {
		t.Fatal(err)
	}
	if execs2.Load() != 0 {
		t.Fatalf("retry re-executed on the recovered server %d times, want 0", execs2.Load())
	}
	if res2.Code != res1.Code {
		t.Fatalf("replayed result %+v, original %+v", res2, res1)
	}
}

// TestDedupeJournalFailureDoesNotBlockReply: a failing journal degrades
// durability (counted, logged), never availability.
func TestDedupeJournalFailureDoesNotBlockReply(t *testing.T) {
	j := newMemJournal()
	j.failNext = true
	reg := obs.NewRegistry()
	var lines []string
	var mu sync.Mutex
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, format)
	}
	srv, _ := dedupeServer(t, j, nil, reg, logf)
	cl := adminClient(t, srv, ClientOptions{})
	if _, err := cl.ExecToken(NewRequestToken(), "/", "/sim.exe"); err != nil {
		t.Fatalf("reply must still be delivered: %v", err)
	}
	if got := reg.Counter(MetricDedupeJournalErrs).Value(); got != 1 {
		t.Fatalf("journal error counter = %d, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range lines {
		if strings.Contains(l, "dedupe journal") {
			found = true
		}
	}
	if !found {
		t.Fatal("journal failure not logged")
	}
}
