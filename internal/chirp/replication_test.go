package chirp

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"identitybox/internal/acl"
	"identitybox/internal/auth"
	"identitybox/internal/durable"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/replica"
	"identitybox/internal/vclock"
)

// replTTL is the lease term the replication tests run with: short
// enough that a failover completes inside a test, long enough that the
// race detector's scheduling jitter cannot expire a healthy primary.
const replTTL = 400 * time.Millisecond

func adminAuth() []auth.Authenticator {
	return []auth.Authenticator{&auth.UnixClient{User: "admin"}}
}

// freePort reserves a listening address for a member whose replication
// node must know it before the server exists (the lease identity and
// the catalog entry must agree).
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// replMember is one replica-set member wired exactly like chirpd does
// it: durable store shipping into a publisher, a replication node
// running the role, and a server whose durability/dedupe/role hooks all
// point at the node.
type replMember struct {
	t       *testing.T
	name    string
	addr    string
	reg     *obs.Registry
	store   *durable.Store
	pub     *replica.Publisher
	node    *replica.Node
	srv     *Server
	execs   atomic.Int64
	shipped atomic.Int64

	// killAt arms a crash at an absolute shipped-group count (0 =
	// disarmed); see armKill. killDelay (nanoseconds) jitters the crash
	// past the boundary. The chaos matrix sets both before driving
	// traffic at the member.
	killAt      atomic.Int64
	killDelay   atomic.Int64
	killTrigger chan struct{}

	killOnce sync.Once
	trigOnce sync.Once
}

// armKill schedules this member's death right after the next `after`
// commit groups ship. Arming relative to the current count keeps the
// chaos matrix aligned on workflow boundaries regardless of how many
// groups setup itself shipped (the epoch-adoption record, for one).
func (m *replMember) armKill(after int64) {
	m.killAt.Store(m.shipped.Load() + after)
}

// startReplMember brings a member up. replicaOf empty starts a
// primary; armKill schedules a group-boundary crash (server severed,
// node stopped, stream closed) for the chaos matrix.
func startReplMember(t *testing.T, name, catalogAddr, replicaOf string) *replMember {
	t.Helper()
	m := &replMember{t: t, name: name, killTrigger: make(chan struct{})}
	m.reg = obs.NewRegistry()
	m.pub = replica.NewPublisher(m.reg, replTTL)
	onShip := func(first, last uint64, records int, frames []byte) {
		m.pub.Ship(first, last, records, frames)
		if at := m.killAt.Load(); m.shipped.Add(1) == at && at > 0 {
			m.trigOnce.Do(func() { close(m.killTrigger) })
		}
	}
	store, err := durable.Open(t.TempDir(), durable.Options{
		Owner:       "owner",
		SyncEveryN:  1,
		ReplicaMode: replicaOf != "",
		OnShip:      onShip,
		Metrics:     m.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.store = store
	t.Cleanup(func() { store.Close() })
	m.pub.Bind(store)

	// Follower bootstrap happens before the kernel is built, mirroring
	// chirpd: a snapshot load replaces the file-system tree.
	var firstStream *ReplicaSession
	if replicaOf != "" {
		rs, err := DialReplica(replicaOf, adminAuth(), store.AppliedLSN(), 2*time.Second)
		if err != nil {
			t.Fatalf("bootstrap dial %s: %v", replicaOf, err)
		}
		rs.IdleTimeout = replTTL
		if rs.Snap != nil {
			if err := store.LoadReplicaSnapshot(rs.Snap); err != nil {
				t.Fatal(err)
			}
		}
		firstStream = rs
	}

	k := kernel.New(store.FS(), vclock.Default())
	k.RegisterProgram("sim", func(p *kernel.Proc, args []string) int {
		m.execs.Add(1)
		in, err := p.ReadFile("input.dat")
		if err != nil {
			return 1
		}
		if err := p.WriteFile("out.dat", bytes.ToUpper(in), 0o644); err != nil {
			return 2
		}
		return 0
	})

	m.addr = freePort(t)
	var srvSlot atomic.Pointer[Server]
	dial := func(target string, fromLSN uint64) (replica.Stream, error) {
		if s := firstStream; s != nil {
			firstStream = nil
			return s, nil
		}
		rs, err := DialReplica(target, adminAuth(), fromLSN, 2*time.Second)
		if err != nil {
			return nil, err
		}
		rs.IdleTimeout = replTTL
		if rs.Snap != nil {
			rs.Close()
			return nil, errors.New("re-dial demanded a snapshot bootstrap")
		}
		return rs, nil
	}
	node, err := replica.Start(replica.Config{
		Name:        name,
		Addr:        m.addr,
		CatalogAddr: catalogAddr,
		TTL:         replTTL,
		Store:       store,
		Publisher:   m.pub,
		PrimaryAddr: replicaOf,
		Dial:        dial,
		OnPromote: func(epoch uint64) {
			if s := srvSlot.Load(); s != nil {
				s.ReseedDedupe(store.DedupeEntries())
			}
		},
		Metrics: m.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.node = node

	rootACL := &acl.ACL{}
	rootACL.Set("unix:admin", acl.All, acl.None)
	hb := time.Duration(0)
	if catalogAddr != "" {
		hb = replTTL / 3
	}
	srv, err := NewServer(k, ServerOptions{
		Name:           name,
		Owner:          "owner",
		RootACL:        rootACL,
		Verifiers:      map[auth.Method]auth.Verifier{auth.MethodUnix: &auth.UnixVerifier{}},
		CatalogAddr:    catalogAddr,
		HeartbeatEvery: hb,
		Repl:           m.pub,
		Role:           node,
		Durability:     node,
		DedupeJournal:  node,
		DedupeSeed:     store.DedupeEntries(),
		Metrics:        m.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvSlot.Store(srv)
	m.srv = srv
	if err := srv.Listen(m.addr); err != nil {
		t.Fatal(err)
	}
	go func() {
		<-m.killTrigger
		if d := time.Duration(m.killDelay.Load()); d > 0 {
			time.Sleep(d)
		}
		m.kill()
	}()
	t.Cleanup(m.kill)
	return m
}

// kill simulates this member's death: sessions severed, role loops
// stopped, the ship stream closed (followers see the break at once).
func (m *replMember) kill() {
	m.trigOnce.Do(func() { close(m.killTrigger) }) // release the armed-kill goroutine
	m.killOnce.Do(func() {
		if m.srv != nil {
			m.srv.Close()
		}
		if m.node != nil {
			m.node.Stop()
		}
		m.pub.Close()
	})
}

func (m *replMember) role() string {
	r, _ := m.node.Role()
	return r
}

// pollUntil waits for cond with an explicit deadline (promotions take a
// lease TTL plus an election window; waitFor's two seconds can be
// tight under -race).
func pollUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationEndToEnd streams a primary's writes to a live
// follower over the wire: the follower serves reads behind a waitlsn
// barrier, reports its role in stats, and refuses writes with
// ENOTPRIMARY naming the primary.
func TestReplicationEndToEnd(t *testing.T) {
	primary := startReplMember(t, "vol", "", "")
	follower := startReplMember(t, "vol", "", primary.addr)

	pollUntil(t, 2*time.Second, "follower subscription", func() bool { return primary.pub.Subscribers() == 1 })

	cl := adminClient(t, primary.srv, ClientOptions{})
	if err := cl.Mkdir("/work", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFile("/work/data", []byte("replicated payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != replica.RolePrimary || st.AppliedLSN == 0 {
		t.Fatalf("primary stats = role %q lsn %d", st.Role, st.AppliedLSN)
	}

	// Bounded-staleness read: wait for the primary's horizon, then read.
	fcl := adminClient(t, follower.srv, ClientOptions{})
	applied, err := fcl.WaitLSN(st.AppliedLSN, 2*time.Second)
	if err != nil {
		t.Fatalf("waitlsn: %v", err)
	}
	if applied < st.AppliedLSN {
		t.Fatalf("waitlsn reported %d, want >= %d", applied, st.AppliedLSN)
	}
	data, err := fcl.GetFile("/work/data")
	if err != nil || string(data) != "replicated payload" {
		t.Fatalf("follower read = %q, %v", data, err)
	}
	fst, err := fcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if fst.Role != replica.RoleFollower {
		t.Fatalf("follower stats role = %q", fst.Role)
	}

	// Writes against the follower are refused, naming the primary.
	err = fcl.Mkdir("/nope", 0o755)
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower write = %v, want ErrNotPrimary", err)
	}
	if got := PrimaryFromError(err); got != primary.addr {
		t.Fatalf("PrimaryFromError = %q, want %q", got, primary.addr)
	}

	// Semi-sync: the follower has acked the durable horizon (the write
	// replies above already waited on it).
	if acked := primary.pub.MaxAcked(); acked < st.AppliedLSN {
		t.Fatalf("follower acked %d, want >= %d", acked, st.AppliedLSN)
	}
	if groups := primary.reg.Counter(replica.MetricGroupsShipped).Value(); groups < 2 {
		t.Fatalf("%s = %d, want >= 2", replica.MetricGroupsShipped, groups)
	}
	// The standalone server answers waitlsn with 0 (no replication).
	srv, _, _ := testServer(t)
	scl := adminClient(t, srv, ClientOptions{})
	if applied, err := scl.WaitLSN(42, time.Second); err != nil || applied != 0 {
		t.Fatalf("standalone waitlsn = %d, %v", applied, err)
	}
	if sst, err := scl.Stats(); err != nil || sst.Role != "" {
		t.Fatalf("standalone stats role = %q, %v", sst.Role, err)
	}
}

// TestFollowerBootstrapFromSnapshot compacts the primary before the
// follower ever subscribes, forcing the snapshot path.
func TestFollowerBootstrapFromSnapshot(t *testing.T) {
	primary := startReplMember(t, "vol", "", "")
	cl := adminClient(t, primary.srv, ClientOptions{})
	if err := cl.PutFile("/pre-compaction", []byte("early history"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := primary.store.Compact(); err != nil {
		t.Fatal(err)
	}
	follower := startReplMember(t, "vol", "", primary.addr)
	fcl := adminClient(t, follower.srv, ClientOptions{})
	data, err := fcl.GetFile("/pre-compaction")
	if err != nil || string(data) != "early history" {
		t.Fatalf("bootstrapped read = %q, %v", data, err)
	}
	// And the live stream still works past the snapshot.
	if err := cl.PutFile("/post-snapshot", []byte("later"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fcl.WaitLSN(st.AppliedLSN, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if data, err := fcl.GetFile("/post-snapshot"); err != nil || string(data) != "later" {
		t.Fatalf("post-snapshot read = %q, %v", data, err)
	}
}

// TestPromotionOnPrimaryKill is the basic failover: the primary dies,
// the follower takes the lease within roughly one TTL, accepts writes
// under the new epoch, and replays acked tokened requests from its
// replicated dedupe journal instead of re-executing them.
func TestPromotionOnPrimaryKill(t *testing.T) {
	cat := NewCatalog()
	cat.LeaseTTL = replTTL
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	primary := startReplMember(t, "vol", cat.Addr(), "")
	follower := startReplMember(t, "vol", cat.Addr(), primary.addr)
	pollUntil(t, 2*time.Second, "follower subscription", func() bool { return primary.pub.Subscribers() == 1 })

	cl := adminClient(t, primary.srv, ClientOptions{})
	if err := cl.Mkdir("/work", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFile("/work/sim.exe", kernel.ExecutableBytes("sim"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFile("/work/input.dat", []byte("signal data"), 0o644); err != nil {
		t.Fatal(err)
	}
	token := NewRequestToken()
	res, err := cl.ExecToken(token, "/work", "/work/sim.exe")
	if err != nil || res.Code != 0 {
		t.Fatalf("exec = %+v, %v", res, err)
	}
	if primary.execs.Load() != 1 {
		t.Fatalf("primary execs = %d", primary.execs.Load())
	}
	_, oldEpoch := primary.node.Role()

	killed := time.Now()
	primary.kill()
	pollUntil(t, 10*replTTL, "follower promotion", func() bool { return follower.role() == replica.RolePrimary })
	t.Logf("promotion %v after the kill (lease ttl %v)", time.Since(killed), replTTL)

	if got := follower.reg.Counter(replica.MetricPromotions).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", replica.MetricPromotions, got)
	}
	fcl := adminClient(t, follower.srv, ClientOptions{})
	fst, err := fcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if fst.Role != replica.RolePrimary || fst.Epoch <= oldEpoch {
		t.Fatalf("promoted stats = role %q epoch %d (old epoch %d)", fst.Role, fst.Epoch, oldEpoch)
	}

	// Every acked mutation survived the failover.
	if data, err := fcl.GetFile("/work/out.dat"); err != nil || string(data) != "SIGNAL DATA" {
		t.Fatalf("acked exec output after failover = %q, %v", data, err)
	}
	// The tokened retry replays from the replicated dedupe journal.
	res2, err := fcl.ExecToken(token, "/work", "/work/sim.exe")
	if err != nil || res2.Code != res.Code {
		t.Fatalf("retried exec = %+v, %v", res2, err)
	}
	if follower.execs.Load() != 0 {
		t.Fatalf("tokened retry re-executed on the promoted follower (%d times)", follower.execs.Load())
	}
	// And the promoted primary accepts fresh writes.
	if err := fcl.PutFile("/work/after.txt", []byte("new epoch"), 0o644); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
}

// TestFencingAfterPartitionHeals: a deposed primary coming back finds
// the lease held at a higher epoch, fences itself (refusing writes and
// naming the real primary), and its stale stream cannot apply — the
// epoch check rejects replication from a fenced source.
func TestFencingAfterPartitionHeals(t *testing.T) {
	cat := NewCatalog()
	cat.LeaseTTL = replTTL
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	// A holds the lease first.
	a := startReplMember(t, "vol", cat.Addr(), "")
	pollUntil(t, 2*time.Second, "A holding the lease", func() bool {
		holder, _ := cat.LeaseHolder("vol")
		return holder == a.addr
	})
	// B boots believing it is also a primary (a healed partition where
	// both sides kept primary state). Its first claim is denied: fenced.
	b := startReplMember(t, "vol", cat.Addr(), "")
	pollUntil(t, 10*replTTL, "B fenced", func() bool { return b.role() == replica.RoleFenced })

	bcl := adminClient(t, b.srv, ClientOptions{})
	err := bcl.Mkdir("/split-brain", 0o755)
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("fenced write = %v, want ErrNotPrimary", err)
	}
	if got := PrimaryFromError(err); got != a.addr {
		t.Fatalf("fenced refusal names %q, want %q", got, a.addr)
	}
	// Reads still serve (the fenced state is stale, not gone).
	if _, err := bcl.Whoami(); err != nil {
		t.Fatalf("read against fenced member: %v", err)
	}
	// The fence is sticky: even with A's renewals stopped and the lease
	// expired, B refuses a re-grant — its log may have diverged.
	a.kill()
	time.Sleep(3 * replTTL)
	if b.role() != replica.RoleFenced {
		t.Fatalf("fenced node resumed as %s after the lease freed", b.role())
	}

	// A stale-epoch stream cannot apply: a follower that adopted epoch N
	// rejects batches stamped with an older term.
	f, err := durable.Open(t.TempDir(), durable.Options{Owner: "owner", SyncEveryN: 1, ReplicaMode: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	frames, first, last, _, err := a.store.WALTailSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ApplyReplicated(5, first, last, frames); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ApplyReplicated(3, last+1, last+1, frames); !errors.Is(err, durable.ErrStaleEpoch) {
		t.Fatalf("stale-epoch apply = %v, want ErrStaleEpoch", err)
	}
}

// TestReplicationStatsAndMetrics: the replication series land in the
// registry exposition — lag gauge, applied LSN, subscriber gauge.
func TestReplicationStatsAndMetrics(t *testing.T) {
	primary := startReplMember(t, "vol", "", "")
	follower := startReplMember(t, "vol", "", primary.addr)
	pollUntil(t, 2*time.Second, "subscription", func() bool { return primary.pub.Subscribers() == 1 })
	cl := adminClient(t, primary.srv, ClientOptions{})
	if err := cl.PutFile("/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	text := primary.reg.Text()
	for _, name := range []string{replica.MetricGroupsShipped, replica.MetricBytesShipped, replica.MetricSubscribers, replica.MetricLag, replica.MetricAppliedLSN} {
		if !contains(text, name) {
			t.Errorf("primary exposition missing %s", name)
		}
	}
	ftext := follower.reg.Text()
	if !contains(ftext, replica.MetricAppliedLSN) {
		t.Errorf("follower exposition missing %s", replica.MetricAppliedLSN)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
