package chirp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"identitybox/internal/auth"
	"identitybox/internal/faultnet"
	"identitybox/internal/kernel"
)

// pipelinedClient dials as unix:admin with a pipelining window.
func pipelinedClient(t *testing.T, srv *Server, depth int) *Client {
	t.Helper()
	cl, err := DialOpts(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}},
		ClientOptions{PipelineDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// patterned builds a non-repeating test payload so any chunk landing at
// the wrong offset changes the bytes.
func patterned(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i>>8 + i)
	}
	return out
}

// TestPipelinedPutGetRoundTrip pushes files of awkward sizes through
// the windowed transfer paths and checks byte-exact round trips, cross-
// checked by a serial client reading the same files.
func TestPipelinedPutGetRoundTrip(t *testing.T) {
	srv, _, _ := testServer(t)
	pipe := pipelinedClient(t, srv, 4)
	serial := pipelinedClient(t, srv, 1)
	sizes := []int{0, 1, transferChunk - 1, transferChunk, transferChunk + 1, 4*transferChunk + 123}
	for i, size := range sizes {
		path := fmt.Sprintf("/f%d", i)
		want := patterned(size)
		if err := pipe.PutFile(path, want, 0o644); err != nil {
			t.Fatalf("PutFile(%d bytes): %v", size, err)
		}
		got, err := pipe.GetFile(path)
		if err != nil {
			t.Fatalf("GetFile(%d bytes): %v", size, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pipelined round trip corrupted %d-byte file", size)
		}
		cross, err := serial.GetFile(path)
		if err != nil {
			t.Fatalf("serial GetFile(%d bytes): %v", size, err)
		}
		if !bytes.Equal(cross, want) {
			t.Fatalf("serial read of pipelined write wrong for %d bytes", size)
		}
	}
}

// TestPipelinedTransferUnderFaults resets the first connection part-way
// through a windowed transfer; the composite layer must restart it on a
// fresh session and deliver intact bytes.
func TestPipelinedTransferUnderFaults(t *testing.T) {
	data := patterned(6 * transferChunk)
	t.Run("put", func(t *testing.T) {
		srv, _, _ := testServer(t)
		inj := faultnet.New(1, faultnet.Rule{Conn: 1, Op: faultnet.OpWrite, AfterBytes: 150_000, Action: faultnet.Reset})
		cl, err := DialOpts(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}},
			ClientOptions{PipelineDepth: 8, Dialer: inj.Dialer("tcp")})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		if err := cl.PutFile("/blob", data, 0o644); err != nil {
			t.Fatalf("PutFile under faults: %v", err)
		}
		if inj.ConnCount() < 2 {
			t.Fatalf("ConnCount = %d; the reset should have forced a redial", inj.ConnCount())
		}
		got, err := cl.GetFile("/blob")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("readback after faulted put: %d bytes, %v", len(got), err)
		}
	})
	t.Run("get", func(t *testing.T) {
		srv, _, _ := testServer(t)
		inj := faultnet.New(1, faultnet.Rule{Conn: 1, Op: faultnet.OpRead, AfterBytes: 150_000, Action: faultnet.Reset})
		cl, err := DialOpts(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}},
			ClientOptions{PipelineDepth: 8, Dialer: inj.Dialer("tcp")})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		if err := cl.PutFile("/blob", data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := cl.GetFile("/blob")
		if err != nil {
			t.Fatalf("GetFile under faults: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("faulted get returned %d bytes, want %d intact", len(got), len(data))
		}
		if inj.ConnCount() < 2 {
			t.Fatalf("ConnCount = %d; the reset should have forced a redial", inj.ConnCount())
		}
	})
}

// TestPipelinedRemoteErrorDrainsWindow fires a full window at a dead
// descriptor: every chunk answers EBADF, the first error surfaces, and
// the drained wire leaves the session usable.
func TestPipelinedRemoteErrorDrainsWindow(t *testing.T) {
	srv, _, _ := testServer(t)
	cl := pipelinedClient(t, srv, 4)
	fd, err := cl.Open("/dead", kernel.OWronly|kernel.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CloseFD(fd); err != nil {
		t.Fatal(err)
	}
	if err := cl.pwriteAll(fd, patterned(5*transferChunk)); !errors.Is(err, kernel.ErrBadFD) {
		t.Fatalf("pwriteAll on closed fd = %v, want EBADF", err)
	}
	if _, err := cl.Whoami(); err != nil {
		t.Fatalf("session unusable after drained pwrite window: %v", err)
	}
	if _, err := cl.preadAll(fd, 3*transferChunk); !errors.Is(err, kernel.ErrBadFD) {
		t.Fatalf("preadAll on closed fd: want EBADF")
	}
	if _, err := cl.Whoami(); err != nil {
		t.Fatalf("session unusable after drained pread window: %v", err)
	}
}

// TestPipelinedGetShrunkFile truncates a file between the stat and the
// windowed reads: the transfer must return the shrunken content and
// drain the overhanging replies without losing wire alignment.
func TestPipelinedGetShrunkFile(t *testing.T) {
	srv, _, _ := testServer(t)
	cl := pipelinedClient(t, srv, 4)
	orig := patterned(3*transferChunk + 100)
	if err := cl.PutFile("/shrink", orig, 0o644); err != nil {
		t.Fatal(err)
	}
	fd, err := cl.Open("/shrink", kernel.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.CloseFD(fd)
	newSize := int64(transferChunk + 50)
	if err := cl.Truncate("/shrink", newSize); err != nil {
		t.Fatal(err)
	}
	got, err := cl.preadAll(fd, int64(len(orig)))
	if err != nil {
		t.Fatalf("preadAll after shrink: %v", err)
	}
	if int64(len(got)) != newSize || !bytes.Equal(got, orig[:newSize]) {
		t.Fatalf("shrunken read = %d bytes, want the %d-byte prefix", len(got), newSize)
	}
	if _, err := cl.Whoami(); err != nil {
		t.Fatalf("session unusable after shrunken window: %v", err)
	}
}

// TestReadPayloadCap: wire-announced payload lengths outside
// [0, MaxPayload] are protocol errors, refused before any read or
// allocation.
func TestReadPayloadCap(t *testing.T) {
	for _, n := range []int{-1, MaxPayload + 1} {
		c := newCodec(bytes.NewBuffer(nil))
		if _, err := c.readPayload(n); err == nil || !strings.Contains(err.Error(), "protocol error") {
			t.Errorf("readPayload(%d) = %v, want protocol error", n, err)
		}
		c.release()
	}
	// The boundary value itself is accepted (and fails only on EOF).
	c := newCodec(bytes.NewBuffer(nil))
	defer c.release()
	if _, err := c.readPayload(MaxPayload); err == nil || strings.Contains(err.Error(), "protocol error") {
		t.Errorf("readPayload(MaxPayload) = %v, want plain EOF", err)
	}
}

// devZero is an inexhaustible reader, so payload reads never error.
type devZero struct{}

func (devZero) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// TestCodecPooledPathZeroAlloc asserts the pooled wire path is
// allocation-free in steady state: payload reads serve from the codec
// scratch, payload writes go straight through the pooled bufio.
func TestCodecPooledPathZeroAlloc(t *testing.T) {
	c := newCodec(struct {
		io.Reader
		io.Writer
	}{devZero{}, io.Discard})
	defer c.release()
	payload := make([]byte, transferChunk)
	if _, err := c.readPayload(transferChunk); err != nil { // warm the scratch
		t.Fatal(err)
	}
	hitsBefore := poolHits.Load()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.readPayload(transferChunk); err != nil {
			t.Fatal(err)
		}
		if err := c.writePayload(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("pooled wire path allocates %.1f allocs/op; want 0", allocs)
	}
	if poolHits.Load() <= hitsBefore {
		t.Fatal("warm payload reads did not count as pool hits")
	}
}
