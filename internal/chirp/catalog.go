package chirp

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"identitybox/internal/obs"
)

// Catalog collects heartbeats from Chirp servers over UDP and publishes
// the set of available servers to interested parties over TCP, one
// server per line: name address owner age-ms epoch lsn role.
//
// The same UDP socket arbitrates write leases for replica sets (see
// the lease protocol in internal/replica): the primary renews a TTL'd
// lease under the set's name; when renewals stop, the catalog opens a
// short election window, collects claims from followers, and grants
// the next epoch to the highest applied LSN — the epoch number fences
// the deposed primary everywhere.
type Catalog struct {
	mu      sync.Mutex
	servers map[string]*CatalogEntry
	leases  map[string]*leaseState
	now     func() time.Time

	udp    *net.UDPConn
	tcp    net.Listener
	wg     sync.WaitGroup
	closed bool

	// Expiry drops servers not heard from within this window (default
	// 15 minutes, matching production Chirp catalogs).
	Expiry time.Duration

	// LeaseTTL is the write-lease term (default 3 seconds). A primary
	// renews well inside it; failover latency is bounded by roughly one
	// TTL plus the election window (TTL/4).
	LeaseTTL time.Duration

	// Metrics, populated by SetMetrics; nil (and unrecorded) without it.
	heartbeats *obs.Counter
	malformed  *obs.Counter
	queries    *obs.Counter
	live       *obs.Gauge
	elections  *obs.Counter
}

// Catalog metric families (see SetMetrics).
const (
	MetricCatalogHeartbeats = "catalog_heartbeats_total"
	MetricCatalogMalformed  = "catalog_heartbeats_malformed_total"
	MetricCatalogQueries    = "catalog_queries_total"
	MetricCatalogLive       = "catalog_servers_live"
	MetricCatalogElections  = "catalog_lease_elections_total"
)

// SetMetrics registers the catalog's counters with a registry: accepted
// and malformed heartbeat datagrams, served queries, a live-server
// gauge refreshed on every expiry sweep, and lease elections run. Call
// before Listen.
func (c *Catalog) SetMetrics(reg *obs.Registry) {
	reg.Help(MetricCatalogHeartbeats, "Heartbeat datagrams accepted.")
	reg.Help(MetricCatalogMalformed, "Heartbeat datagrams dropped as malformed.")
	reg.Help(MetricCatalogQueries, "Server-list queries served.")
	reg.Help(MetricCatalogLive, "Servers currently live (refreshed on expiry sweeps).")
	reg.Help(MetricCatalogElections, "Write-lease elections decided.")
	c.heartbeats = reg.Counter(MetricCatalogHeartbeats)
	c.malformed = reg.Counter(MetricCatalogMalformed)
	c.queries = reg.Counter(MetricCatalogQueries)
	c.live = reg.Gauge(MetricCatalogLive)
	c.elections = reg.Counter(MetricCatalogElections)
}

// CatalogEntry describes one known server. Age is computed at listing
// time; Epoch, LSN and Role are the server's self-reported replication
// state (zero values for servers that do not replicate).
type CatalogEntry struct {
	Name      string
	Addr      string
	Owner     string
	LastHeard time.Time
	Age       time.Duration
	Epoch     uint64
	LSN       uint64
	Role      string
}

// leaseState is one replica set's write lease.
type leaseState struct {
	holder   string // advertised address of the current primary
	epoch    uint64
	expiry   time.Time
	election *leaseElection // non-nil while an election window is open
}

// leaseElection collects claims during the post-expiry window; replies
// are deferred until the window closes and the winner is known.
type leaseElection struct {
	claims map[string]*leaseClaim // by claimant address
}

// leaseClaim is one follower's bid: its applied LSN decides the
// election; src is where the grant or denial goes.
type leaseClaim struct {
	addr  string
	lsn   uint64
	epoch uint64
	src   *net.UDPAddr
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		servers:  make(map[string]*CatalogEntry),
		leases:   make(map[string]*leaseState),
		now:      time.Now,
		Expiry:   15 * time.Minute,
		LeaseTTL: 3 * time.Second,
	}
}

// SetClock overrides the catalog clock (tests). Lease expiry follows
// the injected clock; election windows are real timers.
func (c *Catalog) SetClock(now func() time.Time) { c.now = now }

// Listen binds the heartbeat (UDP) and query (TCP) endpoints to the
// same address string and begins serving.
func (c *Catalog) Listen(addr string) error {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	c.udp, err = net.ListenUDP("udp", uaddr)
	if err != nil {
		return err
	}
	// Use the resolved UDP port for TCP too, so one address serves both.
	c.tcp, err = net.Listen("tcp", c.udp.LocalAddr().String())
	if err != nil {
		c.udp.Close()
		return err
	}
	c.wg.Add(2)
	go c.heartbeatLoop()
	go c.queryLoop()
	return nil
}

// Addr reports the bound address (same for UDP heartbeats and TCP
// queries).
func (c *Catalog) Addr() string {
	if c.udp == nil {
		return ""
	}
	return c.udp.LocalAddr().String()
}

// Close stops both listeners.
func (c *Catalog) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.udp != nil {
		c.udp.Close()
	}
	if c.tcp != nil {
		c.tcp.Close()
	}
	c.wg.Wait()
	return nil
}

func (c *Catalog) heartbeatLoop() {
	defer c.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, src, err := c.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		line := strings.TrimSpace(string(buf[:n]))
		if strings.HasPrefix(line, "lease ") {
			c.handleLease(line, src)
			continue
		}
		c.Record(line)
	}
}

// Record parses one heartbeat datagram:
//
//	chirp <name> <addr> <owner> [epoch=N lsn=N role=R]
//
// The bracketed tokens are the replication extension; heartbeats from
// servers that do not replicate carry none, and unknown tokens are
// ignored so newer servers stay compatible with this catalog.
func (c *Catalog) Record(datagram string) {
	fields, err := splitFields(strings.TrimSpace(datagram))
	if err != nil || len(fields) < 4 || fields[0] != "chirp" {
		if c.malformed != nil {
			c.malformed.Inc()
		}
		return
	}
	e := &CatalogEntry{
		Name:  fields[1],
		Addr:  fields[2],
		Owner: fields[3],
	}
	for _, tok := range fields[4:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			continue
		}
		switch k {
		case "epoch":
			e.Epoch, _ = strconv.ParseUint(v, 10, 64)
		case "lsn":
			e.LSN, _ = strconv.ParseUint(v, 10, 64)
		case "role":
			e.Role = v
		}
	}
	if c.heartbeats != nil {
		c.heartbeats.Inc()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e.LastHeard = c.now()
	c.servers[e.Addr] = e
}

// Entries lists the live servers, sorted by name, with ages computed
// against the catalog clock. Servers past the Expiry staleness budget
// are dropped.
func (c *Catalog) Entries() []CatalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]CatalogEntry, 0, len(c.servers))
	for addr, e := range c.servers {
		age := now.Sub(e.LastHeard)
		if age > c.Expiry {
			delete(c.servers, addr)
			continue
		}
		snap := *e
		snap.Age = age
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if c.live != nil {
		c.live.Set(int64(len(out)))
	}
	return out
}

// --- write leases -------------------------------------------------------

// handleLease processes one `lease <name> <addr> <lsn> <epoch>` claim.
// A live lease renews for its holder and denies everyone else; an
// expired (or absent) lease opens an election window during which all
// claims are collected, decided when the window closes.
func (c *Catalog) handleLease(line string, src *net.UDPAddr) {
	fields, err := splitFields(line)
	if err != nil || len(fields) != 5 {
		if c.malformed != nil {
			c.malformed.Inc()
		}
		return
	}
	name, addr := fields[1], fields[2]
	lsn, err1 := strconv.ParseUint(fields[3], 10, 64)
	epoch, err2 := strconv.ParseUint(fields[4], 10, 64)
	if err1 != nil || err2 != nil {
		if c.malformed != nil {
			c.malformed.Inc()
		}
		return
	}
	claim := &leaseClaim{addr: addr, lsn: lsn, epoch: epoch, src: src}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	ls := c.leases[name]
	if ls != nil && ls.election != nil {
		// Window open: collect (a repeated claim from the same address
		// keeps its best LSN) and reply when it closes.
		if prev, ok := ls.election.claims[addr]; !ok || lsn > prev.lsn {
			ls.election.claims[addr] = claim
		}
		return
	}
	if ls != nil && now.Before(ls.expiry) {
		if addr == ls.holder {
			// Renewal: extend, and adopt a higher epoch the holder knows
			// (it survives a catalog restart that forgot the term).
			if epoch > ls.epoch {
				ls.epoch = epoch
			}
			ls.expiry = now.Add(c.leaseTTL())
			c.replyLease(src, fmt.Sprintf("grant %d %d", ls.epoch, c.leaseTTL().Milliseconds()))
			return
		}
		c.replyLease(src, fmt.Sprintf("deny %d %s", ls.epoch, ls.holder))
		return
	}
	// No live lease: open the election window with this first claim.
	if ls == nil {
		ls = &leaseState{}
		c.leases[name] = ls
	}
	ls.election = &leaseElection{claims: map[string]*leaseClaim{addr: claim}}
	window := c.leaseTTL() / 4
	if window <= 0 {
		window = 50 * time.Millisecond
	}
	time.AfterFunc(window, func() { c.closeElection(name) })
}

func (c *Catalog) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 3 * time.Second
}

// closeElection decides an election window: the claim with the highest
// applied LSN wins (ties break to the lexicographically smallest
// address, so the outcome is deterministic), takes the next epoch, and
// is granted; every other claimant is denied with the winner's name.
func (c *Catalog) closeElection(name string) {
	c.mu.Lock()
	ls := c.leases[name]
	if ls == nil || ls.election == nil {
		c.mu.Unlock()
		return
	}
	claims := ls.election.claims
	ls.election = nil
	var winner *leaseClaim
	maxEpoch := ls.epoch
	for _, cl := range claims {
		if cl.epoch > maxEpoch {
			maxEpoch = cl.epoch
		}
		if winner == nil || cl.lsn > winner.lsn || (cl.lsn == winner.lsn && cl.addr < winner.addr) {
			winner = cl
		}
	}
	ls.epoch = maxEpoch + 1
	ls.holder = winner.addr
	ls.expiry = c.now().Add(c.leaseTTL())
	epoch, ttl := ls.epoch, c.leaseTTL()
	if c.elections != nil {
		c.elections.Inc()
	}
	c.mu.Unlock()
	for _, cl := range claims {
		if cl == winner {
			c.replyLease(cl.src, fmt.Sprintf("grant %d %d", epoch, ttl.Milliseconds()))
		} else {
			c.replyLease(cl.src, fmt.Sprintf("deny %d %s", epoch, winner.addr))
		}
	}
}

// replyLease sends one grant/deny datagram back to a claimant.
func (c *Catalog) replyLease(src *net.UDPAddr, msg string) {
	if c.udp == nil || src == nil {
		return
	}
	c.udp.WriteToUDP([]byte(msg+"\n"), src)
}

// LeaseHolder reports the current holder and epoch of a named lease
// ("" when none is live).
func (c *Catalog) LeaseHolder(name string) (holder string, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ls := c.leases[name]
	if ls == nil || !c.now().Before(ls.expiry) {
		return "", 0
	}
	return ls.holder, ls.epoch
}

func (c *Catalog) queryLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.tcp.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			if c.queries != nil {
				c.queries.Inc()
			}
			for _, e := range c.Entries() {
				fmt.Fprintf(conn, "%s %s %s %d %d %d %s\n",
					q(e.Name), q(e.Addr), q(e.Owner), e.Age.Milliseconds(), e.Epoch, e.LSN, q(e.Role))
			}
		}()
	}
}

// QueryCatalog fetches the server list from a catalog. Lines from an
// older catalog carry only name/addr/owner/age; the replication columns
// (epoch, lsn, role) stay zero for those.
func QueryCatalog(addr string) ([]CatalogEntry, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := newCodec(conn)
	defer c.release()
	var out []CatalogEntry
	for {
		line, err := c.readLine()
		if err != nil {
			break // EOF ends the listing
		}
		fields, err := splitFields(line)
		if err != nil || len(fields) < 4 {
			continue
		}
		e := CatalogEntry{Name: fields[0], Addr: fields[1], Owner: fields[2]}
		if ms, err := strconv.ParseInt(fields[3], 10, 64); err == nil {
			e.Age = time.Duration(ms) * time.Millisecond
		}
		if len(fields) >= 7 {
			e.Epoch, _ = strconv.ParseUint(fields[4], 10, 64)
			e.LSN, _ = strconv.ParseUint(fields[5], 10, 64)
			e.Role = fields[6]
		}
		out = append(out, e)
	}
	return out, nil
}
