package chirp

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"identitybox/internal/obs"
)

// Catalog collects heartbeats from Chirp servers over UDP and publishes
// the set of available servers to interested parties over TCP, one
// server per line: name address owner age-seconds.
type Catalog struct {
	mu      sync.Mutex
	servers map[string]*CatalogEntry
	now     func() time.Time

	udp    *net.UDPConn
	tcp    net.Listener
	wg     sync.WaitGroup
	closed bool

	// Expiry drops servers not heard from within this window (default
	// 15 minutes, matching production Chirp catalogs).
	Expiry time.Duration

	// Metrics, populated by SetMetrics; nil (and unrecorded) without it.
	heartbeats *obs.Counter
	malformed  *obs.Counter
	queries    *obs.Counter
	live       *obs.Gauge
}

// Catalog metric families (see SetMetrics).
const (
	MetricCatalogHeartbeats = "catalog_heartbeats_total"
	MetricCatalogMalformed  = "catalog_heartbeats_malformed_total"
	MetricCatalogQueries    = "catalog_queries_total"
	MetricCatalogLive       = "catalog_servers_live"
)

// SetMetrics registers the catalog's counters with a registry: accepted
// and malformed heartbeat datagrams, served queries, and a live-server
// gauge refreshed on every expiry sweep. Call before Listen.
func (c *Catalog) SetMetrics(reg *obs.Registry) {
	reg.Help(MetricCatalogHeartbeats, "Heartbeat datagrams accepted.")
	reg.Help(MetricCatalogMalformed, "Heartbeat datagrams dropped as malformed.")
	reg.Help(MetricCatalogQueries, "Server-list queries served.")
	reg.Help(MetricCatalogLive, "Servers currently live (refreshed on expiry sweeps).")
	c.heartbeats = reg.Counter(MetricCatalogHeartbeats)
	c.malformed = reg.Counter(MetricCatalogMalformed)
	c.queries = reg.Counter(MetricCatalogQueries)
	c.live = reg.Gauge(MetricCatalogLive)
}

// CatalogEntry describes one known server.
type CatalogEntry struct {
	Name      string
	Addr      string
	Owner     string
	LastHeard time.Time
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		servers: make(map[string]*CatalogEntry),
		now:     time.Now,
		Expiry:  15 * time.Minute,
	}
}

// SetClock overrides the catalog clock (tests).
func (c *Catalog) SetClock(now func() time.Time) { c.now = now }

// Listen binds the heartbeat (UDP) and query (TCP) endpoints to the
// same address string and begins serving.
func (c *Catalog) Listen(addr string) error {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	c.udp, err = net.ListenUDP("udp", uaddr)
	if err != nil {
		return err
	}
	// Use the resolved UDP port for TCP too, so one address serves both.
	c.tcp, err = net.Listen("tcp", c.udp.LocalAddr().String())
	if err != nil {
		c.udp.Close()
		return err
	}
	c.wg.Add(2)
	go c.heartbeatLoop()
	go c.queryLoop()
	return nil
}

// Addr reports the bound address (same for UDP heartbeats and TCP
// queries).
func (c *Catalog) Addr() string {
	if c.udp == nil {
		return ""
	}
	return c.udp.LocalAddr().String()
}

// Close stops both listeners.
func (c *Catalog) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.udp != nil {
		c.udp.Close()
	}
	if c.tcp != nil {
		c.tcp.Close()
	}
	c.wg.Wait()
	return nil
}

func (c *Catalog) heartbeatLoop() {
	defer c.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, _, err := c.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		c.Record(string(buf[:n]))
	}
}

// Record parses one heartbeat datagram: `chirp <name> <addr> <owner>`.
func (c *Catalog) Record(datagram string) {
	fields, err := splitFields(strings.TrimSpace(datagram))
	if err != nil || len(fields) != 4 || fields[0] != "chirp" {
		if c.malformed != nil {
			c.malformed.Inc()
		}
		return
	}
	if c.heartbeats != nil {
		c.heartbeats.Inc()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.servers[fields[2]] = &CatalogEntry{
		Name:      fields[1],
		Addr:      fields[2],
		Owner:     fields[3],
		LastHeard: c.now(),
	}
}

// Entries lists the live servers, sorted by name.
func (c *Catalog) Entries() []CatalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]CatalogEntry, 0, len(c.servers))
	for addr, e := range c.servers {
		if now.Sub(e.LastHeard) > c.Expiry {
			delete(c.servers, addr)
			continue
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if c.live != nil {
		c.live.Set(int64(len(out)))
	}
	return out
}

func (c *Catalog) queryLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.tcp.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			if c.queries != nil {
				c.queries.Inc()
			}
			now := c.now()
			for _, e := range c.Entries() {
				age := int(now.Sub(e.LastHeard).Seconds())
				fmt.Fprintf(conn, "%s %s %s %d\n", q(e.Name), q(e.Addr), q(e.Owner), age)
			}
		}()
	}
}

// QueryCatalog fetches the server list from a catalog.
func QueryCatalog(addr string) ([]CatalogEntry, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := newCodec(conn)
	defer c.release()
	var out []CatalogEntry
	for {
		line, err := c.readLine()
		if err != nil {
			break // EOF ends the listing
		}
		fields, err := splitFields(line)
		if err != nil || len(fields) != 4 {
			continue
		}
		out = append(out, CatalogEntry{Name: fields[0], Addr: fields[1], Owner: fields[2]})
	}
	return out, nil
}
