package chirp

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"identitybox/internal/auth"
	"identitybox/internal/replica"
)

// ErrReplGap is returned by ReplicaSession.Next when the server cut
// this subscriber loose for falling behind its push buffer: the stream
// has a hole, and the follower must resubscribe from its applied LSN.
var ErrReplGap = errors.New("chirp: replication stream gap; resubscribe")

// ReplicaSession is a follower's replication feed from a primary: a
// dedicated v2 connection that negotiated the repl capability and
// subscribed to the WAL ship stream. It implements replica.Stream.
//
// It deliberately is not a Client: the client mux treats unknown reply
// tags as protocol errors (correctly, for RPC), while this session's
// whole purpose is server-initiated push frames. The session is
// single-consumer — one goroutine calls Next; Ack may be called from
// the same goroutine between Nexts (the node's apply loop does both).
type ReplicaSession struct {
	conn net.Conn
	c    *codec

	// IdleTimeout, when positive, bounds how long Next waits for a
	// frame. On an idle volume nothing flows, so the expiry makes the
	// follower re-dial and resubscribe (cheap) rather than hang on a
	// primary that silently vanished — a partition must not leave the
	// cluster leaderless because no follower noticed the stream died.
	IdleTimeout time.Duration

	// Bootstrap state from the subscribe reply: a snapshot to load
	// before applying the stream (nil when the WAL tail sufficed), and
	// the primary's epoch at subscribe time.
	Snap    []byte
	SnapLSN uint64
	Epoch   uint64

	mu      sync.Mutex // guards nextTag and write interleaving (Ack vs Close)
	nextTag uint64
	closed  bool

	catchup *replica.Batch // WAL-tail catch-up, delivered by the first Next
}

// DialReplica opens a replication subscription to the primary at addr,
// authenticating like any client, negotiating protocol v2 with the
// repl capability, and subscribing from fromLSN. The returned session
// carries the catch-up the server computed: check Snap — when non-nil
// the follower must load it (durable.LoadReplicaSnapshot) before
// consuming the stream.
func DialReplica(addr string, auths []auth.Authenticator, fromLSN uint64, timeout time.Duration) (*ReplicaSession, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if _, err := auth.ClientNegotiate(auth.NewConn(conn), auths); err != nil {
		conn.Close()
		return nil, err
	}
	c := newCodec(conn)
	fail := func(err error) (*ReplicaSession, error) {
		c.release()
		conn.Close()
		return nil, err
	}
	// Version exchange, lock-step like any v2 client, demanding repl.
	if err := c.writeLine(versionFields(DefaultWindow, DefaultMaxInflightBytes, capRepl)...); err != nil {
		return fail(err)
	}
	line, err := c.readLine()
	if err != nil {
		return fail(err)
	}
	parts, err := splitFields(line)
	if err != nil || len(parts) < 1 || parts[0] != "ok" {
		return fail(fmt.Errorf("chirp: replication needs protocol v2; server said %q", line))
	}
	v, _, _, caps, err := parseVersionArgs(parts[1:])
	if err != nil || v != ProtocolV2 {
		return fail(fmt.Errorf("chirp: replication needs protocol v2; server said %q", line))
	}
	if !hasCap(caps, capRepl) {
		return fail(errors.New("chirp: server did not offer the repl capability"))
	}
	rs := &ReplicaSession{conn: conn, c: c, nextTag: 1}
	// Subscribe and decode the catch-up reply.
	if err := rs.writeFrameLocked(rs.takeTag(), []string{"replsub", strconv.FormatUint(fromLSN, 10)}, nil); err != nil {
		return fail(err)
	}
	h, fields, err := rs.readFrame()
	if err != nil {
		return fail(err)
	}
	if len(fields) < 1 || fields[0] != "ok" {
		rs.discard(h.payloadLen)
		return fail(fmt.Errorf("chirp: replsub refused: %q", fields))
	}
	switch {
	case len(fields) == 5 && fields[1] == "snap": // ok snap <epoch> <lsn> <len>
		epoch, _ := strconv.ParseUint(fields[2], 10, 64)
		lsn, _ := strconv.ParseUint(fields[3], 10, 64)
		blob := make([]byte, h.payloadLen)
		if err := c.readPayloadInto(blob); err != nil {
			return fail(err)
		}
		rs.Epoch, rs.Snap, rs.SnapLSN = epoch, blob, lsn
	case len(fields) == 7 && fields[1] == "tail": // ok tail <epoch> <first> <last> <records> <len>
		epoch, _ := strconv.ParseUint(fields[2], 10, 64)
		first, _ := strconv.ParseUint(fields[3], 10, 64)
		last, _ := strconv.ParseUint(fields[4], 10, 64)
		records, _ := strconv.Atoi(fields[5])
		rs.Epoch = epoch
		if records > 0 {
			frames := make([]byte, h.payloadLen)
			if err := c.readPayloadInto(frames); err != nil {
				return fail(err)
			}
			rs.catchup = &replica.Batch{Epoch: epoch, First: first, Last: last, Records: records, Frames: frames}
		} else if err := rs.discard(h.payloadLen); err != nil {
			return fail(err)
		}
	default:
		rs.discard(h.payloadLen)
		return fail(fmt.Errorf("chirp: malformed replsub reply %q", fields))
	}
	conn.SetDeadline(time.Time{})
	return rs, nil
}

// takeTag allocates the next request tag.
func (rs *ReplicaSession) takeTag() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	tag := rs.nextTag
	rs.nextTag++
	return tag
}

// writeFrameLocked queues and flushes one frame under the write mutex.
func (rs *ReplicaSession) writeFrameLocked(tag uint64, fields []string, body []byte) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return errors.New("chirp: replica session closed")
	}
	if err := rs.c.queueFrame(tag, fields, body); err != nil {
		return err
	}
	return rs.c.flush()
}

// readFrame reads the next frame header and line (payload left for the
// caller, sized by the returned header).
func (rs *ReplicaSession) readFrame() (frameHeader, []string, error) {
	h, err := rs.c.readFrameHeader()
	if err != nil {
		return frameHeader{}, nil, err
	}
	line, err := rs.c.readFrameLine(h.lineLen)
	if err != nil {
		return frameHeader{}, nil, err
	}
	fields, err := splitFields(line)
	if err != nil {
		return frameHeader{}, nil, err
	}
	return h, fields, nil
}

// discard consumes n payload bytes into scratch.
func (rs *ReplicaSession) discard(n int) error {
	if n <= 0 {
		return nil
	}
	_, err := rs.c.readPayload(n)
	return err
}

// Next blocks for the next pushed batch (replica.Stream). Reply frames
// for this session's own replacks are skipped; a "replgap" push
// surfaces as ErrReplGap, telling the follower to resubscribe from its
// applied LSN.
func (rs *ReplicaSession) Next() (replica.Batch, error) {
	if b := rs.catchup; b != nil {
		rs.catchup = nil
		return *b, nil
	}
	for {
		if rs.IdleTimeout > 0 {
			rs.conn.SetReadDeadline(time.Now().Add(rs.IdleTimeout))
		}
		h, fields, err := rs.readFrame()
		if err != nil {
			return replica.Batch{}, err
		}
		if h.tag != replPushTag {
			// A reply to one of our replacks; nothing to do with it.
			if err := rs.discard(h.payloadLen); err != nil {
				return replica.Batch{}, err
			}
			continue
		}
		if len(fields) == 1 && fields[0] == "replgap" {
			return replica.Batch{}, ErrReplGap
		}
		if len(fields) != 6 || fields[0] != "replpush" {
			return replica.Batch{}, fmt.Errorf("chirp: malformed replication push %q", fields)
		}
		epoch, _ := strconv.ParseUint(fields[1], 10, 64)
		first, _ := strconv.ParseUint(fields[2], 10, 64)
		last, _ := strconv.ParseUint(fields[3], 10, 64)
		records, err := strconv.Atoi(fields[4])
		if err != nil || first == 0 || last < first {
			return replica.Batch{}, fmt.Errorf("chirp: malformed replication push %q", fields)
		}
		frames := make([]byte, h.payloadLen)
		if err := rs.c.readPayloadInto(frames); err != nil {
			return replica.Batch{}, err
		}
		return replica.Batch{Epoch: epoch, First: first, Last: last, Records: records, Frames: frames}, nil
	}
}

// Ack reports the follower's applied horizon (replica.Stream). The
// server's ok reply is skipped by the Next loop; Ack itself does not
// wait for it, so the apply loop never stalls on its own bookkeeping.
func (rs *ReplicaSession) Ack(lsn uint64) error {
	return rs.writeFrameLocked(rs.takeTag(), []string{"replack", strconv.FormatUint(lsn, 10)}, nil)
}

// Close tears the session down (replica.Stream).
func (rs *ReplicaSession) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	rs.c.release()
	rs.mu.Unlock()
	return rs.conn.Close()
}
