package chirp

import (
	"sync"
	"testing"
	"time"

	"identitybox/internal/obs"
	"identitybox/internal/replica"
)

// fakeClock is an injectable catalog clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestCatalogStalenessExpiry: entries age against the injected clock
// and vanish from Entries once past the Expiry budget.
func TestCatalogStalenessExpiry(t *testing.T) {
	cat := NewCatalog()
	clk := newFakeClock()
	cat.SetClock(clk.now)
	cat.Expiry = time.Minute

	cat.Record(`chirp "fileserver" "127.0.0.1:9094" "fred"`)
	clk.advance(30 * time.Second)
	entries := cat.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %v, want the one live server", entries)
	}
	if got := entries[0].Age; got != 30*time.Second {
		t.Fatalf("age = %v, want 30s", got)
	}
	clk.advance(31 * time.Second)
	if entries := cat.Entries(); len(entries) != 0 {
		t.Fatalf("stale server still listed: %v", entries)
	}
	// A fresh heartbeat resurrects it.
	cat.Record(`chirp "fileserver" "127.0.0.1:9094" "fred"`)
	if entries := cat.Entries(); len(entries) != 1 {
		t.Fatalf("re-announced server missing: %v", entries)
	}
}

// TestCatalogQueryCarriesAgeEpochRole: the TCP query line carries the
// last-seen age and the heartbeat's replication tokens end to end.
func TestCatalogQueryCarriesAgeEpochRole(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	cat.Record(`chirp "fileserver" "127.0.0.1:9094" "fred" epoch=4 lsn=77 role=primary`)
	cat.Record(`chirp "oldserver" "127.0.0.1:9095" "barney"`)

	entries, err := QueryCatalog(cat.Addr())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CatalogEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	fs, ok := byName["fileserver"]
	if !ok {
		t.Fatalf("fileserver missing from %v", entries)
	}
	if fs.Epoch != 4 || fs.LSN != 77 || fs.Role != "primary" {
		t.Fatalf("replication tokens lost in transit: %+v", fs)
	}
	if fs.Age < 0 || fs.Age > 10*time.Second {
		t.Fatalf("age = %v, want a small fresh-heartbeat age", fs.Age)
	}
	if old := byName["oldserver"]; old.Role != "" || old.Epoch != 0 {
		t.Fatalf("role-less heartbeat grew tokens: %+v", old)
	}
}

// claimCatalog wraps a LeaseClient against a test catalog.
func claimCatalog(cat *Catalog, addr string, lsn, epoch uint64) (replica.LeaseResult, error) {
	lc := &replica.LeaseClient{CatalogAddr: cat.Addr(), Name: "vol", Addr: addr, Timeout: 2 * time.Second}
	return lc.Claim(lsn, epoch)
}

// TestLeaseGrantRenewDeny: the first claimant gets epoch 1, renewals
// keep it, and a rival is denied with the holder named.
func TestLeaseGrantRenewDeny(t *testing.T) {
	cat := NewCatalog()
	cat.LeaseTTL = time.Second
	reg := obs.NewRegistry()
	cat.SetMetrics(reg)
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	res, err := claimCatalog(cat, "127.0.0.1:1111", 5, 0)
	if err != nil || !res.Granted {
		t.Fatalf("first claim = %+v, %v", res, err)
	}
	if res.Epoch == 0 || res.TTL != time.Second {
		t.Fatalf("grant = %+v", res)
	}
	epoch := res.Epoch

	res, err = claimCatalog(cat, "127.0.0.1:1111", 9, epoch)
	if err != nil || !res.Granted || res.Epoch != epoch {
		t.Fatalf("renewal = %+v, %v", res, err)
	}

	res, err = claimCatalog(cat, "127.0.0.1:2222", 100, 0)
	if err != nil || res.Granted {
		t.Fatalf("rival claim against a live lease = %+v, %v", res, err)
	}
	if res.Holder != "127.0.0.1:1111" || res.Epoch != epoch {
		t.Fatalf("deny = %+v, want holder 127.0.0.1:1111 epoch %d", res, epoch)
	}
	if holder, e := cat.LeaseHolder("vol"); holder != "127.0.0.1:1111" || e != epoch {
		t.Fatalf("LeaseHolder = %s/%d", holder, e)
	}
}

// TestLeaseElectionPicksHighestLSN: after expiry, concurrent claims
// are collected for an election window and the freshest follower (the
// highest applied LSN) takes the next epoch; the loser is denied and
// told who won.
func TestLeaseElectionPicksHighestLSN(t *testing.T) {
	cat := NewCatalog()
	cat.LeaseTTL = 400 * time.Millisecond // election window 100ms
	clk := newFakeClock()
	cat.SetClock(clk.now)
	reg := obs.NewRegistry()
	cat.SetMetrics(reg)
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	res, err := claimCatalog(cat, "127.0.0.1:1111", 50, 0)
	if err != nil || !res.Granted {
		t.Fatalf("seed claim = %+v, %v", res, err)
	}
	firstEpoch := res.Epoch

	// Kill the primary's renewals: the lease expires on the catalog
	// clock, and two followers claim inside one election window.
	clk.advance(cat.LeaseTTL + time.Millisecond)
	type outcome struct {
		addr string
		res  replica.LeaseResult
		err  error
	}
	results := make(chan outcome, 2)
	for _, c := range []struct {
		addr string
		lsn  uint64
	}{{"127.0.0.1:3333", 40}, {"127.0.0.1:4444", 48}} {
		c := c
		go func() {
			res, err := claimCatalog(cat, c.addr, c.lsn, firstEpoch)
			results <- outcome{c.addr, res, err}
		}()
	}
	var winner, loser outcome
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("claim from %s: %v", o.addr, o.err)
		}
		if o.res.Granted {
			winner = o
		} else {
			loser = o
		}
	}
	if winner.addr != "127.0.0.1:4444" {
		t.Fatalf("winner = %s (want the higher-LSN claimant 127.0.0.1:4444); loser = %+v", winner.addr, loser)
	}
	if winner.res.Epoch <= firstEpoch {
		t.Fatalf("election did not advance the epoch: %d -> %d", firstEpoch, winner.res.Epoch)
	}
	if loser.res.Holder != winner.addr || loser.res.Epoch != winner.res.Epoch {
		t.Fatalf("loser was not told the winner: %+v", loser.res)
	}
	if got := reg.Counter(MetricCatalogElections).Value(); got < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricCatalogElections, got)
	}

	// The fence holds: the deposed holder claiming with its old epoch is
	// denied and shown the new term.
	res, err = claimCatalog(cat, "127.0.0.1:1111", 50, firstEpoch)
	if err != nil || res.Granted {
		t.Fatalf("deposed holder reclaimed the lease: %+v, %v", res, err)
	}
	if res.Epoch != winner.res.Epoch {
		t.Fatalf("deny to the deposed holder carries epoch %d, want %d", res.Epoch, winner.res.Epoch)
	}
}

// TestLeaseTieBreaksOnAddress: equal LSNs fall back to the smallest
// address, keeping the election deterministic.
func TestLeaseTieBreaksOnAddress(t *testing.T) {
	cat := NewCatalog()
	cat.LeaseTTL = 400 * time.Millisecond
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	results := make(chan string, 2)
	for _, addr := range []string{"127.0.0.1:5555", "127.0.0.1:4444"} {
		addr := addr
		go func() {
			res, err := claimCatalog(cat, addr, 10, 0)
			if err == nil && res.Granted {
				results <- addr
			} else {
				results <- ""
			}
		}()
	}
	var granted []string
	for i := 0; i < 2; i++ {
		if a := <-results; a != "" {
			granted = append(granted, a)
		}
	}
	if len(granted) != 1 || granted[0] != "127.0.0.1:4444" {
		t.Fatalf("granted = %v, want exactly [127.0.0.1:4444]", granted)
	}
}

// TestLeaseSurvivesCatalogRestart: a holder renewing against a fresh
// catalog (its lease table empty) re-seeds the lease at its own epoch,
// so a catalog restart cannot hand the lease to a stale claimant at a
// lower term.
func TestLeaseSurvivesCatalogRestart(t *testing.T) {
	cat := NewCatalog()
	cat.LeaseTTL = 400 * time.Millisecond
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	// The holder renews at epoch 7 (adopted from its durable store).
	res, err := claimCatalog(cat, "127.0.0.1:1111", 50, 7)
	if err != nil || !res.Granted {
		t.Fatalf("renewal against a fresh catalog = %+v, %v", res, err)
	}
	if res.Epoch < 7 {
		t.Fatalf("fresh catalog granted epoch %d below the holder's %d", res.Epoch, 7)
	}
	// A stale rival at a lower epoch stays fenced.
	res, err = claimCatalog(cat, "127.0.0.1:2222", 999, 2)
	if err != nil || res.Granted {
		t.Fatalf("stale rival won against the re-seeded lease: %+v, %v", res, err)
	}
	if res.Epoch < 7 {
		t.Fatalf("deny epoch = %d, want >= 7", res.Epoch)
	}
}
