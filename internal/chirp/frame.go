package chirp

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol versions. Version 1 is the paper's lock-step line protocol:
// one request line (plus optional counted payload), one reply, strictly
// alternating. Version 2 keeps the same line grammar but wraps every
// line+payload in a tagged binary frame, so many requests can be in
// flight on one session and replies may return out of order.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
)

// MaxLine bounds the protocol-line portion of a v2 frame. Lines carry
// commands, quoted paths and directory listings; 64 KiB is far beyond
// any legitimate line and small enough that a hostile length cannot
// force a large allocation.
const MaxLine = 1 << 16

// frameHeaderSize is the fixed v2 frame header: a big-endian u64 tag,
// u32 line length, u32 payload length, followed by that many line bytes
// and payload bytes. The same framing runs in both directions; a reply
// frame carries the tag of the request it answers.
const frameHeaderSize = 16

// Credit-window defaults. The window is negotiated per session (each
// side advertises, the minimum wins) and bounds tags in flight; the
// byte budget bounds in-flight request+reply payload bytes so a deep
// window of fat transfers cannot buffer unbounded memory.
const (
	DefaultWindow           = 64
	DefaultMaxInflightBytes = 8 << 20
)

// frameHeader is one decoded v2 frame header.
type frameHeader struct {
	tag        uint64
	lineLen    int
	payloadLen int
}

// putFrameHeader encodes a header into b (len >= frameHeaderSize).
func putFrameHeader(b []byte, tag uint64, lineLen, payloadLen int) {
	binary.BigEndian.PutUint64(b[0:8], tag)
	binary.BigEndian.PutUint32(b[8:12], uint32(lineLen))
	binary.BigEndian.PutUint32(b[12:16], uint32(payloadLen))
}

// parseFrameHeader validates a wire-supplied header before anything is
// allocated or read: a zero tag, an empty or oversized line, or a
// payload beyond MaxPayload mean the peer is malformed or hostile, and
// the session must drop. This is the v2 mirror of readPayload's cap.
func parseFrameHeader(b []byte) (frameHeader, error) {
	if len(b) < frameHeaderSize {
		return frameHeader{}, fmt.Errorf("chirp: protocol error: short frame header (%d bytes)", len(b))
	}
	h := frameHeader{
		tag:        binary.BigEndian.Uint64(b[0:8]),
		lineLen:    int(binary.BigEndian.Uint32(b[8:12])),
		payloadLen: int(binary.BigEndian.Uint32(b[12:16])),
	}
	if h.tag == 0 {
		return frameHeader{}, fmt.Errorf("chirp: protocol error: zero frame tag")
	}
	if h.lineLen < 1 || h.lineLen > MaxLine {
		return frameHeader{}, fmt.Errorf("chirp: protocol error: frame line length %d outside [1, %d]", h.lineLen, MaxLine)
	}
	if h.payloadLen < 0 || h.payloadLen > MaxPayload {
		return frameHeader{}, fmt.Errorf("chirp: protocol error: frame payload length %d outside [0, %d]", h.payloadLen, MaxPayload)
	}
	return h, nil
}

// queueFrame buffers one tagged frame — header, space-joined line
// fields, payload — without flushing, so a pipelining writer can pack
// several frames into one wire write. The fields are written directly
// into the bufio writer: no intermediate line allocation.
func (c *codec) queueFrame(tag uint64, fields []string, payload []byte) error {
	lineLen := 0
	for i, f := range fields {
		if strings.ContainsAny(f, "\n\r") {
			return fmt.Errorf("chirp: embedded newline in %q", f)
		}
		if i > 0 {
			lineLen++
		}
		lineLen += len(f)
	}
	if lineLen < 1 || lineLen > MaxLine {
		return fmt.Errorf("chirp: frame line length %d outside [1, %d]", lineLen, MaxLine)
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("chirp: frame payload %d exceeds %d", len(payload), MaxPayload)
	}
	var hdr [frameHeaderSize]byte
	putFrameHeader(hdr[:], tag, lineLen, len(payload))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	for i, f := range fields {
		if i > 0 {
			if err := c.w.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := c.w.WriteString(f); err != nil {
			return err
		}
	}
	_, err := c.w.Write(payload)
	return err
}

// readFrameHeader reads and validates the next frame header. Callers
// must then consume exactly lineLen line bytes and payloadLen payload
// bytes to stay aligned.
func (c *codec) readFrameHeader() (frameHeader, error) {
	var b [frameHeaderSize]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		return frameHeader{}, err
	}
	return parseFrameHeader(b[:])
}

// readFrameLine consumes a frame's line bytes (already validated to fit
// MaxLine) and returns them as a string.
func (c *codec) readFrameLine(n int) (string, error) {
	buf := c.scratchBuf(n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// capTrace is the optional capability token a peer appends to its half
// of the version exchange to request (client) or confirm (server)
// per-request trace-context propagation. A peer that does not know the
// token simply never echoes it, so tracing degrades to off against old
// binaries with no extra round trip — the same ENOSYS-style safety the
// version exchange itself has against v1 servers.
const capTrace = "trace"

// capDeadline is the capability token a peer appends to its half of the
// version exchange to request (client) or confirm (server) per-request
// deadline-budget propagation. On a session that negotiated it, a
// request line may lead with "deadline <remaining-ms>"; the server
// anchors the budget at frame arrival and sheds the work with EDEADLINE
// at whichever hop — admit, dispatch, durability barrier — finds it
// already expired. Old peers never echo the token, so budgets degrade
// to "no deadline" with no interop break.
const capDeadline = "deadline"

// capRepl is the capability token a replication follower appends to its
// version exchange to subscribe to the server's WAL ship stream. Only
// sessions that negotiated it may issue replsub, and only they ever see
// server-initiated push frames — an ordinary client mux (which kills
// the session on unknown tags) never negotiates it.
const capRepl = "repl"

// replPushTag is the reserved frame tag for server-initiated
// replication pushes on a repl-capable session. Client request tags are
// small positive integers; the top-bit tag can never collide with one.
const replPushTag = uint64(1) << 63

// versionFields builds the v1-style negotiation line a v2 client sends
// as its first request: "version 2 <window> <maxbytes> [caps...]". A v1
// server answers it with ENOSYS like any unknown command, which is the
// fallback signal. Capability tokens ride after the byte budget; peers
// ignore tokens they do not recognize.
func versionFields(window int, maxBytes int64, caps ...string) []string {
	fields := []string{"version", strconv.Itoa(ProtocolV2), strconv.Itoa(window), strconv.FormatInt(maxBytes, 10)}
	return append(fields, caps...)
}

// parseVersionArgs parses the peer's half of the negotiation — the
// request args server-side, the "ok" reply tail client-side — into
// (version, window, maxBytes) plus any trailing capability tokens.
// Unknown tokens are returned, not rejected: a newer peer advertising a
// capability this binary predates must still negotiate the base
// protocol.
func parseVersionArgs(args []string) (version, window int, maxBytes int64, caps []string, err error) {
	if len(args) < 3 {
		return 0, 0, 0, nil, fmt.Errorf("chirp: bad version exchange %v", args)
	}
	if version, err = strconv.Atoi(args[0]); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("chirp: bad protocol version %q", args[0])
	}
	if window, err = strconv.Atoi(args[1]); err != nil || window < 1 {
		return 0, 0, 0, nil, fmt.Errorf("chirp: bad window %q", args[1])
	}
	if maxBytes, err = strconv.ParseInt(args[2], 10, 64); err != nil || maxBytes < 1 {
		return 0, 0, 0, nil, fmt.Errorf("chirp: bad byte budget %q", args[2])
	}
	return version, window, maxBytes, args[3:], nil
}

// hasCap reports whether a capability token list contains cap.
func hasCap(caps []string, cap string) bool {
	for _, c := range caps {
		if c == cap {
			return true
		}
	}
	return false
}
