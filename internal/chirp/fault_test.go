package chirp

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"identitybox/internal/auth"
	"identitybox/internal/core"
	"identitybox/internal/faultnet"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// waitFor polls cond until it holds or a two-second deadline expires —
// for effects that land on a server goroutine after the client already
// saw an injected fault.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// adminClient dials as unix:admin (rwlax at the root, and the shortest
// auth handshake — fault schedules key on client-written bytes).
func adminClient(t *testing.T, srv *Server, opts ClientOptions) *Client {
	t.Helper()
	cl, err := DialOpts(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// registerSim installs the Figure-3 simulation program: reads its
// staged input, writes out.dat uppercased.
func registerSim(k *kernel.Kernel) {
	k.RegisterProgram("sim", func(p *kernel.Proc, args []string) int {
		in, err := p.ReadFile("input.dat")
		if err != nil {
			return 1
		}
		if err := p.WriteFile("out.dat", bytes.ToUpper(in), 0o644); err != nil {
			return 2
		}
		return 0
	})
}

// figure3Workflow runs the full Figure-3 sequence (reserve /work, stage
// sim.exe and input, remote exec, fetch out.dat) and returns the first
// error. Exec carries a request token, the documented opt-in for
// retrying job submission.
func figure3Workflow(cl *Client) error {
	if err := cl.Mkdir("/work", 0o755); err != nil {
		return err
	}
	if err := cl.PutFile("/work/sim.exe", kernel.ExecutableBytes("sim"), 0o755); err != nil {
		return err
	}
	if err := cl.PutFile("/work/input.dat", []byte("signal data"), 0o644); err != nil {
		return err
	}
	res, err := cl.ExecToken(NewRequestToken(), "/work", "/work/sim.exe")
	if err != nil {
		return err
	}
	if res.Code != 0 {
		return errors.New("exec exit code nonzero")
	}
	out, err := cl.GetFile("/work/out.dat")
	if err != nil {
		return err
	}
	if string(out) != "SIGNAL DATA" {
		return errors.New("out.dat content wrong")
	}
	return nil
}

// chaosSchedule is the seeded acceptance schedule: every 3rd connection
// is reset on its first write (it never even authenticates), and every
// connection is reset once it has carried 220 client-written bytes —
// the whole workflow writes several times that (v2 framing adds a ~22-
// byte version exchange per connection and a 16-byte header per
// request), so no single connection can carry it, while the largest
// single retry sequence (~155 bytes from a fresh connection, auth and
// version exchange included) always fits.
func chaosSchedule() *faultnet.Injector {
	return faultnet.New(7,
		faultnet.Rule{EveryNth: 3, Op: faultnet.OpWrite, Action: faultnet.Reset},
		faultnet.Rule{Op: faultnet.OpWrite, AfterBytes: 220, Action: faultnet.Reset},
	)
}

// TestFigure3UnderFaults is the acceptance test: under the seeded chaos
// schedule the retrying client completes the full Figure-3 workflow
// with no caller-visible errors, while the same schedule with retries
// disabled fails.
func TestFigure3UnderFaults(t *testing.T) {
	t.Run("retries-on", func(t *testing.T) {
		srv, k, _ := testServer(t)
		registerSim(k)
		inj := chaosSchedule()
		cl := adminClient(t, srv, ClientOptions{Dialer: inj.Dialer("tcp")})
		if err := figure3Workflow(cl); err != nil {
			t.Fatalf("workflow under faults: %v", err)
		}
		if inj.ConnCount() < 2 {
			t.Fatalf("ConnCount = %d; the schedule should have forced redials", inj.ConnCount())
		}
		text := cl.LocalMetrics().Text()
		for _, name := range []string{MetricClientRetries, MetricClientRedials, MetricClientBreakerState} {
			if !strings.Contains(text, name) {
				t.Errorf("client exposition missing %s", name)
			}
		}
		if !strings.Contains(text, MetricClientRetries+" ") || strings.Contains(text, MetricClientRetries+" 0\n") {
			t.Errorf("no retries recorded under the chaos schedule:\n%s", text)
		}
	})
	t.Run("retries-off", func(t *testing.T) {
		srv, k, _ := testServer(t)
		registerSim(k)
		inj := chaosSchedule()
		cl, err := DialOpts(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}},
			ClientOptions{Dialer: inj.Dialer("tcp"), DisableRetries: true})
		if err != nil {
			return // even the dial may die; that also demonstrates the point
		}
		t.Cleanup(func() { cl.Close() })
		if err := figure3Workflow(cl); err == nil {
			t.Fatal("workflow succeeded with retries disabled under the chaos schedule")
		}
	})
}

// TestRetryTransparentForIdempotent kills the connection during the
// request write and during the reply read of idempotent RPCs and
// expects transparent success, including the lost-reply mkdir/unlink
// cases where the retry observes the first attempt's effect.
func TestRetryTransparentForIdempotent(t *testing.T) {
	srv, _, _ := testServer(t)
	inj := faultnet.New(1)
	cl := adminClient(t, srv, ClientOptions{Dialer: inj.Dialer("tcp")})
	if err := cl.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFile("/d/f", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Kill during the request write: the server never saw the call.
	inj.InjectOnce(faultnet.OpWrite, 0, faultnet.Reset, 0)
	if st, err := cl.Stat("/d/f"); err != nil || st.Size != 4 {
		t.Fatalf("stat with send fault = %+v, %v", st, err)
	}
	// Kill during the reply read: the server executed, the reply is lost.
	inj.InjectOnce(faultnet.OpRead, 0, faultnet.Reset, 0)
	if st, err := cl.Lstat("/d/f"); err != nil || st.Size != 4 {
		t.Fatalf("lstat with reply fault = %+v, %v", st, err)
	}
	// Lost-reply mkdir: the retry sees EEXIST from its own first attempt
	// and reports success.
	inj.InjectOnce(faultnet.OpRead, 0, faultnet.Reset, 0)
	if err := cl.Mkdir("/d/sub", 0o755); err != nil {
		t.Fatalf("mkdir with reply fault = %v", err)
	}
	if _, err := cl.Stat("/d/sub"); err != nil {
		t.Fatalf("mkdir did not take effect: %v", err)
	}
	// Lost-reply unlink: the retry sees ENOENT and reports success.
	inj.InjectOnce(faultnet.OpRead, 0, faultnet.Reset, 0)
	if err := cl.Unlink("/d/f"); err != nil {
		t.Fatalf("unlink with reply fault = %v", err)
	}
	if _, err := cl.Stat("/d/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unlink did not take effect: %v", err)
	}
	retries := cl.LocalMetrics().Text()
	if !strings.Contains(retries, MetricClientRedials) {
		t.Fatalf("exposition missing redial counter:\n%s", retries)
	}
}

// TestRetryNotSafeForMutating loses the reply of non-idempotent RPCs
// and expects the typed refusal — with the first attempt's effect
// visible, proving the client was right not to re-send blindly. Pinned
// to v1: the InjectOnce read-reset is timed against the lock-step
// exchange (a v2 reader is always mid-read, so the armed fault lands on
// the read after the reply). TestMuxChaosTokenedExactlyOnce covers the
// v2 equivalent.
func TestRetryNotSafeForMutating(t *testing.T) {
	srv, k, _ := testServer(t)
	var execs atomic.Int64
	k.RegisterProgram("cnt", func(p *kernel.Proc, _ []string) int {
		execs.Add(1)
		return 0
	})
	inj := faultnet.New(1)
	cl := adminClient(t, srv, ClientOptions{Dialer: inj.Dialer("tcp"), Protocol: ProtocolV1})
	if err := cl.PutFile("/a", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// rename with a lost reply: refused, yet the rename happened. The
	// client sees the injected fault before the server finishes the
	// request on its own goroutine, so poll for the effect.
	inj.InjectOnce(faultnet.OpRead, 0, faultnet.Reset, 0)
	if err := cl.Rename("/a", "/b"); !errors.Is(err, ErrRetryNotSafe) {
		t.Fatalf("rename with reply fault = %v, want ErrRetryNotSafe", err)
	}
	waitFor(t, "rename to land", func() bool {
		_, err := cl.Stat("/b")
		return err == nil
	})
	// exec without a token: same refusal, and the job ran exactly once.
	if err := cl.PutFile("/cnt.exe", kernel.ExecutableBytes("cnt"), 0o755); err != nil {
		t.Fatal(err)
	}
	inj.InjectOnce(faultnet.OpRead, 0, faultnet.Reset, 0)
	if _, err := cl.Exec("/", "/cnt.exe"); !errors.Is(err, ErrRetryNotSafe) {
		t.Fatalf("exec with reply fault = %v, want ErrRetryNotSafe", err)
	}
	waitFor(t, "exec to run once", func() bool { return execs.Load() == 1 })
	if n := execs.Load(); n != 1 {
		t.Fatalf("exec ran %d times, want exactly 1", n)
	}
	if !strings.Contains(cl.LocalMetrics().Text(), MetricClientRetryUnsafe) {
		t.Fatal("exposition missing retry-unsafe counter")
	}
}

// TestRetryTokenDedupe opts job submission into retry with a request
// token: the reply is lost, the client re-sends over a fresh session,
// and the server answers from its dedupe table instead of running the
// job twice. Pinned to v1 for the same read-reset timing reason as
// TestRetryNotSafeForMutating.
func TestRetryTokenDedupe(t *testing.T) {
	srv, k, _ := testServer(t)
	var execs atomic.Int64
	k.RegisterProgram("cnt", func(p *kernel.Proc, _ []string) int {
		execs.Add(1)
		return 0
	})
	inj := faultnet.New(1)
	cl := adminClient(t, srv, ClientOptions{Dialer: inj.Dialer("tcp"), Protocol: ProtocolV1})
	if err := cl.PutFile("/cnt.exe", kernel.ExecutableBytes("cnt"), 0o755); err != nil {
		t.Fatal(err)
	}
	token := NewRequestToken()
	inj.InjectOnce(faultnet.OpRead, 0, faultnet.Reset, 0)
	res, err := cl.ExecToken(token, "/", "/cnt.exe")
	if err != nil || res.Code != 0 {
		t.Fatalf("tokened exec under reply fault = %+v, %v", res, err)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("tokened exec ran %d times, want exactly 1 (dedupe)", n)
	}
	// An explicit duplicate submission replays the reply too.
	res2, err := cl.ExecToken(token, "/", "/cnt.exe")
	if err != nil || res2 != res {
		t.Fatalf("duplicate tokened exec = %+v, %v; want replay of %+v", res2, err, res)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("after duplicate: ran %d times, want 1", n)
	}
	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, MetricDedupeHits+" 2") {
		t.Fatalf("server exposition should show 2 dedupe hits:\n%s", text)
	}
	if !strings.Contains(text, MetricDedupeEntries+" 1") {
		t.Fatalf("server exposition should show 1 dedupe entry:\n%s", text)
	}
}

// TestRetryBackoffSchedule records the sleeps the retry loop takes
// against a dead server: capped exponential, half fixed + half jitter,
// so sleep n lands in [d/2, d] for d = min(base<<(n-1), max).
func TestRetryBackoffSchedule(t *testing.T) {
	srv, _, _ := testServer(t)
	var sleeps []time.Duration
	base, max := 100*time.Millisecond, 400*time.Millisecond
	cl := adminClient(t, srv, ClientOptions{
		RetryBase: base,
		RetryMax:  max,
		Sleep:     func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	srv.Close()
	if _, err := cl.Whoami(); err == nil {
		t.Fatal("whoami against a closed server should fail")
	}
	if len(sleeps) != 3 {
		t.Fatalf("recorded %d sleeps, want 3 (MaxRetries)", len(sleeps))
	}
	want := []time.Duration{base, 2 * base, 4 * base} // 4*base == max
	for i, d := range sleeps {
		if d < want[i]/2 || d > want[i] {
			t.Errorf("sleep %d = %v, want in [%v, %v]", i+1, d, want[i]/2, want[i])
		}
	}
}

// TestRetryBreakerFailsFast trips the circuit breaker against a dead
// server and expects subsequent calls to fail fast with the typed
// error, without redial attempts.
func TestRetryBreakerFailsFast(t *testing.T) {
	srv, _, _ := testServer(t)
	cl := adminClient(t, srv, ClientOptions{
		BreakerThreshold: 2,
		BreakerCooloff:   time.Hour,
		Sleep:            func(time.Duration) {},
	})
	srv.Close()
	if _, err := cl.Whoami(); err == nil {
		t.Fatal("whoami against a closed server should fail")
	}
	if cl.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", cl.Breaker().State())
	}
	if _, err := cl.Stat("/"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("call with open breaker = %v, want ErrBreakerOpen", err)
	}
	text := cl.LocalMetrics().Text()
	if !strings.Contains(text, MetricClientBreakerOpens+" 1") {
		t.Fatalf("exposition should show one breaker open:\n%s", text)
	}
	if !strings.Contains(text, MetricClientBreakerState+" 1") {
		t.Fatalf("exposition should show breaker state 1 (open):\n%s", text)
	}
}

// TestRetryCloseAfterFault is the satellite Close fix: closing a client
// whose transport already failed must not surface the farewell write
// error, and double-close is a no-op.
func TestRetryCloseAfterFault(t *testing.T) {
	srv, _, _ := testServer(t)
	cl := adminClient(t, srv, ClientOptions{
		MaxRetries: 1,
		Sleep:      func(time.Duration) {},
	})
	srv.Close()
	if _, err := cl.Whoami(); err == nil {
		t.Fatal("whoami against a closed server should fail")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("close of a broken client = %v, want nil (no quit-error masking)", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("double close = %v, want nil", err)
	}
	if _, err := cl.Whoami(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after close = %v, want ErrClientClosed", err)
	}
}

func TestRetryDedupeTableBounded(t *testing.T) {
	tbl := newDedupeTable(4, 0)
	for i := 0; i < 6; i++ {
		tbl.store(dedupeKey("u", string(rune('a'+i))), []string{"ok", "1"})
	}
	if _, size := tbl.stats(); size != 4 {
		t.Fatalf("table size = %d, want cap 4", size)
	}
	// The two oldest were evicted; the newest survive.
	if _, hit := tbl.lookup(dedupeKey("u", "a")); hit {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, hit := tbl.lookup(dedupeKey("u", "f")); !hit {
		t.Fatal("newest entry should be present")
	}
	// Keys are principal-scoped: another principal's token misses.
	if _, hit := tbl.lookup(dedupeKey("v", "f")); hit {
		t.Fatal("token must not cross principals")
	}
}

// TestFailoverReadsToReplica serves a replicated name through the
// failover driver: with the primary dead and its breaker open, reads
// come from the replica and writes degrade with the typed error.
func TestFailoverReadsToReplica(t *testing.T) {
	srv1, _, _ := testServer(t)
	srv2, _, _ := testServer(t)
	fast := ClientOptions{
		MaxRetries:       1,
		BreakerThreshold: 1,
		BreakerCooloff:   time.Hour,
		Sleep:            func(time.Duration) {},
	}
	c1 := adminClient(t, srv1, fast)
	c2 := adminClient(t, srv2, fast)
	for cl, tag := range map[*Client]string{c1: "from-primary", c2: "from-replica"} {
		if err := cl.Mkdir("/pub", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := cl.PutFile("/pub/data", []byte(tag), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var notes []string
	fd := NewFailoverDriver(
		[]*Driver{NewDriver(c1, vclock.Default()), NewDriver(c2, vclock.Default())},
		func(s string) { notes = append(notes, s) })

	fs := vfs.New("dthain")
	k := kernel.New(fs, vclock.Default())
	box, err := core.New(k, "dthain", "unix:admin", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := box.Run(func(p *kernel.Proc, _ []string) int {
		// Healthy: the primary serves.
		data, err := fd.ReadFileSmall(p, "/pub/data")
		if err != nil || string(data) != "from-primary" {
			t.Errorf("healthy read = %q, %v", data, err)
			return 1
		}
		srv1.Close() // the primary dies
		// The read fails over to the replica (and opens c1's breaker).
		data, err = fd.ReadFileSmall(p, "/pub/data")
		if err != nil || string(data) != "from-replica" {
			t.Errorf("failover read = %q, %v", data, err)
			return 2
		}
		// With the breaker open, reads skip the primary outright.
		data, err = fd.ReadFileSmall(p, "/pub/data")
		if err != nil || string(data) != "from-replica" {
			t.Errorf("breaker-open read = %q, %v", data, err)
			return 3
		}
		// Writes never fail over: degraded, typed.
		err = fd.WriteFileSmall(p, "/pub/new", []byte("x"), 0o644)
		if !errors.Is(err, ErrDegraded) {
			t.Errorf("degraded write = %v, want ErrDegraded", err)
			return 4
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("box run exit %d", st.Code)
	}
	if c1.Breaker().State() != BreakerOpen {
		t.Fatalf("primary breaker = %v, want open", c1.Breaker().State())
	}
	if len(notes) == 0 {
		t.Fatal("failover decisions should land in the audit note hook")
	}
}

// TestFaultServerDrainFinishesInflight starts a slow exec, then drains:
// the in-flight job completes and new connections are refused.
func TestFaultServerDrainFinishesInflight(t *testing.T) {
	srv, k, _ := testServer(t)
	k.RegisterProgram("slow", func(p *kernel.Proc, _ []string) int {
		time.Sleep(150 * time.Millisecond)
		return 0
	})
	cl := adminClient(t, srv, ClientOptions{DisableRetries: true})
	if err := cl.PutFile("/slow.exe", kernel.ExecutableBytes("slow"), 0o755); err != nil {
		t.Fatal(err)
	}
	before := srv.Metrics().Text()
	if !strings.Contains(before, MetricDraining+" 0") {
		t.Fatalf("draining gauge should start at 0:\n%s", before)
	}
	type execOut struct {
		res ExecResult
		err error
	}
	done := make(chan execOut, 1)
	go func() {
		res, err := cl.Exec("/", "/slow.exe")
		done <- execOut{res, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the exec reach the server
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("graceful shutdown = %v", err)
	}
	out := <-done
	if out.err != nil || out.res.Code != 0 {
		t.Fatalf("in-flight exec across drain = %+v, %v", out.res, out.err)
	}
	if _, err := Dial(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}}); err == nil {
		t.Fatal("dial after drain should fail")
	}
	after := srv.Metrics().Text()
	if !strings.Contains(after, MetricDraining+" 1") {
		t.Fatalf("draining gauge should be 1 after shutdown:\n%s", after)
	}
}

// TestFaultStalledRequestTimesOut checks the per-request read deadline:
// a client that announces a payload and stalls is disconnected. Pinned
// to v1 because it pokes raw protocol lines at the codec; the v2 frame
// equivalent is TestMuxStalledFrameTimesOut.
func TestFaultStalledRequestTimesOut(t *testing.T) {
	srv, _, _ := testServer(t)
	srv.opts.RequestTimeout = 100 * time.Millisecond
	cl := adminClient(t, srv, ClientOptions{DisableRetries: true, Protocol: ProtocolV1})
	// Announce a pwrite payload of 100 bytes and send nothing.
	cl.mu.Lock()
	err := cl.c.writeLine("pwrite", "1", "0", "100")
	cl.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	cl.mu.Lock()
	cl.conn.SetReadDeadline(deadline)
	_, rerr := cl.c.readLine()
	cl.mu.Unlock()
	if rerr == nil {
		t.Fatal("server should have dropped the stalled session")
	}
	if time.Now().After(deadline) {
		t.Fatal("server did not enforce the request deadline")
	}
}
