package chirp

import (
	"bytes"
	"crypto/rsa"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"identitybox/internal/acl"
	"identitybox/internal/auth"
	"identitybox/internal/core"
	"identitybox/internal/identity"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// TestConcurrentClients hammers one server from many goroutines, each
// with its own identity and reserved directory.
func TestConcurrentClients(t *testing.T) {
	srv, _, ca := testServer(t)
	const n = 8
	const filesPer = 10
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subject := fmt.Sprintf("/O=UnivNowhere/CN=User%d", i)
			cred, err := ca.Issue(subject)
			if err != nil {
				errs <- err
				return
			}
			cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			dir := fmt.Sprintf("/user%d", i)
			if err := cl.Mkdir(dir, 0o755); err != nil {
				errs <- fmt.Errorf("user%d mkdir: %w", i, err)
				return
			}
			for j := 0; j < filesPer; j++ {
				path := fmt.Sprintf("%s/f%d", dir, j)
				payload := bytes.Repeat([]byte{byte(i), byte(j)}, 512)
				if err := cl.PutFile(path, payload, 0o644); err != nil {
					errs <- fmt.Errorf("user%d put: %w", i, err)
					return
				}
				got, err := cl.GetFile(path)
				if err != nil || !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("user%d readback: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentRemoteExec runs several remote executions in parallel,
// each inside its own identity box on the server.
func TestConcurrentRemoteExec(t *testing.T) {
	srv, k, ca := testServer(t)
	k.RegisterProgram("job", func(p *kernel.Proc, args []string) int {
		who := p.GetUserName()
		if err := p.WriteFile("whoami.out", []byte(who), 0o644); err != nil {
			return 1
		}
		p.Compute(1000)
		return 0
	})
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subject := fmt.Sprintf("/O=UnivNowhere/CN=Exec%d", i)
			cred, _ := ca.Issue(subject)
			cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			dir := fmt.Sprintf("/exec%d", i)
			if err := cl.Mkdir(dir, 0o755); err != nil {
				errs <- err
				return
			}
			if err := cl.PutFile(dir+"/job.exe", kernel.ExecutableBytes("job"), 0o755); err != nil {
				errs <- err
				return
			}
			res, err := cl.Exec(dir, dir+"/job.exe")
			if err != nil || res.Code != 0 {
				errs <- fmt.Errorf("exec%d: code %d, %v", i, res.Code, err)
				return
			}
			out, err := cl.GetFile(dir + "/whoami.out")
			if err != nil {
				errs <- err
				return
			}
			want := "globus:" + subject
			if string(out) != want {
				errs <- fmt.Errorf("exec%d identity = %q, want %q", i, out, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerSurvivesGarbage sends malformed bytes; the server must drop
// the connection without taking down other sessions.
func TestServerSurvivesGarbage(t *testing.T) {
	srv, _, ca := testServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("\x00\xff garbage \n\n\x07not a protocol\n"))
	conn.Close()
	// A legitimate session still works afterwards.
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	if _, err := cl.Whoami(); err != nil {
		t.Fatalf("healthy session after garbage: %v", err)
	}
}

// TestServerRejectsOversizeTransfers exercises the protocol limits.
func TestServerRejectsOversizeTransfers(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	cl.Mkdir("/big", 0o755)
	fd, err := cl.Open("/big/f", kernel.OWronly|kernel.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A pread above the 4 MiB cap is refused cleanly.
	if _, err := cl.rpc("pread", fmt.Sprint(fd), fmt.Sprint(1<<23), "0"); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("oversize pread = %v, want EINVAL", err)
	}
	// The session remains usable.
	if _, err := cl.Whoami(); err != nil {
		t.Fatalf("session after refused op: %v", err)
	}
}

// TestClientSeesServerShutdown verifies in-flight clients fail cleanly
// when the server goes away.
func TestClientSeesServerShutdown(t *testing.T) {
	srv, _, ca := testServer(t)
	cred, _ := ca.Issue("/O=UnivNowhere/CN=Fred")
	cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Mkdir("/pre", 0o755); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := cl.Mkdir("/post", 0o755); err == nil {
		t.Fatal("operation after server shutdown should fail")
	}
}

// TestMountAllFromCatalog discovers two servers via the catalog and
// mounts both inside one identity box.
func TestMountAllFromCatalog(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	mkServer := func(name string) *Server {
		fs := vfs.New("owner")
		k := kernel.New(fs, vclock.Default())
		rootACL := aclAllowAll()
		srv, err := NewServer(k, ServerOptions{
			Name:        name,
			Owner:       "owner",
			RootACL:     rootACL,
			CatalogAddr: cat.Addr(),
			Verifiers:   map[auth.Method]auth.Verifier{auth.MethodUnix: &auth.UnixVerifier{}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	s1 := mkServer("alpha")
	s2 := mkServer("beta")

	// Wait for both heartbeats.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(cat.Entries()) < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	if len(cat.Entries()) != 2 {
		t.Fatalf("catalog entries = %d, want 2", len(cat.Entries()))
	}

	// A client box mounting the whole fabric.
	clientFS := vfs.New("dthain")
	clientK := kernel.New(clientFS, vclock.Default())
	clientFS.MkdirAll("/tmp", 0o777, "dthain")
	box, err := core.New(clientK, "dthain", "unix:fred", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clients, err := MountAll(box, cat.Addr(), []auth.Authenticator{&auth.UnixClient{User: "fred"}}, vclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(clients)
	if len(clients) != 2 {
		t.Fatalf("clients = %d, want 2", len(clients))
	}

	st := box.Run(func(p *kernel.Proc, _ []string) int {
		// Write on alpha by name, read it back through the raw address
		// mount, and write on beta too.
		if err := p.WriteFile("/chirp/alpha/hello.txt", []byte("from the box"), 0o644); err != nil {
			t.Errorf("write via name mount: %v", err)
			return 1
		}
		data, err := p.ReadFile("/chirp/" + s1.Addr() + "/hello.txt")
		if err != nil || string(data) != "from the box" {
			t.Errorf("read via addr mount = %q, %v", data, err)
			return 1
		}
		if err := p.WriteFile("/chirp/beta/other.txt", []byte("beta data"), 0o644); err != nil {
			t.Errorf("write to beta: %v", err)
			return 1
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("boxed run exit = %d", st.Code)
	}
	// The files landed on the right servers.
	if _, err := s1.fs.Stat("/hello.txt"); err != nil {
		t.Error("alpha missing hello.txt")
	}
	if _, err := s2.fs.Stat("/other.txt"); err != nil {
		t.Error("beta missing other.txt")
	}
	if s1.fs.Exists("/other.txt") || s2.fs.Exists("/hello.txt") {
		t.Error("files crossed servers")
	}
}

// TestBoxedUserBlockedFromForeignMount verifies an identity without
// rights on a mounted server is refused through the mount.
func TestBoxedUserBlockedFromForeignMount(t *testing.T) {
	srv, _, ca := testServer(t)
	// eve authenticates from an untrusted org: no rights at the root.
	cred, _ := ca.Issue("/O=Hostile/CN=Eve")
	cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	clientFS := vfs.New("dthain")
	clientK := kernel.New(clientFS, vclock.Default())
	clientFS.MkdirAll("/tmp", 0o777, "dthain")
	box, err := core.New(clientK, "dthain", identity.Principal("globus:/O=Hostile/CN=Eve"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mnt := "/chirp/" + srv.Addr()
	box.Mount(mnt, NewDriver(cl, vclock.Default()))
	box.Run(func(p *kernel.Proc, _ []string) int {
		if err := p.Mkdir(mnt+"/evil", 0o755); !errors.Is(err, vfs.ErrPermission) {
			t.Errorf("hostile mkdir = %v, want EPERM", err)
		}
		if _, err := p.ReadDir(mnt); !errors.Is(err, vfs.ErrPermission) {
			t.Errorf("hostile list = %v, want EPERM", err)
		}
		return 0
	})
}

func aclAllowAll() *acl.ACL {
	a := &acl.ACL{}
	a.Set("*", acl.All, acl.None)
	return a
}

// TestProxyCredentialOverChirp authenticates to a Chirp server with a
// delegated GSI proxy: the recorded principal is the base identity, so
// ACLs written for the user keep working for their jobs.
func TestProxyCredentialOverChirp(t *testing.T) {
	srv, _, ca := testServer(t)
	cred, err := ca.Issue("/O=UnivNowhere/CN=Fred")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := cred.Delegate()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIProxyClient{Proxy: proxy}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	who, err := cl.Whoami()
	if err != nil || who != "globus:/O=UnivNowhere/CN=Fred" {
		t.Fatalf("whoami via proxy = %q, %v", who, err)
	}
	// The proxy exercises the same reserve right the user would.
	if err := cl.Mkdir("/proxywork", 0o755); err != nil {
		t.Fatalf("mkdir via proxy: %v", err)
	}
	// And a directly-authenticated session for the same user sees it
	// as its own.
	direct := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	if err := direct.PutFile("/proxywork/f", []byte("x"), 0o644); err != nil {
		t.Fatalf("direct write into proxy-created dir: %v", err)
	}
}

// TestCommunityAuthorization exercises the CAS flow end to end: a
// member presents a signed assertion and gains the community-granted
// rights; non-members, forged assertions, and expired assertions gain
// nothing.
func TestCommunityAuthorization(t *testing.T) {
	cas, err := auth.NewCAS("physics-community")
	if err != nil {
		t.Fatal(err)
	}
	fred := identity.Principal("globus:/O=UnivNowhere/CN=Fred")
	cas.AddMember(fred, "cms-experiment", []auth.Grant{
		{PathPrefix: "/data/cms", Rights: "rwlx"},
	})

	fs := vfs.New("owner")
	k := kernel.New(fs, vclock.Default())
	// The local root ACL grants nothing to visitors; only the CAS does.
	rootACL := &acl.ACL{}
	rootACL.Set("unix:admin", acl.All, acl.None)
	ca, _ := auth.NewCA("CA")
	srv, err := NewServer(k, ServerOptions{
		Owner:   "owner",
		RootACL: rootACL,
		CASTrust: &auth.CASVerifier{
			Trusted: map[string]*rsa.PublicKey{"physics-community": cas.PublicKey()},
		},
		Verifiers: map[auth.Method]auth.Verifier{
			auth.MethodGlobus: &auth.GSIVerifier{TrustedCAs: map[string]*rsa.PublicKey{"CA": ca.PublicKey()}},
			auth.MethodUnix:   &auth.UnixVerifier{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The admin prepares the community area.
	admin, err := Dial(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.Mkdir("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := admin.Mkdir("/data/cms", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := admin.PutFile("/data/cms/events.dat", []byte("collision data"), 0o644); err != nil {
		t.Fatal(err)
	}

	cred, _ := ca.Issue("/O=UnivNowhere/CN=Fred")
	cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Before presenting the assertion: nothing.
	if _, err := cl.GetFile("/data/cms/events.dat"); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("pre-assertion read = %v, want EPERM", err)
	}

	a, err := cas.Issue(fred, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := a.Encode()
	community, err := cl.PresentAssertion(blob)
	if err != nil || community != "cms-experiment" {
		t.Fatalf("present = %q, %v", community, err)
	}

	// Granted: read/write under /data/cms, including mkdir.
	if data, err := cl.GetFile("/data/cms/events.dat"); err != nil || string(data) != "collision data" {
		t.Fatalf("post-assertion read = %q, %v", data, err)
	}
	if err := cl.PutFile("/data/cms/result.dat", []byte("histograms"), 0o644); err != nil {
		t.Fatalf("post-assertion write: %v", err)
	}
	if err := cl.Mkdir("/data/cms/run7", 0o755); err != nil {
		t.Fatalf("post-assertion mkdir: %v", err)
	}
	// But only under the granted prefix.
	if _, err := cl.GetFile("/" + acl.FileName); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("outside-prefix read = %v, want EPERM", err)
	}
	if err := cl.Mkdir("/elsewhere", 0o755); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("outside-prefix mkdir = %v, want EPERM", err)
	}
	// Prefix matching respects component boundaries.
	if err := cl.PutFile("/data/cmsX", []byte("x"), 0o644); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("sibling-prefix write = %v, want EPERM", err)
	}

	// A forged assertion (tampered after signing) is rejected.
	forged, _ := cas.Issue(fred, time.Hour)
	forged.Grants[0].PathPrefix = "/"
	fblob, _ := forged.Encode()
	if _, err := cl.PresentAssertion(fblob); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("forged assertion = %v, want rejection", err)
	}

	// An assertion for someone else is rejected.
	george := identity.Principal("globus:/O=UnivNowhere/CN=George")
	cas.AddMember(george, "cms-experiment", []auth.Grant{{PathPrefix: "/", Rights: "rwlax"}})
	ga, _ := cas.Issue(george, time.Hour)
	gblob, _ := ga.Encode()
	if _, err := cl.PresentAssertion(gblob); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("stolen assertion = %v, want rejection", err)
	}
}

// TestCASExpiredAssertionRejected checks expiry handling.
func TestCASExpiredAssertionRejected(t *testing.T) {
	cas, _ := auth.NewCAS("c")
	fred := identity.Principal("unix:fred")
	cas.AddMember(fred, "grp", []auth.Grant{{PathPrefix: "/", Rights: "rl"}})
	past := time.Now().Add(-2 * time.Hour)
	cas.SetClock(func() time.Time { return past })
	a, err := cas.Issue(fred, time.Hour) // expired an hour ago
	if err != nil {
		t.Fatal(err)
	}
	v := &auth.CASVerifier{Trusted: map[string]*rsa.PublicKey{"c": cas.PublicKey()}}
	if err := v.Verify(a); err == nil {
		t.Fatal("expired assertion verified")
	}
}

// TestRmdirRemovesACLFileToo mirrors the box semantics server-side: a
// directory holding only its ACL file is removable by a w holder in
// the parent... but visitors without w in "/" cannot; the admin can.
func TestRmdirOnlyACLInside(t *testing.T) {
	srv, _, ca := testServer(t)
	fred := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	if err := fred.Mkdir("/tidy", 0o755); err != nil {
		t.Fatal(err)
	}
	admin, err := Dial(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.Rmdir("/tidy"); err != nil {
		t.Fatalf("admin rmdir of ACL-only dir: %v", err)
	}
}

func TestStatsCommand(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	cl.Mkdir("/s", 0o755)
	fd, err := cl.Open("/s/f", kernel.OWronly|kernel.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Conns < 1 || st.FDs != 1 || st.Grants != 0 || st.Name != "testserver" {
		t.Fatalf("stats = %d conns, %d fds, %d grants, %q", st.Conns, st.FDs, st.Grants, st.Name)
	}
	if st.Requests < 3 || st.Sessions < 1 || st.RxBytes <= 0 || st.TxBytes <= 0 {
		t.Fatalf("lifetime stats = %+v", st)
	}
	cl.CloseFD(fd)
	st, _ = cl.Stats()
	if st.FDs != 0 {
		t.Fatalf("fds after close = %d", st.FDs)
	}
}

// TestAuthTimeoutDropsSilentConnections verifies an unauthenticated
// socket that sends nothing is dropped after AuthTimeout rather than
// pinning a server goroutine forever.
func TestAuthTimeoutDropsSilentConnections(t *testing.T) {
	fs := vfs.New("o")
	k := kernel.New(fs, vclock.Default())
	rootACL := &acl.ACL{}
	rootACL.Set("*", acl.Read|acl.List, acl.None)
	srv, err := NewServer(k, ServerOptions{
		Owner:       "o",
		RootACL:     rootACL,
		AuthTimeout: 100 * time.Millisecond,
		Verifiers:   map[auth.Method]auth.Verifier{auth.MethodUnix: &auth.UnixVerifier{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server must hang up.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to drop the silent connection")
	}
	// A prompt, legitimate session still works (the deadline is lifted
	// after auth).
	cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(150 * time.Millisecond) // outlive the auth deadline
	if _, err := cl.Whoami(); err != nil {
		t.Fatalf("authenticated session hit the auth deadline: %v", err)
	}
}
