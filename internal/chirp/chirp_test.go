package chirp

import (
	"bytes"
	"crypto/rsa"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"identitybox/internal/acl"
	"identitybox/internal/auth"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// testServer starts a Chirp server over a fresh kernel whose root ACL
// grants globus:/O=UnivNowhere/* the reserve right v(rwlax) and
// hostname users read/list, mirroring the Figure-3 configuration.
func testServer(t *testing.T) (*Server, *kernel.Kernel, *auth.CA) {
	t.Helper()
	fs := vfs.New("chirpowner")
	k := kernel.New(fs, vclock.Default())
	if err := fs.MkdirAll("/tmp", 0o777, "chirpowner"); err != nil {
		t.Fatal(err)
	}
	ca, err := auth.NewCA("UnivNowhereCA")
	if err != nil {
		t.Fatal(err)
	}
	rootACL := &acl.ACL{}
	rootACL.Set("globus:/O=UnivNowhere/*", acl.Reserve|acl.List, acl.All)
	rootACL.Set("hostname:*.nowhere.edu", acl.Read|acl.List|acl.Execute, acl.None)
	rootACL.Set("unix:admin", acl.All, acl.None)
	srv, err := NewServer(k, ServerOptions{
		Name:    "testserver",
		Owner:   "chirpowner",
		RootACL: rootACL,
		Verifiers: map[auth.Method]auth.Verifier{
			auth.MethodGlobus: &auth.GSIVerifier{TrustedCAs: map[string]*rsa.PublicKey{"UnivNowhereCA": ca.PublicKey()}},
			auth.MethodUnix:   &auth.UnixVerifier{},
			auth.MethodHostname: &auth.HostnameVerifier{
				Hosts: auth.HostTable{"127.0.0.1": "localhost.nowhere.edu"},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, k, ca
}

func gsiClient(t *testing.T, srv *Server, ca *auth.CA, subject string) *Client {
	t.Helper()
	cred, err := ca.Issue(subject)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestWhoami(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	p, err := cl.Whoami()
	if err != nil || p != "globus:/O=UnivNowhere/CN=Fred" {
		t.Fatalf("whoami = %q, %v", p, err)
	}
	if cl.Identity() != p {
		t.Fatalf("client identity %q != server %q", cl.Identity(), p)
	}
}

// TestFigure3GridJob reproduces the full Figure-3 scenario over real
// TCP: establish a GSI identity, mkdir /work under the reserve right,
// stage in sim.exe, execute it remotely inside an identity box, and
// retrieve out.dat.
func TestFigure3GridJob(t *testing.T) {
	srv, k, ca := testServer(t)
	// The simulation program: reads its staged input, writes out.dat.
	k.RegisterProgram("sim", func(p *kernel.Proc, args []string) int {
		in, err := p.ReadFile("input.dat")
		if err != nil {
			return 1
		}
		out := bytes.ToUpper(in)
		if err := p.WriteFile("out.dat", out, 0o644); err != nil {
			return 2
		}
		if p.GetUserName() != "globus:/O=UnivNowhere/CN=Fred" {
			return 3
		}
		return 0
	})

	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")

	// 1. mkdir /work (holding only the reserve right).
	if err := cl.Mkdir("/work", 0o755); err != nil {
		t.Fatalf("mkdir /work: %v", err)
	}
	// The fresh ACL grants Fred rwlax.
	text, err := cl.GetACL("/work")
	if err != nil {
		t.Fatalf("getacl: %v", err)
	}
	a, err := acl.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := a.Lookup("globus:/O=UnivNowhere/CN=Fred"); r != acl.All {
		t.Fatalf("/work ACL rights = %v, want rwlax", r)
	}

	// 2-3. Stage in the executable and input.
	if err := cl.PutFile("/work/sim.exe", kernel.ExecutableBytes("sim"), 0o755); err != nil {
		t.Fatalf("put sim.exe: %v", err)
	}
	if err := cl.PutFile("/work/input.dat", []byte("signal data"), 0o644); err != nil {
		t.Fatalf("put input: %v", err)
	}

	// 4. exec sim.exe remotely, in an identity box named by the GSI
	// identity.
	res, err := cl.Exec("/work", "/work/sim.exe")
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if res.Code != 0 {
		t.Fatalf("exec exit code = %d", res.Code)
	}
	if res.RuntimeSeconds <= 0 {
		t.Fatalf("exec runtime = %v", res.RuntimeSeconds)
	}

	// 5. get out.dat.
	out, err := cl.GetFile("/work/out.dat")
	if err != nil || string(out) != "SIGNAL DATA" {
		t.Fatalf("get out.dat = %q, %v", out, err)
	}
}

func TestReserveIsolationBetweenUsers(t *testing.T) {
	srv, _, ca := testServer(t)
	fred := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	george := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=George")

	if err := fred.Mkdir("/freds", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fred.PutFile("/freds/private", []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	// George cannot read, write, or list Fred's reserved directory.
	if _, err := george.GetFile("/freds/private"); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("george read = %v, want EPERM", err)
	}
	if err := george.PutFile("/freds/mine", []byte("x"), 0o644); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("george write = %v, want EPERM", err)
	}
	if _, err := george.ReadDir("/freds"); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("george list = %v, want EPERM", err)
	}
	// But George can reserve his own.
	if err := george.Mkdir("/georges", 0o755); err != nil {
		t.Fatal(err)
	}
	// Fred shares with George by editing his ACL (he holds 'a').
	text, _ := fred.GetACL("/freds")
	a, _ := acl.Parse(text)
	a.Set("globus:/O=UnivNowhere/CN=George", acl.Read|acl.List, acl.None)
	if err := fred.SetACL("/freds", a.String()); err != nil {
		t.Fatalf("setacl: %v", err)
	}
	if data, err := george.GetFile("/freds/private"); err != nil || string(data) != "secret" {
		t.Errorf("george after grant = %q, %v", data, err)
	}
	// George (no 'a') cannot edit the ACL.
	if err := george.SetACL("/freds", "x rwlax\n"); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("george setacl = %v, want EPERM", err)
	}
}

func TestHostnameUsersLimitedToRX(t *testing.T) {
	srv, k, _ := testServer(t)
	// The admin stages a program at the top level.
	k.RegisterProgram("hello", func(p *kernel.Proc, _ []string) int { return 42 })
	admin, err := Dial(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.PutFile("/hello.exe", kernel.ExecutableBytes("hello"), 0o755); err != nil {
		t.Fatal(err)
	}

	host, err := Dial(srv.Addr(), []auth.Authenticator{&auth.HostnameClient{}})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	if host.Identity() != "hostname:localhost.nowhere.edu" {
		t.Fatalf("hostname identity = %q", host.Identity())
	}
	// rlx: can read and run what exists...
	if _, err := host.GetFile("/hello.exe"); err != nil {
		t.Errorf("hostname read = %v", err)
	}
	res, err := host.Exec("/", "/hello.exe")
	if err != nil || res.Code != 42 {
		t.Errorf("hostname exec = %+v, %v", res, err)
	}
	// ...but cannot stage anything new.
	if err := host.PutFile("/evil.exe", []byte("x"), 0o755); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("hostname write = %v, want EPERM", err)
	}
}

func TestExecRequiresExecuteRight(t *testing.T) {
	srv, k, ca := testServer(t)
	k.RegisterProgram("x", func(p *kernel.Proc, _ []string) int { return 0 })
	fred := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	if err := fred.Mkdir("/w", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fred.PutFile("/w/x.exe", kernel.ExecutableBytes("x"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Fred removes his own x right.
	a := &acl.ACL{}
	a.Set("globus:/O=UnivNowhere/CN=Fred", acl.Read|acl.Write|acl.List|acl.Admin, acl.None)
	if err := fred.SetACL("/w", a.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := fred.Exec("/w", "/w/x.exe"); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("exec without x = %v, want EPERM", err)
	}
}

func TestMetadataOpsOverWire(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	if err := cl.Mkdir("/m", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFile("/m/a", []byte("alpha"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stat("/m/a")
	if err != nil || st.Size != 5 || st.Type != vfs.TypeRegular {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	if err := cl.Rename("/m/a", "/m/b"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Link("/m/b", "/m/c"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Symlink("b", "/m/ln"); err != nil {
		t.Fatal(err)
	}
	if tgt, err := cl.Readlink("/m/ln"); err != nil || tgt != "b" {
		t.Fatalf("readlink = %q, %v", tgt, err)
	}
	lst, err := cl.Lstat("/m/ln")
	if err != nil || lst.Type != vfs.TypeSymlink {
		t.Fatalf("lstat = %+v, %v", lst, err)
	}
	ents, err := cl.ReadDir("/m")
	if err != nil {
		t.Fatal(err)
	}
	// .__acl, b, c, ln
	if len(ents) != 4 {
		t.Fatalf("readdir = %v", ents)
	}
	if err := cl.Truncate("/m/b", 2); err != nil {
		t.Fatal(err)
	}
	if data, _ := cl.GetFile("/m/c"); string(data) != "al" {
		t.Fatalf("after truncate via hard link = %q", data)
	}
	if err := cl.Unlink("/m/c"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unlink("/m/ln"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unlink("/m/b"); err != nil {
		t.Fatal(err)
	}
	// Unlinking the ACL file itself requires 'a', which Fred holds.
	if err := cl.Unlink("/m/" + acl.FileName); err != nil {
		t.Fatal(err)
	}
	// Removing /m needs the w right in its parent "/", which Fred does
	// not hold (the root grants him only v+l): denied.
	if err := cl.Rmdir("/m"); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("rmdir without w in parent = %v, want EPERM", err)
	}
	// The admin (rwlax at the root) may remove it.
	admin, err := Dial(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.Rmdir("/m"); err != nil {
		t.Fatal(err)
	}
}

func TestPathsWithSpaces(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	if err := cl.Mkdir("/my dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFile("/my dir/my file.txt", []byte("spaced"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := cl.GetFile("/my dir/my file.txt")
	if err != nil || string(data) != "spaced" {
		t.Fatalf("spaced path = %q, %v", data, err)
	}
}

func TestLargeFileTransfer(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	cl.Mkdir("/big", 0o755)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 16384) // 256 kB
	if err := cl.PutFile("/big/blob", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetFile("/big/blob")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %d bytes, %v", len(got), err)
	}
}

func TestAuthFailureClosesSession(t *testing.T) {
	srv, _, _ := testServer(t)
	rogueCA, _ := auth.NewCA("RogueCA")
	cred, _ := rogueCA.Issue("/O=Evil/CN=Mallory")
	_, err := Dial(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}})
	if err == nil {
		t.Fatal("rogue CA accepted")
	}
}

func TestUnknownCommand(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	_, err := cl.rpc("frobnicate")
	if !errors.Is(err, kernel.ErrNoSys) {
		t.Fatalf("unknown command = %v, want ENOSYS", err)
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	fs := vfs.New("o")
	k := kernel.New(fs, vclock.Default())
	rootACL := &acl.ACL{}
	rootACL.Set("*", acl.Read|acl.List, acl.None)
	srv, err := NewServer(k, ServerOptions{
		Name:        "node1",
		Owner:       "o",
		RootACL:     rootACL,
		CatalogAddr: cat.Addr(),
		Verifiers:   map[auth.Method]auth.Verifier{auth.MethodUnix: &auth.UnixVerifier{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The heartbeat is UDP; wait for it to land.
	deadline := time.Now().Add(2 * time.Second)
	var entries []CatalogEntry
	for time.Now().Before(deadline) {
		entries = cat.Entries()
		if len(entries) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(entries) != 1 || entries[0].Name != "node1" || entries[0].Owner != "o" {
		t.Fatalf("catalog entries = %+v", entries)
	}
	// TCP query path.
	got, err := QueryCatalog(cat.Addr())
	if err != nil || len(got) != 1 || got[0].Addr != srv.Addr() {
		t.Fatalf("QueryCatalog = %+v, %v", got, err)
	}
}

func TestCatalogExpiry(t *testing.T) {
	cat := NewCatalog()
	base := time.Unix(1000000, 0)
	now := base
	cat.SetClock(func() time.Time { return now })
	cat.Record(`chirp "n1" "1.2.3.4:9094" "alice"`)
	if len(cat.Entries()) != 1 {
		t.Fatal("heartbeat not recorded")
	}
	now = base.Add(16 * time.Minute)
	if len(cat.Entries()) != 0 {
		t.Fatal("stale server not expired")
	}
}

func TestSplitFields(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`open 0 644 "/plain"`, []string{"open", "0", "644", "/plain"}},
		{`stat "/with space/f"`, []string{"stat", "/with space/f"}},
		{`x "quoted \"inner\""`, []string{"x", `quoted "inner"`}},
		{``, nil},
		{`   `, nil},
	}
	for _, c := range cases {
		got, err := splitFields(c.in)
		if err != nil {
			t.Errorf("splitFields(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("splitFields(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitFields(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
	if _, err := splitFields(`bad "unterminated`); err == nil {
		t.Error("unterminated quote accepted")
	}
}

func TestStatRoundTripWire(t *testing.T) {
	st := vfs.Stat{Ino: 7, Type: vfs.TypeSymlink, Mode: 0o644, Owner: "alice", Group: "staff", Nlink: 2, Size: 1234, Mtime: 99}
	fields := statFields(st)
	// Simulate the wire: join and re-split.
	line := ""
	for i, f := range fields {
		if i > 0 {
			line += " "
		}
		line += f
	}
	parts, err := splitFields(line)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseStat(parts)
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("round trip: %+v != %+v", got, st)
	}
}

func TestStatWireRoundTripProperty(t *testing.T) {
	f := func(ino uint64, tpe uint8, mode uint32, nlink uint8, size int64, mtime int64) bool {
		st := vfs.Stat{
			Ino:   ino,
			Type:  vfs.FileType(int(tpe) % 3),
			Mode:  mode & 0o7777,
			Owner: "owner-x",
			Group: "grp",
			Nlink: int(nlink),
			Size:  size & 0x7fffffff,
			Mtime: mtime & 0x7fffffff,
		}
		fields := statFields(st)
		line := strings.Join(fields, " ")
		parts, err := splitFields(line)
		if err != nil {
			return false
		}
		got, err := parseStat(parts)
		return err == nil && got == st
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
