package chirp

import (
	"fmt"

	"identitybox/internal/auth"
	"identitybox/internal/core"
	"identitybox/internal/vclock"
)

// MountAll discovers every server known to a catalog and mounts each
// inside the box under /chirp/<name> (and /chirp/<addr>), dialing one
// authenticated connection per server. This is how Parrot lets a boxed
// application browse the whole storage fabric as a single namespace:
//
//	ls /chirp/                 (conceptually)
//	cat /chirp/storage.nowhere.edu/public/data
//
// Catalog entries sharing a name are treated as replicas of one
// export: /chirp/<name> is served by a FailoverDriver that fails reads
// over to a live replica when the primary is down and degrades writes
// with ErrDegraded. /chirp/<addr> always addresses one specific
// server. Failover decisions land in the box's audit trail.
//
// It returns the clients so the caller can close them when the box is
// done.
func MountAll(box *core.Box, catalogAddr string, auths []auth.Authenticator, model vclock.CostModel) ([]*Client, error) {
	entries, err := QueryCatalog(catalogAddr)
	if err != nil {
		return nil, fmt.Errorf("chirp: querying catalog %s: %w", catalogAddr, err)
	}
	var clients []*Client
	groups := make(map[string][]*Driver) // name -> replica drivers, catalog order
	var names []string
	for _, e := range entries {
		cl, err := Dial(e.Addr, auths)
		if err != nil {
			// A server may have gone away since its last heartbeat;
			// skip it rather than failing the whole mount.
			continue
		}
		clients = append(clients, cl)
		d := NewDriver(cl, model)
		box.Mount("/chirp/"+e.Addr, d)
		if e.Name != "" && e.Name != e.Addr {
			if _, seen := groups[e.Name]; !seen {
				names = append(names, e.Name)
			}
			groups[e.Name] = append(groups[e.Name], d)
		}
	}
	for _, name := range names {
		replicas := groups[name]
		if len(replicas) == 1 {
			box.Mount("/chirp/"+name, replicas[0])
			continue
		}
		// The driver knows its catalog name and address, so a caller that
		// keeps a handle can StartCatalogWatch/StartReprobe; MountAll
		// itself starts no background loops (it returns no stop handle).
		box.Mount("/chirp/"+name, NewFailoverDriverOpts(replicas, FailoverOptions{
			Note:        box.Note,
			Name:        name,
			CatalogAddr: catalogAddr,
		}))
	}
	return clients, nil
}

// CloseAll closes a set of clients, ignoring individual errors.
func CloseAll(clients []*Client) {
	for _, cl := range clients {
		cl.Close()
	}
}
