package chirp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/parrot"
	"identitybox/internal/vfs"
)

// MetricFailoverReprobes counts background re-probes of breaker-tripped
// replicas (see FailoverDriver.StartReprobe).
const MetricFailoverReprobes = "chirp_failover_reprobe_total"

// FailoverDriver serves one catalog name from a replica set: catalog
// entries sharing a name are taken as replicas of the same export.
// Reads prefer the primary but fail over, in order, to replicas when
// the primary's circuit breaker is open or a call fails at the
// transport level (remote error replies are final — a replica would
// just repeat them). Writes go to whichever member currently holds the
// write lease: the primary index moves when a server answers
// ENOTPRIMARY naming its successor, or when the catalog watch sees the
// lease change hands. Writes still never fan out — a mutation lands on
// exactly one member or degrades with the typed ErrDegraded.
type FailoverDriver struct {
	drivers []*Driver    // catalog-preferred order; index 0 is the initial primary
	note    func(string) // optional failover-event sink (core audit)

	// primaryIdx is the member currently believed to hold the write
	// lease. Reads start their preference scan here too, so a promoted
	// follower also becomes the freshest read target.
	primaryIdx atomic.Int32

	catalogAddr string
	name        string // replica-set name in the catalog ("" disables the watch)

	reprobes *obs.Counter

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// FailoverOptions configure a FailoverDriver beyond its member list.
type FailoverOptions struct {
	// Note, when non-nil, receives one line per failover decision
	// (wired to the box's audit trail by MountAll).
	Note func(string)
	// Name is the replica-set name in the catalog; with CatalogAddr it
	// enables StartCatalogWatch to follow lease changes.
	Name string
	// CatalogAddr is the catalog's TCP query endpoint.
	CatalogAddr string
	// Metrics receives the driver's counters (nil keeps them private).
	Metrics *obs.Registry
}

// NewFailoverDriver builds a failover driver over a replica set,
// primary first, with no catalog awareness — the compatibility
// constructor; see NewFailoverDriverOpts.
func NewFailoverDriver(drivers []*Driver, note func(string)) *FailoverDriver {
	return NewFailoverDriverOpts(drivers, FailoverOptions{Note: note})
}

// NewFailoverDriverOpts builds a failover driver over a replica set in
// catalog-preferred order (index 0 the presumed primary).
func NewFailoverDriverOpts(drivers []*Driver, opts FailoverOptions) *FailoverDriver {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg.Help(MetricFailoverReprobes, "Background re-probes of breaker-tripped replicas.")
	return &FailoverDriver{
		drivers:     drivers,
		note:        opts.Note,
		catalogAddr: opts.CatalogAddr,
		name:        opts.Name,
		reprobes:    reg.Counter(MetricFailoverReprobes),
		stop:        make(chan struct{}),
	}
}

// Primary exposes the current primary's driver (tests, tools).
func (f *FailoverDriver) Primary() *Driver { return f.drivers[f.primaryIdx.Load()] }

// setPrimaryAddr points the write path at the member advertising addr,
// reporting whether a member matched.
func (f *FailoverDriver) setPrimaryAddr(addr, why string) bool {
	for i, d := range f.drivers {
		if d.Client().Addr() == addr {
			if f.primaryIdx.Swap(int32(i)) != int32(i) {
				f.notef("chirp failover: primary is now %s (%s)", addr, why)
			}
			return true
		}
	}
	return false
}

// Stop ends the background catalog watch and re-probe loops.
func (f *FailoverDriver) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// StartCatalogWatch polls the catalog every interval and re-points the
// write path at whichever replica-set member reports the primary role,
// so writes follow the lease even when no write has yet been told
// ENOTPRIMARY. Needs Name and a catalog address (the option or the
// argument); returns false when either is missing.
func (f *FailoverDriver) StartCatalogWatch(catalogAddr string, interval time.Duration) bool {
	if catalogAddr == "" {
		catalogAddr = f.catalogAddr
	}
	if catalogAddr == "" || f.name == "" || interval <= 0 {
		return false
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				entries, err := QueryCatalog(catalogAddr)
				if err != nil {
					continue
				}
				for _, e := range entries {
					if e.Name == f.name && e.Role == "primary" {
						f.setPrimaryAddr(e.Addr, "catalog")
						break
					}
				}
			}
		}
	}()
	return true
}

// StartReprobe probes breaker-tripped members every interval with a
// cheap whoami, so a replica that recovered rejoins the read
// preference order without waiting for live traffic to trip over it.
// Each probe is counted in chirp_failover_reprobe_total.
func (f *FailoverDriver) StartReprobe(interval time.Duration) bool {
	if interval <= 0 {
		return false
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				for _, d := range f.drivers {
					if d.Client().Breaker().State() != BreakerOpen {
						continue
					}
					f.reprobes.Inc()
					if _, err := d.Client().Whoami(); err == nil {
						f.notef("chirp failover: %s recovered (reprobe)", d.Client().Addr())
					}
				}
			}
		}
	}()
	return true
}

func (f *FailoverDriver) notef(format string, args ...any) {
	if f.note != nil {
		f.note(fmt.Sprintf(format, args...))
	}
}

// readDriver runs op against the first usable replica, starting the
// preference scan at the current primary: open-breaker drivers are
// skipped (unless every breaker is open, when the primary is probed
// anyway rather than failing without trying), and transport failures
// advance to the next replica.
func (f *FailoverDriver) readDriver(what string, op func(d *Driver) error) error {
	var lastErr error
	tried := 0
	start := int(f.primaryIdx.Load())
	for n := 0; n < len(f.drivers); n++ {
		i := (start + n) % len(f.drivers)
		d := f.drivers[i]
		if d.Client().Breaker().State() == BreakerOpen {
			continue
		}
		tried++
		err := op(d)
		if err == nil || !isTransient(err) {
			if i != start {
				f.notef("chirp failover: %s served by replica %s", what, d.Client().Addr())
			}
			return err
		}
		f.notef("chirp failover: %s failed on %s: %v", what, d.Client().Addr(), err)
		lastErr = err
	}
	if tried == 0 {
		// Every breaker is open. Probe the primary rather than reporting
		// staleness forever: Allow() readmits traffic after the cooloff.
		if f.Primary().Client().Breaker().Allow() {
			return op(f.Primary())
		}
		return ErrBreakerOpen
	}
	return lastErr
}

// writeDriver runs op against the lease holder, degrading with
// ErrDegraded when it is unavailable. A member that answers
// ENOTPRIMARY names its successor; the write retries exactly once
// against it (safe — the refused attempt executed nothing). Writes
// never fan out: a mutation lands on one member or not at all.
func (f *FailoverDriver) writeDriver(op func(d *Driver) error) error {
	primary := f.Primary()
	if primary.Client().Breaker().State() == BreakerOpen && !primary.Client().Breaker().Allow() {
		// Before declaring degradation, let another member claim the
		// write: after a failover the old primary's breaker is open but
		// the promoted follower is healthy.
		if redirected := f.promoteHealthyLocked(); redirected != nil {
			primary = redirected
		} else {
			f.notef("chirp failover: write degraded, primary %s breaker open", primary.Client().Addr())
			return fmt.Errorf("%w (primary %s)", ErrDegraded, primary.Client().Addr())
		}
	}
	err := op(primary)
	if errors.Is(err, ErrNotPrimary) {
		if addr := PrimaryFromError(err); addr != "" && f.setPrimaryAddr(addr, "redirect") {
			next := f.Primary()
			if rerr := op(next); !isTransient(rerr) && !errors.Is(rerr, ErrNotPrimary) {
				return rerr
			} else if rerr != nil {
				err = rerr
			}
		}
		f.notef("chirp failover: write degraded, no reachable primary: %v", err)
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	if isTransient(err) {
		f.notef("chirp failover: write degraded, primary %s: %v", primary.Client().Addr(), err)
		return fmt.Errorf("%w (primary %s): %v", ErrDegraded, primary.Client().Addr(), err)
	}
	return err
}

// promoteHealthyLocked scans for a member with a closed breaker whose
// server explicitly reports the primary role, re-pointing the write
// path at it. Members of a role-less replica set never qualify —
// without a lease protocol, writing to a replica would fork the set's
// state, so those keep the classic writes-never-fail-over behavior.
func (f *FailoverDriver) promoteHealthyLocked() *Driver {
	for i, d := range f.drivers {
		if d.Client().Breaker().State() == BreakerOpen {
			continue
		}
		st, err := d.Client().Stats()
		if err != nil || st.Role != "primary" {
			continue
		}
		if f.primaryIdx.Swap(int32(i)) != int32(i) {
			f.notef("chirp failover: primary is now %s (probe)", d.Client().Addr())
		}
		return d
	}
	return nil
}

// Open implements parrot.Driver. Read-only opens may fail over;
// anything that can mutate (write access, create, truncate) is a write.
func (f *FailoverDriver) Open(p *kernel.Proc, path string, flags int, mode uint32) (parrot.File, error) {
	var file parrot.File
	op := func(d *Driver) error {
		var err error
		file, err = d.Open(p, path, flags, mode)
		return err
	}
	readOnly := flags&3 == kernel.ORdonly && flags&(kernel.OCreat|kernel.OTrunc) == 0
	var err error
	if readOnly {
		err = f.readDriver("open "+path, op)
	} else {
		err = f.writeDriver(op)
	}
	if err != nil {
		return nil, err
	}
	return file, nil
}

// Stat implements parrot.Driver.
func (f *FailoverDriver) Stat(p *kernel.Proc, path string) (vfs.Stat, error) {
	var st vfs.Stat
	err := f.readDriver("stat "+path, func(d *Driver) error {
		var err error
		st, err = d.Stat(p, path)
		return err
	})
	return st, err
}

// Lstat implements parrot.Driver.
func (f *FailoverDriver) Lstat(p *kernel.Proc, path string) (vfs.Stat, error) {
	var st vfs.Stat
	err := f.readDriver("lstat "+path, func(d *Driver) error {
		var err error
		st, err = d.Lstat(p, path)
		return err
	})
	return st, err
}

// Readlink implements parrot.Driver.
func (f *FailoverDriver) Readlink(p *kernel.Proc, path string) (string, error) {
	var t string
	err := f.readDriver("readlink "+path, func(d *Driver) error {
		var err error
		t, err = d.Readlink(p, path)
		return err
	})
	return t, err
}

// ReadDir implements parrot.Driver.
func (f *FailoverDriver) ReadDir(p *kernel.Proc, path string) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	err := f.readDriver("readdir "+path, func(d *Driver) error {
		var err error
		ents, err = d.ReadDir(p, path)
		return err
	})
	return ents, err
}

// ReadFileSmall implements parrot.Driver.
func (f *FailoverDriver) ReadFileSmall(p *kernel.Proc, path string) ([]byte, error) {
	var data []byte
	err := f.readDriver("read "+path, func(d *Driver) error {
		var err error
		data, err = d.ReadFileSmall(p, path)
		return err
	})
	return data, err
}

// Mkdir implements parrot.Driver.
func (f *FailoverDriver) Mkdir(p *kernel.Proc, path string, mode uint32) error {
	return f.writeDriver(func(d *Driver) error { return d.Mkdir(p, path, mode) })
}

// Rmdir implements parrot.Driver.
func (f *FailoverDriver) Rmdir(p *kernel.Proc, path string) error {
	return f.writeDriver(func(d *Driver) error { return d.Rmdir(p, path) })
}

// Unlink implements parrot.Driver.
func (f *FailoverDriver) Unlink(p *kernel.Proc, path string) error {
	return f.writeDriver(func(d *Driver) error { return d.Unlink(p, path) })
}

// Link implements parrot.Driver.
func (f *FailoverDriver) Link(p *kernel.Proc, oldPath, newPath string) error {
	return f.writeDriver(func(d *Driver) error { return d.Link(p, oldPath, newPath) })
}

// Symlink implements parrot.Driver.
func (f *FailoverDriver) Symlink(p *kernel.Proc, target, linkPath string) error {
	return f.writeDriver(func(d *Driver) error { return d.Symlink(p, target, linkPath) })
}

// Rename implements parrot.Driver.
func (f *FailoverDriver) Rename(p *kernel.Proc, oldPath, newPath string) error {
	return f.writeDriver(func(d *Driver) error { return d.Rename(p, oldPath, newPath) })
}

// Chmod implements parrot.Driver (a no-op on Chirp, as in Driver).
func (f *FailoverDriver) Chmod(p *kernel.Proc, path string, mode uint32) error {
	return f.Primary().Chmod(p, path, mode)
}

// Truncate implements parrot.Driver.
func (f *FailoverDriver) Truncate(p *kernel.Proc, path string, size int64) error {
	return f.writeDriver(func(d *Driver) error { return d.Truncate(p, path, size) })
}

// WriteFileSmall implements parrot.Driver.
func (f *FailoverDriver) WriteFileSmall(p *kernel.Proc, path string, data []byte, mode uint32) error {
	return f.writeDriver(func(d *Driver) error { return d.WriteFileSmall(p, path, data, mode) })
}

// ManagesACLs implements parrot.ACLManager, like Driver.
func (f *FailoverDriver) ManagesACLs() bool { return true }

var (
	_ parrot.Driver     = (*FailoverDriver)(nil)
	_ parrot.ACLManager = (*FailoverDriver)(nil)
)
