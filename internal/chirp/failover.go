package chirp

import (
	"fmt"

	"identitybox/internal/kernel"
	"identitybox/internal/parrot"
	"identitybox/internal/vfs"
)

// FailoverDriver serves one catalog name from a replica set: catalog
// entries sharing a name are taken as replicas of the same export.
// Reads prefer the primary but fail over, in order, to replicas when
// the primary's circuit breaker is open or a call fails at the
// transport level (remote error replies are final — a replica would
// just repeat them). Writes go to the primary only — replicas are not
// a consistency protocol — and degrade with the typed ErrDegraded
// instead of hanging when the primary is unavailable.
type FailoverDriver struct {
	drivers []*Driver    // primary first
	note    func(string) // optional failover-event sink (core audit)
}

// NewFailoverDriver builds a failover driver over a replica set,
// primary first. note, when non-nil, receives one line per failover
// decision (wired to the box's audit trail by MountAll).
func NewFailoverDriver(drivers []*Driver, note func(string)) *FailoverDriver {
	return &FailoverDriver{drivers: drivers, note: note}
}

// Primary exposes the primary's driver (tests, tools).
func (f *FailoverDriver) Primary() *Driver { return f.drivers[0] }

func (f *FailoverDriver) notef(format string, args ...any) {
	if f.note != nil {
		f.note(fmt.Sprintf(format, args...))
	}
}

// readDriver runs op against the first usable replica: open-breaker
// drivers are skipped (unless every breaker is open, when the primary
// is probed anyway rather than failing without trying), and transport
// failures advance to the next replica.
func (f *FailoverDriver) readDriver(what string, op func(d *Driver) error) error {
	var lastErr error
	tried := 0
	for i, d := range f.drivers {
		if d.Client().Breaker().State() == BreakerOpen {
			continue
		}
		tried++
		err := op(d)
		if err == nil || !isTransient(err) {
			if i > 0 {
				f.notef("chirp failover: %s served by replica %s", what, d.Client().Addr())
			}
			return err
		}
		f.notef("chirp failover: %s failed on %s: %v", what, d.Client().Addr(), err)
		lastErr = err
	}
	if tried == 0 {
		// Every breaker is open. Probe the primary rather than reporting
		// staleness forever: Allow() readmits traffic after the cooloff.
		if f.drivers[0].Client().Breaker().Allow() {
			return op(f.drivers[0])
		}
		return ErrBreakerOpen
	}
	return lastErr
}

// writeDriver runs op against the primary, degrading with ErrDegraded
// when it is unavailable. Writes never fail over: applying a mutation
// to a replica would fork the replica set's state.
func (f *FailoverDriver) writeDriver(op func(d *Driver) error) error {
	primary := f.drivers[0]
	if primary.Client().Breaker().State() == BreakerOpen && !primary.Client().Breaker().Allow() {
		f.notef("chirp failover: write degraded, primary %s breaker open", primary.Client().Addr())
		return fmt.Errorf("%w (primary %s)", ErrDegraded, primary.Client().Addr())
	}
	err := op(primary)
	if isTransient(err) {
		f.notef("chirp failover: write degraded, primary %s: %v", primary.Client().Addr(), err)
		return fmt.Errorf("%w (primary %s): %v", ErrDegraded, primary.Client().Addr(), err)
	}
	return err
}

// Open implements parrot.Driver. Read-only opens may fail over;
// anything that can mutate (write access, create, truncate) is a write.
func (f *FailoverDriver) Open(p *kernel.Proc, path string, flags int, mode uint32) (parrot.File, error) {
	var file parrot.File
	op := func(d *Driver) error {
		var err error
		file, err = d.Open(p, path, flags, mode)
		return err
	}
	readOnly := flags&3 == kernel.ORdonly && flags&(kernel.OCreat|kernel.OTrunc) == 0
	var err error
	if readOnly {
		err = f.readDriver("open "+path, op)
	} else {
		err = f.writeDriver(op)
	}
	if err != nil {
		return nil, err
	}
	return file, nil
}

// Stat implements parrot.Driver.
func (f *FailoverDriver) Stat(p *kernel.Proc, path string) (vfs.Stat, error) {
	var st vfs.Stat
	err := f.readDriver("stat "+path, func(d *Driver) error {
		var err error
		st, err = d.Stat(p, path)
		return err
	})
	return st, err
}

// Lstat implements parrot.Driver.
func (f *FailoverDriver) Lstat(p *kernel.Proc, path string) (vfs.Stat, error) {
	var st vfs.Stat
	err := f.readDriver("lstat "+path, func(d *Driver) error {
		var err error
		st, err = d.Lstat(p, path)
		return err
	})
	return st, err
}

// Readlink implements parrot.Driver.
func (f *FailoverDriver) Readlink(p *kernel.Proc, path string) (string, error) {
	var t string
	err := f.readDriver("readlink "+path, func(d *Driver) error {
		var err error
		t, err = d.Readlink(p, path)
		return err
	})
	return t, err
}

// ReadDir implements parrot.Driver.
func (f *FailoverDriver) ReadDir(p *kernel.Proc, path string) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	err := f.readDriver("readdir "+path, func(d *Driver) error {
		var err error
		ents, err = d.ReadDir(p, path)
		return err
	})
	return ents, err
}

// ReadFileSmall implements parrot.Driver.
func (f *FailoverDriver) ReadFileSmall(p *kernel.Proc, path string) ([]byte, error) {
	var data []byte
	err := f.readDriver("read "+path, func(d *Driver) error {
		var err error
		data, err = d.ReadFileSmall(p, path)
		return err
	})
	return data, err
}

// Mkdir implements parrot.Driver.
func (f *FailoverDriver) Mkdir(p *kernel.Proc, path string, mode uint32) error {
	return f.writeDriver(func(d *Driver) error { return d.Mkdir(p, path, mode) })
}

// Rmdir implements parrot.Driver.
func (f *FailoverDriver) Rmdir(p *kernel.Proc, path string) error {
	return f.writeDriver(func(d *Driver) error { return d.Rmdir(p, path) })
}

// Unlink implements parrot.Driver.
func (f *FailoverDriver) Unlink(p *kernel.Proc, path string) error {
	return f.writeDriver(func(d *Driver) error { return d.Unlink(p, path) })
}

// Link implements parrot.Driver.
func (f *FailoverDriver) Link(p *kernel.Proc, oldPath, newPath string) error {
	return f.writeDriver(func(d *Driver) error { return d.Link(p, oldPath, newPath) })
}

// Symlink implements parrot.Driver.
func (f *FailoverDriver) Symlink(p *kernel.Proc, target, linkPath string) error {
	return f.writeDriver(func(d *Driver) error { return d.Symlink(p, target, linkPath) })
}

// Rename implements parrot.Driver.
func (f *FailoverDriver) Rename(p *kernel.Proc, oldPath, newPath string) error {
	return f.writeDriver(func(d *Driver) error { return d.Rename(p, oldPath, newPath) })
}

// Chmod implements parrot.Driver (a no-op on Chirp, as in Driver).
func (f *FailoverDriver) Chmod(p *kernel.Proc, path string, mode uint32) error {
	return f.drivers[0].Chmod(p, path, mode)
}

// Truncate implements parrot.Driver.
func (f *FailoverDriver) Truncate(p *kernel.Proc, path string, size int64) error {
	return f.writeDriver(func(d *Driver) error { return d.Truncate(p, path, size) })
}

// WriteFileSmall implements parrot.Driver.
func (f *FailoverDriver) WriteFileSmall(p *kernel.Proc, path string, data []byte, mode uint32) error {
	return f.writeDriver(func(d *Driver) error { return d.WriteFileSmall(p, path, data, mode) })
}

// ManagesACLs implements parrot.ACLManager, like Driver.
func (f *FailoverDriver) ManagesACLs() bool { return true }

var (
	_ parrot.Driver     = (*FailoverDriver)(nil)
	_ parrot.ACLManager = (*FailoverDriver)(nil)
)
