package chirp

import (
	"sync"
	"time"

	"identitybox/internal/obs"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the server looks dead; calls fail fast until the
	// cooloff elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooloff elapsed; one probe is in flight.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a small circuit breaker over one server connection: after
// Threshold consecutive transport failures it opens and fails calls
// fast (no dial, no backoff churn) until Cooloff elapses, then lets one
// probe through. A probe success closes it; a probe failure re-opens
// it. It feeds the client's obs registry (state gauge, opens counter)
// and is consulted by the catalog-failover driver to route reads away
// from a dead primary.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	threshold int
	cooloff   time.Duration
	openedAt  time.Time
	now       func() time.Time

	opens    *obs.Counter
	stateGge *obs.Gauge
}

func newBreaker(threshold int, cooloff time.Duration, reg *obs.Registry) *Breaker {
	reg.Help(MetricClientBreakerOpens, "Times the client circuit breaker opened.")
	reg.Help(MetricClientBreakerState, "Breaker state: 0 closed, 1 open, 2 half-open.")
	return &Breaker{
		threshold: threshold,
		cooloff:   cooloff,
		now:       time.Now,
		opens:     reg.Counter(MetricClientBreakerOpens),
		stateGge:  reg.Gauge(MetricClientBreakerState),
	}
}

// Allow reports whether a call (or redial) may proceed. In the open
// state it returns false until the cooloff elapses, then transitions to
// half-open and admits a single probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	default: // open
		if b.now().Sub(b.openedAt) < b.cooloff {
			return false
		}
		b.setLocked(BreakerHalfOpen)
		return true
	}
}

// Success records a completed exchange: the breaker closes and the
// consecutive-failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != BreakerClosed {
		b.setLocked(BreakerClosed)
	}
}

// Fail records a transport failure (dial error or a connection dying
// mid-exchange). The half-open probe failing re-opens immediately;
// otherwise Threshold consecutive failures open the breaker.
func (b *Breaker) Fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.failures >= b.threshold) {
		b.openedAt = b.now()
		b.setLocked(BreakerOpen)
	}
}

// State reports the breaker's current position (cooloff expiry is
// observed lazily by Allow, so an idle open breaker reports open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) setLocked(s BreakerState) {
	if s == BreakerOpen && b.state != BreakerOpen {
		b.opens.Inc()
	}
	b.state = s
	b.stateGge.Set(int64(s))
}
