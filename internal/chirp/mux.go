package chirp

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"identitybox/internal/obs"
)

// errSessionLost is returned by submit when the v2 session died before
// the call was handed to the writer: nothing reached the wire, so even
// mutating calls may safely retry on a fresh session.
var errSessionLost = errors.New("chirp: session lost before send")

// muxCall is one tagged call in flight on a muxSession.
type muxCall struct {
	tag      uint64
	fields   []string
	sendBody []byte
	recvInto []byte // reply payload lands here (zero-copy) when set
	wantBody bool   // reply payload is copied out into body
	counted  bool   // occupies credit-window space
	bytes    int64  // the call's charge against the byte budget

	written chan struct{} // closed by the writer after flush (farewells)
	done    chan struct{} // closed exactly once on completion

	// Request-tracing state. start and stall are written in submit
	// before the call is shared; writtenNanos is stamped by the writer
	// goroutine after the frame's flush and read by the submitter after
	// done, so it is atomic (zero means the stamp never landed).
	trace        uint64
	cmd          string
	start        time.Time
	stall        time.Duration
	writtenNanos atomic.Int64

	resp []string
	body []byte
	err  error // RemoteError (final) or transport/session failure
}

// muxSession is one negotiated v2 connection: a writer goroutine
// batching tagged request frames into shared flushes, a reader
// goroutine dispatching reply frames by tag, and a credit window
// bounding tags and payload bytes in flight.
//
// Lock order: a goroutine holds at most one of cl.mu and ms.mu at a
// time — the session never calls back into the client under its own
// lock, and the client only reads session state via methods that take
// ms.mu internally.
type muxSession struct {
	cl        *Client
	conn      net.Conn
	c         *codec // writer goroutine owns c.w, reader owns c.r and scratch
	window    int
	maxBytes  int64
	traced    bool          // server echoed the trace capability
	deadlined bool          // server echoed the deadline capability
	spans     *obs.SpanRing // client-side span sink (ClientOptions.Spans)

	mu            sync.Mutex
	cond          *sync.Cond // waits for credit-window space
	nextTag       uint64
	pending       map[uint64]*muxCall
	inflight      int
	inflightBytes int64
	dead          bool
	deadErr       error

	stalls atomic.Int64 // submits that waited for window space

	sendq  chan *muxCall
	closed chan struct{} // closed by fail(); stops the writer
	wg     sync.WaitGroup
}

func newMuxSession(cl *Client, conn net.Conn, c *codec, window int, maxBytes int64, traced, deadlined bool) *muxSession {
	ms := &muxSession{
		cl:        cl,
		conn:      conn,
		c:         c,
		window:    window,
		maxBytes:  maxBytes,
		traced:    traced,
		deadlined: deadlined,
		spans:     cl.opts.Spans,
		pending:   make(map[uint64]*muxCall),
		sendq:     make(chan *muxCall, window+1),
		closed:    make(chan struct{}),
	}
	ms.cond = sync.NewCond(&ms.mu)
	ms.wg.Add(2)
	go ms.writeLoop()
	go ms.readLoop()
	go func() {
		// The codec's pooled buffers go back only after both loops are
		// done touching them.
		ms.wg.Wait()
		c.release()
	}()
	return ms
}

// fail kills the session exactly once: the connection is closed, both
// loops unwind, and every pending call completes with err.
func (ms *muxSession) fail(err error) {
	ms.mu.Lock()
	if ms.dead {
		ms.mu.Unlock()
		return
	}
	ms.dead = true
	ms.deadErr = err
	pending := ms.pending
	ms.pending = make(map[uint64]*muxCall)
	ms.inflight = 0
	ms.inflightBytes = 0
	ms.cond.Broadcast()
	ms.mu.Unlock()
	close(ms.closed)
	ms.conn.Close()
	ms.cl.m.tagsInFlight.Set(0)
	ms.cl.m.inflightBytes.Set(0)
	for _, call := range pending {
		call.err = err
		close(call.done)
	}
}

// submit registers a tagged call, waiting for credit-window space (the
// ops window, plus the byte budget — though one call is always
// admitted, whatever its size, so a single fat transfer never wedges).
func (ms *muxSession) submit(c wireCall) (*muxCall, error) {
	// Tracing activates per call: the session must have negotiated the
	// capability and the call must carry an ID. The untraced path stamps
	// nothing and sends the line unchanged.
	trace := c.trace
	if !ms.traced {
		trace = 0
	}
	var start time.Time
	if trace != 0 {
		start = time.Now()
	}
	fields := c.fields
	if ms.deadlined && !c.deadline.IsZero() {
		// Stamp the remaining budget on the request line so the server can
		// shed the call at any hop once it expires. Rounded up: a sub-
		// millisecond remainder must not serialize as "deadline 0".
		remaining := time.Until(c.deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("%w before send", ErrDeadline)
		}
		budgetMS := (remaining + time.Millisecond - 1) / time.Millisecond
		fields = append([]string{capDeadline, strconv.FormatInt(int64(budgetMS), 10)}, fields...)
	}
	if trace != 0 {
		fields = append([]string{"trace", obs.FormatTraceID(trace)}, fields...)
	}
	est := int64(len(c.sendBody)+len(c.recvInto)) + 256
	ms.mu.Lock()
	for !ms.dead && (ms.inflight >= ms.window ||
		(ms.inflight > 0 && ms.inflightBytes+est > ms.maxBytes)) {
		ms.stalls.Add(1)
		ms.cl.m.windowStalls.Inc()
		ms.cond.Wait()
	}
	if ms.dead {
		err := ms.deadErr
		ms.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", errSessionLost, err)
	}
	ms.nextTag++
	call := &muxCall{
		tag:      ms.nextTag,
		fields:   fields,
		sendBody: c.sendBody,
		recvInto: c.recvInto,
		wantBody: c.recvBody,
		counted:  true,
		bytes:    est,
		trace:    trace,
		cmd:      c.fields[0],
		start:    start,
		done:     make(chan struct{}),
	}
	if trace != 0 {
		call.stall = time.Since(start)
	}
	ms.pending[call.tag] = call
	ms.inflight++
	ms.inflightBytes += est
	ms.cl.m.tagsInFlight.Set(int64(ms.inflight))
	ms.cl.m.inflightBytes.Set(ms.inflightBytes)
	ms.mu.Unlock()
	ms.cl.sent.Add(1)
	ms.sendq <- call
	return call, nil
}

// roundTrip performs one synchronous exchange over the mux. The
// per-call deadline keeps v1 semantics: a call that outlives
// ClientOptions.Timeout kills the whole session (the v1 connection
// deadline did exactly that), and the retry layer decides what to do.
func (ms *muxSession) roundTrip(c wireCall) ([]string, []byte, error) {
	call, err := ms.submit(c)
	if err != nil {
		return nil, nil, err
	}
	if to := ms.cl.opts.Timeout; to > 0 {
		timer := time.NewTimer(to)
		defer timer.Stop()
		select {
		case <-call.done:
		case <-timer.C:
			ms.fail(fmt.Errorf("chirp: call timed out after %v", to))
			<-call.done
		}
	} else {
		<-call.done
	}
	if call.trace != 0 {
		ms.observeCall(call)
	}
	if call.err != nil {
		return nil, nil, call.err
	}
	return call.resp, call.body, nil
}

// observeCall records a completed traced call: its latency lands in the
// client request-latency histogram (with the trace as the bucket's
// exemplar) and, when a span ring is configured, a "client" span with
// submit-stall, send, and await phases. Called only for traced calls,
// so the untraced path never reaches it.
func (ms *muxSession) observeCall(call *muxCall) {
	dur := time.Since(call.start)
	ms.cl.m.requestLatency.ObserveExemplar(float64(dur.Microseconds()), call.trace)
	if ms.spans == nil {
		return
	}
	sp := obs.Span{
		Trace: call.trace,
		ID:    ms.spans.NextSpanID(),
		Name:  "client",
		Cmd:   call.cmd,
		Start: call.start,
		Dur:   dur,
	}
	if call.err != nil {
		sp.Err = call.err.Error()
	}
	sp.Phase("submit.stall", 0, call.stall)
	// The writer stamps the flush time atomically; a session that died
	// before flushing leaves it zero and the span shows no wire phases.
	if w := call.writtenNanos.Load(); w != 0 {
		off := time.Unix(0, w).Sub(call.start)
		if off >= call.stall && off <= dur {
			sp.Phase("send", call.stall, off-call.stall)
			sp.Phase("await", off, dur-off)
		}
	}
	ms.spans.Record(sp)
}

// sendQuit queues the protocol farewell and reports the write outcome
// once the writer has flushed it. It does not wait for the server's
// reply (the v1 farewell never did either).
func (ms *muxSession) sendQuit() error {
	ms.mu.Lock()
	if ms.dead {
		err := ms.deadErr
		ms.mu.Unlock()
		return err
	}
	ms.nextTag++
	call := &muxCall{
		tag:     ms.nextTag,
		fields:  []string{"quit"},
		written: make(chan struct{}),
		done:    make(chan struct{}),
	}
	// Registered so the server's ok reply is not an unknown tag, but
	// uncounted: the farewell takes no credit-window space.
	ms.pending[call.tag] = call
	ms.mu.Unlock()
	ms.sendq <- call
	select {
	case <-call.written:
		return nil
	case <-call.done:
		return call.err
	}
}

// writeLoop drains the submit queue into the wire, coalescing every
// frame available at the moment into one flush so a pipelining burst
// costs one syscall instead of one per call.
func (ms *muxSession) writeLoop() {
	defer ms.wg.Done()
	var flushed []*muxCall
	var stamped []*muxCall // traced calls awaiting their flush stamp
	for {
		var call *muxCall
		select {
		case call = <-ms.sendq:
		case <-ms.closed:
			return
		}
		for call != nil {
			if err := ms.c.queueFrame(call.tag, call.fields, call.sendBody); err != nil {
				ms.fail(err)
				return
			}
			if call.written != nil {
				flushed = append(flushed, call)
			}
			if call.trace != 0 {
				stamped = append(stamped, call)
			}
			select {
			case call = <-ms.sendq:
			default:
				call = nil
			}
		}
		if err := ms.c.flush(); err != nil {
			ms.fail(err)
			return
		}
		if len(stamped) > 0 {
			now := time.Now().UnixNano()
			for _, s := range stamped {
				s.writtenNanos.Store(now)
			}
			stamped = stamped[:0]
		}
		for _, f := range flushed {
			close(f.written)
		}
		flushed = flushed[:0]
	}
}

// readLoop dispatches reply frames by tag. Any transport or protocol
// fault kills the session: with framing there is no wire realignment to
// attempt, the retry layer redials instead.
func (ms *muxSession) readLoop() {
	defer ms.wg.Done()
	for {
		h, err := ms.c.readFrameHeader()
		if err != nil {
			ms.fail(err)
			return
		}
		ms.mu.Lock()
		call := ms.pending[h.tag]
		delete(ms.pending, h.tag)
		ms.mu.Unlock()
		if call == nil {
			ms.fail(fmt.Errorf("chirp: protocol error: reply for unknown tag %d", h.tag))
			return
		}
		resp, body, rerr, ferr := ms.readReply(call, h)
		if ferr != nil {
			ms.fail(ferr)
			call.err = ferr
			close(call.done)
			return
		}
		if call.counted {
			ms.mu.Lock()
			ms.inflight--
			ms.inflightBytes -= call.bytes
			ms.cl.m.tagsInFlight.Set(int64(ms.inflight))
			ms.cl.m.inflightBytes.Set(ms.inflightBytes)
			ms.cond.Signal()
			ms.mu.Unlock()
		}
		call.resp, call.body, call.err = resp, body, rerr
		close(call.done)
	}
}

// readReply consumes one reply frame's line and payload for call.
// rerr is the call's outcome (nil or a *RemoteError); ferr is a
// transport or protocol fault that must kill the session.
func (ms *muxSession) readReply(call *muxCall, h frameHeader) (resp []string, body []byte, rerr, ferr error) {
	line, err := ms.c.readFrameLine(h.lineLen)
	if err != nil {
		return nil, nil, nil, err
	}
	parts, err := splitFields(line)
	if err != nil || len(parts) == 0 {
		return nil, nil, nil, fmt.Errorf("chirp: malformed reply %q", line)
	}
	switch parts[0] {
	case "ok":
		if h.payloadLen > 0 && call.recvInto != nil {
			if h.payloadLen > len(call.recvInto) {
				return nil, nil, nil, fmt.Errorf("chirp: reply payload %d exceeds %d-byte buffer", h.payloadLen, len(call.recvInto))
			}
			if err := ms.c.readPayloadInto(call.recvInto[:h.payloadLen]); err != nil {
				return nil, nil, nil, err
			}
			return parts[1:], nil, nil, nil
		}
		if h.payloadLen > 0 || call.wantBody {
			raw, err := ms.c.readPayload(h.payloadLen)
			if err != nil {
				return nil, nil, nil, err
			}
			if call.wantBody {
				// The scratch alias must not escape the reader loop: the
				// next frame's reads reuse it.
				body = append([]byte(nil), raw...)
			}
		}
		return parts[1:], body, nil, nil
	case "err":
		// Error replies are line-only; drain any stray payload to stay
		// aligned anyway.
		if h.payloadLen > 0 {
			if _, err := ms.c.readPayload(h.payloadLen); err != nil {
				return nil, nil, nil, err
			}
		}
		name, msg := "EIO", "unknown"
		if len(parts) > 1 {
			name = parts[1]
		}
		if len(parts) > 2 {
			msg = parts[2]
		}
		return nil, nil, remoteError(name, msg), nil
	default:
		return nil, nil, nil, fmt.Errorf("chirp: malformed reply %q", line)
	}
}

// WindowStats is a live snapshot of a client's negotiated v2 window
// state (zero-valued on a v1 session).
type WindowStats struct {
	Protocol         int   // negotiated protocol version (1 or 2)
	Window           int   // negotiated credit window (tags in flight)
	MaxInflightBytes int64 // negotiated in-flight byte budget
	InFlight         int   // tags currently awaiting replies
	Stalls           int64 // submits that waited for window space
	Traced           bool  // both ends negotiated the trace capability
}

// Protocol reports the protocol version the current session negotiated
// (ProtocolV1 or ProtocolV2).
func (cl *Client) Protocol() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.proto
}

// WindowStats reports the live credit-window state of the current
// session.
func (cl *Client) WindowStats() WindowStats {
	cl.mu.Lock()
	ms := cl.mux
	proto := cl.proto
	cl.mu.Unlock()
	if ms == nil {
		return WindowStats{Protocol: proto}
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return WindowStats{
		Protocol:         ProtocolV2,
		Window:           ms.window,
		MaxInflightBytes: ms.maxBytes,
		InFlight:         ms.inflight,
		Stalls:           ms.stalls.Load(),
		Traced:           ms.traced,
	}
}
