package chirp

import (
	"testing"

	"identitybox/internal/workload"
)

// FuzzSplitFields checks the protocol tokenizer never panics and that
// quoting any token yields a line that parses back to the same token.
func FuzzSplitFields(f *testing.F) {
	f.Add(`open 0 644 "/plain"`)
	f.Add(`stat "/with space"`)
	f.Add(`x "esc \" quote"`)
	f.Add(`bad "unterminated`)
	f.Add("")
	f.Add(`""`)
	f.Fuzz(func(t *testing.T, line string) {
		fields, err := splitFields(line)
		if err != nil {
			return
		}
		// Re-quote every field: must parse back identically.
		requoted := ""
		for i, tok := range fields {
			if i > 0 {
				requoted += " "
			}
			requoted += q(tok)
		}
		back, err := splitFields(requoted)
		if err != nil {
			t.Fatalf("requoted line failed: %q: %v", requoted, err)
		}
		if len(back) != len(fields) {
			t.Fatalf("token count changed: %v vs %v", back, fields)
		}
		for i := range fields {
			if back[i] != fields[i] {
				t.Fatalf("token %d changed: %q vs %q", i, back[i], fields[i])
			}
		}
	})
}

// FuzzTraceParse lives here to avoid an extra fuzz package; it checks
// the workload trace parser is panic-free and render-stable.
func FuzzTraceParse(f *testing.F) {
	f.Add("open f /x ro\nread f 10\nclose f\n")
	f.Add("compute 5\nstat /a\n")
	f.Add("spawn /x # note\n")
	f.Add("read\x00 f 1")
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := workload.ParseTrace(text)
		if err != nil {
			return
		}
		if _, err := workload.ParseTrace(tr.Render()); err != nil {
			t.Fatalf("rendered trace failed to re-parse: %v\n%s", err, tr.Render())
		}
	})
}
