package chirp

import (
	"bytes"
	"errors"
	"testing"

	"identitybox/internal/acl"
	"identitybox/internal/core"
	"identitybox/internal/identity"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// TestBoxedProcessUsesChirpMount runs an ordinary program inside an
// identity box on a *client* machine with the remote server mounted at
// /chirp/<addr>: the program manipulates remote files through plain
// open/read/write/stat calls, exactly as Parrot makes GSI-FTP and Chirp
// spaces appear as ordinary paths.
func TestBoxedProcessUsesChirpMount(t *testing.T) {
	srv, _, ca := testServer(t)

	// Client-side machine.
	clientFS := vfs.New("dthain")
	clientK := kernel.New(clientFS, vclock.Default())
	clientFS.MkdirAll("/tmp", 0o777, "dthain")

	fred := "globus:/O=UnivNowhere/CN=Fred"
	box, err := core.New(clientK, "dthain", identity.Principal(fred), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	mountPoint := "/chirp/" + srv.Addr()
	box.Mount(mountPoint, NewDriver(cl, vclock.Default()))

	payload := bytes.Repeat([]byte("block"), 2048) // >8 kB: exercises bulk path
	st := box.Run(func(p *kernel.Proc, _ []string) int {
		remote := mountPoint + "/work"
		if err := p.Mkdir(remote, 0o755); err != nil {
			t.Errorf("remote mkdir: %v", err)
			return 1
		}
		if err := p.WriteFile(remote+"/data.bin", payload, 0o644); err != nil {
			t.Errorf("remote write: %v", err)
			return 1
		}
		got, err := p.ReadFile(remote + "/data.bin")
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("remote read = %d bytes, %v", len(got), err)
			return 1
		}
		fst, err := p.Stat(remote + "/data.bin")
		if err != nil || fst.Size != int64(len(payload)) {
			t.Errorf("remote stat = %+v, %v", fst, err)
			return 1
		}
		ents, err := p.ReadDir(remote)
		if err != nil || len(ents) != 2 { // .__acl + data.bin
			t.Errorf("remote readdir = %v, %v", ents, err)
			return 1
		}
		// cd into the remote directory: the supervisor tracks the cwd
		// the kernel cannot resolve natively.
		if err := p.Chdir(remote); err != nil {
			t.Errorf("remote chdir: %v", err)
			return 1
		}
		if err := p.Rename("data.bin", "data2.bin"); err != nil {
			t.Errorf("remote rename: %v", err)
			return 1
		}
		// Local and remote namespaces coexist; cross-device links fail.
		if err := p.Link(remote+"/data2.bin", "/tmp/link"); !errors.Is(err, vfs.ErrCrossDevice) {
			t.Errorf("cross-mount link = %v, want EXDEV", err)
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("boxed run exit = %d", st.Code)
	}

	// The file landed on the server and is protected by Fred's ACL.
	data, err := cl.GetFile("/work/data2.bin")
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("server-side readback: %d bytes, %v", len(data), err)
	}
	george := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=George")
	if _, err := george.GetFile("/work/data2.bin"); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("george reading fred's remote dir = %v, want EPERM", err)
	}
}

// TestBoxedRemoteACLDenied verifies the box enforces server-side ACLs
// for a different identity on the same mount.
func TestBoxedRemoteACLDenied(t *testing.T) {
	srv, _, ca := testServer(t)
	// Fred reserves /private on the server.
	fredCl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	if err := fredCl.Mkdir("/private", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fredCl.PutFile("/private/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	// George's box mounts the same server under his own identity.
	clientFS := vfs.New("dthain")
	clientK := kernel.New(clientFS, vclock.Default())
	clientFS.MkdirAll("/tmp", 0o777, "dthain")
	box, err := core.New(clientK, "dthain", "globus:/O=UnivNowhere/CN=George", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	georgeCl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=George")
	mountPoint := "/chirp/" + srv.Addr()
	box.Mount(mountPoint, NewDriver(georgeCl, vclock.Default()))

	st := box.Run(func(p *kernel.Proc, _ []string) int {
		if _, err := p.ReadFile(mountPoint + "/private/f"); !errors.Is(err, vfs.ErrPermission) {
			t.Errorf("boxed remote read of foreign dir = %v, want EPERM", err)
		}
		// mkdir via reserve works remotely and the server installs the
		// fresh ACL.
		if err := p.Mkdir(mountPoint+"/georges", 0o755); err != nil {
			t.Errorf("boxed remote reserve mkdir: %v", err)
		}
		text, err := p.GetACL(mountPoint + "/georges")
		if err != nil {
			t.Errorf("boxed remote getacl: %v", err)
			return 0
		}
		a, _ := acl.Parse(text)
		if r, _ := a.Lookup("globus:/O=UnivNowhere/CN=George"); r != acl.All {
			t.Errorf("remote reserved ACL rights = %v, want rwlax", r)
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("exit = %d", st.Code)
	}
}

// TestBoxedRemoteMetadataOps sweeps the chirp driver's remaining file
// operations through a boxed process on a remote mount.
func TestBoxedRemoteMetadataOps(t *testing.T) {
	srv, _, ca := testServer(t)
	clientFS := vfs.New("dthain")
	clientK := kernel.New(clientFS, vclock.Default())
	clientFS.MkdirAll("/tmp", 0o777, "dthain")
	box, err := core.New(clientK, "dthain", "globus:/O=UnivNowhere/CN=Fred", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
	mnt := "/chirp/" + srv.Addr()
	box.Mount(mnt, NewDriver(cl, vclock.Default()))

	st := box.Run(func(p *kernel.Proc, _ []string) int {
		dir := mnt + "/meta"
		if err := p.Mkdir(dir, 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := p.WriteFile(dir+"/f", []byte("0123456789"), 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		// symlink + readlink + lstat through the mount
		if err := p.Symlink("f", dir+"/ln"); err != nil {
			t.Fatalf("symlink: %v", err)
		}
		if tgt, err := p.Readlink(dir + "/ln"); err != nil || tgt != "f" {
			t.Fatalf("readlink = %q, %v", tgt, err)
		}
		lst, err := p.Lstat(dir + "/ln")
		if err != nil || lst.Type != vfs.TypeSymlink {
			t.Fatalf("lstat = %+v, %v", lst, err)
		}
		// link (within the mount)
		if err := p.Link(dir+"/f", dir+"/f2"); err != nil {
			t.Fatalf("link: %v", err)
		}
		// truncate by path and via open handle
		if err := p.Truncate(dir+"/f", 4); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		fd, err := p.Open(dir+"/f", kernel.ORdwr, 0)
		if err != nil {
			t.Fatal(err)
		}
		fst, err := p.Fstat(fd)
		if err != nil || fst.Size != 4 {
			t.Fatalf("fstat = %+v, %v", fst, err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatal(err)
		}
		// chmod is accepted as a no-op on the virtual user space
		if err := p.Chmod(dir+"/f", 0o600); err != nil {
			t.Fatalf("chmod: %v", err)
		}
		// unlink within the reserved dir works; removing the dir itself
		// needs w in the server root, which Fred does not hold.
		for _, f := range []string{"/f", "/f2", "/ln"} {
			if err := p.Unlink(dir + f); err != nil {
				t.Fatalf("unlink %s: %v", f, err)
			}
		}
		if err := p.Rmdir(dir); !errors.Is(err, vfs.ErrPermission) {
			t.Fatalf("rmdir without w in parent = %v, want EPERM", err)
		}
		// A nested reserved dir IS removable by its creator, who holds
		// w in the parent he reserved.
		if err := p.Mkdir(dir+"/sub", 0o755); err != nil {
			t.Fatalf("nested mkdir: %v", err)
		}
		if err := p.Rmdir(dir + "/sub"); err != nil {
			t.Fatalf("nested rmdir: %v", err)
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("exit = %d", st.Code)
	}
	if cl.Addr() != srv.Addr() {
		t.Fatalf("client addr = %q", cl.Addr())
	}
}
