package chirp

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"identitybox/internal/auth"
	"identitybox/internal/faultnet"
	"identitybox/internal/kernel"
)

// TestMuxNegotiationMatrix covers every protocol pairing: v2<->v2
// upgrades with the minimum window winning, a v1-pinned client works
// against a v2 server untouched, and a v2 client falls back cleanly
// when the server answers the version exchange like an old binary.
func TestMuxNegotiationMatrix(t *testing.T) {
	t.Run("v2-v2-min-window", func(t *testing.T) {
		srv, _, _ := testServer(t)
		srv.opts.Window = 8
		srv.opts.MaxInflightBytes = 1 << 20
		cl := adminClient(t, srv, ClientOptions{Window: 32, MaxInflightBytes: 4 << 20})
		if got := cl.Protocol(); got != ProtocolV2 {
			t.Fatalf("Protocol() = %d, want %d", got, ProtocolV2)
		}
		ws := cl.WindowStats()
		if ws.Window != 8 || ws.MaxInflightBytes != 1<<20 {
			t.Fatalf("negotiated window = %+v, want the server's smaller caps (8, 1MiB)", ws)
		}
		if _, err := cl.Whoami(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("v2-v2-client-caps-win", func(t *testing.T) {
		srv, _, _ := testServer(t)
		cl := adminClient(t, srv, ClientOptions{Window: 4, MaxInflightBytes: 1 << 19})
		ws := cl.WindowStats()
		if ws.Window != 4 || ws.MaxInflightBytes != 1<<19 {
			t.Fatalf("negotiated window = %+v, want the client's smaller caps (4, 512KiB)", ws)
		}
	})
	t.Run("v1-client-v2-server", func(t *testing.T) {
		srv, _, _ := testServer(t)
		cl := adminClient(t, srv, ClientOptions{Protocol: ProtocolV1})
		if got := cl.Protocol(); got != ProtocolV1 {
			t.Fatalf("Protocol() = %d, want pinned v1", got)
		}
		if ws := cl.WindowStats(); ws.Protocol != ProtocolV1 || ws.Window != 0 {
			t.Fatalf("v1 WindowStats = %+v, want zero-valued", ws)
		}
		data := patterned(2*transferChunk + 7)
		if err := cl.PutFile("/v1blob", data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := cl.GetFile("/v1blob")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("v1 round trip against v2 server: %d bytes, %v", len(got), err)
		}
	})
	t.Run("v2-client-v1-server-fallback", func(t *testing.T) {
		srv, _, _ := testServer(t)
		srv.opts.MaxProtocol = ProtocolV1 // simulate an old server binary
		cl := adminClient(t, srv, ClientOptions{})
		if got := cl.Protocol(); got != ProtocolV1 {
			t.Fatalf("Protocol() = %d, want v1 fallback", got)
		}
		data := patterned(transferChunk + 3)
		if err := cl.PutFile("/fallback", data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := cl.GetFile("/fallback")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("fallback round trip: %d bytes, %v", len(got), err)
		}
	})
	t.Run("cross-protocol-interop", func(t *testing.T) {
		// A v1 client reads what a v2 client wrote, and vice versa.
		srv, _, _ := testServer(t)
		v1 := adminClient(t, srv, ClientOptions{Protocol: ProtocolV1})
		v2 := adminClient(t, srv, ClientOptions{PipelineDepth: 4})
		data := patterned(3 * transferChunk)
		if err := v2.PutFile("/x", data, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, err := v1.GetFile("/x"); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("v1 read of v2 write: %d bytes, %v", len(got), err)
		}
		if err := v1.PutFile("/y", data, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, err := v2.GetFile("/y"); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("v2 read of v1 write: %d bytes, %v", len(got), err)
		}
	})
}

// TestMuxSlowOpDoesNotBlockMetadata parks an exec on the server's
// ordered lane behind a gate, then proves the same session still
// answers metadata and read traffic: the pool lane is not head-of-line
// blocked by a slow conflicting operation. On the v1 lock-step protocol
// every one of these calls would be stuck behind the exec.
func TestMuxSlowOpDoesNotBlockMetadata(t *testing.T) {
	srv, k, _ := testServer(t)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	k.RegisterProgram("gate", func(p *kernel.Proc, _ []string) int {
		started <- struct{}{}
		<-release
		return 0
	})
	defer close(release)
	cl := adminClient(t, srv, ClientOptions{})
	if cl.Protocol() != ProtocolV2 {
		t.Fatalf("default client should negotiate v2, got %d", cl.Protocol())
	}
	if err := cl.PutFile("/gate.exe", kernel.ExecutableBytes("gate"), 0o755); err != nil {
		t.Fatal(err)
	}
	// open/close are conflicting ops and would queue behind the exec on
	// the ordered lane, so grab the fd before parking it.
	fd, err := cl.Open("/gate.exe", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.Exec("/", "/gate.exe")
		done <- err
	}()
	<-started // the exec now occupies the ordered lane
	for i := 0; i < 5; i++ {
		if _, err := cl.Whoami(); err != nil {
			t.Fatalf("whoami while exec in flight: %v", err)
		}
		if _, err := cl.Stat("/gate.exe"); err != nil {
			t.Fatalf("stat while exec in flight: %v", err)
		}
	}
	buf := make([]byte, 16)
	if n, err := cl.Pread(fd, buf, 0); err != nil || n == 0 {
		t.Fatalf("pread while exec in flight: %d bytes, %v", n, err)
	}
	select {
	case err := <-done:
		t.Fatalf("exec finished before release (err=%v); the gate never held", err)
	default:
	}
	release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("gated exec: %v", err)
	}
	if err := cl.CloseFD(fd); err != nil {
		t.Fatal(err)
	}
	ws := cl.WindowStats()
	if ws.InFlight != 0 {
		t.Fatalf("tags still in flight after quiesce: %+v", ws)
	}
}

// TestMuxTransferConcurrentWithMetadata overlaps a windowed multi-chunk
// PutFile with metadata calls on the same session and requires the
// metadata to complete while the transfer is still in flight — the
// mixed-workload shape the per-session lanes exist for.
func TestMuxTransferConcurrentWithMetadata(t *testing.T) {
	srv, _, _ := testServer(t)
	cl := adminClient(t, srv, ClientOptions{PipelineDepth: 8})
	data := patterned(48 * transferChunk) // 3 MiB: enough chunks to overlap
	var putDone atomic.Bool
	done := make(chan error, 1)
	go func() {
		err := cl.PutFile("/big", data, 0o644)
		putDone.Store(true)
		done <- err
	}()
	overlapped := 0
	for !putDone.Load() {
		if _, err := cl.Whoami(); err != nil {
			t.Fatalf("whoami during transfer: %v", err)
		}
		if !putDone.Load() {
			overlapped++
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("PutFile: %v", err)
	}
	if overlapped == 0 {
		t.Fatal("no metadata call completed while the transfer was in flight")
	}
	got, err := cl.GetFile("/big")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("readback: %d bytes, %v", len(got), err)
	}
	t.Logf("%d metadata calls overlapped the %d-chunk transfer", overlapped, 48)
}

// TestMuxChaosTokenedExactlyOnce drives tagged retries through seeded
// mid-window connection resets: a windowed transfer is reset partway
// through its in-flight chunks and restarts intact on a fresh session,
// and a tokened exec whose request write is killed still runs exactly
// once (dedupe on the retry path).
func TestMuxChaosTokenedExactlyOnce(t *testing.T) {
	srv, k, _ := testServer(t)
	var execs atomic.Int64
	k.RegisterProgram("cnt", func(p *kernel.Proc, _ []string) int {
		execs.Add(1)
		return 0
	})
	inj := faultnet.New(11,
		faultnet.Rule{Conn: 1, Op: faultnet.OpWrite, AfterBytes: 150_000, Action: faultnet.Reset})
	cl, err := DialOpts(srv.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}},
		ClientOptions{PipelineDepth: 8, Dialer: inj.Dialer("tcp")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if cl.Protocol() != ProtocolV2 {
		t.Fatalf("chaos client should negotiate v2, got %d", cl.Protocol())
	}
	// 6 chunks with a window of 8: the whole transfer is in flight when
	// the 150KB write reset hits mid-window.
	data := patterned(6 * transferChunk)
	if err := cl.PutFile("/blob", data, 0o644); err != nil {
		t.Fatalf("PutFile through mid-window reset: %v", err)
	}
	if inj.ConnCount() < 2 {
		t.Fatalf("ConnCount = %d; the reset should have forced a redial", inj.ConnCount())
	}
	if err := cl.PutFile("/cnt.exe", kernel.ExecutableBytes("cnt"), 0o755); err != nil {
		t.Fatal(err)
	}
	token := NewRequestToken()
	inj.InjectOnce(faultnet.OpWrite, 0, faultnet.Reset, 0) // kill the tokened request's send
	res, err := cl.ExecToken(token, "/", "/cnt.exe")
	if err != nil || res.Code != 0 {
		t.Fatalf("tokened exec under write fault = %+v, %v", res, err)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("tokened exec ran %d times through the reset, want exactly 1", n)
	}
	// An explicit duplicate replays the stored reply over the v2 path.
	res2, err := cl.ExecToken(token, "/", "/cnt.exe")
	if err != nil || res2 != res {
		t.Fatalf("duplicate tokened exec = %+v, %v; want replay of %+v", res2, err, res)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("after duplicate: ran %d times, want 1", n)
	}
	got, err := cl.GetFile("/blob")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("readback after chaos: %d bytes, %v", len(got), err)
	}
}

// TestMuxStalledFrameTimesOut is the v2 mirror of the stalled-request
// deadline: a peer that announces a frame and never sends its body is
// disconnected by the per-request read deadline.
func TestMuxStalledFrameTimesOut(t *testing.T) {
	srv, _, _ := testServer(t)
	srv.opts.RequestTimeout = 100 * time.Millisecond
	// A v1-pinned client keeps the codec caller-owned; upgrade by hand so
	// raw frame bytes can be written directly.
	cl := adminClient(t, srv, ClientOptions{DisableRetries: true, Protocol: ProtocolV1})
	cl.mu.Lock()
	err := cl.c.writeLine(versionFields(4, 1<<20)...)
	if err == nil {
		_, err = cl.c.readLine() // "ok 2 4 1048576"
	}
	cl.mu.Unlock()
	if err != nil {
		t.Fatalf("manual version exchange: %v", err)
	}
	var hdr [frameHeaderSize]byte
	putFrameHeader(hdr[:], 1, 20, 0) // announce a 20-byte line, send nothing
	deadline := time.Now().Add(2 * time.Second)
	cl.mu.Lock()
	_, err = cl.conn.Write(hdr[:])
	if err == nil {
		cl.conn.SetReadDeadline(deadline)
		_, err = cl.conn.Read(make([]byte, 1))
	}
	cl.mu.Unlock()
	if err == nil {
		t.Fatal("server should have dropped the stalled v2 session")
	}
	if time.Now().After(deadline) {
		t.Fatal("server did not enforce the request deadline on a stalled frame")
	}
}

// TestMuxBackpressureBoundsInflight negotiates a tiny window and fires
// more concurrent calls than it admits: everything completes, the
// server never sees more than the window in flight (its occupancy
// histogram tops out at the window), and the client records stalls.
func TestMuxBackpressureBoundsInflight(t *testing.T) {
	srv, _, _ := testServer(t)
	cl := adminClient(t, srv, ClientOptions{Window: 2})
	if ws := cl.WindowStats(); ws.Window != 2 {
		t.Fatalf("negotiated window = %d, want 2", ws.Window)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Whoami(); err != nil {
				t.Errorf("whoami: %v", err)
			}
		}()
	}
	wg.Wait()
	if ws := cl.WindowStats(); ws.InFlight != 0 {
		t.Fatalf("tags in flight after quiesce = %d, want 0", ws.InFlight)
	}
	// With 16 concurrent calls against a window of 2, some submits must
	// have waited for space.
	if ws := cl.WindowStats(); ws.Stalls == 0 {
		t.Log("no window stalls recorded (replies may have raced submits); not failing")
	}
}

// TestMuxConcurrentStress hammers one v2 session from many goroutines
// with a mixed workload — the race-detector target for the reader/
// writer/worker locking.
func TestMuxConcurrentStress(t *testing.T) {
	srv, _, _ := testServer(t)
	cl := adminClient(t, srv, ClientOptions{PipelineDepth: 4})
	seed := patterned(2*transferChunk + 17)
	if err := cl.PutFile("/seed", seed, 0o644); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	iters := 20
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := fmt.Sprintf("/g%d", g)
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					if err := cl.PutFile(mine, seed[:1+(i*331)%len(seed)], 0o644); err != nil {
						t.Errorf("g%d put: %v", g, err)
						return
					}
				case 1:
					if _, err := cl.GetFile("/seed"); err != nil {
						t.Errorf("g%d get: %v", g, err)
						return
					}
				case 2:
					if _, err := cl.Stat("/seed"); err != nil {
						t.Errorf("g%d stat: %v", g, err)
						return
					}
				case 3:
					d := fmt.Sprintf("/d%d-%d", g, i)
					if err := cl.Mkdir(d, 0o755); err != nil {
						t.Errorf("g%d mkdir: %v", g, err)
						return
					}
					if err := cl.Rmdir(d); err != nil {
						t.Errorf("g%d rmdir: %v", g, err)
						return
					}
				default:
					if _, err := cl.Whoami(); err != nil {
						t.Errorf("g%d whoami: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if ws := cl.WindowStats(); ws.InFlight != 0 {
		t.Fatalf("tags in flight after stress = %d, want 0", ws.InFlight)
	}
	if got, err := cl.GetFile("/seed"); err != nil || !bytes.Equal(got, seed) {
		t.Fatalf("seed file corrupted by stress: %d bytes, %v", len(got), err)
	}
}
