// Package chirp implements the Chirp distributed storage system used to
// demonstrate identity boxing in a distributed setting: a personal file
// server any ordinary user can deploy, exporting file space through a
// Unix-like protocol protected by ACLs over high-level identities, plus
// the paper's remote "exec" extension that runs staged programs inside
// an identity box corresponding to the authenticated client.
//
// The wire protocol is line-oriented: one request line (paths are
// Go-quoted so they may contain spaces), optionally followed by a
// counted binary payload; one response line ("ok ..." or "err ENAME
// message"), optionally followed by a counted payload. Authentication
// (package auth) runs first on every connection.
package chirp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"identitybox/internal/kernel"
	"identitybox/internal/vfs"
)

// errno names carried on the wire, mapped to the kernel/vfs sentinels.
var errnoByName = map[string]error{
	"ENOENT":      vfs.ErrNotExist,
	"EEXIST":      vfs.ErrExist,
	"EPERM":       vfs.ErrPermission,
	"EISDIR":      vfs.ErrIsDir,
	"ENOTDIR":     vfs.ErrNotDir,
	"ENOTEMPTY":   vfs.ErrNotEmpty,
	"EINVAL":      vfs.ErrInvalid,
	"ELOOP":       vfs.ErrLoop,
	"EXDEV":       vfs.ErrCrossDevice,
	"EBADF":       kernel.ErrBadFD,
	"ENOSYS":      kernel.ErrNoSys,
	"ESRCH":       kernel.ErrSearch,
	"EIO":         errors.New("input/output error"),
	"ENOTPRIMARY": ErrNotPrimary,
	"EDEADLINE":   ErrDeadline,
	"EBUSY":       ErrBusy,
}

// ErrNotPrimary means a mutating command reached a replica that does
// not hold the write lease (a follower, or a fenced former primary).
// The RemoteError message names the current primary's address when the
// server knows it, so a failover-aware client can re-target.
var ErrNotPrimary = errors.New("chirp: not the primary replica")

// ErrDeadline means the request's deadline budget was exhausted before
// the server finished it; shed at the admit or dispatch hop the work
// never executed, shed at the durability barrier it executed but was
// never acknowledged (the same semantics as a client-side timeout).
var ErrDeadline = errors.New("chirp: deadline budget exhausted")

// ErrBusy means the server's admit queue rejected the request before
// any of it executed. The RemoteError message carries a "retry after
// <N>ms" hint; RetryAfterFromError extracts it. EBUSY is always safe
// to retry, whatever the command, because nothing ran.
var ErrBusy = errors.New("chirp: server overloaded")

// retryAfterMarker introduces the backoff hint in an EBUSY message.
const retryAfterMarker = "retry after "

// RetryAfterFromError extracts the server's retry-after hint from an
// EBUSY reply, or 0 when the error carries none.
func RetryAfterFromError(err error) time.Duration {
	var re *RemoteError
	if !errors.As(err, &re) || !errors.Is(re.Err, ErrBusy) {
		return 0
	}
	i := strings.LastIndex(re.Message, retryAfterMarker)
	if i < 0 {
		return 0
	}
	rest := strings.TrimSuffix(re.Message[i+len(retryAfterMarker):], "ms")
	ms, perr := strconv.ParseInt(rest, 10, 64)
	if perr != nil || ms < 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// nameForError picks the wire name for an error.
func nameForError(err error) string {
	switch {
	case errors.Is(err, vfs.ErrNotExist):
		return "ENOENT"
	case errors.Is(err, vfs.ErrExist):
		return "EEXIST"
	case errors.Is(err, vfs.ErrPermission):
		return "EPERM"
	case errors.Is(err, vfs.ErrIsDir):
		return "EISDIR"
	case errors.Is(err, vfs.ErrNotDir):
		return "ENOTDIR"
	case errors.Is(err, vfs.ErrNotEmpty):
		return "ENOTEMPTY"
	case errors.Is(err, vfs.ErrInvalid):
		return "EINVAL"
	case errors.Is(err, vfs.ErrLoop):
		return "ELOOP"
	case errors.Is(err, vfs.ErrCrossDevice):
		return "EXDEV"
	case errors.Is(err, kernel.ErrBadFD):
		return "EBADF"
	case errors.Is(err, kernel.ErrSearch):
		return "ESRCH"
	case errors.Is(err, kernel.ErrNoSys):
		return "ENOSYS"
	case errors.Is(err, ErrNotPrimary):
		return "ENOTPRIMARY"
	case errors.Is(err, ErrDeadline):
		return "EDEADLINE"
	case errors.Is(err, ErrBusy):
		return "EBUSY"
	default:
		return "EIO"
	}
}

// RemoteError is an error reported by a Chirp server.
type RemoteError struct {
	Name    string // wire errno name
	Message string
	Err     error // mapped sentinel
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("chirp: %s: %s", e.Name, e.Message)
}

// Unwrap lets errors.Is match the sentinel (e.g. vfs.ErrPermission).
func (e *RemoteError) Unwrap() error { return e.Err }

func remoteError(name, msg string) *RemoteError {
	err, ok := errnoByName[name]
	if !ok {
		err = errnoByName["EIO"]
	}
	return &RemoteError{Name: name, Message: msg, Err: err}
}

// codec frames protocol lines and counted payloads over a transport.
// Its bufio halves and payload scratch come from process-wide pools;
// call release when the transport is done with to recycle them. A codec
// is single-goroutine (the session loop, or the client under its wire
// mutex), so the scratch needs no locking.
type codec struct {
	r       *bufio.Reader
	w       *bufio.Writer
	scratch *payloadScratch
}

func newCodec(rw io.ReadWriter) *codec {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(rw)
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(rw)
	return &codec{r: br, w: bw, scratch: scratchPool.Get().(*payloadScratch)}
}

// release returns the codec's pooled buffers. The codec must not be
// used afterwards; releasing twice is a no-op.
func (c *codec) release() {
	if c.r != nil {
		c.r.Reset(nil)
		brPool.Put(c.r)
		c.r = nil
	}
	if c.w != nil {
		c.w.Reset(nil)
		bwPool.Put(c.w)
		c.w = nil
	}
	if c.scratch != nil {
		scratchPool.Put(c.scratch)
		c.scratch = nil
	}
}

// queueLine buffers a protocol line without flushing, so a pipelining
// caller can push several exchanges into one wire write.
func (c *codec) queueLine(fields ...string) error {
	for i, f := range fields {
		if strings.ContainsAny(f, "\n\r") {
			return fmt.Errorf("chirp: embedded newline in %q", f)
		}
		if i > 0 {
			if err := c.w.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := c.w.WriteString(f); err != nil {
			return err
		}
	}
	return c.w.WriteByte('\n')
}

func (c *codec) writeLine(fields ...string) error {
	if err := c.queueLine(fields...); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *codec) readLine() (string, error) {
	s, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

// queuePayload buffers a counted binary payload without flushing.
func (c *codec) queuePayload(data []byte) error {
	_, err := c.w.Write(data)
	return err
}

// writePayload sends a counted binary payload after a line.
func (c *codec) writePayload(data []byte) error {
	if err := c.queuePayload(data); err != nil {
		return err
	}
	return c.w.Flush()
}

// flush pushes everything queued to the transport.
func (c *codec) flush() error { return c.w.Flush() }

// scratchBuf returns an n-byte slice of the codec's reusable payload
// scratch, growing it if needed. The slice is only valid until the next
// scratchBuf/readPayload call on this codec.
func (c *codec) scratchBuf(n int) []byte {
	s := c.scratch
	if cap(s.buf) >= n {
		poolHits.Add(1)
	} else {
		poolMisses.Add(1)
		s.buf = make([]byte, n)
	}
	return s.buf[:n]
}

// readPayload receives exactly n payload bytes into the codec's scratch
// buffer. A length outside [0, MaxPayload] is a protocol error: the
// peer is malformed or hostile, and nothing is read or allocated. The
// returned slice is only valid until the next readPayload/scratchBuf
// call on this codec — callers that retain the bytes past the current
// exchange must copy them.
func (c *codec) readPayload(n int) ([]byte, error) {
	if n < 0 || n > MaxPayload {
		return nil, fmt.Errorf("chirp: protocol error: payload length %d outside [0, %d]", n, MaxPayload)
	}
	buf := c.scratchBuf(n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readPayloadInto receives exactly len(dst) payload bytes directly into
// the caller's buffer, bypassing the scratch.
func (c *codec) readPayloadInto(dst []byte) error {
	_, err := io.ReadFull(c.r, dst)
	return err
}

// q quotes a path for the wire.
func q(path string) string { return strconv.Quote(path) }

// splitFields tokenizes a protocol line, honoring Go-quoted fields.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			// Find the end of the quoted token (handling escapes).
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("chirp: unterminated quote in %q", line)
			}
			tok, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("chirp: bad quoting in %q: %v", line, err)
			}
			out = append(out, tok)
			i = j + 1
			continue
		}
		j := strings.IndexByte(line[i:], ' ')
		if j < 0 {
			out = append(out, line[i:])
			break
		}
		out = append(out, line[i:i+j])
		i += j
	}
	return out, nil
}

// statFields serializes a stat for the wire.
func statFields(st vfs.Stat) []string {
	return []string{
		strconv.FormatUint(st.Ino, 10),
		strconv.Itoa(int(st.Type)),
		strconv.FormatUint(uint64(st.Mode), 8),
		q(st.Owner),
		q(st.Group),
		strconv.Itoa(st.Nlink),
		strconv.FormatInt(st.Size, 10),
		strconv.FormatInt(st.Mtime, 10),
	}
}

// parseStat deserializes statFields output.
func parseStat(fields []string) (vfs.Stat, error) {
	if len(fields) != 8 {
		return vfs.Stat{}, fmt.Errorf("chirp: bad stat reply (%d fields)", len(fields))
	}
	var st vfs.Stat
	var err error
	if st.Ino, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
		return st, err
	}
	t, err := strconv.Atoi(fields[1])
	if err != nil {
		return st, err
	}
	st.Type = vfs.FileType(t)
	mode, err := strconv.ParseUint(fields[2], 8, 32)
	if err != nil {
		return st, err
	}
	st.Mode = uint32(mode)
	st.Owner = fields[3]
	st.Group = fields[4]
	if st.Nlink, err = strconv.Atoi(fields[5]); err != nil {
		return st, err
	}
	if st.Size, err = strconv.ParseInt(fields[6], 10, 64); err != nil {
		return st, err
	}
	if st.Mtime, err = strconv.ParseInt(fields[7], 10, 64); err != nil {
		return st, err
	}
	return st, nil
}
