// Package chirp implements the Chirp distributed storage system used to
// demonstrate identity boxing in a distributed setting: a personal file
// server any ordinary user can deploy, exporting file space through a
// Unix-like protocol protected by ACLs over high-level identities, plus
// the paper's remote "exec" extension that runs staged programs inside
// an identity box corresponding to the authenticated client.
//
// The wire protocol is line-oriented: one request line (paths are
// Go-quoted so they may contain spaces), optionally followed by a
// counted binary payload; one response line ("ok ..." or "err ENAME
// message"), optionally followed by a counted payload. Authentication
// (package auth) runs first on every connection.
package chirp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"identitybox/internal/kernel"
	"identitybox/internal/vfs"
)

// errno names carried on the wire, mapped to the kernel/vfs sentinels.
var errnoByName = map[string]error{
	"ENOENT":    vfs.ErrNotExist,
	"EEXIST":    vfs.ErrExist,
	"EPERM":     vfs.ErrPermission,
	"EISDIR":    vfs.ErrIsDir,
	"ENOTDIR":   vfs.ErrNotDir,
	"ENOTEMPTY": vfs.ErrNotEmpty,
	"EINVAL":    vfs.ErrInvalid,
	"ELOOP":     vfs.ErrLoop,
	"EXDEV":     vfs.ErrCrossDevice,
	"EBADF":     kernel.ErrBadFD,
	"ENOSYS":    kernel.ErrNoSys,
	"ESRCH":     kernel.ErrSearch,
	"EIO":       errors.New("input/output error"),
}

// nameForError picks the wire name for an error.
func nameForError(err error) string {
	switch {
	case errors.Is(err, vfs.ErrNotExist):
		return "ENOENT"
	case errors.Is(err, vfs.ErrExist):
		return "EEXIST"
	case errors.Is(err, vfs.ErrPermission):
		return "EPERM"
	case errors.Is(err, vfs.ErrIsDir):
		return "EISDIR"
	case errors.Is(err, vfs.ErrNotDir):
		return "ENOTDIR"
	case errors.Is(err, vfs.ErrNotEmpty):
		return "ENOTEMPTY"
	case errors.Is(err, vfs.ErrInvalid):
		return "EINVAL"
	case errors.Is(err, vfs.ErrLoop):
		return "ELOOP"
	case errors.Is(err, vfs.ErrCrossDevice):
		return "EXDEV"
	case errors.Is(err, kernel.ErrBadFD):
		return "EBADF"
	case errors.Is(err, kernel.ErrSearch):
		return "ESRCH"
	case errors.Is(err, kernel.ErrNoSys):
		return "ENOSYS"
	default:
		return "EIO"
	}
}

// RemoteError is an error reported by a Chirp server.
type RemoteError struct {
	Name    string // wire errno name
	Message string
	Err     error // mapped sentinel
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("chirp: %s: %s", e.Name, e.Message)
}

// Unwrap lets errors.Is match the sentinel (e.g. vfs.ErrPermission).
func (e *RemoteError) Unwrap() error { return e.Err }

func remoteError(name, msg string) *RemoteError {
	err, ok := errnoByName[name]
	if !ok {
		err = errnoByName["EIO"]
	}
	return &RemoteError{Name: name, Message: msg, Err: err}
}

// codec frames protocol lines and counted payloads over a transport.
type codec struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newCodec(rw io.ReadWriter) *codec {
	return &codec{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

func (c *codec) writeLine(fields ...string) error {
	line := strings.Join(fields, " ")
	if strings.ContainsAny(line, "\n\r") {
		return fmt.Errorf("chirp: embedded newline in %q", line)
	}
	if _, err := c.w.WriteString(line + "\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *codec) readLine() (string, error) {
	s, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

// writePayload sends a counted binary payload after a line.
func (c *codec) writePayload(data []byte) error {
	if _, err := c.w.Write(data); err != nil {
		return err
	}
	return c.w.Flush()
}

// readPayload receives exactly n payload bytes.
func (c *codec) readPayload(n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// q quotes a path for the wire.
func q(path string) string { return strconv.Quote(path) }

// splitFields tokenizes a protocol line, honoring Go-quoted fields.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			// Find the end of the quoted token (handling escapes).
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("chirp: unterminated quote in %q", line)
			}
			tok, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("chirp: bad quoting in %q: %v", line, err)
			}
			out = append(out, tok)
			i = j + 1
			continue
		}
		j := strings.IndexByte(line[i:], ' ')
		if j < 0 {
			out = append(out, line[i:])
			break
		}
		out = append(out, line[i:i+j])
		i += j
	}
	return out, nil
}

// statFields serializes a stat for the wire.
func statFields(st vfs.Stat) []string {
	return []string{
		strconv.FormatUint(st.Ino, 10),
		strconv.Itoa(int(st.Type)),
		strconv.FormatUint(uint64(st.Mode), 8),
		q(st.Owner),
		q(st.Group),
		strconv.Itoa(st.Nlink),
		strconv.FormatInt(st.Size, 10),
		strconv.FormatInt(st.Mtime, 10),
	}
}

// parseStat deserializes statFields output.
func parseStat(fields []string) (vfs.Stat, error) {
	if len(fields) != 8 {
		return vfs.Stat{}, fmt.Errorf("chirp: bad stat reply (%d fields)", len(fields))
	}
	var st vfs.Stat
	var err error
	if st.Ino, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
		return st, err
	}
	t, err := strconv.Atoi(fields[1])
	if err != nil {
		return st, err
	}
	st.Type = vfs.FileType(t)
	mode, err := strconv.ParseUint(fields[2], 8, 32)
	if err != nil {
		return st, err
	}
	st.Mode = uint32(mode)
	st.Owner = fields[3]
	st.Group = fields[4]
	if st.Nlink, err = strconv.Atoi(fields[5]); err != nil {
		return st, err
	}
	if st.Size, err = strconv.ParseInt(fields[6], 10, 64); err != nil {
		return st, err
	}
	if st.Mtime, err = strconv.ParseInt(fields[7], 10, 64); err != nil {
		return st, err
	}
	return st, nil
}
