package chirp

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"identitybox/internal/auth"
	"identitybox/internal/identity"
	"identitybox/internal/vfs"
)

// Client is one authenticated connection to a Chirp server. Methods
// mirror the Unix-like protocol. A Client is safe for concurrent use by
// any number of goroutines: an internal mutex serializes each complete
// request/response exchange (including payload phases) on the wire, so
// one connection can back a whole mount table or a pool of workers.
type Client struct {
	conn   net.Conn
	mu     sync.Mutex // serializes wire exchanges; guards c and closed
	c      *codec
	closed bool
	ident  identity.Principal
	addr   string
	sent   atomic.Int64 // requests sent (everything the server dispatches)
}

// Dial connects to a Chirp server and authenticates with the first
// mutually acceptable method.
func Dial(addr string, auths []auth.Authenticator) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	ac := auth.NewConn(conn)
	ident, err := auth.ClientNegotiate(ac, auths)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{conn: conn, c: newCodec(conn), ident: ident, addr: addr}, nil
}

// Identity reports the principal this client proved to the server.
func (cl *Client) Identity() identity.Principal { return cl.ident }

// Addr reports the server address.
func (cl *Client) Addr() string { return cl.addr }

// Close ends the session. Close is idempotent and safe to race with
// in-flight calls: they complete or fail with a connection error.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil
	}
	cl.closed = true
	cl.c.writeLine("quit")
	return cl.conn.Close()
}

// rpc performs one complete exchange: it takes the wire lock, sends a
// request line and parses the response line.
func (cl *Client) rpc(fields ...string) ([]string, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.rpcLocked(fields...)
}

// rpcLocked is rpc for callers already holding cl.mu (exchanges with
// payload phases, which must stay atomic on the wire).
func (cl *Client) rpcLocked(fields ...string) ([]string, error) {
	if err := cl.send(fields...); err != nil {
		return nil, err
	}
	return cl.response()
}

// send writes one request line, counting it. Every line sent this way
// reaches the server's dispatch loop, so RequestCount here and the
// server's requests counter advance in lockstep.
func (cl *Client) send(fields ...string) error {
	cl.sent.Add(1)
	return cl.c.writeLine(fields...)
}

// RequestCount reports how many requests this client has sent (the
// "quit" farewell excluded — the server never dispatches it).
func (cl *Client) RequestCount() int64 { return cl.sent.Load() }

func (cl *Client) response() ([]string, error) {
	line, err := cl.c.readLine()
	if err != nil {
		return nil, err
	}
	parts, err := splitFields(line)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("chirp: empty reply")
	}
	switch parts[0] {
	case "ok":
		return parts[1:], nil
	case "err":
		name, msg := "EIO", "unknown"
		if len(parts) > 1 {
			name = parts[1]
		}
		if len(parts) > 2 {
			msg = parts[2]
		}
		return nil, remoteError(name, msg)
	default:
		return nil, fmt.Errorf("chirp: malformed reply %q", line)
	}
}

// ServerStats are the live server-side counters returned by the stats
// command: connection/session state plus lifetime request, error and
// wire-traffic totals.
type ServerStats struct {
	Conns    int    // connections currently tracked
	FDs      int    // this session's open descriptors
	Grants   int    // this session's verified CAS grants
	Name     string // the server's advertised name
	Requests int64  // requests dispatched, lifetime
	Errors   int64  // error replies sent, lifetime
	Sessions int64  // sessions authenticated, lifetime
	RxBytes  int64  // wire bytes the server received
	TxBytes  int64  // wire bytes the server sent
}

// Stats fetches the server's live counters.
func (cl *Client) Stats() (ServerStats, error) {
	r, err := cl.rpc("stats")
	if err != nil {
		return ServerStats{}, err
	}
	if len(r) != 9 {
		return ServerStats{}, fmt.Errorf("chirp: bad stats reply %v", r)
	}
	var st ServerStats
	ints := []*int{&st.Conns, &st.FDs, &st.Grants}
	for i, dst := range ints {
		if *dst, err = strconv.Atoi(r[i]); err != nil {
			return ServerStats{}, fmt.Errorf("chirp: bad stats field %q", r[i])
		}
	}
	st.Name = r[3]
	int64s := []*int64{&st.Requests, &st.Errors, &st.Sessions, &st.RxBytes, &st.TxBytes}
	for i, dst := range int64s {
		if *dst, err = strconv.ParseInt(r[4+i], 10, 64); err != nil {
			return ServerStats{}, fmt.Errorf("chirp: bad stats field %q", r[4+i])
		}
	}
	return st, nil
}

// Metrics fetches the server's full metric registry as Prometheus text
// exposition.
func (cl *Client) Metrics() (string, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	r, err := cl.rpcLocked("metrics")
	if err != nil {
		return "", err
	}
	if len(r) != 1 {
		return "", fmt.Errorf("chirp: bad metrics reply %v", r)
	}
	n, err := strconv.Atoi(r[0])
	if err != nil || n < 0 {
		return "", fmt.Errorf("chirp: bad metrics length %q", r[0])
	}
	data, err := cl.c.readPayload(n)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Whoami asks the server which principal it recorded.
func (cl *Client) Whoami() (identity.Principal, error) {
	r, err := cl.rpc("whoami")
	if err != nil {
		return "", err
	}
	if len(r) != 1 {
		return "", fmt.Errorf("chirp: bad whoami reply %v", r)
	}
	return identity.Principal(r[0]), nil
}

// Open opens a remote file and returns its descriptor.
func (cl *Client) Open(path string, flags int, mode uint32) (int, error) {
	r, err := cl.rpc("open", strconv.Itoa(flags), strconv.FormatUint(uint64(mode), 8), q(path))
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(r[0])
}

// CloseFD releases a remote descriptor.
func (cl *Client) CloseFD(fd int) error {
	_, err := cl.rpc("close", strconv.Itoa(fd))
	return err
}

// Pread reads up to len(buf) bytes at off.
func (cl *Client) Pread(fd int, buf []byte, off int64) (int, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	r, err := cl.rpcLocked("pread", strconv.Itoa(fd), strconv.Itoa(len(buf)), strconv.FormatInt(off, 10))
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(r[0])
	if err != nil {
		return 0, err
	}
	data, err := cl.c.readPayload(n)
	if err != nil {
		return 0, err
	}
	copy(buf, data)
	return n, nil
}

// Pwrite writes buf at off.
func (cl *Client) Pwrite(fd int, buf []byte, off int64) (int, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.send("pwrite", strconv.Itoa(fd), strconv.FormatInt(off, 10), strconv.Itoa(len(buf))); err != nil {
		return 0, err
	}
	if err := cl.c.writePayload(buf); err != nil {
		return 0, err
	}
	r, err := cl.response()
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(r[0])
}

// FstatFD reports metadata for an open descriptor.
func (cl *Client) FstatFD(fd int) (vfs.Stat, error) {
	r, err := cl.rpc("fstat", strconv.Itoa(fd))
	if err != nil {
		return vfs.Stat{}, err
	}
	return parseStat(r)
}

// Stat reports metadata for a path, following symlinks.
func (cl *Client) Stat(path string) (vfs.Stat, error) {
	r, err := cl.rpc("stat", q(path))
	if err != nil {
		return vfs.Stat{}, err
	}
	return parseStat(r)
}

// Lstat reports metadata without following a final symlink.
func (cl *Client) Lstat(path string) (vfs.Stat, error) {
	r, err := cl.rpc("lstat", q(path))
	if err != nil {
		return vfs.Stat{}, err
	}
	return parseStat(r)
}

// ReadDir lists a remote directory.
func (cl *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	r, err := cl.rpc("getdir", q(path))
	if err != nil {
		return nil, err
	}
	if len(r) < 1 {
		return nil, fmt.Errorf("chirp: bad getdir reply")
	}
	n, err := strconv.Atoi(r[0])
	if err != nil || len(r) != 1+2*n {
		return nil, fmt.Errorf("chirp: bad getdir reply %v", r)
	}
	out := make([]vfs.DirEntry, 0, n)
	for i := 0; i < n; i++ {
		t, err := strconv.Atoi(r[2+2*i])
		if err != nil {
			return nil, err
		}
		out = append(out, vfs.DirEntry{Name: r[1+2*i], Type: vfs.FileType(t)})
	}
	return out, nil
}

// Mkdir creates a remote directory (with reserve-right semantics when
// the client holds only v in the parent).
func (cl *Client) Mkdir(path string, mode uint32) error {
	_, err := cl.rpc("mkdir", strconv.FormatUint(uint64(mode), 8), q(path))
	return err
}

// Rmdir removes an empty remote directory.
func (cl *Client) Rmdir(path string) error {
	_, err := cl.rpc("rmdir", q(path))
	return err
}

// Unlink removes a remote file.
func (cl *Client) Unlink(path string) error {
	_, err := cl.rpc("unlink", q(path))
	return err
}

// Rename moves a remote file.
func (cl *Client) Rename(oldPath, newPath string) error {
	_, err := cl.rpc("rename", q(oldPath), q(newPath))
	return err
}

// Link creates a remote hard link.
func (cl *Client) Link(oldPath, newPath string) error {
	_, err := cl.rpc("link", q(oldPath), q(newPath))
	return err
}

// Symlink creates a remote symbolic link.
func (cl *Client) Symlink(target, linkPath string) error {
	_, err := cl.rpc("symlink", q(target), q(linkPath))
	return err
}

// Readlink reads a remote symlink target.
func (cl *Client) Readlink(path string) (string, error) {
	r, err := cl.rpc("readlink", q(path))
	if err != nil {
		return "", err
	}
	return r[0], nil
}

// Truncate sets a remote file's size.
func (cl *Client) Truncate(path string, size int64) error {
	_, err := cl.rpc("truncate", q(path), strconv.FormatInt(size, 10))
	return err
}

// GetACL fetches the ACL text protecting a remote directory.
func (cl *Client) GetACL(path string) (string, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	r, err := cl.rpcLocked("getacl", q(path))
	if err != nil {
		return "", err
	}
	n, err := strconv.Atoi(r[0])
	if err != nil {
		return "", err
	}
	data, err := cl.c.readPayload(n)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// SetACL replaces the ACL protecting a remote directory (requires the
// A right).
func (cl *Client) SetACL(path, aclText string) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.send("setacl", q(path), strconv.Itoa(len(aclText))); err != nil {
		return err
	}
	if err := cl.c.writePayload([]byte(aclText)); err != nil {
		return err
	}
	_, err := cl.response()
	return err
}

// PresentAssertion hands a community-authorization assertion to the
// server; on success the server unions the granted rights with the
// local ACLs for this session. Returns the community name the server
// acknowledged.
func (cl *Client) PresentAssertion(encoded []byte) (string, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.send("assert", strconv.Itoa(len(encoded))); err != nil {
		return "", err
	}
	if err := cl.c.writePayload(encoded); err != nil {
		return "", err
	}
	r, err := cl.response()
	if err != nil {
		return "", err
	}
	if len(r) != 1 {
		return "", fmt.Errorf("chirp: bad assert reply %v", r)
	}
	return r[0], nil
}

// ExecResult reports a remote execution.
type ExecResult struct {
	Code           int
	RuntimeSeconds float64
}

// Exec runs the staged program at path on the server, inside an
// identity box carrying this client's principal, with working
// directory cwd.
func (cl *Client) Exec(cwd, path string, args ...string) (ExecResult, error) {
	fields := []string{"exec", q(cwd), q(path)}
	for _, a := range args {
		fields = append(fields, q(a))
	}
	r, err := cl.rpc(fields...)
	if err != nil {
		return ExecResult{}, err
	}
	if len(r) != 2 {
		return ExecResult{}, fmt.Errorf("chirp: bad exec reply %v", r)
	}
	code, err := strconv.Atoi(r[0])
	if err != nil {
		return ExecResult{}, err
	}
	rt, err := strconv.ParseFloat(r[1], 64)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Code: code, RuntimeSeconds: rt}, nil
}

// PutFile stages a whole file onto the server in one call sequence.
func (cl *Client) PutFile(path string, data []byte, mode uint32) error {
	fd, err := cl.Open(path, 0x1|0x40|0x200, mode) // O_WRONLY|O_CREAT|O_TRUNC
	if err != nil {
		return err
	}
	const chunk = 65536
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := cl.Pwrite(fd, data[off:end], int64(off)); err != nil {
			cl.CloseFD(fd)
			return err
		}
	}
	return cl.CloseFD(fd)
}

// GetFile fetches a whole remote file.
func (cl *Client) GetFile(path string) ([]byte, error) {
	fd, err := cl.Open(path, 0x0, 0) // O_RDONLY
	if err != nil {
		return nil, err
	}
	defer cl.CloseFD(fd)
	st, err := cl.FstatFD(fd)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, st.Size)
	buf := make([]byte, 65536)
	var off int64
	for {
		n, err := cl.Pread(fd, buf, off)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
		off += int64(n)
	}
	return out, nil
}
