package chirp

import (
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"identitybox/internal/auth"
	"identitybox/internal/identity"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/vfs"
)

// Client is one authenticated connection to a Chirp server. Methods
// mirror the Unix-like protocol. A Client is safe for concurrent use by
// any number of goroutines: an internal mutex serializes each complete
// request/response exchange (including payload phases) on the wire, so
// one connection can back a whole mount table or a pool of workers.
//
// The client is fault tolerant: each wire exchange runs under an
// optional deadline, a dead connection is re-dialed and
// re-authenticated with capped exponential backoff, idempotent RPCs
// are retried transparently, non-idempotent ones surface
// ErrRetryNotSafe (see ClientOptions and ExecToken), and a circuit
// breaker stops hammering a server that keeps failing. Retries and
// redials consume wall-clock time only — nothing here touches the
// virtual clock, so instrumented retries charge zero virtual ticks.
type Client struct {
	mu     sync.Mutex // serializes v1 wire exchanges; guards conn, c, mux, proto, broken, closed
	conn   net.Conn
	c      *codec
	mux    *muxSession // v2 session engine (nil on a v1 session)
	proto  int         // negotiated protocol version for the current session
	closed bool
	broken bool // the transport failed; the next call redials
	dialed bool // first connection established (later dials count as redials)

	closing atomic.Bool // set by Close before taking mu, aborts retry loops

	ident identity.Principal
	addr  string
	auths []auth.Authenticator
	opts  ClientOptions

	brk *Breaker
	m   *clientMetrics
	rng *mrand.Rand // backoff jitter; guarded by mu

	// assertions are CAS assertions presented on this session, replayed
	// after a redial so re-established sessions keep their grants.
	assertions [][]byte

	sent atomic.Int64 // requests sent (everything the server dispatches)

	// forcedTrace, when non-zero, overrides the per-call trace ID for
	// every subsequent RPC (see SetTrace). The chirp CLI's trace probe
	// uses it to issue a request under a known ID it can then fetch.
	forcedTrace atomic.Uint64
}

// Dial connects to a Chirp server and authenticates with the first
// mutually acceptable method, with default fault-tolerance options.
func Dial(addr string, auths []auth.Authenticator) (*Client, error) {
	return DialOpts(addr, auths, ClientOptions{})
}

// DialOpts is Dial with explicit fault-tolerance options.
func DialOpts(addr string, auths []auth.Authenticator, opts ClientOptions) (*Client, error) {
	opts.withDefaults()
	cl := &Client{
		addr:  addr,
		auths: auths,
		opts:  opts,
		brk:   newBreaker(opts.BreakerThreshold, opts.BreakerCooloff, opts.Metrics),
		m:     newClientMetrics(opts.Metrics),
		rng:   mrand.New(mrand.NewSource(opts.Seed)),
	}
	cl.mu.Lock()
	err := cl.connectLocked()
	cl.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return cl, nil
}

// Identity reports the principal this client proved to the server.
func (cl *Client) Identity() identity.Principal { return cl.ident }

// Addr reports the server address.
func (cl *Client) Addr() string { return cl.addr }

// Breaker exposes the client's circuit breaker (the failover driver
// consults it to route reads away from a dead primary).
func (cl *Client) Breaker() *Breaker { return cl.brk }

// LocalMetrics returns the registry the client's retry/redial/breaker
// counters land in (ClientOptions.Metrics, or the private default).
func (cl *Client) LocalMetrics() *obs.Registry { return cl.m.reg }

// SetTrace pins the trace ID stamped on subsequent calls, instead of a
// fresh ID per call; zero restores per-call IDs. Only meaningful with
// ClientOptions.Spans set. The chirp CLI's trace probe uses it to issue
// a request under a known ID and then fetch that trace by name.
func (cl *Client) SetTrace(id uint64) { cl.forcedTrace.Store(id) }

// TraceSpans fetches the server-side spans retained for one trace ID
// (the trace RPC). The reply is the server's JSON span list, already
// decoded; an empty slice means the server retained nothing for that ID
// (expired from its ring, or never traced).
func (cl *Client) TraceSpans(id uint64) ([]obs.Span, error) {
	_, body, _, err := cl.do(wireCall{
		fields:   []string{"trace", obs.FormatTraceID(id)},
		recvBody: true,
		class:    classIdempotent,
	})
	if err != nil {
		return nil, err
	}
	var spans []obs.Span
	if len(body) > 0 {
		if err := json.Unmarshal(body, &spans); err != nil {
			return nil, fmt.Errorf("chirp: bad trace reply: %w", err)
		}
	}
	return spans, nil
}

// Close ends the session. Close is idempotent and safe to race with
// in-flight calls and redials: they complete or fail with
// ErrClientClosed. The "quit" farewell's write error is propagated only
// when the connection was otherwise healthy — a session torn down after
// a transport fault closes silently rather than masking the real error.
func (cl *Client) Close() error {
	cl.closing.Store(true) // aborts backoff loops waiting on cl.mu
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil
	}
	cl.closed = true
	if cl.conn == nil {
		return nil
	}
	if cl.broken {
		// The transport already failed and was closed; a farewell (or a
		// second close) could only mask the original fault with noise.
		cl.conn.Close()
		return nil
	}
	if cl.mux != nil {
		// The farewell rides the writer loop as a tagged frame; closing
		// the connection then unwinds both loops, which release the
		// codec once neither is touching it.
		qerr := cl.mux.sendQuit()
		cerr := cl.conn.Close()
		cl.mux, cl.c = nil, nil
		if qerr != nil {
			return qerr
		}
		return cerr
	}
	qerr := cl.c.writeLine("quit")
	cerr := cl.conn.Close()
	cl.c.release()
	cl.c = nil
	if qerr != nil {
		return qerr
	}
	return cerr
}

// --- connection management ---------------------------------------------

// connectLocked dials and authenticates, consulting the breaker.
// Callers hold cl.mu.
func (cl *Client) connectLocked() error {
	if !cl.brk.Allow() {
		return ErrBreakerOpen
	}
	conn, err := cl.opts.Dialer(cl.addr)
	if err != nil {
		cl.brk.Fail()
		return err
	}
	if cl.opts.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(cl.opts.Timeout))
	}
	ident, err := auth.ClientNegotiate(auth.NewConn(conn), cl.auths)
	if err != nil {
		conn.Close()
		cl.brk.Fail()
		return err
	}
	if cl.dialed && ident != cl.ident {
		conn.Close()
		return fmt.Errorf("chirp: redial authenticated as %q, session was %q", ident, cl.ident)
	}
	c := newCodec(conn)
	proto, window, maxBytes, traced, deadlined := ProtocolV1, 0, int64(0), false, false
	if cl.opts.Protocol != ProtocolV1 {
		proto, window, maxBytes, traced, deadlined, err = cl.negotiateVersion(c)
		if err != nil {
			conn.Close()
			c.release()
			cl.brk.Fail()
			return err
		}
	}
	if cl.opts.Timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	cl.conn, cl.c, cl.broken, cl.ident, cl.proto = conn, c, false, ident, proto
	if proto == ProtocolV2 {
		cl.mux = newMuxSession(cl, conn, c, window, maxBytes, traced, deadlined)
		cl.m.negWindow.Set(int64(window))
		cl.m.negMaxBytes.Set(maxBytes)
	} else {
		cl.m.negWindow.Set(0)
		cl.m.negMaxBytes.Set(0)
	}
	if cl.dialed {
		cl.m.redials.Inc()
		if err := cl.replayAssertionsLocked(); err != nil {
			cl.breakConnLocked()
			cl.brk.Fail()
			return err
		}
	}
	cl.dialed = true
	cl.brk.Success()
	return nil
}

// negotiateVersion runs the protocol version exchange on a freshly
// authenticated connection. The exchange itself is lock-step v1 — one
// line out, one reply back — so a v1 server sees nothing unusual: it
// answers the unknown "version" command with ENOSYS and the client
// stays on the line protocol. A v2 server replies "ok 2 <window>
// <maxbytes> [caps...]" with its own caps; each side then uses the
// minimum and all subsequent traffic is framed. When the client wants
// request tracing (ClientOptions.Spans) it appends the trace capability
// token; tracing activates only if the server echoes it back, so an
// older v2 server silently leaves it off.
func (cl *Client) negotiateVersion(c *codec) (proto, window int, maxBytes int64, traced, deadlined bool, err error) {
	cl.sent.Add(1)
	var caps []string
	if cl.opts.Spans != nil {
		caps = append(caps, capTrace)
	}
	if cl.opts.DeadlineBudget > 0 {
		caps = append(caps, capDeadline)
	}
	if err := c.writeLine(versionFields(cl.opts.Window, cl.opts.MaxInflightBytes, caps...)...); err != nil {
		return 0, 0, 0, false, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, 0, 0, false, false, err
	}
	parts, err := splitFields(line)
	if err != nil || len(parts) == 0 {
		return 0, 0, 0, false, false, fmt.Errorf("chirp: malformed version reply %q", line)
	}
	switch parts[0] {
	case "ok":
		v, w, b, echoed, err := parseVersionArgs(parts[1:])
		if err != nil {
			return 0, 0, 0, false, false, err
		}
		if v != ProtocolV2 {
			return 0, 0, 0, false, false, fmt.Errorf("chirp: server negotiated unsupported protocol %d", v)
		}
		if w > cl.opts.Window {
			w = cl.opts.Window
		}
		if b > cl.opts.MaxInflightBytes {
			b = cl.opts.MaxInflightBytes
		}
		traced = cl.opts.Spans != nil && hasCap(echoed, capTrace)
		deadlined = cl.opts.DeadlineBudget > 0 && hasCap(echoed, capDeadline)
		return ProtocolV2, w, b, traced, deadlined, nil
	case "err":
		// An old (or v1-pinned) server treats "version" as an unknown
		// command; that error reply is the fallback signal.
		return ProtocolV1, 0, 0, false, false, nil
	default:
		return 0, 0, 0, false, false, fmt.Errorf("chirp: malformed version reply %q", line)
	}
}

// ensureConnLocked makes sure a healthy authenticated connection is in
// place, redialing if the previous one broke.
func (cl *Client) ensureConnLocked() error {
	if cl.c != nil && !cl.broken {
		return nil
	}
	return cl.connectLocked()
}

// breakConnLocked marks the transport dead after a mid-exchange
// failure; the next call redials. The dead connection's codec buffers
// go back to the pools — a redial gets fresh ones.
func (cl *Client) breakConnLocked() {
	cl.broken = true
	if cl.mux != nil {
		// The session engine owns the codec: fail() closes the
		// connection, unwinds both loops, and they release the buffers.
		cl.mux.fail(errors.New("chirp: connection broken"))
		cl.mux, cl.c = nil, nil
		return
	}
	if cl.conn != nil {
		cl.conn.Close()
	}
	if cl.c != nil {
		cl.c.release()
		cl.c = nil
	}
}

// dropMux detaches a failed v2 session so the next call redials. The
// session has already killed itself; this only clears the client's
// reference (unless a concurrent redial already replaced it). It
// reports whether this caller performed the detach — a multiplexed
// session failure completes every in-flight call with the same
// transport error, and only the first observer should count it (one
// dead session is one breaker failure, not one per in-flight call).
func (cl *Client) dropMux(ms *muxSession) bool {
	cl.mu.Lock()
	dropped := cl.mux == ms
	if dropped {
		cl.broken = true
		cl.mux, cl.c = nil, nil
	}
	cl.mu.Unlock()
	return dropped
}

// replayAssertionsLocked re-presents CAS assertions on a fresh session,
// so grants survive a redial (session state the server keyed to the old
// connection).
func (cl *Client) replayAssertionsLocked() error {
	for _, blob := range cl.assertions {
		c := wireCall{
			fields:   []string{"assert", strconv.Itoa(len(blob))},
			sendBody: blob,
		}
		var err error
		if cl.mux != nil {
			_, _, err = cl.mux.roundTrip(c)
		} else {
			_, _, err = cl.attemptLocked(c)
		}
		if err != nil {
			return fmt.Errorf("chirp: replaying assertion after redial: %w", err)
		}
	}
	return nil
}

// --- the exchange engine -----------------------------------------------

// wireCall describes one complete request/response exchange.
type wireCall struct {
	fields   []string
	sendBody []byte    // counted payload written after the request line
	recvBody bool      // reply carries a counted payload sized by reply[0]
	recvInto []byte    // reply payload is read directly into this buffer instead
	class    callClass // idempotency classification
	trace    uint64    // request-tracing ID (0 untraced); only v2 traced sessions send it
	deadline time.Time // logical-call deadline (zero = unbounded); v2 deadlined sessions send the remaining budget
}

// attemptLocked performs exactly one wire exchange under the per-call
// deadline. A *RemoteError return means the server answered; any other
// error is a transport failure.
func (cl *Client) attemptLocked(c wireCall) ([]string, []byte, error) {
	if cl.opts.Timeout > 0 {
		if err := cl.conn.SetDeadline(time.Now().Add(cl.opts.Timeout)); err != nil {
			return nil, nil, err
		}
		defer cl.conn.SetDeadline(time.Time{})
	}
	cl.sent.Add(1)
	if err := cl.c.writeLine(c.fields...); err != nil {
		return nil, nil, err
	}
	if c.sendBody != nil {
		if err := cl.c.writePayload(c.sendBody); err != nil {
			return nil, nil, err
		}
	}
	resp, err := cl.response()
	if err != nil {
		return nil, nil, err
	}
	var body []byte
	if c.recvBody || c.recvInto != nil {
		if len(resp) < 1 {
			return nil, nil, fmt.Errorf("chirp: reply missing payload length")
		}
		n, err := strconv.Atoi(resp[0])
		if err != nil || n < 0 {
			return nil, nil, fmt.Errorf("chirp: bad payload length %q", resp[0])
		}
		if c.recvInto != nil {
			// Zero-copy receive: the payload lands in the caller's
			// buffer, no scratch and no per-call allocation.
			if n > len(c.recvInto) {
				return nil, nil, fmt.Errorf("chirp: reply payload %d exceeds %d-byte buffer", n, len(c.recvInto))
			}
			if err := cl.c.readPayloadInto(c.recvInto[:n]); err != nil {
				return nil, nil, err
			}
		} else {
			raw, err := cl.c.readPayload(n)
			if err != nil {
				return nil, nil, err
			}
			// The scratch alias must not escape cl.mu: callers consume
			// body after the lock is dropped, racing the next
			// exchange's reads. These paths (metrics, getacl) are rare,
			// so the copy costs nothing that matters.
			body = append([]byte(nil), raw...)
		}
	}
	return resp, body, nil
}

// do runs one logical RPC: deadline per attempt, redial on a broken
// connection, idempotency-aware retry with capped exponential backoff
// and jitter. It reports whether any retry happened, so callers can map
// retried mkdir/unlink outcomes (EEXIST/ENOENT after a lost reply mean
// the earlier attempt won).
func (cl *Client) do(c wireCall) (resp []string, body []byte, retried bool, err error) {
	// Stamp a trace ID once per logical call, so every retry of the same
	// request shows up under one trace. The ID only reaches the wire on
	// a session that negotiated the trace capability.
	if cl.opts.Spans != nil && c.trace == 0 {
		if c.trace = cl.forcedTrace.Load(); c.trace == 0 {
			c.trace = obs.NewTraceID()
		}
	}
	// Stamp the logical-call deadline once: every retry and backoff sleep
	// of this call spends from the same budget.
	if cl.opts.DeadlineBudget > 0 && c.deadline.IsZero() {
		c.deadline = time.Now().Add(cl.opts.DeadlineBudget)
	}
	attempts := 1
	if !cl.opts.DisableRetries {
		attempts += cl.opts.MaxRetries
	}
	var lastErr error
	// busyHint is the server's EBUSY retry-after hint, consumed as a
	// floor on the next backoff sleep.
	var busyHint time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		if cl.closing.Load() {
			return nil, nil, retried, ErrClientClosed
		}
		if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
			cl.m.deadline.Inc()
			return nil, nil, retried, deadlineErr(cl.opts.DeadlineBudget, lastErr)
		}
		if attempt > 0 {
			retried = true
			cl.m.retries.Inc()
			cl.mu.Lock()
			d := backoff(cl.rng, cl.opts.RetryBase, cl.opts.RetryMax, attempt)
			cl.mu.Unlock()
			if busyHint > d {
				d = busyHint
			}
			busyHint = 0
			if !c.deadline.IsZero() && time.Now().Add(d).After(c.deadline) {
				// The wait alone would outlive the caller's budget; fail
				// fast instead of sleeping toward a guaranteed miss.
				cl.m.deadline.Inc()
				return nil, nil, retried, deadlineErr(cl.opts.DeadlineBudget, lastErr)
			}
			cl.opts.Sleep(d)
			if cl.closing.Load() {
				return nil, nil, retried, ErrClientClosed
			}
		}
		cl.mu.Lock()
		if cl.closed {
			cl.mu.Unlock()
			return nil, nil, retried, ErrClientClosed
		}
		if err := cl.ensureConnLocked(); err != nil {
			cl.mu.Unlock()
			// Nothing was sent, so even mutating calls may retry a
			// failed redial.
			lastErr = err
			if cl.opts.DisableRetries {
				return nil, nil, retried, err
			}
			continue
		}
		mux := cl.mux
		var r []string
		var b []byte
		var aerr error
		if mux != nil {
			// v2: the exchange runs on the session engine without
			// holding cl.mu, so independent calls multiplex freely.
			cl.mu.Unlock()
			r, b, aerr = mux.roundTrip(c)
			if aerr == nil {
				cl.brk.Success()
				return r, b, retried, nil
			}
			var re *RemoteError
			if errors.As(aerr, &re) {
				// The server answered, so the session is healthy whatever
				// the reply says.
				cl.brk.Success()
				if errors.Is(re.Err, ErrBusy) && !cl.opts.DisableRetries {
					// EBUSY was rejected before anything executed, so a
					// retry is safe for every call class. The server's
					// retry-after hint floors the next backoff.
					cl.m.busy.Inc()
					busyHint = RetryAfterFromError(aerr)
					lastErr = aerr
					continue
				}
				if errors.Is(re.Err, ErrDeadline) {
					cl.m.deadline.Inc()
				}
				return nil, nil, retried, aerr
			}
			if errors.Is(aerr, ErrDeadline) {
				// The budget ran out client-side before the request was
				// sent: the session is fine, the caller is just out of
				// time.
				cl.m.deadline.Inc()
				return nil, nil, retried, aerr
			}
			if cl.dropMux(mux) {
				cl.brk.Fail()
			}
			if errors.Is(aerr, errSessionLost) {
				// The session died before this call reached the wire:
				// nothing was sent, so even mutating calls may retry.
				lastErr = aerr
				if cl.closing.Load() {
					return nil, nil, retried, ErrClientClosed
				}
				if cl.opts.DisableRetries {
					return nil, nil, retried, aerr
				}
				continue
			}
		} else {
			r, b, aerr = cl.attemptLocked(c)
			if aerr == nil {
				cl.brk.Success()
				cl.mu.Unlock()
				return r, b, retried, nil
			}
			var re *RemoteError
			if errors.As(aerr, &re) {
				// The server answered; error replies are final and healthy
				// (except EBUSY, which invites a retry).
				cl.brk.Success()
				cl.mu.Unlock()
				if errors.Is(re.Err, ErrBusy) && !cl.opts.DisableRetries {
					cl.m.busy.Inc()
					busyHint = RetryAfterFromError(aerr)
					lastErr = aerr
					continue
				}
				if errors.Is(re.Err, ErrDeadline) {
					cl.m.deadline.Inc()
				}
				return nil, nil, retried, aerr
			}
			// Transport failure mid-exchange.
			cl.breakConnLocked()
			cl.mu.Unlock()
			cl.brk.Fail()
		}
		lastErr = aerr
		if cl.closing.Load() {
			// Close raced the call: its conn.Close is what killed the
			// exchange, so report the closure rather than the fault.
			return nil, nil, retried, ErrClientClosed
		}
		if cl.opts.DisableRetries {
			return nil, nil, retried, aerr
		}
		if c.class == classMutating {
			cl.m.unsafe.Inc()
			return nil, nil, retried, fmt.Errorf("%w: %v", ErrRetryNotSafe, aerr)
		}
	}
	return nil, nil, retried, lastErr
}

// rpc performs one exchange with no payload phases. It is mutating-
// classified: test helpers poking raw commands get no blind retry.
func (cl *Client) rpc(fields ...string) ([]string, error) {
	r, _, _, err := cl.do(wireCall{fields: fields, class: classMutating})
	return r, err
}

// send is retained for the exchange engine: every request line reaches
// the server's dispatch loop via attemptLocked, which counts it, so
// RequestCount and the server's requests counter advance in lockstep on
// a fault-free run.

// RequestCount reports how many requests this client has sent (the
// "quit" farewell excluded — the server never dispatches it; retried
// exchanges count once per attempt, mirroring the server's dispatches).
func (cl *Client) RequestCount() int64 { return cl.sent.Load() }

func (cl *Client) response() ([]string, error) {
	line, err := cl.c.readLine()
	if err != nil {
		return nil, err
	}
	parts, err := splitFields(line)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("chirp: empty reply")
	}
	switch parts[0] {
	case "ok":
		return parts[1:], nil
	case "err":
		name, msg := "EIO", "unknown"
		if len(parts) > 1 {
			name = parts[1]
		}
		if len(parts) > 2 {
			msg = parts[2]
		}
		return nil, remoteError(name, msg)
	default:
		return nil, fmt.Errorf("chirp: malformed reply %q", line)
	}
}

// compositeRetryable reports whether a whole-file operation should be
// restarted from scratch: mid-transfer transport faults (surfaced as
// ErrRetryNotSafe on descriptor ops) and EBADF from a descriptor that
// died with a redialed session both qualify.
func (cl *Client) compositeRetryable(err error) bool {
	if cl.opts.DisableRetries {
		return false
	}
	return errors.Is(err, ErrRetryNotSafe) || errors.Is(err, kernel.ErrBadFD)
}

// composite restarts a multi-RPC operation (PutFile, GetFile) that is
// idempotent as a whole even though its descriptor-level steps are not.
func (cl *Client) composite(op func() error) error {
	attempts := 1
	if !cl.opts.DisableRetries {
		attempts += cl.opts.MaxRetries
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			cl.m.retries.Inc()
			cl.mu.Lock()
			d := backoff(cl.rng, cl.opts.RetryBase, cl.opts.RetryMax, attempt)
			cl.mu.Unlock()
			cl.opts.Sleep(d)
		}
		if cl.closing.Load() {
			return ErrClientClosed
		}
		if err = op(); err == nil || !cl.compositeRetryable(err) {
			return err
		}
	}
	return err
}

// --- RPC surface --------------------------------------------------------

// ServerStats are the live server-side counters returned by the stats
// command: connection/session state plus lifetime request, error and
// wire-traffic totals.
type ServerStats struct {
	Conns    int    // connections currently tracked
	FDs      int    // this session's open descriptors
	Grants   int    // this session's verified CAS grants
	Name     string // the server's advertised name
	Requests int64  // requests dispatched, lifetime
	Errors   int64  // error replies sent, lifetime
	Sessions int64  // sessions authenticated, lifetime
	RxBytes  int64  // wire bytes the server received
	TxBytes  int64  // wire bytes the server sent

	// Replication extras, present only when the server runs with a
	// replication role (three extra reply fields; absent on standalone
	// servers, where Role is "").
	Role       string // primary, follower, or fenced
	Epoch      uint64 // fencing epoch
	AppliedLSN uint64 // highest LSN applied to the server's state
}

// Stats fetches the server's live counters.
func (cl *Client) Stats() (ServerStats, error) {
	r, _, _, err := cl.do(wireCall{fields: []string{"stats"}, class: classIdempotent})
	if err != nil {
		return ServerStats{}, err
	}
	if len(r) < 9 {
		return ServerStats{}, fmt.Errorf("chirp: bad stats reply %v", r)
	}
	var st ServerStats
	ints := []*int{&st.Conns, &st.FDs, &st.Grants}
	for i, dst := range ints {
		if *dst, err = strconv.Atoi(r[i]); err != nil {
			return ServerStats{}, fmt.Errorf("chirp: bad stats field %q", r[i])
		}
	}
	st.Name = r[3]
	int64s := []*int64{&st.Requests, &st.Errors, &st.Sessions, &st.RxBytes, &st.TxBytes}
	for i, dst := range int64s {
		if *dst, err = strconv.ParseInt(r[4+i], 10, 64); err != nil {
			return ServerStats{}, fmt.Errorf("chirp: bad stats field %q", r[4+i])
		}
	}
	if len(r) >= 12 {
		st.Role = r[9]
		if st.Epoch, err = strconv.ParseUint(r[10], 10, 64); err != nil {
			return ServerStats{}, fmt.Errorf("chirp: bad stats field %q", r[10])
		}
		if st.AppliedLSN, err = strconv.ParseUint(r[11], 10, 64); err != nil {
			return ServerStats{}, fmt.Errorf("chirp: bad stats field %q", r[11])
		}
	}
	return st, nil
}

// WaitLSN blocks until the server's state reflects lsn, bounded by
// timeout — the bounded-staleness read barrier against a follower: a
// reader who knows the primary's durable LSN (or just a horizon it
// needs) demands it before reading, and the follower parks the request
// until replication catches up. Returns the server's applied LSN at
// release. A standalone server answers immediately.
func (cl *Client) WaitLSN(lsn uint64, timeout time.Duration) (uint64, error) {
	r, _, _, err := cl.do(wireCall{
		fields: []string{"waitlsn",
			strconv.FormatUint(lsn, 10),
			strconv.FormatInt(timeout.Milliseconds(), 10)},
		class: classIdempotent,
	})
	if err != nil {
		return 0, err
	}
	if len(r) != 1 {
		return 0, fmt.Errorf("chirp: bad waitlsn reply %v", r)
	}
	return strconv.ParseUint(r[0], 10, 64)
}

// Metrics fetches the server's full metric registry as Prometheus text
// exposition.
func (cl *Client) Metrics() (string, error) {
	_, body, _, err := cl.do(wireCall{fields: []string{"metrics"}, recvBody: true, class: classIdempotent})
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Whoami asks the server which principal it recorded.
func (cl *Client) Whoami() (identity.Principal, error) {
	r, _, _, err := cl.do(wireCall{fields: []string{"whoami"}, class: classIdempotent})
	if err != nil {
		return "", err
	}
	if len(r) != 1 {
		return "", fmt.Errorf("chirp: bad whoami reply %v", r)
	}
	return identity.Principal(r[0]), nil
}

// Open opens a remote file and returns its descriptor. Open retries
// transparently (a fresh descriptor on a fresh session is equivalent)
// unless O_EXCL makes a lost-reply retry observable.
func (cl *Client) Open(path string, flags int, mode uint32) (int, error) {
	class := classIdempotent
	if flags&kernel.OExcl != 0 {
		class = classMutating
	}
	r, _, _, err := cl.do(wireCall{
		fields: []string{"open", strconv.Itoa(flags), strconv.FormatUint(uint64(mode), 8), q(path)},
		class:  class,
	})
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(r[0])
}

// CloseFD releases a remote descriptor. Descriptors are session state:
// after a redial the old descriptor is gone, so no blind retry.
func (cl *Client) CloseFD(fd int) error {
	_, _, _, err := cl.do(wireCall{fields: []string{"close", strconv.Itoa(fd)}, class: classMutating})
	return err
}

// Pread reads up to len(buf) bytes at off, straight into buf (no
// intermediate allocation). Descriptor-bound: a transport fault
// surfaces ErrRetryNotSafe (GetFile restarts the whole transfer
// instead).
func (cl *Client) Pread(fd int, buf []byte, off int64) (int, error) {
	r, _, _, err := cl.do(wireCall{
		fields:   []string{"pread", strconv.Itoa(fd), strconv.Itoa(len(buf)), strconv.FormatInt(off, 10)},
		recvInto: buf,
		class:    classMutating,
	})
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(r[0])
}

// Pwrite writes buf at off. Descriptor-bound and non-idempotent: a
// transport fault surfaces ErrRetryNotSafe (PutFile restarts the whole
// transfer instead).
func (cl *Client) Pwrite(fd int, buf []byte, off int64) (int, error) {
	r, _, _, err := cl.do(wireCall{
		fields:   []string{"pwrite", strconv.Itoa(fd), strconv.FormatInt(off, 10), strconv.Itoa(len(buf))},
		sendBody: buf,
		class:    classMutating,
	})
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(r[0])
}

// FstatFD reports metadata for an open descriptor.
func (cl *Client) FstatFD(fd int) (vfs.Stat, error) {
	r, _, _, err := cl.do(wireCall{fields: []string{"fstat", strconv.Itoa(fd)}, class: classMutating})
	if err != nil {
		return vfs.Stat{}, err
	}
	return parseStat(r)
}

// Stat reports metadata for a path, following symlinks.
func (cl *Client) Stat(path string) (vfs.Stat, error) {
	r, _, _, err := cl.do(wireCall{fields: []string{"stat", q(path)}, class: classIdempotent})
	if err != nil {
		return vfs.Stat{}, err
	}
	return parseStat(r)
}

// Lstat reports metadata without following a final symlink.
func (cl *Client) Lstat(path string) (vfs.Stat, error) {
	r, _, _, err := cl.do(wireCall{fields: []string{"lstat", q(path)}, class: classIdempotent})
	if err != nil {
		return vfs.Stat{}, err
	}
	return parseStat(r)
}

// ReadDir lists a remote directory.
func (cl *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	r, _, _, err := cl.do(wireCall{fields: []string{"getdir", q(path)}, class: classIdempotent})
	if err != nil {
		return nil, err
	}
	if len(r) < 1 {
		return nil, fmt.Errorf("chirp: bad getdir reply")
	}
	n, err := strconv.Atoi(r[0])
	if err != nil || len(r) != 1+2*n {
		return nil, fmt.Errorf("chirp: bad getdir reply %v", r)
	}
	out := make([]vfs.DirEntry, 0, n)
	for i := 0; i < n; i++ {
		t, err := strconv.Atoi(r[2+2*i])
		if err != nil {
			return nil, err
		}
		out = append(out, vfs.DirEntry{Name: r[1+2*i], Type: vfs.FileType(t)})
	}
	return out, nil
}

// Mkdir creates a remote directory (with reserve-right semantics when
// the client holds only v in the parent). Mkdir is retried; EEXIST on a
// retried call means an earlier attempt's lost reply — the directory is
// there, so the call reports success.
func (cl *Client) Mkdir(path string, mode uint32) error {
	_, _, retried, err := cl.do(wireCall{
		fields: []string{"mkdir", strconv.FormatUint(uint64(mode), 8), q(path)},
		class:  classIdempotent,
	})
	if retried && errors.Is(err, vfs.ErrExist) {
		return nil
	}
	return err
}

// Rmdir removes an empty remote directory. ENOENT on a retried call
// means an earlier attempt already removed it.
func (cl *Client) Rmdir(path string) error {
	_, _, retried, err := cl.do(wireCall{fields: []string{"rmdir", q(path)}, class: classIdempotent})
	if retried && errors.Is(err, vfs.ErrNotExist) {
		return nil
	}
	return err
}

// Unlink removes a remote file. ENOENT on a retried call means an
// earlier attempt already removed it.
func (cl *Client) Unlink(path string) error {
	_, _, retried, err := cl.do(wireCall{fields: []string{"unlink", q(path)}, class: classIdempotent})
	if retried && errors.Is(err, vfs.ErrNotExist) {
		return nil
	}
	return err
}

// Rename moves a remote file. Not idempotent (a repeated rename fails
// or moves a recreated file), so mid-exchange faults surface
// ErrRetryNotSafe.
func (cl *Client) Rename(oldPath, newPath string) error {
	_, _, _, err := cl.do(wireCall{fields: []string{"rename", q(oldPath), q(newPath)}, class: classMutating})
	return err
}

// Link creates a remote hard link.
func (cl *Client) Link(oldPath, newPath string) error {
	_, _, _, err := cl.do(wireCall{fields: []string{"link", q(oldPath), q(newPath)}, class: classMutating})
	return err
}

// Symlink creates a remote symbolic link.
func (cl *Client) Symlink(target, linkPath string) error {
	_, _, _, err := cl.do(wireCall{fields: []string{"symlink", q(target), q(linkPath)}, class: classMutating})
	return err
}

// Readlink reads a remote symlink target.
func (cl *Client) Readlink(path string) (string, error) {
	r, _, _, err := cl.do(wireCall{fields: []string{"readlink", q(path)}, class: classIdempotent})
	if err != nil {
		return "", err
	}
	return r[0], nil
}

// Truncate sets a remote file's size (idempotent: truncating to the
// same size twice is harmless).
func (cl *Client) Truncate(path string, size int64) error {
	_, _, _, err := cl.do(wireCall{
		fields: []string{"truncate", q(path), strconv.FormatInt(size, 10)},
		class:  classIdempotent,
	})
	return err
}

// GetACL fetches the ACL text protecting a remote directory.
func (cl *Client) GetACL(path string) (string, error) {
	_, body, _, err := cl.do(wireCall{fields: []string{"getacl", q(path)}, recvBody: true, class: classIdempotent})
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// SetACL replaces the ACL protecting a remote directory (requires the
// A right). Idempotent: replaying the same replacement converges.
func (cl *Client) SetACL(path, aclText string) error {
	_, _, _, err := cl.do(wireCall{
		fields:   []string{"setacl", q(path), strconv.Itoa(len(aclText))},
		sendBody: []byte(aclText),
		class:    classIdempotent,
	})
	return err
}

// PresentAssertion hands a community-authorization assertion to the
// server; on success the server unions the granted rights with the
// local ACLs for this session, and the client replays it after any
// redial so grants survive reconnection. Returns the community name the
// server acknowledged.
func (cl *Client) PresentAssertion(encoded []byte) (string, error) {
	r, _, _, err := cl.do(wireCall{
		fields:   []string{"assert", strconv.Itoa(len(encoded))},
		sendBody: encoded,
		class:    classIdempotent,
	})
	if err != nil {
		return "", err
	}
	if len(r) != 1 {
		return "", fmt.Errorf("chirp: bad assert reply %v", r)
	}
	cl.mu.Lock()
	cl.assertions = append(cl.assertions, encoded)
	cl.mu.Unlock()
	return r[0], nil
}

// ExecResult reports a remote execution.
type ExecResult struct {
	Code           int
	RuntimeSeconds float64
}

// Exec runs the staged program at path on the server, inside an
// identity box carrying this client's principal, with working
// directory cwd. Job submission is not idempotent: if the connection
// dies mid-call the client cannot know whether the job ran, so the
// fault surfaces as ErrRetryNotSafe. Use ExecToken to opt in to safe
// retry via server-side deduplication.
func (cl *Client) Exec(cwd, path string, args ...string) (ExecResult, error) {
	return cl.exec("", cwd, path, args)
}

// ExecToken is Exec with an idempotency token (see NewRequestToken):
// the server deduplicates by (principal, token) in a bounded table, so
// a retried submission whose first attempt actually ran is answered
// from the dedupe table instead of running twice. With a token, the
// client retries transparently across redials.
func (cl *Client) ExecToken(token, cwd, path string, args ...string) (ExecResult, error) {
	if token == "" {
		return ExecResult{}, fmt.Errorf("chirp: empty request token")
	}
	return cl.exec(token, cwd, path, args)
}

func (cl *Client) exec(token, cwd, path string, args []string) (ExecResult, error) {
	fields := []string{"exec", q(cwd), q(path)}
	class := classMutating
	if token != "" {
		fields = append([]string{"token", q(token)}, fields...)
		class = classIdempotent
	}
	for _, a := range args {
		fields = append(fields, q(a))
	}
	r, _, _, err := cl.do(wireCall{fields: fields, class: class})
	if err != nil {
		return ExecResult{}, err
	}
	if len(r) != 2 {
		return ExecResult{}, fmt.Errorf("chirp: bad exec reply %v", r)
	}
	code, err := strconv.Atoi(r[0])
	if err != nil {
		return ExecResult{}, err
	}
	rt, err := strconv.ParseFloat(r[1], 64)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Code: code, RuntimeSeconds: rt}, nil
}

// transferChunk is the whole-file transfer granularity: one pread or
// pwrite exchange per 64 KiB.
const transferChunk = 65536

// transferDepth is how many chunk calls PutFile/GetFile keep in flight
// at once (ClientOptions.PipelineDepth; 1 means serial).
func (cl *Client) transferDepth() int {
	if cl.opts.PipelineDepth > 1 {
		return cl.opts.PipelineDepth
	}
	return 1
}

// pipelined reports whether chunk transfers may overlap: a depth above
// one and a live v2 session to multiplex them on.
func (cl *Client) pipelined() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.opts.PipelineDepth > 1 && cl.mux != nil
}

// PutFile stages a whole file onto the server in one call sequence.
// The transfer is idempotent as a whole (O_TRUNC restarts it), so a
// connection dying mid-transfer restarts the sequence on a fresh
// session rather than surfacing the descriptor fault. With
// PipelineDepth > 1 the chunk writes are pipelined.
func (cl *Client) PutFile(path string, data []byte, mode uint32) error {
	return cl.composite(func() error {
		fd, err := cl.Open(path, kernel.OWronly|kernel.OCreat|kernel.OTrunc, mode)
		if err != nil {
			return err
		}
		if err := cl.pwriteAll(fd, data); err != nil {
			cl.CloseFD(fd)
			return err
		}
		return cl.CloseFD(fd)
	})
}

// GetFile fetches a whole remote file, restarting the read sequence if
// the connection dies mid-transfer. With PipelineDepth > 1 the chunk
// reads are pipelined.
func (cl *Client) GetFile(path string) ([]byte, error) {
	var out []byte
	err := cl.composite(func() error {
		fd, err := cl.Open(path, kernel.ORdonly, 0)
		if err != nil {
			return err
		}
		defer cl.CloseFD(fd)
		st, err := cl.FstatFD(fd)
		if err != nil {
			return err
		}
		out, err = cl.preadAll(fd, st.Size)
		if err != nil {
			return err
		}
		if int64(len(out)) < st.Size {
			return nil // the file shrank mid-transfer; out is the new content
		}
		// Serial tail: past the stat size the file may still have grown;
		// read until EOF exactly like the pre-pipelining path (the final
		// zero-byte read doubles as the completion check).
		buf := make([]byte, transferChunk)
		off := int64(len(out))
		for {
			n, err := cl.Pread(fd, buf, off)
			if err != nil {
				return err
			}
			if n == 0 {
				return nil
			}
			out = append(out, buf[:n]...)
			off += int64(n)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- pipelined transfers ------------------------------------------------

// pwriteAll writes data to fd in transferChunk pieces. On a v2 session
// with PipelineDepth > 1 the chunks are independent tagged Pwrite calls
// issued by a small worker pool — the mux and its credit window do all
// the flow control, no bespoke chunk-window code. Otherwise the chunks
// go one exchange at a time. Errors report the earliest failed chunk.
func (cl *Client) pwriteAll(fd int, data []byte) error {
	nchunks := (len(data) + transferChunk - 1) / transferChunk
	depth := cl.transferDepth()
	if depth > nchunks {
		depth = nchunks
	}
	if depth <= 1 || !cl.pipelined() {
		for off := 0; off < len(data); off += transferChunk {
			end := off + transferChunk
			if end > len(data) {
				end = len(data)
			}
			n, err := cl.Pwrite(fd, data[off:end], int64(off))
			if err != nil {
				return err
			}
			if n != end-off {
				return fmt.Errorf("chirp: short pwrite: %d of %d bytes", n, end-off)
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	errs := make([]error, nchunks)
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1) - 1)
				if i >= nchunks {
					return
				}
				off := i * transferChunk
				end := off + transferChunk
				if end > len(data) {
					end = len(data)
				}
				n, err := cl.Pwrite(fd, data[off:end], int64(off))
				if err == nil && n != end-off {
					err = fmt.Errorf("chirp: short pwrite: %d of %d bytes", n, end-off)
				}
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// preadAll fetches size bytes from the start of fd, each chunk's reply
// payload read directly into its slot of the result (no intermediate
// copies). On a v2 session with PipelineDepth > 1 the chunks are
// independent tagged Pread calls running concurrently. A short read
// means the file shrank after the stat: the result is truncated at the
// earliest short chunk.
func (cl *Client) preadAll(fd int, size int64) ([]byte, error) {
	out := make([]byte, size)
	nchunks := int((size + transferChunk - 1) / transferChunk)
	depth := cl.transferDepth()
	if depth > nchunks {
		depth = nchunks
	}
	if depth <= 1 || !cl.pipelined() {
		var off int64
		for off < size {
			want := transferChunk
			if int64(want) > size-off {
				want = int(size - off)
			}
			n, err := cl.Pread(fd, out[off:off+int64(want)], off)
			if err != nil {
				return nil, err
			}
			off += int64(n)
			if n < want {
				return out[:off], nil
			}
		}
		return out, nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
		mu   sync.Mutex
	)
	shortEnd := size
	errs := make([]error, nchunks)
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1) - 1)
				if i >= nchunks {
					return
				}
				off := int64(i) * transferChunk
				want := transferChunk
				if int64(want) > size-off {
					want = int(size - off)
				}
				n, err := cl.Pread(fd, out[off:off+int64(want)], off)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				if n < want {
					// The file shrank; later chunks simply read zero
					// bytes, so no abort is needed.
					mu.Lock()
					if off+int64(n) < shortEnd {
						shortEnd = off + int64(n)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out[:shortEnd], nil
}
