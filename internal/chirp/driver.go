package chirp

import (
	"identitybox/internal/acl"
	"identitybox/internal/kernel"
	"identitybox/internal/parrot"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// Driver adapts a Chirp client to the parrot.Driver interface, making a
// remote server appear under /chirp/host:port/... inside an identity
// box, so ordinary applications access remote storage through normal
// open/read/write calls. Every operation charges the stopped child one
// network round trip plus per-byte wire cost.
type Driver struct {
	cl    *Client
	model vclock.CostModel
}

// NewDriver wraps an authenticated client.
func NewDriver(cl *Client, model vclock.CostModel) *Driver {
	return &Driver{cl: cl, model: model}
}

// Client exposes the underlying connection (for tests and tools).
func (d *Driver) Client() *Client { return d.cl }

func (d *Driver) chargeRTT(p *kernel.Proc, bytes int) {
	p.Charge(d.model.NetworkRTT + d.model.NetworkPerByte*vclock.Micros(bytes))
}

type chirpFile struct {
	d    *Driver
	fd   int
	path string
}

func (f *chirpFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.d.cl.Pread(f.fd, p, off)
	return n, err
}

func (f *chirpFile) WriteAt(p []byte, off int64) (int, error) {
	return f.d.cl.Pwrite(f.fd, p, off)
}

func (f *chirpFile) Truncate(size int64) error {
	// The wire protocol truncates by path, as production Chirp does.
	return f.d.cl.Truncate(f.path, size)
}

func (f *chirpFile) Stat() (vfs.Stat, error) { return f.d.cl.FstatFD(f.fd) }

func (f *chirpFile) Close() error { return f.d.cl.CloseFD(f.fd) }

// Open implements parrot.Driver.
func (d *Driver) Open(p *kernel.Proc, path string, flags int, mode uint32) (parrot.File, error) {
	d.chargeRTT(p, len(path))
	fd, err := d.cl.Open(path, flags, mode)
	if err != nil {
		return nil, err
	}
	return &chirpFile{d: d, fd: fd, path: path}, nil
}

// Stat implements parrot.Driver.
func (d *Driver) Stat(p *kernel.Proc, path string) (vfs.Stat, error) {
	d.chargeRTT(p, len(path))
	return d.cl.Stat(path)
}

// Lstat implements parrot.Driver.
func (d *Driver) Lstat(p *kernel.Proc, path string) (vfs.Stat, error) {
	d.chargeRTT(p, len(path))
	return d.cl.Lstat(path)
}

// Readlink implements parrot.Driver.
func (d *Driver) Readlink(p *kernel.Proc, path string) (string, error) {
	d.chargeRTT(p, len(path))
	return d.cl.Readlink(path)
}

// ReadDir implements parrot.Driver.
func (d *Driver) ReadDir(p *kernel.Proc, path string) ([]vfs.DirEntry, error) {
	ents, err := d.cl.ReadDir(path)
	d.chargeRTT(p, len(path)+24*len(ents))
	return ents, err
}

// Mkdir implements parrot.Driver.
func (d *Driver) Mkdir(p *kernel.Proc, path string, mode uint32) error {
	d.chargeRTT(p, len(path))
	return d.cl.Mkdir(path, mode)
}

// Rmdir implements parrot.Driver.
func (d *Driver) Rmdir(p *kernel.Proc, path string) error {
	d.chargeRTT(p, len(path))
	return d.cl.Rmdir(path)
}

// Unlink implements parrot.Driver.
func (d *Driver) Unlink(p *kernel.Proc, path string) error {
	d.chargeRTT(p, len(path))
	return d.cl.Unlink(path)
}

// Link implements parrot.Driver.
func (d *Driver) Link(p *kernel.Proc, oldPath, newPath string) error {
	d.chargeRTT(p, len(oldPath)+len(newPath))
	return d.cl.Link(oldPath, newPath)
}

// Symlink implements parrot.Driver.
func (d *Driver) Symlink(p *kernel.Proc, target, linkPath string) error {
	d.chargeRTT(p, len(target)+len(linkPath))
	return d.cl.Symlink(target, linkPath)
}

// Rename implements parrot.Driver.
func (d *Driver) Rename(p *kernel.Proc, oldPath, newPath string) error {
	d.chargeRTT(p, len(oldPath)+len(newPath))
	return d.cl.Rename(oldPath, newPath)
}

// Chmod implements parrot.Driver. Chirp's virtual user space has no
// Unix modes to change; accepted as a no-op, as production Chirp does.
func (d *Driver) Chmod(p *kernel.Proc, path string, mode uint32) error {
	d.chargeRTT(p, len(path))
	return nil
}

// Truncate implements parrot.Driver.
func (d *Driver) Truncate(p *kernel.Proc, path string, size int64) error {
	d.chargeRTT(p, len(path))
	return d.cl.Truncate(path, size)
}

// ReadFileSmall implements parrot.Driver. Reads of ACL files map onto
// the getacl RPC (which needs only the List right), so the identity
// box's policy engine can evaluate remote ACLs.
func (d *Driver) ReadFileSmall(p *kernel.Proc, path string) ([]byte, error) {
	if vfs.Base(path) == acl.FileName {
		text, err := d.cl.GetACL(vfs.Dir(path))
		d.chargeRTT(p, len(path)+len(text))
		if err != nil {
			return nil, err
		}
		return []byte(text), nil
	}
	data, err := d.cl.GetFile(path)
	d.chargeRTT(p, len(path)+len(data))
	return data, err
}

// WriteFileSmall implements parrot.Driver. Writes of ACL files map onto
// the setacl RPC, which the server gates on the Admin right.
func (d *Driver) WriteFileSmall(p *kernel.Proc, path string, data []byte, mode uint32) error {
	d.chargeRTT(p, len(path)+len(data))
	if vfs.Base(path) == acl.FileName {
		return d.cl.SetACL(vfs.Dir(path), string(data))
	}
	return d.cl.PutFile(path, data, mode)
}

// ManagesACLs implements parrot.ACLManager: the server applies the
// inherit/reserve mkdir semantics itself.
func (d *Driver) ManagesACLs() bool { return true }

var (
	_ parrot.Driver     = (*Driver)(nil)
	_ parrot.ACLManager = (*Driver)(nil)
)
