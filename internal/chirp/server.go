package chirp

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"identitybox/internal/acl"
	"identitybox/internal/admission"
	"identitybox/internal/auth"
	"identitybox/internal/core"
	"identitybox/internal/identity"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/replica"
	"identitybox/internal/vfs"
)

// ServerOptions configure a Chirp server.
type ServerOptions struct {
	// Name is the server's advertised name (defaults to the listen
	// address).
	Name string
	// Owner is the local account the server runs as: an ordinary user,
	// not root. Files created on behalf of clients are owned by it.
	Owner string
	// RootACL is installed at the export root if no ACL exists there.
	RootACL *acl.ACL
	// Verifiers are the accepted authentication methods.
	Verifiers map[auth.Method]auth.Verifier
	// Hosts resolves peer addresses for the hostname method and for
	// logging.
	Hosts auth.HostTable
	// CatalogAddr, when set, receives UDP heartbeats.
	CatalogAddr string
	// CASTrust, when set, lets clients present community-authorization
	// assertions ("assert" command); verified grants are unioned with
	// the local ACL rights for paths under the granted prefixes.
	CASTrust *auth.CASVerifier
	// Logf, when set, receives one line per request (debugging). It is
	// called concurrently from every connection goroutine and must be
	// safe for concurrent use (log.Printf and testing.T.Logf both are).
	// Lines carry a session id (sid=N) and request sequence (req=M) so
	// interleaved connections stay correlatable.
	Logf func(format string, args ...any)
	// AuthTimeout bounds the authentication dialogue, so an
	// unauthenticated socket cannot pin a server goroutine (default
	// 10 seconds).
	AuthTimeout time.Duration
	// Metrics, when set, is the registry the server records into
	// (per-command requests, errors, sessions, wire bytes). When nil
	// the server keeps a private registry, reachable via Metrics and
	// exported over the wire by the "metrics" command.
	Metrics *obs.Registry
	// RequestTimeout bounds the wire I/O of each request after its
	// command line arrives (payload read and reply write), so a client
	// that announces a payload and stalls cannot pin a session
	// goroutine. Zero means no per-request deadline.
	RequestTimeout time.Duration
	// DedupeCapacity bounds the idempotency-token dedupe table (default
	// 1024 entries, FIFO eviction).
	DedupeCapacity int
	// DedupeMaxBytes bounds the dedupe table's memory footprint
	// (default 8 MiB): large tokened replies under principal churn
	// evict oldest-first once the budget is reached, tracked by the
	// chirp_dedupe_bytes gauge and eviction counter.
	DedupeMaxBytes int64
	// Admission, when set, turns on overload protection: every normal
	// request is admitted against a bounded queue (EBUSY with a
	// retry-after hint once depth or the byte budget is exceeded),
	// scheduled onto execution slots fairly per principal, and shed
	// with EDEADLINE at the admit, dispatch, or durability-barrier hop
	// once its deadline budget expires. Control-plane commands (stats,
	// whoami, metrics, trace, waitlsn, replsub, replack) ride an exempt
	// class so overload can never trigger spurious failover. The server
	// echoes the "deadline" capability to v2 clients that request it.
	// Nil keeps admission off and the hot path unchanged.
	Admission *admission.Controller
	// DedupeJournal, when set, receives every tokened reply as it is
	// recorded, so the dedupe table survives a server restart and a
	// retried mutation stays exactly-once across the crash. Journal
	// failures degrade durability, never availability: the reply is
	// still sent and the error only counted and logged.
	DedupeJournal DedupeJournal
	// DedupeSeed pre-populates the dedupe table, normally with the
	// entries a durable store recovered. Keys are principal+token as
	// produced by the journal; values are the stored reply fields.
	DedupeSeed map[string][]string
	// Durability, when set, is barriered before the reply to any
	// mutating command reaches the wire: with a group-commit store this
	// parks the session until the op's commit group is durable, so an
	// acknowledged mutation can never be lost to a crash. Barrier
	// failures degrade durability, never availability — counted,
	// logged, and the reply still sent (matching the store's own
	// degradation contract). The durable store implements this.
	Durability interface{ Barrier() error }
	// Window is the per-session credit window the server advertises
	// during v2 negotiation: the most tagged requests one session may
	// have in flight at once (default DefaultWindow). The client
	// advertises its own cap and the minimum wins; the server enforces
	// the negotiated window against misbehaving clients too.
	Window int
	// MaxInflightBytes is the in-flight payload byte budget the server
	// advertises during v2 negotiation (default
	// DefaultMaxInflightBytes); the minimum of the two sides wins.
	MaxInflightBytes int64
	// Workers sizes the per-session pool executing non-conflicting v2
	// requests concurrently (default 4). Conflicting ops — descriptor
	// table changes, namespace mutations, tokened requests, exec — run
	// on a single ordered lane that preserves per-session FIFO order.
	Workers int
	// MaxProtocol caps the protocol version the server negotiates: 0 or
	// ProtocolV2 accept tagged v2 sessions, ProtocolV1 pins the server
	// to the lock-step line protocol (simulating an old server; v2
	// clients fall back transparently).
	MaxProtocol int
	// Spans, when set, turns on server-side request tracing: the server
	// echoes the trace capability to v2 clients that request it, strips
	// the per-frame trace prefix, records one "server" span per traced
	// request (lane-queue, handler, barrier and reply phases) into this
	// ring, and serves the "trace" RPC from it. Nil keeps tracing off
	// and the hot path unchanged. Spans are wall-clock only — recording
	// them never touches the virtual clock.
	Spans *obs.SpanRing
	// TraceLog, when set, receives every completed traced server span
	// whose total duration reaches TraceSlow, one JSON object per line
	// (the slow-request log). core.JSONLSink satisfies it. Log failures
	// are counted in the server log, never surfaced to the client.
	TraceLog interface{ RecordValue(v any) error }
	// TraceSlow is the slow-request threshold for TraceLog. Zero logs
	// every traced request — what the tracing end-to-end CI step uses to
	// capture complete chains.
	TraceSlow time.Duration
	// Repl, when set, exposes this server's WAL ship stream: v2
	// sessions that negotiate the "repl" capability may subscribe
	// (replsub) and receive every committed group as a pushed frame.
	// Nil refuses replication subscriptions.
	Repl *replica.Publisher
	// Role, when set, makes the server replication-aware: mutating
	// commands are refused with ENOTPRIMARY (naming the current
	// primary) unless the role is primary, stats and heartbeats carry
	// role/epoch/applied-LSN, and waitlsn serves bounded-staleness read
	// barriers. Nil behaves as a standalone primary.
	Role RoleSource
	// HeartbeatEvery re-announces the server to its catalog on this
	// period, keeping the catalog's freshness and role views live. Zero
	// preserves the single at-listen heartbeat.
	HeartbeatEvery time.Duration
}

// RoleSource reports a server's replication role. replica.Node
// implements it; the server only reads.
type RoleSource interface {
	// Role reports the node's role (replica.RolePrimary et al.) and
	// fencing epoch.
	Role() (string, uint64)
	// AppliedLSN reports the highest LSN applied to local state.
	AppliedLSN() uint64
	// WaitApplied blocks until local state reflects lsn (bounded by
	// timeout) — the waitlsn read barrier.
	WaitApplied(lsn uint64, timeout time.Duration) error
	// PrimaryAddr reports where writes should be sent.
	PrimaryAddr() string
}

// DedupeJournal persists tokened replies across restarts. The durable
// store implements it; the server stays ignorant of how entries reach
// stable storage.
type DedupeJournal interface {
	AppendDedupe(key string, reply []string) error
}

// logger is a structured printf sink that is safe to call when no sink
// is configured, so call sites never nil-check. with() stacks
// correlation prefixes (sid=N, then req=M per line).
type logger struct {
	sink   func(format string, args ...any)
	prefix string
}

func (l logger) printf(format string, args ...any) {
	if l.sink == nil {
		return
	}
	if l.prefix != "" {
		format = l.prefix + " " + format
	}
	l.sink(format, args...)
}

// with returns a logger whose lines carry an additional prefix.
func (l logger) with(prefix string) logger {
	if l.prefix != "" {
		prefix = l.prefix + " " + prefix
	}
	return logger{sink: l.sink, prefix: prefix}
}

// Metric names exported by every server.
const (
	MetricRequests = "chirp_requests_total"
	MetricErrors   = "chirp_errors_total"
	MetricSessions = "chirp_sessions_total"
	MetricRxBytes  = "chirp_rx_bytes_total"
	MetricTxBytes  = "chirp_tx_bytes_total"
	MetricConns    = "chirp_open_conns"
)

// srvMetrics caches the server's metric handles.
type srvMetrics struct {
	reg           *obs.Registry
	errors        *obs.Counter
	sessions      *obs.Counter
	rxBytes       *obs.Counter
	txBytes       *obs.Counter
	conns         *obs.Gauge
	dedupeHits    *obs.Counter
	dedupeEntries *obs.Gauge
	dedupeBytes   *obs.Gauge
	dedupeEvicts  *obs.Counter
	dedupeJErrs   *obs.Counter
	draining      *obs.Gauge
	barrierErrs   *obs.Counter
	poolHits      *obs.Gauge
	poolMisses    *obs.Gauge
	tagsInFlight  *obs.Gauge
	bpStalls      *obs.Counter
	occupancy     *obs.Histogram
	v2Sessions    *obs.Counter
	requestLat    *obs.Histogram
}

func newSrvMetrics(reg *obs.Registry) *srvMetrics {
	reg.Help(MetricRequests, "Requests dispatched, by command.")
	reg.Help(MetricErrors, "Requests answered with an error reply.")
	reg.Help(MetricSessions, "Sessions authenticated since start.")
	reg.Help(MetricRxBytes, "Bytes received on client connections.")
	reg.Help(MetricTxBytes, "Bytes sent on client connections.")
	reg.Help(MetricConns, "Connections currently tracked.")
	reg.Help(MetricDedupeHits, "Tokened retries answered from the dedupe table.")
	reg.Help(MetricDedupeEntries, "Replies currently held in the dedupe table.")
	reg.Help(MetricDedupeBytes, "Approximate bytes held by the dedupe table.")
	reg.Help(MetricDedupeEvictions, "Dedupe entries evicted by the entry or byte bound.")
	reg.Help(MetricDedupeJournalErrs, "Tokened replies that failed to persist to the dedupe journal.")
	reg.Help(MetricDraining, "1 while the server is draining for shutdown.")
	reg.Help(MetricBarrierErrs, "Commit barriers that failed before a mutating reply (durability degraded).")
	reg.Help(MetricPayloadPoolHits, "Payloads served from pooled codec scratch (process-wide).")
	reg.Help(MetricPayloadPoolMisses, "Payloads that had to grow codec scratch (process-wide).")
	reg.Help(MetricTagsInFlight, "Tagged requests currently admitted across v2 sessions.")
	reg.Help(MetricBackpressureStalls, "Frames that waited for credit-window space before dispatch.")
	reg.Help(MetricWindowOccupancy, "Window occupancy observed at each v2 frame admission.")
	reg.Help(MetricV2Sessions, "Sessions that negotiated protocol v2 since start.")
	reg.Help(MetricRequestLatency, "Traced request latency, frame arrival to reply flushed, in microseconds.")
	return &srvMetrics{
		reg:           reg,
		errors:        reg.Counter(MetricErrors),
		sessions:      reg.Counter(MetricSessions),
		rxBytes:       reg.Counter(MetricRxBytes),
		txBytes:       reg.Counter(MetricTxBytes),
		conns:         reg.Gauge(MetricConns),
		dedupeHits:    reg.Counter(MetricDedupeHits),
		dedupeEntries: reg.Gauge(MetricDedupeEntries),
		dedupeBytes:   reg.Gauge(MetricDedupeBytes),
		dedupeEvicts:  reg.Counter(MetricDedupeEvictions),
		dedupeJErrs:   reg.Counter(MetricDedupeJournalErrs),
		draining:      reg.Gauge(MetricDraining),
		barrierErrs:   reg.Counter(MetricBarrierErrs),
		poolHits:      reg.Gauge(MetricPayloadPoolHits),
		poolMisses:    reg.Gauge(MetricPayloadPoolMisses),
		tagsInFlight:  reg.Gauge(MetricTagsInFlight),
		bpStalls:      reg.Counter(MetricBackpressureStalls),
		occupancy:     reg.Histogram(MetricWindowOccupancy, []float64{1, 2, 4, 8, 16, 32, 64}),
		v2Sessions:    reg.Counter(MetricV2Sessions),
		requestLat:    reg.Histogram(MetricRequestLatency, requestLatencyBuckets()),
	}
}

// Negotiation caps with defaults applied.
func (s *Server) window() int {
	if s.opts.Window > 0 {
		return s.opts.Window
	}
	return DefaultWindow
}

func (s *Server) maxInflightBytes() int64 {
	if s.opts.MaxInflightBytes > 0 {
		return s.opts.MaxInflightBytes
	}
	return DefaultMaxInflightBytes
}

func (s *Server) workers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	return 4
}

func (s *Server) maxProtocol() int {
	if s.opts.MaxProtocol > 0 {
		return s.opts.MaxProtocol
	}
	return ProtocolV2
}

// Server is a Chirp file server exporting the file system of a simulated
// kernel. It requires no privilege to run: deploying one is an
// ordinary-user operation, and visiting users are admitted purely by
// ACL policy over their authenticated identities.
// Connection goroutines share only the kernel/VFS (internally locked),
// the connection registry under s.mu, and atomic counters; every other
// piece of session state (descriptor table, CAS grants, codec) is owned
// by its single connection goroutine.
type Server struct {
	k    *kernel.Kernel
	fs   *vfs.FS
	opts ServerOptions

	ln       net.Listener
	mu       sync.Mutex // guards closed, draining and conns
	closed   bool
	draining bool // refusing new connections, finishing in-flight RPCs
	conns    map[net.Conn]*connState
	wg       sync.WaitGroup
	stop     chan struct{} // closed once, when Close or Shutdown begins
	stopOnce sync.Once

	log     logger
	metrics *srvMetrics
	dedupe  *dedupeTable

	requests atomic.Int64 // requests dispatched, across all sessions
	sessions atomic.Int64 // authenticated sessions accepted, lifetime
	errors   atomic.Int64 // error replies sent, across all sessions
	rxBytes  atomic.Int64 // wire bytes received from clients
	txBytes  atomic.Int64 // wire bytes sent to clients
}

// NewServer creates a server exporting k's file system. The root ACL is
// installed if the export root has none.
func NewServer(k *kernel.Kernel, opts ServerOptions) (*Server, error) {
	if opts.Owner == "" {
		opts.Owner = "chirp"
	}
	s := &Server{k: k, fs: k.FS(), opts: opts, conns: make(map[net.Conn]*connState), stop: make(chan struct{})}
	s.log = logger{sink: opts.Logf}
	s.dedupe = newDedupeTable(opts.DedupeCapacity, opts.DedupeMaxBytes)
	for key, reply := range opts.DedupeSeed {
		s.dedupe.store(key, reply)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.metrics = newSrvMetrics(reg)
	if _, size := s.dedupe.stats(); size > 0 {
		s.syncDedupeMetrics()
	}
	if opts.RootACL != nil && !s.fs.Exists("/"+acl.FileName) {
		if err := s.fs.WriteFile("/"+acl.FileName, []byte(opts.RootACL.String()), 0o644, opts.Owner); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Listen binds the server to addr ("127.0.0.1:0" for an ephemeral port)
// and begins serving in background goroutines.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.opts.Name == "" {
		s.opts.Name = ln.Addr().String()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if s.opts.CatalogAddr != "" {
		s.SendHeartbeat()
		if every := s.opts.HeartbeatEvery; every > 0 {
			s.wg.Add(1)
			go s.heartbeatLoop(every)
		}
	}
	return nil
}

// heartbeatLoop re-announces the server to the catalog until shutdown,
// so the catalog's last-seen ages and role views stay fresh.
func (s *Server) heartbeatLoop(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.SendHeartbeat(); err != nil {
				s.log.printf("heartbeat: %v", err)
			}
		}
	}
}

// Addr reports the bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, severs live sessions immediately, and waits
// for the connection goroutines to drain. For a graceful stop that
// lets in-flight RPCs finish, use Shutdown.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	already := s.closed
	s.closed = true
	conns := make(map[net.Conn]*connState, len(s.conns))
	for c, st := range s.conns {
		conns[c] = st
	}
	s.mu.Unlock()
	// Sever outside s.mu: the abort hook takes the session slot mutex,
	// which workers hold while consulting server state.
	for c, st := range conns {
		st.sever()
		c.Close()
	}
	var err error
	if s.ln != nil && !already {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, lets every in-flight RPC finish, nudges idle sessions
// off their blocking reads, and waits up to timeout for the connection
// goroutines to exit before severing stragglers. It returns an error
// if any session had to be severed.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return s.Close()
	}
	s.draining = true
	s.metrics.draining.Set(1)
	ln := s.ln
	for c, st := range s.conns {
		if !st.busy.Load() {
			// An idle session is parked in readLine; expiring its read
			// deadline pops it out so the goroutine can exit. Busy
			// sessions notice draining after their current dispatch.
			c.SetReadDeadline(time.Now())
		}
	}
	s.mu.Unlock()
	var lnErr error
	if ln != nil {
		lnErr = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	severed := false
	select {
	case <-done:
	case <-time.After(timeout):
		severed = true
	}
	s.mu.Lock()
	s.closed = true
	conns := make(map[net.Conn]*connState, len(s.conns))
	for c, st := range s.conns {
		conns[c] = st
	}
	s.mu.Unlock()
	for c, st := range conns {
		st.sever()
		c.Close()
	}
	s.wg.Wait()
	if severed {
		return fmt.Errorf("chirp: drain timed out after %v; severed remaining sessions", timeout)
	}
	return lnErr
}

// connState is the server's per-connection bookkeeping shared with the
// drain path: busy is true while a request is being dispatched, and
// abort (set once a session upgrades to v2) wakes waiters parked on
// the session's credit window when the server severs the connection.
type connState struct {
	busy  atomic.Bool
	abort atomic.Value // func(), set by v2 sessions
}

// sever calls the session's abort hook, if one is registered.
func (st *connState) sever() {
	if f, ok := st.abort.Load().(func()); ok {
		f()
	}
}

// track registers a live connection; it reports nil when the server is
// closing or draining (the caller should drop the connection).
func (s *Server) track(c net.Conn) *connState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return nil
	}
	st := &connState{}
	s.conns[c] = st
	s.metrics.conns.Inc()
	return st
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.metrics.conns.Dec()
}

// SendHeartbeat reports the server to its catalog over UDP. A
// replication-aware server (opts.Role set) appends epoch/lsn/role
// tokens; an old catalog ignores trailing tokens it does not know.
func (s *Server) SendHeartbeat() error {
	if s.opts.CatalogAddr == "" {
		return errors.New("chirp: no catalog configured")
	}
	conn, err := net.Dial("udp", s.opts.CatalogAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	line := fmt.Sprintf("chirp %s %s %s", q(s.opts.Name), q(s.Addr()), q(s.opts.Owner))
	if rs := s.opts.Role; rs != nil {
		role, epoch := rs.Role()
		line += fmt.Sprintf(" epoch=%d lsn=%d role=%s", epoch, rs.AppliedLSN(), role)
	}
	_, err = fmt.Fprintln(conn, line)
	return err
}

// ReseedDedupe folds entries — the dedupe journal a durable store
// recovered — into the live dedupe table. A promoted follower calls it
// so tokened retries the old primary already answered replay here
// instead of re-executing: the journal replicated with the WAL, so the
// table converges on exactly the replies the old primary acknowledged.
func (s *Server) ReseedDedupe(entries map[string][]string) {
	for key, reply := range entries {
		s.dedupe.store(key, reply)
	}
	if _, size := s.dedupe.stats(); size > 0 {
		s.syncDedupeMetrics()
	}
}

// syncDedupeMetrics mirrors the dedupe table's size gauges. The
// eviction counter is advanced at each store by its return value, not
// here, so it stays monotonic under concurrent sessions.
func (s *Server) syncDedupeMetrics() {
	_, size := s.dedupe.stats()
	bytes, _ := s.dedupe.byteStats()
	s.metrics.dedupeEntries.Set(int64(size))
	s.metrics.dedupeBytes.Set(bytes)
}

// countingConn wraps a client connection so every wire byte — including
// the authentication dialogue — lands in the server's traffic counters.
type countingConn struct {
	net.Conn
	s *Server
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.s.rxBytes.Add(int64(n))
		c.s.metrics.rxBytes.Add(int64(n))
	}
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.s.txBytes.Add(int64(n))
		c.s.metrics.txBytes.Add(int64(n))
	}
	return n, err
}

// Metrics returns the registry the server records into (the one
// supplied via ServerOptions.Metrics, or the server's private one).
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.closed || s.draining
			s.mu.Unlock()
			if stopping {
				return
			}
			log.Printf("chirp: accept: %v", err)
			return
		}
		st := s.track(conn)
		if st == nil {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn, st)
		}()
	}
}

// session is one authenticated connection.
//
// On a v1 session everything is owned by the single connection
// goroutine. A session that upgrades to v2 becomes concurrent: the
// reader goroutine owns the codec's read side, workers share the write
// side under writeMu, and the descriptor table and CAS grants get their
// own RWMutexes. Lock order: fdMu and grantsMu are leaves (nothing else
// is acquired under them); writeMu is taken only around one frame's
// queue+flush and never with another session lock held.
type session struct {
	s     *Server
	id    int64 // session sequence number, for log correlation
	log   logger
	reqs  int64 // requests dispatched on this session (reader-owned)
	ident identity.Principal
	conn  net.Conn   // for per-request deadlines
	state *connState // busy flag shared with the drain path
	c     *codec

	fdMu   sync.RWMutex // guards fds and nextFD
	fds    map[int]*sessionFD
	nextFD int

	// grants are CAS-granted rights, verified against CASTrust.
	grantsMu sync.RWMutex
	grants   []auth.Grant

	// pendingDedupe, when non-empty, is the dedupe key the next reply is
	// stored under (v1 lock-step path only; the v2 path threads the key
	// through per-request state instead).
	pendingDedupe string
	// needBarrier marks the in-flight request as mutating: its reply
	// must wait for the durability barrier before hitting the wire (v1
	// path only, as above).
	needBarrier bool

	// upgraded is set by a successful version exchange; the session loop
	// switches to the v2 frame loop after the ok reply goes out.
	upgraded *v2Conf

	// v2 credit-window state: slotMu/slotCond gate frame admission so at
	// most window requests are in flight per session. stopping is set
	// by abort() when the server severs the connection: it wakes a
	// reader parked on a full window and tells the lane workers to
	// drop queued jobs instead of executing them toward a dead socket.
	slotMu   sync.Mutex
	slotCond *sync.Cond
	inflight int
	stopping bool

	writeMu sync.Mutex // serializes v2 reply frames on the shared codec

	// replOK records that this session negotiated the repl capability
	// (written before the v2 workers start, read-only after). replSub is
	// the session's live replication subscription; pushWG tracks its
	// pusher goroutine so the codec is not released under it.
	replOK  bool
	replMu  sync.Mutex
	replSub *replica.Subscription
	pushWG  sync.WaitGroup
}

// v2Conf is the outcome of a version negotiation.
type v2Conf struct {
	window    int
	maxBytes  int64
	traced    bool // both sides negotiated the trace capability
	repl      bool // both sides negotiated the repl capability
	deadlined bool // both sides negotiated the deadline capability
}

// --- session state accessors (v2 workers run concurrently) -------------

func (sess *session) lookupFD(fd int) (*sessionFD, bool) {
	sess.fdMu.RLock()
	d, ok := sess.fds[fd]
	sess.fdMu.RUnlock()
	return d, ok
}

func (sess *session) addFD(d *sessionFD) int {
	sess.fdMu.Lock()
	fd := sess.nextFD
	sess.nextFD++
	sess.fds[fd] = d
	sess.fdMu.Unlock()
	return fd
}

func (sess *session) removeFD(fd int) bool {
	sess.fdMu.Lock()
	_, ok := sess.fds[fd]
	if ok {
		delete(sess.fds, fd)
	}
	sess.fdMu.Unlock()
	return ok
}

func (sess *session) fdCount() int {
	sess.fdMu.RLock()
	defer sess.fdMu.RUnlock()
	return len(sess.fds)
}

func (sess *session) grantCount() int {
	sess.grantsMu.RLock()
	defer sess.grantsMu.RUnlock()
	return len(sess.grants)
}

type sessionFD struct {
	h     *vfs.Handle
	path  string
	flags int
}

func (s *Server) serveConn(conn net.Conn, st *connState) {
	remoteHost, _, _ := net.SplitHostPort(conn.RemoteAddr().String())
	wire := countingConn{Conn: conn, s: s}
	authTimeout := s.opts.AuthTimeout
	if authTimeout <= 0 {
		authTimeout = 10 * time.Second
	}
	if err := conn.SetDeadline(time.Now().Add(authTimeout)); err != nil {
		s.log.printf("setting auth deadline for %s: %v", remoteHost, err)
	}
	ac := auth.NewConn(wire)
	ident, err := auth.ServerNegotiate(ac, s.opts.Verifiers, remoteHost)
	if err != nil {
		s.log.printf("auth failed from %s: %v", remoteHost, err)
		return
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		s.log.printf("clearing auth deadline for %s: %v", remoteHost, err)
		return
	}
	sid := s.sessions.Add(1)
	s.metrics.sessions.Inc()
	sess := &session{
		s:      s,
		id:     sid,
		log:    s.log.with(fmt.Sprintf("sid=%d", sid)),
		ident:  ident,
		conn:   conn,
		state:  st,
		c:      newCodec(wire),
		fds:    make(map[int]*sessionFD),
		nextFD: 1,
	}
	sess.slotCond = sync.NewCond(&sess.slotMu)
	sess.log.printf("session for %s from %s", ident, remoteHost)
	sess.loop()
	sess.closeReplSub()
	sess.pushWG.Wait() // the pusher writes through the codec; outlast it
	sess.c.release()
}

// closeReplSub detaches the session's replication subscription, waking
// its pusher goroutine if one is blocked waiting for batches.
func (sess *session) closeReplSub() {
	sess.replMu.Lock()
	sub := sess.replSub
	sess.replSub = nil
	sess.replMu.Unlock()
	if sub != nil {
		sub.Close()
	}
}

// isDraining reports whether the server has begun a graceful shutdown.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (sess *session) loop() {
	for {
		if sess.s.isDraining() {
			return // finish in-flight work, accept no more requests
		}
		line, err := sess.c.readLine()
		if err != nil {
			return // connection closed (or drain nudge expired the read)
		}
		sess.state.busy.Store(true)
		err = sess.serveOne(line)
		sess.state.busy.Store(false)
		if err != nil {
			return // transport error
		}
		if up := sess.upgraded; up != nil {
			// The version exchange succeeded lock-step; everything from
			// here on is tagged frames.
			sess.upgraded = nil
			sess.loopV2(up)
			return
		}
	}
}

// serveOne handles one request line under the per-request deadline,
// which bounds the remaining wire I/O of the exchange (payload read and
// reply write) once the command line has arrived.
func (sess *session) serveOne(line string) error {
	if rt := sess.s.opts.RequestTimeout; rt > 0 {
		if err := sess.conn.SetDeadline(time.Now().Add(rt)); err != nil {
			sess.log.printf("setting request deadline: %v", err)
		}
		defer func() {
			if err := sess.conn.SetDeadline(time.Time{}); err != nil {
				sess.log.printf("clearing request deadline: %v", err)
			}
		}()
	}
	fields, err := splitFields(line)
	if err != nil || len(fields) == 0 {
		return sess.fail(vfs.ErrInvalid, "malformed request")
	}
	if fields[0] == "quit" {
		sess.c.writeLine("ok")
		return errQuit
	}
	if fields[0] == "version" {
		return sess.serveVersion(fields[1:])
	}
	return sess.dispatch(fields)
}

// serveVersion answers the protocol negotiation a v2 client opens with.
// The exchange is lock-step: one counted request, one reply. A server
// pinned to v1 answers ENOSYS exactly as an old binary (which has no
// "version" case at all) would, and the client falls back.
func (sess *session) serveVersion(args []string) error {
	s := sess.s
	s.requests.Add(1)
	sess.reqs++
	s.metrics.reg.Counter(obs.With(MetricRequests, "cmd", "version")).Inc()
	sess.log.printf("req=%d %s: version %v", sess.reqs, sess.ident, args)
	if s.maxProtocol() < ProtocolV2 {
		return sess.fail(kernel.ErrNoSys, "unknown command version")
	}
	v, w, b, caps, err := parseVersionArgs(args)
	if err != nil || v < ProtocolV2 {
		return sess.fail(vfs.ErrInvalid, "bad version exchange")
	}
	window := s.window()
	if w < window {
		window = w
	}
	maxBytes := s.maxInflightBytes()
	if b < maxBytes {
		maxBytes = b
	}
	// Capability tokens: echoed only when both sides support them, so a
	// client never sends trace context to a server that cannot strip it.
	traced := s.opts.Spans != nil && hasCap(caps, capTrace)
	repl := s.opts.Repl != nil && hasCap(caps, capRepl)
	deadlined := s.opts.Admission != nil && hasCap(caps, capDeadline)
	okFields := []string{strconv.Itoa(ProtocolV2), strconv.Itoa(window), strconv.FormatInt(maxBytes, 10)}
	if traced {
		okFields = append(okFields, capTrace)
	}
	if repl {
		okFields = append(okFields, capRepl)
	}
	if deadlined {
		okFields = append(okFields, capDeadline)
	}
	if err := sess.ok(okFields...); err != nil {
		return err
	}
	sess.upgraded = &v2Conf{window: window, maxBytes: maxBytes, traced: traced, repl: repl, deadlined: deadlined}
	return nil
}

// errQuit signals an orderly client farewell out of the session loop.
var errQuit = errors.New("chirp: session quit")

// reply writes a reply line, first recording it in the dedupe table —
// and the dedupe journal, when one is configured — when a tokened
// request is in flight. The journal write happens before the reply
// reaches the wire: once the client can see the answer, it is durable,
// so a retry after a server crash replays instead of re-executing.
//
// Mutating commands (needBarrier) additionally wait for the durability
// barrier before the line hits the wire: the mutation is committed in
// memory, but the acknowledgement must not outrun the log. The dedupe
// journal append barriers on its own entry, which subsumes the explicit
// barrier when both are configured.
func (sess *session) reply(fields []string) error {
	key, barrier := sess.pendingDedupe, sess.needBarrier
	sess.pendingDedupe, sess.needBarrier = "", false
	sess.finishReply(fields, key, barrier)
	return sess.c.writeLine(fields...)
}

// finishReply performs the pre-wire bookkeeping shared by both
// protocol paths: the durability barrier for mutating requests, the
// pool-counter mirror, and dedupe recording for tokened requests. The
// journal write happens before the reply reaches the wire — once the
// client can see the answer, it is durable.
func (sess *session) finishReply(fields []string, dedupeKey string, barrier bool) {
	if barrier {
		sess.barrierBeforeReply(dedupeKey, false)
	}
	sess.recordReply(fields, dedupeKey)
}

// tracedDurability is the optional extension of the Durability barrier
// a tracing server probes for: internal/durable's Store implements it,
// reporting how long the caller waited and the covering commit group's
// write+fsync latency, so a trace can show WAL time explicitly.
type tracedDurability interface {
	BarrierTraced() (wait, commit time.Duration, err error)
}

// barrierBeforeReply runs the durability barrier for a mutating reply,
// unless a dedupe-journal append subsumes it: a tokened reply about to
// be journaled waits on its own dedupe entry, appended after this
// request's mutations — that wait covers them, so the explicit barrier
// would only double it. With traced set it prefers the timing-aware
// barrier, reporting the wait and the covering group's commit latency.
func (sess *session) barrierBeforeReply(dedupeKey string, traced bool) (wait, commit time.Duration) {
	journaled := dedupeKey != "" && sess.s.opts.DedupeJournal != nil
	d := sess.s.opts.Durability
	if d == nil || journaled {
		return 0, 0
	}
	var err error
	if td, ok := d.(tracedDurability); ok && traced {
		wait, commit, err = td.BarrierTraced()
	} else {
		err = d.Barrier()
	}
	if err != nil {
		sess.s.metrics.barrierErrs.Inc()
		sess.log.printf("commit barrier failed (durability degraded): %v", err)
	}
	return wait, commit
}

// recordReply is the non-barrier half of the pre-wire bookkeeping: the
// pool-counter mirror and dedupe recording for tokened requests.
func (sess *session) recordReply(fields []string, dedupeKey string) {
	sess.s.metrics.poolHits.Set(poolHits.Load())
	sess.s.metrics.poolMisses.Set(poolMisses.Load())
	if dedupeKey != "" {
		if evicted := sess.s.dedupe.store(dedupeKey, fields); evicted > 0 {
			sess.s.metrics.dedupeEvicts.Add(int64(evicted))
		}
		if j := sess.s.opts.DedupeJournal; j != nil {
			if err := j.AppendDedupe(dedupeKey, fields); err != nil {
				sess.s.metrics.dedupeJErrs.Inc()
				sess.log.printf("dedupe journal append failed: %v", err)
			}
		}
		sess.s.syncDedupeMetrics()
	}
}

// hres is one handled request's outcome: a complete reply line
// (starting "ok" or "err") plus an optional counted payload. The
// handler produces it; the protocol paths deliver it (v1 as a line +
// payload, v2 as a tagged frame).
type hres struct {
	fields []string
	body   []byte
}

// okres builds a success result.
func okres(fields ...string) hres {
	return hres{fields: append([]string{"ok"}, fields...)}
}

// failf builds an error result, counting it.
func (sess *session) failf(err error, context string) hres {
	msg := context
	if err != nil {
		msg = err.Error()
	}
	sess.s.errors.Add(1)
	sess.s.metrics.errors.Inc()
	return hres{fields: []string{"err", nameForError(err), q(msg)}}
}

// ok sends a success reply (v1 path).
func (sess *session) ok(fields ...string) error {
	return sess.reply(append([]string{"ok"}, fields...))
}

// fail sends an error reply (v1 path).
func (sess *session) fail(err error, context string) error {
	return sess.reply(sess.failf(err, context).fields)
}

// roleRefusal reports the refusal for a mutating command when this
// server is not the primary replica (a follower, or a fenced former
// primary), nil when the command may proceed. The error message names
// the current primary so a failover-aware client can re-target; this
// check is the server half of epoch fencing — a deposed primary
// answers every write with it, no matter how stale its own view is.
func (sess *session) roleRefusal(cmd string, args []string) *hres {
	rs := sess.s.opts.Role
	if rs == nil || !mutatingCmds[cmd] {
		return nil
	}
	if cmd == "open" && len(args) >= 1 {
		// A read-only open without create/truncate mutates nothing, and
		// followers must serve it: bounded-staleness reads (waitlsn +
		// get) are the whole point of read replicas.
		if flags, err := strconv.Atoi(args[0]); err == nil &&
			flags&3 == kernel.ORdonly && flags&(kernel.OCreat|kernel.OTrunc) == 0 {
			return nil
		}
	}
	role, _ := rs.Role()
	if role == "" || role == replica.RolePrimary {
		return nil
	}
	err := ErrNotPrimary
	if p := rs.PrimaryAddr(); p != "" {
		err = fmt.Errorf("%w (%s); primary is %s", ErrNotPrimary, role, p)
	}
	res := sess.failf(err, "not primary")
	return &res
}

// PrimaryFromError extracts the primary address a server named in an
// ENOTPRIMARY refusal, or "" when the error is something else (or the
// refusing server did not know the holder).
func PrimaryFromError(err error) string {
	var re *RemoteError
	if !errors.As(err, &re) || !errors.Is(err, ErrNotPrimary) {
		return ""
	}
	const marker = "primary is "
	i := strings.LastIndex(re.Message, marker)
	if i < 0 {
		return ""
	}
	return strings.TrimSpace(re.Message[i+len(marker):])
}

// RequestCount reports the number of requests dispatched across all
// sessions since the server started.
func (s *Server) RequestCount() int64 { return s.requests.Load() }

// SessionCount reports the number of sessions authenticated since the
// server started (not just the currently live ones).
func (s *Server) SessionCount() int64 { return s.sessions.Load() }

// ErrorCount reports the number of error replies sent since the server
// started.
func (s *Server) ErrorCount() int64 { return s.errors.Load() }

// mutatingCmds lists the commands that can change durable state; their
// replies wait on the durability barrier (see session.reply). open is
// included because OCreat/OTrunc create or truncate, exec because
// staged programs write output files.
var mutatingCmds = map[string]bool{
	"open":     true,
	"pwrite":   true,
	"mkdir":    true,
	"rmdir":    true,
	"unlink":   true,
	"rename":   true,
	"link":     true,
	"symlink":  true,
	"truncate": true,
	"setacl":   true,
	"exec":     true,
}

// tokenable lists the commands a request token may wrap: non-idempotent
// mutations with line-only replies. Session-state commands (open,
// close) are excluded — a replayed descriptor number would point into a
// different session — as are payload-reply commands, whose body is not
// captured by the dedupe table.
var tokenable = map[string]bool{
	"exec":     true,
	"rename":   true,
	"link":     true,
	"symlink":  true,
	"mkdir":    true,
	"rmdir":    true,
	"unlink":   true,
	"truncate": true,
	"pwrite":   true,
	"setacl":   true,
}

// consumeRequestPayload reads (and discards) the counted payload that
// accompanies cmd's request line, so a dedupe-hit replay leaves the
// wire aligned for the next request.
func (sess *session) consumeRequestPayload(cmd string, args []string) error {
	var idx int
	switch cmd {
	case "pwrite":
		idx = 2
	case "setacl":
		idx = 1
	default:
		return nil
	}
	if len(args) <= idx {
		return nil
	}
	n, err := strconv.Atoi(args[idx])
	if err != nil || n < 0 || n > MaxPayload {
		return nil
	}
	_, err = sess.c.readPayload(n)
	return err
}

// dispatchTokened handles `token <id> <cmd> ...`: if the (principal,
// token) pair was already answered, the stored reply is replayed
// without re-executing the command; otherwise the inner command runs
// and its reply is recorded. This is what makes retrying a
// non-idempotent request safe: a lost reply does not become a second
// execution.
func (sess *session) dispatchTokened(args []string) error {
	s := sess.s
	if len(args) < 2 {
		s.requests.Add(1)
		sess.reqs++
		s.metrics.reg.Counter(obs.With(MetricRequests, "cmd", "token")).Inc()
		return sess.fail(vfs.ErrInvalid, "token wants a token and a command")
	}
	token, inner := args[0], args[1:]
	cmd := inner[0]
	if !tokenable[cmd] {
		s.requests.Add(1)
		sess.reqs++
		s.metrics.reg.Counter(obs.With(MetricRequests, "cmd", cmd)).Inc()
		return sess.fail(vfs.ErrInvalid, "command not tokenable: "+cmd)
	}
	key := dedupeKey(sess.ident.String(), token)
	if stored, hit := s.dedupe.lookup(key); hit {
		s.requests.Add(1)
		sess.reqs++
		s.metrics.reg.Counter(obs.With(MetricRequests, "cmd", cmd)).Inc()
		s.metrics.dedupeHits.Inc()
		if err := sess.consumeRequestPayload(cmd, inner[1:]); err != nil {
			return err
		}
		sess.log.printf("req=%d %s: %s (token %s) replayed from dedupe", sess.reqs, sess.ident, cmd, token)
		return sess.c.writeLine(stored...)
	}
	sess.pendingDedupe = key
	err := sess.dispatch(inner)
	sess.pendingDedupe = "" // cleared by reply(); re-clear on transport error
	return err
}

func (sess *session) dispatch(fields []string) error {
	cmd, args := fields[0], fields[1:]
	s := sess.s
	if cmd == "token" {
		return sess.dispatchTokened(args)
	}
	s.requests.Add(1)
	sess.reqs++
	s.metrics.reg.Counter(obs.With(MetricRequests, "cmd", cmd)).Inc()
	sess.log.printf("req=%d %s: %s %v", sess.reqs, sess.ident, cmd, args)
	if s.opts.Durability != nil && mutatingCmds[cmd] {
		sess.needBarrier = true
	}
	var payload []byte
	if n, ok := requestPayloadSpec(cmd, args); ok {
		// The request announces a counted payload and the line is well
		// formed enough to say how long; read it before dispatch, as the
		// lock-step protocol always has. A malformed line reads nothing
		// and the handler fails it, leaving the wire where v1 left it.
		data, err := sess.c.readPayload(n)
		if err != nil {
			return err // transport failure mid-payload
		}
		payload = data
	}
	if rr := sess.roleRefusal(cmd, args); rr != nil {
		// Not the primary: refuse after the payload is consumed (wire
		// stays aligned) and without touching dedupe — the retry belongs
		// to whichever server holds the lease, not this table.
		sess.pendingDedupe, sess.needBarrier = "", false
		return sess.reply(rr.fields)
	}
	res := sess.handle(cmd, args, payload, sess.c.scratchBuf, 0)
	if err := sess.reply(res.fields); err != nil {
		return err
	}
	if res.body != nil {
		return sess.c.writePayload(res.body)
	}
	return nil
}

// requestPayloadSpec reports the counted request payload cmd's line
// announces, when the line is well-formed enough to announce one. A
// malformed line (wrong arg count, out-of-range length) reports none:
// the handler fails it without any payload having been consumed,
// exactly as the v1 dispatch ordered its checks.
func requestPayloadSpec(cmd string, args []string) (n int, ok bool) {
	switch cmd {
	case "pwrite": // pwrite <fd> <off> <len>
		if len(args) != 3 {
			return 0, false
		}
		n, _ := strconv.Atoi(args[2])
		if n < 0 || n > MaxPayload {
			return 0, false
		}
		return n, true
	case "setacl": // setacl <path> <len>
		if len(args) != 2 {
			return 0, false
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 0 || n > 1<<20 {
			return 0, false
		}
		return n, true
	case "assert": // assert <len>
		if len(args) != 1 {
			return 0, false
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 || n > 1<<20 {
			return 0, false
		}
		return n, true
	}
	return 0, false
}

// handle executes one request and produces its reply. It is shared by
// the v1 lock-step path and the v2 worker lanes, so it touches no wire
// state: the request payload arrives pre-read, and pread reply bodies
// are built in the buf the caller supplies (codec scratch for v1, a
// per-worker pooled scratch for v2). Session state goes through the
// fdMu/grantsMu accessors, making concurrent v2 execution safe.
//
// trace is the request's trace ID (zero when untraced); mutating
// commands stamp it onto the journal mutations they emit so a trace
// can be followed into the WAL group-commit pipeline. A zero-trace
// view is the plain FS, so untraced behavior is unchanged.
func (sess *session) handle(cmd string, args []string, payload []byte, buf func(int) []byte, trace uint64) hres {
	s := sess.s
	tfs := s.fs.Traced(trace)
	switch cmd {
	case "whoami":
		return okres(q(sess.ident.String()))

	case "stats": // server-side counters for this session and globally
		s.mu.Lock()
		conns := len(s.conns)
		s.mu.Unlock()
		fields := []string{
			strconv.Itoa(conns),
			strconv.Itoa(sess.fdCount()),
			strconv.Itoa(sess.grantCount()),
			q(s.opts.Name),
			strconv.FormatInt(s.requests.Load(), 10),
			strconv.FormatInt(s.errors.Load(), 10),
			strconv.FormatInt(s.sessions.Load(), 10),
			strconv.FormatInt(s.rxBytes.Load(), 10),
			strconv.FormatInt(s.txBytes.Load(), 10),
		}
		// Replication-aware servers append role, epoch and applied LSN;
		// old clients that expect exactly nine fields never see them
		// because a nil Role keeps the classic shape.
		if rs := s.opts.Role; rs != nil {
			role, epoch := rs.Role()
			fields = append(fields,
				q(role),
				strconv.FormatUint(epoch, 10),
				strconv.FormatUint(rs.AppliedLSN(), 10))
		}
		return okres(fields...)

	case "waitlsn": // waitlsn <lsn> <timeoutms>: bounded-staleness read barrier
		if len(args) != 2 {
			return sess.failf(vfs.ErrInvalid, "waitlsn wants lsn and timeout")
		}
		lsn, err1 := strconv.ParseUint(args[0], 10, 64)
		ms, err2 := strconv.ParseInt(args[1], 10, 64)
		if err1 != nil || err2 != nil || ms < 0 {
			return sess.failf(vfs.ErrInvalid, "bad waitlsn args")
		}
		rs := s.opts.Role
		if rs == nil {
			// A standalone server's state is always authoritative.
			return okres("0")
		}
		if err := rs.WaitApplied(lsn, time.Duration(ms)*time.Millisecond); err != nil {
			return sess.failf(err, "waitlsn")
		}
		return okres(strconv.FormatUint(rs.AppliedLSN(), 10))

	case "metrics": // full registry as a counted text-exposition payload
		text := s.metrics.reg.Text()
		return hres{fields: []string{"ok", strconv.Itoa(len(text))}, body: []byte(text)}

	case "trace": // trace <id>: server-side spans for one trace, as JSON
		if len(args) != 1 {
			return sess.failf(vfs.ErrInvalid, "trace wants a trace id")
		}
		id, err := obs.ParseTraceID(args[0])
		if err != nil || id == 0 {
			return sess.failf(vfs.ErrInvalid, "bad trace id")
		}
		// A nil ring (tracing not enabled) yields no spans, same as an
		// unknown ID: an empty JSON array, not an error.
		data, err := json.Marshal(s.opts.Spans.Trace(id))
		if err != nil {
			return sess.failf(vfs.ErrInvalid, "trace encode")
		}
		return hres{fields: []string{"ok", strconv.Itoa(len(data))}, body: data}

	case "open": // open <flags> <mode> <path>
		if len(args) != 3 {
			return sess.failf(vfs.ErrInvalid, "open wants 3 args")
		}
		flags, err1 := strconv.Atoi(args[0])
		mode, err2 := strconv.ParseUint(args[1], 8, 32)
		if err1 != nil || err2 != nil {
			return sess.failf(vfs.ErrInvalid, "bad open args")
		}
		fd, err := sess.open(args[2], flags, uint32(mode), trace)
		if err != nil {
			return sess.failf(err, "open")
		}
		return okres(strconv.Itoa(fd))

	case "close":
		fd, err := strconv.Atoi(args[0])
		if err != nil {
			return sess.failf(vfs.ErrInvalid, "bad fd")
		}
		if !sess.removeFD(fd) {
			return sess.failf(kernel.ErrBadFD, "close")
		}
		return okres()

	case "pread": // pread <fd> <len> <off>
		if len(args) != 3 {
			return sess.failf(vfs.ErrInvalid, "pread wants 3 args")
		}
		fd, _ := strconv.Atoi(args[0])
		n, _ := strconv.Atoi(args[1])
		off, _ := strconv.ParseInt(args[2], 10, 64)
		d, ok := sess.lookupFD(fd)
		if !ok {
			return sess.failf(kernel.ErrBadFD, "pread")
		}
		if n < 0 || n > MaxPayload {
			return sess.failf(vfs.ErrInvalid, "pread size")
		}
		// Pooled scratch: the payload is written to the wire before the
		// caller's scratch is reused.
		b := buf(n)
		rn, err := d.h.ReadAt(b, off)
		if err != nil {
			return sess.failf(err, "pread")
		}
		return hres{fields: []string{"ok", strconv.Itoa(rn)}, body: b[:rn]}

	case "pwrite": // pwrite <fd> <off> <len> + payload
		if len(args) != 3 {
			return sess.failf(vfs.ErrInvalid, "pwrite wants 3 args")
		}
		fd, _ := strconv.Atoi(args[0])
		off, _ := strconv.ParseInt(args[1], 10, 64)
		n, _ := strconv.Atoi(args[2])
		if n < 0 || n > MaxPayload {
			return sess.failf(vfs.ErrInvalid, "pwrite size")
		}
		if len(payload) != n {
			return sess.failf(vfs.ErrInvalid, "pwrite payload length mismatch")
		}
		d, ok := sess.lookupFD(fd)
		if !ok {
			return sess.failf(kernel.ErrBadFD, "pwrite")
		}
		if d.flags&3 == kernel.ORdonly {
			return sess.failf(kernel.ErrBadFD, "fd not writable")
		}
		wn, err := d.h.WriteAtTraced(payload, off, trace)
		if err != nil {
			return sess.failf(err, "pwrite")
		}
		return okres(strconv.Itoa(wn))

	case "fstat":
		fd, _ := strconv.Atoi(args[0])
		d, ok := sess.lookupFD(fd)
		if !ok {
			return sess.failf(kernel.ErrBadFD, "fstat")
		}
		return okres(statFields(d.h.Stat())...)

	case "stat", "lstat":
		if len(args) != 1 {
			return sess.failf(vfs.ErrInvalid, "stat wants a path")
		}
		if err := sess.checkF(args[0], acl.List); err != nil {
			return sess.failf(err, "stat")
		}
		var st vfs.Stat
		var err error
		if cmd == "stat" {
			st, err = s.fs.Stat(args[0])
		} else {
			st, err = s.fs.Lstat(args[0])
		}
		if err != nil {
			return sess.failf(err, "stat")
		}
		return okres(statFields(st)...)

	case "getdir":
		if err := sess.checkD(args[0], acl.List); err != nil {
			return sess.failf(err, "getdir")
		}
		ents, err := s.fs.ReadDir(args[0])
		if err != nil {
			return sess.failf(err, "getdir")
		}
		out := make([]string, 0, 2*len(ents)+1)
		out = append(out, strconv.Itoa(len(ents)))
		for _, e := range ents {
			out = append(out, q(e.Name), strconv.Itoa(int(e.Type)))
		}
		return okres(out...)

	case "mkdir": // mkdir <mode> <path>
		if len(args) != 2 {
			return sess.failf(vfs.ErrInvalid, "mkdir wants 2 args")
		}
		mode, err := strconv.ParseUint(args[0], 8, 32)
		if err != nil {
			return sess.failf(vfs.ErrInvalid, "bad mode")
		}
		if err := sess.mkdir(args[1], uint32(mode), trace); err != nil {
			return sess.failf(err, "mkdir")
		}
		return okres()

	case "rmdir":
		if err := sess.checkF(args[0], acl.Write); err != nil {
			return sess.failf(err, "rmdir")
		}
		// A directory holding only its ACL file counts as empty: the
		// ACL is removed with the directory.
		if ents, lerr := s.fs.ReadDir(args[0]); lerr == nil &&
			len(ents) == 1 && ents[0].Name == acl.FileName {
			if uerr := tfs.Unlink(vfs.Join(args[0], acl.FileName)); uerr != nil {
				return sess.failf(uerr, "rmdir")
			}
		}
		if err := tfs.Rmdir(args[0]); err != nil {
			return sess.failf(err, "rmdir")
		}
		return okres()

	case "unlink":
		if err := sess.checkACLFileWrite(args[0]); err != nil {
			return sess.failf(err, "unlink")
		}
		if err := tfs.Unlink(args[0]); err != nil {
			return sess.failf(err, "unlink")
		}
		return okres()

	case "rename":
		if len(args) != 2 {
			return sess.failf(vfs.ErrInvalid, "rename wants 2 args")
		}
		if err := sess.checkACLFileWrite(args[0]); err != nil {
			return sess.failf(err, "rename")
		}
		if err := sess.checkACLFileWrite(args[1]); err != nil {
			return sess.failf(err, "rename")
		}
		if err := tfs.Rename(args[0], args[1]); err != nil {
			return sess.failf(err, "rename")
		}
		return okres()

	case "link": // link <old> <new>: refuse links to unreadable files
		if len(args) != 2 {
			return sess.failf(vfs.ErrInvalid, "link wants 2 args")
		}
		if err := sess.checkF(args[0], acl.Read); err != nil {
			return sess.failf(err, "link")
		}
		if err := sess.checkACLFileWrite(args[1]); err != nil {
			return sess.failf(err, "link")
		}
		if err := tfs.Link(args[0], args[1]); err != nil {
			return sess.failf(err, "link")
		}
		return okres()

	case "symlink": // symlink <target> <link>
		if len(args) != 2 {
			return sess.failf(vfs.ErrInvalid, "symlink wants 2 args")
		}
		if err := sess.checkACLFileWrite(args[1]); err != nil {
			return sess.failf(err, "symlink")
		}
		if err := tfs.Symlink(args[0], args[1], s.opts.Owner); err != nil {
			return sess.failf(err, "symlink")
		}
		return okres()

	case "readlink":
		if err := s.checkFileNoFollow(sess.ident, args[0], acl.List); err != nil {
			return sess.failf(err, "readlink")
		}
		t, err := s.fs.Readlink(args[0])
		if err != nil {
			return sess.failf(err, "readlink")
		}
		return okres(q(t))

	case "truncate": // truncate <path> <size>
		if len(args) != 2 {
			return sess.failf(vfs.ErrInvalid, "truncate wants 2 args")
		}
		size, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return sess.failf(vfs.ErrInvalid, "bad size")
		}
		if err := sess.checkF(args[0], acl.Write); err != nil {
			return sess.failf(err, "truncate")
		}
		if err := tfs.Truncate(args[0], size); err != nil {
			return sess.failf(err, "truncate")
		}
		return okres()

	case "getacl":
		if err := sess.checkD(args[0], acl.List); err != nil {
			return sess.failf(err, "getacl")
		}
		a, err := s.aclFor(args[0])
		if err != nil {
			return sess.failf(err, "getacl")
		}
		text := a.String()
		return hres{fields: []string{"ok", strconv.Itoa(len(text))}, body: []byte(text)}

	case "setacl": // setacl <path> <len> + payload
		if len(args) != 2 {
			return sess.failf(vfs.ErrInvalid, "setacl wants 2 args")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 0 || n > 1<<20 {
			return sess.failf(vfs.ErrInvalid, "bad length")
		}
		if len(payload) != n {
			return sess.failf(vfs.ErrInvalid, "setacl payload length mismatch")
		}
		if err := sess.checkD(args[0], acl.Admin); err != nil {
			return sess.failf(err, "setacl")
		}
		if _, err := acl.Parse(string(payload)); err != nil {
			return sess.failf(vfs.ErrInvalid, "malformed ACL")
		}
		aclPath := vfs.Join(args[0], acl.FileName)
		if err := tfs.WriteFile(aclPath, payload, 0o644, s.opts.Owner); err != nil {
			return sess.failf(err, "setacl")
		}
		return okres()

	case "assert": // assert <len> + JSON assertion payload
		if len(args) != 1 {
			return sess.failf(vfs.ErrInvalid, "assert wants a length")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 || n > 1<<20 {
			return sess.failf(vfs.ErrInvalid, "bad length")
		}
		if len(payload) != n {
			return sess.failf(vfs.ErrInvalid, "assert payload length mismatch")
		}
		community, err := sess.present(payload)
		if err != nil {
			return sess.failf(vfs.ErrPermission, err.Error())
		}
		return okres(q(community))

	case "exec": // exec <cwd> <path> [args...]
		if len(args) < 2 {
			return sess.failf(vfs.ErrInvalid, "exec wants cwd and path")
		}
		code, runtime, err := sess.exec(args[0], args[1], args[2:])
		if err != nil {
			return sess.failf(err, "exec")
		}
		return okres(strconv.Itoa(code), strconv.FormatFloat(runtime, 'f', -1, 64))

	default:
		return sess.failf(kernel.ErrNoSys, "unknown command "+cmd)
	}
}

// open authorizes and opens a file for the session.
// --- v2 tagged frame loop ----------------------------------------------

// orderedCmds lists the commands the v2 dispatcher serializes on one
// lane per session, preserving submission order where operations can
// conflict: descriptor-table changes (open/close), namespace mutations,
// ACL and grant changes, and tokened requests (dedupe lookup/store must
// not race a concurrent duplicate). Everything else — reads, stats, and
// pwrite, whose offsets the client already owns — runs on the
// concurrent worker pool, so a slow transfer cannot head-of-line block
// metadata traffic.
var orderedCmds = map[string]bool{
	"open":     true,
	"close":    true,
	"mkdir":    true,
	"rmdir":    true,
	"unlink":   true,
	"rename":   true,
	"link":     true,
	"symlink":  true,
	"truncate": true,
	"setacl":   true,
	"assert":   true,
	"exec":     true,
	"token":    true,
	"replsub":  true, // subscription registration must not race itself
}

// muxJob is one tagged request handed from the v2 reader to a worker
// lane. The payload is request-owned (freshly allocated by the reader),
// so workers never share buffers. trace and arrived are set only for
// requests that carried trace context on a traced session.
type muxJob struct {
	tag     uint64
	cmd     string
	args    []string
	payload []byte
	trace   uint64            // request-tracing ID (0 untraced)
	arrived time.Time         // when the frame was read off the wire (traced only)
	ticket  *admission.Ticket // admission pass (nil: admission off or exempt class)
}

// loopV2 is the tagged-frame session loop a successful version exchange
// switches into. The connection goroutine becomes the frame reader; an
// ordered lane (one goroutine, FIFO) executes conflicting commands in
// submission order while a small pool runs the rest concurrently. The
// credit window (acquireSlot) bounds requests in flight per session,
// applying backpressure by simply not reading the next frame.
func (sess *session) loopV2(conf *v2Conf) {
	s := sess.s
	window, maxBytes := conf.window, conf.maxBytes
	sess.replOK = conf.repl // workers start below: safely published
	sess.state.abort.Store(func() { sess.abort() })
	s.metrics.v2Sessions.Inc()
	sess.log.printf("upgraded to protocol 2 (window=%d maxbytes=%d traced=%v)", window, maxBytes, conf.traced)
	ordered := make(chan muxJob, window)
	pool := make(chan muxJob, window)
	var wg sync.WaitGroup
	worker := func(ch <-chan muxJob) {
		defer wg.Done()
		sc := scratchPool.Get().(*payloadScratch)
		defer scratchPool.Put(sc)
		for j := range ch {
			if sess.isStopping() {
				// Severed: the socket is gone, no reply can reach the
				// client — drop queued work instead of executing it.
				j.ticket.Done()
				sess.releaseSlot()
				continue
			}
			sess.serveTagged(j, sc)
			sess.releaseSlot()
		}
	}
	wg.Add(1)
	go worker(ordered)
	for i := 0; i < s.workers(); i++ {
		wg.Add(1)
		go worker(pool)
	}
	var closeOnce sync.Once
	closeLanes := func() {
		closeOnce.Do(func() {
			close(ordered)
			close(pool)
			wg.Wait() // all replies flushed before the codec is released
		})
	}
	defer closeLanes()
	for {
		if s.isDraining() {
			return // finish in-flight work, accept no more requests
		}
		h, err := sess.c.readFrameHeader()
		if err != nil {
			return // connection closed (or drain nudge expired the read)
		}
		// The per-request deadline bounds the rest of this frame's wire
		// I/O once its header has arrived, exactly as v1 bounded the
		// exchange once the command line arrived.
		if rt := s.opts.RequestTimeout; rt > 0 {
			if derr := sess.conn.SetReadDeadline(time.Now().Add(rt)); derr != nil {
				sess.log.printf("setting request deadline: %v", derr)
			}
		}
		line, err := sess.c.readFrameLine(h.lineLen)
		if err != nil {
			return
		}
		var payload []byte
		if h.payloadLen > 0 {
			payload = make([]byte, h.payloadLen)
			if err := sess.c.readPayloadInto(payload); err != nil {
				return
			}
		}
		if rt := s.opts.RequestTimeout; rt > 0 {
			if derr := sess.conn.SetReadDeadline(time.Time{}); derr != nil {
				sess.log.printf("clearing request deadline: %v", derr)
			}
		}
		fields, err := splitFields(line)
		if err != nil || len(fields) == 0 {
			if werr := sess.failTagged(h.tag, vfs.ErrInvalid, "malformed request"); werr != nil {
				return
			}
			continue
		}
		// A traced session's frames may lead with "trace <hexid>" before
		// the command; strip it here so every downstream consumer — lane
		// routing, dedupe, the handler — sees the plain line. A bare
		// 2-field "trace <hexid>" line is the trace-fetch RPC, not a
		// prefix, so prefixes need at least 3 fields.
		var trace uint64
		var arrived time.Time
		if conf.traced && len(fields) >= 3 && fields[0] == "trace" {
			if id, perr := obs.ParseTraceID(fields[1]); perr == nil && id != 0 {
				trace = id
				fields = fields[2:]
				arrived = time.Now()
			}
		}
		// A deadlined session's frames may lead with "deadline <ms>"
		// (after any trace prefix): the remaining budget in
		// milliseconds, anchored here at frame arrival. Like the trace
		// prefix, it needs at least 3 fields so a malformed bare line
		// cannot be mistaken for one.
		var deadline time.Time
		if conf.deadlined && len(fields) >= 3 && fields[0] == capDeadline {
			if ms, perr := strconv.ParseUint(fields[1], 10, 32); perr == nil {
				deadline = time.Now().Add(time.Duration(ms) * time.Millisecond)
				fields = fields[2:]
			}
		}
		cmd := fields[0]
		if cmd == "quit" {
			closeLanes() // every pending reply precedes the farewell ack
			sess.writeFrame(h.tag, []string{"ok"}, nil)
			return
		}
		s.requests.Add(1)
		sess.reqs++
		mcmd := cmd
		if cmd == "token" && len(fields) >= 3 {
			mcmd = fields[2] // count the inner command, as v1 does
		}
		s.metrics.reg.Counter(obs.With(MetricRequests, "cmd", mcmd)).Inc()
		sess.log.printf("req=%d tag=%d %s: %s %v", sess.reqs, h.tag, sess.ident, cmd, fields[1:])
		// Lane-queue admission: the overload controller sheds expired
		// work and rejects over a bounded queue here, before the
		// request consumes a window slot or a worker. Control-plane
		// commands ride the exempt class (nil ticket) so overload can
		// never choke lease heartbeats or replication traffic.
		var ticket *admission.Ticket
		if adm := s.opts.Admission; adm != nil {
			class := admission.Normal
			if controlCmds[mcmd] {
				class = admission.Control
			}
			tk, aerr := adm.Admit(sess.ident.String(), class, len(payload), deadline)
			if aerr != nil {
				if werr := sess.failAdmission(h.tag, aerr); werr != nil {
					return
				}
				continue
			}
			ticket = tk
		}
		if !sess.acquireSlot(window) {
			ticket.Done()
			return // server severing this session: stop reading
		}
		lane := pool
		if orderedCmds[cmd] {
			lane = ordered
		}
		lane <- muxJob{tag: h.tag, cmd: cmd, args: fields[1:], payload: payload, trace: trace, arrived: arrived, ticket: ticket}
	}
}

// controlCmds are the commands admitted on the exempt priority class:
// liveness probes, observability, and the replication control plane.
// Shedding any of these under overload would make saturation look like
// failure — a lease heartbeat probe timing out triggers failover, a
// shed replsub stalls a follower — so they bypass the admit queue and
// the fairness scheduler entirely.
var controlCmds = map[string]bool{
	"whoami":  true,
	"stats":   true,
	"metrics": true,
	"trace":   true,
	"waitlsn": true,
	"replsub": true,
	"replack": true,
	"assert":  true,
}

// failAdmission writes the typed rejection for an admission failure:
// EBUSY with the controller's retry-after hint, or EDEADLINE for a
// budget already expired at admit.
func (sess *session) failAdmission(tag uint64, aerr error) error {
	var be *admission.BusyError
	if errors.As(aerr, &be) {
		ms := be.RetryAfter.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		// The hint rides in the error text (failf sends err.Error() as
		// the wire message); RetryAfterFromError parses it back out.
		return sess.failTagged(tag, fmt.Errorf("%w; %s%dms", ErrBusy, retryAfterMarker, ms), "")
	}
	return sess.failTagged(tag, fmt.Errorf("%w before admit", ErrDeadline), "")
}

// serveTagged executes one tagged request on a worker lane and writes
// its reply frame. sc is the worker's pooled payload scratch, reused
// for pread bodies (the frame is flushed before the scratch is reused).
func (sess *session) serveTagged(j muxJob, sc *payloadScratch) {
	s := sess.s
	// The admission ticket is released when the reply (or shed) is
	// decided, whatever path this request takes; Done on a nil ticket
	// (admission off, or an exempt control command) is a no-op.
	defer j.ticket.Done()
	cmd, args := j.cmd, j.args
	switch cmd {
	case "replsub":
		sess.serveReplSub(j)
		return
	case "replack":
		sess.serveReplAck(j)
		return
	}
	var dk string
	if cmd == "token" {
		if len(args) < 2 {
			sess.failTagged(j.tag, vfs.ErrInvalid, "token wants a token and a command")
			return
		}
		token, inner := args[0], args[1:]
		cmd, args = inner[0], inner[1:]
		if !tokenable[cmd] {
			sess.failTagged(j.tag, vfs.ErrInvalid, "command not tokenable: "+cmd)
			return
		}
		key := dedupeKey(sess.ident.String(), token)
		if stored, hit := s.dedupe.lookup(key); hit {
			s.metrics.dedupeHits.Inc()
			sess.log.printf("tag=%d %s: %s (token %s) replayed from dedupe", j.tag, sess.ident, cmd, token)
			sess.writeFrame(j.tag, stored, nil)
			return
		}
		dk = key
	}
	if rr := sess.roleRefusal(cmd, args); rr != nil {
		// Not the primary: refuse without touching dedupe — the retry
		// belongs to whichever server holds the lease, not this table.
		sess.writeFrame(j.tag, rr.fields, nil)
		return
	}
	// Worker-dispatch admission hop: wait for a fair execution slot,
	// shedding with EDEADLINE if the budget runs out in the queue —
	// the handler (and any WAL work) never runs for shed requests.
	if err := j.ticket.Acquire(); err != nil {
		sess.failTagged(j.tag, fmt.Errorf("%w awaiting dispatch", ErrDeadline), "")
		return
	}
	barrier := s.opts.Durability != nil && mutatingCmds[cmd]
	if j.trace == 0 {
		res := sess.handle(cmd, args, j.payload, sc.bytes, 0)
		if barrier && dk == "" && j.ticket.ExpiredAtBarrier() {
			// Durability-barrier hop: the op executed but its budget is
			// gone, so answer EDEADLINE instead of parking on the WAL —
			// applied-but-unacknowledged, exactly a client timeout's
			// semantics. Tokened requests are exempt: their reply must
			// be recorded for exactly-once replay, never a shed.
			res = sess.failf(fmt.Errorf("%w before durability barrier", ErrDeadline), "")
			barrier = false
		}
		sess.finishReply(res.fields, dk, barrier)
		sess.writeFrame(j.tag, res.fields, res.body)
		return
	}

	// Traced path: the same steps with wall-clock phase timings around
	// each, producing one "server" span covering frame arrival → reply
	// flushed. Virtual time is never touched.
	handlerStart := time.Now()
	res := sess.handle(cmd, args, j.payload, sc.bytes, j.trace)
	handlerDur := time.Since(handlerStart)
	if barrier && dk == "" && j.ticket.ExpiredAtBarrier() {
		res = sess.failf(fmt.Errorf("%w before durability barrier", ErrDeadline), "")
		barrier = false
	}
	var barrierWait, commitLat time.Duration
	if barrier {
		barrierWait, commitLat = sess.barrierBeforeReply(dk, true)
	}
	sess.recordReply(res.fields, dk)
	replyStart := time.Now()
	sess.writeFrame(j.tag, res.fields, res.body)
	now := time.Now()
	total := now.Sub(j.arrived)
	s.metrics.requestLat.ObserveExemplar(float64(total.Microseconds()), j.trace)

	sp := obs.Span{
		Trace:  j.trace,
		TraceS: obs.FormatTraceID(j.trace),
		ID:     s.opts.Spans.NextSpanID(),
		Name:   "server",
		Cmd:    cmd,
		Start:  j.arrived,
		Dur:    total,
	}
	if len(res.fields) > 0 && res.fields[0] == "err" {
		sp.Err = strings.Join(res.fields[1:], " ")
	}
	queueWait := handlerStart.Sub(j.arrived)
	sp.Phase("lane.queue", 0, queueWait)
	sp.Phase("handler", queueWait, handlerDur)
	if barrier {
		off := queueWait + handlerDur
		sp.Phase("barrier.wait", off, barrierWait)
		if commitLat > 0 {
			// The covering group's write+fsync finished when the barrier
			// released, so the phase ends at the barrier's end; it may
			// start before the barrier did (the group was already under
			// way), clamped to the span.
			gOff := off + barrierWait - commitLat
			if gOff < 0 {
				gOff = 0
			}
			sp.Phase("wal.group", gOff, commitLat)
		}
	}
	sp.Phase("reply", replyStart.Sub(j.arrived), now.Sub(replyStart))
	s.opts.Spans.Record(sp)

	if tl := s.opts.TraceLog; tl != nil && total >= s.opts.TraceSlow {
		if err := tl.RecordValue(sp); err != nil {
			sess.log.printf("slow-request log: %v", err)
		}
	}
}

// writeFrame sends one tagged reply frame, serialized on writeMu so
// concurrent workers interleave whole frames, never partial ones.
func (sess *session) writeFrame(tag uint64, fields []string, body []byte) error {
	sess.writeMu.Lock()
	defer sess.writeMu.Unlock()
	if rt := sess.s.opts.RequestTimeout; rt > 0 {
		if err := sess.conn.SetWriteDeadline(time.Now().Add(rt)); err != nil {
			sess.log.printf("setting reply deadline: %v", err)
		}
		defer func() {
			if err := sess.conn.SetWriteDeadline(time.Time{}); err != nil {
				sess.log.printf("clearing reply deadline: %v", err)
			}
		}()
	}
	if err := sess.c.queueFrame(tag, fields, body); err != nil {
		return err
	}
	return sess.c.flush()
}

// failTagged writes a counted error reply frame for tag.
func (sess *session) failTagged(tag uint64, err error, context string) error {
	res := sess.failf(err, context)
	return sess.writeFrame(tag, res.fields, nil)
}

// serveReplSub handles `replsub <fromLSN>`: it registers the session
// as a replication follower and answers with its catch-up — either the
// WAL tail past fromLSN ("ok tail <epoch> <first> <last> <records>
// <len>" plus the frames) or, when compaction already dropped that
// history, a full snapshot ("ok snap <epoch> <lsn> <len>" plus the
// blob). From then on every committed group is pushed to the session
// as a replPushTag frame until the session ends or the subscriber
// falls too far behind (a "replgap" push tells it to resubscribe).
// Runs on the ordered lane so a session cannot race two registrations.
func (sess *session) serveReplSub(j muxJob) {
	s := sess.s
	pub := s.opts.Repl
	if pub == nil || !sess.replOK {
		sess.failTagged(j.tag, kernel.ErrNoSys, "replication not negotiated")
		return
	}
	if len(j.args) != 1 {
		sess.failTagged(j.tag, vfs.ErrInvalid, "replsub wants a start lsn")
		return
	}
	from, err := strconv.ParseUint(j.args[0], 10, 64)
	if err != nil {
		sess.failTagged(j.tag, vfs.ErrInvalid, "bad replsub lsn")
		return
	}
	sess.replMu.Lock()
	if sess.replSub != nil {
		sess.replMu.Unlock()
		sess.failTagged(j.tag, vfs.ErrInvalid, "session already subscribed")
		return
	}
	sub, catchup, snap, snapLSN, err := pub.Subscribe(from)
	if err != nil {
		sess.replMu.Unlock()
		sess.failTagged(j.tag, err, "replsub")
		return
	}
	sess.replSub = sub
	sess.replMu.Unlock()
	sess.log.printf("replication subscriber from lsn %d (%s)", from, sess.ident)
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	switch {
	case snap != nil:
		sess.writeFrame(j.tag, []string{"ok", "snap", u(pub.Epoch()), u(snapLSN), strconv.Itoa(len(snap))}, snap)
	case catchup != nil:
		sess.writeFrame(j.tag, []string{"ok", "tail", u(catchup.Epoch), u(catchup.First), u(catchup.Last),
			strconv.Itoa(catchup.Records), strconv.Itoa(len(catchup.Frames))}, catchup.Frames)
	default:
		sess.writeFrame(j.tag, []string{"ok", "tail", u(pub.Epoch()), "0", "0", "0", "0"}, nil)
	}
	sess.pushWG.Add(1)
	go sess.replPush(sub)
}

// serveReplAck handles `replack <lsn>`: the follower's applied horizon,
// which releases the primary's semi-sync barriers at or below it.
func (sess *session) serveReplAck(j muxJob) {
	if len(j.args) != 1 {
		sess.failTagged(j.tag, vfs.ErrInvalid, "replack wants an lsn")
		return
	}
	lsn, err := strconv.ParseUint(j.args[0], 10, 64)
	if err != nil {
		sess.failTagged(j.tag, vfs.ErrInvalid, "bad replack lsn")
		return
	}
	sess.replMu.Lock()
	sub := sess.replSub
	sess.replMu.Unlock()
	if sub == nil {
		sess.failTagged(j.tag, vfs.ErrInvalid, "no replication subscription")
		return
	}
	sub.Ack(lsn)
	sess.writeFrame(j.tag, []string{"ok"}, nil)
}

// replPush streams the subscription's batches to the session as pushed
// frames. It exits when the channel closes: a publisher-side cut
// (overflow or shutdown) gets a final "replgap" push so the follower
// knows to resubscribe rather than wait forever; a session-side close
// just ends (the transport is going away with it).
func (sess *session) replPush(sub *replica.Subscription) {
	defer sess.pushWG.Done()
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for b := range sub.C {
		fields := []string{"replpush", u(b.Epoch), u(b.First), u(b.Last),
			strconv.Itoa(b.Records), strconv.Itoa(len(b.Frames))}
		if err := sess.writeFrame(replPushTag, fields, b.Frames); err != nil {
			sub.Close()
			return
		}
	}
	sess.writeFrame(replPushTag, []string{"replgap"}, nil)
}

// acquireSlot blocks until the session's credit window has room, then
// claims a slot. Called only by the frame reader, so blocking here is
// the backpressure: the next frame is not read until a slot frees.
func (sess *session) acquireSlot(window int) bool {
	sess.slotMu.Lock()
	for sess.inflight >= window && !sess.stopping {
		sess.s.metrics.bpStalls.Inc()
		sess.slotCond.Wait()
	}
	if sess.stopping {
		sess.slotMu.Unlock()
		return false
	}
	sess.inflight++
	sess.s.metrics.occupancy.Observe(float64(sess.inflight))
	sess.s.metrics.tagsInFlight.Inc()
	if sess.inflight == 1 {
		sess.state.busy.Store(true)
	}
	sess.slotMu.Unlock()
	return true
}

// abort marks the session severed: it wakes a frame reader parked on
// the credit window (acquireSlot returns false) and makes the lane
// workers drop queued jobs. Called by Close and by Shutdown's sever
// path; without it a reader parked behind a window full of slow work
// would hold its connection goroutine — and therefore Close — hostage
// until every queued job had executed toward the already-dead socket.
func (sess *session) abort() {
	sess.slotMu.Lock()
	sess.stopping = true
	sess.slotCond.Broadcast()
	sess.slotMu.Unlock()
}

// isStopping reports whether abort has severed this session.
func (sess *session) isStopping() bool {
	sess.slotMu.Lock()
	defer sess.slotMu.Unlock()
	return sess.stopping
}

// releaseSlot returns a worker's slot after its reply is on the wire.
// When the last in-flight request completes during a drain, the blocked
// frame reader cannot see the drain flag, so the release expires its
// read — the v2 equivalent of Shutdown's nudge to idle v1 sessions.
func (sess *session) releaseSlot() {
	sess.slotMu.Lock()
	sess.inflight--
	idle := sess.inflight == 0
	if idle {
		sess.state.busy.Store(false)
	}
	sess.s.metrics.tagsInFlight.Dec()
	sess.slotCond.Signal()
	sess.slotMu.Unlock()
	// The drain check must run outside slotMu: Close and Shutdown sever
	// sessions (taking slotMu) while holding the server mutex isDraining
	// needs, so nesting the two here would invert the lock order.
	if idle && sess.s.isDraining() {
		if err := sess.conn.SetReadDeadline(time.Now()); err != nil {
			sess.log.printf("drain nudge: %v", err)
		}
	}
}

func (sess *session) open(path string, flags int, mode uint32, trace uint64) (int, error) {
	s := sess.s
	var classes []acl.Rights
	switch flags & 3 {
	case kernel.ORdonly:
		classes = []acl.Rights{acl.Read}
	case kernel.OWronly:
		classes = []acl.Rights{acl.Write}
	case kernel.ORdwr:
		classes = []acl.Rights{acl.Read, acl.Write}
	}
	if flags&kernel.OCreat != 0 {
		classes = append(classes, acl.Write)
	}
	for _, cl := range classes {
		if cl == acl.Write {
			if err := sess.checkACLFileWrite(path); err != nil {
				return 0, err
			}
		} else if err := sess.checkF(path, cl); err != nil {
			return 0, err
		}
	}
	st, err := s.fs.Stat(path)
	exists := err == nil
	switch {
	case !exists && flags&kernel.OCreat == 0:
		return 0, err
	case exists && flags&(kernel.OCreat|kernel.OExcl) == kernel.OCreat|kernel.OExcl:
		return 0, vfs.ErrExist
	case exists && st.IsDir():
		return 0, vfs.ErrIsDir
	}
	if !exists {
		if _, err := s.fs.Traced(trace).Create(path, mode, s.opts.Owner); err != nil {
			return 0, err
		}
	}
	h, err := s.fs.OpenHandle(path)
	if err != nil {
		return 0, err
	}
	if flags&kernel.OTrunc != 0 && flags&3 != kernel.ORdonly {
		if err := h.TruncateTraced(0, trace); err != nil {
			return 0, err
		}
	}
	return sess.addFD(&sessionFD{h: h, path: path, flags: flags}), nil
}

// present verifies a CAS assertion and installs its grants.
func (sess *session) present(data []byte) (community string, err error) {
	s := sess.s
	if s.opts.CASTrust == nil {
		return "", errors.New("server trusts no community authorization service")
	}
	a, err := auth.DecodeAssertion(data)
	if err != nil {
		return "", err
	}
	if a.Subject != sess.ident {
		return "", fmt.Errorf("assertion subject %q is not this session's identity", a.Subject)
	}
	if err := s.opts.CASTrust.Verify(a); err != nil {
		return "", err
	}
	sess.grantsMu.Lock()
	sess.grants = append(sess.grants, a.Grants...)
	sess.grantsMu.Unlock()
	sess.log.printf("%s: presented CAS assertion from %s (%s), %d grants", sess.ident, a.CAS, a.Community, len(a.Grants))
	return a.Community, nil
}

// grantsAllow reports whether a verified CAS grant covers the path with
// the wanted rights. Prefix matching respects component boundaries.
func (sess *session) grantsAllow(path string, want acl.Rights) bool {
	final := sess.s.resolveFinal(path)
	sess.grantsMu.RLock()
	defer sess.grantsMu.RUnlock()
	for _, g := range sess.grants {
		prefix := vfs.Clean(g.PathPrefix)
		if !(prefix == "/" || final == prefix ||
			(len(final) > len(prefix) && final[:len(prefix)] == prefix && final[len(prefix)] == '/')) {
			continue
		}
		r, err := acl.ParseRights(g.Rights)
		if err != nil {
			continue
		}
		if r.Has(want) {
			return true
		}
	}
	return false
}

// checkF is the per-session file check: local ACLs first, then
// community grants.
func (sess *session) checkF(path string, want acl.Rights) error {
	if err := sess.s.checkFile(sess.ident, path, want); err == nil {
		return nil
	}
	if sess.grantsAllow(path, want) {
		return nil
	}
	return vfs.ErrPermission
}

// checkD is the per-session directory check.
func (sess *session) checkD(dir string, want acl.Rights) error {
	if err := sess.s.checkDir(sess.ident, dir, want); err == nil {
		return nil
	}
	if sess.grantsAllow(dir, want) {
		return nil
	}
	return vfs.ErrPermission
}

// checkACLFileWrite is the write check plus the rule that the ACL file
// itself takes Admin to modify.
func (sess *session) checkACLFileWrite(path string) error {
	class := acl.Write
	if vfs.Base(path) == acl.FileName {
		class = acl.Admin
	}
	return sess.checkF(path, class)
}

// mkdir implements the reserve-right semantics on the server side.
func (sess *session) mkdir(path string, mode uint32, trace uint64) error {
	s := sess.s
	parent := vfs.Dir(path)
	a, err := s.aclFor(parent)
	if err != nil {
		return err
	}
	rights, reserve := a.Lookup(sess.ident)
	var childACL *acl.ACL
	switch {
	case rights.Has(acl.Write):
		childACL = a.Clone()
	case rights.Has(acl.Reserve):
		childACL = acl.ReserveChild(sess.ident, reserve)
	case sess.grantsAllow(parent, acl.Write):
		// Community-granted write: inherit like a local w holder, and
		// keep the creator in control of the new directory.
		childACL = a.Clone()
		childACL.Set(sess.ident.String(), acl.All, acl.None)
	default:
		return vfs.ErrPermission
	}
	tfs := s.fs.Traced(trace)
	if err := tfs.Mkdir(path, mode, s.opts.Owner); err != nil {
		return err
	}
	return tfs.WriteFile(vfs.Join(path, acl.FileName), []byte(childACL.String()), 0o644, s.opts.Owner)
}

// exec runs the staged program at path inside an identity box carrying
// the session's principal, with the given working directory: the heart
// of Figure 3.
func (sess *session) exec(cwd, path string, args []string) (code int, runtimeSeconds float64, err error) {
	s := sess.s
	if err := sess.checkF(path, acl.Read); err != nil {
		return 0, 0, err
	}
	if err := sess.checkF(path, acl.Execute); err != nil {
		return 0, 0, err
	}
	box, err := core.New(s.k, s.opts.Owner, sess.ident, core.Options{
		HomeBase:  "/.boxhomes",
		ShadowDir: "/.boxshadow",
	})
	if err != nil {
		return 0, 0, err
	}
	st := box.RunAt(cwd, func(p *kernel.Proc, bootArgs []string) int {
		pid, err := p.Spawn(path, bootArgs...)
		if err != nil {
			return 127
		}
		_, status, err := p.Wait(pid)
		if err != nil {
			return 127
		}
		return status
	}, args...)
	return st.Code, st.Runtime.Seconds(), nil
}

// --- server-side ACL checks ---------------------------------------------

// aclFor finds the effective ACL for dir: its own ACL file, or the
// nearest ancestor's (Chirp's space is fully virtual: ACLs exist from
// the root down, and mkdir always installs one).
func (s *Server) aclFor(dir string) (*acl.ACL, error) {
	dir = vfs.Clean(dir)
	for {
		data, err := s.fs.ReadFile(vfs.Join(dir, acl.FileName))
		if err == nil {
			a, perr := acl.Parse(string(data))
			if perr != nil {
				return &acl.ACL{}, nil // fail closed on malformed ACLs
			}
			return a, nil
		}
		if !errors.Is(err, vfs.ErrNotExist) {
			return nil, err
		}
		if dir == "/" {
			return &acl.ACL{}, nil // no ACL anywhere: grant nothing
		}
		dir = vfs.Dir(dir)
	}
}

const maxServerSymlinks = 10

// resolveFinal chases symlinks so checks apply to targets.
func (s *Server) resolveFinal(path string) string {
	cur := vfs.Clean(path)
	for i := 0; i < maxServerSymlinks; i++ {
		st, err := s.fs.Lstat(cur)
		if err != nil || st.Type != vfs.TypeSymlink {
			return cur
		}
		target, err := s.fs.Readlink(cur)
		if err != nil {
			return cur
		}
		if len(target) > 0 && target[0] == '/' {
			cur = vfs.Clean(target)
		} else {
			cur = vfs.Join(vfs.Dir(cur), target)
		}
	}
	return cur
}

// checkFile authorizes an operation on the file at path, governed by
// the ACL of the directory containing the (symlink-resolved) target.
func (s *Server) checkFile(ident identity.Principal, path string, want acl.Rights) error {
	final := s.resolveFinal(path)
	a, err := s.aclFor(vfs.Dir(final))
	if err != nil {
		return err
	}
	if !a.Allows(ident, want) {
		return vfs.ErrPermission
	}
	return nil
}

// checkFileNoFollow authorizes an operation on the link itself.
func (s *Server) checkFileNoFollow(ident identity.Principal, path string, want acl.Rights) error {
	a, err := s.aclFor(vfs.Dir(vfs.Clean(path)))
	if err != nil {
		return err
	}
	if !a.Allows(ident, want) {
		return vfs.ErrPermission
	}
	return nil
}

// checkDir authorizes an operation governed by the directory's own ACL.
func (s *Server) checkDir(ident identity.Principal, dir string, want acl.Rights) error {
	a, err := s.aclFor(s.resolveFinal(dir))
	if err != nil {
		return err
	}
	if !a.Allows(ident, want) {
		return vfs.ErrPermission
	}
	return nil
}
