package chirp

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"identitybox/internal/auth"
	"identitybox/internal/core"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/replica"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// chaosSeed reads the chaos matrix's RNG seed from CHIRP_CHAOS_SEED
// (default 1) and logs it so a failing run can be replayed exactly.
func chaosSeed(t *testing.T) int64 {
	seed := int64(1)
	if s := os.Getenv("CHIRP_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHIRP_CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (override with CHIRP_CHAOS_SEED)", seed)
	return seed
}

// fastChaosOpts surfaces failures immediately instead of retrying into
// a dead primary.
func fastChaosOpts() ClientOptions {
	return ClientOptions{MaxRetries: 1, BreakerThreshold: 1000, Sleep: func(time.Duration) {}}
}

// replWorkflow runs the Figure 3 workflow one acked step at a time and
// reports how many steps were acknowledged before the first failure.
// Every step tolerates its own effects already existing, so the same
// call (with the same token) is the client's retry after a failover.
func replWorkflow(cl *Client, token string) (int, error) {
	steps := []func() error{
		func() error {
			err := cl.Mkdir("/work", 0o755)
			if errors.Is(err, vfs.ErrExist) {
				return nil
			}
			return err
		},
		func() error { return cl.PutFile("/work/sim.exe", kernel.ExecutableBytes("sim"), 0o755) },
		func() error { return cl.PutFile("/work/input.dat", []byte("signal data"), 0o644) },
		func() error {
			res, err := cl.ExecToken(token, "/work", "/work/sim.exe")
			if err != nil {
				return err
			}
			if res.Code != 0 {
				return fmt.Errorf("sim exited %d", res.Code)
			}
			return nil
		},
		func() error {
			out, err := cl.GetFile("/work/out.dat")
			if err != nil {
				return err
			}
			if string(out) != "SIGNAL DATA" {
				return fmt.Errorf("out.dat = %q", out)
			}
			return nil
		},
	}
	for i, step := range steps {
		if err := step(); err != nil {
			return i, err
		}
	}
	return len(steps), nil
}

// leaseCatalog starts a catalog arbitrating replTTL leases.
func leaseCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()
	cat.LeaseTTL = replTTL
	if err := cat.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	return cat
}

// TestPromotionChaosMatrix kills the primary at every commit-group
// boundary of the Figure 3 workflow and proves, for each boundary, that
// the promoted follower holds every acked mutation and that the
// client's tokened retry is exactly-once across the failover.
func TestPromotionChaosMatrix(t *testing.T) {
	seed := chaosSeed(t)

	// Discovery run: a clean workflow tells us how many commit groups it
	// ships, which is the kill matrix's size.
	var groups int64
	t.Run("discover", func(t *testing.T) {
		cat := leaseCatalog(t)
		primary := startReplMember(t, "vol", cat.Addr(), "")
		follower := startReplMember(t, "vol", cat.Addr(), primary.addr)
		pollUntil(t, 2*time.Second, "follower subscription", func() bool { return primary.pub.Subscribers() == 1 })
		// Count workflow groups only: setup ships its own (the primary's
		// epoch-adoption record), which are not kill boundaries.
		base := primary.shipped.Load()
		cl := adminClient(t, primary.srv, fastChaosOpts())
		if acked, err := replWorkflow(cl, NewRequestToken()); err != nil || acked != 5 {
			t.Fatalf("clean workflow acked %d/5 steps: %v", acked, err)
		}
		if follower.role() != replica.RoleFollower {
			t.Fatalf("follower role = %s", follower.role())
		}
		groups = primary.shipped.Load() - base
	})
	if groups == 0 {
		t.Fatal("discovery run shipped no commit groups")
	}
	t.Logf("clean workflow ships %d commit groups", groups)

	kills := make([]int64, 0, groups)
	if testing.Short() {
		// A reduced matrix: first boundary, an early middle one, the last.
		kills = append(kills, 1)
		if groups > 2 {
			kills = append(kills, 2)
		}
		if groups > 1 {
			kills = append(kills, groups)
		}
	} else {
		for k := int64(1); k <= groups; k++ {
			kills = append(kills, k)
		}
	}

	for _, k := range kills {
		k := k
		t.Run(fmt.Sprintf("kill-after-group-%d", k), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + k))
			cat := leaseCatalog(t)
			primary := startReplMember(t, "vol", cat.Addr(), "")
			follower := startReplMember(t, "vol", cat.Addr(), primary.addr)
			pollUntil(t, 2*time.Second, "follower subscription", func() bool { return primary.pub.Subscribers() == 1 })
			// Jitter the crash 0–2ms past the boundary so repeated runs
			// land in different spots of the post-commit window, then arm
			// it at the k-th workflow group (setup's own groups excluded).
			primary.killDelay.Store(int64(time.Duration(rng.Intn(2_000_001))))
			primary.armKill(k)

			token := NewRequestToken()
			cl := adminClient(t, primary.srv, fastChaosOpts())
			acked, err := replWorkflow(cl, token)
			if err != nil {
				t.Logf("workflow lost the primary at step %d: %v", acked, err)
			}
			// The workflow can outrun a late boundary; the matrix still
			// wants a dead primary. kill is idempotent.
			primary.kill()
			pollUntil(t, 10*replTTL, "follower promotion", func() bool { return follower.role() == replica.RolePrimary })

			// Every mutation the dead primary acked must already be on the
			// promoted follower, before any retry runs.
			fcl := adminClient(t, follower.srv, ClientOptions{})
			ackChecks := []struct {
				path string
				want string // "" = existence only
			}{
				{"/work", ""},
				{"/work/sim.exe", ""},
				{"/work/input.dat", "signal data"},
				{"/work/out.dat", "SIGNAL DATA"},
			}
			for i, c := range ackChecks {
				if acked < i+1 {
					break
				}
				if c.want == "" {
					if _, err := fcl.Stat(c.path); err != nil {
						t.Fatalf("acked step %d lost across failover: %s: %v", i, c.path, err)
					}
				} else if data, err := fcl.GetFile(c.path); err != nil || string(data) != c.want {
					t.Fatalf("acked step %d lost across failover: %s = %q, %v", i, c.path, data, err)
				}
			}
			execAcked := acked >= 4

			// The client retries the whole workflow against the promoted
			// follower with the same request token.
			if acked2, err := replWorkflow(fcl, token); err != nil || acked2 != 5 {
				t.Fatalf("retry on the promoted follower died at step %d: %v", acked2, err)
			}
			if execAcked && follower.execs.Load() != 0 {
				t.Fatalf("acked exec ran again on the promoted follower (%d times)", follower.execs.Load())
			}
			pExecs, fExecs := primary.execs.Load(), follower.execs.Load()
			if pExecs+fExecs < 1 {
				t.Fatal("sim never executed anywhere")
			}
			t.Logf("acked %d/5 steps before the kill; execs primary=%d follower=%d", acked, pExecs, fExecs)
		})
	}
}

// TestFailoverDriverDegradedClears: with a catalog watch and reprobe
// running, a boxed application's writes stop returning ErrDegraded as
// soon as the lease moves — the driver re-points at the promoted
// follower without any manual intervention.
func TestFailoverDriverDegradedClears(t *testing.T) {
	cat := leaseCatalog(t)
	primary := startReplMember(t, "vol", cat.Addr(), "")
	follower := startReplMember(t, "vol", cat.Addr(), primary.addr)
	pollUntil(t, 2*time.Second, "follower subscription", func() bool { return primary.pub.Subscribers() == 1 })

	fast := ClientOptions{MaxRetries: 1, BreakerThreshold: 1, BreakerCooloff: time.Hour, Sleep: func(time.Duration) {}}
	c1 := adminClient(t, primary.srv, fast)
	c2 := adminClient(t, follower.srv, fast)
	reg := obs.NewRegistry()
	fd := NewFailoverDriverOpts(
		[]*Driver{NewDriver(c1, vclock.Default()), NewDriver(c2, vclock.Default())},
		FailoverOptions{Name: "vol", CatalogAddr: cat.Addr(), Metrics: reg},
	)
	defer fd.Stop()
	if !fd.StartCatalogWatch("", 25*time.Millisecond) {
		t.Fatal("catalog watch refused to start")
	}
	if !fd.StartReprobe(25 * time.Millisecond) {
		t.Fatal("reprobe refused to start")
	}

	clientFS := vfs.New("dthain")
	clientK := kernel.New(clientFS, vclock.Default())
	clientFS.MkdirAll("/tmp", 0o777, "dthain")
	box, err := core.New(clientK, "dthain", "unix:admin", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	box.Mount("/vol", fd)

	write := func(path string) error {
		var werr error
		box.Run(func(p *kernel.Proc, _ []string) int {
			werr = fd.WriteFileSmall(p, path, []byte("payload"), 0o644)
			return 0
		})
		return werr
	}
	if err := write("/before.txt"); err != nil {
		t.Fatalf("write before the kill: %v", err)
	}

	killed := time.Now()
	primary.kill()
	var cleared time.Duration
	deadline := killed.Add(20 * replTTL)
	for {
		err := write("/after.txt")
		if err == nil {
			cleared = time.Since(killed)
			break
		}
		if !errors.Is(err, ErrDegraded) && !errors.Is(err, ErrNotPrimary) {
			t.Fatalf("write failed with %v, want ErrDegraded/ErrNotPrimary while failing over", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes still degraded %v after the kill: %v", time.Since(killed), err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("ErrDegraded cleared %v after the primary kill (lease ttl %v)", cleared, replTTL)
	if follower.role() != replica.RolePrimary {
		t.Fatalf("write cleared but the follower is %s", follower.role())
	}
	// The write landed on the promoted member.
	fcl := adminClient(t, follower.srv, ClientOptions{})
	if data, err := fcl.GetFile("/after.txt"); err != nil || string(data) != "payload" {
		t.Fatalf("cleared write missing on the new primary: %q, %v", data, err)
	}
	// The dead member's open breaker is being reprobed in the background.
	pollUntil(t, 2*time.Second, "background reprobe", func() bool {
		return reg.Counter(MetricFailoverReprobes).Value() >= 1
	})
}

// TestMountAllReplicatedV2Pipelining: MountAll over a replicated
// catalog builds a failover mount whose members negotiated protocol v2;
// concurrent reads pipeline over the shared sessions, writes through
// the mount reach the primary and replicate, and reads keep working
// through the mount after the primary dies.
func TestMountAllReplicatedV2Pipelining(t *testing.T) {
	cat := leaseCatalog(t)
	primary := startReplMember(t, "vol", cat.Addr(), "")
	startReplMember(t, "vol", cat.Addr(), primary.addr)
	pollUntil(t, 2*time.Second, "follower subscription", func() bool { return primary.pub.Subscribers() == 1 })
	pollUntil(t, 2*time.Second, "both heartbeats", func() bool { return len(cat.Entries()) == 2 })

	clientFS := vfs.New("dthain")
	clientK := kernel.New(clientFS, vclock.Default())
	clientFS.MkdirAll("/tmp", 0o777, "dthain")
	box, err := core.New(clientK, "dthain", "unix:admin", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clients, err := MountAll(box, cat.Addr(), []auth.Authenticator{&auth.UnixClient{User: "admin"}}, vclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(clients)
	if len(clients) != 2 {
		t.Fatalf("mounted %d clients, want 2", len(clients))
	}
	for _, cl := range clients {
		if cl.Protocol() != ProtocolV2 {
			t.Fatalf("%s negotiated protocol %d, want v2", cl.Addr(), cl.Protocol())
		}
	}

	// A write through the replica-set mount follows the primary role.
	st := box.Run(func(p *kernel.Proc, _ []string) int {
		if err := p.WriteFile("/chirp/vol/shared.txt", []byte("replicated"), 0o644); err != nil {
			t.Errorf("write through the failover mount: %v", err)
			return 1
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("boxed write exit = %d", st.Code)
	}

	// Wait until both members applied it, then hammer both sessions with
	// pipelined concurrent reads — the v2 mux interleaves them on the
	// two shared connections.
	var horizon uint64
	for _, cl := range clients {
		if s, err := cl.Stats(); err == nil && s.AppliedLSN > horizon {
			horizon = s.AppliedLSN
		}
	}
	for _, cl := range clients {
		if _, err := cl.WaitLSN(horizon, 2*time.Second); err != nil {
			t.Fatalf("%s never caught up to lsn %d: %v", cl.Addr(), horizon, err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 4; i++ {
		for _, cl := range clients {
			cl := cl
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 4; j++ {
					data, err := cl.GetFile("/shared.txt")
					if err != nil {
						errs <- fmt.Errorf("%s: %w", cl.Addr(), err)
						return
					}
					if string(data) != "replicated" {
						errs <- fmt.Errorf("%s read %q", cl.Addr(), data)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Reads through the mount survive the primary's death.
	primary.kill()
	st = box.Run(func(p *kernel.Proc, _ []string) int {
		data, err := p.ReadFile("/chirp/vol/shared.txt")
		if err != nil || string(data) != "replicated" {
			t.Errorf("read through the mount after the primary died = %q, %v", data, err)
			return 1
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("post-kill boxed read exit = %d", st.Code)
	}
}
