package chirp

import (
	"bufio"
	"sync"
	"sync/atomic"
)

// MaxPayload is the protocol's maximum counted-payload size: no request
// or reply body may exceed it, and the codec refuses wire-supplied
// lengths above it before allocating anything — a hostile peer cannot
// force a huge allocation by announcing one.
const MaxPayload = 1 << 22

// wireBufSize sizes the pooled bufio readers and writers. 32 KiB fits
// the common pread/pwrite chunk (64 KiB bodies still pass through in
// two fills) without pinning much memory per idle connection.
const wireBufSize = 32 << 10

// payloadScratch is a codec's reusable payload buffer. Each codec owns
// one for its lifetime (single-goroutine use), and the wrapper returns
// to scratchPool on codec release so connections recycle each other's
// grown buffers instead of allocating per call.
type payloadScratch struct{ buf []byte }

// bytes returns an n-byte view of the scratch, growing it if needed —
// the same hit/miss accounting as codec.scratchBuf, for holders that
// use a pooled scratch without a codec (v2 server workers).
func (ps *payloadScratch) bytes(n int) []byte {
	if cap(ps.buf) >= n {
		poolHits.Add(1)
	} else {
		poolMisses.Add(1)
		ps.buf = make([]byte, n)
	}
	return ps.buf[:n]
}

var (
	brPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, wireBufSize) }}
	bwPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, wireBufSize) }}

	scratchPool = sync.Pool{New: func() any {
		return &payloadScratch{buf: make([]byte, 0, 64<<10)}
	}}
)

// Pool effectiveness counters, process-wide: a hit serves a payload
// from a codec's existing scratch capacity, a miss had to grow it.
// Servers mirror them into their registries (see session.reply).
var poolHits, poolMisses atomic.Int64
