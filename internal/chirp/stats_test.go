package chirp

import (
	"crypto/rsa"
	"strings"
	"testing"

	"identitybox/internal/acl"
	"identitybox/internal/auth"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// TestStatsMatchClientTallies drives a handful of RPCs and checks the
// wire-visible counters against the client's own bookkeeping: every
// request the client sent must show up in the server's dispatch count,
// and the byte counters must be live and nonzero.
func TestStatsMatchClientTallies(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")

	if err := cl.Mkdir("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFile("/data/f", []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetFile("/data/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("/data/f"); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The client counts every line it sends, including the stats
	// request itself; the server counts every line it dispatches.
	// With a single client they must agree exactly.
	if st.Requests != cl.RequestCount() {
		t.Errorf("server dispatched %d requests, client sent %d", st.Requests, cl.RequestCount())
	}
	if st.Sessions != 1 {
		t.Errorf("sessions = %d, want 1", st.Sessions)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Errors)
	}
	if st.RxBytes <= 0 || st.TxBytes <= 0 {
		t.Errorf("byte counters not live: rx=%d tx=%d", st.RxBytes, st.TxBytes)
	}
	// The handshake happens before any RPC, so the server must have
	// read more bytes than the RPC lines alone would account for.
	if st.Name != "testserver" {
		t.Errorf("name = %q", st.Name)
	}

	// A second stats call advances the dispatch count in lockstep.
	st2, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Requests != st.Requests+1 {
		t.Errorf("requests went %d -> %d, want +1", st.Requests, st2.Requests)
	}
	if st2.TxBytes <= st.TxBytes {
		t.Errorf("tx bytes did not advance: %d -> %d", st.TxBytes, st2.TxBytes)
	}
}

// TestStatsCountErrors checks that denied operations increment the
// error counter visible over the wire.
func TestStatsCountErrors(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")

	// The root directory grants Fred reserve, not write: creating a
	// file directly under / must fail and count as an error.
	if err := cl.PutFile("/forbidden", []byte("x"), 0o644); err == nil {
		t.Fatal("expected a denial writing to /")
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors == 0 {
		t.Error("denied RPC did not count as an error")
	}
	if got := srv.ErrorCount(); got != st.Errors {
		t.Errorf("ErrorCount() = %d, stats reply says %d", got, st.Errors)
	}
}

// TestMetricsRPC fetches the Prometheus exposition over the wire and
// checks the per-command series reflect the RPCs this session issued.
func TestMetricsRPC(t *testing.T) {
	srv, _, ca := testServer(t)
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")

	if err := cl.Mkdir("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}
	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`chirp_requests_total{cmd="mkdir"} 1`,
		`chirp_requests_total{cmd="stats"} 1`,
		`chirp_requests_total{cmd="metrics"} 1`,
		"chirp_sessions_total 1",
		"chirp_open_conns 1",
		"chirp_rx_bytes_total",
		"chirp_tx_bytes_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// The server's registry is the same one serving the RPC.
	if got := srv.Metrics().Counter(obs.With(MetricRequests, "cmd", "mkdir")).Value(); got != 1 {
		t.Errorf("registry mkdir count = %d", got)
	}
}

// TestSharedRegistryAcrossServers checks the get-or-create semantics:
// two servers handed the same registry via ServerOptions.Metrics
// aggregate into shared series.
func TestSharedRegistryAcrossServers(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 2; i++ {
		srv, ca := testServerWithRegistry(t, reg)
		cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Fred")
		if _, err := cl.Whoami(); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(MetricSessions).Value(); got != 2 {
		t.Errorf("shared sessions counter = %d, want 2", got)
	}
	if got := reg.Counter(obs.With(MetricRequests, "cmd", "whoami")).Value(); got != 2 {
		t.Errorf("shared whoami counter = %d, want 2", got)
	}
}

func testServerWithRegistry(t *testing.T, reg *obs.Registry) (*Server, *auth.CA) {
	t.Helper()
	fs := vfs.New("chirpowner")
	k := kernel.New(fs, vclock.Default())
	ca, err := auth.NewCA("UnivNowhereCA")
	if err != nil {
		t.Fatal(err)
	}
	rootACL := &acl.ACL{}
	rootACL.Set("globus:/O=UnivNowhere/*", acl.Reserve|acl.List, acl.All)
	srv, err := NewServer(k, ServerOptions{
		Name:    "shared",
		Owner:   "chirpowner",
		RootACL: rootACL,
		Metrics: reg,
		Verifiers: map[auth.Method]auth.Verifier{
			auth.MethodGlobus: &auth.GSIVerifier{TrustedCAs: map[string]*rsa.PublicKey{"UnivNowhereCA": ca.PublicKey()}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ca
}
