package chirp

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"identitybox/internal/admission"
	"identitybox/internal/auth"
	"identitybox/internal/faultnet"
	"identitybox/internal/kernel"
	"identitybox/internal/obs"
)

// gsiClientOpts is gsiClient with explicit ClientOptions, for overload
// tests that need deadline budgets or custom retry behavior.
func gsiClientOpts(t *testing.T, srv *Server, ca *auth.CA, subject string, opts ClientOptions) *Client {
	t.Helper()
	cred, err := ca.Issue(subject)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialOpts(srv.Addr(), []auth.Authenticator{&auth.GSIClient{Cred: cred}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// stageWork creates a per-principal directory and stages the named
// program in it, returning (dir, path) for Exec.
func stageWork(t *testing.T, cl *Client, dir, prog string) (string, string) {
	t.Helper()
	if err := cl.Mkdir(dir, 0o755); err != nil {
		t.Fatalf("mkdir %s: %v", dir, err)
	}
	path := dir + "/" + prog + ".exe"
	if err := cl.PutFile(path, kernel.ExecutableBytes(prog), 0o755); err != nil {
		t.Fatalf("stage %s: %v", path, err)
	}
	return dir, path
}

// TestOverloadGoodputFairnessAndShedding is the seeded overload chaos
// suite: four victim principals run a closed loop of short exec jobs to
// establish a pre-saturation baseline, then two flooder principals pile
// on roughly 10x the offered load with tight deadline budgets while a
// control-plane client heartbeats throughout. Under saturation the
// server must shed expired work before executing it, keep goodput at or
// above 80% of the baseline, keep every victim at or above half its
// fair share, and never fail a control-plane request.
//
// Set CHIRP_OVERLOAD_SOAK to a duration (e.g. 30s) to stretch the
// saturation window for soak runs.
func TestOverloadGoodputFairnessAndShedding(t *testing.T) {
	srv, k, ca := testServer(t)
	reg := obs.NewRegistry()
	adm := admission.New(admission.Options{
		MaxQueue:  32,
		ExecSlots: 4,
		FairShare: 2,
		Metrics:   reg,
	})
	srv.opts.Admission = adm

	var executed atomic.Int64
	// 15ms of "work" keeps service capacity (ExecSlots/15ms ~ 265/s) far
	// below what the flooders can offer, so saturation is unambiguous even
	// under the race detector's overhead.
	k.RegisterProgram("work", func(p *kernel.Proc, args []string) int {
		executed.Add(1)
		time.Sleep(15 * time.Millisecond)
		return 0
	})

	const victims = 4
	const flooders = 2
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Victims: closed loop, one request in flight each, no budget.
	victimSuccess := make([]*atomic.Int64, victims)
	victimSubjects := make([]string, victims)
	var attempts, successes atomic.Int64
	for i := 0; i < victims; i++ {
		victimSuccess[i] = new(atomic.Int64)
		victimSubjects[i] = fmt.Sprintf("globus:/O=UnivNowhere/CN=Victim%d", i)
		cl := gsiClient(t, srv, ca, fmt.Sprintf("/O=UnivNowhere/CN=Victim%d", i))
		dir, path := stageWork(t, cl, fmt.Sprintf("/v%d", i), "work")
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				attempts.Add(1)
				if _, err := cl.Exec(dir, path); err == nil {
					victimSuccess[n].Add(1)
					successes.Add(1)
				}
			}
		}(i)
	}

	// Baseline: victims alone, after a short warmup.
	time.Sleep(100 * time.Millisecond)
	baseStart := successes.Load()
	baseWindow := 400 * time.Millisecond
	time.Sleep(baseWindow)
	baseRate := float64(successes.Load()-baseStart) / baseWindow.Seconds()
	if baseRate <= 0 {
		t.Fatal("no baseline throughput")
	}

	// Flooders: many concurrent calls per principal, tight budgets, no
	// retries — shed or rejected work is re-offered immediately, so the
	// offered load stays far above capacity. Staging rides a separate
	// unbudgeted client so setup cannot itself be shed.
	for f := 0; f < flooders; f++ {
		subject := fmt.Sprintf("/O=UnivNowhere/CN=Flood%d", f)
		stager := gsiClient(t, srv, ca, subject)
		dir, path := stageWork(t, stager, fmt.Sprintf("/f%d", f), "work")
		// Two sessions per flooder principal: attempt throughput is bounded
		// by how fast one session's server reader can reject work, so the
		// goroutines spread across sessions to keep the offered load high.
		for s := 0; s < 2; s++ {
			cl := gsiClientOpts(t, srv, ca, subject,
				ClientOptions{DeadlineBudget: 25 * time.Millisecond, DisableRetries: true})
			for g := 0; g < 16; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						attempts.Add(1)
						if _, err := cl.Exec(dir, path); err == nil {
							successes.Add(1)
						} else {
							time.Sleep(500 * time.Microsecond)
						}
					}
				}()
			}
		}
	}

	// Control plane: heartbeats that must never shed or fail.
	ctrl := adminClient(t, srv, ClientOptions{})
	var ctrlErrs atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ctrl.Stats(); err != nil {
				ctrlErrs.Add(1)
			}
			if _, err := ctrl.Whoami(); err != nil {
				ctrlErrs.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Let the flood saturate the queue, then measure the overload window.
	time.Sleep(150 * time.Millisecond)
	overWindow := 600 * time.Millisecond
	if s := os.Getenv("CHIRP_OVERLOAD_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("CHIRP_OVERLOAD_SOAK = %q: %v", s, err)
		}
		overWindow = d
	}
	overStartSucc, overStartAtt := successes.Load(), attempts.Load()
	compBefore := adm.Stats().Completions
	time.Sleep(overWindow)
	compAfter := adm.Stats().Completions
	goodRate := float64(successes.Load()-overStartSucc) / overWindow.Seconds()
	offeredRate := float64(attempts.Load()-overStartAtt) / overWindow.Seconds()

	close(stop)
	wg.Wait()
	// Quiesce: every admitted ticket released before the final audit.
	waitFor(t, "admission queue to drain", func() bool {
		st := adm.Stats()
		return st.Queued == 0 && st.ExecBusy == 0
	})
	st := adm.Stats()

	// Saturation was real: the offered load dwarfed what was served.
	if offeredRate < 10*goodRate {
		t.Errorf("offered load %.0f/s is under 10x goodput %.0f/s; the flood never saturated", offeredRate, goodRate)
	}
	// Goodput held: shedding absorbed the overload instead of collapsing
	// throughput.
	if goodRate < 0.8*baseRate {
		t.Errorf("goodput %.0f/s under overload, want >= 80%% of baseline %.0f/s", goodRate, baseRate)
	}
	// Expired work was shed, and shed strictly before execution: every
	// handler run produced exactly one successful reply.
	if st.ShedAdmit+st.ShedDispatch == 0 {
		t.Error("no requests were shed during saturation")
	}
	if st.Busy == 0 {
		t.Error("no requests were rejected EBUSY during saturation")
	}
	if got, want := executed.Load(), successes.Load(); got != want {
		t.Errorf("handler executions = %d, successful replies = %d; shed work must never execute", got, want)
	}
	// Fairness: over the saturation window no victim fell below half of
	// an equal share of the executed work.
	var totalDelta int64
	for name, after := range compAfter {
		totalDelta += after - compBefore[name]
	}
	active := int64(victims + flooders)
	for i, subj := range victimSubjects {
		delta := compAfter[subj] - compBefore[subj]
		if min := totalDelta / (2 * active); delta < min {
			t.Errorf("victim %d completed %d of %d during overload, below half fair share %d", i, delta, totalDelta, min)
		}
	}
	// The control plane rode through untouched.
	if n := ctrlErrs.Load(); n != 0 {
		t.Errorf("%d control-plane requests failed under overload", n)
	}
	if st.Control == 0 {
		t.Error("control-plane requests never exercised the exempt class")
	}
}

// TestBusyRetryAfterHintHonored: a client whose call is rejected EBUSY
// retries with the server's retry-after hint as a backoff floor and
// succeeds once capacity frees up — without tripping the breaker.
func TestBusyRetryAfterHintHonored(t *testing.T) {
	srv, k, ca := testServer(t)
	adm := admission.New(admission.Options{MaxQueue: 1, ExecSlots: 1, FairShare: 100})
	srv.opts.Admission = adm
	k.RegisterProgram("block", func(p *kernel.Proc, args []string) int {
		time.Sleep(250 * time.Millisecond)
		return 0
	})

	blocker := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Blocker")
	bdir, bpath := stageWork(t, blocker, "/blk", "block")
	// A second blocker principal fills the light-principal overflow
	// headroom (hard bound 2x MaxQueue), so the patient's admit is a
	// genuine EBUSY rejection rather than an overflow seat.
	blocker2 := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Blocker2")
	b2dir, b2path := stageWork(t, blocker2, "/blk2", "block")
	// Stage the patient's files before the slot is hogged: staging
	// traffic is admission-controlled too.
	var sleeps []time.Duration
	var mu sync.Mutex
	cl := gsiClientOpts(t, srv, ca, "/O=UnivNowhere/CN=Patient", ClientOptions{
		MaxRetries: 8,
		Sleep: func(d time.Duration) {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
			time.Sleep(d)
		},
	})
	dir, path := stageWork(t, cl, "/pat", "block")
	// Prime the service-time estimate so the busy hint is meaningful.
	if _, err := blocker.Exec(bdir, bpath); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	go func() {
		_, err := blocker.Exec(bdir, bpath)
		done <- err
	}()
	waitFor(t, "blocker to hold the exec slot", func() bool { return adm.Stats().ExecBusy == 1 })
	go func() {
		_, err := blocker2.Exec(b2dir, b2path)
		done <- err
	}()
	waitFor(t, "second blocker to fill the overflow seat", func() bool { return adm.Stats().Queued == 2 })

	if _, err := cl.Exec(dir, path); err != nil {
		t.Fatalf("exec after EBUSY retries = %v, want success", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("blocker exec = %v", err)
		}
	}
	if got := cl.LocalMetrics().Counter(MetricClientBusy).Value(); got == 0 {
		t.Fatal("busy counter never advanced; the call was not rejected EBUSY")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
	// The EWMA-primed hint (roughly the 250ms service time) floors the
	// first backoff far above the 50ms RetryBase schedule.
	var longest time.Duration
	for _, d := range sleeps {
		if d > longest {
			longest = d
		}
	}
	if longest < 100*time.Millisecond {
		t.Fatalf("longest backoff %v; the retry-after hint (~250ms+) never floored the schedule", longest)
	}
}

// TestDeadlineShedAtDispatchNeverExecutes: a budgeted request queued
// behind a slot hog is shed with EDEADLINE when its budget expires in
// the dispatch queue — before its handler runs, and well before the hog
// finishes.
func TestDeadlineShedAtDispatchNeverExecutes(t *testing.T) {
	srv, k, ca := testServer(t)
	adm := admission.New(admission.Options{MaxQueue: 8, ExecSlots: 1})
	srv.opts.Admission = adm
	k.RegisterProgram("block", func(p *kernel.Proc, args []string) int {
		time.Sleep(400 * time.Millisecond)
		return 0
	})
	var ran atomic.Int64
	k.RegisterProgram("never", func(p *kernel.Proc, args []string) int {
		ran.Add(1)
		return 0
	})

	blocker := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Hog")
	bdir, bpath := stageWork(t, blocker, "/hog", "block")
	// Stage before the slot is hogged: staging waits on the same slot.
	cl := gsiClientOpts(t, srv, ca, "/O=UnivNowhere/CN=Budgeted",
		ClientOptions{DeadlineBudget: 60 * time.Millisecond, DisableRetries: true})
	stager := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Budgeted")
	dir, path := stageWork(t, stager, "/bud", "never")
	done := make(chan error, 1)
	go func() {
		_, err := blocker.Exec(bdir, bpath)
		done <- err
	}()
	waitFor(t, "hog to hold the exec slot", func() bool { return adm.Stats().ExecBusy == 1 })

	start := time.Now()
	_, err := cl.Exec(dir, path)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("budgeted exec = %v, want EDEADLINE", err)
	}
	if elapsed >= 350*time.Millisecond {
		t.Fatalf("EDEADLINE took %v; the shed must not wait out the slot hog", elapsed)
	}
	if err := <-done; err != nil {
		t.Fatalf("hog exec = %v", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("shed request executed %d times, want 0", n)
	}
	if st := adm.Stats(); st.ShedDispatch == 0 {
		t.Fatalf("dispatch-shed counter = 0, want > 0 (stats %+v)", st)
	}
	if got := cl.LocalMetrics().Counter(MetricClientDeadlineExpired).Value(); got == 0 {
		t.Fatal("client deadline counter never advanced")
	}
}

// TestSeverWakesParkedReader (the acquireSlot teardown fix): with the
// session's credit window full of slow execs, the reader goroutine is
// parked in acquireSlot. Close must wake it and drop the queued work
// instead of executing the whole backlog toward a dead socket.
func TestSeverWakesParkedReader(t *testing.T) {
	srv, k, ca := testServer(t)
	srv.opts.Window = 4
	k.RegisterProgram("slow", func(p *kernel.Proc, args []string) int {
		time.Sleep(500 * time.Millisecond)
		return 0
	})
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Parker")
	dir, path := stageWork(t, cl, "/park", "slow")

	const calls = 8
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Exec(dir, path) // severed mid-flight; errors are expected
		}()
	}
	// Window 4 fills, the reader parks on the 5th admit.
	waitFor(t, "window to fill", func() bool { return cl.RequestCount() >= calls })
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	elapsed := time.Since(start)
	// Draining the whole window through 500ms execs would take ~2s;
	// severing must only wait out the one in flight.
	if elapsed > 1200*time.Millisecond {
		t.Fatalf("Close took %v; severing must drop queued work, not execute it", elapsed)
	}

	// The client's parked submitters unwind too: the calls all return.
	returned := make(chan struct{})
	go func() {
		wg.Wait()
		close(returned)
	}()
	select {
	case <-returned:
	case <-time.After(5 * time.Second):
		t.Fatal("client calls still parked after the server severed the session")
	}
}

// TestDrainCompletesUnderBackpressure (shutdown vs v2 backpressure):
// a graceful drain racing a client that has the credit window pinned
// full must finish the admitted work, unwind the reader without
// executing the backlog, and come back well inside the drain budget —
// with an idle second session nudged out rather than severed.
func TestDrainCompletesUnderBackpressure(t *testing.T) {
	srv, k, ca := testServer(t)
	srv.opts.Window = 2
	k.RegisterProgram("slow", func(p *kernel.Proc, args []string) int {
		time.Sleep(40 * time.Millisecond)
		return 0
	})
	cl := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Pusher")
	dir, path := stageWork(t, cl, "/push", "slow")
	idle := gsiClient(t, srv, ca, "/O=UnivNowhere/CN=Idler")
	if _, err := idle.Whoami(); err != nil {
		t.Fatal(err)
	}

	var ok atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Exec(dir, path); err == nil {
				ok.Add(1)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // window full, submits backed up

	start := time.Now()
	err := srv.Shutdown(5 * time.Second)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("shutdown = %v, want clean drain (no severing)", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("drain took %v with only ~80ms of admitted work", elapsed)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no in-flight exec survived the drain; admitted work must finish")
	}
}

// TestSlowLorisSeveredNotServed (bandwidth-shaping injector): a client
// trickling a request a byte at a time is severed by the per-request
// wire deadline instead of pinning server resources, while a healthy
// session on the same server stays fully served throughout.
func TestSlowLorisSeveredNotServed(t *testing.T) {
	srv, _, _ := testServer(t)
	srv.opts.RequestTimeout = 100 * time.Millisecond

	healthy := adminClient(t, srv, ClientOptions{})
	if _, err := healthy.Whoami(); err != nil {
		t.Fatal(err)
	}

	inj := faultnet.New(1)
	slow := adminClient(t, srv, ClientOptions{DisableRetries: true, Dialer: inj.Dialer("tcp")})
	if _, err := slow.Whoami(); err != nil {
		t.Fatal(err) // handshake and negotiation run at full speed
	}
	// From here the connection trickles one byte per 5ms tick: the next
	// request's frame cannot arrive inside the 100ms request deadline.
	inj.InjectOnce(faultnet.OpWrite, 0, faultnet.Trickle, 5*time.Millisecond)
	lorisErr := make(chan error, 1)
	go func() {
		err := slow.PutFile("/loris.dat", make([]byte, 2<<10), 0o644)
		lorisErr <- err
	}()

	// The healthy session must not feel the loris: every probe during
	// the attack completes promptly.
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := time.Now()
		if _, err := healthy.Whoami(); err != nil {
			t.Fatalf("healthy whoami during slow-loris: %v", err)
		}
		if d := time.Since(s); d > time.Second {
			t.Fatalf("healthy whoami took %v during slow-loris", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-lorisErr:
		if err == nil {
			t.Fatal("trickled request succeeded; the wire deadline should have severed it")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow-loris call never returned after the server severed it")
	}
}

// TestDedupeTableByteBound (byte-bounded dedupe): the table evicts by
// byte footprint as well as entry count, keeps the exactly-once promise
// for a single oversized entry, and reports its footprint for the
// chirp_dedupe_bytes gauge and eviction counter.
func TestDedupeTableByteBound(t *testing.T) {
	fat := []string{"ok", strings.Repeat("x", 100)}
	perEntry := entrySize(dedupeKey("u", "t0"), fat)
	tbl := newDedupeTable(100, 2*perEntry)
	for i := 0; i < 4; i++ {
		tbl.store(dedupeKey("u", fmt.Sprintf("t%d", i)), fat)
	}
	if _, size := tbl.stats(); size != 2 {
		t.Fatalf("entries = %d, want 2 (byte bound, not entry cap, governs)", size)
	}
	if _, hit := tbl.lookup(dedupeKey("u", "t0")); hit {
		t.Fatal("oldest entry survived byte-bound eviction")
	}
	if _, hit := tbl.lookup(dedupeKey("u", "t3")); !hit {
		t.Fatal("newest entry missing")
	}
	bytes, evictions := tbl.byteStats()
	if bytes > 2*perEntry || bytes <= 0 {
		t.Fatalf("footprint = %d bytes, want (0, %d]", bytes, 2*perEntry)
	}
	if evictions != 2 {
		t.Fatalf("evictions = %d, want 2", evictions)
	}

	// A single entry larger than the whole budget is still stored:
	// dropping it would re-execute a retried mutation.
	tiny := newDedupeTable(100, 8)
	if n := tiny.store(dedupeKey("u", "big"), fat); n != 0 {
		t.Fatalf("evicted %d from an empty table", n)
	}
	if _, hit := tiny.lookup(dedupeKey("u", "big")); !hit {
		t.Fatal("oversized entry must survive until the next store")
	}
}

// TestDedupeByteMetricsExposed: the server keeps the dedupe footprint
// gauge and eviction counter current as tokened replies are recorded.
func TestDedupeByteMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	srv, _ := testServerWithRegistry(t, reg)
	srv.dedupe.store(dedupeKey("u", "t"), []string{"ok", "1"})
	srv.syncDedupeMetrics()
	text := reg.Text()
	if !strings.Contains(text, MetricDedupeBytes) {
		t.Fatalf("exposition missing %s:\n%s", MetricDedupeBytes, text)
	}
	if !strings.Contains(text, MetricDedupeEvictions) {
		t.Fatalf("exposition missing %s:\n%s", MetricDedupeEvictions, text)
	}
	if reg.Gauge(MetricDedupeBytes).Value() <= 0 {
		t.Fatal("dedupe byte gauge did not track the stored entry")
	}
}
