package trap

import (
	"bytes"
	"testing"
	"testing/quick"

	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

func testProc(t *testing.T) (*kernel.Kernel, *kernel.Proc) {
	t.Helper()
	k := kernel.New(vfs.New(kernel.RootAccount), vclock.Default())
	var proc *kernel.Proc
	k.Run(kernel.ProcSpec{Account: "u"}, func(p *kernel.Proc, _ []string) int {
		proc = p
		return 0
	})
	// proc has exited but its clock remains usable for cost tests.
	return k, proc
}

func TestWords(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {9, 3},
	}
	for _, c := range cases {
		if got := words(c.n); got != c.want {
			t.Errorf("words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPeekPokeCost(t *testing.T) {
	m := vclock.Default()
	if PeekPokeCost(m, 0) != 0 {
		t.Error("zero bytes should cost nothing")
	}
	one := PeekPokeCost(m, 1)
	if one != m.PeekPokeSetup+m.PeekPokeWord {
		t.Errorf("1 byte = %v", one)
	}
	// Cost grows with word count.
	if PeekPokeCost(m, 1024) <= PeekPokeCost(m, 8) {
		t.Error("peek/poke cost should grow with size")
	}
	// 8 kB by peek/poke should be far more expensive than by channel —
	// the reason Parrot uses the channel for bulk I/O.
	channel := m.ChannelPerByte * 8192
	if PeekPokeCost(m, 8192) < 3*channel {
		t.Errorf("peek/poke 8k (%v) should dwarf channel copy (%v)", PeekPokeCost(m, 8192), channel)
	}
}

func TestPokePeekBytesChargeAndCopy(t *testing.T) {
	_, p := testProc(t)
	m := vclock.Default()
	src := []byte("hello world")
	dst := make([]byte, len(src))
	before := p.Clock().Now()
	n := PokeBytes(p, m, dst, src)
	if n != len(src) || !bytes.Equal(dst, src) {
		t.Fatalf("poke = %d, %q", n, dst)
	}
	if p.Clock().Now() <= before {
		t.Fatal("poke did not charge")
	}
	out := make([]byte, len(src))
	before = p.Clock().Now()
	n = PeekBytes(p, m, out, dst)
	if n != len(src) || !bytes.Equal(out, src) {
		t.Fatalf("peek = %d, %q", n, out)
	}
	if p.Clock().Now() <= before {
		t.Fatal("peek did not charge")
	}
}

func TestChannelDefaults(t *testing.T) {
	c := NewChannel(0)
	if c.Size() != DefaultChannelSize {
		t.Fatalf("default size = %d", c.Size())
	}
	c2 := NewChannel(4096)
	if c2.Size() != 4096 {
		t.Fatalf("explicit size = %d", c2.Size())
	}
}

func TestChannelStageReadTruncatesToCapacity(t *testing.T) {
	_, p := testProc(t)
	m := vclock.Default()
	c := NewChannel(16)
	data := bytes.Repeat([]byte("x"), 100)
	staged := c.StageRead(p, m, data)
	if len(staged) != 16 {
		t.Fatalf("staged %d bytes, want 16 (channel capacity)", len(staged))
	}
}

func TestChannelWriteRoundTrip(t *testing.T) {
	_, p := testProc(t)
	m := vclock.Default()
	c := NewChannel(0)
	region := c.ReserveWrite(8192)
	if len(region) != 8192 {
		t.Fatalf("reserve = %d", len(region))
	}
	payload := bytes.Repeat([]byte("ab"), 4096)
	copy(region, payload)
	before := p.Clock().Now()
	got := c.CollectWrite(p, m, region)
	if !bytes.Equal(got, payload) {
		t.Fatal("collect returned different data")
	}
	if p.Clock().Now() <= before {
		t.Fatal("collect did not charge the channel copy")
	}
}

func TestBulkThresholdSane(t *testing.T) {
	m := vclock.Default()
	// At the threshold, channel staging should already be no worse than
	// peek/poke; that is what justifies the threshold.
	pp := PeekPokeCost(m, BulkThreshold+1)
	ch := m.ChannelPerByte * vclock.Micros(BulkThreshold+1)
	if ch > pp {
		t.Fatalf("channel (%v) costs more than peek/poke (%v) just above threshold", ch, pp)
	}
}

func TestPeekPokeCostMonotoneProperty(t *testing.T) {
	m := vclock.Default()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return PeekPokeCost(m, x) <= PeekPokeCost(m, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
