// Package trap provides the data-movement machinery a supervisor uses on
// a stopped child: word-at-a-time peek/poke transfers and the shared
// I/O channel of Figure 4(b).
//
// Small amounts of data (registers, stat buffers, path strings) move by
// peeking and poking one word at a time, each word charged to the child.
// Bulk data moves through the I/O channel: an in-memory file shared
// between the supervisor and all of its children. The supervisor copies
// data into the channel, rewrites the child's read into a pread on the
// channel descriptor, and the kernel performs the final copy into the
// application's buffer — one extra copy compared to a native read, which
// is exactly the overhead the paper measures on 8 kB transfers.
package trap

import (
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
)

// WordSize is the peek/poke transfer unit, matching the 32-bit ptrace
// word of the paper's evaluation platform.
const WordSize = 4

// words reports how many peek/poke words cover n bytes.
func words(n int) int { return (n + WordSize - 1) / WordSize }

// PeekPokeCost reports the virtual cost of moving n bytes of child
// memory by peek/poke.
func PeekPokeCost(m vclock.CostModel, n int) vclock.Micros {
	if n <= 0 {
		return 0
	}
	return m.PeekPokeSetup + m.PeekPokeWord*vclock.Micros(words(n))
}

// ChargePeek bills the child for the supervisor peeking n bytes of its
// memory (arguments, path strings).
func ChargePeek(p *kernel.Proc, m vclock.CostModel, n int) {
	p.Charge(PeekPokeCost(m, n))
}

// ChargePoke bills the child for the supervisor poking n bytes into its
// memory (results, stat buffers, small reads).
func ChargePoke(p *kernel.Proc, m vclock.CostModel, n int) {
	p.Charge(PeekPokeCost(m, n))
}

// PokeBytes copies data into the child's buffer word-at-a-time, charging
// the peek/poke cost, and reports bytes transferred. Supervisors use it
// for small results; bulk data should go through the Channel.
func PokeBytes(p *kernel.Proc, m vclock.CostModel, dst, src []byte) int {
	n := copy(dst, src)
	ChargePoke(p, m, n)
	return n
}

// PeekBytes copies data out of the child's buffer word-at-a-time,
// charging the peek/poke cost, and reports bytes transferred.
func PeekBytes(p *kernel.Proc, m vclock.CostModel, dst, src []byte) int {
	n := copy(dst, src)
	ChargePeek(p, m, n)
	return n
}

// BulkThreshold is the size above which a supervisor prefers the I/O
// channel over peek/poke. Below it, two word transfers cost less than
// staging the channel.
const BulkThreshold = 256

// Channel is the shared in-memory file used for bulk data movement
// between a supervisor and its children. One channel serves all children
// of a supervisor, as in Parrot.
type Channel struct {
	buf []byte
}

// DefaultChannelSize is the channel buffer size: comfortably bigger than
// the largest single transfer in the evaluation (8 kB reads/writes).
const DefaultChannelSize = 1 << 20

// NewChannel allocates an I/O channel of the given size (0 means
// DefaultChannelSize).
func NewChannel(size int) *Channel {
	if size <= 0 {
		size = DefaultChannelSize
	}
	return &Channel{buf: make([]byte, size)}
}

// Size reports the channel capacity in bytes.
func (c *Channel) Size() int { return len(c.buf) }

// StageRead copies data the supervisor fetched (from its driver) into
// the channel, charging the child for the extra copy, and returns the
// staged region for the kernel's final copy into the application buffer.
// Data longer than the channel is truncated to the channel size; callers
// loop for larger transfers.
func (c *Channel) StageRead(p *kernel.Proc, m vclock.CostModel, data []byte) []byte {
	n := copy(c.buf, data)
	p.Charge(m.ChannelPerByte * vclock.Micros(n))
	return c.buf[:n]
}

// ReserveWrite returns a channel region of up to n bytes for the kernel
// to copy application data into; the supervisor then completes the write
// from that region at syscall exit via CollectWrite.
func (c *Channel) ReserveWrite(n int) []byte {
	if n > len(c.buf) {
		n = len(c.buf)
	}
	return c.buf[:n]
}

// CollectWrite charges the child for the supervisor's copy out of the
// channel (toward its driver) and returns the data.
func (c *Channel) CollectWrite(p *kernel.Proc, m vclock.CostModel, region []byte) []byte {
	p.Charge(m.ChannelPerByte * vclock.Micros(len(region)))
	return region
}
