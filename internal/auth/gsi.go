package auth

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"fmt"
	"strings"

	"identitybox/internal/identity"
)

// This file implements the GSI-style public-key method: a certificate
// authority signs (subject, public key) pairs; a client proves identity
// by presenting its certificate and signing a server nonce. It is a
// compact stand-in for Globus GSI proxy-certificate authentication —
// what identity boxing consumes is only the distinguished name that
// survives verification.

const gsiKeyBits = 1024 // small keys keep tests fast; not for production

// Cert binds a subject distinguished name to a public key under a CA
// signature.
type Cert struct {
	Subject   string // e.g. "/O=UnivNowhere/CN=Fred"
	Issuer    string // CA name
	PubKeyDER []byte
	Sig       []byte // CA signature over sha256(subject|issuer|pubkey)
}

func certDigest(subject, issuer string, pubDER []byte) []byte {
	h := sha256.New()
	h.Write([]byte(subject))
	h.Write([]byte{0})
	h.Write([]byte(issuer))
	h.Write([]byte{0})
	h.Write(pubDER)
	return h.Sum(nil)
}

// CA is a certificate authority: the root of trust grid sites install.
type CA struct {
	Name string
	key  *rsa.PrivateKey
}

// NewCA generates a certificate authority.
func NewCA(name string) (*CA, error) {
	key, err := rsa.GenerateKey(rand.Reader, gsiKeyBits)
	if err != nil {
		return nil, err
	}
	return &CA{Name: name, key: key}, nil
}

// PublicKey returns the CA's verification key.
func (ca *CA) PublicKey() *rsa.PublicKey { return &ca.key.PublicKey }

// Credential is a user's long-lived identity: a key pair plus the CA's
// certificate over it.
type Credential struct {
	Subject string
	Key     *rsa.PrivateKey
	Cert    Cert
}

// Issue creates a credential for the subject DN.
func (ca *CA) Issue(subject string) (*Credential, error) {
	if subject == "" || strings.ContainsAny(subject, " \n") {
		return nil, fmt.Errorf("auth: bad subject %q", subject)
	}
	key, err := rsa.GenerateKey(rand.Reader, gsiKeyBits)
	if err != nil {
		return nil, err
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	sig, err := rsa.SignPKCS1v15(rand.Reader, ca.key, crypto.SHA256, certDigest(subject, ca.Name, pubDER))
	if err != nil {
		return nil, err
	}
	return &Credential{
		Subject: subject,
		Key:     key,
		Cert:    Cert{Subject: subject, Issuer: ca.Name, PubKeyDER: pubDER, Sig: sig},
	}, nil
}

// GSIClient authenticates with a credential.
type GSIClient struct {
	Cred *Credential
}

// Method implements Authenticator.
func (g *GSIClient) Method() Method { return MethodGlobus }

// Prove implements Authenticator: send the certificate, sign the nonce.
func (g *GSIClient) Prove(c *Conn) (identity.Principal, error) {
	cert := g.Cred.Cert
	line := fmt.Sprintf("cert %s %s %s %s",
		cert.Subject, cert.Issuer,
		base64.StdEncoding.EncodeToString(cert.PubKeyDER),
		base64.StdEncoding.EncodeToString(cert.Sig))
	if err := c.WriteLine(line); err != nil {
		return "", err
	}
	nonce, err := c.ReadBlob()
	if err != nil {
		return "", err
	}
	digest := sha256.Sum256(nonce)
	sig, err := rsa.SignPKCS1v15(rand.Reader, g.Cred.Key, crypto.SHA256, digest[:])
	if err != nil {
		return "", err
	}
	if err := c.WriteBlob(sig); err != nil {
		return "", err
	}
	return identity.New(string(MethodGlobus), g.Cred.Subject), nil
}

// GSIVerifier verifies GSI clients against a set of trusted CAs.
type GSIVerifier struct {
	// TrustedCAs maps CA name to verification key.
	TrustedCAs map[string]*rsa.PublicKey
	// nonce source, injectable for tests.
	Rand func(b []byte) error
}

// Method implements Verifier.
func (g *GSIVerifier) Method() Method { return MethodGlobus }

// Verify implements Verifier. It accepts either a single long-lived
// certificate ("cert ...") or a proxy delegation chain ("chain N"
// followed by N certificate lines); either way the recorded principal
// is the base subject.
func (g *GSIVerifier) Verify(c *Conn, _ string) (identity.Principal, error) {
	line, err := c.ReadLine()
	if err != nil {
		return "", err
	}
	var (
		pub     *rsa.PublicKey
		subject string
	)
	switch {
	case strings.HasPrefix(line, "chain "):
		var n int
		if _, err := fmt.Sscanf(line, "chain %d", &n); err != nil {
			return "", fmt.Errorf("auth: malformed chain header %q", line)
		}
		// Absurd lengths are rejected outright; plausible-but-too-long
		// chains are drained first so the peer is not left blocked
		// mid-send on a synchronous transport.
		const drainCap = 4 * maxChainLength
		if n <= 0 || n > drainCap {
			return "", fmt.Errorf("%w: bad chain length %d", ErrRejected, n)
		}
		chain := make([]Cert, 0, n)
		var parseErr error
		for i := 0; i < n; i++ {
			certLine, err := c.ReadLine()
			if err != nil {
				return "", err
			}
			cert, err := parseCertLine(certLine)
			if err != nil {
				parseErr = err
				continue
			}
			chain = append(chain, cert)
		}
		if parseErr != nil {
			return "", parseErr
		}
		pub, subject, err = g.verifyChain(chain)
		if err != nil {
			return "", err
		}
	case strings.HasPrefix(line, "cert "):
		cert, err := parseCertLine(line)
		if err != nil {
			return "", err
		}
		caKey, ok := g.TrustedCAs[cert.Issuer]
		if !ok {
			return "", fmt.Errorf("%w: unknown CA %q", ErrRejected, cert.Issuer)
		}
		if err := rsa.VerifyPKCS1v15(caKey, crypto.SHA256,
			certDigest(cert.Subject, cert.Issuer, cert.PubKeyDER), cert.Sig); err != nil {
			return "", fmt.Errorf("%w: bad certificate signature", ErrRejected)
		}
		pub, err = parseRSAPub(cert.PubKeyDER)
		if err != nil {
			return "", err
		}
		subject = cert.Subject
	default:
		return "", fmt.Errorf("auth: malformed credential line %q", line)
	}

	// Challenge: the client must hold the (leaf) private key.
	nonce := make([]byte, 32)
	src := g.Rand
	if src == nil {
		src = func(b []byte) error { _, err := rand.Read(b); return err }
	}
	if err := src(nonce); err != nil {
		return "", err
	}
	if err := c.WriteBlob(nonce); err != nil {
		return "", err
	}
	proof, err := c.ReadBlob()
	if err != nil {
		return "", err
	}
	digest := sha256.Sum256(nonce)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], proof); err != nil {
		return "", fmt.Errorf("%w: challenge failed", ErrRejected)
	}
	return identity.New(string(MethodGlobus), subject), nil
}

// parseCertLine parses "cert <subject> <issuer> <pubkey-b64> <sig-b64>".
func parseCertLine(line string) (Cert, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[0] != "cert" {
		return Cert{}, fmt.Errorf("auth: malformed certificate line %q", line)
	}
	pubDER, err := base64.StdEncoding.DecodeString(fields[3])
	if err != nil {
		return Cert{}, err
	}
	sig, err := base64.StdEncoding.DecodeString(fields[4])
	if err != nil {
		return Cert{}, err
	}
	return Cert{Subject: fields[1], Issuer: fields[2], PubKeyDER: pubDER, Sig: sig}, nil
}

// sha256Sum returns the SHA-256 digest as a slice.
func sha256Sum(b []byte) []byte {
	d := sha256.Sum256(b)
	return d[:]
}
