// Package auth implements the authentication methods a Chirp server
// negotiates with its clients, each yielding a principal name of the
// form "method:subject":
//
//	globus:/O=UnivNowhere/CN=Fred     (GSI-style public-key credentials)
//	kerberos:fred@nowhere.edu         (ticket from a toy KDC)
//	unix:dthain                       (asserted local account)
//	hostname:laptop.cs.nowhere.edu    (reverse lookup of the peer)
//
// The real systems (Globus GSI, MIT Kerberos) are replaced by compact
// stdlib-crypto equivalents that preserve what matters to identity
// boxing: a negotiated method followed by a proof of identity, yielding
// a principal string used for all access control. See DESIGN.md
// (substitutions).
//
// Negotiation follows the Chirp pattern: the client proposes methods in
// preference order; the server answers "no" until one it supports
// arrives, then "yes", and the method-specific exchange runs.
package auth

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"strings"

	"identitybox/internal/identity"
)

// Method names an authentication mechanism.
type Method string

// The four methods of the paper's Chirp implementation.
const (
	MethodGlobus   Method = "globus"
	MethodKerberos Method = "kerberos"
	MethodUnix     Method = "unix"
	MethodHostname Method = "hostname"
)

// ErrNoCommonMethod is returned when negotiation exhausts the client's
// method list.
var ErrNoCommonMethod = errors.New("auth: no mutually acceptable method")

// ErrRejected is returned when the server refuses the offered proof.
var ErrRejected = errors.New("auth: credentials rejected")

// Conn frames the authentication dialogue as newline-delimited fields
// with base64 for binary blobs.
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer
}

// NewConn wraps a transport for the authentication dialogue.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

// WriteLine sends one line and flushes.
func (c *Conn) WriteLine(s string) error {
	if strings.ContainsAny(s, "\n\r") {
		return fmt.Errorf("auth: line contains newline: %q", s)
	}
	if _, err := c.w.WriteString(s + "\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

// ReadLine receives one line, stripped of its terminator.
func (c *Conn) ReadLine() (string, error) {
	s, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

// WriteBlob sends binary data base64-encoded on one line.
func (c *Conn) WriteBlob(b []byte) error {
	return c.WriteLine(base64.StdEncoding.EncodeToString(b))
}

// ReadBlob receives one base64 line.
func (c *Conn) ReadBlob() ([]byte, error) {
	s, err := c.ReadLine()
	if err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(s)
}

// Authenticator is the client side of one method: it proposes the
// method and, if accepted, proves the identity.
type Authenticator interface {
	Method() Method
	// Prove runs the client half of the method-specific exchange and
	// returns the principal the client believes it proved.
	Prove(c *Conn) (identity.Principal, error)
}

// Verifier is the server side of one method.
type Verifier interface {
	Method() Method
	// Verify runs the server half of the exchange. remoteHost is the
	// peer's host (from the transport), used by the hostname method.
	Verify(c *Conn, remoteHost string) (identity.Principal, error)
}

// ClientNegotiate offers each authenticator in order until the server
// accepts one, then runs its proof. It returns the proven principal.
func ClientNegotiate(c *Conn, auths []Authenticator) (identity.Principal, error) {
	for _, a := range auths {
		if err := c.WriteLine("auth " + string(a.Method())); err != nil {
			return "", err
		}
		resp, err := c.ReadLine()
		if err != nil {
			return "", err
		}
		switch resp {
		case "yes":
			p, err := a.Prove(c)
			if err != nil {
				return "", err
			}
			// The server confirms the principal it recorded.
			final, err := c.ReadLine()
			if err != nil {
				return "", err
			}
			if !strings.HasPrefix(final, "ok ") {
				return "", fmt.Errorf("%w: %s", ErrRejected, final)
			}
			got := identity.Principal(strings.TrimPrefix(final, "ok "))
			if got != p {
				return "", fmt.Errorf("auth: server recorded %q, client proved %q", got, p)
			}
			return p, nil
		case "no":
			continue
		default:
			return "", fmt.Errorf("auth: unexpected negotiation reply %q", resp)
		}
	}
	if err := c.WriteLine("auth none"); err != nil {
		return "", err
	}
	return "", ErrNoCommonMethod
}

// ServerNegotiate answers the client's proposals using the given
// verifiers and returns the proven principal.
func ServerNegotiate(c *Conn, verifiers map[Method]Verifier, remoteHost string) (identity.Principal, error) {
	for {
		line, err := c.ReadLine()
		if err != nil {
			return "", err
		}
		if !strings.HasPrefix(line, "auth ") {
			return "", fmt.Errorf("auth: expected proposal, got %q", line)
		}
		m := Method(strings.TrimPrefix(line, "auth "))
		if m == "none" {
			return "", ErrNoCommonMethod
		}
		v, ok := verifiers[m]
		if !ok {
			if err := c.WriteLine("no"); err != nil {
				return "", err
			}
			continue
		}
		if err := c.WriteLine("yes"); err != nil {
			return "", err
		}
		p, err := v.Verify(c, remoteHost)
		if err != nil {
			c.WriteLine("failed " + err.Error())
			return "", err
		}
		if !p.Valid() {
			c.WriteLine("failed invalid principal")
			return "", fmt.Errorf("auth: method %s produced invalid principal %q", m, p)
		}
		if err := c.WriteLine("ok " + p.String()); err != nil {
			return "", err
		}
		return p, nil
	}
}
