package auth

import (
	"errors"
	"testing"
	"time"
)

func casFixture(t *testing.T) (*CAS, *CASVerifier) {
	t.Helper()
	cas, err := NewCAS("physics")
	if err != nil {
		t.Fatal(err)
	}
	v := &CASVerifier{Trusted: map[string]*rsaPub{"physics": cas.PublicKey()}}
	return cas, v
}

func TestCASIssueAndVerify(t *testing.T) {
	cas, v := casFixture(t)
	cas.AddMember("globus:/O=U/CN=Fred", "cms", []Grant{{PathPrefix: "/data", Rights: "rl"}})
	a, err := cas.Issue("globus:/O=U/CN=Fred", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(a); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if a.Community != "cms" || len(a.Grants) != 1 || a.Grants[0].Rights != "rl" {
		t.Fatalf("assertion = %+v", a)
	}
}

func TestCASNonMemberRefused(t *testing.T) {
	cas, _ := casFixture(t)
	if _, err := cas.Issue("globus:/O=U/CN=Stranger", time.Hour); err == nil {
		t.Fatal("non-member got an assertion")
	}
}

func TestCASRevocation(t *testing.T) {
	cas, _ := casFixture(t)
	cas.AddMember("u", "c", nil)
	if _, err := cas.Issue("u", time.Hour); err != nil {
		t.Fatal(err)
	}
	cas.RemoveMember("u")
	if _, err := cas.Issue("u", time.Hour); err == nil {
		t.Fatal("revoked member still issued")
	}
}

func TestCASTamperDetected(t *testing.T) {
	cas, v := casFixture(t)
	cas.AddMember("u", "c", []Grant{{PathPrefix: "/narrow", Rights: "r"}})
	a, _ := cas.Issue("u", time.Hour)
	cases := []func(*Assertion){
		func(a *Assertion) { a.Subject = "someone-else" },
		func(a *Assertion) { a.Community = "other" },
		func(a *Assertion) { a.Grants[0].PathPrefix = "/" },
		func(a *Assertion) { a.Grants[0].Rights = "rwlax" },
		func(a *Assertion) { a.Expiry += 1e6 },
	}
	for i, mutate := range cases {
		fresh, _ := cas.Issue("u", time.Hour)
		mutate(fresh)
		if err := v.Verify(fresh); !errors.Is(err, ErrRejected) {
			t.Errorf("mutation %d: verify = %v, want rejection", i, err)
		}
	}
	// The untampered one still verifies.
	if err := v.Verify(a); err != nil {
		t.Fatalf("control assertion rejected: %v", err)
	}
}

func TestCASUntrustedIssuer(t *testing.T) {
	cas, _ := casFixture(t)
	rogue, _ := NewCAS("rogue")
	rogue.AddMember("u", "c", []Grant{{PathPrefix: "/", Rights: "rwlax"}})
	a, _ := rogue.Issue("u", time.Hour)
	v := &CASVerifier{Trusted: map[string]*rsaPub{"physics": cas.PublicKey()}}
	if err := v.Verify(a); !errors.Is(err, ErrRejected) {
		t.Fatalf("untrusted issuer = %v, want rejection", err)
	}
}

func TestCASEncodeDecodeRoundTrip(t *testing.T) {
	cas, v := casFixture(t)
	cas.AddMember("u", "c", []Grant{{PathPrefix: "/a b/c", Rights: "rwl"}})
	a, _ := cas.Issue("u", time.Hour)
	blob, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAssertion(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(back); err != nil {
		t.Fatalf("decoded assertion rejected: %v", err)
	}
	if back.Grants[0].PathPrefix != "/a b/c" {
		t.Fatalf("grant lost: %+v", back.Grants)
	}
	if _, err := DecodeAssertion([]byte("{broken")); err == nil {
		t.Fatal("garbage decoded")
	}
}
