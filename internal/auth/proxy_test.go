package auth

import (
	"errors"
	"testing"

	"identitybox/internal/identity"
)

func proxyFixture(t *testing.T) (*CA, *Credential, *ProxyCredential) {
	t.Helper()
	ca, err := NewCA("UnivNowhereCA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue("/O=UnivNowhere/CN=Fred")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := cred.Delegate()
	if err != nil {
		t.Fatal(err)
	}
	return ca, cred, proxy
}

func verifierFor(ca *CA) map[Method]Verifier {
	return map[Method]Verifier{
		MethodGlobus: &GSIVerifier{TrustedCAs: map[string]*rsaPub{ca.Name: ca.PublicKey()}},
	}
}

func TestProxyRoundTrip(t *testing.T) {
	ca, _, proxy := proxyFixture(t)
	cp, sp, cerr, serr := negotiate(t,
		[]Authenticator{&GSIProxyClient{Proxy: proxy}},
		verifierFor(ca), "x")
	if cerr != nil || serr != nil {
		t.Fatalf("errs: %v / %v", cerr, serr)
	}
	// The recorded principal is the *base* identity: consistent global
	// identity across delegation.
	want := identity.Principal("globus:/O=UnivNowhere/CN=Fred")
	if cp != want || sp != want {
		t.Fatalf("principals = %q / %q, want %q", cp, sp, want)
	}
}

func TestProxyOfProxy(t *testing.T) {
	ca, _, proxy := proxyFixture(t)
	proxy2, err := proxy.Delegate()
	if err != nil {
		t.Fatal(err)
	}
	if len(proxy2.Chain) != 3 {
		t.Fatalf("chain length = %d, want 3", len(proxy2.Chain))
	}
	if proxy2.BaseSubject() != "/O=UnivNowhere/CN=Fred" {
		t.Fatalf("base subject = %q", proxy2.BaseSubject())
	}
	_, sp, cerr, serr := negotiate(t,
		[]Authenticator{&GSIProxyClient{Proxy: proxy2}},
		verifierFor(ca), "x")
	if cerr != nil || serr != nil {
		t.Fatalf("errs: %v / %v", cerr, serr)
	}
	if sp != "globus:/O=UnivNowhere/CN=Fred" {
		t.Fatalf("second-level proxy principal = %q", sp)
	}
}

func TestProxyWithoutKeyFails(t *testing.T) {
	ca, _, proxy := proxyFixture(t)
	// The attacker captured the chain but not the proxy's private key.
	other, _ := ca.Issue("/O=UnivNowhere/CN=Attacker")
	stolen := &ProxyCredential{Subject: proxy.Subject, Key: other.Key, Chain: proxy.Chain}
	_, _, _, serr := negotiate(t,
		[]Authenticator{&GSIProxyClient{Proxy: stolen}},
		verifierFor(ca), "x")
	if !errors.Is(serr, ErrRejected) {
		t.Fatalf("server err = %v, want rejection", serr)
	}
}

func TestProxyForgedLinkRejected(t *testing.T) {
	ca, _, _ := proxyFixture(t)
	// Mallory forges a chain claiming to descend from Fred, but signs
	// the delegation link with her own key.
	mallory, _ := ca.Issue("/O=UnivNowhere/CN=Mallory")
	forged, err := mallory.Delegate()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the subjects to impersonate Fred; signatures no longer
	// match the digests.
	forged.Chain[0].Subject = "/O=UnivNowhere/CN=Fred"
	forged.Chain[1].Subject = "/O=UnivNowhere/CN=Fred" + proxySuffix
	forged.Chain[1].Issuer = "/O=UnivNowhere/CN=Fred"
	forged.Subject = forged.Chain[1].Subject
	_, _, _, serr := negotiate(t,
		[]Authenticator{&GSIProxyClient{Proxy: forged}},
		verifierFor(ca), "x")
	if !errors.Is(serr, ErrRejected) {
		t.Fatalf("server err = %v, want rejection", serr)
	}
}

func TestProxyChainMustExtendSubject(t *testing.T) {
	ca, cred, _ := proxyFixture(t)
	// A delegation link whose subject is not parent+"/CN=proxy" must be
	// rejected even if the signature verifies: otherwise a proxy could
	// rename itself to a different principal.
	evil, err := cred.Delegate()
	if err != nil {
		t.Fatal(err)
	}
	// Re-sign a link with a rogue subject (the holder of the parent key
	// can sign anything, so the signature itself is valid).
	rogueSubject := "/O=UnivNowhere/CN=Root"
	sig, err := signLink(cred.Key, cred.Subject, rogueSubject, evil.Chain[1].PubKeyDER)
	if err != nil {
		t.Fatal(err)
	}
	evil.Chain[1].Subject = rogueSubject
	evil.Chain[1].Sig = sig
	evil.Subject = rogueSubject
	_, _, _, serr := negotiate(t,
		[]Authenticator{&GSIProxyClient{Proxy: evil}},
		verifierFor(ca), "x")
	if !errors.Is(serr, ErrRejected) {
		t.Fatalf("server err = %v, want rejection (subject must extend parent)", serr)
	}
}

func TestProxyChainLengthBounded(t *testing.T) {
	ca, cred, _ := proxyFixture(t)
	p, err := cred.Delegate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxChainLength; i++ {
		p, err = p.Delegate()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, serr := negotiate(t,
		[]Authenticator{&GSIProxyClient{Proxy: p}},
		verifierFor(ca), "x")
	if !errors.Is(serr, ErrRejected) {
		t.Fatalf("over-long chain = %v, want rejection", serr)
	}
}
