package auth

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"encoding/base64"
	"fmt"
	"strings"

	"identitybox/internal/identity"
)

// This file adds GSI proxy certificates: the "single login" mechanism.
// A user signs a short-lived key pair with their long-lived credential,
// producing a delegation chain (CA -> user cert -> proxy cert [-> ...]).
// Jobs carry only the proxy; the long-lived key never leaves home. A
// verifier walks the chain: the CA signature anchors trust, each link
// signs the next, and the principal is the *base* subject — proxies do
// not change who you are, which is exactly what identity boxing needs.

// proxySuffix marks each delegation level, as GSI appends "/CN=proxy".
const proxySuffix = "/CN=proxy"

// ProxyCredential is a delegated credential: a fresh key plus the chain
// of certificates from the user's certificate down to this proxy.
type ProxyCredential struct {
	Subject string // proxy subject, e.g. "/O=U/CN=Fred/CN=proxy"
	Key     *rsa.PrivateKey
	// Chain runs base-first: [user cert, first proxy, ..., this proxy].
	Chain []Cert
}

// BaseSubject reports the identity the chain bottoms out at.
func (pc *ProxyCredential) BaseSubject() string {
	return strings.ReplaceAll(pc.Subject, proxySuffix, "")
}

// signLink signs a child (subject, pubkey) with the parent key: the
// issuer field records the parent *subject*, distinguishing delegation
// links from the CA root signature.
func signLink(parentKey *rsa.PrivateKey, parentSubject, subject string, pubDER []byte) ([]byte, error) {
	return rsa.SignPKCS1v15(rand.Reader, parentKey, crypto.SHA256,
		certDigest(subject, parentSubject, pubDER))
}

// Delegate creates a proxy credential from a long-lived credential.
func (c *Credential) Delegate() (*ProxyCredential, error) {
	key, err := rsa.GenerateKey(rand.Reader, gsiKeyBits)
	if err != nil {
		return nil, err
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	subject := c.Subject + proxySuffix
	sig, err := signLink(c.Key, c.Subject, subject, pubDER)
	if err != nil {
		return nil, err
	}
	return &ProxyCredential{
		Subject: subject,
		Key:     key,
		Chain: []Cert{
			c.Cert,
			{Subject: subject, Issuer: c.Subject, PubKeyDER: pubDER, Sig: sig},
		},
	}, nil
}

// Delegate extends a proxy chain one more level (delegation onward to
// another service, as grid brokers do).
func (pc *ProxyCredential) Delegate() (*ProxyCredential, error) {
	key, err := rsa.GenerateKey(rand.Reader, gsiKeyBits)
	if err != nil {
		return nil, err
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	subject := pc.Subject + proxySuffix
	sig, err := signLink(pc.Key, pc.Subject, subject, pubDER)
	if err != nil {
		return nil, err
	}
	chain := make([]Cert, len(pc.Chain), len(pc.Chain)+1)
	copy(chain, pc.Chain)
	chain = append(chain, Cert{Subject: subject, Issuer: pc.Subject, PubKeyDER: pubDER, Sig: sig})
	return &ProxyCredential{Subject: subject, Key: key, Chain: chain}, nil
}

// GSIProxyClient authenticates with a proxy credential. The server
// records the *base* identity, so a job running on a proxy is known by
// the same global name as its owner — consistent global identity.
type GSIProxyClient struct {
	Proxy *ProxyCredential
}

// Method implements Authenticator.
func (g *GSIProxyClient) Method() Method { return MethodGlobus }

// Prove implements Authenticator: send the chain, sign the nonce with
// the proxy key.
func (g *GSIProxyClient) Prove(c *Conn) (identity.Principal, error) {
	if err := c.WriteLine(fmt.Sprintf("chain %d", len(g.Proxy.Chain))); err != nil {
		return "", err
	}
	for _, cert := range g.Proxy.Chain {
		line := fmt.Sprintf("cert %s %s %s %s",
			cert.Subject, cert.Issuer,
			base64.StdEncoding.EncodeToString(cert.PubKeyDER),
			base64.StdEncoding.EncodeToString(cert.Sig))
		if err := c.WriteLine(line); err != nil {
			return "", err
		}
	}
	nonce, err := c.ReadBlob()
	if err != nil {
		return "", err
	}
	digest := sha256Sum(nonce)
	sig, err := rsa.SignPKCS1v15(rand.Reader, g.Proxy.Key, crypto.SHA256, digest)
	if err != nil {
		return "", err
	}
	if err := c.WriteBlob(sig); err != nil {
		return "", err
	}
	return identity.New(string(MethodGlobus), g.Proxy.BaseSubject()), nil
}

// maxChainLength bounds delegation depth.
const maxChainLength = 8

// VerifyChain walks a certificate chain: the first link must be signed
// by a trusted CA; each later link by its predecessor's key, with the
// subject extended by exactly one proxy suffix. It returns the leaf key
// and the base subject.
func (g *GSIVerifier) verifyChain(chain []Cert) (*rsa.PublicKey, string, error) {
	if len(chain) == 0 || len(chain) > maxChainLength {
		return nil, "", fmt.Errorf("%w: bad chain length %d", ErrRejected, len(chain))
	}
	base := chain[0]
	caKey, ok := g.TrustedCAs[base.Issuer]
	if !ok {
		return nil, "", fmt.Errorf("%w: unknown CA %q", ErrRejected, base.Issuer)
	}
	if err := rsa.VerifyPKCS1v15(caKey, crypto.SHA256,
		certDigest(base.Subject, base.Issuer, base.PubKeyDER), base.Sig); err != nil {
		return nil, "", fmt.Errorf("%w: bad CA signature", ErrRejected)
	}
	parentKey, err := parseRSAPub(base.PubKeyDER)
	if err != nil {
		return nil, "", err
	}
	parentSubject := base.Subject
	for _, link := range chain[1:] {
		if link.Issuer != parentSubject {
			return nil, "", fmt.Errorf("%w: broken chain at %q", ErrRejected, link.Subject)
		}
		if link.Subject != parentSubject+proxySuffix {
			return nil, "", fmt.Errorf("%w: proxy subject %q does not extend %q", ErrRejected, link.Subject, parentSubject)
		}
		if err := rsa.VerifyPKCS1v15(parentKey, crypto.SHA256,
			certDigest(link.Subject, link.Issuer, link.PubKeyDER), link.Sig); err != nil {
			return nil, "", fmt.Errorf("%w: bad delegation signature at %q", ErrRejected, link.Subject)
		}
		parentKey, err = parseRSAPub(link.PubKeyDER)
		if err != nil {
			return nil, "", err
		}
		parentSubject = link.Subject
	}
	return parentKey, chain[0].Subject, nil
}

func parseRSAPub(der []byte) (*rsa.PublicKey, error) {
	pubAny, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, err
	}
	pub, ok := pubAny.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: unexpected key type", ErrRejected)
	}
	return pub, nil
}
