package auth

import (
	"crypto/rsa"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"identitybox/internal/identity"
)

// rsaPub shortens map literals in tests.
type rsaPub = rsa.PublicKey

// pipeConns returns two connected Conns over an in-memory duplex pipe.
func pipeConns(t *testing.T) (client, server *Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return NewConn(c1), NewConn(c2)
}

// negotiate runs both sides concurrently.
func negotiate(t *testing.T, auths []Authenticator, verifiers map[Method]Verifier, remoteHost string) (clientP, serverP identity.Principal, clientErr, serverErr error) {
	t.Helper()
	cc, sc := pipeConns(t)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		serverP, serverErr = ServerNegotiate(sc, verifiers, remoteHost)
	}()
	go func() {
		defer wg.Done()
		clientP, clientErr = ClientNegotiate(cc, auths)
	}()
	wg.Wait()
	return
}

func TestGSIRoundTrip(t *testing.T) {
	ca, err := NewCA("UnivNowhereCA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue("/O=UnivNowhere/CN=Fred")
	if err != nil {
		t.Fatal(err)
	}
	cp, sp, cerr, serr := negotiate(t,
		[]Authenticator{&GSIClient{Cred: cred}},
		map[Method]Verifier{MethodGlobus: &GSIVerifier{TrustedCAs: map[string]*rsaPub{"UnivNowhereCA": ca.PublicKey()}}},
		"client.host")
	if cerr != nil || serr != nil {
		t.Fatalf("errs: client %v, server %v", cerr, serr)
	}
	want := identity.Principal("globus:/O=UnivNowhere/CN=Fred")
	if cp != want || sp != want {
		t.Fatalf("principals = %q / %q, want %q", cp, sp, want)
	}
}

func TestGSIUntrustedCARejected(t *testing.T) {
	goodCA, _ := NewCA("Good")
	rogueCA, _ := NewCA("Rogue")
	cred, _ := rogueCA.Issue("/O=Evil/CN=Mallory")
	_, _, cerr, serr := negotiate(t,
		[]Authenticator{&GSIClient{Cred: cred}},
		map[Method]Verifier{MethodGlobus: &GSIVerifier{TrustedCAs: map[string]*rsaPub{"Good": goodCA.PublicKey()}}},
		"x")
	if serr == nil || !errors.Is(serr, ErrRejected) {
		t.Fatalf("server err = %v, want rejection", serr)
	}
	if cerr == nil {
		t.Fatal("client should observe failure")
	}
}

func TestGSIStolenCertWithoutKeyFails(t *testing.T) {
	ca, _ := NewCA("CA")
	victim, _ := ca.Issue("/O=U/CN=Victim")
	attacker, _ := ca.Issue("/O=U/CN=Attacker")
	// The attacker presents the victim's certificate but holds only its
	// own private key: the nonce challenge must fail.
	stolen := &Credential{Subject: victim.Subject, Key: attacker.Key, Cert: victim.Cert}
	_, _, _, serr := negotiate(t,
		[]Authenticator{&GSIClient{Cred: stolen}},
		map[Method]Verifier{MethodGlobus: &GSIVerifier{TrustedCAs: map[string]*rsaPub{"CA": ca.PublicKey()}}},
		"x")
	if serr == nil || !errors.Is(serr, ErrRejected) {
		t.Fatalf("server err = %v, want challenge rejection", serr)
	}
}

func TestKerberosRoundTrip(t *testing.T) {
	kdc := NewKDC("NOWHERE.EDU")
	key, err := kdc.RegisterService("chirp/server")
	if err != nil {
		t.Fatal(err)
	}
	tk, err := kdc.Grant("fred@nowhere.edu", "chirp/server", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cp, sp, cerr, serr := negotiate(t,
		[]Authenticator{&KerberosClient{Ticket: tk}},
		map[Method]Verifier{MethodKerberos: &KerberosVerifier{Service: "chirp/server", ServiceKey: key}},
		"x")
	if cerr != nil || serr != nil {
		t.Fatalf("errs: %v / %v", cerr, serr)
	}
	want := identity.Principal("kerberos:fred@nowhere.edu")
	if cp != want || sp != want {
		t.Fatalf("principals = %q / %q", cp, sp)
	}
}

func TestKerberosExpiredTicket(t *testing.T) {
	kdc := NewKDC("R")
	key, _ := kdc.RegisterService("svc")
	tk, _ := kdc.Grant("u@r", "svc", time.Hour)
	verifier := &KerberosVerifier{
		Service:    "svc",
		ServiceKey: key,
		Now:        func() time.Time { return time.Now().Add(2 * time.Hour) },
	}
	_, _, _, serr := negotiate(t,
		[]Authenticator{&KerberosClient{Ticket: tk}},
		map[Method]Verifier{MethodKerberos: verifier}, "x")
	if serr == nil || !strings.Contains(serr.Error(), "expired") {
		t.Fatalf("server err = %v, want expiry rejection", serr)
	}
}

func TestKerberosForgedTicket(t *testing.T) {
	kdc := NewKDC("R")
	key, _ := kdc.RegisterService("svc")
	tk, _ := kdc.Grant("u@r", "svc", time.Hour)
	tk.User = "root@r" // tamper after issue
	_, _, _, serr := negotiate(t,
		[]Authenticator{&KerberosClient{Ticket: tk}},
		map[Method]Verifier{MethodKerberos: &KerberosVerifier{Service: "svc", ServiceKey: key}}, "x")
	if serr == nil || !errors.Is(serr, ErrRejected) {
		t.Fatalf("server err = %v, want forgery rejection", serr)
	}
}

func TestUnixRoundTrip(t *testing.T) {
	cp, sp, cerr, serr := negotiate(t,
		[]Authenticator{&UnixClient{User: "dthain"}},
		map[Method]Verifier{MethodUnix: &UnixVerifier{}}, "x")
	if cerr != nil || serr != nil {
		t.Fatalf("errs: %v / %v", cerr, serr)
	}
	if cp != "unix:dthain" || sp != "unix:dthain" {
		t.Fatalf("principals = %q / %q", cp, sp)
	}
}

func TestUnixAllowList(t *testing.T) {
	_, _, _, serr := negotiate(t,
		[]Authenticator{&UnixClient{User: "mallory"}},
		map[Method]Verifier{MethodUnix: &UnixVerifier{Allowed: map[string]bool{"dthain": true}}}, "x")
	if serr == nil || !errors.Is(serr, ErrRejected) {
		t.Fatalf("server err = %v, want rejection", serr)
	}
}

func TestHostnameRoundTrip(t *testing.T) {
	hosts := HostTable{"10.0.0.7": "laptop.cs.nowhere.edu"}
	cp, sp, cerr, serr := negotiate(t,
		[]Authenticator{&HostnameClient{}},
		map[Method]Verifier{MethodHostname: &HostnameVerifier{Hosts: hosts}},
		"10.0.0.7")
	if cerr != nil || serr != nil {
		t.Fatalf("errs: %v / %v", cerr, serr)
	}
	want := identity.Principal("hostname:laptop.cs.nowhere.edu")
	if cp != want || sp != want {
		t.Fatalf("principals = %q / %q", cp, sp)
	}
}

func TestNegotiationFallsBack(t *testing.T) {
	// Client prefers globus, server only supports unix: negotiation
	// must fall through to the second method.
	ca, _ := NewCA("CA")
	cred, _ := ca.Issue("/O=U/CN=F")
	cp, sp, cerr, serr := negotiate(t,
		[]Authenticator{&GSIClient{Cred: cred}, &UnixClient{User: "fred"}},
		map[Method]Verifier{MethodUnix: &UnixVerifier{}}, "x")
	if cerr != nil || serr != nil {
		t.Fatalf("errs: %v / %v", cerr, serr)
	}
	if cp != "unix:fred" || sp != "unix:fred" {
		t.Fatalf("principals = %q / %q", cp, sp)
	}
}

func TestNegotiationNoCommonMethod(t *testing.T) {
	_, _, cerr, serr := negotiate(t,
		[]Authenticator{&UnixClient{User: "u"}},
		map[Method]Verifier{MethodHostname: &HostnameVerifier{}}, "x")
	if !errors.Is(cerr, ErrNoCommonMethod) {
		t.Fatalf("client err = %v", cerr)
	}
	if !errors.Is(serr, ErrNoCommonMethod) {
		t.Fatalf("server err = %v", serr)
	}
}

func TestConnRejectsEmbeddedNewline(t *testing.T) {
	cc, _ := pipeConns(t)
	if err := cc.WriteLine("evil\ninjection"); err == nil {
		t.Fatal("embedded newline accepted")
	}
}
