package auth

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"identitybox/internal/identity"
)

// This file implements a community authorization service (CAS), the
// admission-policy mechanism the paper cites (Pearlman et al. [32]):
// a community operator maintains membership and issues signed
// assertions granting rights over parts of a resource's namespace.
// A Chirp server that trusts the CAS combines those granted rights with
// its local ACLs — so a site can admit "anyone the physics community
// vouches for, with the rights the community granted" without listing
// every member locally.

// Grant conveys rights over a path subtree.
type Grant struct {
	// PathPrefix is the subtree the grant covers ("/" for everything).
	PathPrefix string `json:"path_prefix"`
	// Rights is an acl rights string such as "rlx".
	Rights string `json:"rights"`
}

// Assertion is a signed statement by a CAS that Subject is a member of
// Community holding Grants until Expiry.
type Assertion struct {
	CAS       string             `json:"cas"`
	Subject   identity.Principal `json:"subject"`
	Community string             `json:"community"`
	Grants    []Grant            `json:"grants"`
	Expiry    int64              `json:"expiry"` // unix seconds
	Sig       []byte             `json:"sig"`
}

// digest computes the signature input: the canonical JSON of the
// assertion with Sig empty.
func (a *Assertion) digest() ([]byte, error) {
	unsigned := *a
	unsigned.Sig = nil
	blob, err := json.Marshal(&unsigned)
	if err != nil {
		return nil, err
	}
	d := sha256.Sum256(blob)
	return d[:], nil
}

// Encode serializes the assertion for the wire.
func (a *Assertion) Encode() ([]byte, error) { return json.Marshal(a) }

// DecodeAssertion parses a wire assertion.
func DecodeAssertion(data []byte) (*Assertion, error) {
	var a Assertion
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("auth: malformed assertion: %w", err)
	}
	return &a, nil
}

// CAS is a community authorization service: membership plus a signing
// key.
type CAS struct {
	Name    string
	key     *rsa.PrivateKey
	members map[identity.Principal]casMember
	now     func() time.Time
}

type casMember struct {
	community string
	grants    []Grant
}

// NewCAS creates a community authorization service.
func NewCAS(name string) (*CAS, error) {
	key, err := rsa.GenerateKey(rand.Reader, gsiKeyBits)
	if err != nil {
		return nil, err
	}
	return &CAS{Name: name, key: key, members: make(map[identity.Principal]casMember), now: time.Now}, nil
}

// PublicKey returns the verification key resource providers install.
func (c *CAS) PublicKey() *rsa.PublicKey { return &c.key.PublicKey }

// SetClock overrides the clock (tests).
func (c *CAS) SetClock(now func() time.Time) { c.now = now }

// AddMember enrolls a principal in a community with the given grants.
func (c *CAS) AddMember(p identity.Principal, community string, grants []Grant) {
	c.members[p] = casMember{community: community, grants: grants}
}

// RemoveMember revokes membership; future Issue calls fail.
func (c *CAS) RemoveMember(p identity.Principal) {
	delete(c.members, p)
}

// Issue signs an assertion for a member, valid for ttl.
func (c *CAS) Issue(p identity.Principal, ttl time.Duration) (*Assertion, error) {
	m, ok := c.members[p]
	if !ok {
		return nil, fmt.Errorf("auth: %s is not a member of %s", p, c.Name)
	}
	grants := make([]Grant, len(m.grants))
	copy(grants, m.grants)
	a := &Assertion{
		CAS:       c.Name,
		Subject:   p,
		Community: m.community,
		Grants:    grants,
		Expiry:    c.now().Add(ttl).Unix(),
	}
	digest, err := a.digest()
	if err != nil {
		return nil, err
	}
	a.Sig, err = rsa.SignPKCS1v15(rand.Reader, c.key, crypto.SHA256, digest)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// CASVerifier checks assertions against a set of trusted communities.
type CASVerifier struct {
	// Trusted maps CAS name to verification key.
	Trusted map[string]*rsa.PublicKey
	// Now is an injectable clock; defaults to time.Now.
	Now func() time.Time
}

// Verify checks the assertion's signature, issuer trust, and expiry.
func (v *CASVerifier) Verify(a *Assertion) error {
	key, ok := v.Trusted[a.CAS]
	if !ok {
		return fmt.Errorf("%w: untrusted CAS %q", ErrRejected, a.CAS)
	}
	digest, err := a.digest()
	if err != nil {
		return err
	}
	if err := rsa.VerifyPKCS1v15(key, crypto.SHA256, digest, a.Sig); err != nil {
		return fmt.Errorf("%w: bad CAS signature", ErrRejected)
	}
	now := v.Now
	if now == nil {
		now = time.Now
	}
	if now().Unix() > a.Expiry {
		return fmt.Errorf("%w: assertion expired", ErrRejected)
	}
	return nil
}
