package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"strings"
	"time"

	"identitybox/internal/identity"
)

// This file implements the Kerberos-style ticket method: a KDC shares a
// secret key with each service; a client obtains a ticket (user, service,
// expiry, MAC under the service key) and presents it, plus an HMAC over a
// server nonce keyed by the ticket's session key, proving possession.

// Ticket is a service ticket granted by the KDC.
type Ticket struct {
	User       string // e.g. "fred@nowhere.edu"
	Service    string // e.g. "chirp/server.nowhere.edu"
	Expiry     int64  // unix seconds
	SessionKey []byte // shared between client and service via the ticket
	MAC        []byte // binds everything under the service key
}

func ticketMAC(serviceKey []byte, user, service string, expiry int64, session []byte) []byte {
	mac := hmac.New(sha256.New, serviceKey)
	fmt.Fprintf(mac, "%s\x00%s\x00%d\x00", user, service, expiry)
	mac.Write(session)
	return mac.Sum(nil)
}

// KDC is a toy key-distribution center: it knows user passwords (not
// modelled further) and service keys.
type KDC struct {
	Realm       string
	serviceKeys map[string][]byte
	now         func() time.Time
}

// NewKDC creates a KDC for a realm.
func NewKDC(realm string) *KDC {
	return &KDC{Realm: realm, serviceKeys: make(map[string][]byte), now: time.Now}
}

// RegisterService creates (or replaces) a service key and returns it;
// the service installs it in its verifier (the keytab).
func (k *KDC) RegisterService(service string) ([]byte, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	k.serviceKeys[service] = key
	return key, nil
}

// Grant issues a ticket for user to talk to service, valid for ttl.
func (k *KDC) Grant(user, service string, ttl time.Duration) (*Ticket, error) {
	key, ok := k.serviceKeys[service]
	if !ok {
		return nil, fmt.Errorf("auth: unknown service %q", service)
	}
	session := make([]byte, 32)
	if _, err := rand.Read(session); err != nil {
		return nil, err
	}
	expiry := k.now().Add(ttl).Unix()
	return &Ticket{
		User:       user,
		Service:    service,
		Expiry:     expiry,
		SessionKey: session,
		MAC:        ticketMAC(key, user, service, expiry, session),
	}, nil
}

// SetClock overrides the KDC clock (tests).
func (k *KDC) SetClock(now func() time.Time) { k.now = now }

// KerberosClient authenticates with a ticket.
type KerberosClient struct {
	Ticket *Ticket
}

// Method implements Authenticator.
func (kc *KerberosClient) Method() Method { return MethodKerberos }

// Prove implements Authenticator.
func (kc *KerberosClient) Prove(c *Conn) (p identity.Principal, err error) {
	t := kc.Ticket
	line := fmt.Sprintf("ticket %s %s %d %s %s",
		t.User, t.Service, t.Expiry,
		base64.StdEncoding.EncodeToString(t.SessionKey),
		base64.StdEncoding.EncodeToString(t.MAC))
	if err := c.WriteLine(line); err != nil {
		return "", err
	}
	nonce, err := c.ReadBlob()
	if err != nil {
		return "", err
	}
	mac := hmac.New(sha256.New, t.SessionKey)
	mac.Write(nonce)
	if err := c.WriteBlob(mac.Sum(nil)); err != nil {
		return "", err
	}
	return identity.New(string(MethodKerberos), t.User), nil
}

// KerberosVerifier verifies tickets with the service key (keytab).
type KerberosVerifier struct {
	Service    string
	ServiceKey []byte
	Now        func() time.Time // injectable clock; defaults to time.Now
}

// Method implements Verifier.
func (kv *KerberosVerifier) Method() Method { return MethodKerberos }

// Verify implements Verifier.
func (kv *KerberosVerifier) Verify(c *Conn, _ string) (identity.Principal, error) {
	line, err := c.ReadLine()
	if err != nil {
		return "", err
	}
	fields := strings.Fields(line)
	if len(fields) != 6 || fields[0] != "ticket" {
		return "", fmt.Errorf("auth: malformed ticket line %q", line)
	}
	user, service := fields[1], fields[2]
	var expiry int64
	if _, err := fmt.Sscanf(fields[3], "%d", &expiry); err != nil {
		return "", err
	}
	session, err := base64.StdEncoding.DecodeString(fields[4])
	if err != nil {
		return "", err
	}
	mac, err := base64.StdEncoding.DecodeString(fields[5])
	if err != nil {
		return "", err
	}
	if service != kv.Service {
		return "", fmt.Errorf("%w: ticket for wrong service %q", ErrRejected, service)
	}
	if !hmac.Equal(mac, ticketMAC(kv.ServiceKey, user, service, expiry, session)) {
		return "", fmt.Errorf("%w: forged ticket", ErrRejected)
	}
	now := kv.Now
	if now == nil {
		now = time.Now
	}
	if now().Unix() > expiry {
		return "", fmt.Errorf("%w: ticket expired", ErrRejected)
	}
	// Challenge: prove possession of the session key.
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		return "", err
	}
	if err := c.WriteBlob(nonce); err != nil {
		return "", err
	}
	proof, err := c.ReadBlob()
	if err != nil {
		return "", err
	}
	want := hmac.New(sha256.New, session)
	want.Write(nonce)
	if !hmac.Equal(proof, want.Sum(nil)) {
		return "", fmt.Errorf("%w: session challenge failed", ErrRejected)
	}
	return identity.New(string(MethodKerberos), user), nil
}
