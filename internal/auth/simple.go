package auth

import (
	"fmt"
	"strings"

	"identitybox/internal/identity"
)

// This file implements the two lightweight methods: asserted unix names
// (trusted for local connections, as the paper's Chirp does over
// filesystem-authenticated channels) and hostname identification by
// reverse lookup of the peer address.

// UnixClient asserts a local account name.
type UnixClient struct {
	User string
}

// Method implements Authenticator.
func (u *UnixClient) Method() Method { return MethodUnix }

// Prove implements Authenticator.
func (u *UnixClient) Prove(c *Conn) (identity.Principal, error) {
	if err := c.WriteLine("user " + u.User); err != nil {
		return "", err
	}
	return identity.New(string(MethodUnix), u.User), nil
}

// UnixVerifier accepts asserted names, optionally restricted to an
// allow list. With no list, any syntactically valid name is accepted —
// appropriate only where the transport itself is trusted.
type UnixVerifier struct {
	Allowed map[string]bool // nil means accept all
}

// Method implements Verifier.
func (u *UnixVerifier) Method() Method { return MethodUnix }

// Verify implements Verifier.
func (u *UnixVerifier) Verify(c *Conn, _ string) (identity.Principal, error) {
	line, err := c.ReadLine()
	if err != nil {
		return "", err
	}
	name, ok := strings.CutPrefix(line, "user ")
	if !ok || name == "" {
		return "", fmt.Errorf("auth: malformed unix assertion %q", line)
	}
	if u.Allowed != nil && !u.Allowed[name] {
		return "", fmt.Errorf("%w: unix user %q not allowed", ErrRejected, name)
	}
	return identity.New(string(MethodUnix), name), nil
}

// HostTable maps peer addresses to hostnames, standing in for reverse
// DNS. Addresses not in the table resolve to themselves.
type HostTable map[string]string

// Lookup resolves an address to a hostname.
func (t HostTable) Lookup(addr string) string {
	if t != nil {
		if h, ok := t[addr]; ok {
			return h
		}
	}
	return addr
}

// HostnameClient requests hostname identification; the proof is the
// connection itself.
type HostnameClient struct{}

// Method implements Authenticator.
func (h *HostnameClient) Method() Method { return MethodHostname }

// Prove implements Authenticator: nothing to send; the server derives
// the principal from the peer address and confirms it in the final
// "ok" line. We cannot predict the name, so read it back from the
// server's echo.
func (h *HostnameClient) Prove(c *Conn) (identity.Principal, error) {
	if err := c.WriteLine("hostname"); err != nil {
		return "", err
	}
	echo, err := c.ReadLine()
	if err != nil {
		return "", err
	}
	name, ok := strings.CutPrefix(echo, "you-are ")
	if !ok {
		return "", fmt.Errorf("auth: malformed hostname echo %q", echo)
	}
	return identity.Principal(name), nil
}

// HostnameVerifier identifies the client by its address.
type HostnameVerifier struct {
	Hosts HostTable
}

// Method implements Verifier.
func (h *HostnameVerifier) Method() Method { return MethodHostname }

// Verify implements Verifier.
func (h *HostnameVerifier) Verify(c *Conn, remoteHost string) (identity.Principal, error) {
	line, err := c.ReadLine()
	if err != nil {
		return "", err
	}
	if line != "hostname" {
		return "", fmt.Errorf("auth: malformed hostname request %q", line)
	}
	name := h.Hosts.Lookup(remoteHost)
	p := identity.New(string(MethodHostname), name)
	if err := c.WriteLine("you-are " + p.String()); err != nil {
		return "", err
	}
	return p, nil
}
