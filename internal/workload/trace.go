package workload

import (
	"fmt"
	"strconv"
	"strings"

	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
)

// This file implements trace replay: a workload described as a plain
// text system-call trace, replayed verbatim against the simulated
// kernel. It lets users benchmark identity boxing against their own
// applications' traces (e.g. captured with strace on a real system and
// converted), not just the six built-in mixes.
//
// Format: one operation per line; '#' starts a comment. File handles
// are named, not numbered, so traces compose:
//
//	# name     operation
//	compute 250                 ; burn 250 virtual microseconds
//	open    f /bench/input.dat ro
//	read    f 8192
//	pread   f 4096 65536
//	close   f
//	open    g /bench/out.dat creat
//	write   g 8192
//	close   g
//	stat    /bench/src00.c
//	readdir /bench
//	mkdir   /bench/tracedir
//	unlink  /bench/out.dat
//	spawn   /bench/cc-make.exe

// TraceOp is one parsed trace operation.
type TraceOp struct {
	Verb   string
	Handle string // named fd, for open/read/write/pread/pwrite/close
	Path   string
	Size   int
	Off    int64
	Micros float64 // for compute
	Flags  int     // for open
}

// Trace is a parsed syscall trace.
type Trace struct {
	Ops []TraceOp
}

// openFlagNames maps trace mode words to open flags.
var openFlagNames = map[string]int{
	"ro":    kernel.ORdonly,
	"wo":    kernel.OWronly,
	"rw":    kernel.ORdwr,
	"creat": kernel.OWronly | kernel.OCreat | kernel.OTrunc,
	"app":   kernel.OWronly | kernel.OCreat | kernel.OAppend,
}

// ParseTrace parses the text format above.
func ParseTrace(text string) (*Trace, error) {
	t := &Trace{}
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		op := TraceOp{Verb: fields[0]}
		args := fields[1:]
		bad := func(want string) error {
			return fmt.Errorf("workload: trace line %d: %s wants %s", ln+1, op.Verb, want)
		}
		var err error
		switch op.Verb {
		case "compute":
			if len(args) != 1 {
				return nil, bad("<microseconds>")
			}
			op.Micros, err = strconv.ParseFloat(args[0], 64)
			if err != nil || op.Micros < 0 {
				return nil, bad("a non-negative number")
			}
		case "open":
			if len(args) != 3 {
				return nil, bad("<handle> <path> <ro|wo|rw|creat|app>")
			}
			op.Handle, op.Path = args[0], args[1]
			flags, ok := openFlagNames[args[2]]
			if !ok {
				return nil, bad("mode ro|wo|rw|creat|app")
			}
			op.Flags = flags
		case "read", "write":
			if len(args) != 2 {
				return nil, bad("<handle> <bytes>")
			}
			op.Handle = args[0]
			op.Size, err = strconv.Atoi(args[1])
			if err != nil || op.Size < 0 {
				return nil, bad("a byte count")
			}
		case "pread", "pwrite":
			if len(args) != 3 {
				return nil, bad("<handle> <bytes> <offset>")
			}
			op.Handle = args[0]
			op.Size, err = strconv.Atoi(args[1])
			if err != nil || op.Size < 0 {
				return nil, bad("a byte count")
			}
			op.Off, err = strconv.ParseInt(args[2], 10, 64)
			if err != nil || op.Off < 0 {
				return nil, bad("an offset")
			}
		case "close":
			if len(args) != 1 {
				return nil, bad("<handle>")
			}
			op.Handle = args[0]
		case "stat", "lstat", "readdir", "mkdir", "rmdir", "unlink", "spawn", "chdir":
			if len(args) != 1 {
				return nil, bad("<path>")
			}
			op.Path = args[0]
		case "rename", "symlink", "link":
			if len(args) != 2 {
				return nil, bad("<a> <b>")
			}
			op.Path = args[0]
			op.Handle = args[1] // second path reuses the Handle slot
		case "getpid", "whoami":
			if len(args) != 0 {
				return nil, bad("no arguments")
			}
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown verb %q", ln+1, op.Verb)
		}
		t.Ops = append(t.Ops, op)
	}
	return t, nil
}

// Syscalls estimates the number of system calls the trace issues.
func (t *Trace) Syscalls() int {
	n := 0
	for _, op := range t.Ops {
		if op.Verb != "compute" {
			n++
		}
	}
	return n
}

// Program compiles the trace into a runnable kernel program. Replay is
// strict: any failing operation aborts with a nonzero exit code equal
// to 100 + the index of the failing op (mod 100), which tests decode.
func (t *Trace) Program() kernel.Program {
	return func(p *kernel.Proc, _ []string) int {
		fds := make(map[string]int)
		var buf []byte
		need := func(n int) []byte {
			if cap(buf) < n {
				buf = make([]byte, n)
			}
			return buf[:n]
		}
		for i, op := range t.Ops {
			fail := 100 + i%100
			var err error
			switch op.Verb {
			case "compute":
				p.Compute(vclock.Micros(op.Micros))
			case "open":
				var fd int
				fd, err = p.Open(op.Path, op.Flags, 0o644)
				if err == nil {
					fds[op.Handle] = fd
				}
			case "read":
				_, err = p.Read(fds[op.Handle], need(op.Size))
			case "write":
				_, err = p.Write(fds[op.Handle], need(op.Size))
			case "pread":
				_, err = p.Pread(fds[op.Handle], need(op.Size), op.Off)
			case "pwrite":
				_, err = p.Pwrite(fds[op.Handle], need(op.Size), op.Off)
			case "close":
				err = p.Close(fds[op.Handle])
				delete(fds, op.Handle)
			case "stat":
				_, err = p.Stat(op.Path)
			case "lstat":
				_, err = p.Lstat(op.Path)
			case "readdir":
				_, err = p.ReadDir(op.Path)
			case "mkdir":
				err = p.Mkdir(op.Path, 0o755)
			case "rmdir":
				err = p.Rmdir(op.Path)
			case "unlink":
				err = p.Unlink(op.Path)
			case "chdir":
				err = p.Chdir(op.Path)
			case "rename":
				err = p.Rename(op.Path, op.Handle)
			case "symlink":
				err = p.Symlink(op.Path, op.Handle)
			case "link":
				err = p.Link(op.Path, op.Handle)
			case "spawn":
				var pid int
				pid, err = p.Spawn(op.Path)
				if err == nil {
					_, _, err = p.Wait(pid)
				}
			case "getpid":
				p.Getpid()
			case "whoami":
				p.GetUserName()
			}
			if err != nil {
				return fail
			}
		}
		return 0
	}
}

// Render serializes the trace back to its text form.
func (t *Trace) Render() string {
	var b strings.Builder
	for _, op := range t.Ops {
		switch op.Verb {
		case "compute":
			fmt.Fprintf(&b, "compute %g\n", op.Micros)
		case "open":
			mode := "ro"
			for name, flags := range openFlagNames {
				if flags == op.Flags {
					mode = name
					break
				}
			}
			fmt.Fprintf(&b, "open %s %s %s\n", op.Handle, op.Path, mode)
		case "read", "write":
			fmt.Fprintf(&b, "%s %s %d\n", op.Verb, op.Handle, op.Size)
		case "pread", "pwrite":
			fmt.Fprintf(&b, "%s %s %d %d\n", op.Verb, op.Handle, op.Size, op.Off)
		case "close":
			fmt.Fprintf(&b, "close %s\n", op.Handle)
		case "rename", "symlink", "link":
			fmt.Fprintf(&b, "%s %s %s\n", op.Verb, op.Path, op.Handle)
		case "getpid", "whoami":
			fmt.Fprintf(&b, "%s\n", op.Verb)
		default:
			fmt.Fprintf(&b, "%s %s\n", op.Verb, op.Path)
		}
	}
	return b.String()
}
