package workload

import (
	"identitybox/internal/kernel"
)

// Micro is one system-call microbenchmark of Figure 5(a). Each measures
// the per-call latency of one operation against a warm file.
type Micro struct {
	Name string
	// Iterations per measurement cycle. The paper ran 1000 cycles of
	// 100000 iterations on real hardware; virtual time is deterministic
	// so far fewer suffice for an exact answer.
	Iterations int
	// op issues one operation; i is the iteration index.
	op func(p *kernel.Proc, st *microState, i int)
	// CallsPerIteration divides the measured time (open/close pairs
	// issue two calls but are reported as one bar).
	CallsPerIteration int
	// PaperUnmodified / PaperBoxed are the approximate bar heights in
	// microseconds read off Figure 5(a), for shape comparison.
	PaperUnmodified float64
	PaperBoxed      float64
}

type microState struct {
	fd   int
	buf1 []byte
	buf8 []byte
}

// Micros returns the seven microbenchmarks in figure order.
func Micros() []Micro {
	return []Micro{
		{
			Name: "getpid", Iterations: 2000, CallsPerIteration: 1,
			op:              func(p *kernel.Proc, _ *microState, _ int) { p.Getpid() },
			PaperUnmodified: 0.4, PaperBoxed: 6,
		},
		{
			Name: "stat", Iterations: 2000, CallsPerIteration: 1,
			op: func(p *kernel.Proc, _ *microState, _ int) {
				p.Stat(dataFile)
			},
			PaperUnmodified: 2, PaperBoxed: 22,
		},
		{
			Name: "open/close", Iterations: 1000, CallsPerIteration: 1,
			op: func(p *kernel.Proc, _ *microState, _ int) {
				fd, err := p.Open(dataFile, kernel.ORdonly, 0)
				if err == nil {
					p.Close(fd)
				}
			},
			PaperUnmodified: 4, PaperBoxed: 35,
		},
		{
			Name: "read 1 byte", Iterations: 2000, CallsPerIteration: 1,
			op: func(p *kernel.Proc, st *microState, i int) {
				p.Pread(st.fd, st.buf1, int64(i)%DataFileSize)
			},
			PaperUnmodified: 1.2, PaperBoxed: 13,
		},
		{
			Name: "read 8 kbyte", Iterations: 1000, CallsPerIteration: 1,
			op: func(p *kernel.Proc, st *microState, i int) {
				p.Pread(st.fd, st.buf8, int64(i*BlockSize)%(DataFileSize-BlockSize))
			},
			PaperUnmodified: 6, PaperBoxed: 27,
		},
		{
			Name: "write 1 byte", Iterations: 2000, CallsPerIteration: 1,
			op: func(p *kernel.Proc, st *microState, i int) {
				p.Pwrite(st.fd, st.buf1, int64(i)%DataFileSize)
			},
			PaperUnmodified: 1.4, PaperBoxed: 14,
		},
		{
			Name: "write 8 kbyte", Iterations: 1000, CallsPerIteration: 1,
			op: func(p *kernel.Proc, st *microState, i int) {
				p.Pwrite(st.fd, st.buf8, int64(i*BlockSize)%(DataFileSize-BlockSize))
			},
			PaperUnmodified: 7, PaperBoxed: 32,
		},
	}
}

// MicroByName looks up a microbenchmark.
func MicroByName(name string) (Micro, bool) {
	for _, m := range Micros() {
		if m.Name == name {
			return m, true
		}
	}
	return Micro{}, false
}

// Program compiles the microbenchmark into a kernel program that
// records the per-call latency in virtual microseconds through the
// result channel.
func (m Micro) Program(result *float64) kernel.Program {
	return func(p *kernel.Proc, _ []string) int {
		st := &microState{buf1: make([]byte, 1), buf8: make([]byte, BlockSize)}
		fd, err := p.Open(dataFile, kernel.ORdwr, 0)
		if err != nil {
			return 1
		}
		st.fd = fd
		// Warm up once (populates supervisor fd tables the way a real
		// run would already be warm).
		m.op(p, st, 0)
		start := p.Clock().Now()
		for i := 0; i < m.Iterations; i++ {
			m.op(p, st, i)
		}
		elapsed := p.Clock().Now() - start
		*result = float64(elapsed) / float64(m.Iterations*m.CallsPerIteration)
		p.Close(fd)
		return 0
	}
}

// MeasureMicro runs the microbenchmark natively and boxed on the given
// runners, returning per-call latency in virtual microseconds.
func MeasureMicro(m Micro, run func(prog kernel.Program) kernel.ExitStatus) (perCall float64, err error) {
	var out float64
	stt := run(m.Program(&out))
	if stt.Code != 0 {
		return 0, errMicroFailed(m.Name, stt.Code)
	}
	return out, nil
}

type microError struct {
	name string
	code int
}

func (e *microError) Error() string {
	return "workload: micro " + e.name + " failed"
}

func errMicroFailed(name string, code int) error {
	return &microError{name: name, code: code}
}
