package workload

import (
	"testing"

	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

func benchWorld(t *testing.T) *kernel.Kernel {
	t.Helper()
	fs := vfs.New(kernel.RootAccount)
	k := kernel.New(fs, vclock.Default())
	if err := Setup(fs, "bench"); err != nil {
		t.Fatal(err)
	}
	return k
}

func runNative(k *kernel.Kernel, prog kernel.Program) kernel.ExitStatus {
	return k.Run(kernel.ProcSpec{Account: "bench", Cwd: BenchRoot}, prog)
}

func TestSetupCreatesTree(t *testing.T) {
	k := benchWorld(t)
	fs := k.FS()
	st, err := fs.Stat(BenchRoot + "/input.dat")
	if err != nil || st.Size != DataFileSize {
		t.Fatalf("input.dat = %+v, %v", st, err)
	}
	if !fs.Exists(BenchRoot+"/src00.c") || !fs.Exists(BenchRoot+"/src99.c") {
		t.Fatal("source tree missing")
	}
	if !fs.Exists(BenchRoot + "/.__acl") {
		t.Fatal("bench ACL missing")
	}
	// Idempotent.
	if err := Setup(fs, "bench"); err != nil {
		t.Fatalf("second setup: %v", err)
	}
}

func TestAppsCatalog(t *testing.T) {
	apps := Apps()
	if len(apps) != 6 {
		t.Fatalf("apps = %d, want 6", len(apps))
	}
	names := []string{"amanda", "blast", "cms", "hf", "ibis", "make"}
	for i, want := range names {
		if apps[i].Name != want {
			t.Errorf("apps[%d] = %q, want %q", i, apps[i].Name, want)
		}
		if apps[i].Mix.Ops() == 0 {
			t.Errorf("%s: empty mix", want)
		}
		if apps[i].ComputeSeconds <= 0 || apps[i].PaperRuntimeSeconds <= 0 {
			t.Errorf("%s: missing calibration", want)
		}
	}
	if _, ok := AppByName("blast"); !ok {
		t.Error("AppByName(blast) failed")
	}
	if _, ok := AppByName("doom"); ok {
		t.Error("AppByName(doom) should fail")
	}
	// Only make spawns children.
	for _, a := range apps {
		if (a.Mix.Children > 0) != (a.Name == "make") {
			t.Errorf("%s: children = %d", a.Name, a.Mix.Children)
		}
	}
}

func TestScaledShrinksProportionally(t *testing.T) {
	a, _ := AppByName("blast")
	s := a.Scaled(0.1)
	if s.Mix.Reads8k != a.Mix.Reads8k/10 {
		t.Errorf("scaled reads = %d", s.Mix.Reads8k)
	}
	if s.ComputeSeconds != a.ComputeSeconds*0.1 {
		t.Errorf("scaled compute = %v", s.ComputeSeconds)
	}
}

func TestAppProgramRunsClean(t *testing.T) {
	for _, app := range Apps() {
		a := app.Scaled(0.002)
		k := benchWorld(t)
		st := runNative(k, a.Program())
		if st.Code != 0 {
			t.Errorf("%s exited %d", a.Name, st.Code)
		}
		if st.Runtime <= 0 {
			t.Errorf("%s runtime = %v", a.Name, st.Runtime)
		}
	}
}

func TestAppRuntimeDeterministic(t *testing.T) {
	a, _ := AppByName("cms")
	a = a.Scaled(0.002)
	k1 := benchWorld(t)
	k2 := benchWorld(t)
	r1 := runNative(k1, a.Program()).Runtime
	r2 := runNative(k2, a.Program()).Runtime
	if r1 != r2 {
		t.Fatalf("nondeterministic runtime: %v vs %v", r1, r2)
	}
}

func TestAppRuntimeNearPaperBar(t *testing.T) {
	// At full scale the native runtime approximates the paper's bar; at
	// scale f it should be f times that.
	a, _ := AppByName("ibis")
	s := a.Scaled(0.01)
	k := benchWorld(t)
	st := runNative(k, s.Program())
	got := st.Runtime.Seconds()
	want := a.PaperRuntimeSeconds * 0.01
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("scaled ibis runtime = %.2fs, want about %.2fs", got, want)
	}
}

func TestMakeSpawnsChildren(t *testing.T) {
	a, _ := AppByName("make")
	a = a.Scaled(0.002)
	if a.Mix.Children < 1 {
		t.Fatal("scaled make lost its children")
	}
	k := benchWorld(t)
	st := runNative(k, a.Program())
	if st.Code != 0 {
		t.Fatalf("make exited %d", st.Code)
	}
}

func TestMicrosCatalog(t *testing.T) {
	ms := Micros()
	if len(ms) != 7 {
		t.Fatalf("micros = %d, want 7", len(ms))
	}
	for _, m := range ms {
		if m.Iterations <= 0 || m.CallsPerIteration <= 0 {
			t.Errorf("%s: bad iteration config", m.Name)
		}
		if m.PaperBoxed <= m.PaperUnmodified {
			t.Errorf("%s: paper values inverted", m.Name)
		}
	}
	if _, ok := MicroByName("stat"); !ok {
		t.Error("MicroByName(stat) failed")
	}
	if _, ok := MicroByName("nope"); ok {
		t.Error("MicroByName(nope) should fail")
	}
}

func TestMicroMeasurementDeterministic(t *testing.T) {
	m, _ := MicroByName("stat")
	k1 := benchWorld(t)
	v1, err := MeasureMicro(m, func(p kernel.Program) kernel.ExitStatus { return runNative(k1, p) })
	if err != nil {
		t.Fatal(err)
	}
	k2 := benchWorld(t)
	v2, err := MeasureMicro(m, func(p kernel.Program) kernel.ExitStatus { return runNative(k2, p) })
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("nondeterministic: %v vs %v", v1, v2)
	}
	if v1 <= 0 {
		t.Fatalf("per-call latency = %v", v1)
	}
}

func TestMixOps(t *testing.T) {
	m := Mix{Reads8k: 1, Writes8k: 2, Stats: 3, OpenClose: 4, Small: 5, Children: 6}
	if m.Ops() != 21 {
		t.Fatalf("Ops = %d", m.Ops())
	}
}
