package workload

import (
	"fmt"
	"sync"

	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
)

// Recorder is a kernel.Tracer that captures a program's system calls
// into a replayable Trace — the simulated-world equivalent of recording
// an application with strace to benchmark it later under an identity
// box. Recording is passive: every call passes through natively, and
// compute time between calls is reconstructed from the virtual clock.
type Recorder struct {
	mu      sync.Mutex
	ops     []TraceOp
	handles map[int]string // live fd -> trace handle name
	nextH   int
	lastNow map[*kernel.Proc]vclock.Micros
	// syscall cost charged since entry; used to exclude kernel time
	// from the reconstructed compute gaps.
	pending vclock.Micros
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		handles: make(map[int]string),
		lastNow: make(map[*kernel.Proc]vclock.Micros),
	}
}

// ProcStart implements kernel.ProcessWatcher: baseline the clock so
// compute before the first syscall is attributed.
func (r *Recorder) ProcStart(parent, child *kernel.Proc) {
	r.mu.Lock()
	r.lastNow[child] = child.Clock().Now()
	r.mu.Unlock()
}

// ProcExit implements kernel.ProcessWatcher.
func (r *Recorder) ProcExit(p *kernel.Proc, code int) {
	r.mu.Lock()
	delete(r.lastNow, p)
	r.mu.Unlock()
}

// Trace returns the recording so far.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Trace{Ops: make([]TraceOp, len(r.ops))}
	copy(t.Ops, r.ops)
	return t
}

// SyscallEntry implements kernel.Tracer: note the gap since the last
// call as compute, then record the call.
func (r *Recorder) SyscallEntry(p *kernel.Proc, f *kernel.Frame) kernel.EntryAction {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := p.Clock().Now()
	if last, ok := r.lastNow[p]; ok && now > last {
		gap := float64(now - last)
		if gap > 0.01 {
			r.ops = append(r.ops, TraceOp{Verb: "compute", Micros: gap})
		}
	}
	return kernel.ActionNative
}

// SyscallExit implements kernel.Tracer: record the completed call with
// its results (the fd a successful open returned, the bytes a read
// moved).
func (r *Recorder) SyscallExit(p *kernel.Proc, f *kernel.Frame) {
	r.mu.Lock()
	defer r.mu.Unlock()
	defer func() { r.lastNow[p] = p.Clock().Now() }()
	if f.Err != nil {
		return // replay only what succeeded
	}
	switch f.Sys {
	case kernel.SysOpen:
		r.nextH++
		name := fmt.Sprintf("h%d", r.nextH)
		r.handles[int(f.Ret)] = name
		mode := "ro"
		switch {
		case f.Flags&kernel.OCreat != 0 && f.Flags&kernel.OAppend != 0:
			mode = "app"
		case f.Flags&kernel.OCreat != 0:
			mode = "creat"
		case f.Flags&3 == kernel.OWronly:
			mode = "wo"
		case f.Flags&3 == kernel.ORdwr:
			mode = "rw"
		}
		r.ops = append(r.ops, TraceOp{Verb: "open", Handle: name, Path: f.Path, Flags: openFlagNames[mode]})
	case kernel.SysClose:
		if name, ok := r.handles[f.FD]; ok {
			r.ops = append(r.ops, TraceOp{Verb: "close", Handle: name})
			delete(r.handles, f.FD)
		}
	case kernel.SysRead:
		if name, ok := r.handles[f.FD]; ok {
			r.ops = append(r.ops, TraceOp{Verb: "read", Handle: name, Size: int(f.Ret)})
		}
	case kernel.SysWrite:
		if name, ok := r.handles[f.FD]; ok {
			r.ops = append(r.ops, TraceOp{Verb: "write", Handle: name, Size: int(f.Ret)})
		}
	case kernel.SysPread:
		if name, ok := r.handles[f.FD]; ok {
			r.ops = append(r.ops, TraceOp{Verb: "pread", Handle: name, Size: int(f.Ret), Off: f.Off})
		}
	case kernel.SysPwrite:
		if name, ok := r.handles[f.FD]; ok {
			r.ops = append(r.ops, TraceOp{Verb: "pwrite", Handle: name, Size: int(f.Ret), Off: f.Off})
		}
	case kernel.SysStat:
		r.ops = append(r.ops, TraceOp{Verb: "stat", Path: f.Path})
	case kernel.SysLstat:
		r.ops = append(r.ops, TraceOp{Verb: "lstat", Path: f.Path})
	case kernel.SysGetdents:
		r.ops = append(r.ops, TraceOp{Verb: "readdir", Path: f.Path})
	case kernel.SysMkdir:
		r.ops = append(r.ops, TraceOp{Verb: "mkdir", Path: f.Path})
	case kernel.SysRmdir:
		r.ops = append(r.ops, TraceOp{Verb: "rmdir", Path: f.Path})
	case kernel.SysUnlink:
		r.ops = append(r.ops, TraceOp{Verb: "unlink", Path: f.Path})
	case kernel.SysChdir:
		r.ops = append(r.ops, TraceOp{Verb: "chdir", Path: f.Path})
	case kernel.SysRename:
		r.ops = append(r.ops, TraceOp{Verb: "rename", Path: f.Path, Handle: f.Path2})
	case kernel.SysSymlink:
		r.ops = append(r.ops, TraceOp{Verb: "symlink", Path: f.Path2, Handle: f.Path})
	case kernel.SysLink:
		r.ops = append(r.ops, TraceOp{Verb: "link", Path: f.Path, Handle: f.Path2})
	case kernel.SysGetpid:
		r.ops = append(r.ops, TraceOp{Verb: "getpid"})
	case kernel.SysGetUserName:
		r.ops = append(r.ops, TraceOp{Verb: "whoami"})
		// SysSpawn is deliberately not recorded: children inherit the
		// tracer, so their own calls are captured inline; replaying
		// both a spawn and the child's calls would double-count.
	}
}

// Record runs prog natively under a recorder on the given kernel and
// returns the captured trace.
func Record(k *kernel.Kernel, account, cwd string, prog kernel.Program, args ...string) (*Trace, kernel.ExitStatus) {
	rec := NewRecorder()
	st := k.Run(kernel.ProcSpec{Account: account, Cwd: cwd, Tracer: rec}, prog, args...)
	return rec.Trace(), st
}
