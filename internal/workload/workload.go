// Package workload implements the programs measured in the paper's
// evaluation (Section 7): the microbenchmarks of Figure 5(a) and the
// six applications of Figure 5(b).
//
// The real binaries (AMANDA, BLAST, CMS, HF, IBIS, and a make-based
// software build) are replaced by synthetic applications that issue the
// same *mixes* of system calls — large-block sequential I/O for the
// science codes, dense small metadata traffic and child processes for
// the build — with compute time between calls matching the paper's
// reported runtimes. The paper attributes the overhead differences
// entirely to these mixes, so reproducing the mixes reproduces the
// overhead shape (see DESIGN.md, substitutions).
package workload

import (
	"fmt"

	"identitybox/internal/acl"
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// BenchRoot is the directory the workloads operate in. Setup gives it
// an ACL granting every identity full rights, so the same program runs
// unmodified both natively and inside any identity box.
const BenchRoot = "/bench"

// dataFile is the warm input file, resident "in the buffer cache"
// (our VFS is memory-resident by construction, matching the paper's
// warm-cache methodology).
const dataFile = BenchRoot + "/input.dat"

// outFile receives bulk writes.
const outFile = BenchRoot + "/output.dat"

// srcFiles is the number of small "source files" the make workload
// stats and rebuilds.
const srcFiles = 100

// BlockSize is the bulk transfer unit, as in Figure 5(a).
const BlockSize = 8192

// DataFileSize is the size of the warm input file.
const DataFileSize = 1 << 20

// Setup prepares the bench tree on a file system: input data, output
// file, source tree, and a permissive ACL so boxed runs are authorized.
func Setup(fs *vfs.FS, owner string) error {
	if err := fs.MkdirAll(BenchRoot, 0o777, owner); err != nil {
		return err
	}
	open := &acl.ACL{}
	open.Set("*", acl.All, acl.None)
	if err := fs.WriteFile(BenchRoot+"/"+acl.FileName, []byte(open.String()), 0o644, owner); err != nil {
		return err
	}
	data := make([]byte, DataFileSize)
	for i := range data {
		data[i] = byte(i * 131)
	}
	if err := fs.WriteFile(dataFile, data, 0o666, owner); err != nil {
		return err
	}
	if err := fs.WriteFile(outFile, nil, 0o666, owner); err != nil {
		return err
	}
	for i := 0; i < srcFiles; i++ {
		p := fmt.Sprintf("%s/src%02d.c", BenchRoot, i)
		if err := fs.WriteFile(p, []byte("int main(){return 0;}\n"), 0o666, owner); err != nil {
			return err
		}
	}
	return nil
}

// Mix is a count of each operation type an application issues.
type Mix struct {
	Reads8k   int // 8 kB preads from the warm input file
	Writes8k  int // 8 kB pwrites to the output file
	Stats     int // stat calls over the source tree
	OpenClose int // open+close pairs on existing files
	Small     int // 1-byte preads
	Children  int // child processes spawned (the build's compilers)
}

// Ops reports the total operation count (open/close pairs count once).
func (m Mix) Ops() int {
	return m.Reads8k + m.Writes8k + m.Stats + m.OpenClose + m.Small + m.Children
}

// App is one application of Figure 5(b).
type App struct {
	Name string
	// Description says what the real application is.
	Description string
	// ComputeSeconds is pure application CPU time between system
	// calls, calibrated so the native runtime approximates the paper's
	// bar height.
	ComputeSeconds float64
	// Mix is the syscall mix.
	Mix Mix
	// PaperOverheadPct is the bar annotation in Figure 5(b).
	PaperOverheadPct float64
	// PaperRuntimeSeconds approximates the native bar height.
	PaperRuntimeSeconds float64
}

// Scaled returns the app shrunk by factor f (both compute and ops), so
// unit tests run quickly; the relative overhead is invariant under
// scaling.
func (a App) Scaled(f float64) App {
	s := a
	s.ComputeSeconds *= f
	s.Mix = Mix{
		Reads8k:   int(float64(a.Mix.Reads8k) * f),
		Writes8k:  int(float64(a.Mix.Writes8k) * f),
		Stats:     int(float64(a.Mix.Stats) * f),
		OpenClose: int(float64(a.Mix.OpenClose) * f),
		Small:     int(float64(a.Mix.Small) * f),
		Children:  a.Mix.Children, // keep process structure
	}
	if a.Mix.Children > 4 {
		s.Mix.Children = int(float64(a.Mix.Children) * f)
		if s.Mix.Children < 1 {
			s.Mix.Children = 1
		}
	}
	return s
}

// Apps returns the six applications, in the order of Figure 5(b), with
// mixes calibrated against the default cost model (see DESIGN.md §4).
func Apps() []App {
	return []App{
		{
			Name:                "amanda",
			Description:         "simulation of a gamma-ray telescope (AMANDA)",
			ComputeSeconds:      997.2,
			Mix:                 Mix{Reads8k: 300000, Writes8k: 100000, Stats: 50000, OpenClose: 25000, Small: 100000},
			PaperOverheadPct:    1.1,
			PaperRuntimeSeconds: 1000,
		},
		{
			Name:                "blast",
			Description:         "genomic database search (BLAST)",
			ComputeSeconds:      345.0,
			Mix:                 Mix{Reads8k: 700000, Stats: 100000, OpenClose: 50000, Small: 60000},
			PaperOverheadPct:    5.2,
			PaperRuntimeSeconds: 350,
		},
		{
			Name:                "cms",
			Description:         "high-energy physics apparatus simulation (CMS)",
			ComputeSeconds:      895.0,
			Mix:                 Mix{Reads8k: 500000, Writes8k: 200000, Stats: 150000, OpenClose: 40000, Small: 70000},
			PaperOverheadPct:    2.1,
			PaperRuntimeSeconds: 900,
		},
		{
			Name:                "hf",
			Description:         "nucleic/electronic interaction simulation (HF)",
			ComputeSeconds:      442.0,
			Mix:                 Mix{Reads8k: 300000, Writes8k: 900000, Stats: 120000, OpenClose: 30000, Small: 80000},
			PaperOverheadPct:    6.5,
			PaperRuntimeSeconds: 450,
		},
		{
			Name:                "ibis",
			Description:         "climate simulation (IBIS)",
			ComputeSeconds:      648.8,
			Mix:                 Mix{Reads8k: 120000, Writes8k: 60000, Stats: 30000, Small: 20000},
			PaperOverheadPct:    0.7,
			PaperRuntimeSeconds: 650,
		},
		{
			Name:                "make",
			Description:         "software build of the Parrot source tree (make)",
			ComputeSeconds:      190.0,
			Mix:                 Mix{Reads8k: 50000, Stats: 3000000, OpenClose: 800000, Small: 600000, Children: 200},
			PaperOverheadPct:    35.0,
			PaperRuntimeSeconds: 200,
		},
	}
}

// AppByName looks up an application.
func AppByName(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Program compiles the app into a runnable kernel program. The program
// interleaves operation types deterministically (largest-remainder
// scheduling) and spreads compute time evenly between operations, so
// both native and boxed runs execute the identical call sequence.
func (a App) Program() kernel.Program {
	return func(p *kernel.Proc, _ []string) int {
		mix := a.Mix
		childOps := Mix{}
		if mix.Children > 0 {
			// The build's compilers do part of the metadata work.
			per := mix.Children + 1
			childOps = Mix{
				Stats:     mix.Stats / per,
				OpenClose: mix.OpenClose / per,
				Small:     mix.Small / per,
			}
			mix.Stats -= childOps.Stats * mix.Children
			mix.OpenClose -= childOps.OpenClose * mix.Children
			mix.Small -= childOps.Small * mix.Children
		}
		totalOps := a.Mix.Ops()
		if totalOps == 0 {
			totalOps = 1
		}
		computePerOp := vclock.Micros(a.ComputeSeconds * 1e6 / float64(totalOps))

		if mix.Children > 0 {
			if err := installChildProgram(p.Kernel(), a.Name, childOps, computePerOp); err != nil {
				return 1
			}
		}
		if code := runMix(p, mix, computePerOp, a.Name); code != 0 {
			return code
		}
		return 0
	}
}

// childProgPath is where the build's "compiler" binary lives.
func childProgPath(app string) string { return BenchRoot + "/cc-" + app + ".exe" }

// installChildProgram registers and stages the compiler child used by
// the make workload.
func installChildProgram(k *kernel.Kernel, app string, ops Mix, computePerOp vclock.Micros) error {
	progName := "workload-child-" + app
	k.RegisterProgram(progName, func(p *kernel.Proc, _ []string) int {
		return runMix(p, ops, computePerOp, app)
	})
	if k.FS().Exists(childProgPath(app)) {
		return nil
	}
	return k.FS().WriteFile(childProgPath(app), kernel.ExecutableBytes(progName), 0o777, "root")
}

// runMix issues the operations of mix in a deterministic interleaving.
func runMix(p *kernel.Proc, mix Mix, computePerOp vclock.Micros, app string) int {
	inFD, err := p.Open(dataFile, kernel.ORdonly, 0)
	if err != nil {
		return 10
	}
	outFD, err := p.Open(outFile, kernel.OWronly, 0)
	if err != nil {
		return 11
	}
	buf := make([]byte, BlockSize)
	one := make([]byte, 1)

	// Largest-remainder interleaving over the op kinds.
	type opKind struct {
		count int
		run   func(i int) bool
	}
	kinds := []opKind{
		{mix.Reads8k, func(i int) bool {
			off := int64(i*BlockSize) % (DataFileSize - BlockSize)
			n, err := p.Pread(inFD, buf, off)
			return err == nil && n == BlockSize
		}},
		{mix.Writes8k, func(i int) bool {
			off := int64(i*BlockSize) % (4 << 20)
			_, err := p.Pwrite(outFD, buf, off)
			return err == nil
		}},
		{mix.Stats, func(i int) bool {
			_, err := p.Stat(fmt.Sprintf("%s/src%02d.c", BenchRoot, i%srcFiles))
			return err == nil
		}},
		{mix.OpenClose, func(i int) bool {
			fd, err := p.Open(fmt.Sprintf("%s/src%02d.c", BenchRoot, i%srcFiles), kernel.ORdonly, 0)
			if err != nil {
				return false
			}
			return p.Close(fd) == nil
		}},
		{mix.Small, func(i int) bool {
			_, err := p.Pread(inFD, one, int64(i)%DataFileSize)
			return err == nil
		}},
		{mix.Children, func(i int) bool {
			pid, err := p.Spawn(childProgPath(app))
			if err != nil {
				return false
			}
			_, status, err := p.Wait(pid)
			return err == nil && status == 0
		}},
	}
	total := 0
	for _, k := range kinds {
		total += k.count
	}
	issued := make([]int, len(kinds))
	for n := 0; n < total; n++ {
		// Pick the kind furthest behind its proportional share.
		best, bestLag := -1, 0.0
		for ki, k := range kinds {
			if issued[ki] >= k.count {
				continue
			}
			lag := float64(k.count)*float64(n+1)/float64(total) - float64(issued[ki])
			if best < 0 || lag > bestLag {
				best, bestLag = ki, lag
			}
		}
		if best < 0 {
			break
		}
		if !kinds[best].run(issued[best]) {
			return 20 + best
		}
		issued[best]++
		p.Compute(computePerOp)
	}
	if p.Close(inFD) != nil || p.Close(outFD) != nil {
		return 12
	}
	return 0
}
