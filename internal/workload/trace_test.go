package workload

import (
	"strings"
	"testing"

	"identitybox/internal/kernel"
)

const sampleTrace = `
# a small application trace
compute 500
open in /bench/input.dat ro
pread in 8192 0
read in 4096
close in
open out /bench/trace-out.dat creat
write out 1024
close out
stat /bench/src00.c
readdir /bench
mkdir /bench/tracedir
rmdir /bench/tracedir
getpid
whoami
`

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace(sampleTrace)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 14 {
		t.Fatalf("ops = %d, want 14", len(tr.Ops))
	}
	if tr.Syscalls() != 13 {
		t.Fatalf("syscalls = %d, want 13 (compute is not a call)", tr.Syscalls())
	}
	if tr.Ops[0].Verb != "compute" || tr.Ops[0].Micros != 500 {
		t.Fatalf("op0 = %+v", tr.Ops[0])
	}
	if tr.Ops[1].Flags != kernel.ORdonly {
		t.Fatalf("open flags = %#x", tr.Ops[1].Flags)
	}
}

func TestParseTraceErrors(t *testing.T) {
	bad := []string{
		"open f /x",               // missing mode
		"open f /x banana",        // unknown mode
		"read f",                  // missing size
		"read f notanumber",       // bad size
		"pread f 10",              // missing offset
		"compute -5",              // negative
		"teleport /x",             // unknown verb
		"rename /only",            // missing second path
		"getpid extra",            // surplus args
		"pwrite f 10 -3",          // negative offset
		"stat",                    // missing path
		"open f /x ro extrajunk7", // surplus
	}
	for _, text := range bad {
		if _, err := ParseTrace(text); err == nil {
			t.Errorf("ParseTrace(%q) should fail", text)
		}
	}
}

func TestTraceReplayNative(t *testing.T) {
	tr, err := ParseTrace(sampleTrace)
	if err != nil {
		t.Fatal(err)
	}
	k := benchWorld(t)
	st := runNative(k, tr.Program())
	if st.Code != 0 {
		t.Fatalf("replay exited %d", st.Code)
	}
	if st.Syscalls < int64(tr.Syscalls()) {
		t.Fatalf("only %d syscalls issued, trace has %d", st.Syscalls, tr.Syscalls())
	}
	if !k.FS().Exists("/bench/trace-out.dat") {
		t.Fatal("trace writes did not land")
	}
}

func TestTraceFailureIndexDecodable(t *testing.T) {
	tr, err := ParseTrace("stat /does/not/exist")
	if err != nil {
		t.Fatal(err)
	}
	k := benchWorld(t)
	st := runNative(k, tr.Program())
	if st.Code != 100 {
		t.Fatalf("exit = %d, want 100 (failure at op 0)", st.Code)
	}
}

func TestTraceRenderRoundTrip(t *testing.T) {
	tr, err := ParseTrace(sampleTrace)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := ParseTrace(tr.Render())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, tr.Render())
	}
	if len(tr2.Ops) != len(tr.Ops) {
		t.Fatalf("round trip: %d vs %d ops", len(tr2.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if tr.Ops[i] != tr2.Ops[i] {
			t.Fatalf("op %d changed: %+v vs %+v", i, tr.Ops[i], tr2.Ops[i])
		}
	}
}

func TestTraceDeterministicRuntime(t *testing.T) {
	tr, _ := ParseTrace(sampleTrace)
	k1, k2 := benchWorld(t), benchWorld(t)
	r1 := runNative(k1, tr.Program()).Runtime
	r2 := runNative(k2, tr.Program()).Runtime
	if r1 != r2 || r1 <= 500 {
		t.Fatalf("runtimes %v vs %v", r1, r2)
	}
}

func TestTraceSpawn(t *testing.T) {
	k := benchWorld(t)
	k.RegisterProgram("traced-child", func(p *kernel.Proc, _ []string) int {
		return 0
	})
	if err := k.InstallExecutable("/bench/child.exe", "traced-child", "bench"); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace("spawn /bench/child.exe")
	if err != nil {
		t.Fatal(err)
	}
	st := runNative(k, tr.Program())
	if st.Code != 0 {
		t.Fatalf("spawn replay exited %d", st.Code)
	}
}

func TestTraceCommentsAndSemicolons(t *testing.T) {
	tr, err := ParseTrace("getpid ; trailing comment\n# whole line\n  \nwhoami # tail")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(tr.Ops))
	}
	if !strings.Contains(tr.Render(), "whoami") {
		t.Fatal("render lost ops")
	}
}
