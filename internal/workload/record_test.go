package workload

import (
	"testing"

	"identitybox/internal/kernel"
)

func TestRecorderCapturesCalls(t *testing.T) {
	k := benchWorld(t)
	trace, st := Record(k, "bench", BenchRoot, func(p *kernel.Proc, _ []string) int {
		p.Compute(100)
		fd, err := p.Open(BenchRoot+"/input.dat", kernel.ORdonly, 0)
		if err != nil {
			return 1
		}
		buf := make([]byte, 512)
		p.Read(fd, buf)
		p.Pread(fd, buf, 4096)
		p.Close(fd)
		p.Stat(BenchRoot + "/src00.c")
		p.Mkdir(BenchRoot+"/recdir", 0o755)
		p.Rmdir(BenchRoot + "/recdir")
		p.GetUserName()
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("recorded program exited %d", st.Code)
	}
	verbs := []string{}
	for _, op := range trace.Ops {
		if op.Verb != "compute" {
			verbs = append(verbs, op.Verb)
		}
	}
	want := []string{"open", "read", "pread", "close", "stat", "mkdir", "rmdir", "whoami"}
	if len(verbs) != len(want) {
		t.Fatalf("verbs = %v, want %v", verbs, want)
	}
	for i := range want {
		if verbs[i] != want[i] {
			t.Fatalf("verb %d = %q, want %q", i, verbs[i], want[i])
		}
	}
	// The initial compute gap is represented.
	if trace.Ops[0].Verb != "compute" || trace.Ops[0].Micros < 100 {
		t.Fatalf("first op = %+v, want compute >= 100", trace.Ops[0])
	}
}

func TestRecordedTraceReplays(t *testing.T) {
	k := benchWorld(t)
	trace, st := Record(k, "bench", BenchRoot, func(p *kernel.Proc, _ []string) int {
		p.WriteFile(BenchRoot+"/rec.out", []byte("0123456789"), 0o644)
		data, err := p.ReadFile(BenchRoot + "/rec.out")
		if err != nil || len(data) != 10 {
			return 1
		}
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("recording run exited %d", st.Code)
	}
	// Replay on a fresh world.
	k2 := benchWorld(t)
	rst := runNative(k2, trace.Program())
	if rst.Code != 0 {
		t.Fatalf("replay exited %d\ntrace:\n%s", rst.Code, trace.Render())
	}
	if !k2.FS().Exists(BenchRoot + "/rec.out") {
		t.Fatal("replay did not recreate the file")
	}
	// And the textual form round-trips.
	if _, err := ParseTrace(trace.Render()); err != nil {
		t.Fatalf("rendered recording unparseable: %v", err)
	}
}

func TestRecorderSkipsFailedCalls(t *testing.T) {
	k := benchWorld(t)
	trace, _ := Record(k, "bench", BenchRoot, func(p *kernel.Proc, _ []string) int {
		p.Stat("/does/not/exist") // fails; must not be recorded
		p.Getpid()
		return 0
	})
	for _, op := range trace.Ops {
		if op.Verb == "stat" {
			t.Fatalf("failed stat was recorded: %+v", op)
		}
	}
}

func TestRecorderFlattensChildren(t *testing.T) {
	k := benchWorld(t)
	k.RegisterProgram("recchild", func(p *kernel.Proc, _ []string) int {
		p.Stat(BenchRoot + "/src01.c")
		return 0
	})
	k.InstallExecutable(BenchRoot+"/recchild.exe", "recchild", "bench")
	k.FS().Chmod(BenchRoot+"/recchild.exe", 0o755)
	trace, st := Record(k, "bench", BenchRoot, func(p *kernel.Proc, _ []string) int {
		pid, err := p.Spawn(BenchRoot + "/recchild.exe")
		if err != nil {
			return 1
		}
		p.Wait(pid)
		return 0
	})
	if st.Code != 0 {
		t.Fatalf("exit %d", st.Code)
	}
	var stats, spawns int
	for _, op := range trace.Ops {
		switch op.Verb {
		case "stat":
			stats++
		case "spawn":
			spawns++
		}
	}
	if stats != 1 || spawns != 0 {
		t.Fatalf("stats=%d spawns=%d; children should be flattened inline", stats, spawns)
	}
}
