package parrot

import (
	"errors"
	"testing"

	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

func testEnv(t *testing.T) (*kernel.Kernel, *LocalDriver, *kernel.Proc) {
	t.Helper()
	fs := vfs.New(kernel.RootAccount)
	fs.Chmod("/", 0o777)
	k := kernel.New(fs, vclock.Default())
	d := NewLocalDriver(fs, "dthain", vclock.Default())
	var proc *kernel.Proc
	k.Run(kernel.ProcSpec{Account: "dthain"}, func(p *kernel.Proc, _ []string) int {
		proc = p
		return 0
	})
	return k, d, proc
}

func TestMountTableLongestPrefix(t *testing.T) {
	var mt MountTable
	root := &LocalDriver{}
	chirp := &LocalDriver{}
	deep := &LocalDriver{}
	mt.Add("/", root)
	mt.Add("/chirp/host:9094", chirp)
	mt.Add("/chirp/host:9094/deep", deep)

	cases := []struct {
		path    string
		want    Driver
		wantRel string
	}{
		{"/etc/passwd", root, "/etc/passwd"},
		{"/chirp/host:9094", chirp, "/"},
		{"/chirp/host:9094/data/f", chirp, "/data/f"},
		{"/chirp/host:9094/deep/x", deep, "/x"},
		{"/chirp/other:1", root, "/chirp/other:1"},
	}
	for _, c := range cases {
		d, rel := mt.Resolve(c.path)
		if d != c.want || rel != c.wantRel {
			t.Errorf("Resolve(%q) = %v/%q, want %v/%q", c.path, d, rel, c.want, c.wantRel)
		}
	}
}

func TestMountTableNoRootMount(t *testing.T) {
	var mt MountTable
	d := &LocalDriver{}
	mt.Add("/chirp/h", d)
	if got, _ := mt.Resolve("/elsewhere"); got != nil {
		t.Fatal("unmounted path should resolve to nil")
	}
	// A prefix match must respect component boundaries.
	if got, _ := mt.Resolve("/chirp/hh"); got != nil {
		t.Fatal("/chirp/hh must not match mount /chirp/h")
	}
}

func TestMountTableMountsListed(t *testing.T) {
	var mt MountTable
	mt.Add("/", &LocalDriver{})
	mt.Add("/chirp/a", &LocalDriver{})
	ms := mt.Mounts()
	if len(ms) != 2 || ms[0].Prefix != "/chirp/a" || ms[1].Prefix != "/" {
		t.Fatalf("Mounts = %+v", ms)
	}
}

func TestLocalDriverOpenReadWrite(t *testing.T) {
	_, d, p := testEnv(t)
	f, err := d.Open(p, "/x", kernel.OWronly|kernel.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f2, err := d.Open(p, "/x", kernel.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := f2.ReadAt(buf, 0); err != nil || string(buf[:n]) != "data" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	st, err := f2.Stat()
	if err != nil || st.Size != 4 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
}

func TestLocalDriverUnixPermsAsSupervisor(t *testing.T) {
	k, d, p := testEnv(t)
	fs := k.FS()
	// A file owned by someone else, 0600: the supervising account
	// (dthain) must not be able to read it — the host kernel would
	// refuse the supervisor's own syscall.
	fs.WriteFile("/others", []byte("x"), 0o600, "alice")
	if _, err := d.Open(p, "/others", kernel.ORdonly, 0); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("open foreign 0600 = %v, want denied", err)
	}
	// Own file is fine regardless of other bits.
	fs.WriteFile("/own", []byte("y"), 0o600, "dthain")
	if _, err := d.Open(p, "/own", kernel.ORdonly, 0); err != nil {
		t.Fatalf("open own 0600 = %v", err)
	}
	// Creating in a foreign 0755 dir: denied.
	fs.MkdirAll("/foreign", 0o755, "alice")
	if _, err := d.Open(p, "/foreign/new", kernel.OWronly|kernel.OCreat, 0o644); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("create in foreign dir = %v, want denied", err)
	}
	if err := d.Mkdir(p, "/foreign/sub", 0o755); !errors.Is(err, vfs.ErrPermission) {
		t.Fatalf("mkdir in foreign dir = %v, want denied", err)
	}
}

func TestLocalDriverMetadataOps(t *testing.T) {
	_, d, p := testEnv(t)
	if err := d.Mkdir(p, "/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFileSmall(p, "/dir/f", []byte("small"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := d.ReadFileSmall(p, "/dir/f")
	if err != nil || string(data) != "small" {
		t.Fatalf("ReadFileSmall = %q, %v", data, err)
	}
	if st, err := d.Stat(p, "/dir/f"); err != nil || st.Size != 5 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	if err := d.Symlink(p, "f", "/dir/ln"); err != nil {
		t.Fatal(err)
	}
	if tgt, err := d.Readlink(p, "/dir/ln"); err != nil || tgt != "f" {
		t.Fatalf("readlink = %q, %v", tgt, err)
	}
	if st, err := d.Lstat(p, "/dir/ln"); err != nil || st.Type != vfs.TypeSymlink {
		t.Fatalf("lstat = %+v, %v", st, err)
	}
	ents, err := d.ReadDir(p, "/dir")
	if err != nil || len(ents) != 2 {
		t.Fatalf("readdir = %v, %v", ents, err)
	}
	if err := d.Rename(p, "/dir/f", "/dir/g"); err != nil {
		t.Fatal(err)
	}
	if err := d.Link(p, "/dir/g", "/dir/h"); err != nil {
		t.Fatal(err)
	}
	if err := d.Truncate(p, "/dir/g", 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Chmod(p, "/dir/g", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := d.Unlink(p, "/dir/h"); err != nil {
		t.Fatal(err)
	}
	if err := d.Rmdir(p, "/dir"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v", err)
	}
}

func TestLocalDriverChargesTime(t *testing.T) {
	_, d, p := testEnv(t)
	before := p.Clock().Now()
	d.Stat(p, "/")
	if p.Clock().Now() <= before {
		t.Fatal("driver did not charge virtual time")
	}
}
