// Package parrot provides the mechanism half of the interposition agent:
// file-service drivers, the mount table that routes paths to them, and a
// local driver over the simulated kernel's file system.
//
// Parrot is a delegation architecture (like Ostia): the supervisor
// implements each trapped system call by invoking operations on a
// driver, then reflects results back into the stopped child. Drivers
// make filesystem-like services appear under ordinary paths — the local
// file system at "/", and remote Chirp servers under /chirp/host/path —
// so unmodified applications can use them. The policy half (identity
// attachment and ACL enforcement) lives in internal/core.
package parrot

import (
	"identitybox/internal/kernel"
	"identitybox/internal/vfs"
)

// File is an open file within a driver, the supervisor-side analogue of
// a file descriptor.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Stat() (vfs.Stat, error)
	Close() error
}

// Driver provides operating-system-like file service for one mount.
// Every method takes the calling (stopped) process first so the driver
// can charge the virtual cost of the work to it: the child is suspended
// while the supervisor works on its behalf, so supervisor time is child
// time.
type Driver interface {
	// Open opens an existing file or creates one, honoring Unix-style
	// flags (kernel.ORdonly etc.). The returned stat describes the file
	// after any O_TRUNC.
	Open(p *kernel.Proc, path string, flags int, mode uint32) (File, error)

	Stat(p *kernel.Proc, path string) (vfs.Stat, error)
	Lstat(p *kernel.Proc, path string) (vfs.Stat, error)
	Readlink(p *kernel.Proc, path string) (string, error)
	ReadDir(p *kernel.Proc, path string) ([]vfs.DirEntry, error)

	Mkdir(p *kernel.Proc, path string, mode uint32) error
	Rmdir(p *kernel.Proc, path string) error
	Unlink(p *kernel.Proc, path string) error
	Link(p *kernel.Proc, oldPath, newPath string) error
	Symlink(p *kernel.Proc, target, linkPath string) error
	Rename(p *kernel.Proc, oldPath, newPath string) error
	Chmod(p *kernel.Proc, path string, mode uint32) error
	Truncate(p *kernel.Proc, path string, size int64) error

	// ReadFileSmall reads a whole (small) file, used for ACL files and
	// executable headers.
	ReadFileSmall(p *kernel.Proc, path string) ([]byte, error)
	// WriteFileSmall replaces a whole (small) file.
	WriteFileSmall(p *kernel.Proc, path string, data []byte, mode uint32) error
}

// ACLManager is implemented by drivers whose backing service installs
// and enforces ACLs itself (a Chirp server does: its mkdir applies the
// inherit/reserve semantics server-side). The identity box skips its
// own ACL initialization on such mounts to avoid fighting the service.
type ACLManager interface {
	ManagesACLs() bool
}

// Mount binds a path prefix to a driver.
type Mount struct {
	Prefix string // "/" or "/chirp/host:port"
	Driver Driver
}

// MountTable routes absolute paths to drivers, longest prefix first.
// The zero value is empty; use Add to populate. Not safe for concurrent
// mutation (configure before use).
type MountTable struct {
	mounts []Mount
}

// Add installs a mount. Later Adds with longer prefixes take priority.
func (t *MountTable) Add(prefix string, d Driver) {
	m := Mount{Prefix: vfs.Clean(prefix), Driver: d}
	// Insert keeping longest-prefix-first order.
	for i, existing := range t.mounts {
		if len(m.Prefix) > len(existing.Prefix) {
			t.mounts = append(t.mounts[:i], append([]Mount{m}, t.mounts[i:]...)...)
			return
		}
	}
	t.mounts = append(t.mounts, m)
}

// Resolve returns the driver owning path and the path rewritten relative
// to the mount (always absolute within the driver). Returns nil if no
// mount matches.
func (t *MountTable) Resolve(path string) (Driver, string) {
	path = vfs.Clean(path)
	for _, m := range t.mounts {
		if m.Prefix == "/" {
			return m.Driver, path
		}
		if path == m.Prefix {
			return m.Driver, "/"
		}
		if len(path) > len(m.Prefix) && path[:len(m.Prefix)] == m.Prefix && path[len(m.Prefix)] == '/' {
			return m.Driver, path[len(m.Prefix):]
		}
	}
	return nil, ""
}

// Mounts lists the installed mounts, longest prefix first.
func (t *MountTable) Mounts() []Mount {
	out := make([]Mount, len(t.mounts))
	copy(out, t.mounts)
	return out
}
