package parrot

import (
	"identitybox/internal/kernel"
	"identitybox/internal/vclock"
	"identitybox/internal/vfs"
)

// LocalDriver serves the supervisor's own file system. Operations are
// the supervisor's own system calls: they run under the supervising
// user's account (the host kernel checks Unix permissions against that
// account, not the visitor's) and charge native syscall costs to the
// stopped child, since the child waits while the supervisor works.
type LocalDriver struct {
	fs      *vfs.FS
	account string // the supervising user's Unix account
	model   vclock.CostModel
}

// NewLocalDriver builds a driver over fs acting as account.
func NewLocalDriver(fs *vfs.FS, account string, model vclock.CostModel) *LocalDriver {
	return &LocalDriver{fs: fs, account: account, model: model}
}

// Account reports the supervising account the driver acts as.
func (d *LocalDriver) Account() string { return d.account }

func (d *LocalDriver) pathCost(path string) vclock.Micros {
	return d.model.DirEntry * vclock.Micros(vfs.PathComponents(path))
}

// allowed applies host Unix permissions for the supervising account.
func (d *LocalDriver) allowed(st vfs.Stat, want uint32) bool {
	if d.account == kernel.RootAccount {
		return true
	}
	var bits uint32
	if st.Owner == d.account {
		bits = (st.Mode >> 6) & 7
	} else {
		bits = st.Mode & 7
	}
	return bits&want == want
}

type localFile struct {
	d *LocalDriver
	h *vfs.Handle
}

func (f *localFile) ReadAt(p []byte, off int64) (int, error)  { return f.h.ReadAt(p, off) }
func (f *localFile) WriteAt(p []byte, off int64) (int, error) { return f.h.WriteAt(p, off) }
func (f *localFile) Truncate(size int64) error                { return f.h.Truncate(size) }
func (f *localFile) Stat() (vfs.Stat, error)                  { return f.h.Stat(), nil }
func (f *localFile) Close() error                             { return nil }

// Open implements Driver.
func (d *LocalDriver) Open(p *kernel.Proc, path string, flags int, mode uint32) (File, error) {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.pathCost(path))
	st, err := d.fs.Stat(path)
	exists := err == nil
	switch {
	case !exists && flags&kernel.OCreat == 0:
		return nil, err
	case exists && flags&(kernel.OCreat|kernel.OExcl) == kernel.OCreat|kernel.OExcl:
		return nil, &vfs.PathError{Op: "open", Path: path, Err: vfs.ErrExist}
	case exists && st.IsDir() && flags&3 != kernel.ORdonly:
		return nil, &vfs.PathError{Op: "open", Path: path, Err: vfs.ErrIsDir}
	}
	if !exists {
		pst, perr := d.fs.Stat(vfs.Dir(path))
		if perr != nil {
			return nil, perr
		}
		if !d.allowed(pst, 2) {
			return nil, &vfs.PathError{Op: "open", Path: path, Err: vfs.ErrPermission}
		}
		if _, cerr := d.fs.Create(path, mode, d.account); cerr != nil {
			return nil, cerr
		}
	} else {
		var want uint32
		switch flags & 3 {
		case kernel.ORdonly:
			want = 4
		case kernel.OWronly:
			want = 2
		case kernel.ORdwr:
			want = 6
		}
		if !d.allowed(st, want) {
			return nil, &vfs.PathError{Op: "open", Path: path, Err: vfs.ErrPermission}
		}
	}
	h, err := d.fs.OpenHandle(path)
	if err != nil {
		return nil, err
	}
	if flags&kernel.OTrunc != 0 && flags&3 != kernel.ORdonly {
		if err := h.Truncate(0); err != nil {
			return nil, err
		}
	}
	return &localFile{d: d, h: h}, nil
}

// Stat implements Driver.
func (d *LocalDriver) Stat(p *kernel.Proc, path string) (vfs.Stat, error) {
	p.Charge(d.model.SyscallFixed + d.model.Stat + d.pathCost(path))
	return d.fs.Stat(path)
}

// Lstat implements Driver.
func (d *LocalDriver) Lstat(p *kernel.Proc, path string) (vfs.Stat, error) {
	p.Charge(d.model.SyscallFixed + d.model.Stat + d.pathCost(path))
	return d.fs.Lstat(path)
}

// Readlink implements Driver.
func (d *LocalDriver) Readlink(p *kernel.Proc, path string) (string, error) {
	p.Charge(d.model.SyscallFixed + d.model.Stat + d.pathCost(path))
	return d.fs.Readlink(path)
}

// ReadDir implements Driver.
func (d *LocalDriver) ReadDir(p *kernel.Proc, path string) ([]vfs.DirEntry, error) {
	ents, err := d.fs.ReadDir(path)
	p.Charge(d.model.SyscallFixed + d.model.ReadFixed +
		d.model.DirEntry*vclock.Micros(len(ents)) + d.pathCost(path))
	return ents, err
}

// Mkdir implements Driver.
func (d *LocalDriver) Mkdir(p *kernel.Proc, path string, mode uint32) error {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.pathCost(path))
	pst, err := d.fs.Stat(vfs.Dir(path))
	if err != nil {
		return err
	}
	if !d.allowed(pst, 2) {
		return &vfs.PathError{Op: "mkdir", Path: path, Err: vfs.ErrPermission}
	}
	return d.fs.Mkdir(path, mode, d.account)
}

// Rmdir implements Driver.
func (d *LocalDriver) Rmdir(p *kernel.Proc, path string) error {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.pathCost(path))
	return d.fs.Rmdir(path)
}

// Unlink implements Driver.
func (d *LocalDriver) Unlink(p *kernel.Proc, path string) error {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.pathCost(path))
	pst, err := d.fs.Stat(vfs.Dir(path))
	if err != nil {
		return err
	}
	if !d.allowed(pst, 2) {
		return &vfs.PathError{Op: "unlink", Path: path, Err: vfs.ErrPermission}
	}
	return d.fs.Unlink(path)
}

// Link implements Driver.
func (d *LocalDriver) Link(p *kernel.Proc, oldPath, newPath string) error {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.pathCost(oldPath) + d.pathCost(newPath))
	return d.fs.Link(oldPath, newPath)
}

// Symlink implements Driver.
func (d *LocalDriver) Symlink(p *kernel.Proc, target, linkPath string) error {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.pathCost(linkPath))
	return d.fs.Symlink(target, linkPath, d.account)
}

// Rename implements Driver.
func (d *LocalDriver) Rename(p *kernel.Proc, oldPath, newPath string) error {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.pathCost(oldPath) + d.pathCost(newPath))
	return d.fs.Rename(oldPath, newPath)
}

// Chmod implements Driver.
func (d *LocalDriver) Chmod(p *kernel.Proc, path string, mode uint32) error {
	p.Charge(d.model.SyscallFixed + d.model.Stat + d.pathCost(path))
	st, err := d.fs.Stat(path)
	if err != nil {
		return err
	}
	if d.account != kernel.RootAccount && st.Owner != d.account {
		return &vfs.PathError{Op: "chmod", Path: path, Err: vfs.ErrPermission}
	}
	return d.fs.Chmod(path, mode)
}

// Truncate implements Driver.
func (d *LocalDriver) Truncate(p *kernel.Proc, path string, size int64) error {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.pathCost(path))
	return d.fs.Truncate(path, size)
}

// ReadFileSmall implements Driver.
func (d *LocalDriver) ReadFileSmall(p *kernel.Proc, path string) ([]byte, error) {
	data, err := d.fs.ReadFile(path)
	n := len(data)
	p.Charge(d.model.SyscallFixed + d.model.Open + d.model.ReadFixed +
		d.model.CopyPerByte*vclock.Micros(n) + d.pathCost(path))
	return data, err
}

// WriteFileSmall implements Driver.
func (d *LocalDriver) WriteFileSmall(p *kernel.Proc, path string, data []byte, mode uint32) error {
	p.Charge(d.model.SyscallFixed + d.model.Open + d.model.WriteFixed +
		d.model.CopyPerByte*vclock.Micros(len(data)) + d.pathCost(path))
	return d.fs.WriteFile(path, data, mode, d.account)
}

var _ Driver = (*LocalDriver)(nil)
