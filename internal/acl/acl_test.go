package acl

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"identitybox/internal/identity"
)

func TestParseRights(t *testing.T) {
	r, err := ParseRights("rwlax")
	if err != nil {
		t.Fatal(err)
	}
	if r != All {
		t.Fatalf("ParseRights(rwlax) = %v, want All", r)
	}
	if !r.Has(Read | Execute) {
		t.Error("All should include rx")
	}
	if _, err := ParseRights("rq"); err == nil {
		t.Error("unknown letter should fail")
	}
	none, err := ParseRights("-")
	if err != nil || none != None {
		t.Errorf("ParseRights(-) = %v, %v", none, err)
	}
}

func TestRightsString(t *testing.T) {
	if got := (Read | List).String(); got != "rl" {
		t.Errorf("rl String = %q", got)
	}
	if got := All.String(); got != "rwlax" {
		t.Errorf("All String = %q, want rwlax", got)
	}
	if got := None.String(); got != "-" {
		t.Errorf("None String = %q, want -", got)
	}
}

func TestParseEntryPaperExamples(t *testing.T) {
	// Directly from Section 3 of the paper.
	e1, err := ParseEntry("/O=UnivNowhere/CN=Fred rwlax")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Pattern != "/O=UnivNowhere/CN=Fred" || e1.Rights != All {
		t.Fatalf("entry 1 = %+v", e1)
	}
	e2, err := ParseEntry("/O=UnivNowhere/* rl")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Rights != Read|List {
		t.Fatalf("entry 2 rights = %v", e2.Rights)
	}
	// From Section 4: the reserve right with amplification set.
	e3, err := ParseEntry("globus:/O=UnivNowhere/* v(rwlax)")
	if err != nil {
		t.Fatal(err)
	}
	if !e3.Rights.Has(Reserve) || e3.ReserveRights != All {
		t.Fatalf("entry 3 = %+v", e3)
	}
	// Combined plain and reserve rights.
	e4, err := ParseEntry("hostname:*.nowhere.edu rlxv(rwl)")
	if err != nil {
		t.Fatal(err)
	}
	if !e4.Rights.Has(Read|List|Execute|Reserve) || e4.ReserveRights != Read|Write|List {
		t.Fatalf("entry 4 = %+v", e4)
	}
}

func TestParseEntryErrors(t *testing.T) {
	bad := []string{
		"",
		"onlypattern",
		"p r extra",
		"p v(rw",      // unterminated
		"p v(v)",      // nested reserve
		"p q",         // unknown right
		"p rwv(q)",    // unknown right inside reserve
		"a b c d e f", // too many fields
	}
	for _, line := range bad {
		if _, err := ParseEntry(line); err == nil {
			t.Errorf("ParseEntry(%q) should fail", line)
		}
	}
}

func TestEntryStringRoundTrip(t *testing.T) {
	lines := []string{
		"/O=UnivNowhere/CN=Fred rwlax",
		"/O=UnivNowhere/* rl",
		"globus:/O=UnivNowhere/* v(rwlax)",
		"hostname:*.nowhere.edu rlxv(rwl)",
		"anyone -",
	}
	for _, line := range lines {
		e, err := ParseEntry(line)
		if err != nil {
			t.Fatalf("ParseEntry(%q): %v", line, err)
		}
		e2, err := ParseEntry(e.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", e.String(), err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Errorf("round trip changed %q: %+v vs %+v", line, e, e2)
		}
	}
}

func TestParseACLIgnoresCommentsAndBlank(t *testing.T) {
	text := "# home directory ACL\n\n/O=UnivNowhere/CN=Fred rwlax\n  \n# tail\n"
	a, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(a.Entries))
	}
}

func TestLookupUnion(t *testing.T) {
	a, err := Parse("/O=UnivNowhere/CN=Fred rw\n/O=UnivNowhere/* rl\n")
	if err != nil {
		t.Fatal(err)
	}
	fred := identity.Principal("/O=UnivNowhere/CN=Fred")
	r, _ := a.Lookup(fred)
	if r != Read|Write|List {
		t.Fatalf("Fred's union rights = %v, want rwl", r)
	}
	george := identity.Principal("/O=UnivNowhere/CN=George")
	r, _ = a.Lookup(george)
	if r != Read|List {
		t.Fatalf("George's rights = %v, want rl", r)
	}
	outsider := identity.Principal("/O=Elsewhere/CN=Eve")
	r, _ = a.Lookup(outsider)
	if r != None {
		t.Fatalf("outsider rights = %v, want none", r)
	}
}

func TestLookupReserveUnion(t *testing.T) {
	a, err := Parse("globus:/O=UnivNowhere/* v(rwl)\nglobus:* v(x)\n")
	if err != nil {
		t.Fatal(err)
	}
	p := identity.Principal("globus:/O=UnivNowhere/CN=Fred")
	r, rr := a.Lookup(p)
	if !r.Has(Reserve) {
		t.Fatal("should hold reserve right")
	}
	if rr != Read|Write|List|Execute {
		t.Fatalf("reserve set = %v, want rwlx", rr)
	}
}

func TestAllows(t *testing.T) {
	a := ForOwner("Freddy")
	if !a.Allows("Freddy", Read|Write|Admin) {
		t.Fatal("owner should hold rwa")
	}
	if a.Allows("Eve", Read) {
		t.Fatal("stranger should hold nothing")
	}
	if a.Allows("Freddy", Reserve) {
		t.Fatal("ForOwner should not grant reserve")
	}
}

func TestSetReplaceRemove(t *testing.T) {
	a := &ACL{}
	a.Set("alice", Read, None)
	a.Set("bob", Read|Write, None)
	a.Set("alice", All, None) // replace
	if len(a.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(a.Entries))
	}
	if r, _ := a.Lookup("alice"); r != All {
		t.Fatalf("alice = %v, want All", r)
	}
	a.Set("bob", None, None) // remove via Set(None)
	if r, _ := a.Lookup("bob"); r != None {
		t.Fatalf("bob = %v, want none", r)
	}
	if a.Remove("nobodyhome") {
		t.Error("Remove of missing pattern should report false")
	}
	if !a.Remove("alice") {
		t.Error("Remove of present pattern should report true")
	}
	if len(a.Entries) != 0 {
		t.Fatalf("entries = %d, want 0", len(a.Entries))
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := &ACL{}
	a.Set("alice", Read, None)
	b := a.Clone()
	b.Set("alice", All, None)
	if r, _ := a.Lookup("alice"); r != Read {
		t.Fatal("mutating clone changed original")
	}
}

func TestReserveChild(t *testing.T) {
	// Section 4: Fred mkdirs /work holding v(rwlax); the new ACL grants
	// exactly rwlax to Fred and nothing else.
	child := ReserveChild("globus:/O=UnivNowhere/CN=Fred", All)
	if len(child.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(child.Entries))
	}
	r, rr := child.Lookup("globus:/O=UnivNowhere/CN=Fred")
	if r != All || rr != None {
		t.Fatalf("child rights = %v/%v, want rwlax/none", r, rr)
	}
	if child.Allows("globus:/O=UnivNowhere/CN=George", List) {
		t.Fatal("other users must not inherit access")
	}
}

func TestACLStringParseRoundTrip(t *testing.T) {
	a := &ACL{}
	a.Set("globus:/O=UnivNowhere/*", Read|List|Reserve, All)
	a.Set("kerberos:fred@nowhere.edu", All, None)
	b, err := Parse(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip:\n%swant\n%s", b.String(), a.String())
	}
}

// randomRights yields a random valid rights value; reserve only with a
// non-reserve reserve-set.
func randomRights(r *rand.Rand) (Rights, Rights) {
	plain := Rights(r.Intn(int(All) + 1))
	var rr Rights
	if r.Intn(2) == 1 {
		plain |= Reserve
		rr = Rights(r.Intn(int(All) + 1))
	}
	return plain, rr
}

func TestACLRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	patterns := []string{
		"globus:/O=UnivNowhere/*", "kerberos:*@nowhere.edu", "unix:dthain",
		"hostname:laptop.cs.nowhere.edu", "Freddy", "*",
	}
	for i := 0; i < 200; i++ {
		a := &ACL{}
		n := r.Intn(len(patterns))
		for _, p := range patterns[:n] {
			rights, rr := randomRights(r)
			if rights == None && rr == None {
				continue
			}
			a.Set(p, rights, rr)
		}
		b, err := Parse(a.String())
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", i, err, a.String())
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iter %d: round trip changed ACL\n%s\nvs\n%s", i, a.String(), b.String())
		}
	}
}

func TestLookupMonotonicProperty(t *testing.T) {
	// Adding an entry never removes rights from anyone (rights are a
	// union over matching entries).
	f := func(sub string, extra uint8) bool {
		if strings.ContainsAny(sub, "* \t\n") || sub == "" {
			return true
		}
		p := identity.Principal(sub)
		a, err := Parse("globus:* rl\n")
		if err != nil {
			return false
		}
		before, _ := a.Lookup(p)
		a.Set("*", Rights(extra)&All, None)
		after, _ := a.Lookup(p)
		return after.Has(before)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNilACLGrantsNothing(t *testing.T) {
	var a *ACL
	r, rr := a.Lookup("anyone")
	if r != None || rr != None {
		t.Fatal("nil ACL must grant nothing")
	}
	if a.String() != "" {
		t.Fatal("nil ACL renders empty")
	}
}

func TestPatternsSorted(t *testing.T) {
	a := &ACL{}
	a.Set("zeta", Read, None)
	a.Set("alpha", Read, None)
	got := a.Patterns()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Patterns = %v", got)
	}
}
