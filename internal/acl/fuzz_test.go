package acl

import (
	"reflect"
	"testing"
)

// FuzzParse checks the ACL parser never panics and that anything it
// accepts round-trips through String() unchanged.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"/O=UnivNowhere/CN=Fred rwlax\n",
		"globus:/O=UnivNowhere/* v(rwlax)\n",
		"hostname:*.nowhere.edu rlxv(rwl)\n# comment\n\n",
		"a -\n",
		"p v(\n",
		"p rwv(q)\n",
		"x y z\n",
		"\x00\x01\x02",
		"pattern rv()x\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		a, err := Parse(text)
		if err != nil {
			return
		}
		out := a.String()
		b, err := Parse(out)
		if err != nil {
			t.Fatalf("rendered ACL failed to re-parse: %q: %v", out, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round trip changed ACL:\n%q\nvs\n%q", a.String(), b.String())
		}
	})
}

// FuzzParseEntry checks single-entry parsing for panics and round-trip
// stability.
func FuzzParseEntry(f *testing.F) {
	for _, s := range []string{
		"p rwlax", "p v(rl)", "p -", "p rv(w)x", " p  rl ", "p", "p q", "",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseEntry(line)
		if err != nil {
			return
		}
		e2, err := ParseEntry(e.String())
		if err != nil {
			t.Fatalf("rendered entry failed to re-parse: %q: %v", e.String(), err)
		}
		if e != e2 {
			t.Fatalf("round trip changed entry: %+v vs %+v", e, e2)
		}
	})
}
