// Package acl implements the per-directory access-control lists used
// inside identity boxes and by the Chirp storage system.
//
// Because visiting identities are free-form strings, they do not fit the
// Unix integer-UID protection scheme; the identity box abandons Unix
// permissions and adopts ACLs instead. Each directory holds a file named
// ".__acl" listing, one per line, an identity pattern and the set of
// operations principals matching that pattern may perform on files in
// the directory:
//
//	/O=UnivNowhere/CN=Fred   rwlax
//	/O=UnivNowhere/*         rl
//	hostname:*.nowhere.edu   rlx
//	globus:/O=UnivNowhere/*  v(rwlax)
//
// Rights are r (read), w (write), l (list), x (execute), a (administer:
// modify the ACL itself) and the reserve right v. The reserve right is a
// variation upon amplification: a principal holding only v(...) in a
// directory may mkdir there, and the newly created directory is
// initialized with an ACL granting that principal the parenthesized
// rights — giving each visitor a fresh private namespace they can then
// share by editing the ACL (if a was in the reserve set).
package acl

import (
	"fmt"
	"sort"
	"strings"

	"identitybox/internal/identity"
)

// FileName is the name of the ACL file stored in each directory. (The
// production Chirp implementation uses the same "hidden file in the
// directory" scheme.)
const FileName = ".__acl"

// Rights is a bitmask of the operations a principal may perform.
type Rights uint8

const (
	Read    Rights = 1 << iota // r: read files in the directory
	Write                      // w: create, modify and delete files
	List                       // l: list the directory
	Execute                    // x: execute programs in the directory
	Admin                      // a: modify the directory's ACL
	Reserve                    // v: mkdir with a fresh ACL (amplification)
)

// All is every non-reserve right: rwlax.
const All = Read | Write | List | Execute | Admin

// None is the empty right set.
const None Rights = 0

// Has reports whether r includes every right in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// String renders the rights in the canonical order "rwlaxv". The reserve
// right renders as a bare "v"; use Entry.String for the v(...) form.
func (r Rights) String() string {
	if r == None {
		return "-"
	}
	var b strings.Builder
	for _, f := range rightLetters {
		if r.Has(f.bit) {
			b.WriteByte(f.letter)
		}
	}
	return b.String()
}

var rightLetters = []struct {
	letter byte
	bit    Rights
}{
	{'r', Read}, {'w', Write}, {'l', List}, {'a', Admin}, {'x', Execute}, {'v', Reserve},
}

// ParseRights parses a string of right letters such as "rwlax". It does
// not accept the v(...) form; use ParseEntry for full entries.
func ParseRights(s string) (Rights, error) {
	var r Rights
	if s == "-" {
		return None, nil
	}
	for i := 0; i < len(s); i++ {
		bit, err := rightForLetter(s[i])
		if err != nil {
			return None, err
		}
		r |= bit
	}
	return r, nil
}

func rightForLetter(c byte) (Rights, error) {
	switch c {
	case 'r':
		return Read, nil
	case 'w':
		return Write, nil
	case 'l':
		return List, nil
	case 'a':
		return Admin, nil
	case 'x':
		return Execute, nil
	case 'v':
		return Reserve, nil
	default:
		return None, fmt.Errorf("acl: unknown right %q", string(c))
	}
}

// Entry is one line of an ACL: an identity pattern, the rights granted
// to principals matching it, and — when the Reserve bit is set — the
// rights placed in the ACL of a directory created under the reserve
// right.
type Entry struct {
	Pattern       string
	Rights        Rights
	ReserveRights Rights
}

// Matches reports whether the entry's pattern matches the principal.
func (e Entry) Matches(p identity.Principal) bool {
	return identity.Match(e.Pattern, p)
}

// String renders the entry in the file format, e.g.
// "globus:/O=UnivNowhere/* rlv(rwlax)".
func (e Entry) String() string {
	var b strings.Builder
	b.WriteString(e.Pattern)
	b.WriteByte(' ')
	plain := e.Rights &^ Reserve
	if plain != None {
		b.WriteString(plain.String())
	}
	if e.Rights.Has(Reserve) {
		b.WriteByte('v')
		if e.ReserveRights != None {
			b.WriteByte('(')
			b.WriteString(e.ReserveRights.String())
			b.WriteByte(')')
		}
	}
	if plain == None && !e.Rights.Has(Reserve) {
		b.WriteByte('-')
	}
	return b.String()
}

// ParseEntry parses one ACL line: "<pattern> <rights>", where rights is
// a run of right letters optionally containing v(<rights>).
func ParseEntry(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return Entry{}, fmt.Errorf("acl: malformed entry %q: want \"pattern rights\"", line)
	}
	e := Entry{Pattern: fields[0]}
	if e.Pattern == "" {
		return Entry{}, fmt.Errorf("acl: empty pattern in %q", line)
	}
	s := fields[1]
	if s == "-" {
		return e, nil
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 'v' {
			e.Rights |= Reserve
			if i+1 < len(s) && s[i+1] == '(' {
				j := strings.IndexByte(s[i+2:], ')')
				if j < 0 {
					return Entry{}, fmt.Errorf("acl: unterminated v( in %q", line)
				}
				rr, err := ParseRights(s[i+2 : i+2+j])
				if err != nil {
					return Entry{}, err
				}
				if rr.Has(Reserve) {
					return Entry{}, fmt.Errorf("acl: reserve right may not nest in %q", line)
				}
				e.ReserveRights = rr
				i += 2 + j
			}
			continue
		}
		bit, err := rightForLetter(c)
		if err != nil {
			return Entry{}, fmt.Errorf("acl: %v in %q", err, line)
		}
		e.Rights |= bit
	}
	return e, nil
}

// ACL is an ordered list of entries. The rights of a principal are the
// union of all matching entries. The zero value is an empty ACL that
// grants nothing.
type ACL struct {
	Entries []Entry
}

// Parse reads an ACL from its file representation. Blank lines and lines
// starting with '#' are ignored.
func Parse(text string) (*ACL, error) {
	a := &ACL{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := ParseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("acl: line %d: %v", ln+1, err)
		}
		a.Entries = append(a.Entries, e)
	}
	return a, nil
}

// String renders the ACL in its file representation, one entry per line
// with a trailing newline (empty ACLs render as the empty string).
func (a *ACL) String() string {
	if a == nil || len(a.Entries) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range a.Entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Clone returns a deep copy of the ACL.
func (a *ACL) Clone() *ACL {
	c := &ACL{Entries: make([]Entry, len(a.Entries))}
	copy(c.Entries, a.Entries)
	return c
}

// Lookup reports the union of rights granted to the principal by all
// matching entries, and separately the union of reserve rights.
func (a *ACL) Lookup(p identity.Principal) (rights, reserveRights Rights) {
	if a == nil {
		return None, None
	}
	for _, e := range a.Entries {
		if e.Matches(p) {
			rights |= e.Rights
			reserveRights |= e.ReserveRights
		}
	}
	return rights, reserveRights
}

// Allows reports whether the principal holds every right in want.
func (a *ACL) Allows(p identity.Principal, want Rights) bool {
	got, _ := a.Lookup(p)
	return got.Has(want)
}

// Set grants rights to a pattern, replacing any existing entry with the
// same pattern. Granting None removes the entry.
func (a *ACL) Set(pattern string, r Rights, reserve Rights) {
	if r == None && reserve == None {
		a.Remove(pattern)
		return
	}
	for i := range a.Entries {
		if a.Entries[i].Pattern == pattern {
			a.Entries[i].Rights = r
			a.Entries[i].ReserveRights = reserve
			return
		}
	}
	a.Entries = append(a.Entries, Entry{Pattern: pattern, Rights: r, ReserveRights: reserve})
}

// Remove deletes the entry with the given pattern, if present, and
// reports whether an entry was removed.
func (a *ACL) Remove(pattern string) bool {
	for i := range a.Entries {
		if a.Entries[i].Pattern == pattern {
			a.Entries = append(a.Entries[:i], a.Entries[i+1:]...)
			return true
		}
	}
	return false
}

// Patterns reports the sorted list of patterns in the ACL.
func (a *ACL) Patterns() []string {
	out := make([]string, 0, len(a.Entries))
	for _, e := range a.Entries {
		out = append(out, e.Pattern)
	}
	sort.Strings(out)
	return out
}

// ForOwner returns a fresh ACL granting the principal full rights
// (rwlax), as placed in a visitor's new home directory or in a directory
// created under the reserve right with reserve set rwlax.
func ForOwner(p identity.Principal) *ACL {
	a := &ACL{}
	a.Set(p.String(), All, None)
	return a
}

// ReserveChild builds the ACL for a directory created by p under the
// reserve right: the new directory's ACL contains exactly the reserve
// set for the creating principal (Section 4 of the paper).
func ReserveChild(p identity.Principal, reserveSet Rights) *ACL {
	a := &ACL{}
	a.Set(p.String(), reserveSet&^Reserve, None)
	return a
}
