package vfs

import (
	"bytes"
	"math/rand"
	"testing"
)

func buildSample(t *testing.T) *FS {
	t.Helper()
	fs := New("owner")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.MkdirAll("/a/b", 0o750, "alice"))
	must(fs.WriteFile("/a/file.txt", []byte("contents"), 0o640, "alice"))
	must(fs.Link("/a/file.txt", "/a/b/hard"))
	must(fs.Symlink("../file.txt", "/a/b/soft", "alice"))
	must(fs.WriteFile("/top", bytes.Repeat([]byte("x"), 10000), 0o600, "bob"))
	must(fs.Chown("/a", "alice", "staff"))
	return fs
}

func roundTrip(t *testing.T, fs *FS) *FS {
	t.Helper()
	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fs2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return fs2
}

func TestSnapshotRoundTripContent(t *testing.T) {
	fs := buildSample(t)
	fs2 := roundTrip(t, fs)

	data, err := fs2.ReadFile("/a/file.txt")
	if err != nil || string(data) != "contents" {
		t.Fatalf("file = %q, %v", data, err)
	}
	big, err := fs2.ReadFile("/top")
	if err != nil || len(big) != 10000 {
		t.Fatalf("big file = %d bytes, %v", len(big), err)
	}
	st, err := fs2.Stat("/a")
	if err != nil || st.Owner != "alice" || st.Group != "staff" || st.Mode != 0o750 {
		t.Fatalf("dir metadata = %+v, %v", st, err)
	}
	fst, _ := fs2.Stat("/a/file.txt")
	if fst.Mode != 0o640 || fst.Owner != "alice" {
		t.Fatalf("file metadata = %+v", fst)
	}
}

func TestSnapshotPreservesHardLinks(t *testing.T) {
	fs := buildSample(t)
	fs2 := roundTrip(t, fs)
	a, _ := fs2.Stat("/a/file.txt")
	b, _ := fs2.Stat("/a/b/hard")
	if a.Ino != b.Ino {
		t.Fatal("hard link sharing lost across snapshot")
	}
	if a.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", a.Nlink)
	}
	// Writes through one name appear through the other.
	if _, err := fs2.WriteAt("/a/b/hard", []byte("CON"), 0); err != nil {
		t.Fatal(err)
	}
	data, _ := fs2.ReadFile("/a/file.txt")
	if string(data) != "CONtents" {
		t.Fatalf("shared write lost: %q", data)
	}
}

func TestSnapshotPreservesSymlinks(t *testing.T) {
	fs := buildSample(t)
	fs2 := roundTrip(t, fs)
	target, err := fs2.Readlink("/a/b/soft")
	if err != nil || target != "../file.txt" {
		t.Fatalf("readlink = %q, %v", target, err)
	}
	data, err := fs2.ReadFile("/a/b/soft")
	if err != nil || string(data) != "contents" {
		t.Fatalf("through-link read = %q, %v", data, err)
	}
}

func TestSnapshotDirNlink(t *testing.T) {
	fs := buildSample(t)
	fs2 := roundTrip(t, fs)
	orig, _ := fs.Stat("/a")
	got, _ := fs2.Stat("/a")
	if got.Nlink != orig.Nlink {
		t.Fatalf("dir nlink = %d, want %d", got.Nlink, orig.Nlink)
	}
	rootO, _ := fs.Stat("/")
	rootG, _ := fs2.Stat("/")
	if rootG.Nlink != rootO.Nlink {
		t.Fatalf("root nlink = %d, want %d", rootG.Nlink, rootO.Nlink)
	}
}

func TestSnapshotMutableAfterLoad(t *testing.T) {
	fs := buildSample(t)
	fs2 := roundTrip(t, fs)
	if err := fs2.WriteFile("/a/new.txt", []byte("post-restore"), 0o644, "carol"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Rename("/a/new.txt", "/renamed"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Unlink("/renamed"); err != nil {
		t.Fatal(err)
	}
	// The original is untouched by mutations of the copy.
	if fs.Exists("/a/new.txt") || fs.Exists("/renamed") {
		t.Fatal("snapshot shares state with the original")
	}
}

func TestSnapshotRandomTreeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	fs := New("u")
	dirs := []string{"/"}
	type file struct {
		path string
		data []byte
	}
	var files []file
	for i := 0; i < 200; i++ {
		parent := dirs[r.Intn(len(dirs))]
		name := string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26)))
		p := Join(parent, name)
		if fs.Exists(p) {
			continue
		}
		switch r.Intn(3) {
		case 0:
			if err := fs.Mkdir(p, 0o755, "u"); err == nil {
				dirs = append(dirs, p)
			}
		case 1:
			data := make([]byte, r.Intn(200))
			r.Read(data)
			if err := fs.WriteFile(p, data, 0o644, "u"); err == nil {
				files = append(files, file{p, data})
			}
		case 2:
			if len(files) > 0 {
				fs.Link(files[r.Intn(len(files))].path, p)
			}
		}
	}
	fs2 := roundTrip(t, fs)
	if got, want := fs2.TotalInodes(), fs.TotalInodes(); got != want {
		t.Fatalf("inodes = %d, want %d", got, want)
	}
	for _, f := range files {
		got, err := fs2.ReadFile(f.path)
		if err != nil || !bytes.Equal(got, f.data) {
			t.Fatalf("file %s mismatch: %v", f.path, err)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadRejectsTruncatedSnapshot(t *testing.T) {
	fs := buildSample(t)
	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(half)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
